(* The Figure 1 stack, end to end.

   "Above the hardware layers, we must first build an efficient and
   starvation-free spinlock implementation.  With spinlocks, we can
   implement shared objects for sleep and pending thread queues, which are
   then used to implement the thread schedulers, and the primitives yield,
   sleep, and wakeup.  On top of them, we can then implement high-level
   synchronization libraries such as queuing locks, condition variables
   (CV), and message-passing primitives."  (Sec. 1)

   This driver certifies every edge of that stack and checks the linking
   theorems, then exercises the result with a small "kernel" workload:
   worker threads on two CPUs pass work items through the certified IPC
   channel while contending on a queuing lock.

   Run with:  dune exec examples/kernel_sim.exe *)

open Ccal_core
open Ccal_objects

let vi = Value.int

let () =
  Format.printf "== kernel_sim: verifying the Fig. 1 layer stack ==@.@.";
  (match
     Ccal_verify.Budget.value
       (Ccal_verify.Stack.verify_all_ctx ~ctx:Ccal_verify.Ctx.default
          ~lock:`Ticket ~seeds:4 ())
   with
  | Ok p ->
    Format.printf "%a@.@." Ccal_verify.Stack.pp_report
      p.Ccal_verify.Stack.completed
  | Error msg ->
    Format.printf "STACK VERIFICATION FAILED: %s@." msg;
    exit 1);

  (* ---- a small kernel workload over the verified layers ---- *)
  Format.printf "== workload: work queue + queuing lock on 2 CPUs ==@.@.";
  let placement = [ 1, 0; 2, 0; 3, 1; 4, 1 ] in
  let base = Lock_intf.layer ~extra:Queue_shared.helpers "Lkern" in
  let layer = Thread_sched.mt_layer placement base in
  let modules =
    Prog.Module.union (Ipc.c_module ()) (Qlock.c_module ())
  in
  let qlock = 77 and chan = 5 in
  (* producers on CPU 0 push work items; workers on CPU 1 process them
     under the queuing lock and accumulate into the lock-protected word *)
  let producer i items =
    Prog.seq_all
      (List.concat_map
         (fun k ->
           [ Prog.call "send" [ vi chan; vi ((10 * i) + k) ];
             Prog.call Thread_sched.yield_tag [] ])
         items
      @ [ Prog.call Thread_sched.exit_tag [] ])
  in
  let worker n =
    let rec go k acc =
      if k = 0 then
        Prog.seq (Prog.call Thread_sched.exit_tag []) (Prog.ret (vi acc))
      else
        Prog.bind (Prog.call "recv" [ vi chan ]) (fun v ->
            Prog.seq_all
              [ Prog.call "acq_q" [ vi qlock ]; Prog.call "rel_q" [ vi qlock ] ]
            |> fun crit -> Prog.seq crit (go (k - 1) (acc + Value.to_int v)))
    in
    go n 0
  in
  let threads =
    [ 1, Prog.Module.link modules (producer 1 [ 1; 2; 3 ]);
      2, Prog.Module.link modules (producer 2 [ 1; 2; 3 ]);
      3, Prog.Module.link modules (worker 3);
      4, Prog.Module.link modules (worker 3) ]
  in
  let o =
    Game.run (Game.config ~max_steps:500_000 layer threads (Sched.random ~seed:11))
  in
  Format.printf "status: %a, %d events@." Game.pp_status o.Game.status
    (Log.length o.Game.log);
  let total =
    List.fold_left
      (fun acc (i, v) -> if i >= 3 then acc + Value.to_int v else acc)
      0 o.Game.results
  in
  Format.printf "work processed by workers: %d (expected %d)@." total
    (11 + 12 + 13 + 21 + 22 + 23);
  let t = Sim_rel.apply Ipc.r_ipc o.Game.log in
  Format.printf "channel history wellformed: %b@."
    (Replay.well_formed (Ipc.replay_chan chan) t);
  let tq = Sim_rel.apply Qlock.r_qlock o.Game.log in
  Format.printf "queuing-lock history wellformed: %b@."
    (Replay.well_formed (Qlock.replay_qlock qlock) tq)
