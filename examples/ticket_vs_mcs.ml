(* Two lock implementations, one atomic interface.

   Sec. 6: "Both ticket and MCS locks share the same high-level atomic
   specifications ... the lock implementations can be freely interchanged
   without affecting any proof in the higher-level modules using locks."

   This example certifies both implementations against the same [Llock]
   interface, runs the same contended client over each, and compares the
   observable behaviour: both produce atomic acq/rel histories, both are
   FIFO, and the waiting spans measured at the hardware level differ only
   in the constants.

   Run with:  dune exec examples/ticket_vs_mcs.exe *)

open Ccal_core
open Ccal_objects

let vi = Value.int

let client rounds i =
  let rec go k =
    if k = 0 then Prog.ret (vi i)
    else
      Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
          Prog.seq
            (Prog.call "rel" [ vi 0; vi (Value.to_int v + 1) ])
            (go (k - 1)))
  in
  go rounds

let contend name layer m rel ~ticket_tag =
  let threads =
    List.map (fun i -> i, Prog.Module.link m (client 3 i)) [ 1; 2; 3; 4 ]
  in
  let o =
    Game.run (Game.config ~max_steps:500_000 layer threads (Sched.random ~seed:2024))
  in
  assert (Game.successful o);
  let atomic = Sim_rel.apply rel o.Game.log in
  let spans =
    Ccal_verify.Progress.waiting_spans ~ticket_tag ~enter_tag:"pull" o.Game.log
  in
  let max_span = List.fold_left (fun m (_, s) -> max m s) 0 spans in
  Format.printf
    "%-8s %4d hardware events -> %2d atomic events | mutex %b | FIFO %b | max wait %d events@."
    name (Log.length o.Game.log) (Log.length atomic)
    (Lock_intf.mutual_exclusion atomic)
    (Ccal_verify.Progress.fifo_order ~ticket_tag ~enter_tag:"pull" o.Game.log)
    max_span;
  atomic

let () =
  Format.printf "== ticket vs MCS: same interface, interchangeable ==@.@.";

  (* certify both against the same overlay *)
  (match Ticket_lock.certify ~focus:[ 1; 2 ] () with
  | Ok c -> Format.printf "ticket certified: %d checks@." (Calculus.count_checks c)
  | Error e -> Format.printf "ticket FAILED: %a@." Calculus.pp_error e);
  (match Mcs_lock.certify ~focus:[ 1; 2 ] () with
  | Ok c -> Format.printf "mcs    certified: %d checks@.@." (Calculus.count_checks c)
  | Error e -> Format.printf "mcs FAILED: %a@." Calculus.pp_error e);

  let a1 =
    contend "ticket" (Ticket_lock.l0 ()) (Ticket_lock.c_module ())
      Ticket_lock.r_ticket ~ticket_tag:"FAI_t"
  in
  let a2 =
    contend "mcs" (Mcs_lock.l0 ()) (Mcs_lock.c_module ()) Mcs_lock.r_mcs
      ~ticket_tag:"xchg"
  in

  (* the final protected value is the number of critical sections on both *)
  let final atomic =
    match
      List.find_opt
        (fun (e : Event.t) -> String.equal e.Event.tag Lock_intf.rel_tag)
        (Log.newest_first atomic)
    with
    | Some e -> (match e.Event.args with [ _; v ] -> Value.to_int v | _ -> -1)
    | None -> -1
  in
  Format.printf
    "@.final counter: ticket=%d mcs=%d (both count the 12 critical sections)@."
    (final a1) (final a2);

  (* swap the lock under the shared queue: the queue layer is untouched *)
  Format.printf "@.swapping the lock under the shared queue (Sec. 6):@.";
  match
    Ccal_verify.Budget.value
      (Ccal_verify.Stack.verify_all_ctx ~ctx:Ccal_verify.Ctx.default
         ~lock:`Mcs ~seeds:2 ())
  with
  | Ok p ->
    let r = p.Ccal_verify.Stack.completed in
    Format.printf
      "  full stack re-verified over the MCS lock: %d checks in %.0f ms@."
      r.Ccal_verify.Stack.total_checks r.Ccal_verify.Stack.total_millis
  | Error msg -> Format.printf "  stack verification failed: %s@." msg
