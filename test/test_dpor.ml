(* The sleep-set DPOR explorer against the exhaustive oracle.

   The tentpole property: for every benchmark game, the set of logs reached
   by replaying the DPOR prefixes equals the set reached by exhaustive
   enumeration at the same depth — DPOR only skips schedules whose logs are
   already covered.  Under [Exact] independence the raw log sets must match;
   under [Commuting_events] they match up to canonical reordering of
   commuting events (Mazurkiewicz traces).

   Plus: scheduler coverage properties ([Sched.of_trace], [Sched.biased],
   [Sched.splitmix]) and the regression for race classification — a stuck
   message merely *containing* "race" must not be reported as a data race
   now that the verdict rides on [Layer.stuck_kind]. *)
open Ccal_core
open Ccal_objects
open Util
module V = Ccal_verify

(* ---- the equivalence harness ---- *)

let log_sets_equal a b =
  let subset a b = List.for_all (fun l -> List.exists (Log.equal l) b) a in
  subset a b && subset b a

(* Run DPOR and the exhaustive oracle at equal depth; fail unless the
   (canonicalized) distinct-log sets coincide.  Returns the DPOR stats so
   callers can also assert pruning. *)
let check_equiv ?(independence = V.Dpor.Exact) layer threads depth =
  let r =
    V.Budget.value
      (V.Dpor.explore_ctx ~ctx:V.Ctx.default ~independence ~depth layer threads)
  in
  let tids = List.map fst threads in
  let outs =
    V.Budget.value
      (V.Explore.run_all_ctx ~ctx:V.Ctx.default layer threads
         (V.Explore.exhaustive_scheds ~tids ~depth))
  in
  let canon l =
    match independence with
    | V.Dpor.Exact -> l
    | V.Dpor.Commuting_events -> V.Dpor.canonical_log l
  in
  let dpor_logs =
    Log.dedup
      (List.map (fun (o : Game.outcome) -> canon o.Game.log) r.V.Dpor.outcomes)
  in
  let exh_logs = Log.dedup (List.map canon (V.Explore.all_logs outs)) in
  check_int "distinct log count" (List.length exh_logs) (List.length dpor_logs);
  check_bool "log sets equal" true (log_sets_equal dpor_logs exh_logs);
  r.V.Dpor.stats

let lock_client i =
  Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
      Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))

let queue_client i =
  Prog.bind (Prog.call "enQ_s" [ vi 0; vi (10 * i) ]) (fun _ ->
      Prog.call "deQ_s" [ vi 0 ])

let ticket_threads n =
  let m = Ticket_lock.c_module () in
  List.init n (fun k -> k + 1, Prog.Module.link m (lock_client (k + 1)))

let mcs_threads n =
  let m = Mcs_lock.c_module () in
  List.init n (fun k -> k + 1, Prog.Module.link m (lock_client (k + 1)))

let queue_threads n =
  let m =
    Ccal_clight.Csem.module_of_fns [ Queue_shared.deq_fn; Queue_shared.enq_fn ]
  in
  List.init n (fun k -> k + 1, Prog.Module.link m (queue_client (k + 1)))

let test_ticket_2t () =
  ignore (check_equiv (Ticket_lock.l0 ()) (ticket_threads 2) 4)

let test_ticket_3t () =
  ignore (check_equiv (Ticket_lock.l0 ()) (ticket_threads 3) 3)

let test_ticket_2t_commuting () =
  ignore
    (check_equiv ~independence:V.Dpor.Commuting_events (Ticket_lock.l0 ())
       (ticket_threads 2) 4)

let test_mcs_2t () = ignore (check_equiv (Mcs_lock.l0 ()) (mcs_threads 2) 4)
let test_mcs_3t () = ignore (check_equiv (Mcs_lock.l0 ()) (mcs_threads 3) 3)

let test_queue_2t () =
  ignore (check_equiv (Queue_shared.underlay ()) (queue_threads 2) 4)

let test_queue_3t () =
  ignore (check_equiv (Queue_shared.underlay ()) (queue_threads 3) 3)

let test_queue_overlay_3t () =
  let threads = List.init 3 (fun k -> k + 1, queue_client (k + 1)) in
  ignore
    (check_equiv ~independence:V.Dpor.Commuting_events
       (Queue_shared.overlay ()) threads 4)

let test_llock_pruning_bound () =
  (* the acceptance game: the atomic lock interface blocks contending
     threads outright, so branching collapses wherever the lock is held —
     DPOR must find every distinct log while running at most half (in fact
     18/243) of the exhaustive schedules *)
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  let stats = check_equiv (Lock_intf.layer "Llock") threads 5 in
  check_bool "ran at most half the schedules" true
    (2 * stats.V.Dpor.schedules_run <= stats.V.Dpor.schedules_considered);
  check_int "considered = 3^5" 243 stats.V.Dpor.schedules_considered;
  check_bool "pruned + run covers considered" true
    (stats.V.Dpor.schedules_pruned + stats.V.Dpor.schedules_run
    = stats.V.Dpor.schedules_considered)

(* ---- equivalence on the newer objects ----

   The original corpus only exercised locks and queues; these pin the
   oracle equality on the games with qualitatively different branching:
   store buffers (TSO's silent commits), generation-counted blocking
   (barrier), asymmetric sharing (rwlock readers vs writers), and
   sleep/wakeup through the scheduler (condvar, IPC). *)

let test_tso_store_buffering () =
  (* the SB litmus game: buffered stores commit lazily, so the log sets
     include interleavings SC never shows — DPOR must find them all *)
  let t i j =
    Prog.seq (Prog.call "astore" [ vi i; vi 1 ]) (Prog.call "aload" [ vi j ])
  in
  ignore (check_equiv (Ccal_machine.Tso.layer ()) [ 1, t 1 2; 2, t 2 1 ] 4)

let test_tso_fenced () =
  let t i j =
    Prog.seq_all
      [ Prog.call "astore" [ vi i; vi 1 ]; Prog.call "mfence" [];
        Prog.call "aload" [ vi j ] ]
  in
  ignore (check_equiv (Ccal_machine.Tso.layer ()) [ 1, t 1 2; 2, t 2 1 ] 4)

let test_barrier_2t () =
  let placement = [ 1, 1; 2, 2 ] in
  let layer = Barrier.underlay ~placement () in
  let m = Barrier.c_module () in
  let client i =
    Prog.Module.link m
      (Prog.seq_all
         [ Prog.call "bar_wait" [ vi 7; vi 2 ]; Prog.call "texit" [];
           Prog.ret (vi i) ])
  in
  ignore (check_equiv layer [ 1, client 1; 2, client 2 ] 4)

let test_rwlock_readers_writer () =
  (* the atomic overlay, not the spinning C implementation: the spin
     retry loop can phase-lock with [of_trace]'s round-robin degradation
     (the writer's turn always lands while a reader holds the underlay
     lock), so those games livelock to the fuel limit and the exhaustive
     oracle drowns in quadratic log replays *)
  let layer = Rwlock.overlay () in
  let reader =
    Prog.seq (Prog.call "acq_r" [ vi 4 ]) (Prog.call "rel_r" [ vi 4 ])
  in
  let writer =
    Prog.seq (Prog.call "acq_w" [ vi 4 ]) (Prog.call "rel_w" [ vi 4 ])
  in
  ignore (check_equiv layer [ 1, reader; 2, reader; 3, writer ] 4)

let test_condvar_sleep_wake () =
  let placement = [ 1, 0; 2, 2 ] in
  let layer = Thread_sched.mt_layer placement (Lock_intf.layer "Llock") in
  let m = Condvar.c_module () in
  let sleeper =
    Prog.seq
      (Prog.call "acq" [ vi 0 ])
      (Prog.seq
         (Prog.Module.link m (Prog.call "cv_wait" [ vi 9; vi 0; vi 0 ]))
         (Prog.call Thread_sched.exit_tag []))
  in
  let waker =
    Prog.seq
      (Prog.Module.link m (Prog.call "cv_signal" [ vi 9 ]))
      (Prog.call Thread_sched.exit_tag [])
  in
  ignore (check_equiv layer [ 2, sleeper; 1, waker ] 4)

let test_ipc_producer_consumer () =
  let placement = [ 1, 1; 2, 2 ] in
  let layer = Ipc.underlay ~placement () in
  let m = Ipc.c_module () in
  let producer =
    Prog.Module.link m
      (Prog.seq
         (Prog.call "send" [ vi 5; vi 100 ])
         (Prog.call Thread_sched.exit_tag []))
  in
  let consumer =
    Prog.Module.link m
      (Prog.bind (Prog.call "recv" [ vi 5 ]) (fun _ ->
           Prog.call Thread_sched.exit_tag []))
  in
  ignore (check_equiv layer [ 1, producer; 2, consumer ] 3)

(* ---- frontier subtree splitting across the jobs grid ----

   [Dpor.explore ~jobs] splits the DFS frontier into independent subtrees
   (sleep sets stay domain-local); the whole result — the exact prefix
   list in order, every prune counter, the distinct-log count, and each
   replayed outcome — must be bit-identical to the sequential walk for
   every jobs count, including the oversubscribed ones. *)

let explore_fingerprint ~jobs ~depth layer threads =
  let r =
    V.Budget.value
      (V.Dpor.explore_ctx ~ctx:(V.Ctx.make ~jobs ()) ~depth layer threads)
  in
  ( r.V.Dpor.prefixes,
    r.V.Dpor.stats,
    List.map (fun (o : Game.outcome) -> o.Game.log, o.Game.status) r.V.Dpor.outcomes )

let check_split_equiv name layer threads depth =
  let ((_, stats, _) as seq) = explore_fingerprint ~jobs:1 ~depth layer threads in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "%s: split jobs=%d = sequential" name jobs)
        true
        (explore_fingerprint ~jobs ~depth layer threads = seq))
    [ 2; 4; 7 ];
  check_bool (name ^ ": pruned + run = considered") true
    (stats.V.Dpor.schedules_pruned + stats.V.Dpor.schedules_run
    = stats.V.Dpor.schedules_considered);
  stats

let test_split_ticket () =
  ignore (check_split_equiv "ticket" (Ticket_lock.l0 ()) (ticket_threads 2) 4)

let test_split_mcs () =
  ignore (check_split_equiv "mcs" (Mcs_lock.l0 ()) (mcs_threads 2) 4)

let test_split_queue () =
  ignore
    (check_split_equiv "queue" (Queue_shared.underlay ()) (queue_threads 2) 4)

let test_split_rwlock () =
  let reader =
    Prog.seq (Prog.call "acq_r" [ vi 4 ]) (Prog.call "rel_r" [ vi 4 ])
  in
  let writer =
    Prog.seq (Prog.call "acq_w" [ vi 4 ]) (Prog.call "rel_w" [ vi 4 ])
  in
  ignore
    (check_split_equiv "rwlock" (Rwlock.overlay ())
       [ 1, reader; 2, reader; 3, writer ] 4)

let test_split_condvar () =
  let placement = [ 1, 0; 2, 2 ] in
  let layer = Thread_sched.mt_layer placement (Lock_intf.layer "Llock") in
  let m = Condvar.c_module () in
  let sleeper =
    Prog.seq
      (Prog.call "acq" [ vi 0 ])
      (Prog.seq
         (Prog.Module.link m (Prog.call "cv_wait" [ vi 9; vi 0; vi 0 ]))
         (Prog.call Thread_sched.exit_tag []))
  in
  let waker =
    Prog.seq
      (Prog.Module.link m (Prog.call "cv_signal" [ vi 9 ]))
      (Prog.call Thread_sched.exit_tag [])
  in
  ignore (check_split_equiv "condvar" layer [ 2, sleeper; 1, waker ] 4)

let test_split_llock_6t_depth7 () =
  (* the headline scale point: 6^7 = 279,936 schedules considered — well
     past 10^5 — with the lock interface collapsing the real frontier to
     a sliver the split walk must still cover exactly *)
  let threads = List.init 6 (fun k -> k + 1, lock_client (k + 1)) in
  let stats = check_split_equiv "llock-6t" (Lock_intf.layer "Llock") threads 7 in
  check_int "considered = 6^7" 279_936 stats.V.Dpor.schedules_considered;
  check_bool "considered >= 10^5" true
    (stats.V.Dpor.schedules_considered >= 100_000);
  check_bool "DPOR pruned the bulk of the tree" true
    (2 * stats.V.Dpor.schedules_run <= stats.V.Dpor.schedules_considered)

(* ---- the engine matrix ----

   The Strategy API redesign promises every registered engine the same
   verdicts: for each corpus game, the distinct-log set reached by the
   sleep-set engine ([dpor]), the optimal engine flagless, and the optimal
   engine with state-dedup must all equal the exhaustive oracle's — and
   the flagless optimal walk must be bit-identical (prefixes, stats,
   outcomes) to the sleep-set walk it extends. *)

module E = V.Ctx.Engine

let explore_with ~engine layer threads depth =
  let r =
    V.Budget.value
      (V.Dpor.explore_ctx ~ctx:V.Ctx.default ~engine ~depth layer threads)
  in
  let logs =
    Log.dedup
      (List.map (fun (o : Game.outcome) -> o.Game.log) r.V.Dpor.outcomes)
  in
  logs, r

let check_engine_matrix name layer threads depth =
  let tids = List.map fst threads in
  let exh_logs =
    Log.dedup
      (V.Explore.all_logs
         (V.Budget.value
            (V.Explore.run_all_ctx ~ctx:V.Ctx.default layer threads
               (V.Explore.exhaustive_scheds ~tids ~depth))))
  in
  let engines =
    [ "dpor", E.dpor ~depth;
      "optimal", E.optimal ~depth ();
      "optimal,dedup", E.optimal ~dedup:true ~depth () ]
  in
  let results =
    List.map
      (fun (ename, engine) ->
        let logs, r = explore_with ~engine layer threads depth in
        check_int
          (Printf.sprintf "%s/%s: distinct log count vs oracle" name ename)
          (List.length exh_logs) (List.length logs);
        check_bool
          (Printf.sprintf "%s/%s: log set equals oracle" name ename)
          true
          (log_sets_equal logs exh_logs);
        ename, r)
      engines
  in
  (* flagless optimal is the sleep-set walk run sequentially: the entire
     result must coincide, not just the log set *)
  let walk r =
    ( r.V.Dpor.prefixes,
      r.V.Dpor.stats,
      List.map
        (fun (o : Game.outcome) -> o.Game.log, o.Game.status)
        r.V.Dpor.outcomes )
  in
  let dpor_r = List.assoc "dpor" results in
  let opt_r = List.assoc "optimal" results in
  check_bool (name ^ ": flagless optimal = dpor walk") true
    (walk opt_r = walk dpor_r);
  let dd_r = List.assoc "optimal,dedup" results in
  check_bool (name ^ ": dedup stats sane") true
    (dd_r.V.Dpor.stats.V.Dpor.dedup_hits >= 0)

let test_matrix_ticket () =
  check_engine_matrix "ticket" (Ticket_lock.l0 ()) (ticket_threads 2) 4

let test_matrix_mcs () =
  check_engine_matrix "mcs" (Mcs_lock.l0 ()) (mcs_threads 2) 4

let test_matrix_queue () =
  check_engine_matrix "queue" (Queue_shared.underlay ()) (queue_threads 2) 4

let test_matrix_rwlock () =
  let reader =
    Prog.seq (Prog.call "acq_r" [ vi 4 ]) (Prog.call "rel_r" [ vi 4 ])
  in
  let writer =
    Prog.seq (Prog.call "acq_w" [ vi 4 ]) (Prog.call "rel_w" [ vi 4 ])
  in
  check_engine_matrix "rwlock" (Rwlock.overlay ())
    [ 1, reader; 2, reader; 3, writer ]
    4

let test_matrix_kv () =
  let layer, threads = Ccal_kv.Kv_stack.ht_game ~shards:2 ~threads:2 () in
  check_engine_matrix "kv-ht" layer threads 4

(* ---- symmetry reduction ----

   [optimal,sym] prunes enabled moves of fresh threads whose programs are
   identical up to their own tid ([Fingerprint.prog_blind]); it keeps one
   representative per symmetry class, so its logs are a subset of the
   flagless frontier and the distinct count collapses to the orbit
   count.  The lock game (every client is acq/rel/ret over its own tid)
   is fully symmetric: 3 threads at depth 5 collapse 18 runs to 3. *)

let test_sym_prunes_lock () =
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  let layer = Lock_intf.layer "Llock" in
  let flag_logs, flag_r = explore_with ~engine:(E.optimal ~depth:5 ()) layer threads 5 in
  let sym_logs, sym_r =
    explore_with ~engine:(E.optimal ~sym:true ~depth:5 ()) layer threads 5
  in
  check_bool "sym pruned at least one branch" true
    (sym_r.V.Dpor.stats.V.Dpor.sym_prunes > 0);
  check_bool "sym ran strictly fewer schedules" true
    (sym_r.V.Dpor.stats.V.Dpor.schedules_run
    < flag_r.V.Dpor.stats.V.Dpor.schedules_run);
  check_bool "sym logs are a subset of the flagless logs" true
    (List.for_all (fun l -> List.exists (Log.equal l) flag_logs) sym_logs);
  check_bool "sym kept at least one representative" true
    (List.length sym_logs >= 1)

(* ---- state-dedup soundness property ----

   Random two-thread programs over the TSO cell layer (stores, loads and
   fences over two locations — silent buffer commits and all): the
   distinct leaf-log set under [optimal,dedup] must equal the flagless
   optimal engine's.  Dedup may only prune subtrees whose every leaf log
   is reachable elsewhere; dropping a distinct log is unsound. *)

let prop_dedup_never_drops_logs =
  let op_of_code c =
    match c mod 5 with
    | 0 -> Prog.call "astore" [ vi 1; vi 1 ]
    | 1 -> Prog.call "astore" [ vi 2; vi 2 ]
    | 2 -> Prog.call "aload" [ vi 1 ]
    | 3 -> Prog.call "aload" [ vi 2 ]
    | _ -> Prog.call "mfence" []
  in
  let prog_of_codes codes = Prog.seq_all (List.map op_of_code codes) in
  qtc ~count:40 "state-dedup never drops a distinct leaf log"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 3) (int_range 0 9))
        (list_of_size Gen.(1 -- 3) (int_range 0 9)))
    (fun (a, b) ->
      let layer = Ccal_machine.Tso.layer () in
      let threads = [ 1, prog_of_codes a; 2, prog_of_codes b ] in
      let flag_logs, _ = explore_with ~engine:(E.optimal ~depth:4 ()) layer threads 4 in
      let dd_logs, _ =
        explore_with ~engine:(E.optimal ~dedup:true ~depth:4 ()) layer threads 4
      in
      log_sets_equal flag_logs dd_logs)

(* ---- saturation ---- *)

let test_considered_saturates () =
  (* 3^40 overflows 63-bit ints; the counter must pin at [max_int] and
     render as ">max-int", never wrap to a small or negative number *)
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  let _, r = explore_with ~engine:(E.dpor ~depth:40) (Lock_intf.layer "Llock") threads 40 in
  check_int "considered saturates at max_int" max_int
    r.V.Dpor.stats.V.Dpor.schedules_considered;
  let rendered = Format.asprintf "%a" V.Dpor.pp_stats r.V.Dpor.stats in
  check_bool "saturated count renders as >max-int" true
    (let needle = ">max-int" in
     let n = String.length needle and m = String.length rendered in
     let rec scan i =
       i + n <= m && (String.sub rendered i n = needle || scan (i + 1))
     in
     scan 0)

(* ---- the --strategy grammar ---- *)

let test_engine_of_string_accepts () =
  let ok s expected =
    match E.of_string s with
    | Ok e -> check_bool ("parse " ^ s) true (E.to_string e = expected)
    | Error msg -> Alcotest.failf "%s rejected: %s" s msg
  in
  ok "dpor" "dpor:4";
  ok "dpor:7" "dpor:7";
  ok "default" "dpor:4";
  ok "optimal" "optimal:4";
  ok "optimal:8,dedup,sym" "optimal:8,dedup,sym";
  ok "optimal,sym" "optimal:4,sym";
  ok "exhaustive:3" "exhaustive:3";
  ok "random:5" "random:5"

let test_engine_of_string_rejects () =
  let rejects s fragment =
    match E.of_string s with
    | Ok e -> Alcotest.failf "%s accepted as %s" s (E.to_string e)
    | Error msg ->
      check_bool
        (Printf.sprintf "%s rejection names the problem (%S in %S)" s fragment
           msg)
        true
        (let n = String.length fragment and m = String.length msg in
         let rec scan i =
           i + n <= m && (String.sub msg i n = fragment || scan (i + 1))
         in
         scan 0)
  in
  rejects "dpor,dedup" "dedup";
  rejects "exhaustive:2,sym" "sym";
  rejects "optimal:0" "positive";
  rejects "optimal:x" "integer";
  rejects "default:3" "no depth";
  rejects "frobnicate" "unknown strategy"

(* ---- scheduler coverage properties ---- *)

let test_splitmix_corner_cases () =
  List.iter
    (fun x -> check_bool "splitmix >= 0" true (Sched.splitmix x >= 0))
    [ 0; 1; -1; max_int; min_int; min_int + 1; 0x9E3779B9 ]

let prop_splitmix_nonneg =
  qtc "splitmix non-negative on arbitrary ints" QCheck.int (fun x ->
      Sched.splitmix x >= 0)

let prop_of_trace_follows_then_round_robin =
  (* with runnable fixed at [1;2;3], of_trace must yield exactly the
     runnable entries of the trace in order (silently skipping the rest),
     then degrade to round-robin on the global step count *)
  qtc "of_trace skips non-runnable, then round-robin"
    QCheck.(list_of_size Gen.(0 -- 8) (int_range 0 5))
    (fun trace ->
      let runnable = [ 1; 2; 3 ] in
      let sched = Sched.of_trace trace in
      let expected_prefix = List.filter (fun i -> List.mem i runnable) trace in
      let total = List.length expected_prefix + 4 in
      let picks =
        List.init total (fun step ->
            sched.Sched.pick ~step Log.empty ~runnable)
      in
      let expected =
        List.map Option.some expected_prefix
        @ List.init 4 (fun k ->
              let step = List.length expected_prefix + k in
              Sched.round_robin.Sched.pick ~step Log.empty ~runnable)
      in
      picks = expected)

let prop_biased_picks_runnable =
  qtc "biased never picks a non-runnable thread"
    QCheck.(triple (int_range 0 4) (int_range 1 5) small_nat)
    (fun (favored, ratio, seed) ->
      List.for_all
        (fun runnable ->
          let sched = Sched.biased ~favored ~ratio ~seed in
          List.for_all
            (fun step ->
              match sched.Sched.pick ~step Log.empty ~runnable with
              | Some i -> List.mem i runnable
              | None -> false)
            [ 0; 1; 2; 3; 7; 11 ])
        [ [ 1 ]; [ 2; 3 ]; [ 1; 2; 3; 4 ]; [ 4 ] ])

(* ---- race classification regression ---- *)

let test_stuck_message_mentioning_race_is_not_a_race () =
  (* a primitive that gets stuck for an ordinary reason, with "race" in the
     message: under the old substring scan this was misreported as a data
     race; with structured [stuck_kind] it must be Other_failure *)
  let layer =
    Layer.make "Ltrap"
      [ Layer.shared_prim "trap" (fun _ _ _ ->
            Layer.Stuck "trace replay hit a race-detector bracket mismatch")
      ]
  in
  match
    V.Races.check_ctx ~ctx:V.Ctx.default ~scheds:[ Sched.round_robin ] layer
      [ 1, Prog.call "trap" [] ]
  with
  | V.Races.Other_failure msg ->
    check_bool "classified by kind, not by message" true
      (String.length msg > 0)
  | V.Races.Race _ -> Alcotest.fail "Invalid_transition misreported as race"
  | V.Races.Race_free _ -> Alcotest.fail "stuck run reported race-free"
  | V.Races.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"

let test_structured_race_is_still_a_race () =
  (* the positive control: a primitive that witnesses a genuine data race
     reports Layer.Race, and the checker surfaces it whatever the text *)
  let layer =
    Layer.make "Lracy"
      [ Layer.shared_prim "collide" (fun c _ _ ->
            Layer.Race (Printf.sprintf "CPU %d collided" c))
      ]
  in
  match
    V.Races.check_ctx ~ctx:V.Ctx.default ~scheds:[ Sched.round_robin ] layer
      [ 1, Prog.call "collide" [] ]
  with
  | V.Races.Race { detail; _ } ->
    check_bool "detail kept" true (String.length detail > 0)
  | V.Races.Other_failure msg -> Alcotest.failf "race demoted: %s" msg
  | V.Races.Race_free _ -> Alcotest.fail "racy run reported race-free"
  | V.Races.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"

let test_pushpull_race_detected_end_to_end () =
  (* the real thing: two CPUs pulling the same location through the
     push/pull machine — the Fig. 8 replay refuses the second pull and the
     verdict carries the owner in the detail *)
  let layer = Layer.make "Lpp" Ccal_machine.Pushpull.prims in
  let grab i = Prog.seq (Prog.call "pull" [ vi 7 ]) (Prog.ret (vi i)) in
  match
    V.Races.check_ctx ~ctx:V.Ctx.default ~scheds:[ Sched.of_trace [ 1; 2 ] ]
      layer
      [ 1, grab 1; 2, grab 2 ]
  with
  | V.Races.Race { detail; _ } ->
    check_bool "mentions ownership" true
      (String.length detail > 0
      && String.exists (fun c -> c = '7') detail)
  | V.Races.Other_failure msg -> Alcotest.failf "race demoted: %s" msg
  | V.Races.Race_free _ -> Alcotest.fail "racing pulls reported race-free"
  | V.Races.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"

let suite =
  [
    tc "equiv: ticket L0, 2 threads, depth 4" test_ticket_2t;
    tc "equiv: ticket L0, 3 threads, depth 3" test_ticket_3t;
    tc "equiv: ticket L0, commuting events" test_ticket_2t_commuting;
    tc "equiv: MCS L0, 2 threads, depth 4" test_mcs_2t;
    tc "equiv: MCS L0, 3 threads, depth 3" test_mcs_3t;
    tc "equiv: shared queue, 2 threads, depth 4" test_queue_2t;
    tc "equiv: shared queue, 3 threads, depth 3" test_queue_3t;
    tc "equiv: atomic queue overlay, commuting events" test_queue_overlay_3t;
    tc "Llock game: full coverage at <= half the schedules"
      test_llock_pruning_bound;
    tc "equiv: TSO store-buffering litmus, depth 4" test_tso_store_buffering;
    tc "equiv: TSO with mfence, depth 4" test_tso_fenced;
    tc "equiv: barrier episode, 2 threads, depth 4" test_barrier_2t;
    tc "equiv: rwlock reader vs writer, depth 4" test_rwlock_readers_writer;
    tc "equiv: condvar sleep/wake, depth 4" test_condvar_sleep_wake;
    tc "equiv: IPC producer/consumer, depth 3" test_ipc_producer_consumer;
    tc "split: ticket across jobs grid" test_split_ticket;
    tc "split: MCS across jobs grid" test_split_mcs;
    tc "split: shared queue across jobs grid" test_split_queue;
    tc "split: rwlock across jobs grid" test_split_rwlock;
    tc "split: condvar across jobs grid" test_split_condvar;
    tc "split: Llock 6 threads depth 7 (279,936 considered)"
      test_split_llock_6t_depth7;
    tc "engine matrix: ticket (dpor/optimal/dedup vs oracle)"
      test_matrix_ticket;
    tc "engine matrix: MCS" test_matrix_mcs;
    tc "engine matrix: shared queue" test_matrix_queue;
    tc "engine matrix: rwlock" test_matrix_rwlock;
    tc "engine matrix: kv hash table" test_matrix_kv;
    tc "symmetry reduction prunes the lock game" test_sym_prunes_lock;
    prop_dedup_never_drops_logs;
    tc "schedules_considered saturates at max_int" test_considered_saturates;
    tc "Engine.of_string accepts the grammar" test_engine_of_string_accepts;
    tc "Engine.of_string rejects by name" test_engine_of_string_rejects;
    tc "splitmix corner cases" test_splitmix_corner_cases;
    prop_splitmix_nonneg;
    prop_of_trace_follows_then_round_robin;
    prop_biased_picks_runnable;
    tc "stuck message containing 'race' is not a race"
      test_stuck_message_mentioning_race_is_not_a_race;
    tc "structured Layer.Race is reported as a race"
      test_structured_race_is_still_a_race;
    tc "push/pull collision detected end to end"
      test_pushpull_race_detected_end_to_end;
  ]
