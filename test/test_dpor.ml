(* The sleep-set DPOR explorer against the exhaustive oracle.

   The tentpole property: for every benchmark game, the set of logs reached
   by replaying the DPOR prefixes equals the set reached by exhaustive
   enumeration at the same depth — DPOR only skips schedules whose logs are
   already covered.  Under [Exact] independence the raw log sets must match;
   under [Commuting_events] they match up to canonical reordering of
   commuting events (Mazurkiewicz traces).

   Plus: scheduler coverage properties ([Sched.of_trace], [Sched.biased],
   [Sched.splitmix]) and the regression for race classification — a stuck
   message merely *containing* "race" must not be reported as a data race
   now that the verdict rides on [Layer.stuck_kind]. *)
open Ccal_core
open Ccal_objects
open Util
module V = Ccal_verify

(* ---- the equivalence harness ---- *)

let log_sets_equal a b =
  let subset a b = List.for_all (fun l -> List.exists (Log.equal l) b) a in
  subset a b && subset b a

(* Run DPOR and the exhaustive oracle at equal depth; fail unless the
   (canonicalized) distinct-log sets coincide.  Returns the DPOR stats so
   callers can also assert pruning. *)
let check_equiv ?(independence = V.Dpor.Exact) layer threads depth =
  let r = V.Dpor.explore ~independence ~depth layer threads in
  let tids = List.map fst threads in
  let outs =
    V.Explore.run_all layer threads (V.Explore.exhaustive_scheds ~tids ~depth)
  in
  let canon l =
    match independence with
    | V.Dpor.Exact -> l
    | V.Dpor.Commuting_events -> V.Dpor.canonical_log l
  in
  let dpor_logs =
    Log.dedup
      (List.map (fun (o : Game.outcome) -> canon o.Game.log) r.V.Dpor.outcomes)
  in
  let exh_logs = Log.dedup (List.map canon (V.Explore.all_logs outs)) in
  check_int "distinct log count" (List.length exh_logs) (List.length dpor_logs);
  check_bool "log sets equal" true (log_sets_equal dpor_logs exh_logs);
  r.V.Dpor.stats

let lock_client i =
  Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
      Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))

let queue_client i =
  Prog.bind (Prog.call "enQ_s" [ vi 0; vi (10 * i) ]) (fun _ ->
      Prog.call "deQ_s" [ vi 0 ])

let ticket_threads n =
  let m = Ticket_lock.c_module () in
  List.init n (fun k -> k + 1, Prog.Module.link m (lock_client (k + 1)))

let mcs_threads n =
  let m = Mcs_lock.c_module () in
  List.init n (fun k -> k + 1, Prog.Module.link m (lock_client (k + 1)))

let queue_threads n =
  let m =
    Ccal_clight.Csem.module_of_fns [ Queue_shared.deq_fn; Queue_shared.enq_fn ]
  in
  List.init n (fun k -> k + 1, Prog.Module.link m (queue_client (k + 1)))

let test_ticket_2t () =
  ignore (check_equiv (Ticket_lock.l0 ()) (ticket_threads 2) 4)

let test_ticket_3t () =
  ignore (check_equiv (Ticket_lock.l0 ()) (ticket_threads 3) 3)

let test_ticket_2t_commuting () =
  ignore
    (check_equiv ~independence:V.Dpor.Commuting_events (Ticket_lock.l0 ())
       (ticket_threads 2) 4)

let test_mcs_2t () = ignore (check_equiv (Mcs_lock.l0 ()) (mcs_threads 2) 4)
let test_mcs_3t () = ignore (check_equiv (Mcs_lock.l0 ()) (mcs_threads 3) 3)

let test_queue_2t () =
  ignore (check_equiv (Queue_shared.underlay ()) (queue_threads 2) 4)

let test_queue_3t () =
  ignore (check_equiv (Queue_shared.underlay ()) (queue_threads 3) 3)

let test_queue_overlay_3t () =
  let threads = List.init 3 (fun k -> k + 1, queue_client (k + 1)) in
  ignore
    (check_equiv ~independence:V.Dpor.Commuting_events
       (Queue_shared.overlay ()) threads 4)

let test_llock_pruning_bound () =
  (* the acceptance game: the atomic lock interface blocks contending
     threads outright, so branching collapses wherever the lock is held —
     DPOR must find every distinct log while running at most half (in fact
     18/243) of the exhaustive schedules *)
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  let stats = check_equiv (Lock_intf.layer "Llock") threads 5 in
  check_bool "ran at most half the schedules" true
    (2 * stats.V.Dpor.schedules_run <= stats.V.Dpor.schedules_considered);
  check_int "considered = 3^5" 243 stats.V.Dpor.schedules_considered;
  check_bool "pruned + run covers considered" true
    (stats.V.Dpor.schedules_pruned + stats.V.Dpor.schedules_run
    = stats.V.Dpor.schedules_considered)

(* ---- scheduler coverage properties ---- *)

let test_splitmix_corner_cases () =
  List.iter
    (fun x -> check_bool "splitmix >= 0" true (Sched.splitmix x >= 0))
    [ 0; 1; -1; max_int; min_int; min_int + 1; 0x9E3779B9 ]

let prop_splitmix_nonneg =
  qtc "splitmix non-negative on arbitrary ints" QCheck.int (fun x ->
      Sched.splitmix x >= 0)

let prop_of_trace_follows_then_round_robin =
  (* with runnable fixed at [1;2;3], of_trace must yield exactly the
     runnable entries of the trace in order (silently skipping the rest),
     then degrade to round-robin on the global step count *)
  qtc "of_trace skips non-runnable, then round-robin"
    QCheck.(list_of_size Gen.(0 -- 8) (int_range 0 5))
    (fun trace ->
      let runnable = [ 1; 2; 3 ] in
      let sched = Sched.of_trace trace in
      let expected_prefix = List.filter (fun i -> List.mem i runnable) trace in
      let total = List.length expected_prefix + 4 in
      let picks =
        List.init total (fun step ->
            sched.Sched.pick ~step Log.empty ~runnable)
      in
      let expected =
        List.map Option.some expected_prefix
        @ List.init 4 (fun k ->
              let step = List.length expected_prefix + k in
              Sched.round_robin.Sched.pick ~step Log.empty ~runnable)
      in
      picks = expected)

let prop_biased_picks_runnable =
  qtc "biased never picks a non-runnable thread"
    QCheck.(triple (int_range 0 4) (int_range 1 5) small_nat)
    (fun (favored, ratio, seed) ->
      List.for_all
        (fun runnable ->
          let sched = Sched.biased ~favored ~ratio ~seed in
          List.for_all
            (fun step ->
              match sched.Sched.pick ~step Log.empty ~runnable with
              | Some i -> List.mem i runnable
              | None -> false)
            [ 0; 1; 2; 3; 7; 11 ])
        [ [ 1 ]; [ 2; 3 ]; [ 1; 2; 3; 4 ]; [ 4 ] ])

(* ---- race classification regression ---- *)

let test_stuck_message_mentioning_race_is_not_a_race () =
  (* a primitive that gets stuck for an ordinary reason, with "race" in the
     message: under the old substring scan this was misreported as a data
     race; with structured [stuck_kind] it must be Other_failure *)
  let layer =
    Layer.make "Ltrap"
      [ Layer.shared_prim "trap" (fun _ _ _ ->
            Layer.Stuck "trace replay hit a race-detector bracket mismatch")
      ]
  in
  match
    V.Races.check layer [ 1, Prog.call "trap" [] ] ~scheds:[ Sched.round_robin ]
  with
  | V.Races.Other_failure msg ->
    check_bool "classified by kind, not by message" true
      (String.length msg > 0)
  | V.Races.Race _ -> Alcotest.fail "Invalid_transition misreported as race"
  | V.Races.Race_free _ -> Alcotest.fail "stuck run reported race-free"

let test_structured_race_is_still_a_race () =
  (* the positive control: a primitive that witnesses a genuine data race
     reports Layer.Race, and the checker surfaces it whatever the text *)
  let layer =
    Layer.make "Lracy"
      [ Layer.shared_prim "collide" (fun c _ _ ->
            Layer.Race (Printf.sprintf "CPU %d collided" c))
      ]
  in
  match
    V.Races.check layer
      [ 1, Prog.call "collide" [] ]
      ~scheds:[ Sched.round_robin ]
  with
  | V.Races.Race { detail; _ } ->
    check_bool "detail kept" true (String.length detail > 0)
  | V.Races.Other_failure msg -> Alcotest.failf "race demoted: %s" msg
  | V.Races.Race_free _ -> Alcotest.fail "racy run reported race-free"

let test_pushpull_race_detected_end_to_end () =
  (* the real thing: two CPUs pulling the same location through the
     push/pull machine — the Fig. 8 replay refuses the second pull and the
     verdict carries the owner in the detail *)
  let layer = Layer.make "Lpp" Ccal_machine.Pushpull.prims in
  let grab i = Prog.seq (Prog.call "pull" [ vi 7 ]) (Prog.ret (vi i)) in
  match
    V.Races.check layer
      [ 1, grab 1; 2, grab 2 ]
      ~scheds:[ Sched.of_trace [ 1; 2 ] ]
  with
  | V.Races.Race { detail; _ } ->
    check_bool "mentions ownership" true
      (String.length detail > 0
      && String.exists (fun c -> c = '7') detail)
  | V.Races.Other_failure msg -> Alcotest.failf "race demoted: %s" msg
  | V.Races.Race_free _ -> Alcotest.fail "racing pulls reported race-free"

let suite =
  [
    tc "equiv: ticket L0, 2 threads, depth 4" test_ticket_2t;
    tc "equiv: ticket L0, 3 threads, depth 3" test_ticket_3t;
    tc "equiv: ticket L0, commuting events" test_ticket_2t_commuting;
    tc "equiv: MCS L0, 2 threads, depth 4" test_mcs_2t;
    tc "equiv: MCS L0, 3 threads, depth 3" test_mcs_3t;
    tc "equiv: shared queue, 2 threads, depth 4" test_queue_2t;
    tc "equiv: shared queue, 3 threads, depth 3" test_queue_3t;
    tc "equiv: atomic queue overlay, commuting events" test_queue_overlay_3t;
    tc "Llock game: full coverage at <= half the schedules"
      test_llock_pruning_bound;
    tc "splitmix corner cases" test_splitmix_corner_cases;
    prop_splitmix_nonneg;
    prop_of_trace_follows_then_round_robin;
    prop_biased_picks_runnable;
    tc "stuck message containing 'race' is not a race"
      test_stuck_message_mentioning_race_is_not_a_race;
    tc "structured Layer.Race is reported as a race"
      test_structured_race_is_still_a_race;
    tc "push/pull collision detected end to end"
      test_pushpull_race_detected_end_to_end;
  ]
