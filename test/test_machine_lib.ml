(* Tests for the multicore machine substrate: push/pull memory (Fig. 6/8),
   atomic cells, Mx86 and the assembly semantics (S9–S11). *)
open Ccal_core
open Ccal_machine
open Util

let hw () = Mx86.layer ()

(* ---- push/pull ---- *)

let test_pull_then_push () =
  let prog =
    Prog.seq_all
      [
        Prog.call "pull" [ vi 0 ];
        Prog.call "push" [ vi 0; vi 42 ];
        Prog.call "pull" [ vi 0 ];
      ]
  in
  let v = expect_done (hw ()) prog in
  check_int "second pull sees the push" 42 (Value.to_int v)

let test_pull_initial_zero () =
  let v = expect_done (hw ()) (Prog.call "pull" [ vi 7 ]) in
  check_int "fresh location" 0 (Value.to_int v)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_double_pull_race () =
  let msg =
    expect_stuck (hw ())
      (Prog.seq (Prog.call "pull" [ vi 0 ]) (Prog.call "pull" [ vi 0 ]))
  in
  check_bool "mentions race" true (contains msg "race")

let test_push_without_pull_race () =
  match (run_solo (hw ()) (Prog.call "push" [ vi 0; vi 1 ])).Machine.outcome with
  | Machine.Stuck_run _ -> ()
  | _ -> Alcotest.fail "push of free location must be a race"

let test_cross_thread_push_race () =
  (* thread 2 pushes a location thread 1 pulled *)
  let layer = hw () in
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.call "pull" [ vi 0 ];
           2, Prog.call "push" [ vi 0; vi 5 ] ]
         (Sched.of_trace [ 1; 2 ]))
  in
  match o.Game.status with
  | Game.Stuck (2, Layer.Data_race, _) -> ()
  | s -> Alcotest.failf "expected race, got %a" Game.pp_status s

let test_replay_loc_ownership () =
  let l = log_of [ ev ~args:[ vi 3 ] 1 "pull" ] in
  (match Replay.run_exn (Pushpull.replay_loc 3) l with
  | _, Pushpull.Owned 1 -> ()
  | _ -> Alcotest.fail "expected owned by 1");
  let l2 = Log.append (ev ~args:[ vi 3; vi 9 ] 1 "push") l in
  match Replay.run_exn (Pushpull.replay_loc 3) l2 with
  | v, Pushpull.Free -> check_int "published" 9 (Value.to_int v)
  | _ -> Alcotest.fail "expected free"

let test_race_free_predicate () =
  let good = log_of [ ev ~args:[ vi 0 ] 1 "pull"; ev ~args:[ vi 0; vi 1 ] 1 "push" ] in
  let bad = log_of [ ev ~args:[ vi 0 ] 1 "pull"; ev ~args:[ vi 0 ] 2 "pull" ] in
  check_bool "good" true (Pushpull.race_free good);
  check_bool "bad" false (Pushpull.race_free bad)

(* ---- atomic cells ---- *)

let test_faa () =
  let prog =
    Prog.seq_all
      [ Prog.call "faa" [ vi 10; vi 1 ];
        Prog.call "faa" [ vi 10; vi 1 ];
        Prog.call "aload" [ vi 10 ] ]
  in
  check_int "two increments" 2 (Value.to_int (expect_done (hw ()) prog))

let test_faa_returns_old () =
  let prog =
    Prog.seq (Prog.call "faa" [ vi 10; vi 5 ]) (Prog.call "faa" [ vi 10; vi 5 ])
  in
  check_int "second faa sees 5" 5 (Value.to_int (expect_done (hw ()) prog))

let test_xchg () =
  let prog =
    Prog.seq (Prog.call "xchg" [ vi 11; vi 7 ]) (Prog.call "xchg" [ vi 11; vi 8 ])
  in
  check_int "xchg returns old" 7 (Value.to_int (expect_done (hw ()) prog))

let test_cas_success_and_failure () =
  let prog =
    Prog.seq_all
      [ Prog.call "astore" [ vi 12; vi 3 ];
        Prog.call "cas" [ vi 12; vi 3; vi 4 ];  (* succeeds, returns 3 *)
        Prog.call "cas" [ vi 12; vi 3; vi 5 ];  (* fails, returns 4 *)
        Prog.call "aload" [ vi 12 ] ]
  in
  check_int "cell after cas" 4 (Value.to_int (expect_done (hw ()) prog))

let test_cells_independent () =
  let prog =
    Prog.seq_all
      [ Prog.call "astore" [ vi 1; vi 100 ]; Prog.call "aload" [ vi 2 ] ]
  in
  check_int "cell 2 untouched" 0 (Value.to_int (expect_done (hw ()) prog))

let test_cpuid () =
  check_int "cpuid" 5 (Value.to_int (expect_done ~tid:5 (hw ()) (Prog.call "cpuid" [])))

(* ---- Mx86 behaviors & multicore linking (Thm 3.1) ---- *)

let faa_round i =
  Prog.seq_all
    [ Prog.call "faa" [ vi 0; vi 1 ]; Prog.call "faa" [ vi 0; vi 1 ];
      Prog.ret (vi i) ]

let test_mx86_logs_switches () =
  let outcomes =
    Mx86.behaviors ~threads:[ 1, faa_round 1; 2, faa_round 2 ]
      ~scheds:[ Sched.of_trace [ 1; 2; 1; 2 ] ] ()
  in
  match outcomes with
  | [ o ] -> check_bool "switch events" true (Log.count Event.is_switch o.Game.log >= 2)
  | _ -> Alcotest.fail "one outcome expected"

let test_multicore_linking () =
  match
    Mx86.check_multicore_linking
      ~threads:[ 1, faa_round 1; 2, faa_round 2 ]
      ~scheds:(Sched.default_suite ~seeds:6) ()
  with
  | Ok n -> check_int "all schedules linked" 7 n
  | Error msg -> Alcotest.fail msg

let test_erase_switches () =
  let l = log_of [ Event.switch 1; ev 1 "faa"; Event.switch 2 ] in
  check_int "erased" 1 (Log.length (Sim_rel.apply Mx86.erase_switches l))

(* ---- assembly semantics ---- *)

let asm_const_fn =
  { Asm.name = "const42"; arity = 0;
    body = [ Asm.Mov (Asm.EAX, Asm.Imm 42); Asm.Ret (Asm.Reg Asm.EAX) ] }

let test_asm_const () =
  check_int "const" 42
    (Value.to_int (expect_done (hw ()) (Asm_sem.prog_of_fn asm_const_fn [])))

let asm_add_fn =
  { Asm.name = "add"; arity = 2;
    body =
      [ Asm.Load (Asm.EAX, Asm.Imm 0);
        Asm.Load (Asm.EBX, Asm.Imm 1);
        Asm.Op (Asm.Add, Asm.EAX, Asm.Reg Asm.EBX);
        Asm.Ret (Asm.Reg Asm.EAX) ] }

let test_asm_args_in_frame () =
  check_int "3+4" 7
    (Value.to_int (expect_done (hw ()) (Asm_sem.prog_of_fn asm_add_fn [ vi 3; vi 4 ])))

let asm_loop_fn =
  (* sum 1..n via a loop *)
  { Asm.name = "sum"; arity = 1;
    body =
      [ Asm.Load (Asm.ECX, Asm.Imm 0);
        Asm.Mov (Asm.EAX, Asm.Imm 0);
        Asm.Label "loop";
        Asm.Jz (Asm.Reg Asm.ECX, "end");
        Asm.Op (Asm.Add, Asm.EAX, Asm.Reg Asm.ECX);
        Asm.Op (Asm.Sub, Asm.ECX, Asm.Imm 1);
        Asm.Jmp "loop";
        Asm.Label "end";
        Asm.Ret (Asm.Reg Asm.EAX) ] }

let test_asm_loop () =
  check_int "sum 1..5" 15
    (Value.to_int (expect_done (hw ()) (Asm_sem.prog_of_fn asm_loop_fn [ vi 5 ])))

let asm_call_fn =
  { Asm.name = "do_faa"; arity = 1;
    body =
      [ Asm.Load (Asm.EAX, Asm.Imm 0);
        Asm.Push (Asm.Reg Asm.EAX);
        Asm.Push (Asm.Imm 1);
        Asm.CallPrim ("faa", 2);
        Asm.Ret (Asm.Reg Asm.EAX) ] }

let test_asm_callprim_arg_order () =
  (* faa(cell, 1): first pushed must be the cell address *)
  let prog =
    Prog.seq
      (Asm_sem.prog_of_fn asm_call_fn [ vi 33 ])
      (Prog.call "aload" [ vi 33 ])
  in
  check_int "cell incremented" 1 (Value.to_int (expect_done (hw ()) prog))

let test_asm_div_by_zero_faults () =
  let f =
    { Asm.name = "crash"; arity = 0;
      body = [ Asm.Mov (Asm.EAX, Asm.Imm 1); Asm.Op (Asm.Div, Asm.EAX, Asm.Imm 0);
               Asm.Ret (Asm.Reg Asm.EAX) ] }
  in
  ignore (expect_stuck (hw ()) (Asm_sem.prog_of_fn f []))

let test_asm_fuel_faults () =
  let f =
    { Asm.name = "spin"; arity = 0;
      body = [ Asm.Label "l"; Asm.Jmp "l" ] }
  in
  ignore (expect_stuck (hw ()) (Asm_sem.prog_of_fn ~fuel:1000 f []))

let test_asm_pop_empty_faults () =
  let f = { Asm.name = "pop"; arity = 0; body = [ Asm.Pop Asm.EAX ] } in
  ignore (expect_stuck (hw ()) (Asm_sem.prog_of_fn f []))

let test_asm_duplicate_label () =
  let f =
    { Asm.name = "dup"; arity = 0;
      body = [ Asm.Label "l"; Asm.Label "l" ] }
  in
  Alcotest.check_raises "duplicate" (Asm_sem.Compile_error "duplicate label l")
    (fun () -> ignore (Asm_sem.prog_of_fn f []))

let test_asm_retvoid () =
  let f = { Asm.name = "v"; arity = 0; body = [ Asm.RetVoid ] } in
  check_bool "unit" true
    (Value.equal Value.unit (expect_done (hw ()) (Asm_sem.prog_of_fn f [])))

(* properties *)

let prop_faa_sum_any_interleaving =
  qtc ~count:60 "faa total independent of schedule" QCheck.(int_range 1 500)
    (fun seed ->
      let layer = hw () in
      let o =
        Game.run
          (Game.config layer
             [ 1, faa_round 1; 2, faa_round 2; 3, faa_round 3 ]
             (Sched.random ~seed))
      in
      Game.successful o
      && Replay.run_exn (Atomic.replay_cell 0) o.Game.log = 6)

let prop_xchg_last_wins =
  qtc ~count:60 "cell value = argument of last xchg" QCheck.(int_range 1 500)
    (fun seed ->
      let layer = hw () in
      let prog i = Prog.call "xchg" [ vi 4; vi (100 + i) ] in
      let o =
        Game.run (Game.config layer [ 1, prog 1; 2, prog 2 ] (Sched.random ~seed))
      in
      let final = Replay.run_exn (Atomic.replay_cell 4) o.Game.log in
      final = 101 || final = 102)

let suite =
  [
    tc "pull then push" test_pull_then_push;
    tc "pull initial zero" test_pull_initial_zero;
    tc "double pull race" test_double_pull_race;
    tc "push without pull race" test_push_without_pull_race;
    tc "cross thread push race" test_cross_thread_push_race;
    tc "replay_loc ownership" test_replay_loc_ownership;
    tc "race_free predicate" test_race_free_predicate;
    tc "faa" test_faa;
    tc "faa returns old" test_faa_returns_old;
    tc "xchg" test_xchg;
    tc "cas" test_cas_success_and_failure;
    tc "cells independent" test_cells_independent;
    tc "cpuid" test_cpuid;
    tc "mx86 logs switches" test_mx86_logs_switches;
    tc "multicore linking (thm 3.1)" test_multicore_linking;
    tc "erase switches" test_erase_switches;
    tc "asm const" test_asm_const;
    tc "asm args in frame" test_asm_args_in_frame;
    tc "asm loop" test_asm_loop;
    tc "asm callprim arg order" test_asm_callprim_arg_order;
    tc "asm div by zero faults" test_asm_div_by_zero_faults;
    tc "asm fuel faults" test_asm_fuel_faults;
    tc "asm pop empty faults" test_asm_pop_empty_faults;
    tc "asm duplicate label" test_asm_duplicate_label;
    tc "asm retvoid" test_asm_retvoid;
    prop_faa_sum_any_interleaving;
    prop_xchg_last_wins;
  ]
