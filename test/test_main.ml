(* Test runner: one alcotest section per subsystem of DESIGN.md. *)
let () =
  Alcotest.run "ccal"
    [
      "events-logs-replay (S1)", Test_value_log.suite;
      "machine-game (S2,S4,S5)", Test_machine_game.suite;
      "simulation-calculus-refinement (S6-S8)", Test_simulation_calculus.suite;
      "multicore-machine (S9-S11)", Test_machine_lib.suite;
      "clightx-compcertx (S12-S14)", Test_clight_compile.suite;
      "locks (S15,S16)", Test_locks.suite;
      "queues (S17)", Test_queues.suite;
      "multithreading (S18-S21)", Test_multithread.suite;
      "verify-and-injection (S22)", Test_verify_injection.suite;
      "extensions (TSO, rwlock, Wk/Hcomp)", Test_extensions.suite;
      "api-surface-and-corner-cases", Test_surface.suite;
      "liveness-and-deadlock", Test_liveness.suite;
      "dpor-exploration (S23)", Test_dpor.suite;
      "parallel-checking (S24)", Test_parallel.suite;
      "perf-gate (S24)", Test_perf_gate.suite;
      "cross-cutting-invariants", Test_invariants.suite;
      "telemetry (S25)", Test_telemetry.suite;
      "certificate-cache (S26)", Test_cache.suite;
      "robustness (S27)", Test_robust.suite;
      "kv-layer-stack (S28)", Test_kv.suite;
      "memory-model-litmus (S29)", Test_litmus.suite;
      "crash-safety (S30)", Test_crash.suite;
    ]
