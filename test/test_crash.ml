(* Crash-safe layers (DESIGN.md S30): the async-disk machine, the
   write-ahead log object, the durable KV edge, the synthesized crash
   pseudo-thread, and the crash-refinement certifier — including the
   deliberately unsynced WAL variant, which must fail with a stable
   named crash point. *)

open Ccal_core
open Ccal_verify
open Ccal_disk
open Util

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)
(* ------------------------------------------------------------------ *)

let d_write p v = Prog.call Disk.write_tag [ vi p; v ]
let d_read p = Prog.call Disk.read_tag [ vi p ]
let d_sync = Prog.call Disk.sync_tag []

let run_game ?(max_steps = 10_000) ?(sched = Sched.round_robin) layer threads =
  Game.run (Game.config ~max_steps layer threads sched)

let disk_state log =
  match Disk.replay_log log with
  | Ok st -> st
  | Error msg -> Alcotest.failf "disk replay: %s" msg

let expect_all_done (o : Game.outcome) =
  match o.Game.status with
  | Game.All_done -> ()
  | s -> Alcotest.failf "game did not finish: %a" Game.pp_status s

(* ------------------------------------------------------------------ *)
(* the async-disk machine                                              *)
(* ------------------------------------------------------------------ *)

let test_disk_write_read_sync () =
  (* an unsynced write is visible to reads but not durable *)
  let o =
    run_game (Disk.layer ())
      [ 1, Prog.seq (d_write 1 (vi 7)) (d_read 1) ]
  in
  expect_all_done o;
  Alcotest.check value_testable "read sees the in-flight write"
    (vi 7)
    (List.assoc 1 o.Game.results);
  let st = disk_state o.Game.log in
  check_int "one write in flight" 1 (List.length (Disk.inflight st));
  check_bool "nothing durable yet" true (Disk.durable_page st 1 = None);
  (* sync group-commits it *)
  let o =
    run_game (Disk.layer ())
      [ 1, Prog.seq (d_write 1 (vi 7)) (Prog.seq d_sync (d_read 1)) ]
  in
  expect_all_done o;
  let st = disk_state o.Game.log in
  check_int "in-flight drained" 0 (List.length (Disk.inflight st));
  Alcotest.check value_testable "page durable after sync"
    (vi 7)
    (Option.value (Disk.durable_page st 1) ~default:Disk.unwritten)

let test_disk_unwritten_page () =
  let o = run_game (Disk.layer ()) [ 1, d_read 9 ] in
  expect_all_done o;
  Alcotest.check value_testable "unwritten page reads as Vint 0"
    Disk.unwritten
    (List.assoc 1 o.Game.results)

let test_disk_crash_commit_masks () =
  (* two writes in flight; the crash masks pick them off bit by bit *)
  let o =
    run_game (Disk.layer ())
      [ 1, Prog.seq (d_write 1 (vi 10)) (d_write 2 (vi 20)) ]
  in
  expect_all_done o;
  let st = disk_state o.Game.log in
  check_int "two in flight" 2 (List.length (Disk.inflight st));
  (* keep only the older write *)
  let c = Disk.crash_commit ~keep:0b01 ~tear:0 st in
  check_bool "crashed" true c.Disk.crashed;
  Alcotest.check value_testable "bit 0 committed" (vi 10)
    (Option.value (Disk.durable_page c 1) ~default:Disk.unwritten);
  check_bool "bit 1 dropped" true (Disk.durable_page c 2 = None);
  check_int "nothing left in flight" 0 (List.length (Disk.inflight c));
  (* keep both, tearing the newer one *)
  let c = Disk.crash_commit ~keep:0b11 ~tear:0b10 st in
  Alcotest.check value_testable "bit 0 intact" (vi 10)
    (Option.value (Disk.durable_page c 1) ~default:Disk.unwritten);
  check_bool "bit 1 torn" true
    (Disk.is_torn (Option.value (Disk.durable_page c 2) ~default:Disk.unwritten));
  (* keep-all without tearing = what a sync would have done *)
  let c = Disk.crash_commit ~keep:(Durability.all_keep 2) ~tear:0 st in
  check_bool "all-keep matches commit_all" true
    ((Disk.commit_all st).Disk.durable = c.Disk.durable)

let test_disk_crash_halts_real_threads () =
  (* with the crash primitive exported, the crash pseudo-thread's move is
     schedulable: some interleavings lose the unsynced writes, and a
     post-crash machine never completes a real thread's disk call *)
  let layer = Disk.layer ~crashes:true () in
  let threads = [ 1, Prog.seq (d_write 1 (vi 5)) (d_read 1) ] in
  let scheds =
    Explore.exhaustive_scheds ~tids:[ 1; Durability.crash_tid ] ~depth:4
  in
  let outcomes = List.map (fun s -> run_game ~sched:s layer threads) scheds in
  (* the crash thread's move is always eventually schedulable, so every
     play crashes — what varies is whether the real thread got its read
     in first *)
  let cut_short, completed =
    List.partition
      (fun (o : Game.outcome) -> not (List.mem_assoc 1 o.Game.results))
      outcomes
  in
  check_bool "some schedule crashes before the read" true (cut_short <> []);
  check_bool "some schedule lets the thread finish first" true (completed <> []);
  List.iter
    (fun (o : Game.outcome) ->
      let st = disk_state o.Game.log in
      check_bool "machine crashed" true st.Disk.crashed;
      (* the in-game crash keeps nothing: a write still in flight at the
         crash is gone from the platter, never torn *)
      check_bool "post-crash platter holds no torn page" true
        (not (Disk.is_torn (Option.value (Disk.durable_page st 1) ~default:Disk.unwritten)));
      (* a post-crash machine never completes a real thread's disk call *)
      match o.Game.status with
      | Game.Deadlock tids -> check_bool "real thread blocked" true (List.mem 1 tids)
      | s -> Alcotest.failf "cut-short game ended oddly: %a" Game.pp_status s)
    cut_short

(* ------------------------------------------------------------------ *)
(* pseudo-thread synthesis (the Game.pseudo_threads satellite)         *)
(* ------------------------------------------------------------------ *)

let test_pseudo_thread_tids_disjoint () =
  let threads = List.init 3 (fun k -> (k + 1, Prog.ret Value.unit)) in
  (* crash-enabled disk layer under SC: exactly the crash thread *)
  let crash_only =
    Game.pseudo_threads ~memory:Memory.Sc (Disk.layer ~crashes:true ()) threads
  in
  Alcotest.(check (list int)) "crash thread at -1"
    [ Durability.crash_tid ] (List.map fst crash_only);
  (* TSO machine layer: one flusher per real thread, none at -1 *)
  let flushers =
    Game.pseudo_threads ~memory:Memory.Tso
      (Ccal_machine.Tso.machine_layer Memory.Tso)
      threads
  in
  let tids = List.map fst flushers in
  check_int "one flusher per cpu" 3 (List.length tids);
  List.iter
    (fun t ->
      check_bool "flusher tid negative" true (t < 0);
      check_bool "flusher tid leaves -1 to the crash thread" true
        (t <> Durability.crash_tid))
    tids;
  check_int "flusher tids distinct" 3
    (List.length (List.sort_uniq compare tids));
  (* crash-free layers synthesize nothing *)
  Alcotest.(check (list int)) "no pseudo-threads without the prims" []
    (List.map fst (Game.pseudo_threads ~memory:Memory.Sc (Disk.layer ()) threads))

let test_pseudo_thread_collision_rejected () =
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "negative real tid" (fun () ->
      Game.pseudo_threads ~memory:Memory.Sc
        (Disk.layer ~crashes:true ())
        [ (Durability.crash_tid, Prog.ret Value.unit) ])

(* ------------------------------------------------------------------ *)
(* WAL records and recovery                                            *)
(* ------------------------------------------------------------------ *)

let op lsn key value = { Wal.lsn; key; value }

let test_wal_record_roundtrip () =
  let o = op 3 7 42 in
  check_bool "decode inverts record" true (Wal.decode (Wal.record o) = Some o);
  check_bool "garbage rejected" true (Wal.decode (vi 99) = None);
  check_bool "torn record rejected" true
    (Wal.decode (Disk.torn (Wal.record o)) = None);
  (* flip the value without fixing the checksum *)
  let forged =
    Value.list
      [ vi o.Wal.lsn; vi o.Wal.key; vi 43;
        vi (Wal.checksum o.Wal.lsn o.Wal.key o.Wal.value) ]
  in
  check_bool "checksum mismatch rejected" true (Wal.decode forged = None);
  check_bool "lsn 0 rejected" true
    (Wal.decode (Wal.record (op 0 1 2)) = None)

let recover_of pages = Wal.recover (Disk.of_durable pages)

let test_wal_recover_truncates () =
  let r n = Wal.record (op n n (10 * n)) in
  Alcotest.(check int) "clean platter recovers everything" 3
    (List.length (recover_of [ 1, r 1; 2, r 2; 3, r 3 ]));
  (* a torn middle record truncates the scan — the valid tail is dead *)
  check_bool "torn page truncates" true
    (recover_of [ 1, r 1; 2, Disk.torn (r 2); 3, r 3 ] = [ op 1 1 10 ]);
  (* a hole truncates *)
  check_bool "missing page truncates" true
    (recover_of [ 1, r 1; 3, r 3 ] = [ op 1 1 10 ]);
  (* an out-of-sequence lsn truncates *)
  check_bool "out-of-sequence lsn truncates" true
    (recover_of [ 1, r 1; 2, Wal.record (op 5 2 20) ] = [ op 1 1 10 ]);
  check_bool "empty platter recovers nothing" true (recover_of [] = [])

let test_wal_append_sync_roundtrip () =
  (* one thread appends around a sync; the replayed platter holds exactly
     the synced prefix, and recovery reads it back *)
  let modul = Wal.module_ () in
  let prog =
    Prog.seq_all
      [ Prog.call Wal.append_tag [ vi 4; vi 44 ];
        Prog.call Wal.sync_tag [];
        Prog.call Wal.append_tag [ vi 5; vi 55 ] ]
  in
  let o = run_game (Wal.underlay ()) [ 1, Prog.Module.link modul prog ] in
  expect_all_done o;
  check_bool "both appends visible in the log" true
    (Wal.appended_of_log o.Game.log = [ op 1 4 44; op 2 5 55 ]);
  check_int "sync acknowledged lsn 1" 1 (Wal.acked_of_log o.Game.log);
  let st = disk_state o.Game.log in
  check_bool "recovery without the in-flight tail" true
    (Wal.recover st = [ op 1 4 44 ]);
  check_bool "drop-all crash still keeps the synced prefix" true
    (Wal.recover_prefix o.Game.log ~keep:0 ~tear:0 = Ok [ op 1 4 44 ]);
  check_bool "keep-all crash recovers both" true
    (Wal.recover_prefix o.Game.log ~keep:(Durability.all_keep 1) ~tear:0
     = Ok [ op 1 4 44; op 2 5 55 ])

(* ------------------------------------------------------------------ *)
(* the durable KV edge                                                 *)
(* ------------------------------------------------------------------ *)

let test_durable_kv_solo () =
  let modul = Durable_kv.module_ () in
  let prog =
    Prog.bind (Prog.call Durable_kv.put_tag [ vi 1; vi 5 ]) (fun _ ->
        Prog.call Durable_kv.get_tag [ vi 1 ])
  in
  let o = run_game (Durable_kv.underlay ()) [ 1, Prog.Module.link modul prog ] in
  expect_all_done o;
  Alcotest.check value_testable "get reads the put back" (vi 5)
    (List.assoc 1 o.Game.results);
  (* the put was logged before it was applied: it is in the WAL *)
  check_bool "mutation logged in the WAL" true
    (Wal.appended_of_log o.Game.log = [ op 1 1 5 ])

let test_recovered_map_folds_tombstones () =
  Alcotest.(check (list (pair int int))) "tombstone deletes, last write wins"
    [ (2, 22) ]
    (Durable_kv.recovered_map
       [ op 1 1 11; op 2 2 22; op 3 1 Durable_kv.tombstone ]);
  Alcotest.(check (list (pair int int))) "overwrite keeps the newest"
    [ (1, 12) ]
    (Durable_kv.recovered_map [ op 1 1 11; op 2 1 12 ])

(* ------------------------------------------------------------------ *)
(* mask enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let test_masks_lattice_and_sample () =
  Alcotest.(check (list (pair int int))) "no in-flight writes: one recovery"
    [ (0, 0) ] (Crash.masks ~bound:4 0);
  (* m = 2 within the bound: every keep subset, plus one tear per kept
     bit — 4 subsets + (0+1+1+2) tears = 8 pairs *)
  let full = Crash.masks ~bound:4 2 in
  check_int "full lattice size at m=2" 8 (List.length full);
  List.iter
    (fun p -> check_bool "lattice member" true (List.mem p full))
    [ (0, 0); (1, 0); (1, 1); (2, 0); (2, 2); (3, 0); (3, 1); (3, 2) ];
  (* past the bound: the deterministic boundary sample *)
  let sample = Crash.masks ~bound:2 3 in
  check_int "boundary sample size at m=3" 6 (List.length sample);
  List.iter
    (fun p -> check_bool "sample member" true (List.mem p sample))
    [ (0, 0); (1, 0); (3, 0); (7, 0); (7, 1); (7, 4) ];
  (* sorted and duplicate-free, for jobs/cache-stable iteration order *)
  check_bool "sample sorted" true (List.sort_uniq compare sample = sample)

(* ------------------------------------------------------------------ *)
(* the crash-refinement certifier                                      *)
(* ------------------------------------------------------------------ *)

let canonical = function
  | Budget.Complete (Ok r) -> Format.asprintf "%a" Crash.pp_report_canonical r
  | Budget.Complete (Error f) -> Format.asprintf "%a" Crash.pp_failure f
  | Budget.Exhausted _ -> "EXHAUSTED"

let edges () = [ Wal.crash_edge (); Durable_kv.crash_edge () ]

let test_certifier_passes () =
  match Crash.check_ctx ~ctx:Ctx.default (edges ()) with
  | Budget.Complete (Ok r) ->
    check_int "two edges" 2 (List.length r.Crash.edges);
    List.iter
      (fun (e : Crash.edge_report) ->
        check_bool "schedules ran" true (e.Crash.schedules > 0);
        check_bool "crash points enumerated" true (e.Crash.crash_points > 0);
        check_bool "recoveries checked" true
          (e.Crash.recoveries > e.Crash.crash_points))
      r.Crash.edges
  | Budget.Complete (Error f) -> Alcotest.failf "%a" Crash.pp_failure f
  | Budget.Exhausted _ -> Alcotest.fail "unexpected budget exhaustion"

let test_unsynced_fails_with_stable_point () =
  let failing jobs =
    match
      Crash.check_edge_ctx ~ctx:(Ctx.make ~jobs ())
        (Wal.crash_edge ~unsynced:true ())
    with
    | Budget.Complete (Error f) -> f
    | Budget.Complete (Ok _) ->
      Alcotest.fail "the unsynced WAL must fail crash refinement"
    | Budget.Exhausted _ -> Alcotest.fail "unexpected budget exhaustion"
  in
  let f = failing 1 in
  check_string "named edge" "wal-unsynced" f.Crash.f_edge;
  check_bool "the lost op is the acknowledged one" true
    (String.length f.Crash.f_reason > 0
    && String.sub f.Crash.f_reason 0 23 = "acknowledged-synced op ");
  (* stable: the same (schedule, point, masks) on every jobs count and on
     a re-run — the lowest-index schedule's first failing point wins *)
  check_bool "identical failure at jobs 4" true (failing 4 = f);
  check_bool "identical failure on re-run" true (failing 1 = f);
  (* the durable-kv edge over the unsynced WAL fails too *)
  match
    Crash.check_edge_ctx ~ctx:Ctx.default
      (Durable_kv.crash_edge ~unsynced:true ())
  with
  | Budget.Complete (Error f) ->
    check_string "durable-kv variant named" "durable-kv-unsynced" f.Crash.f_edge
  | Budget.Complete (Ok _) -> Alcotest.fail "unsynced durable-kv must fail"
  | Budget.Exhausted _ -> Alcotest.fail "unexpected budget exhaustion"

let test_certifier_jobs_identical () =
  let reports =
    List.map
      (fun jobs -> canonical (Crash.check_ctx ~ctx:(Ctx.make ~jobs ()) (edges ())))
      [ 1; 2; 4; 7 ]
  in
  match reports with
  | r1 :: rest ->
    check_bool "no failure" true (String.length r1 > 0 && r1 <> "EXHAUSTED");
    List.iteri
      (fun i r -> check_string (Printf.sprintf "jobs grid entry %d" i) r1 r)
      rest
  | [] -> assert false

let test_certifier_cache_round_trip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccal-test-crash-cache-%d" (Unix.getpid ()))
  in
  let c1 = Cache.create ~dir () in
  let cold = canonical (Crash.check_ctx ~ctx:(Ctx.make ~cache:c1 ()) (edges ())) in
  let s1 = Cache.session_stats c1 in
  let c2 = Cache.create ~dir () in
  let warm = canonical (Crash.check_ctx ~ctx:(Ctx.make ~cache:c2 ()) (edges ())) in
  let s2 = Cache.session_stats c2 in
  (* the unsynced failure is never served from disk: against the same
     warm cache, the broken variant reproduces live — twice *)
  let unsynced_fails () =
    match
      Crash.check_edge_ctx ~ctx:(Ctx.make ~cache:c2 ())
        (Wal.crash_edge ~unsynced:true ())
    with
    | Budget.Complete (Error _) -> ()
    | _ -> Alcotest.fail "unsynced must fail even against a warm cache"
  in
  unsynced_fails ();
  unsynced_fails ();
  ignore (Cache.clear c2);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  check_string "cold and warm reports identical" cold warm;
  check_bool "cold run stored both edges" true (s1.Cache.stores >= 2);
  check_int "warm run misses nothing" 0 s2.Cache.misses;
  check_bool "warm run hits both edges" true (s2.Cache.hits >= 2)

let test_certifier_budget_exhaustion () =
  let ctx = Ctx.make ~budget:(Budget.make ~steps:1 ()) () in
  match Crash.check_ctx ~ctx (edges ()) with
  | Budget.Exhausted { partial = Ok r; _ } ->
    check_bool "partial report has at most one edge" true
      (List.length r.Crash.edges < 2)
  | Budget.Exhausted { partial = Error f; _ } ->
    Alcotest.failf "partial failed: %a" Crash.pp_failure f
  | Budget.Complete _ -> Alcotest.fail "expected exhaustion"

(* ------------------------------------------------------------------ *)
(* the QCheck property: recovery after a crash at every enumerated     *)
(* point is idempotent and loses nothing past the last acked sync      *)
(* ------------------------------------------------------------------ *)

type wop = Append of int * int | Sync

let wop_gen =
  QCheck.Gen.(
    frequency
      [ 3, map2 (fun k v -> Append (k, v)) (int_bound 3) (int_bound 9);
        2, return Sync ])

let pp_wop = function
  | Append (k, v) -> Printf.sprintf "append %d %d" k v
  | Sync -> "sync"

let wops_arb n =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_wop ops))
    QCheck.Gen.(list_size (int_bound n) wop_gen)

let wal_prog ops =
  Prog.seq_all
    (List.map
       (function
         | Append (k, v) -> Prog.call Wal.append_tag [ vi k; vi v ]
         | Sync -> Prog.call Wal.sync_tag [])
       ops)

let rec is_list_prefix a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> x = y && is_list_prefix xs ys

let check_play_prefix prefix =
  match Disk.replay_log prefix with
  | Error _ -> false
  | Ok st ->
    List.for_all
      (fun (keep, tear) ->
        let crashed = Disk.crash_commit ~keep ~tear st in
        let recovered = Wal.recover crashed in
        (* idempotence: rewriting the platter to the recovered prefix and
           recovering again reads back the same operations *)
        Wal.recover (Wal.repaired crashed) = recovered
        (* no invented ops *)
        && is_list_prefix recovered (Wal.appended_of_log prefix)
        (* nothing lost past the last acknowledged sync *)
        && List.length recovered >= Wal.acked_of_log prefix)
      (Crash.masks ~bound:3 (List.length (Disk.inflight st)))

let prop_recovery_idempotent_and_lossless =
  qtc ~count:40
    "WAL recovery: idempotent, no invented ops, nothing acked lost"
    (QCheck.pair (wops_arb 4) (wops_arb 4))
    (fun (ops1, ops2) ->
      let modul = Wal.module_ () in
      let threads =
        [ 1, Prog.Module.link modul (wal_prog ops1);
          2, Prog.Module.link modul (wal_prog ops2) ]
      in
      List.for_all
        (fun sched ->
          let o = run_game ~sched (Wal.underlay ()) threads in
          o.Game.status = Game.All_done
          && begin
               let ok = ref (check_play_prefix Log.empty) in
               ignore
                 (List.fold_left
                    (fun prefix e ->
                      let prefix = Log.append e prefix in
                      if !ok && Disk.changes_disk e then
                        ok := check_play_prefix prefix;
                      prefix)
                    Log.empty
                    (Log.chronological o.Game.log));
               !ok
             end)
        [ Sched.round_robin; Sched.random ~seed:11 ])

(* ------------------------------------------------------------------ *)
(* suite                                                               *)
(* ------------------------------------------------------------------ *)

let suite =
  [
    tc "disk: write visible, durable only after sync" test_disk_write_read_sync;
    tc "disk: unwritten pages read as zero" test_disk_unwritten_page;
    tc "disk: crash_commit keeps, tears and drops per mask"
      test_disk_crash_commit_masks;
    tc "disk: the in-game crash halts real threads"
      test_disk_crash_halts_real_threads;
    tc "game: pseudo-thread tids are disjoint by construction"
      test_pseudo_thread_tids_disjoint;
    tc "game: real threads cannot squat the pseudo-thread namespace"
      test_pseudo_thread_collision_rejected;
    tc "wal: record/decode round trip and rejection" test_wal_record_roundtrip;
    tc "wal: recovery truncates at the first invalid record"
      test_wal_recover_truncates;
    tc "wal: append/sync/append leaves the synced prefix durable"
      test_wal_append_sync_roundtrip;
    tc "durable-kv: put is logged before it is applied" test_durable_kv_solo;
    tc "durable-kv: recovered_map folds tombstones" test_recovered_map_folds_tombstones;
    tc "certifier: mask lattice and boundary sample" test_masks_lattice_and_sample;
    tc "certifier: wal and durable-kv edges pass" test_certifier_passes;
    tc "certifier: the unsynced WAL fails with a stable named crash point"
      test_unsynced_fails_with_stable_point;
    tc "certifier: canonical report identical on jobs {1,2,4,7}"
      test_certifier_jobs_identical;
    tc "certifier: cache round trip never replays failures"
      test_certifier_cache_round_trip;
    tc "certifier: budget exhaustion yields a partial report"
      test_certifier_budget_exhaustion;
    prop_recovery_idempotent_and_lossless;
  ]
