(* Tests for Prog, the local layer machine, strategies and the game
   semantics (S2, S4, S5). *)
open Ccal_core
open Util

(* ---- Prog and modules ---- *)

let test_prog_bind () =
  let p =
    Prog.bind (Prog.ret (vi 1)) (fun v ->
        Prog.ret (vi (Value.to_int v + 1)))
  in
  match p with
  | Prog.Ret v -> check_int "bind of ret" 2 (Value.to_int v)
  | Prog.Call _ -> Alcotest.fail "expected Ret"

let test_prog_seq_all () =
  match Prog.seq_all [ Prog.ret (vi 1); Prog.ret (vi 2); Prog.ret (vi 3) ] with
  | Prog.Ret v -> check_int "last result" 3 (Value.to_int v)
  | Prog.Call _ -> Alcotest.fail "expected Ret"

let test_module_union_disjoint () =
  let m1 = Prog.Module.of_bodies [ "f", (fun _ -> Prog.ret_unit) ] in
  let m2 = Prog.Module.of_bodies [ "g", (fun _ -> Prog.ret_unit) ] in
  Alcotest.(check (list string))
    "names" [ "f"; "g" ]
    (Prog.Module.names (Prog.Module.union m1 m2));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Prog.Module.union: primitive implemented twice: f")
    (fun () -> ignore (Prog.Module.union m1 m1))

let test_module_link () =
  let m =
    Prog.Module.of_bodies
      [ ("double", fun args ->
          match args with
          | [ v ] ->
            Prog.bind (Prog.call "tick" [ v ]) (fun _ -> Prog.call "tick" [ v ])
          | _ -> Prog.ret_unit) ]
  in
  let layer = counter_layer () in
  let v = expect_done layer (Prog.Module.link m (Prog.call "double" [ vi 0 ])) in
  check_int "two ticks" 2 (Value.to_int v)

let test_module_stack () =
  let lower = Prog.Module.of_bodies [ "f", (fun _ -> Prog.call "tick" [ vi 0 ]) ] in
  let upper = Prog.Module.of_bodies [ "g", (fun _ -> Prog.call "f" []) ] in
  let stacked = Prog.Module.stack ~lower ~upper in
  let layer = counter_layer () in
  let v = expect_done layer (Prog.Module.link stacked (Prog.call "g" [])) in
  check_int "g -> f -> tick" 1 (Value.to_int v)

(* ---- local machine ---- *)

let test_run_local_counts () =
  let layer = counter_layer () in
  let prog =
    Prog.seq_all
      [
        Prog.call "stash" [ vi 9 ];
        Prog.call "tick" [ vi 0 ];
        Prog.call "tick" [ vi 0 ];
        Prog.call "unstash" [];
      ]
  in
  let r = run_solo layer prog in
  check_int "moves" 2 r.Machine.moves;
  check_bool "silent steps counted" true (r.Machine.silent_steps >= 2);
  check_int "log" 2 (Log.length r.Machine.log);
  match r.Machine.outcome with
  | Machine.Done v -> check_int "unstash" 9 (Value.to_int v)
  | _ -> Alcotest.fail "expected Done"

let test_unknown_prim_stuck () =
  let msg = expect_stuck (counter_layer ()) (Prog.call "nonsense" []) in
  check_bool "mentions prim" true
    (String.length msg > 0 && String.sub msg 0 7 = "unknown")

let test_private_fuel () =
  let layer = counter_layer () in
  let rec spin () = Prog.bind (Prog.call "unstash" []) (fun _ -> spin ()) in
  let st = Machine.initial layer 1 (spin ()) in
  match Machine.step_move ~private_fuel:100 layer 1 st Log.empty with
  | Machine.Stuck (_, msg) -> check_string "fuel msg" Prog.steps_bound_exceeded msg
  | _ -> Alcotest.fail "expected stuck on divergent private loop"

let test_env_events_reach_prims () =
  let layer = counter_layer () in
  let env = Env_context.of_script "one" [ [ ev ~args:[ vi 0 ] ~ret:(vi 1) 2 "tick" ] ] in
  let r = Machine.run_local layer 1 ~env (Prog.call "read" [ vi 0 ]) in
  match r.Machine.outcome with
  | Machine.Done v -> check_int "sees env tick" 1 (Value.to_int v)
  | _ -> Alcotest.fail "expected Done"

let test_critical_suppresses_queries () =
  (* A layer whose [enter] primitive enters the critical state; the script
     environment would inject an event at every query point — none may be
     consumed while critical. *)
  let layer =
    Layer.make "Lcrit"
      [
        ( "enter",
          Layer.Shared
            (fun c _ _ ->
              Layer.Step
                { events = [ ev c "enter" ]; ret = Value.unit; crit = Layer.Enter }) );
        ( "leave",
          Layer.Shared
            (fun c _ _ ->
              Layer.Step
                { events = [ ev c "leave" ]; ret = Value.unit; crit = Layer.Exit }) );
        ( "mid",
          Layer.Shared
            (fun c _ _ ->
              Layer.Step
                { events = [ ev c "mid" ]; ret = Value.unit; crit = Layer.Keep }) );
      ]
  in
  let env =
    Env_context.of_script "noisy"
      [ [ ev 2 "x" ]; [ ev 2 "y" ]; [ ev 2 "z" ]; [ ev 2 "w" ] ]
  in
  let prog =
    Prog.seq_all
      [ Prog.call "enter" []; Prog.call "mid" []; Prog.call "leave" [];
        Prog.call "mid" [] ]
  in
  let r = Machine.run_local layer 1 ~env prog in
  let tags = List.map (fun (e : Event.t) -> e.Event.tag, e.Event.src)
      (Log.chronological r.Machine.log) in
  (* queries happen before [enter] and before the final [mid] (after
     leaving), but not between enter and leave *)
  check_bool "no env event inside critical section" true
    (match tags with
    | ("x", 2) :: ("enter", 1) :: ("mid", 1) :: ("leave", 1) :: rest ->
      List.mem ("y", 2) rest
    | _ -> false)

let test_blocked_retries_exhaust () =
  let layer =
    Layer.make "Lblock"
      [ "never", Layer.Shared (fun _ _ _ -> Layer.Block) ]
  in
  let r = run_solo layer (Prog.call "never" []) in
  match r.Machine.outcome with
  | Machine.No_progress _ -> ()
  | _ -> Alcotest.fail "expected no-progress on always-blocked primitive"

let test_guar_violation_detected () =
  let guar = Rely_guarantee.make "at-most-one-tick" (fun i l ->
      Log.count (fun (e : Event.t) -> e.src = i) l <= 1)
  in
  let layer = Layer.with_conditions ~rely:Rely_guarantee.always ~guar (counter_layer ()) in
  let prog = Prog.seq (Prog.call "tick" [ vi 0 ]) (Prog.call "tick" [ vi 0 ]) in
  let r = Machine.run_local layer 1 ~env:Env_context.empty ~check_guar:true prog in
  check_bool "violation found" true (r.Machine.guar_violation <> None)

(* ---- strategies ---- *)

let test_strategy_of_prog_moves () =
  let layer = counter_layer () in
  let s = Machine.strategy_of_prog layer 1 (Prog.call "tick" [ vi 0 ]) in
  match s.Strategy.step Log.empty with
  | Strategy.Move ([ e ], Strategy.Next s') -> (
    check_string "tag" "tick" e.Event.tag;
    match s'.Strategy.step (log_of [ e ]) with
    | Strategy.Move ([], Strategy.Done _) -> ()
    | _ -> Alcotest.fail "expected silent finish")
  | _ -> Alcotest.fail "expected one-event move"

let test_strategy_map_events () =
  let s = Strategy.of_moves [ (fun _ -> [ ev 1 "a" ]) ] in
  let s' = Strategy.map_events (fun e -> [ { e with Event.tag = "b" } ]) s in
  match s'.Strategy.step Log.empty with
  | Strategy.Move ([ e ], _) -> check_string "renamed" "b" e.Event.tag
  | _ -> Alcotest.fail "expected move"

(* ---- game ---- *)

let two_tickers () =
  let layer = counter_layer () in
  let prog _i =
    Prog.seq (Prog.call "tick" [ vi 0 ]) (Prog.call "tick" [ vi 0 ])
  in
  layer, [ 1, prog 1; 2, prog 2 ]

let test_game_all_done () =
  let layer, threads = two_tickers () in
  let o = Game.run (Game.config layer threads Sched.round_robin) in
  check_bool "done" true (Game.successful o);
  check_int "four events" 4 (Log.length o.Game.log)

let test_game_counter_value () =
  let layer, threads = two_tickers () in
  let o = Game.run (Game.config layer threads (Sched.random ~seed:42)) in
  (* the final tick returns 4 regardless of interleaving: the counter is
     replayed from the log *)
  let last = Option.get (Log.latest o.Game.log) in
  check_int "last tick value" 4 (Value.to_int last.Event.ret)

let test_game_interleavings_differ () =
  let layer, threads = two_tickers () in
  let o1 = Game.run (Game.config layer threads (Sched.of_trace [ 1; 1; 2; 2 ])) in
  let o2 = Game.run (Game.config layer threads (Sched.of_trace [ 2; 2; 1; 1 ])) in
  check_bool "logs differ" false (Log.equal o1.Game.log o2.Game.log)

let test_game_deadlock () =
  let layer =
    Layer.make "Lblock" [ "never", Layer.Shared (fun _ _ _ -> Layer.Block) ]
  in
  let o =
    Game.run (Game.config layer [ 1, Prog.call "never" [] ] Sched.round_robin)
  in
  match o.Game.status with
  | Game.Deadlock [ 1 ] -> ()
  | s -> Alcotest.failf "expected deadlock, got %s" (Format.asprintf "%a" Game.pp_status s)

let test_game_stuck () =
  let layer = counter_layer () in
  let o =
    Game.run (Game.config layer [ 1, Prog.call "nope" [] ] Sched.round_robin)
  in
  match o.Game.status with
  | Game.Stuck (1, Layer.Invalid_transition, _) -> ()
  | _ -> Alcotest.fail "expected stuck"

let test_game_switch_events () =
  let layer, threads = two_tickers () in
  let o =
    Game.run (Game.config ~log_switches:true layer threads (Sched.of_trace [ 1; 2; 1; 2 ]))
  in
  let switches = Log.count Event.is_switch o.Game.log in
  check_bool "switches logged" true (switches >= 3)

let test_game_fuel () =
  let layer = counter_layer () in
  let rec forever () =
    Prog.bind (Prog.call "tick" [ vi 0 ]) (fun _ -> forever ())
  in
  let o = Game.run (Game.config ~max_steps:50 layer [ 1, forever () ] Sched.round_robin) in
  match o.Game.status with
  | Game.Out_of_fuel -> check_int "steps" 50 o.Game.steps
  | _ -> Alcotest.fail "expected out of fuel"

(* ---- schedulers ---- *)

let test_round_robin_fair () =
  let picks =
    List.init 9 (fun step ->
        Option.get (Sched.round_robin.Sched.pick ~step Log.empty ~runnable:[ 1; 2; 3 ]))
  in
  check_int "each picked 3 times" 3
    (List.length (List.filter (fun t -> t = 1) picks))

let test_random_deterministic () =
  let s1 = Sched.random ~seed:5 and s2 = Sched.random ~seed:5 in
  let run (s : Sched.t) =
    List.init 20 (fun step -> s.Sched.pick ~step Log.empty ~runnable:[ 1; 2; 3 ])
  in
  check_bool "same seed same picks" true (run s1 = run s2)

let test_trace_sched_skips_unrunnable () =
  let s = Sched.of_trace [ 7; 2 ] in
  match s.Sched.pick ~step:0 Log.empty ~runnable:[ 1; 2 ] with
  | Some 2 -> ()
  | _ -> Alcotest.fail "expected the trace to skip to thread 2"

let prop_splitmix_nonneg =
  qtc "splitmix non-negative" QCheck.int (fun x -> Sched.splitmix x >= 0)

let prop_game_deterministic =
  qtc ~count:50 "same scheduler, same outcome" QCheck.(int_range 1 1000)
    (fun seed ->
      let layer, threads = two_tickers () in
      let o1 = Game.run (Game.config layer threads (Sched.random ~seed)) in
      let o2 = Game.run (Game.config layer threads (Sched.random ~seed)) in
      Log.equal o1.Game.log o2.Game.log)

let prop_counter_linearizable_total =
  qtc ~count:50 "final counter = total ticks" QCheck.(int_range 1 1000)
    (fun seed ->
      let layer, threads = two_tickers () in
      let o = Game.run (Game.config layer threads (Sched.random ~seed)) in
      Game.successful o
      && Log.count (fun (e : Event.t) -> String.equal e.tag "tick") o.Game.log = 4)

let suite =
  [
    tc "prog bind" test_prog_bind;
    tc "prog seq_all" test_prog_seq_all;
    tc "module union disjoint" test_module_union_disjoint;
    tc "module link" test_module_link;
    tc "module stack" test_module_stack;
    tc "run_local counts" test_run_local_counts;
    tc "unknown prim stuck" test_unknown_prim_stuck;
    tc "private fuel" test_private_fuel;
    tc "env events reach prims" test_env_events_reach_prims;
    tc "critical suppresses queries" test_critical_suppresses_queries;
    tc "blocked retries exhaust" test_blocked_retries_exhaust;
    tc "guarantee violation detected" test_guar_violation_detected;
    tc "strategy of prog" test_strategy_of_prog_moves;
    tc "strategy map_events" test_strategy_map_events;
    tc "game all done" test_game_all_done;
    tc "game counter value" test_game_counter_value;
    tc "game interleavings differ" test_game_interleavings_differ;
    tc "game deadlock" test_game_deadlock;
    tc "game stuck" test_game_stuck;
    tc "game switch events" test_game_switch_events;
    tc "game fuel" test_game_fuel;
    tc "round robin fair" test_round_robin_fair;
    tc "random deterministic" test_random_deterministic;
    tc "trace sched skips unrunnable" test_trace_sched_skips_unrunnable;
    prop_splitmix_nonneg;
    prop_game_deterministic;
    prop_counter_linearizable_total;
  ]
