(* Tests for the extensions: the TSO store-buffer machine (the paper's
   future work, Sec. 6 Limitations), the reader-writer lock, and the
   remaining calculus rules (Wk, Hcomp, layer_sim). *)
open Ccal_core
open Ccal_objects
open Util
module Tso = Ccal_machine.Tso

(* ---- TSO machine ---- *)

let x_cell = 1
let y_cell = 2

(* The store-buffering litmus test (SB / Dekker). *)
let sb_thread ~fenced store load =
  Prog.seq
    (Prog.call "astore" [ vi store; vi 1 ])
    (Prog.seq
       (if fenced then Prog.call "mfence" [] else Prog.ret_unit)
       (Prog.bind (Prog.call "aload" [ vi load ]) (fun r -> Prog.ret r)))

let sb_outcomes ?memory layer ~fenced =
  let scheds = Ccal_verify.Explore.exhaustive_scheds ~tids:[ 1; 2 ] ~depth:6 in
  let outcomes =
    Game.behaviors ?memory layer
      [ 1, sb_thread ~fenced x_cell y_cell; 2, sb_thread ~fenced y_cell x_cell ]
      scheds
  in
  List.filter_map
    (fun (o : Game.outcome) ->
      match o.Game.status with
      | Game.All_done ->
        Some
          ( Value.to_int (List.assoc 1 o.Game.results),
            Value.to_int (List.assoc 2 o.Game.results) )
      | _ -> None)
    outcomes
  |> List.sort_uniq compare

let test_sb_sc_forbids_00 () =
  let outcomes = sb_outcomes (Ccal_machine.Mx86.layer ()) ~fenced:false in
  check_bool "(0,0) unreachable on SC" false (List.mem (0, 0) outcomes);
  check_bool "other outcomes reachable" true (List.length outcomes >= 2)

let test_sb_tso_allows_00 () =
  let outcomes = sb_outcomes ~memory:Memory.Tso (Tso.layer ()) ~fenced:false in
  check_bool "(0,0) reachable on TSO" true (List.mem (0, 0) outcomes)

let test_sb_tso_fenced_forbids_00 () =
  let outcomes = sb_outcomes ~memory:Memory.Tso (Tso.layer ()) ~fenced:true in
  check_bool "(0,0) gone with mfence" false (List.mem (0, 0) outcomes)

let test_store_forwarding () =
  (* a CPU reads its own buffered store before it commits *)
  let layer = Tso.layer () in
  let prog =
    Prog.seq
      (Prog.call "astore" [ vi 5; vi 42 ])
      (Prog.call "aload" [ vi 5 ])
  in
  check_int "forwarded" 42 (Value.to_int (expect_done layer prog))

let test_buffered_store_invisible () =
  (* another CPU does not see an uncommitted store *)
  let layer = Tso.layer () in
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.call "astore" [ vi 5; vi 9 ];
           2, Prog.call "aload" [ vi 5 ] ]
         (Sched.of_trace [ 1; 2 ]))
  in
  check_int "thread 2 reads 0" 0
    (Value.to_int (List.assoc 2 o.Game.results))

let test_rmw_drains () =
  let layer = Tso.layer () in
  let o =
    Game.run
      (Game.config layer
         [ 1,
           Prog.seq
             (Prog.call "astore" [ vi 5; vi 9 ])
             (Prog.call "faa" [ vi 6; vi 1 ]);
           2, Prog.ret_unit ]
         (Sched.of_trace [ 1; 1; 1 ]))
  in
  (* after the faa, the store to 5 has committed *)
  check_int "committed" 9
    (Replay.run_exn (Tso.replay_memory 5) o.Game.log)

let test_replay_buffer () =
  let l =
    log_of
      [ ev ~args:[ vi 1; vi 5 ] 1 Tso.buf_store_tag;
        ev ~args:[ vi 2; vi 6 ] 1 Tso.buf_store_tag;
        ev ~args:[ vi 1; vi 5; vi 1 ] 1 Tso.commit_tag ]
  in
  (match Replay.run_exn (Tso.replay_buffer 1) l with
  | [ (2, 6) ] -> ()
  | _ -> Alcotest.fail "expected one pending store");
  (* commits must drain oldest-first *)
  let bad =
    log_of
      [ ev ~args:[ vi 1; vi 5 ] 1 Tso.buf_store_tag;
        ev ~args:[ vi 2; vi 6 ] 1 Tso.buf_store_tag;
        ev ~args:[ vi 2; vi 6; vi 1 ] 1 Tso.commit_tag ]
  in
  check_bool "out-of-order commit rejected" false
    (Replay.well_formed (Tso.replay_buffer 1) bad)

let test_sc_equivalence_locked_program () =
  (* a properly synchronised program (xchg-based test-and-set lock around
     the shared cell) behaves identically on TSO and SC *)
  let lock = 10 and data = 11 in
  let tas_round i =
    let rec spin () =
      Prog.bind (Prog.call "xchg" [ vi lock; vi 1 ]) (fun old ->
          if Value.to_int old = 0 then Prog.ret_unit else spin ())
    in
    Prog.seq (spin ())
      (Prog.bind (Prog.call "aload" [ vi data ]) (fun v ->
           Prog.seq
             (Prog.call "astore" [ vi data; vi (Value.to_int v + 1) ])
             (* release via xchg: a drained (fence-like) release keeps the
                comparison exact *)
             (Prog.seq (Prog.call "xchg" [ vi lock; vi 0 ]) (Prog.ret (vi i)))))
  in
  match
    Tso.sc_equivalent_on
      ~threads:[ 1, tas_round 1; 2, tas_round 2 ]
      ~scheds:(Sched.default_suite ~seeds:8) ()
  with
  | Ok n -> check_int "all schedules equivalent" 9 n
  | Error msg -> Alcotest.fail msg

let test_erase_buffering_relation () =
  let l =
    log_of
      [ ev ~args:[ vi 1; vi 5 ] 1 Tso.buf_store_tag;
        ev ~args:[ vi 1; vi 5; vi 1 ] 1 Tso.commit_tag;
        ev 1 Tso.mfence_tag ]
  in
  let t = Sim_rel.apply Tso.erase_buffering_rel l in
  check_int "one astore left" 1 (Log.length t);
  check_string "renamed" "astore" (Option.get (Log.latest t)).Event.tag

(* ---- reader-writer lock ---- *)

let ar l = Prog.call "acq_r" [ vi l ]
let rr l = Prog.call "rel_r" [ vi l ]
let aw l = Prog.call "acq_w" [ vi l ]
let rw l = Prog.call "rel_w" [ vi l ]

let test_rw_overlay_semantics () =
  let layer = Rwlock.overlay () in
  (* two readers together, then a writer *)
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.seq_all [ ar 4; rr 4 ];
           2, Prog.seq_all [ ar 4; rr 4 ];
           3, Prog.seq_all [ aw 4; rw 4 ] ]
         (Sched.of_trace [ 1; 2; 3; 1; 2; 3; 3 ]))
  in
  check_bool "completes" true (Game.successful o);
  check_bool "no overlap" true (Rwlock.no_reader_writer_overlap o.Game.log)

let test_rw_writer_blocks_readers () =
  let layer = Rwlock.overlay () in
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.seq_all [ aw 4; aw 4 ] ]
         Sched.round_robin)
  in
  (* second acq_w by the same thread blocks: writer exclusion *)
  match o.Game.status with
  | Game.Deadlock [ 1 ] -> ()
  | s -> Alcotest.failf "expected deadlock, got %a" Game.pp_status s

let test_rw_replay_states () =
  let l4 = [ vi 4 ] in
  let l =
    log_of [ ev ~args:l4 1 "acq_r"; ev ~args:l4 2 "acq_r" ]
  in
  (match Replay.run_exn (Rwlock.replay_rw 4) l with
  | Rwlock.Readers 2 -> ()
  | _ -> Alcotest.fail "expected two readers");
  let l2 = Log.append (ev ~args:l4 3 "acq_w") l in
  check_bool "writer over readers invalid" false
    (Replay.well_formed (Rwlock.replay_rw 4) l2)

let test_rw_solo_roundtrip () =
  let layer = Rwlock.underlay () in
  let m = Rwlock.c_module () in
  let prog = Prog.Module.link m (Prog.seq_all [ ar 4; rr 4; aw 4; rw 4; ar 4; rr 4 ]) in
  check_bool "unit" true (Value.equal Value.unit (expect_done layer prog))

let test_rw_certify () =
  match Rwlock.certify () with
  | Ok c -> check_bool "checks" true (Calculus.count_checks c >= 16)
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_rw_certify_asm () =
  match Rwlock.certify ~focus:[ 1 ] ~use_asm:true () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_rw_translation () =
  let l4 = Value.int 4 in
  let l =
    log_of
      [ ev ~args:[ l4 ] ~ret:(vi 0) 1 "acq"; ev ~args:[ l4; vi 1 ] 1 "rel";  (* acq_r *)
        ev ~args:[ l4 ] ~ret:(vi 1) 2 "acq"; ev ~args:[ l4; vi 1 ] 2 "rel";  (* failed acq_w *)
        ev ~args:[ l4 ] ~ret:(vi 1) 1 "acq"; ev ~args:[ l4; vi 0 ] 1 "rel";  (* rel_r *)
        ev ~args:[ l4 ] ~ret:(vi 0) 2 "acq"; ev ~args:[ l4; vi (-1) ] 2 "rel" ]  (* acq_w *)
  in
  let t = Sim_rel.apply Rwlock.r_rw l in
  Alcotest.(check (list string))
    "events" [ "acq_r"; "rel_r"; "acq_w" ]
    (List.map (fun (e : Event.t) -> e.tag) (Log.chronological t))

let test_rw_refinement () =
  match Rwlock.certify ~focus:[ 1; 2 ] () with
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e
  | Ok cert -> (
    let client i =
      if i = 1 then Prog.seq_all [ ar 4; rr 4; ar 4; rr 4; Prog.ret (vi 1) ]
      else Prog.seq_all [ aw 4; rw 4; Prog.ret (vi 2) ]
    in
    match
      Refinement.check_cert cert ~client ~scheds:(Sched.default_suite ~seeds:6)
    with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "%a" Refinement.pp_failure f)

let prop_rw_no_overlap =
  qtc ~count:25 "readers and writers never overlap" QCheck.(int_range 1 3_000)
    (fun seed ->
      let layer = Rwlock.underlay () in
      let m = Rwlock.c_module () in
      let reader = Prog.Module.link m (Prog.seq_all [ ar 4; rr 4 ]) in
      let writer = Prog.Module.link m (Prog.seq_all [ aw 4; rw 4 ]) in
      let o =
        Game.run
          (Game.config ~max_steps:200_000 layer
             [ 1, reader; 2, reader; 3, writer ]
             (Sched.random ~seed))
      in
      Game.successful o
      && Rwlock.no_reader_writer_overlap (Sim_rel.apply Rwlock.r_rw o.Game.log))

(* ---- remaining calculus rules: layer_sim and Wk ---- *)

let test_layer_sim_and_wk () =
  (* weaken the ticket-lock certificate to an interface with a looser
     definite-release bound: Llock(32) |- M : Llock(32), lifted to
     Llock(128) via Wk with an identity-relation layer simulation *)
  let tight = Lock_intf.layer ~bound:32 "Llock" in
  let loose = Lock_intf.layer ~bound:128 "Llock_loose" in
  let envs _ = [ Env_context.empty ] in
  let tests : Calculus.prim_tests =
    [ "acq", [ Calculus.case [ vi 0 ] ];
      "rel", [ Calculus.case ~pre:[ "acq", [ vi 0 ] ] [ vi 0; vi 1 ] ] ]
  in
  match
    Calculus.check_layer_sim ~lower:tight ~upper:loose ~rel:Sim_rel.id
      ~focus:[ 1; 2 ] ~prim_tests:tests ~envs ()
  with
  | Error e -> Alcotest.failf "layer_sim failed: %a" Calculus.pp_error e
  | Ok up_sim -> (
    (* a certificate targeting the tight interface *)
    let cert =
      Calculus.fun_rule
        ~underlay:(Ticket_lock.l0 ())
        ~overlay:tight
        ~impl:(Ticket_lock.c_module ()) ~rel:Ticket_lock.r_ticket
        ~focus:[ 1; 2 ]
        ~prim_tests:(Ticket_lock.prim_tests ())
        ~envs:(Ticket_lock.env_suite ()) ()
      |> Result.get_ok
    in
    let low_sim = Calculus.layer_sim_id (Ticket_lock.l0 ()) [ 1; 2 ] in
    match Calculus.wk low_sim cert up_sim with
    | Ok weakened ->
      check_bool "overlay weakened" true
        (String.equal weakened.Calculus.judgment.Calculus.overlay.Layer.name
           "Llock_loose");
      check_bool "rule is Wk" true (weakened.Calculus.rule = Calculus.Wk)
    | Error e -> Alcotest.failf "wk failed: %a" Calculus.pp_error e)

let test_hcomp_independent_objects () =
  (* two independent counter objects over the same interface compose
     horizontally into one layer *)
  let under = counter_layer () in
  let over_a =
    Layer.make "La"
      [ Layer.event_prim "double_tick" (fun c args log ->
            ignore c;
            match args with
            | [ Value.Vint id ] ->
              Ok (vi (2 * (Log.count (fun (e : Event.t) ->
                   String.equal e.tag "double_tick" && e.args = [ vi id ] && e.src = c) log + 1)))
            | _ -> Error "bad args") ]
  in
  let over_b =
    Layer.make "Lb"
      [ Layer.event_prim "stashed_tick" (fun _ _ _ -> Ok Value.unit) ]
  in
  let m_a =
    Prog.Module.of_bodies
      [ ( "double_tick",
          fun args -> Prog.seq (Prog.call "tick" args) (Prog.call "tick" args) ) ]
  in
  let m_b =
    Prog.Module.of_bodies
      [ ( "stashed_tick",
          fun _ ->
            Prog.seq (Prog.call "stash" [ vi 1 ])
              (Prog.seq (Prog.call "tick" [ vi 9 ]) Prog.ret_unit) ) ]
  in
  let r =
    Sim_rel.of_log_fn "R_h" (fun log ->
        (* per-thread: pair ticks on ids other than 9 into double_tick;
           rename tick(9) to stashed_tick *)
        let step (firsts, out) (e : Event.t) =
          if String.equal e.tag "tick" then
            if e.args = [ vi 9 ] then
              firsts, Event.make e.src "stashed_tick" :: out
            else
              match List.assoc_opt e.src firsts with
              | None -> (e.src, e) :: firsts, out
              | Some _ ->
                List.remove_assoc e.src firsts,
                { e with Event.tag = "double_tick" } :: out
          else firsts, e :: out
        in
        let _, out = List.fold_left step ([], []) (Log.chronological log) in
        Log.append_all (List.rev out) Log.empty)
  in
  let envs _ = [ Env_context.empty ] in
  let certify over m tests =
    Calculus.fun_rule ~underlay:under ~overlay:over ~impl:m ~rel:r
      ~focus:[ 1 ] ~prim_tests:tests ~envs ()
  in
  match
    ( certify over_a m_a [ "double_tick", [ Calculus.case [ vi 0 ] ] ],
      certify over_b m_b [ "stashed_tick", [ Calculus.case [] ] ] )
  with
  | Ok ca, Ok cb -> (
    match Calculus.hcomp ca cb with
    | Ok c ->
      check_bool "merged overlay has both prims" true
        (Layer.has_prim "double_tick" c.Calculus.judgment.Calculus.overlay
        && Layer.has_prim "stashed_tick" c.Calculus.judgment.Calculus.overlay);
      check_bool "merged module has both" true
        (List.length (Prog.Module.names c.Calculus.judgment.Calculus.impl) = 2)
    | Error e -> Alcotest.failf "hcomp failed: %a" Calculus.pp_error e)
  | Error e, _ | _, Error e -> Alcotest.failf "premise failed: %a" Calculus.pp_error e

let suite =
  [
    tc "SB litmus: SC forbids (0,0)" test_sb_sc_forbids_00;
    tc "SB litmus: TSO allows (0,0)" test_sb_tso_allows_00;
    tc "SB litmus: fenced TSO forbids (0,0)" test_sb_tso_fenced_forbids_00;
    tc "TSO store forwarding" test_store_forwarding;
    tc "TSO buffered store invisible" test_buffered_store_invisible;
    tc "TSO rmw drains" test_rmw_drains;
    tc "TSO replay buffer FIFO" test_replay_buffer;
    tc "TSO = SC for locked programs" test_sc_equivalence_locked_program;
    tc "TSO erase-buffering relation" test_erase_buffering_relation;
    tc "rwlock overlay semantics" test_rw_overlay_semantics;
    tc "rwlock writer exclusion" test_rw_writer_blocks_readers;
    tc "rwlock replay states" test_rw_replay_states;
    tc "rwlock solo roundtrip" test_rw_solo_roundtrip;
    tc "rwlock certify" test_rw_certify;
    tc "rwlock certify (asm)" test_rw_certify_asm;
    tc "rwlock translation" test_rw_translation;
    tc "rwlock refinement" test_rw_refinement;
    prop_rw_no_overlap;
    tc "layer_sim + Wk (interface weakening)" test_layer_sim_and_wk;
    tc "hcomp of independent objects" test_hcomp_independent_objects;
  ]
