(* Tests for the robustness layer (S27): budgets, cooperative
   cancellation, resumable partial results, and deterministic fault
   injection — the [Ctx]-threaded API.

   The contract under test: a budget never changes a completed verdict
   (it only truncates how much gets established), a {e step} budget
   truncates at the same schedule prefix for every jobs count, a partial
   result resumed equals the from-scratch verdict byte for byte, and an
   armed fault plan (worker crashes, cache corruption, clock skew,
   oversized entries) leaves every verdict bit-identical to the
   fault-free run. *)
open Ccal_core
open Ccal_objects
open Ccal_verify
open Util

let jobs_grid = [ 1; 2; 4; 7 ]

(* The race-free workhorse game: two ticket-lock clients over L0. *)
let game () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ -> Prog.call "rel" [ vi 0; vi i ])
  in
  ( layer,
    [ 1, Prog.Module.link m (client 1); 2, Prog.Module.link m (client 2) ] )

(* trace/random schedulers are single-use: regenerate per run; the suite
   identity (the names) is what cache keys and resume points see *)
let suite () = Sched.default_suite ~seeds:4

let suite_size = List.length (Sched.default_suite ~seeds:4)

let races_check ctx =
  let layer, threads = game () in
  Races.check_ctx ~ctx ~scheds:(suite ()) layer threads

(* The step cost of the suite's first schedule, measured on the real
   game: a budget of [first + 1] lets exactly one schedule through the
   deterministic re-truncation (the second overshoots the allowance). *)
let first_sched_steps () =
  let layer, threads = game () in
  let o = Game.run (Game.config layer threads (List.hd (suite ()))) in
  o.Game.steps

let fresh_ctx budget = Ctx.with_budget budget Ctx.default

(* ---- Budget plumbing ---- *)

let test_budget_outcome_helpers () =
  let spent =
    { Budget.elapsed_ms = 1.0; steps_used = 9; reason = `Steps }
  in
  check_int "value of Complete" 3 (Budget.value (Budget.Complete 3));
  check_int "value of Exhausted" 4
    (Budget.value (Budget.Exhausted { spent; partial = 4 }));
  check_bool "Complete is complete" true (Budget.is_complete (Budget.Complete 3));
  check_bool "Exhausted is not" false
    (Budget.is_complete (Budget.Exhausted { spent; partial = 4 }));
  check_int "map reaches the partial" 8
    (Budget.value (Budget.map (( * ) 2) (Budget.Exhausted { spent; partial = 4 })));
  check_bool "make () is unlimited" true (Budget.is_unlimited (Budget.make ()));
  check_bool "negative steps clamp to instantly exhausted" true
    (Budget.poll (Budget.start (Budget.make ~steps:(-1) ())));
  check_bool "the shared no_token never trips" false (Budget.poll Budget.no_token)

let test_fault_parse () =
  (match Fault.parse "crash:0.1,corrupt-cache:0.05,seed:7" with
  | Ok p ->
    check_int "seed" 7 p.Fault.seed;
    check_bool "crash rate" true (p.Fault.crash = 0.1);
    check_bool "corrupt rate" true (p.Fault.corrupt = 0.05);
    check_bool "not none" false (Fault.is_none p)
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  check_bool "unknown kind rejected" true
    (Result.is_error (Fault.parse "explode:0.5"));
  check_bool "bad rate rejected" true (Result.is_error (Fault.parse "crash:lots"));
  check_bool "none is none" true (Fault.is_none Fault.none)

(* ---- cancellation ---- *)

let test_cancellation_preempts_scan () =
  let ctx = fresh_ctx (Budget.make ~ms:1e9 ()) in
  Budget.cancel ctx.Ctx.token;
  match races_check ctx with
  | Races.Exhausted { spent; partial } ->
    check_bool "reason is cancellation" true (spent.Budget.reason = `Cancelled);
    check_int "nothing scanned after cancel" 0 partial.Races.scanned
  | _ -> Alcotest.fail "cancelled scan still produced a full verdict"

(* ---- step-budget determinism ---- *)

let test_step_budget_truncates_deterministically () =
  (* budget = exactly the first schedule's cost: the scan admits games
     until the cumulative cost reaches the allowance, so the second
     schedule is cut before it runs *)
  let b = Budget.make ~steps:(first_sched_steps ()) () in
  let partial_at jobs =
    match races_check (Ctx.with_jobs jobs (fresh_ctx b)) with
    | Races.Exhausted { spent; partial } ->
      check_bool "reason is the step budget" true (spent.Budget.reason = `Steps);
      partial
    | _ -> Alcotest.fail "step budget did not trip"
  in
  let oracle = partial_at 1 in
  check_int "exactly the first schedule fits" 1 oracle.Races.scanned;
  check_int "and it was clean" 1 oracle.Races.clean;
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "partial at jobs=%d = sequential" jobs) true
        (partial_at jobs = oracle))
    jobs_grid

let test_resume_equals_from_scratch () =
  let scratch = races_check Ctx.default in
  (match scratch with
  | Races.Race_free { runs } -> check_int "scratch covers the suite" suite_size runs
  | _ -> Alcotest.fail "workhorse game should be race-free");
  match races_check (fresh_ctx (Budget.make ~steps:(first_sched_steps () + 1) ())) with
  | Races.Exhausted { partial; _ } ->
    let layer, threads = game () in
    let resumed =
      Races.check_ctx ~ctx:Ctx.default ~scheds:(suite ()) ~resume:partial
        layer threads
    in
    check_bool "resumed verdict = from-scratch verdict" true (resumed = scratch)
  | _ -> Alcotest.fail "step budget did not trip"

(* ---- partial results in the cache ---- *)

let with_cache f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccal-test-robust-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  let c = Cache.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      ignore (Cache.clear c);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f c)

let test_partial_cached_then_invalidated () =
  with_cache (fun c ->
      let budgeted =
        Ctx.with_cache c (fresh_ctx (Budget.make ~steps:(first_sched_steps () + 1) ()))
      in
      (match races_check budgeted with
      | Races.Exhausted _ -> ()
      | _ -> Alcotest.fail "step budget did not trip");
      check_bool "partial stashed on disk" true ((Cache.disk_stats c).entries >= 1);
      (* an identically-keyed unlimited run picks the partial up, finishes
         the scan, stores the full verdict and invalidates the partial *)
      (match races_check (Ctx.with_cache c Ctx.default) with
      | Races.Race_free { runs } -> check_int "auto-resume completed" suite_size runs
      | _ -> Alcotest.fail "auto-resumed run should be race-free");
      check_bool "partial picked up" true ((Cache.session_stats c).hits >= 1);
      check_bool "full verdict invalidates the partial" true
        ((Cache.session_stats c).invalidations >= 1);
      (* third run: served from the full-verdict entry *)
      let hits_before = (Cache.session_stats c).hits in
      (match races_check (Ctx.with_cache c Ctx.default) with
      | Races.Race_free { runs } -> check_int "warm verdict" suite_size runs
      | _ -> Alcotest.fail "warm run should be race-free");
      check_bool "full verdict hit" true ((Cache.session_stats c).hits > hits_before))

(* ---- fault injection: verdicts bit-identical to the fault-free run ---- *)

let fault_free () = races_check Ctx.default

let test_crash_faults_keep_verdict () =
  let plan = Fault.make ~seed:3 ~crash:0.5 () in
  let oracle = fault_free () in
  List.iter
    (fun jobs ->
      let v = races_check (Ctx.with_faults plan (Ctx.with_jobs jobs Ctx.default)) in
      check_bool
        (Printf.sprintf "crash-injected verdict at jobs=%d = fault-free" jobs)
        true (v = oracle))
    jobs_grid

let test_skew_faults_keep_verdict () =
  let plan = Fault.make ~seed:5 ~skew:0.5 () in
  let oracle = fault_free () in
  let v = races_check (Ctx.with_faults plan Ctx.default) in
  check_bool "skewed-clock verdict = fault-free" true (v = oracle)

let test_corrupt_cache_faults_keep_verdict () =
  with_cache (fun c ->
      let plan = Fault.make ~seed:11 ~corrupt:1.0 () in
      let oracle = fault_free () in
      let ctx = Ctx.with_faults plan (Ctx.with_cache c Ctx.default) in
      (* first run stores a corrupted entry; the second finds it
         undeserializable, invalidates and re-runs live *)
      check_bool "cold corrupted run = fault-free" true (races_check ctx = oracle);
      check_bool "warm-over-corruption run = fault-free" true
        (races_check ctx = oracle))

let test_oversize_cache_faults_keep_verdict () =
  with_cache (fun c ->
      let plan = Fault.make ~seed:13 ~oversize:1.0 () in
      let oracle = fault_free () in
      let ctx = Ctx.with_faults plan (Ctx.with_cache c Ctx.default) in
      check_bool "cold oversized run = fault-free" true (races_check ctx = oracle);
      (* oversized payloads still deserialize: the warm run may hit *)
      check_bool "warm oversized run = fault-free" true (races_check ctx = oracle))

(* ---- the other budgeted checkers ---- *)

let test_linearizability_budget_exhausts () =
  match Ticket_lock.certify ~focus:[ 1; 2 ] () with
  | Error e ->
    Alcotest.failf "certify failed: %s" (Format.asprintf "%a" Calculus.pp_error e)
  | Ok cert -> (
    let client i =
      Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
          Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
    in
    let ctx = fresh_ctx (Budget.make ~steps:1 ()) in
    match
      Linearizability.refine_cert_ctx ~ctx cert ~client
        ~scheds:(Sched.default_suite ~seeds:2)
    with
    | Budget.Exhausted { spent; partial = Ok r } ->
      check_bool "reason is the step budget" true (spent.Budget.reason = `Steps);
      check_int "no schedule fit the one-step budget" 0
        r.Refinement.scheds_checked
    | Budget.Exhausted { partial = Error _; _ } ->
      Alcotest.fail "an exhausted prefix is Ok-shaped by construction"
    | Budget.Complete _ -> Alcotest.fail "one-step budget did not trip")

let test_stack_zero_budget_reports_first_edge () =
  let ctx = fresh_ctx (Budget.make ~steps:0 ()) in
  match Stack.verify_all_ctx ~ctx ~seeds:1 () with
  | Budget.Exhausted { partial = Ok p; _ } ->
    check_int "no edge completed" 0 (List.length p.Stack.completed.Stack.edges);
    check_bool "the frontier names the first edge" true
      (p.Stack.next_edge <> None)
  | Budget.Exhausted { partial = Error msg; _ } ->
    Alcotest.failf "partial progress is Ok-shaped: %s" msg
  | Budget.Complete _ -> Alcotest.fail "zero budget did not trip"

(* The ISSUE acceptance criterion: the deliberately livelocking rwlock
   edge — the spinning C loops phase-lock with the trace-prefix
   schedulers and burn the whole fuel allowance — must come back as an
   [Exhausted] report well under 5 s once a deadline budget is set. *)
let test_stack_livelock_bounded_by_budget () =
  let ctx = fresh_ctx (Budget.make ~ms:1500. ()) in
  let outcome, ms =
    Verify_clock.timed (fun () ->
        Stack.verify_all_ctx ~ctx ~seeds:2 ~adversarial:true ())
  in
  check_bool
    (Printf.sprintf "budgeted livelock run returned in %.0f ms (< 5000)" ms)
    true (ms < 5000.);
  match outcome with
  | Budget.Exhausted { spent; partial = Ok p } ->
    check_bool "reason is the deadline" true (spent.Budget.reason = `Deadline);
    check_bool "the completed edges made progress" true
      (List.length p.Stack.completed.Stack.edges >= 1);
    check_bool "the frontier is the adversarial edge" true
      (p.Stack.next_edge = Some Stack.adversarial_edge_name)
  | Budget.Exhausted { partial = Error msg; _ } ->
    Alcotest.failf "partial progress is Ok-shaped: %s" msg
  | Budget.Complete _ ->
    Alcotest.fail "the livelocking edge completed under a 1.5 s budget?"

let suite =
  [
    tc "budget: outcome helpers and clamping" test_budget_outcome_helpers;
    tc "fault: --inject spec parsing" test_fault_parse;
    tc "cancellation preempts the scan" test_cancellation_preempts_scan;
    tc "step budget truncates identically on the jobs grid"
      test_step_budget_truncates_deterministically;
    tc "resumed partial = from-scratch verdict" test_resume_equals_from_scratch;
    tc "partial cached, auto-resumed, then invalidated"
      test_partial_cached_then_invalidated;
    tc "crash injection keeps the verdict (jobs grid)"
      test_crash_faults_keep_verdict;
    tc "clock-skew injection keeps the verdict" test_skew_faults_keep_verdict;
    tc "cache-corruption injection keeps the verdict"
      test_corrupt_cache_faults_keep_verdict;
    tc "oversized-entry injection keeps the verdict"
      test_oversize_cache_faults_keep_verdict;
    tc "linearizability budget exhausts Ok-shaped"
      test_linearizability_budget_exhausts;
    tc "stack: zero budget reports the first edge"
      test_stack_zero_budget_reports_first_edge;
    tc "stack: rwlock livelock bounded by --budget-ms"
      test_stack_livelock_bounded_by_budget;
  ]
