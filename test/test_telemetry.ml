(* Tests for the telemetry subsystem (S25): counters must be
   bit-identical across jobs counts (clean and failing runs alike — the
   capture/commit protocol of [Parallel.scan] at work), spans must nest,
   the Chrome-trace export must be valid JSON, and everything must be
   inert when disabled.

   Every test runs with [with_telemetry], which guarantees the global
   switch is off again afterwards whatever happens — the rest of the
   suite must never observe telemetry half-enabled. *)
open Ccal_core
open Ccal_objects
open Ccal_verify
open Util

let jobs_grid = [ 1; 2; 4; 7 ]

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* ---- counters across the jobs grid ---- *)

let lock_client i =
  Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
      Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))

(* Counter totals after [run jobs], starting from zero each time. *)
let counters_of run jobs =
  Telemetry.reset ();
  run jobs;
  Telemetry.counters ()

let check_counters_jobs_invariant name run =
  with_telemetry (fun () ->
      let oracle = counters_of run 1 in
      check_bool (name ^ ": sequential run counted something") true
        (oracle <> []);
      List.iter
        (fun jobs ->
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s: counters jobs=%d = sequential" name jobs)
            oracle (counters_of run jobs))
        jobs_grid)

let test_dpor_counters_jobs_invariant () =
  let layer = Lock_intf.layer "Llock" in
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  check_counters_jobs_invariant "dpor llock" (fun jobs ->
      ignore
        (Budget.value
           (Dpor.explore_ctx ~ctx:(Ctx.make ~jobs ()) ~depth:4 layer threads)))

let test_races_counters_jobs_invariant () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let threads =
    List.map (fun i -> i, Prog.Module.link m (lock_client i)) [ 1; 2 ]
  in
  check_counters_jobs_invariant "races ticket" (fun jobs ->
      ignore
        (Races.check_ctx ~ctx:(Ctx.make ~jobs ())
           ~scheds:(Sched.default_suite ~seeds:6) layer threads))

(* The early-exit path: thread 1 fails for an ordinary reason and threads
   2/3 race.  Under [jobs > 1] workers evaluate schedules beyond the cut;
   their counts must be discarded, not committed — the totals must equal
   the sequential scan's, which stops at the race. *)
let test_failing_scan_counters_jobs_invariant () =
  let layer =
    Layer.make "Lmixed"
      (Ccal_machine.Pushpull.prims
      @ [
          Layer.shared_prim "trap" (fun _ _ _ ->
              Layer.Stuck "ordinary failure, not a race");
        ])
  in
  let grab i = Prog.seq (Prog.call "pull" [ vi 7 ]) (Prog.ret (vi i)) in
  let threads = [ 1, Prog.call "trap" []; 2, grab 2; 3, grab 3 ] in
  let scheds () =
    (* many clean schedules after the racy one: parallel workers will run
       some of them; the counters must not show it *)
    Sched.of_trace ~name:"other-first" [ 1 ]
    :: Sched.of_trace ~name:"racy" [ 2; 3 ]
    :: List.init 30 (fun k -> Sched.random ~seed:(k + 1))
  in
  check_counters_jobs_invariant "mixed failing races" (fun jobs ->
      match
        Races.check_ctx ~ctx:(Ctx.make ~jobs ()) ~scheds:(scheds ()) layer
          threads
      with
      | Races.Race _ -> ()
      | _ -> Alcotest.fail "expected the race verdict")

let test_chunk_calibration_counters_jobs_invariant () =
  (* cost-calibrated claiming (S24) resizes the batch's chunk after a
     sequential warm-up prefix; chunk geometry must stay invisible to the
     committed counters — only the pool.chunk spans (wall-clock trace
     material) may differ across jobs.  The suite is big enough (243
     schedules) that the calibrated path, not the fallback chunk size,
     does the claiming. *)
  let layer = Lock_intf.layer "Llock" in
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  let run jobs =
    let scheds = Explore.exhaustive_scheds ~tids:[ 1; 2; 3 ] ~depth:5 in
    match Races.check_ctx ~ctx:(Ctx.make ~jobs ()) ~scheds layer threads with
    | Races.Race_free { runs } -> check_int "covered the suite" 243 runs
    | _ -> Alcotest.fail "expected race-free"
  in
  check_counters_jobs_invariant "calibrated races llock" (fun jobs ->
      run jobs);
  with_telemetry (fun () ->
      run 4;
      check_bool "calibrated chunks appear as pool.chunk spans" true
        (List.exists
           (fun (s : Telemetry.span_ev) -> s.Telemetry.name = "pool.chunk")
           (Telemetry.spans ())))

let test_stack_edge_counters_jobs_invariant () =
  (* the per-edge counter column of the stack report: nonempty under
     telemetry, and — like the check counts — identical across jobs *)
  let edges jobs =
    Telemetry.reset ();
    match
      Result.map
        (fun (p : Stack.progress) -> p.Stack.completed)
        (Budget.value (Stack.verify_all_ctx ~ctx:(Ctx.make ~jobs ()) ~seeds:2 ()))
    with
    | Ok r ->
      List.map (fun (e : Stack.edge) -> e.Stack.edge_name, e.Stack.counters) r.Stack.edges
    | Error msg -> Alcotest.failf "stack failed: %s" msg
  in
  with_telemetry (fun () ->
      let oracle = edges 1 in
      check_bool "some edge counted something" true
        (List.exists (fun (_, cs) -> cs <> []) oracle);
      check_bool "edge counters jobs=4 = sequential" true (edges 4 = oracle))

(* ---- the capture/commit protocol itself ---- *)

let test_captured_counts_follow_the_cut () =
  (* a scan that cuts at index 5: whatever the workers ran ahead of the
     cut, the committed total must be the sequential prefix's 0..5 *)
  let c = Telemetry.counter "test_scan_probe" in
  with_telemetry (fun () ->
      List.iter
        (fun jobs ->
          Telemetry.reset ();
          ignore
            (Parallel.scan ~jobs
               ~cut:(fun y -> y = 5)
               (fun x ->
                 Telemetry.incr c;
                 x)
               (List.init 40 Fun.id));
          check_int
            (Printf.sprintf "jobs=%d commits exactly the merged prefix" jobs)
            6
            (Telemetry.get "test_scan_probe"))
        jobs_grid)

let test_captured_passthrough_when_disabled () =
  Telemetry.disable ();
  let hits = ref 0 in
  let d = Telemetry.captured (fun () -> incr hits) in
  check_bool "body ran" true (!hits = 1);
  check_bool "no delta when disabled" true (d = None);
  Telemetry.commit d (* must be a no-op *)

let test_disabled_is_inert () =
  Telemetry.reset ();
  let c = Telemetry.counter "test_inert" in
  Telemetry.add c 7;
  Telemetry.span "test_inert_span" (fun () -> ());
  check_int "counter untouched" 0 (Telemetry.get "test_inert");
  check_bool "no span recorded" true
    (not
       (List.exists
          (fun (s : Telemetry.span_ev) -> s.Telemetry.name = "test_inert_span")
          (Telemetry.spans ())))

let test_diff_counters () =
  let d =
    Telemetry.diff_counters
      [ "a", 1; "b", 5; "d", 2 ]
      [ "a", 4; "b", 5; "c", 7 ]
  in
  Alcotest.(check (list (pair string int))) "merge walk" [ "a", 3; "c", 7 ] d

(* ---- spans ---- *)

let test_spans_nest () =
  with_telemetry (fun () ->
      let r =
        Telemetry.span "outer" (fun () ->
            Telemetry.span "inner" (fun () -> 42))
      in
      check_int "value through" 42 r;
      let find n =
        List.find
          (fun (s : Telemetry.span_ev) -> s.Telemetry.name = n)
          (Telemetry.spans ())
      in
      let outer = find "outer" and inner = find "inner" in
      check_int "outer at depth 0" 0 outer.Telemetry.depth;
      check_int "inner at depth 1" 1 inner.Telemetry.depth;
      check_bool "same domain" true (outer.Telemetry.dom = inner.Telemetry.dom);
      check_bool "inner starts inside outer" true
        (Int64.compare inner.Telemetry.ts_ns outer.Telemetry.ts_ns >= 0);
      let ends (s : Telemetry.span_ev) =
        Int64.add s.Telemetry.ts_ns s.Telemetry.dur_ns
      in
      check_bool "inner ends inside outer" true
        (Int64.compare (ends inner) (ends outer) <= 0))

let test_span_restores_depth_on_raise () =
  with_telemetry (fun () ->
      (try Telemetry.span "raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      Telemetry.span "after" (fun () -> ());
      let after =
        List.find
          (fun (s : Telemetry.span_ev) -> s.Telemetry.name = "after")
          (Telemetry.spans ())
      in
      check_int "depth back to 0" 0 after.Telemetry.depth)

(* ---- Chrome-trace export: round-trip through a JSON parser ---- *)

(* A tiny recursive-descent JSON reader — the container has no JSON
   library, and hand-rolling the reader here keeps the writer honest. *)
type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = Alcotest.failf "JSON parse error at %d: %s" !pos msg in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_lit lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'u' ->
          (* enough for the escapes our writer emits: decode as a byte *)
          advance ();
          let hex = String.sub s !pos 3 in
          pos := !pos + 3;
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | '\000' -> fail "unterminated string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while num_char (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> JNum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (
        advance ();
        JObj [])
      else
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            fields ((k, v) :: acc)
          | '}' ->
            advance ();
            JObj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        fields []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (
        advance ();
        JList [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            items (v :: acc)
          | ']' ->
            advance ();
            JList (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        items []
    | '"' -> JStr (parse_string ())
    | 't' -> parse_lit "true" (JBool true)
    | 'f' -> parse_lit "false" (JBool false)
    | 'n' -> parse_lit "null" JNull
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let test_chrome_trace_round_trips () =
  with_telemetry (fun () ->
      (* record spans on several domains through a parallel scan *)
      ignore
        (Parallel.map ~jobs:4
           (fun x -> Telemetry.span "work\"quoted\"" (fun () -> x * 2))
           (List.init 16 Fun.id));
      Telemetry.span "top" (fun () -> ());
      let trace = Telemetry.chrome_trace_string () in
      match parse_json trace with
      | JObj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (JList evs) ->
          check_bool "some events" true (List.length evs > 0);
          let complete =
            List.filter
              (function
                | JObj f -> List.assoc_opt "ph" f = Some (JStr "X")
                | _ -> false)
              evs
          in
          check_bool "some complete events" true (List.length complete > 0);
          List.iter
            (fun ev ->
              match ev with
              | JObj f ->
                List.iter
                  (fun k ->
                    check_bool (Printf.sprintf "event has %s" k) true
                      (List.assoc_opt k f <> None))
                  [ "name"; "ts"; "dur"; "pid"; "tid" ];
                (match List.assoc_opt "ts" f with
                | Some (JNum ts) ->
                  check_bool "relative timestamp" true (ts >= 0.)
                | _ -> Alcotest.fail "ts not a number")
              | _ -> Alcotest.fail "event not an object")
            complete;
          let quoted =
            List.exists
              (function
                | JObj f -> List.assoc_opt "name" f = Some (JStr "work\"quoted\"")
                | _ -> false)
              complete
          in
          check_bool "escaped name survives the round trip" true quoted
        | _ -> Alcotest.fail "no traceEvents array")
      | _ -> Alcotest.fail "trace is not a JSON object")

let test_write_chrome_trace_file () =
  with_telemetry (fun () ->
      Telemetry.span "file-span" (fun () -> ());
      let path = Filename.temp_file "ccal_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Telemetry.write_chrome_trace path;
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let contents = really_input_string ic n in
          close_in ic;
          match parse_json contents with
          | JObj _ -> ()
          | _ -> Alcotest.fail "written trace is not a JSON object"))

(* ---- the stats table ---- *)

let test_pp_stats_mentions_counters_and_spans () =
  with_telemetry (fun () ->
      Telemetry.add (Telemetry.counter "test_visible_counter") 3;
      Telemetry.span "test_visible_span" (fun () -> ());
      let s = Telemetry.stats_string () in
      let has sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      check_bool "counter named" true (has "test_visible_counter");
      check_bool "span named" true (has "test_visible_span"))

let suite =
  [
    tc "dpor counters identical across jobs" test_dpor_counters_jobs_invariant;
    tc "races counters identical across jobs"
      test_races_counters_jobs_invariant;
    tc "failing-scan counters identical across jobs"
      test_failing_scan_counters_jobs_invariant;
    tc "chunk calibration invisible to counters"
      test_chunk_calibration_counters_jobs_invariant;
    tc "stack per-edge counters identical across jobs"
      test_stack_edge_counters_jobs_invariant;
    tc "scan commits exactly the merged prefix"
      test_captured_counts_follow_the_cut;
    tc "captured is passthrough when disabled"
      test_captured_passthrough_when_disabled;
    tc "disabled telemetry is inert" test_disabled_is_inert;
    tc "diff_counters merge walk" test_diff_counters;
    tc "spans nest with depth and containment" test_spans_nest;
    tc "span depth restored on raise" test_span_restores_depth_on_raise;
    tc "chrome trace round-trips through JSON parser"
      test_chrome_trace_round_trips;
    tc "write_chrome_trace produces a parseable file"
      test_write_chrome_trace_file;
    tc "pp_stats names counters and spans"
      test_pp_stats_mentions_counters_and_spans;
  ]
