(* Tests for the verification harness (S22) and failure injection: every
   checker must *catch* a seeded bug, not just pass on correct code. *)
open Ccal_core
open Ccal_objects
open Ccal_verify
open Util
module C = Ccal_clight.Csyntax

(* ---- explore ---- *)

let test_exhaustive_count () =
  check_int "2^3" 8 (List.length (Explore.exhaustive_scheds ~tids:[ 1; 2 ] ~depth:3))

let test_full_suite_size () =
  let suite = Explore.full_suite ~tids:[ 1; 2 ] ~depth:2 ~random:3 () in
  check_int "1 + 4 + 3" 8 (List.length suite)

let test_distinct_logs () =
  let layer = counter_layer () in
  let threads =
    [ 1, Prog.call "tick" [ vi 0 ]; 2, Prog.call "tick" [ vi 0 ] ]
  in
  let outcomes =
    Budget.value
      (Explore.run_all_ctx ~ctx:Ctx.default layer threads
         (Explore.exhaustive_scheds ~tids:[ 1; 2 ] ~depth:2))
  in
  check_int "two orders" 2 (Explore.count_distinct_logs outcomes)

(* ---- linearizability ---- *)

let test_linearizability_ticket () =
  match Ticket_lock.certify ~focus:[ 1; 2 ] () with
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e
  | Ok cert -> (
    let client i =
      Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
          Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
    in
    match
      Budget.value
        (Linearizability.check_cert_ctx ~ctx:Ctx.default
           ~scheds:(Explore.full_suite ~tids:[ 1; 2 ] ~depth:3 ~random:4 ())
           cert ~client)
    with
    | Ok r ->
      check_bool "several interleavings" true (r.Linearizability.distinct_logs >= 2)
    | Error f -> Alcotest.failf "%a" Refinement.pp_failure f)

(* ---- progress ---- *)

let test_progress_bound_ticket () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.call "rel" [ vi 0; vi i ])
  in
  let threads = List.map (fun i -> i, Prog.Module.link m (client i)) [ 1; 2; 3 ] in
  match
    Budget.value
      (Progress.completes_within_ctx ~ctx:Ctx.default
         ~scheds:(Sched.default_suite ~seeds:10) ~bound:2_000 layer threads)
  with
  | Ok r -> check_bool "bound respected" true (r.Progress.max_steps_used < 2_000)
  | Error msg -> Alcotest.fail msg

let test_progress_detects_starvation () =
  (* a thread spinning on a flag nobody sets starves: the bound trips *)
  let layer = Ccal_machine.Mx86.layer () in
  let rec spin () =
    Prog.bind (Prog.call "aload" [ vi 0 ]) (fun v ->
        if Value.to_int v = 1 then Prog.ret_unit else spin ())
  in
  match
    Budget.value
      (Progress.completes_within_ctx ~ctx:Ctx.default
         ~scheds:[ Sched.round_robin ] ~bound:200 layer [ 1, spin () ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "starvation not detected"

let test_waiting_spans () =
  let l =
    log_of
      [ ev ~args:[ vi 0 ] 1 "FAI_t"; ev ~args:[ vi 0 ] 2 "FAI_t";
        ev ~args:[ vi 0 ] 1 "pull"; ev ~args:[ vi 0; vi 1 ] 1 "push";
        ev ~args:[ vi 0 ] 2 "pull" ]
  in
  let spans = Progress.waiting_spans ~ticket_tag:"FAI_t" ~enter_tag:"pull" l in
  Alcotest.(check (list (pair int int))) "spans" [ 1, 2; 2, 3 ] spans

let test_fifo_violation_detected () =
  let l =
    log_of
      [ ev ~args:[ vi 0 ] 1 "FAI_t"; ev ~args:[ vi 0 ] 2 "FAI_t";
        ev ~args:[ vi 0 ] 2 "pull" ]
  in
  check_bool "2 jumped the queue" false
    (Progress.fifo_order ~ticket_tag:"FAI_t" ~enter_tag:"pull" l)

(* ---- races ---- *)

let test_races_clean_program () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ -> Prog.call "rel" [ vi 0; vi i ])
  in
  match
    Races.check_ctx ~ctx:Ctx.default ~scheds:(Sched.default_suite ~seeds:6)
      layer
      [ 1, Prog.Module.link m (client 1); 2, Prog.Module.link m (client 2) ]
  with
  | Races.Race_free { runs } -> check_int "runs" 7 runs
  | Races.Race { detail; _ } -> Alcotest.failf "false positive: %s" detail
  | Races.Other_failure msg -> Alcotest.fail msg
  | Races.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"

let test_races_detects_unlocked_access () =
  (* two threads pull the same location without any lock *)
  let layer = Ccal_machine.Mx86.layer () in
  let prog = Prog.seq (Prog.call "pull" [ vi 0 ]) (Prog.call "push" [ vi 0; vi 1 ]) in
  match
    Races.check_ctx ~ctx:Ctx.default ~scheds:[ Sched.of_trace [ 1; 2 ] ] layer
      [ 1, prog; 2, prog ]
  with
  | Races.Race _ -> ()
  | _ -> Alcotest.fail "race not detected"

(* ---- failure injection: seeded bugs must fail certification ---- *)

(* Bug 1: acq skips the spin loop (no mutual exclusion). *)
let broken_acq_no_spin =
  {
    C.name = "acq";
    params = [ "b" ];
    locals = [ "myt"; "v" ];
    body =
      C.seq
        [
          C.calla "myt" "FAI_t" [ C.v "b" ];
          C.calla "v" "pull" [ C.v "b" ];
          C.return (C.v "v");
        ];
  }

let certify_with_acq acq_fn =
  let impl = Ccal_clight.Csem.module_of_fns [ acq_fn; Ticket_lock.rel_fn ] in
  Calculus.fun_rule ~underlay:(Ticket_lock.l0 ()) ~overlay:(Ticket_lock.overlay ())
    ~impl ~rel:Ticket_lock.r_ticket ~focus:[ 1 ]
    ~prim_tests:(Ticket_lock.prim_tests ())
    ~envs:(Ticket_lock.env_suite ()) ()

let test_inject_no_spin_caught () =
  match certify_with_acq broken_acq_no_spin with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lock without spinning certified"

(* Bug 2: rel forgets inc_n (next waiter starves). *)
let broken_rel_no_inc =
  {
    C.name = "rel";
    params = [ "b"; "v" ];
    locals = [];
    body = C.seq [ C.call_ "push" [ C.v "b"; C.v "v" ]; C.return_unit ];
  }

let test_inject_missing_inc_caught () =
  let impl = Ccal_clight.Csem.module_of_fns [ Ticket_lock.acq_fn; broken_rel_no_inc ] in
  let r =
    Calculus.fun_rule ~underlay:(Ticket_lock.l0 ()) ~overlay:(Ticket_lock.overlay ())
      ~impl ~rel:Ticket_lock.r_ticket ~focus:[ 1 ]
      ~prim_tests:(Ticket_lock.prim_tests ())
      ~envs:(Ticket_lock.env_suite ()) ()
  in
  match r with
  | Error _ -> ()
  | Ok cert -> (
    (* the per-primitive cases may pass (no rival needs the ticket), but the
       whole-machine refinement starves and must fail *)
    let client i =
      Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
          Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.call "acq" [ vi 0 ]))
    in
    match
      Refinement.check_cert ~max_steps:5_000 cert ~client
        ~scheds:[ Sched.round_robin ]
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "missing inc_n not caught")

(* Bug 3: non-atomic FAI (read then separate increment events).  We model
   it by an acq that reads the ticket twice, taking the same ticket as a
   rival — duplicated tickets break FIFO/mutex and the simulation. *)
let broken_acq_shared_ticket =
  {
    C.name = "acq";
    params = [ "b" ];
    locals = [ "n"; "v" ];
    body =
      C.seq
        [
          (* wait for "now serving" without ever drawing a ticket *)
          C.calla "n" "get_n" [ C.v "b" ];
          C.calla "v" "pull" [ C.v "b" ];
          C.return (C.v "v");
        ];
  }

let test_inject_duplicate_ticket_caught () =
  match certify_with_acq broken_acq_shared_ticket with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ticketless acquire certified"

(* Bug 4: rel publishes the wrong value. *)
let broken_rel_wrong_value =
  {
    C.name = "rel";
    params = [ "b"; "v" ];
    locals = [];
    body =
      C.seq
        [
          C.call_ "push" [ C.v "b"; C.i 0 ];
          C.call_ "inc_n" [ C.v "b" ];
          C.return_unit;
        ];
  }

let test_inject_wrong_publish_caught () =
  let impl = Ccal_clight.Csem.module_of_fns [ Ticket_lock.acq_fn; broken_rel_wrong_value ] in
  let r =
    Calculus.fun_rule ~underlay:(Ticket_lock.l0 ()) ~overlay:(Ticket_lock.overlay ())
      ~impl ~rel:Ticket_lock.r_ticket ~focus:[ 1 ]
      ~prim_tests:(Ticket_lock.prim_tests ())
      ~envs:(Ticket_lock.env_suite ()) ()
  in
  match r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong published value certified"

(* Bug 5: a broken shared queue that releases before operating. *)
let broken_deq_outside_lock =
  {
    C.name = "deQ_s";
    params = [ "q" ];
    locals = [ "l"; "r"; "l2" ];
    body =
      C.seq
        [
          C.calla "l" "acq" [ C.v "q" ];
          C.call_ "rel" [ C.v "q"; C.v "l" ];
          C.calla "r" "q_hd" [ C.v "l" ];
          C.return (C.v "r");
        ];
  }

let test_inject_early_release_caught () =
  let impl =
    Ccal_clight.Csem.module_of_fns [ broken_deq_outside_lock; Queue_shared.enq_fn ]
  in
  let r =
    Calculus.fun_rule ~underlay:(Queue_shared.underlay ())
      ~overlay:(Queue_shared.overlay ()) ~impl ~rel:Queue_shared.r_lock
      ~focus:[ 1 ] ~prim_tests:(Queue_shared.prim_tests ())
      ~envs:(Queue_shared.env_suite ()) ()
  in
  match r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "early release certified"

(* Bug 6: a miscompiler (constant folding gone wrong) must fail
   translation validation. *)
let test_inject_miscompile_caught () =
  let f =
    { C.name = "f"; params = [ "x" ]; locals = [];
      body = C.return C.(v "x" * i 2) }
  in
  let sabotaged =
    let asm = Ccal_compcertx.Compile.compile_fn f in
    { asm with Ccal_machine.Asm.body =
        List.map
          (function
            | Ccal_machine.Asm.Op (Ccal_machine.Asm.Mul, r, o) ->
              Ccal_machine.Asm.Op (Ccal_machine.Asm.Add, r, o)
            | i -> i)
          asm.Ccal_machine.Asm.body }
  in
  let layer = Ccal_machine.Mx86.layer () in
  let c = expect_done layer (Ccal_clight.Csem.prog_of_fn f [ vi 3 ]) in
  let a = expect_done layer (Ccal_machine.Asm_sem.prog_of_fn sabotaged [ vi 3 ]) in
  check_bool "validation distinguishes" false (Value.equal c a)

(* Bug 7: an unfair "scheduler" (always picks thread 1) starves thread 2's
   acquire — the progress checker reports it. *)
let test_inject_unfair_scheduler_starves () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let rec forever i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (forever i))
  in
  let one_round i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ -> Prog.call "rel" [ vi 0; vi i ])
  in
  let unfair =
    { Sched.name = "always-1";
      pick = (fun ~step:_ _ ~runnable ->
          if List.mem 1 runnable then Some 1 else List.nth_opt runnable 0) }
  in
  match
    Budget.value
      (Progress.completes_within_ctx ~ctx:Ctx.default ~scheds:[ unfair ]
         ~bound:3_000 layer
         [ 1, Prog.Module.link m (forever 1);
           2, Prog.Module.link m (one_round 2) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "starvation under unfair scheduler not detected"

let suite =
  [
    tc "exhaustive count" test_exhaustive_count;
    tc "full suite size" test_full_suite_size;
    tc "distinct logs" test_distinct_logs;
    tc "linearizability (ticket)" test_linearizability_ticket;
    tc "progress bound (ticket)" test_progress_bound_ticket;
    tc "progress detects starvation" test_progress_detects_starvation;
    tc "waiting spans" test_waiting_spans;
    tc "fifo violation detected" test_fifo_violation_detected;
    tc "races: clean program" test_races_clean_program;
    tc "races: unlocked access detected" test_races_detects_unlocked_access;
    tc "inject: no spin caught" test_inject_no_spin_caught;
    tc "inject: missing inc_n caught" test_inject_missing_inc_caught;
    tc "inject: ticketless acquire caught" test_inject_duplicate_ticket_caught;
    tc "inject: wrong publish caught" test_inject_wrong_publish_caught;
    tc "inject: early release caught" test_inject_early_release_caught;
    tc "inject: miscompilation caught" test_inject_miscompile_caught;
    tc "inject: unfair scheduler starves" test_inject_unfair_scheduler_starves;
  ]
