(* Unit + property tests for Value, Event, Log and Replay (S1). *)
open Ccal_core
open Util

let test_value_equal () =
  check_bool "unit=unit" true (Value.equal Value.unit Value.unit);
  check_bool "int" true (Value.equal (vi 3) (vi 3));
  check_bool "int neq" false (Value.equal (vi 3) (vi 4));
  check_bool "pair" true
    (Value.equal (Value.pair (vi 1) (vi 2)) (Value.pair (vi 1) (vi 2)));
  check_bool "list" true
    (Value.equal (Value.list [ vi 1; vi 2 ]) (Value.list [ vi 1; vi 2 ]));
  check_bool "list length" false
    (Value.equal (Value.list [ vi 1 ]) (Value.list [ vi 1; vi 2 ]));
  check_bool "cross kind" false (Value.equal Value.unit (vi 0))

let test_value_projections () =
  check_int "to_int" 7 (Value.to_int (vi 7));
  check_bool "to_bool true" true (Value.to_bool (Value.bool true));
  check_bool "to_bool of int" true (Value.to_bool (vi 1));
  check_bool "to_bool of zero" false (Value.to_bool (vi 0));
  (match Value.to_pair (Value.pair (vi 1) (vi 2)) with
  | a, b ->
    check_int "fst" 1 (Value.to_int a);
    check_int "snd" 2 (Value.to_int b));
  Alcotest.check_raises "to_int of unit"
    (Value.Type_error "expected int, got ()") (fun () ->
      ignore (Value.to_int Value.unit))

let test_value_compare_total () =
  let sign n = compare n 0 in
  let vs =
    [ Value.unit; vi (-1); vi 0; Value.bool false; Value.pair (vi 1) (vi 2);
      Value.list []; Value.list [ vi 1 ] ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_int "antisymmetric" (sign (Value.compare a b))
            (-sign (Value.compare b a));
          check_bool "consistent with equal"
            (Value.equal a b)
            (Value.compare a b = 0))
        vs)
    vs

let test_event_basics () =
  let e = ev ~args:[ vi 0 ] ~ret:(vi 3) 1 "FAI_t" in
  check_string "to_string" "1.FAI_t(0)->3" (Event.to_string e);
  check_bool "equal" true (Event.equal e (ev ~args:[ vi 0 ] ~ret:(vi 3) 1 "FAI_t"));
  check_bool "ret matters" false
    (Event.equal e (ev ~args:[ vi 0 ] ~ret:(vi 4) 1 "FAI_t"));
  check_bool "src matters" false
    (Event.equal e (ev ~args:[ vi 0 ] ~ret:(vi 3) 2 "FAI_t"));
  check_bool "switch" true (Event.is_switch (Event.switch 2));
  check_bool "not switch" false (Event.is_switch e)

let test_log_append_order () =
  let l = log_of [ ev 1 "a"; ev 2 "b"; ev 1 "c" ] in
  check_int "length" 3 (Log.length l);
  Alcotest.(check (list string))
    "chronological" [ "a"; "b"; "c" ]
    (List.map (fun (e : Event.t) -> e.tag) (Log.chronological l));
  Alcotest.(check (list string))
    "newest first" [ "c"; "b"; "a" ]
    (List.map (fun (e : Event.t) -> e.tag) (Log.newest_first l));
  check_bool "latest" true
    (match Log.latest l with Some e -> String.equal e.Event.tag "c" | None -> false)

let test_log_suffix_since () =
  let l1 = log_of [ ev 1 "a" ] in
  let l2 = Log.append_all [ ev 2 "b"; ev 1 "c" ] l1 in
  Alcotest.(check (list string))
    "suffix" [ "b"; "c" ]
    (List.map (fun (e : Event.t) -> e.tag) (Log.suffix_since l1 l2));
  check_int "empty suffix" 0 (List.length (Log.suffix_since l1 l1));
  Alcotest.check_raises "longer earlier"
    (Invalid_argument "Log.suffix_since: earlier log is longer than later log")
    (fun () -> ignore (Log.suffix_since l2 l1))

let test_log_by_thread_and_count () =
  let l = log_of [ ev 1 "a"; ev 2 "b"; ev 1 "c"; ev 3 "d"; ev 1 "a" ] in
  check_int "by_thread 1" 3 (List.length (Log.by_thread 1 l));
  check_int "by_thread 9" 0 (List.length (Log.by_thread 9 l));
  check_int "count a" 2 (Log.count (fun e -> String.equal e.Event.tag "a") l)

let test_log_map_events () =
  let l = log_of [ ev 1 "hold"; ev 2 "get_n"; ev 1 "inc_n" ] in
  let translated =
    Log.map_events
      (fun e ->
        if String.equal e.Event.tag "hold" then [ { e with Event.tag = "acq" } ]
        else if String.equal e.Event.tag "get_n" then []
        else [ e ])
      l
  in
  Alcotest.(check (list string))
    "translated" [ "acq"; "inc_n" ]
    (List.map (fun (e : Event.t) -> e.tag) (Log.chronological translated))

let test_replay_fold () =
  let sum =
    Replay.fold ~init:0 ~step:(fun acc (e : Event.t) ->
        match e.ret with Value.Vint n -> Ok (acc + n) | _ -> Error "non-int")
  in
  let l = log_of [ ev ~ret:(vi 1) 1 "x"; ev ~ret:(vi 2) 2 "x" ] in
  check_int "sum" 3 (Replay.run_exn sum l);
  check_bool "wf" true (Replay.well_formed sum l);
  let bad = log_of [ ev 1 "x" ] in
  check_bool "stuck" false (Replay.well_formed sum bad)

let test_replay_combinators () =
  let a = Replay.pure 1 and b = Replay.map (fun l -> l) (Replay.pure 2) in
  (match Replay.both a b Log.empty with
  | Ok (x, y) ->
    check_int "both fst" 1 x;
    check_int "both snd" 2 y
  | Error _ -> Alcotest.fail "both failed");
  check_int "map" 4 (Replay.run_exn (Replay.map (fun x -> x * 2) (Replay.pure 2)) Log.empty)

(* Properties *)

let event_gen =
  QCheck.Gen.(
    let* src = int_range 1 5 in
    let* tag = oneofl [ "a"; "b"; "c"; "acq"; "rel" ] in
    let* arg = small_nat in
    return (Event.make ~args:[ Value.int arg ] src tag))
  |> QCheck.make

let events_gen = QCheck.list_of_size (QCheck.Gen.int_range 0 30) event_gen

let prop_chronological_reverses =
  qtc "chronological = rev newest_first" events_gen (fun evs ->
      let l = log_of evs in
      Log.chronological l = List.rev (Log.newest_first l))

let prop_append_length =
  qtc "append_all length" events_gen (fun evs ->
      Log.length (log_of evs) = List.length evs)

let prop_filter_keeps_order =
  qtc "filter preserves order" events_gen (fun evs ->
      let l = log_of evs in
      let f = Log.filter (fun e -> e.Event.src = 1) l in
      Log.chronological f
      = List.filter (fun (e : Event.t) -> e.src = 1) (Log.chronological l))

let prop_map_events_id =
  qtc "map_events id = id" events_gen (fun evs ->
      let l = log_of evs in
      Log.equal l (Log.map_events (fun e -> [ e ]) l))

let prop_suffix_roundtrip =
  qtc "append then suffix_since" (QCheck.pair events_gen events_gen)
    (fun (pre, post) ->
      let l1 = log_of pre in
      let l2 = Log.append_all post l1 in
      List.length (Log.suffix_since l1 l2) = List.length post)

let prop_value_equal_refl =
  qtc "value equality reflexive" QCheck.(list small_int) (fun xs ->
      let v = Value.list (List.map Value.int xs) in
      Value.equal v v && Value.compare v v = 0)

(* [Log.dedup] buckets by hash but must decide membership by [Log.equal]
   alone — under a hash that maps everything to one bucket (the worst
   collision case), and under the default hash, it must agree with the
   naive quadratic dedup.  Keeps first occurrences, in order, like the
   naive version. *)
let naive_dedup logs =
  List.rev
    (List.fold_left
       (fun acc l -> if List.exists (Log.equal l) acc then acc else l :: acc)
       [] logs)

let logs_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 0 12)
    (QCheck.map log_of events_gen)

let prop_dedup_collisions =
  qtc "dedup under forced hash collisions" logs_gen (fun logs ->
      let naive = naive_dedup logs in
      List.equal Log.equal naive (Log.dedup ~hash:(fun _ -> 0) logs)
      && List.equal Log.equal naive (Log.dedup logs))

let suite =
  [
    tc "value equal" test_value_equal;
    tc "value projections" test_value_projections;
    tc "value compare total" test_value_compare_total;
    tc "event basics" test_event_basics;
    tc "log append order" test_log_append_order;
    tc "log suffix_since" test_log_suffix_since;
    tc "log by_thread/count" test_log_by_thread_and_count;
    tc "log map_events" test_log_map_events;
    tc "replay fold" test_replay_fold;
    tc "replay combinators" test_replay_combinators;
    prop_chronological_reverses;
    prop_append_length;
    prop_filter_keeps_order;
    prop_map_events_id;
    prop_suffix_roundtrip;
    prop_value_equal_refl;
    prop_dedup_collisions;
  ]
