(* The memory-model test matrix (DESIGN.md S29): the litmus conformance
   suite pinning the x86-TSO outcome tables per mode, the erased-buffering
   projection, the DRF guarantee as a QCheck property, the deliberately
   unfenced negative controls, and the SC/TSO cache-key separation. *)
open Ccal_core
open Ccal_objects
open Util
module A = Ccal_machine.Atomic
module P = Ccal_machine.Pushpull
module T = Ccal_machine.Tso
module L = Ccal_machine.Litmus
module V = Ccal_verify

let ctx_of memory = V.Ctx.make ~memory ()

let outcomes_testable : int list list Alcotest.testable =
  Alcotest.(list (list int))

(* ---- corpus sanity: the hand-derived tables have the x86-TSO shape ---- *)

let test_corpus_shape () =
  check_int "nine tests" 9 (List.length L.tests);
  List.iter
    (fun (t : L.test) ->
      check_bool
        (t.L.name ^ ": fenced flag matches name")
        t.L.fenced
        (String.length t.L.name > 7
        && String.sub t.L.name (String.length t.L.name - 7) 7 = "+mfence");
      check_bool
        (t.L.name ^ ": sc is a subset of tso")
        true
        (List.for_all (fun o -> List.mem o t.L.tso) t.L.sc))
    L.tests;
  (* store->load is the only TSO reordering: exactly SB and R gain an
     outcome, and each gains exactly one *)
  let gains (t : L.test) =
    List.filter (fun o -> not (List.mem o t.L.sc)) t.L.tso
  in
  List.iter
    (fun (t : L.test) ->
      match t.L.name with
      | "SB" -> Alcotest.check outcomes_testable "SB gains (0,0)" [ [ 0; 0 ] ] (gains t)
      | "R" -> Alcotest.check outcomes_testable "R gains (0,2)" [ [ 0; 2 ] ] (gains t)
      | _ ->
        Alcotest.check outcomes_testable
          (t.L.name ^ " coincides with SC")
          [] (gains t))
    L.tests

let test_corpus_find () =
  check_bool "find SB" true (L.find "SB" <> None);
  check_bool "find IRIW" true (L.find "IRIW" <> None);
  check_bool "find nonsense" true (L.find "WRC" = None);
  let sb = Option.get (L.find "SB") in
  Alcotest.check outcomes_testable "expected Sc = sc table" sb.L.sc
    (L.expected Memory.Sc sb);
  Alcotest.check outcomes_testable "expected Tso = tso table" sb.L.tso
    (L.expected Memory.Tso sb)

let test_iriw_table () =
  (* IRIW pins multi-copy atomicity: all 16 register tuples except the
     one where the two readers disagree on the store order *)
  let iriw = Option.get (L.find "IRIW") in
  check_int "15 outcomes" 15 (List.length iriw.L.tso);
  check_bool "forbidden tuple absent" false (List.mem [ 1; 0; 1; 0 ] iriw.L.tso);
  Alcotest.check outcomes_testable "SC = TSO for IRIW" iriw.L.sc iriw.L.tso

(* ---- conformance: reachable outcomes = expected tables, both modes ---- *)

let conformance_case (t : L.test) memory () =
  let r = V.Litmus.run_test ~ctx:(ctx_of memory) t in
  Alcotest.check Alcotest.(list string) (t.L.name ^ ": no errors") [] r.V.Litmus.errors;
  Alcotest.check outcomes_testable
    (t.L.name ^ ": nothing extra reached")
    [] (V.Litmus.extra r);
  Alcotest.check outcomes_testable
    (t.L.name ^ ": every allowed outcome reached")
    [] (V.Litmus.missing r);
  check_bool (t.L.name ^ ": exact conformance") true (V.Litmus.ok r)

let conformance_cases =
  List.concat_map
    (fun (t : L.test) ->
      [
        tc (t.L.name ^ " conforms under SC") (conformance_case t Memory.Sc);
        tc (t.L.name ^ " conforms under TSO") (conformance_case t Memory.Tso);
      ])
    L.tests

let test_fenced_reconverges () =
  (* the +mfence variants pin that the fence removes exactly the
     TSO-only outcome: their TSO set is the unfenced SC set *)
  List.iter
    (fun name ->
      let fenced = Option.get (L.find (name ^ "+mfence")) in
      let plain = Option.get (L.find name) in
      let r = V.Litmus.run_test ~ctx:(ctx_of Memory.Tso) fenced in
      check_bool (name ^ "+mfence ok") true (V.Litmus.ok r);
      Alcotest.check outcomes_testable
        (name ^ "+mfence under TSO = " ^ name ^ " under SC")
        plain.L.sc r.V.Litmus.observed)
    [ "SB"; "R" ]

let test_run_both_table () =
  let pairs = V.Litmus.run_both ~ctx:(V.Ctx.default) () in
  check_int "one pair per test" (List.length L.tests) (List.length pairs);
  List.iter
    (fun ((sc_r : V.Litmus.report), (tso_r : V.Litmus.report)) ->
      check_bool (sc_r.V.Litmus.name ^ " sc mode") true
        (Memory.equal sc_r.V.Litmus.memory Memory.Sc);
      check_bool (tso_r.V.Litmus.name ^ " tso mode") true
        (Memory.equal tso_r.V.Litmus.memory Memory.Tso);
      check_bool "both conform" true (V.Litmus.ok sc_r && V.Litmus.ok tso_r))
    pairs;
  (* the CI artifact renders and mentions the TSO-only SB outcome *)
  let table = Format.asprintf "%a" V.Litmus.pp_table pairs in
  check_bool "table nonempty" true (String.length table > 0)

(* ---- jobs-identity: the TSO report is the same at jobs 1 and 4 ---- *)

let test_jobs_identity () =
  List.iter
    (fun name ->
      let t = Option.get (L.find name) in
      let run jobs =
        V.Litmus.run_test ~ctx:(V.Ctx.make ~memory:Memory.Tso ~jobs ()) t
      in
      check_bool (name ^ ": report identical at jobs 1 and 4") true
        (run 1 = run 4))
    [ "SB"; "MP"; "IRIW" ]

(* ---- erase_buffering: the projection litmus outcome extraction reuses ---- *)

let test_erase_drops_buffering () =
  let l =
    log_of
      [
        ev ~args:[ vi 1; vi 5 ] 1 T.buf_store_tag;
        ev ~args:[ vi 9 ] 2 "noise";
        ev ~args:[ vi 1; vi 5; vi 1 ] (Memory.flusher_tid 1) T.commit_tag;
        ev ~args:[] 1 T.mfence_tag;
      ]
  in
  let erased = Log.chronological (T.erase_buffering l) in
  check_int "two events survive" 2 (List.length erased);
  (match erased with
  | [ noise; store ] ->
    check_string "noise preserved" "noise" noise.Event.tag;
    check_string "commit becomes astore" A.astore_tag store.Event.tag;
    check_int "astore attributed to the cpu, not the flusher" 1
      store.Event.src;
    Alcotest.check
      Alcotest.(list value_testable)
      "astore args are (cell, value)"
      [ vi 1; vi 5 ]
      store.Event.args
  | _ -> Alcotest.fail "unexpected erased shape");
  (* the erased log replays like an SC log *)
  (match A.replay_cell 1 (T.erase_buffering l) with
  | Ok v -> check_int "cell 1 holds 5 after erasure" 5 v
  | Error e -> Alcotest.failf "replay failed: %s" e)

let test_erase_positions_store_at_commit () =
  (* the store becomes visible at the commit position: a load between
     issue and commit still reads the old value after erasure *)
  let l =
    log_of
      [
        ev ~args:[ vi 1; vi 5 ] 1 T.buf_store_tag;
        ev ~args:[ vi 1 ] ~ret:(vi 0) 2 A.aload_tag;
        ev ~args:[ vi 1; vi 5; vi 1 ] (Memory.flusher_tid 1) T.commit_tag;
      ]
  in
  match Log.chronological (T.erase_buffering l) with
  | [ load; store ] ->
    check_string "load first" A.aload_tag load.Event.tag;
    check_string "store second" A.astore_tag store.Event.tag
  | _ -> Alcotest.fail "unexpected erased shape"

let test_erase_identity_on_sc_logs () =
  let l =
    log_of
      [
        ev ~args:[ vi 1; vi 5 ] 1 A.astore_tag;
        ev ~args:[ vi 1 ] ~ret:(vi 5) 2 A.aload_tag;
        ev ~args:[ vi 3 ] 1 "tick";
      ]
  in
  Alcotest.check log_testable "no buffering tags: erasure is the identity" l
    (T.erase_buffering l)

let test_erase_agrees_with_rel () =
  let l =
    log_of
      [
        ev ~args:[ vi 2; vi 7 ] 1 T.buf_store_tag;
        ev ~args:[ vi 2; vi 7; vi 1 ] 1 T.commit_tag;
      ]
  in
  Alcotest.check log_testable "erase_buffering_rel = erase_buffering"
    (Sim_rel.apply T.erase_buffering_rel l)
    (T.erase_buffering l)

(* ---- the DRF guarantee as a property: race-free push/pull programs
   behave identically on the SC and TSO machines ---- *)

(* Race-free by construction: thread [tid] owns shared location [4 + tid]
   (push/pull-disciplined) and private cells [100 + 10*tid + k] (astore).
   Every op either runs a critical section on its own location or hits a
   private cell; no location is touched by two threads, so the program is
   DRF and the x86-TSO theorem promises SC behaviour. *)
let prog_of_ops tid ops =
  let loc = 4 + tid in
  let cell k = 100 + (10 * tid) + (k mod 3) in
  let op_prog i op =
    match op mod 3 with
    | 0 ->
      (* critical section: pull, bump, push *)
      Prog.bind
        (Prog.call P.pull_tag [ vi loc ])
        (fun v ->
          let n = match v with Value.Vint n -> n | _ -> 0 in
          Prog.call P.push_tag [ vi loc; vi (n + 1) ])
    | 1 -> Prog.call A.astore_tag [ vi (cell i); vi (tid + i) ]
    | _ -> Prog.call A.aload_tag [ vi (cell i) ]
  in
  Prog.seq
    (Prog.seq_all (List.mapi op_prog ops))
    (* return the last value of our first private cell: forwarding from
       the store buffer must agree with SC *)
    (Prog.bind (Prog.call A.aload_tag [ vi (cell 0) ]) Prog.ret)

let qcheck_drf =
  qtc ~count:60 "DRF programs: TSO behaviour = SC behaviour"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5) (int_bound 20))
        (list_of_size Gen.(1 -- 5) (int_bound 20)))
    (fun (ops1, ops2) ->
      let threads = [ 1, prog_of_ops 1 ops1; 2, prog_of_ops 2 ops2 ] in
      let scheds =
        [ Sched.round_robin; Sched.random ~seed:7; Sched.random ~seed:23 ]
      in
      match T.sc_equivalent_on ~threads ~scheds () with
      | Ok n -> n > 0
      | Error e -> QCheck.Test.fail_reportf "not SC-equivalent: %s" e)

(* ---- negative controls: the unfenced variants break under TSO ---- *)

let negative_ctx memory = V.Ctx.make ~memory ~strategy:(V.Ctx.Engine.dpor ~depth:10) ()

let verdict_str = function
  | V.Races.Race_free { runs } -> Printf.sprintf "race-free (%d runs)" runs
  | V.Races.Race { sched_name; _ } -> "race on " ^ sched_name
  | V.Races.Other_failure m -> "failure: " ^ m
  | V.Races.Exhausted _ -> "exhausted"

let races memory ~fenced variant =
  V.Races.check_ctx ~ctx:(negative_ctx memory) (Unfenced.layer memory)
    (Unfenced.threads ~fenced variant)

let test_unfenced_race_free_under_sc () =
  List.iter
    (fun variant ->
      match races Memory.Sc ~fenced:false variant with
      | V.Races.Race_free { runs } ->
        check_bool (Unfenced.variant_name variant ^ ": ran schedules") true
          (runs > 0)
      | v ->
        Alcotest.failf "%s under SC: expected race-free, got %s"
          (Unfenced.variant_name variant) (verdict_str v))
    Unfenced.variants

let test_unfenced_races_under_tso () =
  List.iter
    (fun variant ->
      match races Memory.Tso ~fenced:false variant with
      | V.Races.Race { sched_name; detail; _ } ->
        check_bool
          (Unfenced.variant_name variant ^ ": violation names a schedule")
          true
          (String.length sched_name > 0);
        check_bool
          (Unfenced.variant_name variant ^ ": violation is a data race")
          true
          (String.length detail > 0)
      | v ->
        Alcotest.failf "%s under TSO: expected a race, got %s"
          (Unfenced.variant_name variant) (verdict_str v))
    Unfenced.variants

let test_fenced_race_free_both_modes () =
  List.iter
    (fun variant ->
      List.iter
        (fun memory ->
          match races memory ~fenced:true variant with
          | V.Races.Race_free _ -> ()
          | v ->
            Alcotest.failf "%s fenced under %s: expected race-free, got %s"
              (Unfenced.variant_name variant)
              (Memory.to_string memory)
              (verdict_str v))
        [ Memory.Sc; Memory.Tso ])
    Unfenced.variants

(* ---- the failing schedule replays deterministically: same verdict and
   schedule name across jobs counts and cache cold/warm, and the failure
   is never cached ---- *)

let scratch_counter = ref 0

let with_cache f =
  incr scratch_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccal-litmus-cache-%d-%d" (Unix.getpid ())
         !scratch_counter)
  in
  let c = V.Cache.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      ignore (V.Cache.clear c);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f c)

let race_name ?cache ?(jobs = 1) () =
  let ctx =
    V.Ctx.make ~memory:Memory.Tso ~strategy:(V.Ctx.Engine.dpor ~depth:10) ?cache ~jobs ()
  in
  match
    V.Races.check_ctx ~ctx (Unfenced.layer Memory.Tso)
      (Unfenced.threads Unfenced.Trylock)
  with
  | V.Races.Race { sched_name; _ } -> sched_name
  | v -> Alcotest.failf "expected a race, got %s" (verdict_str v)

let test_race_deterministic_across_jobs () =
  let s1 = race_name ~jobs:1 () in
  let s4 = race_name ~jobs:4 () in
  check_string "same failing schedule at jobs 1 and 4" s1 s4

let test_race_never_cached () =
  with_cache (fun cache ->
      let cold = race_name ~cache () in
      (* the DPOR walk may cache its schedule frontier (kind "dpor"),
         but no races verdict is ever stored for a failing check *)
      let race_entries () =
        Sys.readdir (V.Cache.dir cache)
        |> Array.to_list
        |> List.filter (String.starts_with ~prefix:"races")
        |> List.length
      in
      check_int "no verdict stored for the racing check" 0 (race_entries ());
      let warm = race_name ~cache () in
      check_string "cold and warm runs replay the same failure" cold warm)

(* ---- SC/TSO cache-key separation: the memory mode enters every key ---- *)

let test_stack_keys_separate_modes () =
  let sc = V.Stack.edge_fingerprints ~memory:Memory.Sc () in
  let tso = V.Stack.edge_fingerprints ~memory:Memory.Tso () in
  check_int "same edges" (List.length sc) (List.length tso);
  List.iter2
    (fun (name_sc, fp_sc) (name_tso, fp_tso) ->
      check_string "same edge order" name_sc name_tso;
      check_bool (name_sc ^ ": SC and TSO keys differ") false
        (Fingerprint.equal fp_sc fp_tso))
    sc tso

let test_shared_cache_keeps_modes_apart () =
  (* one cache, both modes: the TSO answer for SB must still contain the
     TSO-only outcome even when the SC verdict was stored first *)
  with_cache (fun cache ->
      let sb = Option.get (L.find "SB") in
      let run memory =
        V.Litmus.run_test ~ctx:(V.Ctx.make ~memory ~cache ()) sb
      in
      let sc_cold = run Memory.Sc in
      let tso = run Memory.Tso in
      check_bool "tso not polluted by the cached sc verdict" true
        (V.Litmus.ok tso);
      check_bool "tso reaches the TSO-only outcome" true
        (List.mem [ 0; 0 ] tso.V.Litmus.observed);
      let sc_warm = run Memory.Sc in
      check_bool "sc warm = sc cold" true
        (sc_warm.V.Litmus.observed = sc_cold.V.Litmus.observed))

(* ---- flusher pseudo-threads ---- *)

let test_flusher_tids () =
  check_int "flusher of cpu 1" (-2) (Memory.flusher_tid 1);
  check_bool "is_flusher" true (Memory.is_flusher (Memory.flusher_tid 3));
  check_bool "real tids are not flushers" false (Memory.is_flusher 3);
  check_int "roundtrip" 3 (Memory.cpu_of_flusher (Memory.flusher_tid 3))

let test_flusher_threads_synthesis () =
  let threads = Unfenced.threads Unfenced.Trylock in
  let tso_layer = T.machine_layer Memory.Tso in
  let fl = Game.flusher_threads ~memory:Memory.Tso tso_layer threads in
  check_int "one flusher per thread" (List.length threads) (List.length fl);
  List.iter
    (fun (tid, _) -> check_bool "flusher tid negative" true (tid < 0))
    fl;
  check_int "none under SC" 0
    (List.length
       (Game.flusher_threads ~memory:Memory.Sc tso_layer threads));
  check_int "none for an unbuffered layer" 0
    (List.length
       (Game.flusher_threads ~memory:Memory.Tso
          (T.machine_layer Memory.Sc) threads))

let suite =
  [
    tc "litmus corpus has the x86-TSO shape" test_corpus_shape;
    tc "litmus find/expected" test_corpus_find;
    tc "IRIW pins multi-copy atomicity" test_iriw_table;
  ]
  @ conformance_cases
  @ [
      tc "mfence re-converges SB and R onto SC" test_fenced_reconverges;
      tc "run_both produces the per-mode table" test_run_both_table;
      tc "TSO litmus reports identical at jobs 1 and 4" test_jobs_identity;
      tc "erase_buffering drops buffering, keeps the rest"
        test_erase_drops_buffering;
      tc "erase_buffering places stores at their commit"
        test_erase_positions_store_at_commit;
      tc "erase_buffering is the identity on SC logs"
        test_erase_identity_on_sc_logs;
      tc "erase_buffering_rel agrees with the function"
        test_erase_agrees_with_rel;
      qcheck_drf;
      tc "unfenced variants are race-free under SC"
        test_unfenced_race_free_under_sc;
      tc "unfenced variants race under TSO" test_unfenced_races_under_tso;
      tc "fenced variants are race-free under both modes"
        test_fenced_race_free_both_modes;
      tc "failing schedule is stable across jobs counts"
        test_race_deterministic_across_jobs;
      tc "failures are never cached and replay warm"
        test_race_never_cached;
      tc "stack edge keys separate SC from TSO"
        test_stack_keys_separate_modes;
      tc "a shared cache never crosses memory modes"
        test_shared_cache_keeps_modes_apart;
      tc "flusher tid arithmetic" test_flusher_tids;
      tc "flusher synthesis is gated on mode and layer"
        test_flusher_threads_synthesis;
    ]
