(* The speedup gate for the parallel checking subsystem (S24).

   What "parallel checking wins" means depends on the hardware the gate
   runs on.  OCaml 5's minor collector is a stop-the-world rendezvous
   across every running domain: on a single-core host extra domains can
   only add rendezvous latency, and no amount of engineering makes jobs=4
   beat jobs=1 there (DESIGN.md S24 has the post-mortem).  So the gate is
   hardware-aware:

   - on hosts with >= 4 recommended domains, the headline Llock game must
     show a jobs=4 speedup of at least 2x over the sequential oracle —
     the regression this suite exists to catch;
   - on smaller hosts the speedup assertion is skipped (with a printed
     reason) and the gate pins what those hosts can honestly promise:
     a sequential-throughput floor on the same game, so the
     allocation-free replay path cannot silently regress.

   Verdict bit-identity across the jobs grid is asserted unconditionally:
   parallelism may only ever change wall-clock. *)
open Ccal_core
open Ccal_objects
open Ccal_verify
open Util

let lock_client i =
  Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
      Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))

let gate_game () =
  (* 4 threads at depth 6: 4^6 = 4096 schedules — large enough to
     amortize pool startup and chunk calibration, small enough to keep
     `make check` quick *)
  let threads = List.init 4 (fun k -> k + 1, lock_client (k + 1)) in
  Lock_intf.layer "Llock", threads, List.map fst threads, 6

let check_races ~jobs () =
  let layer, threads, tids, depth = gate_game () in
  let scheds = Explore.exhaustive_scheds ~tids ~depth in
  Races.check_ctx ~ctx:(Ctx.make ~jobs ()) ~max_steps:200_000 ~scheds layer
    threads

(* best-of-N wall clock: the minimum is the least noisy location
   statistic for a deterministic workload *)
let best_ms n f =
  List.fold_left
    (fun acc _ ->
      let _, ms = Verify_clock.timed f in
      Float.min acc ms)
    infinity
    (List.init n Fun.id)

let schedules () =
  let _, _, tids, depth = gate_game () in
  List.length (Explore.exhaustive_scheds ~tids ~depth)

(* Conservative floor: this host clears it by more than an order of
   magnitude (about 120k schedules/sec after the scratch-replay work);
   the floor only exists to catch a collapse of the hot path, not to
   race the hardware. *)
let sequential_floor_scheds_per_sec = 5_000.

let test_sequential_throughput_floor () =
  ignore (check_races ~jobs:1 ()) (* warm-up: code paths and freelist *) ;
  let ms = best_ms 3 (fun () -> ignore (check_races ~jobs:1 ())) in
  let per_sec = float_of_int (schedules ()) /. (ms /. 1000.) in
  Printf.printf "perf-gate: sequential %.0f schedules/sec (floor %.0f)\n%!"
    per_sec sequential_floor_scheds_per_sec;
  check_bool
    (Printf.sprintf "sequential throughput %.0f >= %.0f scheds/sec" per_sec
       sequential_floor_scheds_per_sec)
    true
    (per_sec >= sequential_floor_scheds_per_sec)

let test_parallel_speedup_gate () =
  let cores = Domain.recommended_domain_count () in
  if cores < 4 then
    Printf.printf
      "perf-gate: SKIP speedup assertion — host recommends %d domain(s), \
       need >= 4 for jobs=4 to be able to win (minor GC is a \
       stop-the-world rendezvous across domains)\n%!"
      cores
  else begin
    (* a bigger minor heap spaces out the cross-domain rendezvous; the
       bench applies the same hygiene (see --parallel-only) *)
    let saved = Gc.get () in
    Fun.protect
      ~finally:(fun () -> Gc.set saved)
      (fun () ->
        Gc.set { saved with Gc.minor_heap_size = 1_048_576 };
        ignore (check_races ~jobs:1 ());
        ignore (check_races ~jobs:4 ());
        let seq_ms = best_ms 2 (fun () -> ignore (check_races ~jobs:1 ())) in
        let par_ms = best_ms 2 (fun () -> ignore (check_races ~jobs:4 ())) in
        let speedup = seq_ms /. par_ms in
        Printf.printf
          "perf-gate: jobs=4 speedup %.2fx (seq %.1f ms, par %.1f ms)\n%!"
          speedup seq_ms par_ms;
        check_bool
          (Printf.sprintf "jobs=4 speedup %.2fx >= 2x on a %d-core host"
             speedup cores)
          true (speedup >= 2.0))
  end

let test_verdicts_identical_across_jobs () =
  let oracle = check_races ~jobs:1 () in
  (match oracle with
  | Races.Race_free { runs } -> check_int "oracle covered the suite" 4096 runs
  | _ -> Alcotest.fail "gate game must be race-free");
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "verdict jobs=%d = sequential" jobs)
        true
        (check_races ~jobs () = oracle))
    [ 2; 4; 7 ]

(* ---- recommended_domains is a measurement, not a core count ---- *)

let test_recommend_domains () =
  check_int "empty curve -> 1" 1 (Parallel.recommend_domains []);
  check_int "single point" 2 (Parallel.recommend_domains [ 2, 0.5 ]);
  check_int "argmax wins" 4
    (Parallel.recommend_domains [ 1, 1.0; 2, 1.7; 4, 3.1; 7, 2.9 ]);
  check_int "ties break toward fewer domains" 2
    (Parallel.recommend_domains [ 1, 1.0; 2, 2.5; 4, 2.5; 7, 2.5 ]);
  check_int "sequential collapse recommends 1" 1
    (Parallel.recommend_domains [ 1, 1.0; 2, 0.78; 4, 0.28; 7, 0.2 ]);
  check_int "order-independent" 4
    (Parallel.recommend_domains [ 7, 2.9; 4, 3.1; 1, 1.0; 2, 1.7 ])

let suite =
  [
    tc "sequential throughput floor" test_sequential_throughput_floor;
    tc "jobs=4 speedup gate (hardware-aware)" test_parallel_speedup_gate;
    tc "verdicts identical across jobs grid"
      test_verdicts_identical_across_jobs;
    tc "recommend_domains derives from the measured curve"
      test_recommend_domains;
  ]
