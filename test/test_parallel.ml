(* Tests for the multicore checking subsystem (S24): the domain-pool
   executor itself, and — the property the whole design hangs on — that
   every checker verdict is structurally identical for every jobs count,
   including failing verdicts on seeded buggy layers.  The jobs grid
   {1, 2, 4, 7} deliberately oversubscribes small hosts: determinism must
   not depend on the core count. *)
open Ccal_core
open Ccal_objects
open Ccal_verify
open Util
module C = Ccal_clight.Csyntax

let jobs_grid = [ 1; 2; 4; 7 ]

(* Structural equality across the grid: [run jobs] must return the same
   value for every entry as for the sequential oracle [run 1]. *)
let check_jobs_invariant name run =
  let oracle = run 1 in
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "%s: jobs=%d = sequential" name jobs) true
        (run jobs = oracle))
    jobs_grid

(* ---- the executor ---- *)

let prop_map_is_list_map =
  qtc "Parallel.map = List.map (any jobs)"
    QCheck.(pair (oneofl [ 1; 2; 4; 7 ]) (small_list small_int))
    (fun (jobs, xs) ->
      Parallel.map ~jobs (fun x -> (x * 2) + 1) xs
      = List.map (fun x -> (x * 2) + 1) xs)

let seq_scan ~cut f xs =
  let rec go = function
    | [] -> []
    | x :: r ->
      let y = f x in
      if cut y then [ y ] else y :: go r
  in
  go xs

let prop_scan_is_sequential_scan =
  qtc "Parallel.scan = sequential early-exit scan"
    QCheck.(pair (oneofl [ 1; 2; 4; 7 ]) (small_list small_int))
    (fun (jobs, xs) ->
      let cut y = y mod 5 = 0 in
      let f x = x * 3 in
      Parallel.scan ~jobs ~cut f xs = seq_scan ~cut f xs)

exception Boom of int

let test_exception_lowest_index () =
  (* several jobs raise; whatever domain finishes first, the exception
     surfaced must be the lowest-indexed one, as List.map's would be *)
  let xs = List.init 40 Fun.id in
  let f x = if x mod 7 = 3 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f xs with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        check_int (Printf.sprintf "jobs=%d raises at 3" jobs) 3 i)
    jobs_grid

let test_oversubscribed_pool () =
  (* more domains than jobs, and more jobs than domains, both fine *)
  check_bool "jobs > length" true
    (Parallel.map ~jobs:16 succ [ 1; 2; 3 ] = [ 2; 3; 4 ]);
  let xs = List.init 500 Fun.id in
  check_bool "length >> jobs" true (Parallel.map ~jobs:2 succ xs = List.map succ xs)

let test_stats_monotone () =
  let before = (Parallel.stats ()).Parallel.jobs_run in
  ignore (Parallel.map ~jobs:2 succ (List.init 64 Fun.id));
  let after = (Parallel.stats ()).Parallel.jobs_run in
  check_bool "jobs_run grew" true (after >= before + 64)

(* ---- races: collection semantics and cross-jobs determinism ---- *)

(* A layer where thread 1 fails for an ordinary (non-race) reason and
   threads 2/3 race through push/pull: the checker must keep scanning past
   the non-race failure and report the race. *)
let mixed_layer () =
  Layer.make "Lmixed"
    (Ccal_machine.Pushpull.prims
    @ [
        Layer.shared_prim "trap" (fun _ _ _ ->
            Layer.Stuck "ordinary failure, not a race");
      ])

let mixed_threads () =
  let grab i = Prog.seq (Prog.call "pull" [ vi 7 ]) (Prog.ret (vi i)) in
  [ 1, Prog.call "trap" []; 2, grab 2; 3, grab 3 ]

let mixed_scheds () =
  [ Sched.of_trace ~name:"other-first" [ 1 ]; Sched.of_trace ~name:"racy" [ 2; 3 ] ]

let test_race_found_after_other_failure () =
  match
    Races.check_ctx ~ctx:Ctx.default ~scheds:(mixed_scheds ()) (mixed_layer ())
      (mixed_threads ())
  with
  | Races.Race { sched_name; _ } -> check_string "the later schedule" "racy" sched_name
  | Races.Other_failure msg ->
    Alcotest.failf "non-race failure aborted the scan: %s" msg
  | Races.Race_free _ -> Alcotest.fail "race missed"
  | Races.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"

let test_other_failures_collected () =
  (* no race anywhere: the first failure is reported, annotated with the
     rest of the evidence *)
  let scheds =
    [ Sched.of_trace ~name:"trap-a" [ 1 ]; Sched.of_trace ~name:"trap-b" [ 1 ] ]
  in
  let layer = mixed_layer () in
  match
    Races.check_ctx ~ctx:Ctx.default ~scheds layer [ 1, Prog.call "trap" [] ]
  with
  | Races.Other_failure msg ->
    check_bool "mentions the further failure" true
      (String.length msg > 0
      && String.length msg > String.length "ordinary failure")
  | Races.Race _ -> Alcotest.fail "misclassified as race"
  | Races.Race_free _ -> Alcotest.fail "failures dropped"
  | Races.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"

let test_races_verdict_jobs_invariant () =
  check_jobs_invariant "races mixed" (fun jobs ->
      Races.check_ctx ~ctx:(Ctx.make ~jobs ()) ~scheds:(mixed_scheds ())
        (mixed_layer ()) (mixed_threads ()))

let test_races_clean_jobs_invariant () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ -> Prog.call "rel" [ vi 0; vi i ])
  in
  let threads = List.map (fun i -> i, Prog.Module.link m (client i)) [ 1; 2 ] in
  check_jobs_invariant "races clean ticket" (fun jobs ->
      (* trace/random schedulers are single-use: regenerate per run *)
      Races.check_ctx ~ctx:(Ctx.make ~jobs ())
        ~scheds:(Sched.default_suite ~seeds:6) layer threads)

(* ---- progress ---- *)

let test_progress_jobs_invariant_ok () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ -> Prog.call "rel" [ vi 0; vi i ])
  in
  let threads = List.map (fun i -> i, Prog.Module.link m (client i)) [ 1; 2; 3 ] in
  check_jobs_invariant "progress ok" (fun jobs ->
      Budget.value
        (Progress.completes_within_ctx ~ctx:(Ctx.make ~jobs ())
           ~scheds:(Sched.default_suite ~seeds:8) ~bound:2_000 layer threads))

let test_progress_jobs_invariant_failing () =
  (* every schedule starves the spinner; the reported failure must name
     the lowest-indexed schedule for every jobs count *)
  let layer = Ccal_machine.Mx86.layer () in
  let rec spin () =
    Prog.bind (Prog.call "aload" [ vi 0 ]) (fun v ->
        if Value.to_int v = 1 then Prog.ret_unit else spin ())
  in
  let result =
    check_jobs_invariant "progress starvation" (fun jobs ->
        Budget.value
          (Progress.completes_within_ctx ~ctx:(Ctx.make ~jobs ())
             ~scheds:(Sched.default_suite ~seeds:5) ~bound:200 layer
             [ 1, spin () ]))
  in
  (match
     Budget.value
       (Progress.completes_within_ctx ~ctx:(Ctx.make ~jobs:4 ())
          ~scheds:(Sched.default_suite ~seeds:5) ~bound:200 layer
          [ 1, spin () ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "starvation not detected");
  result

(* ---- linearizability / refinement ---- *)

let lock_client i =
  Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
      Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))

let test_linearizability_jobs_invariant_ok () =
  match Ticket_lock.certify ~focus:[ 1; 2 ] () with
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e
  | Ok cert ->
    check_jobs_invariant "linearizability ok" (fun jobs ->
        Budget.value
          (Linearizability.check_cert_ctx ~ctx:(Ctx.make ~jobs ())
             ~scheds:(Explore.full_suite ~tids:[ 1; 2 ] ~depth:3 ~random:4 ())
             cert ~client:lock_client))

(* The seeded bug of test_verify_injection: rel forgets inc_n, so a second
   acquire starves.  The refinement failure must be identical (same
   schedule, same reason, same logs) for every jobs count. *)
let broken_rel_no_inc =
  {
    C.name = "rel";
    params = [ "b"; "v" ];
    locals = [];
    body = C.seq [ C.call_ "push" [ C.v "b"; C.v "v" ]; C.return_unit ];
  }

let test_refinement_failure_jobs_invariant () =
  let impl =
    Ccal_clight.Csem.module_of_fns [ Ticket_lock.acq_fn; broken_rel_no_inc ]
  in
  let r =
    Calculus.fun_rule ~underlay:(Ticket_lock.l0 ())
      ~overlay:(Ticket_lock.overlay ()) ~impl ~rel:Ticket_lock.r_ticket
      ~focus:[ 1 ] ~prim_tests:(Ticket_lock.prim_tests ())
      ~envs:(Ticket_lock.env_suite ()) ()
  in
  match r with
  | Error _ -> () (* caught even earlier; nothing to parallelise *)
  | Ok cert ->
    let client i =
      Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
          Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.call "acq" [ vi 0 ]))
    in
    let run jobs =
      Budget.value
        (Linearizability.refine_cert_ctx ~ctx:(Ctx.make ~jobs ())
           ~max_steps:5_000 cert ~client
           ~scheds:(Sched.default_suite ~seeds:3))
    in
    check_jobs_invariant "broken-lock refinement failure" run;
    (match run 4 with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "missing inc_n not caught in parallel")

(* ---- dpor / explore ---- *)

let ticket_game () =
  let m = Ticket_lock.c_module () in
  Ticket_lock.l0 (),
  List.map (fun i -> i, Prog.Module.link m (lock_client i)) [ 1; 2 ]

let test_dpor_prefixes_jobs_invariant () =
  let layer, threads = ticket_game () in
  check_jobs_invariant "dpor prefixes" (fun jobs ->
      Dpor.prefixes_ctx ~ctx:(Ctx.make ~jobs ()) ~depth:4 layer threads)

let test_dpor_explore_jobs_invariant () =
  let layer, threads = ticket_game () in
  check_jobs_invariant "dpor explore (outcomes and stats)" (fun jobs ->
      let r =
        Budget.value
          (Dpor.explore_ctx ~ctx:(Ctx.make ~jobs ()) ~depth:4 layer threads)
      in
      r.Dpor.prefixes, List.map (fun o -> o.Game.log) r.Dpor.outcomes, r.Dpor.stats)

let test_explore_run_all_jobs_invariant () =
  let layer, threads = ticket_game () in
  check_jobs_invariant "run_all logs" (fun jobs ->
      List.map
        (fun o -> o.Game.status, o.Game.log, o.Game.results)
        (Budget.value
           (Explore.run_all_ctx ~ctx:(Ctx.make ~jobs ()) layer threads
              (Explore.exhaustive_scheds ~tids:[ 1; 2 ] ~depth:4))))

(* ---- the whole stack ---- *)

let test_stack_report_jobs_invariant () =
  (* timing fields differ by construction; everything else must not *)
  let strip (r : Stack.report) =
    List.map (fun (e : Stack.edge) -> e.Stack.edge_name, e.Stack.kind, e.Stack.checks)
      r.Stack.edges,
    r.Stack.total_checks
  in
  check_jobs_invariant "stack verify_all" (fun jobs ->
      match
        Result.map
          (fun (p : Stack.progress) -> p.Stack.completed)
          (Budget.value
             (Stack.verify_all_ctx ~ctx:(Ctx.make ~jobs ()) ~seeds:2 ()))
      with
      | Ok r -> Ok (strip r)
      | Error _ as e -> e)

(* ---- Game.replay_into: the allocation-free replay hot path (S24) ----

   The scratch-reusing replay is the engine under every parallel checker;
   these properties pin it bit-identical to [Game.run] over random games,
   schedules, fuel bounds and stop-closure truncation points.  One scratch
   is shared across every property iteration on purpose: staleness from a
   previous game (different thread count included — the resize path) must
   never leak into the next outcome. *)

let shared_scratch = Game.make_scratch ()

let replay_game kind n =
  match kind with
  | 0 ->
    (* event-emitting counters: every move appends to the log *)
    let tick i =
      Prog.seq
        (Prog.call "tick" [ vi 1 ])
        (Prog.bind (Prog.call "read" [ vi 1 ]) (fun _ -> Prog.ret (vi i)))
    in
    counter_layer (), List.init n (fun k -> k + 1, tick (k + 1))
  | 1 ->
    (* blocking: contending threads hit [Layer.Block], deadlock possible *)
    Lock_intf.layer "Llock", List.init n (fun k -> k + 1, lock_client (k + 1))
  | _ ->
    (* racing: concurrent pulls of one location get structurally stuck *)
    let grab i = Prog.seq (Prog.call "pull" [ vi 7 ]) (Prog.ret (vi i)) in
    ( Layer.make "Lpp" Ccal_machine.Pushpull.prims,
      List.init n (fun k -> k + 1, grab (k + 1)) )

(* Build a fresh config per run: trace schedulers and stop closures are
   single-use state. *)
let replay_config ?stop_after ~max_steps ~check_guar kind n trace =
  let layer, threads = replay_game kind n in
  let stop =
    Option.map
      (fun k ->
        let polls = ref 0 in
        fun () ->
          incr polls;
          !polls > k)
      stop_after
  in
  Game.config ~max_steps ~check_guar ?stop layer threads (Sched.of_trace trace)

let gen_replay_case =
  QCheck.(
    quad (int_range 0 2) (int_range 1 4)
      (list_of_size Gen.(0 -- 12) (int_range 0 5))
      (int_range 1 40))

let prop_replay_into_equals_run =
  qtc "Game.replay_into (reused scratch) = Game.run" gen_replay_case
    (fun (kind, n, trace, max_steps) ->
      let mk () = replay_config ~max_steps ~check_guar:true kind n trace in
      Game.run (mk ()) = Game.replay_into shared_scratch (mk ()))

let prop_replay_into_truncation_equals_run =
  (* the stop closure trips after a random number of polls: Cancelled
     prefixes — the budgeted scan's per-schedule truncation — must be
     identical too, at every truncation point *)
  qtc "Game.replay_into = Game.run at every stop-closure truncation"
    QCheck.(pair gen_replay_case (int_range 0 20))
    (fun ((kind, n, trace, max_steps), stop_after) ->
      let mk () =
        replay_config ~stop_after ~max_steps ~check_guar:false kind n trace
      in
      Game.run (mk ()) = Game.replay_into shared_scratch (mk ()))

let prop_replay_freelist_equals_run =
  (* the checkers' entry point: a scratch borrowed from the freelist *)
  qtc "Game.replay (freelist) = Game.run" gen_replay_case
    (fun (kind, n, trace, max_steps) ->
      let mk () = replay_config ~max_steps ~check_guar:true kind n trace in
      Game.run (mk ()) = Game.replay (mk ()))

let test_replay_into_scratch_resize () =
  (* deterministic staleness probe: grow, shrink, regrow the thread table
     through one scratch, interleaving game families *)
  List.iter
    (fun (kind, n) ->
      let trace = List.init 10 (fun s -> (s mod n) + 1) in
      let mk () = replay_config ~max_steps:60 ~check_guar:true kind n trace in
      check_bool
        (Printf.sprintf "kind=%d n=%d after resize" kind n)
        true
        (Game.run (mk ()) = Game.replay_into shared_scratch (mk ())))
    [ 1, 4; 0, 1; 2, 3; 1, 1; 0, 4; 2, 1; 1, 3 ]

let test_budgeted_races_exhausted_jobs_invariant () =
  (* a step budget that trips mid-scan: the Exhausted partial (resume
     point, clean count, failure list) and the deterministic spent fields
     must be identical for every jobs count; elapsed_ms is wall-clock and
     excluded by construction *)
  let layer = Lock_intf.layer "Llock" in
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  check_jobs_invariant "races Exhausted partial" (fun jobs ->
      let ctx = Ctx.make ~jobs ~budget:(Budget.make ~steps:400 ()) () in
      match
        Races.check_ctx ~ctx
          ~scheds:(Explore.exhaustive_scheds ~tids:[ 1; 2; 3 ] ~depth:4)
          layer threads
      with
      | Races.Exhausted { spent; partial } ->
        `Exhausted (spent.Budget.reason, spent.Budget.steps_used, partial)
      | v -> `Verdict v)

let suite =
  [
    prop_map_is_list_map;
    prop_scan_is_sequential_scan;
    tc "exceptions surface at the lowest index" test_exception_lowest_index;
    tc "oversubscribed pools" test_oversubscribed_pool;
    tc "stats are monotone" test_stats_monotone;
    tc "races: race found past a non-race failure" test_race_found_after_other_failure;
    tc "races: non-race failures collected" test_other_failures_collected;
    tc "races: mixed verdict jobs-invariant" test_races_verdict_jobs_invariant;
    tc "races: clean verdict jobs-invariant" test_races_clean_jobs_invariant;
    tc "progress: report jobs-invariant" test_progress_jobs_invariant_ok;
    tc "progress: starvation jobs-invariant" test_progress_jobs_invariant_failing;
    tc "linearizability: report jobs-invariant" test_linearizability_jobs_invariant_ok;
    tc "refinement: failure jobs-invariant" test_refinement_failure_jobs_invariant;
    tc "dpor: prefixes jobs-invariant" test_dpor_prefixes_jobs_invariant;
    tc "dpor: explore jobs-invariant" test_dpor_explore_jobs_invariant;
    tc "explore: run_all jobs-invariant" test_explore_run_all_jobs_invariant;
    tc "stack: report jobs-invariant" test_stack_report_jobs_invariant;
    prop_replay_into_equals_run;
    prop_replay_into_truncation_equals_run;
    prop_replay_freelist_equals_run;
    tc "replay_into: scratch resize never leaks state"
      test_replay_into_scratch_resize;
    tc "races: Exhausted partial jobs-invariant"
      test_budgeted_races_exhausted_jobs_invariant;
  ]
