(* The kv serving stack (DESIGN.md S28): the functional map spec, the
   sharded hash table, the block cache, and the composed service —
   certified through [Kv_stack.verify_ctx] and probed directly. *)

open Ccal_core
open Ccal_verify
open Ccal_kv
open Util

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)
(* ------------------------------------------------------------------ *)

let map_layer ?shards () = Map_spec.layer ?shards ()

let get k = Prog.call Map_spec.get_tag [ vi k ]
let put k v = Prog.call Map_spec.put_tag [ vi k; vi v ]
let del k = Prog.call Map_spec.del_tag [ vi k ]
let resize n = Prog.call Map_spec.resize_tag [ vi n ]

let ht_solo ?(shards = 2) prog =
  expect_done (Hashtable.underlay ())
    (Prog.Module.link (Hashtable.module_ ~shards ()) prog)

let cache_solo ?(entries = 2) prog =
  expect_done (Block_cache.underlay ())
    (Prog.Module.link (Block_cache.module_ ~entries ()) prog)

(* A random single-op generator over a small key/value space; [ops_gen]
   makes a short sequence of them. *)
type op = Get of int | Put of int * int | Del of int | Resize of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        3, map (fun k -> Get k) (int_bound 3);
        4, map2 (fun k v -> Put (k, v)) (int_bound 3) (int_bound 9);
        2, map (fun k -> Del k) (int_bound 3);
        1, map (fun n -> Resize (n + 1)) (int_bound 2);
      ])

let ops_gen n = QCheck.Gen.(list_size (int_bound n) op_gen)

let pp_op = function
  | Get k -> Printf.sprintf "get %d" k
  | Put (k, v) -> Printf.sprintf "put %d %d" k v
  | Del k -> Printf.sprintf "del %d" k
  | Resize n -> Printf.sprintf "resize %d" n

let ops_arb n =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    (ops_gen n)

let prog_of_ops ops =
  Prog.seq_all
    (List.map
       (function
         | Get k -> get k
         | Put (k, v) -> put k v
         | Del k -> del k
         | Resize n -> resize n)
       ops)

(* The pure model: fold the ops over an association list, collecting each
   op's expected return value. *)
let model_rets ~shards ops =
  let rec go m sh acc = function
    | [] -> List.rev acc
    | Get k :: rest ->
      let v = Option.value (List.assoc_opt k m) ~default:Map_spec.absent in
      go m sh (v :: acc) rest
    | Put (k, v) :: rest ->
      let old = Option.value (List.assoc_opt k m) ~default:Map_spec.absent in
      go ((k, v) :: List.remove_assoc k m) sh (old :: acc) rest
    | Del k :: rest ->
      let old = Option.value (List.assoc_opt k m) ~default:Map_spec.absent in
      go (List.remove_assoc k m) sh (old :: acc) rest
    | Resize n :: rest -> go m n (sh :: acc) rest
  in
  go [] shards [] ops

(* Collect every op's return by binding each call into a list. *)
let rets_prog ops =
  let rec go acc = function
    | [] -> Prog.ret (Value.Vlist (List.rev acc))
    | op :: rest ->
      Prog.bind
        (match op with
        | Get k -> get k
        | Put (k, v) -> put k v
        | Del k -> del k
        | Resize n -> resize n)
        (fun r -> go (r :: acc) rest)
  in
  go [] ops

(* ------------------------------------------------------------------ *)
(* map spec                                                            *)
(* ------------------------------------------------------------------ *)

let test_map_spec_solo () =
  let v =
    expect_done (map_layer ())
      (rets_prog [ Put (1, 10); Get 1; Del 1; Get 1; Put (1, 11); Put (1, 12) ])
  in
  Alcotest.check value_testable "spec returns"
    (Value.Vlist [ vi Map_spec.absent; vi 10; vi 10; vi Map_spec.absent;
                   vi Map_spec.absent; vi 11 ])
    v

let test_map_spec_resize () =
  let v = expect_done (map_layer ~shards:3 ()) (rets_prog [ Resize 5; Resize 2 ]) in
  Alcotest.check value_testable "resize returns old count"
    (Value.Vlist [ vi 3; vi 5 ]) v

let prop_lookup_matches_replay =
  qtc "lookup agrees with the whole-map replay oracle" (ops_arb 12) (fun ops ->
      let _ = expect_done (map_layer ()) (prog_of_ops ops) in
      (* rebuild the log by running the game solo and replaying *)
      let layer = map_layer () in
      let o =
        Game.run
          (Game.config ~max_steps:10_000 layer [ 1, prog_of_ops ops ]
             Sched.round_robin)
      in
      let m = Replay.run_exn Map_spec.replay_map o.Game.log in
      List.for_all
        (fun k ->
          Map_spec.lookup k o.Game.log
          = Option.value (Map_spec.Imap.find_opt k m) ~default:Map_spec.absent)
        [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* hash table                                                          *)
(* ------------------------------------------------------------------ *)

let prop_ht_solo_matches_model =
  qtc "hash table matches the pure model on random op sequences"
    (ops_arb 10) (fun ops ->
      let v = ht_solo (rets_prog ops) in
      v = Value.Vlist (List.map vi (model_rets ~shards:2 ops)))

let test_ht_delete_missing () =
  let v = ht_solo (rets_prog [ Del 7; Put (7, 1); Del 7; Del 7 ]) in
  Alcotest.check value_testable "delete of a missing key returns absent"
    (Value.Vlist [ vi Map_spec.absent; vi Map_spec.absent; vi 1;
                   vi Map_spec.absent ])
    v

let test_ht_bucket_contents () =
  let layer = Hashtable.underlay () in
  let m = Hashtable.module_ ~shards:2 () in
  let prog = Prog.Module.link m (prog_of_ops [ Put (0, 5); Put (2, 6); Put (1, 7) ]) in
  let o = Game.run (Game.config ~max_steps:10_000 layer [ 1, prog ] Sched.round_robin) in
  (* keys 0 and 2 share bucket 1 (k mod 2 = 0); key 1 lives in bucket 2 *)
  let b1 = List.sort compare (Hashtable.bucket_contents 1 o.Game.log) in
  let b2 = List.sort compare (Hashtable.bucket_contents 2 o.Game.log) in
  Alcotest.(check (list (pair int int))) "bucket 1" [ 0, 5; 2, 6 ] b1;
  Alcotest.(check (list (pair int int))) "bucket 2" [ 1, 7 ] b2

let test_ht_resize_redistributes () =
  (* after resize 3, key 2 moves from bucket 1 (2 mod 2) to bucket 3 (2 mod 3) *)
  let layer = Hashtable.underlay () in
  let m = Hashtable.module_ ~shards:2 () in
  let prog =
    Prog.Module.link m (prog_of_ops [ Put (0, 5); Put (2, 6); Resize 3 ])
  in
  let o = Game.run (Game.config ~max_steps:10_000 layer [ 1, prog ] Sched.round_robin) in
  let b1 = List.sort compare (Hashtable.bucket_contents 1 o.Game.log) in
  let b3 = List.sort compare (Hashtable.bucket_contents 3 o.Game.log) in
  Alcotest.(check (list (pair int int))) "bucket 1 after resize" [ 0, 5 ] b1;
  Alcotest.(check (list (pair int int))) "bucket 3 after resize" [ 2, 6 ] b3

let test_ht_resize_under_contention () =
  (* one thread resizes mid-workload while two others hammer both buckets;
     every DPOR schedule must refine the atomic map *)
  let client i =
    if i = 3 then prog_of_ops [ Put (2, 30); Resize 3; Get 2 ]
    else prog_of_ops [ Put (i, 10 + i); Get i ]
  in
  match
    Linearizability.check_ctx ~ctx:Ctx.default
      ~underlay:(Hashtable.underlay ())
      ~impl:(Hashtable.module_ ~shards:2 ())
      ~overlay:(map_layer ~shards:2 ()) ~rel:Hashtable.r_kv ~client
      ~tids:[ 1; 2; 3 ] ()
  with
  | Budget.Complete (Ok r) ->
    check_bool "ran schedules" true (r.Linearizability.runs > 0)
  | Budget.Complete (Error f) ->
    Alcotest.failf "resize under contention: %a" Refinement.pp_failure f
  | Budget.Exhausted _ -> Alcotest.fail "unexpected budget exhaustion"

let prop_ht_refines_spec_jobs14 =
  (* the tentpole property: random two-thread workloads refine the map
     spec, with bit-identical reports at jobs 1 and jobs 4 *)
  qtc ~count:12 "random workloads refine Lmap identically at jobs {1,4}"
    (QCheck.pair (ops_arb 4) (ops_arb 4)) (fun (ops1, ops2) ->
      let client i = prog_of_ops (if i = 1 then ops1 else ops2) in
      let check jobs =
        Linearizability.check_ctx ~ctx:(Ctx.make ~jobs ())
          ~underlay:(Hashtable.underlay ())
          ~impl:(Hashtable.module_ ~shards:2 ())
          ~overlay:(map_layer ~shards:2 ()) ~rel:Hashtable.r_kv ~client
          ~tids:[ 1; 2 ] ()
      in
      match check 1, check 4 with
      | Budget.Complete (Ok a), Budget.Complete (Ok b) -> a = b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* block cache                                                         *)
(* ------------------------------------------------------------------ *)

let cache_game_log prog =
  let layer = Block_cache.underlay () in
  let m = Block_cache.module_ ~entries:2 () in
  let o =
    Game.run
      (Game.config ~max_steps:10_000 layer
         [ 1, Prog.Module.link m prog ]
         Sched.round_robin)
  in
  o.Game.log

let test_cache_miss_then_hit () =
  let v = cache_solo (rets_prog [ Put (1, 10); Get 1; Get 1 ]) in
  Alcotest.check value_testable "miss, fill, then hits"
    (Value.Vlist [ vi Map_spec.absent; vi 10; vi 10 ]) v

let test_cache_entry_replay_available () =
  let log = cache_game_log (rets_prog [ Put (1, 10); Get 1 ]) in
  match Block_cache.replay_entry 1 log with
  | Ok e ->
    check_bool "entry mapped and dirty" true
      (e.Block_cache.flag = Block_cache.Available
      && e.Block_cache.page = 1 && e.Block_cache.value = 10
      && e.Block_cache.dirty)
  | Error msg -> Alcotest.failf "replay_entry: %s" msg

let test_cache_eviction_writeback () =
  (* keys 0 and 2 collide on entry 0 (k mod 2): putting 0 then reading 2
     must write 0 back to the backing store before remapping the entry *)
  let log = cache_game_log (rets_prog [ Put (0, 5); Get 2; Get 0 ]) in
  check_int "write-back persisted key 0" 5 (Block_cache.disk_lookup 0 log);
  let v = cache_solo (rets_prog [ Put (0, 5); Get 2; Get 0 ]) in
  Alcotest.check value_testable "value survives eviction"
    (Value.Vlist [ vi Map_spec.absent; vi Map_spec.absent; vi 5 ])
    v

let test_cache_replay_rejects_garbage () =
  (* an end-read with no preceding open is a protocol violation the
     replay must flag, not absorb *)
  let bad =
    log_of [ ev ~args:[ vi 0; vi 0 ] ~ret:(vi 1) 1 "c_end_read" ]
  in
  match Block_cache.replay_entry 0 bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a protocol violation"

let test_cache_pending_writer_priority () =
  (* two threads on the same entry: a reader and a writer; every DPOR
     schedule (including the ones where the writer waits via the pending
     mark) must still refine the atomic map *)
  let client i =
    if i = 1 then prog_of_ops [ Put (0, 7); Get 0 ]
    else prog_of_ops [ Get 0; Put (0, 9) ]
  in
  match
    Linearizability.check_ctx ~ctx:Ctx.default
      ~underlay:(Block_cache.underlay ())
      ~impl:(Block_cache.module_ ~entries:1 ())
      ~overlay:(Map_spec.cache_overlay ()) ~rel:Block_cache.r_cache ~client
      ~tids:[ 1; 2 ] ()
  with
  | Budget.Complete (Ok r) ->
    check_bool "ran schedules" true (r.Linearizability.runs > 0)
  | Budget.Complete (Error f) ->
    Alcotest.failf "pending-writer game: %a" Refinement.pp_failure f
  | Budget.Exhausted _ -> Alcotest.fail "unexpected budget exhaustion"

let prop_cache_solo_matches_model =
  (* the cache only serves get/put; filter the generator accordingly *)
  let gp_gen =
    QCheck.Gen.(
      list_size (int_bound 8)
        (frequency
           [
             1, map (fun k -> Get k) (int_bound 3);
             2, map2 (fun k v -> Put (k, v)) (int_bound 3) (int_bound 9);
           ]))
  in
  let arb =
    QCheck.make
      ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
      gp_gen
  in
  qtc "block cache matches the pure model on random get/put sequences" arb
    (fun ops ->
      let v = cache_solo (rets_prog ops) in
      v = Value.Vlist (List.map vi (model_rets ~shards:2 ops)))

(* ------------------------------------------------------------------ *)
(* the composed stack                                                  *)
(* ------------------------------------------------------------------ *)

let canonical_report = function
  | Budget.Complete (Ok r) -> Format.asprintf "%a" Kv_stack.pp_report_canonical r
  | Budget.Complete (Error msg) -> "ERROR: " ^ msg
  | Budget.Exhausted _ -> "EXHAUSTED"

let test_verify_all_edges () =
  match Kv_stack.verify_ctx ~ctx:Ctx.default ~threads:2 () with
  | Budget.Complete (Ok r) ->
    check_int "three edges" 3 (List.length r.Kv_stack.edges);
    check_bool "every edge ran schedules" true
      (List.for_all (fun e -> e.Kv_stack.checks > 0) r.Kv_stack.edges)
  | Budget.Complete (Error msg) -> Alcotest.failf "kv stack failed: %s" msg
  | Budget.Exhausted _ -> Alcotest.fail "unexpected budget exhaustion"

let test_verify_jobs_identical () =
  let reports =
    List.map
      (fun jobs ->
        canonical_report
          (Kv_stack.verify_ctx ~ctx:(Ctx.make ~jobs ()) ~threads:2 ()))
      [ 1; 2; 4; 7 ]
  in
  match reports with
  | r1 :: rest ->
    check_bool "no failure" false (String.length r1 = 0);
    List.iteri
      (fun i r -> check_string (Printf.sprintf "jobs grid entry %d" i) r1 r)
      rest
  | [] -> assert false

let test_verify_budget_exhaustion () =
  (* a 1-step budget trips before the first edge completes; the partial
     report must still be well-formed *)
  let ctx = Ctx.make ~budget:(Budget.make ~steps:1 ()) () in
  match Kv_stack.verify_ctx ~ctx ~threads:2 () with
  | Budget.Exhausted { partial = Ok r; _ } ->
    check_bool "partial has at most 2 edges" true
      (List.length r.Kv_stack.edges < 3)
  | Budget.Exhausted { partial = Error msg; _ } ->
    Alcotest.failf "partial failed: %s" msg
  | Budget.Complete _ -> Alcotest.fail "expected exhaustion"

let test_verify_cache_round_trip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccal-test-kv-cache-%d" (Unix.getpid ()))
  in
  let c1 = Cache.create ~dir () in
  let cold =
    canonical_report
      (Kv_stack.verify_ctx ~ctx:(Ctx.make ~cache:c1 ()) ~threads:2 ())
  in
  let s1 = Cache.session_stats c1 in
  let c2 = Cache.create ~dir () in
  let warm =
    canonical_report
      (Kv_stack.verify_ctx ~ctx:(Ctx.make ~cache:c2 ()) ~threads:2 ())
  in
  let s2 = Cache.session_stats c2 in
  ignore (Cache.clear c2);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  check_string "cold and warm reports identical" cold warm;
  check_int "warm run hits every edge" 3 s2.Cache.hits;
  check_int "warm run misses nothing" 0 s2.Cache.misses;
  check_bool "cold run stored the edges" true (s1.Cache.stores >= 3)

let test_fingerprints_stable_and_sensitive () =
  let base () = Kv_stack.fingerprints ~threads:2 ~shards:2 ~entries:2 () in
  let fps = base () in
  check_int "three edge keys" 3 (List.length fps);
  (* stable: recomputing gives the same keys *)
  List.iter2
    (fun (n1, f1) (n2, f2) ->
      check_string "edge name stable" n1 n2;
      check_bool "fingerprint stable" true (Fingerprint.equal f1 f2))
    fps (base ());
  let distinct a b =
    List.for_all2 (fun (_, f1) (_, f2) -> not (Fingerprint.equal f1 f2)) a b
  in
  (* shards parameterizes the hash-table and composed edges; the
     standalone cache edge (over the flat disk) takes no part *)
  (match fps, Kv_stack.fingerprints ~threads:2 ~shards:3 ~entries:2 () with
  | [ (_, ht); (_, ca); (_, co) ], [ (_, ht'); (_, ca'); (_, co') ] ->
    check_bool "shards changes the hash-table key" false (Fingerprint.equal ht ht');
    check_bool "shards changes the composed key" false (Fingerprint.equal co co');
    check_bool "shards leaves the standalone cache key" true
      (Fingerprint.equal ca ca')
  | _ -> assert false);
  check_bool "threads changes every key" true
    (distinct fps (Kv_stack.fingerprints ~threads:3 ~shards:2 ~entries:2 ()));
  check_bool "strategy changes every key" true
    (distinct fps
       (Kv_stack.fingerprints ~threads:2 ~shards:2 ~entries:2
          ~strategy:(Ctx.Engine.exhaustive ~depth:3) ()));
  (* entries only parameterizes the cache edges; the hash-table edge key
     must NOT move *)
  let fps' = Kv_stack.fingerprints ~threads:2 ~shards:2 ~entries:3 () in
  (match fps, fps' with
  | (_, ht) :: _, (_, ht') :: _ ->
    check_bool "hash-table key survives an entries change" true
      (Fingerprint.equal ht ht')
  | _ -> assert false);
  match List.tl fps, List.tl fps' with
  | cache_edges, cache_edges' ->
    check_bool "cache keys move with entries" true
      (distinct cache_edges cache_edges')

(* ------------------------------------------------------------------ *)
(* games and the YCSB workload                                         *)
(* ------------------------------------------------------------------ *)

let run_game (layer, threads) =
  Game.run (Game.config ~max_steps:200_000 layer threads Sched.round_robin)

let test_games_complete () =
  List.iter
    (fun (name, g) ->
      let o = run_game g in
      match o.Game.status with
      | Game.All_done -> ()
      | s -> Alcotest.failf "%s: %a" name Game.pp_status s)
    [
      "ht_game", Kv_stack.ht_game ~shards:2 ~threads:3 ();
      "cache_game", Kv_stack.cache_game ~entries:2 ~threads:3 ();
      "composed_game", Kv_stack.composed_game ~shards:2 ~entries:2 ~threads:3 ();
      "ycsb 95/5",
      Kv_stack.ycsb_game ~shards:4 ~threads:2 ~read_pct:95 ~ops:10 ~keyspace:8 ();
      "ycsb 50/50",
      Kv_stack.ycsb_game ~shards:4 ~threads:2 ~read_pct:50 ~ops:10 ~keyspace:8 ();
    ]

let test_ycsb_deterministic () =
  let play seed =
    let o =
      run_game
        (Kv_stack.ycsb_game ~seed ~shards:4 ~threads:2 ~read_pct:50 ~ops:10
           ~keyspace:8 ())
    in
    o.Game.log
  in
  Alcotest.check log_testable "same seed, same log" (play 42) (play 42);
  check_bool "different seed, different log" false
    (Log.equal (play 42) (play 43))

let suite =
  [
    tc "map spec: solo op sequence" test_map_spec_solo;
    tc "map spec: resize returns the old shard count" test_map_spec_resize;
    prop_lookup_matches_replay;
    prop_ht_solo_matches_model;
    tc "hash table: delete of a missing key" test_ht_delete_missing;
    tc "hash table: bucket contents oracle" test_ht_bucket_contents;
    tc "hash table: resize redistributes buckets" test_ht_resize_redistributes;
    tc "hash table: resize under contention refines Lmap"
      test_ht_resize_under_contention;
    prop_ht_refines_spec_jobs14;
    tc "block cache: miss, fill, hit" test_cache_miss_then_hit;
    tc "block cache: entry replay reaches Available"
      test_cache_entry_replay_available;
    tc "block cache: eviction writes back" test_cache_eviction_writeback;
    tc "block cache: replay rejects protocol violations"
      test_cache_replay_rejects_garbage;
    tc "block cache: pending writer vs reader refines Lmap"
      test_cache_pending_writer_priority;
    prop_cache_solo_matches_model;
    tc "kv stack: all three edges certify" test_verify_all_edges;
    tc "kv stack: canonical report identical on jobs {1,2,4,7}"
      test_verify_jobs_identical;
    tc "kv stack: budget exhaustion yields a partial report"
      test_verify_budget_exhaustion;
    tc "kv stack: cache cold/warm round trip" test_verify_cache_round_trip;
    tc "kv stack: fingerprints stable and configuration-sensitive"
      test_fingerprints_stable_and_sensitive;
    tc "kv games: every corpus game completes" test_games_complete;
    tc "ycsb: op streams are seed-deterministic" test_ycsb_deterministic;
  ]
