(* Liveness scenarios: the Sec. 4.1 starvation-freedom bound for the
   ticket lock, and deadlock detection (dining philosophers). *)
open Ccal_core
open Ccal_objects
open Util

(* ---- the n*m*#CPU bound (Sec. 4.1) ---- *)

let ticket_logs ~ncpus ~rounds scheds =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client i =
    let rec go k =
      if k = 0 then Prog.ret (vi i)
      else
        Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
            Prog.seq (Prog.call "rel" [ vi 0; v ]) (go (k - 1)))
    in
    Prog.Module.link m (go rounds)
  in
  let threads = List.init ncpus (fun k -> k + 1, client (k + 1)) in
  List.filter_map
    (fun (o : Game.outcome) ->
      match o.Game.status with Game.All_done -> Some o.Game.log | _ -> None)
    (Game.behaviors ~max_steps:500_000 layer threads scheds)

let test_starvation_bound_formula () =
  check_int "n*m*#CPU" 24
    (Ccal_verify.Progress.starvation_bound ~cs_events:2 ~spin_events:4 ~ncpus:3)

let test_ticket_starvation_free () =
  (* critical sections are 2 events (pull, push+inc); under our fair
     schedulers any thread moves within a handful of competitor events;
     the measured spans must stay under the Sec. 4.1 bound *)
  let logs = ticket_logs ~ncpus:3 ~rounds:2 (Sched.default_suite ~seeds:10) in
  check_bool "have logs" true (List.length logs = 11);
  match
    Ccal_verify.Progress.check_starvation_free ~ticket_tag:"FAI_t"
      ~enter_tag:"pull" ~cs_events:4 ~spin_events:8 ~ncpus:3 logs
  with
  | Ok worst -> check_bool "worst below bound" true (worst <= 96)
  | Error msg -> Alcotest.fail msg

let test_starvation_bound_violated_by_unfair () =
  (* an unfair scheduler lets one thread hog: the bound checker reports the
     waiting thread once we force a long run *)
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let rec forever i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
        Prog.seq (Prog.call "rel" [ vi 0; v ]) (forever i))
  in
  let one_shot _i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v -> Prog.call "rel" [ vi 0; v ])
  in
  let unfair =
    { Sched.name = "hog";
      pick = (fun ~step:_ _ ~runnable ->
          if List.mem 1 runnable then Some 1 else List.nth_opt runnable 0) }
  in
  let o =
    Game.run
      (Game.config ~max_steps:400 layer
         [ 1, Prog.Module.link m (forever 1); 2, Prog.Module.link m (one_shot 2) ]
         unfair)
  in
  (* thread 2 drew a ticket at some point?  The hog scheduler never runs
     thread 2 after its first blocked pick; force it to have drawn one by
     letting it move once. *)
  let o =
    if
      Log.count (fun (e : Event.t) -> e.src = 2) o.Game.log > 0
    then o
    else
      Game.run
        (Game.config ~max_steps:400 layer
           [ 1, Prog.Module.link m (forever 1); 2, Prog.Module.link m (one_shot 2) ]
           (Sched.of_trace [ 2; 1 ]))
  in
  match
    Ccal_verify.Progress.check_starvation_free ~ticket_tag:"FAI_t"
      ~enter_tag:"pull" ~cs_events:4 ~spin_events:4 ~ncpus:2 [ o.Game.log ]
  with
  | Error _ -> ()
  | Ok worst ->
    (* if thread 2 never even drew a ticket the spans are vacuous; accept
       only if it genuinely completed quickly *)
    check_bool "either violated or vacuously small" true (worst <= 64)

(* ---- dining philosophers: deadlock found, ordered locking fixes it ---- *)

let philosopher layer m ~left ~right i =
  ignore layer;
  Prog.Module.link m
    (Prog.bind (Prog.call "acq" [ vi left ]) (fun vl ->
         Prog.bind (Prog.call "acq" [ vi right ]) (fun vr ->
             Prog.seq
               (Prog.call "rel" [ vi right; vr ])
               (Prog.seq (Prog.call "rel" [ vi left; vl ]) (Prog.ret (vi i))))))

let test_dining_deadlock_found () =
  (* two philosophers picking forks in opposite order deadlock under the
     alternating schedule — at the atomic lock layer the game reports it *)
  let layer = Lock_intf.layer "L" in
  let m = Prog.Module.empty in
  let o =
    Game.run
      (Game.config layer
         [ 1, philosopher layer m ~left:0 ~right:1 1;
           2, philosopher layer m ~left:1 ~right:0 2 ]
         (Sched.of_trace [ 1; 2; 1; 2 ]))
  in
  match o.Game.status with
  | Game.Deadlock ids -> Alcotest.(check (list int)) "both stuck" [ 1; 2 ] (List.sort compare ids)
  | s -> Alcotest.failf "expected deadlock, got %a" Game.pp_status s

let test_dining_ordered_locking_safe () =
  (* the classic fix: acquire in global fork order — no schedule deadlocks *)
  let layer = Lock_intf.layer "L" in
  let m = Prog.Module.empty in
  let threads =
    [ 1, philosopher layer m ~left:0 ~right:1 1;
      2, philosopher layer m ~left:0 ~right:1 2 ]
  in
  List.iter
    (fun sched ->
      let o = Game.run (Game.config layer threads sched) in
      check_bool "completes" true (Game.successful o))
    (Ccal_verify.Explore.full_suite ~tids:[ 1; 2 ] ~depth:4 ~random:8 ())

let test_dining_deadlock_on_ticket_impl () =
  (* the same wrong-order program, now over the concrete ticket-lock
     implementation: the deadlock manifests as both threads spinning; the
     progress checker reports the exceeded bound *)
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  match
    Ccal_verify.Budget.value
      (Ccal_verify.Progress.completes_within_ctx ~ctx:Ccal_verify.Ctx.default
         ~scheds:[ Sched.of_trace [ 1; 2 ] ] ~bound:2_000 layer
         [ 1, philosopher layer m ~left:0 ~right:1 1;
           2, philosopher layer m ~left:1 ~right:0 2 ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-order locking terminated?"

(* ---- the bound under both engines, for both lock implementations ---- *)

(* Generalized [ticket_logs]: any lock implementation over its own
   hardware layer, with the scheduler suite derived per game — the DPOR
   engine walks the very game it will drive. *)
let lock_logs ~layer ~m ~ncpus ~rounds suite_of =
  let client i =
    let rec go k =
      if k = 0 then Prog.ret (vi i)
      else
        Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
            Prog.seq (Prog.call "rel" [ vi 0; v ]) (go (k - 1)))
    in
    Prog.Module.link m (go rounds)
  in
  let threads = List.init ncpus (fun k -> k + 1, client (k + 1)) in
  let scheds = suite_of layer threads in
  List.filter_map
    (fun (o : Game.outcome) ->
      match o.Game.status with Game.All_done -> Some o.Game.log | _ -> None)
    (Game.behaviors ~max_steps:500_000 layer threads scheds)

let seeded_suite _layer _threads = Sched.default_suite ~seeds:10

let dpor_suite depth layer threads =
  Ccal_verify.Explore.scheds_of_strategy_ctx
    ~ctx:(Ccal_verify.Ctx.with_strategy (Ccal_verify.Ctx.Engine.dpor ~depth) Ccal_verify.Ctx.default)
    layer threads

(* Assert every waiting span of every log stays under the Sec. 4.1
   n*m*#CPU bound — computed by the formula, not hardcoded. *)
let assert_starvation_bound ~name ~ticket_tag ~cs_events ~spin_events ~ncpus
    logs =
  check_bool (name ^ ": produced complete runs") true (logs <> []);
  let bound =
    Ccal_verify.Progress.starvation_bound ~cs_events ~spin_events ~ncpus
  in
  match
    Ccal_verify.Progress.check_starvation_free ~ticket_tag ~enter_tag:"pull"
      ~cs_events ~spin_events ~ncpus logs
  with
  | Ok worst ->
    check_bool
      (Printf.sprintf "%s: worst wait %d within n*m*#CPU = %d" name worst bound)
      true (worst <= bound)
  | Error msg -> Alcotest.fail msg

let test_ticket_bound_seeded () =
  assert_starvation_bound ~name:"ticket/seeded" ~ticket_tag:"FAI_t"
    ~cs_events:4 ~spin_events:8 ~ncpus:3
    (lock_logs ~layer:(Ticket_lock.l0 ()) ~m:(Ticket_lock.c_module ()) ~ncpus:3
       ~rounds:2 seeded_suite)

let test_ticket_bound_dpor () =
  assert_starvation_bound ~name:"ticket/dpor" ~ticket_tag:"FAI_t" ~cs_events:4
    ~spin_events:8 ~ncpus:3
    (lock_logs ~layer:(Ticket_lock.l0 ()) ~m:(Ticket_lock.c_module ()) ~ncpus:3
       ~rounds:2 (dpor_suite 4))

let test_mcs_bound_seeded () =
  (* MCS critical sections carry the queue hand-off cell traffic, so the
     per-section event budget (n) is wider than the ticket lock's *)
  assert_starvation_bound ~name:"mcs/seeded" ~ticket_tag:"xchg" ~cs_events:8
    ~spin_events:12 ~ncpus:3
    (lock_logs ~layer:(Mcs_lock.l0 ()) ~m:(Mcs_lock.c_module ()) ~ncpus:3
       ~rounds:2 seeded_suite)

let test_mcs_bound_dpor () =
  assert_starvation_bound ~name:"mcs/dpor" ~ticket_tag:"xchg" ~cs_events:8
    ~spin_events:12 ~ncpus:3
    (lock_logs ~layer:(Mcs_lock.l0 ()) ~m:(Mcs_lock.c_module ()) ~ncpus:3
       ~rounds:2 (dpor_suite 3))

let suite =
  [
    tc "starvation bound formula" test_starvation_bound_formula;
    tc "ticket lock starvation-free (n*m*#CPU)" test_ticket_starvation_free;
    tc "ticket bound, seeded engine" test_ticket_bound_seeded;
    tc "ticket bound, DPOR engine" test_ticket_bound_dpor;
    tc "mcs bound, seeded engine" test_mcs_bound_seeded;
    tc "mcs bound, DPOR engine" test_mcs_bound_dpor;
    tc "unfair scheduler and the bound" test_starvation_bound_violated_by_unfair;
    tc "dining philosophers deadlock found" test_dining_deadlock_found;
    tc "ordered locking safe (all schedules)" test_dining_ordered_locking_safe;
    tc "deadlock visible on concrete ticket impl" test_dining_deadlock_on_ticket_impl;
  ]

(* ---- barrier episodes ---- *)

let barrier_threads placement n rounds =
  let layer = Barrier.underlay ~placement () in
  let m = Barrier.c_module () in
  let client i =
    let rec go k =
      if k = 0 then Prog.seq (Prog.call "texit" []) (Prog.ret (vi i))
      else
        Prog.seq (Prog.call "bar_wait" [ vi 7; vi n ]) (go (k - 1))
    in
    Prog.Module.link m (go rounds)
  in
  layer, List.map (fun (t, _) -> t, client t) placement

let test_barrier_three_threads () =
  let placement = [ 1, 1; 2, 2; 3, 3 ] in
  let layer, threads = barrier_threads placement 3 1 in
  List.iter
    (fun sched ->
      let o = Game.run (Game.config ~max_steps:200_000 layer threads sched) in
      check_bool "completes" true (Game.successful o);
      check_bool "no early pass" true
        (Barrier.episodes_wellformed ~n:3 7 o.Game.log))
    (Sched.default_suite ~seeds:8)

let test_barrier_reused_generations () =
  let placement = [ 1, 1; 2, 2 ] in
  let layer, threads = barrier_threads placement 2 3 in
  List.iter
    (fun sched ->
      let o = Game.run (Game.config ~max_steps:200_000 layer threads sched) in
      check_bool "completes" true (Game.successful o);
      check_bool "three generations wellformed" true
        (Barrier.episodes_wellformed ~n:2 7 o.Game.log);
      check_int "six passes" 6
        (Log.count (fun e -> String.equal e.Event.tag Barrier.pass_tag) o.Game.log))
    (Sched.default_suite ~seeds:6)

let test_barrier_blocks_alone () =
  (* one thread at a 2-party barrier waits forever *)
  let placement = [ 1, 1 ] in
  let layer, threads = barrier_threads placement 2 1 in
  let o = Game.run (Game.config ~max_steps:5_000 layer threads Sched.round_robin) in
  match o.Game.status with
  | Game.Deadlock _ -> ()
  | s -> Alcotest.failf "expected waiting, got %a" Game.pp_status s

let prop_barrier_random =
  qtc ~count:20 "barrier episodes wellformed under random schedules"
    QCheck.(int_range 1 2_000) (fun seed ->
      let placement = [ 1, 1; 2, 2; 3, 3 ] in
      let layer, threads = barrier_threads placement 3 2 in
      let o = Game.run (Game.config ~max_steps:300_000 layer threads (Sched.random ~seed)) in
      Game.successful o && Barrier.episodes_wellformed ~n:3 7 o.Game.log)

let suite =
  suite
  @ [
      tc "barrier: three threads" test_barrier_three_threads;
      tc "barrier: reused generations" test_barrier_reused_generations;
      tc "barrier: blocks alone" test_barrier_blocks_alone;
      prop_barrier_random;
    ]
