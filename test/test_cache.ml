(* The certificate cache (DESIGN.md S26): fingerprint stability, the
   on-disk store's hit/miss/corruption behaviour, the never-replay-failures
   policy, the per-edge invalidation contract of the stack keys, and the
   warm-run-equals-cold-run acceptance gate. *)
open Ccal_core
open Ccal_objects
open Util
module V = Ccal_verify

(* ---- scratch cache directories ---- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ccal-test-cache-%d-%d" (Unix.getpid ()) !dir_counter)

let cleanup c =
  ignore (V.Cache.clear c);
  try Unix.rmdir (V.Cache.dir c) with Unix.Unix_error _ -> ()

let with_cache f =
  let c = V.Cache.create ~dir:(fresh_dir ()) () in
  Fun.protect ~finally:(fun () -> cleanup c) (fun () -> f c)

(* Entry files in the store (same filter as [Cache.disk_stats]). *)
let entry_files c =
  Sys.readdir (V.Cache.dir c)
  |> Array.to_list
  |> List.filter (fun f -> not (String.starts_with ~prefix:".tmp-" f))
  |> List.map (Filename.concat (V.Cache.dir c))

(* ---- fingerprints ---- *)

let fp_of_string s = Fingerprint.finish (Fingerprint.string Fingerprint.empty s)

let test_fingerprint_stable () =
  (* same structure, same fingerprint — across separately-built values *)
  check_bool "strings" true
    (Fingerprint.equal (fp_of_string "abc") (fp_of_string "abc"));
  let fp_layer () =
    Fingerprint.finish (Fingerprint.layer Fingerprint.empty (Ticket_lock.l0 ()))
  in
  check_bool "layers" true (Fingerprint.equal (fp_layer ()) (fp_layer ()));
  let prog i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
        Prog.seq (Prog.call "rel" [ vi 0; v ]) (Prog.ret (vi i)))
  in
  let fp_prog p = Fingerprint.finish (Fingerprint.prog Fingerprint.empty p) in
  check_bool "progs equal" true (Fingerprint.equal (fp_prog (prog 1)) (fp_prog (prog 1)));
  check_bool "progs differ" false
    (Fingerprint.equal (fp_prog (prog 1)) (fp_prog (prog 2)));
  check_int "hex width" 16 (String.length (Fingerprint.to_hex (fp_of_string "x")))

let test_fingerprint_sensitive () =
  check_bool "different strings" false
    (Fingerprint.equal (fp_of_string "abc") (fp_of_string "abd"));
  (* suites are identified by scheduler names: seeded suites of different
     sizes, and exhaustive suites of different depths, must all differ *)
  let fp_scheds ss = Fingerprint.finish (Fingerprint.scheds Fingerprint.empty ss) in
  check_bool "seed suites" false
    (Fingerprint.equal
       (fp_scheds (Sched.default_suite ~seeds:4))
       (fp_scheds (Sched.default_suite ~seeds:5)));
  check_bool "exhaustive depths" false
    (Fingerprint.equal
       (fp_scheds (V.Explore.exhaustive_scheds ~tids:[ 1; 2 ] ~depth:2))
       (fp_scheds (V.Explore.exhaustive_scheds ~tids:[ 1; 2 ] ~depth:3)));
  (* the C sources are fingerprinted structurally: the two lock
     implementations must not collide *)
  let fp_fn f =
    Fingerprint.finish (Ccal_clight.Csyntax.fp_fn Fingerprint.empty f)
  in
  check_bool "ticket vs mcs acq" false
    (Fingerprint.equal (fp_fn Ticket_lock.acq_fn) (fp_fn Mcs_lock.acq_fn))

(* ---- the store ---- *)

let test_roundtrip () =
  with_cache (fun c ->
      let key = fp_of_string "roundtrip-key" in
      check_bool "absent is a miss" true (V.Cache.find c ~kind:"edge" key = None);
      V.Cache.store c ~kind:"edge" key (42, "payload");
      check_bool "hit returns the value" true
        (V.Cache.find c ~kind:"edge" key = Some (42, "payload"));
      let s = V.Cache.session_stats c in
      check_int "hits" 1 s.hits;
      check_int "misses" 1 s.misses;
      check_int "stores" 1 s.stores;
      let d = V.Cache.disk_stats c in
      check_int "entries" 1 d.entries;
      check_bool "bytes" true (d.bytes > 0))

let test_kind_separates_payloads () =
  with_cache (fun c ->
      let key = fp_of_string "same-key" in
      V.Cache.store c ~kind:"edge" key 1;
      (* same fingerprint, different payload kind: no type confusion *)
      check_bool "other kind misses" true (V.Cache.find c ~kind:"races" key = None);
      check_bool "own kind hits" true (V.Cache.find c ~kind:"edge" key = Some 1))

let test_corrupt_entry_recovered () =
  with_cache (fun c ->
      let key = fp_of_string "corrupt-me" in
      V.Cache.store c ~kind:"edge" key (List.init 64 Fun.id);
      (match entry_files c with
      | [ path ] ->
        let oc = open_out path in
        output_string oc "not a cache entry at all";
        close_out oc
      | files -> Alcotest.failf "expected 1 entry, found %d" (List.length files));
      check_bool "corrupt is a miss" true
        (V.Cache.find c ~kind:"edge" (key : Fingerprint.t) = (None : int list option));
      let s = V.Cache.session_stats c in
      check_int "invalidation counted" 1 s.invalidations;
      check_int "entry deleted" 0 (V.Cache.disk_stats c).entries)

let test_truncated_entry_recovered () =
  with_cache (fun c ->
      let key = fp_of_string "truncate-me" in
      V.Cache.store c ~kind:"edge" key (String.make 4096 'x');
      (match entry_files c with
      | [ path ] ->
        (* keep the magic header, cut the payload short *)
        let ic = open_in_bin path in
        let keep = min (in_channel_length ic) 40 in
        let prefix = really_input_string ic keep in
        close_in ic;
        let oc = open_out_bin path in
        output_string oc prefix;
        close_out oc
      | files -> Alcotest.failf "expected 1 entry, found %d" (List.length files));
      check_bool "truncated is a miss" true
        (V.Cache.find c ~kind:"edge" (key : Fingerprint.t) = (None : string option));
      check_int "invalidation counted" 1 (V.Cache.session_stats c).invalidations;
      check_int "entry deleted" 0 (V.Cache.disk_stats c).entries)

let test_crash_kind_corrupt_rechecks () =
  (* Fault.corrupt_cache x the "crash" kind (DESIGN.md S30): a corrupted
     crash-certificate entry must read as a miss and force a live
     recheck — never a stale verdict — and the recheck re-stores the
     same report. *)
  with_cache (fun c ->
      let module D = Ccal_disk in
      let report cache =
        match
          V.Crash.check_edge_ctx ~ctx:(V.Ctx.make ~cache ())
            (D.Wal.crash_edge ())
        with
        | V.Budget.Complete (Ok e) -> { e with V.Crash.millis = 0. }
        | V.Budget.Complete (Error f) -> Alcotest.failf "%a" V.Crash.pp_failure f
        | V.Budget.Exhausted _ -> Alcotest.fail "unexpected budget exhaustion"
      in
      let cold = report c in
      (* corrupt every stored entry in place — the crash report and the
         derived-suite entries alike *)
      let files = entry_files c in
      check_bool "cold run stored entries" true (files <> []);
      List.iter
        (fun path ->
          let oc = open_out path in
          output_string oc "not a certificate";
          close_out oc)
        files;
      let c2 = V.Cache.create ~dir:(V.Cache.dir c) () in
      let rechecked = report c2 in
      let s = V.Cache.session_stats c2 in
      check_bool "corrupt crash entry invalidated, not served" true
        (s.invalidations >= 1);
      check_int "no hits off the corrupted store" 0 s.hits;
      check_bool "recheck re-stored the report" true (s.stores >= 1);
      check_bool "rechecked verdict identical to the cold one" true
        (rechecked = cold);
      (* and the freshly re-stored entry serves the third run *)
      let c3 = V.Cache.create ~dir:(V.Cache.dir c) () in
      let warm = report c3 in
      check_bool "warm verdict identical" true (warm = cold);
      check_bool "third run hits" true ((V.Cache.session_stats c3).hits >= 1))

let test_invalidate_and_clear () =
  with_cache (fun c ->
      let k1 = fp_of_string "k1" and k2 = fp_of_string "k2" in
      V.Cache.store c ~kind:"edge" k1 1;
      V.Cache.store c ~kind:"edge" k2 2;
      V.Cache.invalidate c ~kind:"edge" k1;
      check_bool "invalidated entry gone" true
        (V.Cache.find c ~kind:"edge" k1 = (None : int option));
      check_int "other entry intact" 1 (V.Cache.disk_stats c).entries;
      check_int "clear reports count" 1 (V.Cache.clear c);
      check_int "store empty" 0 (V.Cache.disk_stats c).entries)

(* ---- never replay failures ---- *)

let racy_layer () =
  Layer.make "Lracy"
    [ Layer.shared_prim "collide" (fun c _ _ ->
          Layer.Race (Printf.sprintf "CPU %d collided" c)) ]

let test_races_failure_never_stored () =
  with_cache (fun c ->
      let layer = racy_layer () in
      let threads = [ 1, Prog.call "collide" [] ] in
      let run () =
        V.Races.check_ctx ~ctx:(V.Ctx.make ~cache:c ())
          ~scheds:[ Sched.round_robin ] layer threads
      in
      (match run () with
      | V.Races.Race _ -> ()
      | _ -> Alcotest.fail "expected a race");
      check_int "nothing stored" 0 (V.Cache.disk_stats c).entries;
      (match run () with
      | V.Races.Race _ -> ()
      | _ -> Alcotest.fail "expected the race again");
      let s = V.Cache.session_stats c in
      (* two lookups per run: the full verdict and the "races.partial"
         auto-resume entry — four misses, zero hits, zero stores *)
      check_int "re-ran live both times" 4 s.misses;
      check_int "no hits" 0 s.hits)

let test_races_clean_verdict_cached () =
  with_cache (fun c ->
      let layer = Ticket_lock.l0 () in
      let m = Ticket_lock.c_module () in
      let client i =
        Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
            Prog.call "rel" [ vi 0; vi i ])
      in
      let threads =
        List.map (fun i -> i, Prog.Module.link m (client i)) [ 1; 2 ]
      in
      (* trace/random schedulers are single-use: regenerate per run; the
         suite identity (the names) is what the key sees *)
      let run () =
        V.Races.check_ctx ~ctx:(V.Ctx.make ~cache:c ())
          ~scheds:(Sched.default_suite ~seeds:6) layer threads
      in
      let runs_of = function
        | V.Races.Race_free { runs } -> runs
        | V.Races.Race { detail; _ } -> Alcotest.failf "false positive: %s" detail
        | V.Races.Other_failure msg -> Alcotest.fail msg
        | V.Races.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"
      in
      let cold = runs_of (run ()) in
      check_int "stored once" 1 (V.Cache.session_stats c).stores;
      let warm = runs_of (run ()) in
      check_int "same runs from the store" cold warm;
      check_int "second call hit" 1 (V.Cache.session_stats c).hits)

(* ---- the inner checkers ---- *)

let lock_threads () =
  let m = Ticket_lock.c_module () in
  let client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
  in
  List.map (fun i -> i, Prog.Module.link m (client i)) [ 1; 2 ]

let test_dpor_walk_cached () =
  with_cache (fun c ->
      let layer = Ticket_lock.l0 () in
      let r1 =
        V.Budget.value
          (V.Dpor.explore_ctx ~ctx:(V.Ctx.make ~cache:c ()) ~depth:4 layer
             (lock_threads ()))
      in
      check_int "first walk missed" 1 (V.Cache.session_stats c).misses;
      let r2 =
        V.Budget.value
          (V.Dpor.explore_ctx ~ctx:(V.Ctx.make ~cache:c ()) ~depth:4 layer
             (lock_threads ()))
      in
      check_int "second walk hit" 1 (V.Cache.session_stats c).hits;
      check_bool "same prefixes" true (r1.V.Dpor.prefixes = r2.V.Dpor.prefixes);
      check_bool "same stats" true (r1.V.Dpor.stats = r2.V.Dpor.stats);
      (* the replay phase is live either way: outcomes present on the hit *)
      check_int "outcomes replayed" (List.length r1.V.Dpor.outcomes)
        (List.length r2.V.Dpor.outcomes))

let test_run_all_cached_only_when_all_done () =
  with_cache (fun c ->
      let layer = Ticket_lock.l0 () in
      let out1 =
        V.Budget.value
          (V.Explore.run_all_ctx ~ctx:(V.Ctx.make ~cache:c ()) layer
             (lock_threads ())
             (Sched.default_suite ~seeds:3))
      in
      check_int "clean corpus stored" 1 (V.Cache.disk_stats c).entries;
      let out2 =
        V.Budget.value
          (V.Explore.run_all_ctx ~ctx:(V.Ctx.make ~cache:c ()) layer
             (lock_threads ())
             (Sched.default_suite ~seeds:3))
      in
      check_int "served from the store" 1 (V.Cache.session_stats c).hits;
      check_bool "same statuses" true
        (List.map (fun (o : Game.outcome) -> o.Game.status) out1
        = List.map (fun (o : Game.outcome) -> o.Game.status) out2);
      (* a corpus containing a failure is never stored *)
      let trap =
        Layer.make "Ltrap"
          [ Layer.shared_prim "trap" (fun _ _ _ -> Layer.Stuck "trapped") ]
      in
      let before = (V.Cache.disk_stats c).entries in
      ignore
        (V.Budget.value
           (V.Explore.run_all_ctx ~ctx:(V.Ctx.make ~cache:c ()) trap
              [ 1, Prog.call "trap" [] ]
              [ Sched.round_robin ]));
      ignore
        (V.Budget.value
           (V.Explore.run_all_ctx ~ctx:(V.Ctx.make ~cache:c ()) trap
              [ 1, Prog.call "trap" [] ]
              [ Sched.round_robin ]));
      check_int "failing corpus not stored" before (V.Cache.disk_stats c).entries)

let test_refine_cached () =
  with_cache (fun c ->
      let layer = Ticket_lock.l0 () in
      let m = Ticket_lock.c_module () in
      let client i =
        Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
            Prog.seq (Prog.call "rel" [ vi 0; v ]) (Prog.ret (vi i)))
      in
      let run () =
        V.Budget.value
          (V.Linearizability.refine_ctx ~ctx:(V.Ctx.make ~cache:c ())
             ~underlay:layer ~impl:m ~overlay:(Ticket_lock.overlay ())
             ~rel:Ticket_lock.r_ticket ~client ~tids:[ 1; 2 ]
             ~scheds:(Sched.default_suite ~seeds:4) ())
      in
      let report = function
        | Ok (r : Refinement.report) -> r
        | Error _ -> Alcotest.fail "refinement failed"
      in
      let cold = report (run ()) in
      check_int "stored" 1 (V.Cache.session_stats c).stores;
      let warm = report (run ()) in
      check_int "hit" 1 (V.Cache.session_stats c).hits;
      check_int "same scheds_checked" cold.Refinement.scheds_checked
        warm.Refinement.scheds_checked;
      check_bool "same logs" true
        (List.for_all2 Log.equal cold.Refinement.logs warm.Refinement.logs))

(* ---- stack edge keys: the invalidation contract ---- *)

(* Names present in both listings whose fingerprints changed. *)
let changed_edges a b =
  List.filter_map
    (fun (n, fp) ->
      match List.assoc_opt n b with
      | Some fp' when not (Fingerprint.equal fp fp') -> Some n
      | _ -> None)
    a

let game_driving_edges =
  [
    "Mx86 refines Lx86[D] (Thm 3.1)";
    "Llock[1] x Llock[2] => Llock[{1,2}] (Pcomp)";
    "[[P + M]]_L0 refines [[P]]_Lq_high (Thm 2.2)";
    "Lbtd[c] = Lhtd[c][Tc] (Thm 5.1)";
    "[[producer|consumer]] refines Lipc (blocking paths)";
  ]

let test_edge_keys_deterministic () =
  let a = V.Stack.edge_fingerprints () and b = V.Stack.edge_fingerprints () in
  check_int "ten edges" 10 (List.length a);
  check_bool "same keys across calls" true
    (List.for_all2
       (fun (n, fp) (n', fp') -> n = n' && Fingerprint.equal fp fp')
       a b)

let test_seeds_invalidate_exactly_game_edges () =
  let base = V.Stack.edge_fingerprints () in
  let changed = changed_edges base (V.Stack.edge_fingerprints ~seeds:5 ()) in
  Alcotest.(check (list string))
    "exactly the suite-driven edges" game_driving_edges changed

let test_strategy_invalidates_exactly_game_edges () =
  let base = V.Stack.edge_fingerprints () in
  let changed =
    changed_edges base (V.Stack.edge_fingerprints ~strategy:(V.Ctx.Engine.dpor ~depth:4) ())
  in
  Alcotest.(check (list string))
    "exactly the suite-driven edges" game_driving_edges changed

let test_lock_swap_invalidates_exactly_lock_edges () =
  let base = V.Stack.edge_fingerprints () in
  let mcs = V.Stack.edge_fingerprints ~lock:`Mcs () in
  (* the lock's own certification edge is renamed outright *)
  check_bool "ticket edge named" true
    (List.mem_assoc "L0 |- M_ticket : Llock (Fun)" base);
  check_bool "mcs edge named" true
    (List.mem_assoc "L0 |- M_mcs : Llock (Fun)" mcs);
  (* of the edges shared by name, only the lock Pcomp corpus changes: the
     queue stack above is pinned to the ticket lock and the upper layers
     never see the implementation *)
  Alcotest.(check (list string))
    "exactly the Pcomp edge"
    [ "Llock[1] x Llock[2] => Llock[{1,2}] (Pcomp)" ]
    (changed_edges base mcs)

(* ---- warm stack run: bit-identical report, every jobs count ---- *)

let canonical = function
  | Ok r -> Format.asprintf "%a" V.Stack.pp_report_canonical r
  | Error e -> Alcotest.failf "stack failed: %s" e

let test_stack_warm_equals_cold () =
  let dir = fresh_dir () in
  let cold_cache = V.Cache.create ~dir () in
  Fun.protect ~finally:(fun () -> cleanup cold_cache) (fun () ->
      let cold =
        canonical
          (Result.map
             (fun (p : V.Stack.progress) -> p.V.Stack.completed)
             (V.Budget.value
                (V.Stack.verify_all_ctx ~ctx:(V.Ctx.make ~cache:cold_cache ())
                   ~seeds:2 ())))
      in
      let s = V.Cache.session_stats cold_cache in
      check_int "cold run has no hits" 0 s.hits;
      check_bool "cold run populates the store" true (s.stores > 0);
      List.iter
        (fun jobs ->
          let warm_cache = V.Cache.create ~dir () in
          let warm =
            canonical
              (Result.map
                 (fun (p : V.Stack.progress) -> p.V.Stack.completed)
                 (V.Budget.value
                    (V.Stack.verify_all_ctx
                       ~ctx:(V.Ctx.make ~jobs ~cache:warm_cache ())
                       ~seeds:2 ())))
          in
          check_string (Printf.sprintf "warm report identical (j=%d)" jobs)
            cold warm;
          let w = V.Cache.session_stats warm_cache in
          check_int "every edge served from the store" 10 w.hits;
          check_int "no warm misses" 0 w.misses)
        [ 1; 2 ])

let suite =
  [
    tc "fingerprints are stable" test_fingerprint_stable;
    tc "fingerprints are sensitive" test_fingerprint_sensitive;
    tc "store roundtrip and counters" test_roundtrip;
    tc "kinds keep payload types apart" test_kind_separates_payloads;
    tc "corrupt entry is a miss, then gone" test_corrupt_entry_recovered;
    tc "truncated entry is a miss, then gone" test_truncated_entry_recovered;
    tc "corrupt crash-kind entry rechecks live, never stale"
      test_crash_kind_corrupt_rechecks;
    tc "invalidate and clear" test_invalidate_and_clear;
    tc "racing verdicts never stored" test_races_failure_never_stored;
    tc "race-free verdict cached" test_races_clean_verdict_cached;
    tc "DPOR walk cached, replay live" test_dpor_walk_cached;
    tc "run_all cached only when all done" test_run_all_cached_only_when_all_done;
    tc "refinement report cached with log hash" test_refine_cached;
    tc "edge keys deterministic" test_edge_keys_deterministic;
    tc "seeds invalidate exactly the game edges" test_seeds_invalidate_exactly_game_edges;
    tc "strategy invalidates exactly the game edges" test_strategy_invalidates_exactly_game_edges;
    tc "lock swap invalidates exactly the lock edges" test_lock_swap_invalidates_exactly_lock_edges;
    tc "warm stack run equals cold (jobs 1, 2)" test_stack_warm_equals_cold;
  ]
