(* ccal — command-line driver for the CCAL reproduction.

   Subcommands:
     ccal stack     verify the whole Fig. 1 layer stack
     ccal kv        certify the kv serving stack (DESIGN.md S28)
     ccal verify    certify one object (ticket, mcs, local-queue,
                    shared-queue, qlock, ipc, all)
     ccal pipeline  run the Fig. 5 ticket-lock pipeline with soundness
     ccal explore   compare the DPOR explorer against exhaustive
                    enumeration on a benchmark game
     ccal litmus    run the memory-model conformance suite
     ccal crash     certify crash refinement of the WAL and durable-kv
                    edges (DESIGN.md S30)
     ccal inventory print the layer/object inventory

   The game-driving subcommands (stack, kv, pipeline, explore, litmus,
   crash) share one flag bundle — --jobs, --strategy, --cache/--cache-dir, --stats,
   --trace, --budget-ms, --budget-steps, --inject — parsed once into a
   [Ccal_verify.Ctx.t] and threaded through the [*_ctx] checker entry
   points (DESIGN.md S27). *)

open Cmdliner
open Ccal_core
open Ccal_objects

let vi = Value.int

(* ---------------- shared options ---------------- *)

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains used for schedule checking.  Defaults to \
                 $(b,CCAL_JOBS) when set, else the recommended domain \
                 count; 1 forces the sequential path.  The verdict is \
                 identical for every value — parallelism changes \
                 wall-clock only.")

let resolve_jobs = function
  | Some n -> max 1 n
  | None -> Ccal_verify.Parallel.default_jobs ()

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Enable verification telemetry and print the counter/span \
                 table after the run.  Counters are identical for every \
                 $(b,--jobs) value (DESIGN.md S25).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Enable verification telemetry and write the recorded spans \
                 to $(docv) in Chrome trace format (load in about:tracing \
                 or ui.perfetto.dev; one track per worker domain).")

let strategy_arg =
  Arg.(value & opt string "default"
       & info [ "strategy" ] ~docv:"STRAT"
           ~doc:"Exploration strategy for the game-driving checks: \
                 default (seeded suite), dpor[:DEPTH], \
                 optimal[:DEPTH][,dedup][,sym] (sleep-set DPOR with \
                 state-fingerprint dedup and thread-symmetry reduction), \
                 exhaustive[:DEPTH] or random[:COUNT].  Invalid \
                 combinations (e.g. dpor,dedup) are rejected by name.")

let budget_ms_arg =
  Arg.(value & opt (some float) None
       & info [ "budget-ms" ] ~docv:"MS"
           ~doc:"Wall-clock budget in milliseconds.  When it runs out the \
                 checkers stop at the next schedule boundary and report \
                 what they established so far ($(b,exhausted) verdict, \
                 exit 0) instead of hanging.")

let budget_steps_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-steps" ] ~docv:"N"
           ~doc:"Game-step budget.  Deterministic: the same step budget \
                 truncates the same schedule prefix on every $(b,--jobs) \
                 value (DESIGN.md S27).")

let memory_arg =
  Arg.(value & opt string "sc"
       & info [ "memory" ] ~docv:"MODE"
           ~doc:"Memory model the machine layer exhibits: $(b,sc) \
                 (sequentially consistent, the default) or $(b,tso) \
                 (x86-TSO: per-CPU FIFO store buffers, mfence, and \
                 buffer flushes as explicit scheduler moves).  Verdicts \
                 are cached per mode — an SC verdict is never served for \
                 a TSO query.")

let memory_of_string = function
  | "sc" | "SC" -> Ok Memory.Sc
  | "tso" | "TSO" -> Ok Memory.Tso
  | s -> Error (Printf.sprintf "unknown memory model %S (expected sc or tso)" s)

let inject_arg =
  Arg.(value & opt (some string) None
       & info [ "inject" ] ~docv:"SPEC"
           ~doc:"Deterministic fault injection, e.g. \
                 $(b,crash:0.1,corrupt-cache:0.05,seed:7).  Kinds: crash \
                 (worker domains), corrupt-cache, oversize, skew.  \
                 Verdicts are bit-identical with and without faults — \
                 this exercises the retry/requeue paths, not the math.")

(* Run [f] with telemetry enabled when [--stats] or [--trace] asks for it;
   print the table and/or write the trace afterwards, leaving the exit
   code to [f].  Exporting happens even when [f] fails — a failing run is
   exactly when the trace is interesting. *)
let with_telemetry ~stats ~trace f =
  let module T = Ccal_verify.Telemetry in
  if not (stats || trace <> None) then f ()
  else begin
    T.enable ();
    Fun.protect
      ~finally:(fun () ->
        if stats then Format.printf "%a@." T.pp_stats ();
        (match trace with
        | Some path ->
          T.write_chrome_trace path;
          Format.printf "trace written to %s@." path
        | None -> ());
        T.disable ())
      f
  end

(* ---------------- cache options ---------------- *)

let cache_flag_arg =
  Arg.(value & flag
       & info [ "cache" ]
           ~doc:"Consult the on-disk certificate cache before each edge and \
                 record new verdicts after (DESIGN.md S26).  Failing \
                 verdicts are never replayed from disk.  The store lives in \
                 $(b,--cache-dir), $(b,CCAL_CACHE_DIR) or ~/.cache/ccal.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Certificate cache directory (implies $(b,--cache)).  \
                 Defaults to $(b,CCAL_CACHE_DIR) or ~/.cache/ccal.")

(* [Some cache] when --cache/--cache-dir asks for one; [Error] (exit 2)
   when the directory cannot be created. *)
let make_cache use_cache dir =
  if use_cache || dir <> None then
    match Ccal_verify.Cache.create ?dir () with
    | c -> Ok (Some c)
    | exception Sys_error msg -> Error msg
  else Ok None

let pp_cache_summary fmt cache =
  match cache with
  | None -> ()
  | Some c ->
    let s = Ccal_verify.Cache.session_stats c in
    Format.fprintf fmt "cache: %d hits, %d misses, %d invalidations (%s)@."
      s.Ccal_verify.Cache.hits s.Ccal_verify.Cache.misses
      s.Ccal_verify.Cache.invalidations
      (Ccal_verify.Cache.dir c)

(* [Ok None] = "the command's historical default suite"; anything else
   parses through the one engine grammar ([Engine.of_string]), so every
   game subcommand accepts exactly the same descriptors — including
   [optimal[:DEPTH][,dedup][,sym]] — and rejects invalid combinations
   with the engine's named error. *)
let strategy_of_string = function
  | "default" | "" -> Ok None
  | s -> Result.map Option.some (Ccal_verify.Ctx.Engine.of_string s)

(* ---------------- the shared flag bundle ---------------- *)

(* Everything the game-driving subcommands have in common, parsed once.
   [strategy = None] means "the command's historical default suite". *)
type common = {
  jobs : int;
  cache : Ccal_verify.Cache.t option;
  strategy : Ccal_verify.Ctx.Engine.t option;
  memory : Memory.t;
  budget : Ccal_verify.Budget.t;
  faults : Ccal_verify.Fault.plan;
  stats : bool;
  trace : string option;
}

let common_of jobs strategy memory use_cache cache_dir budget_ms budget_steps
    inject stats trace =
  match strategy_of_string strategy with
  | Error msg -> Error msg
  | Ok strategy -> (
    match memory_of_string memory with
    | Error msg -> Error msg
    | Ok memory -> (
      match make_cache use_cache cache_dir with
      | Error msg -> Error (Printf.sprintf "cannot open cache: %s" msg)
      | Ok cache -> (
        match
          match inject with
          | None -> Ok Ccal_verify.Fault.none
          | Some spec -> Ccal_verify.Fault.parse spec
        with
        | Error msg -> Error msg
        | Ok faults ->
          Ok
            {
              jobs = resolve_jobs jobs;
              cache;
              strategy;
              memory;
              budget =
                Ccal_verify.Budget.make ?ms:budget_ms ?steps:budget_steps ();
              faults;
              stats;
              trace;
            })))

let common_term =
  Term.(const common_of $ jobs_arg $ strategy_arg $ memory_arg
        $ cache_flag_arg $ cache_dir_arg $ budget_ms_arg $ budget_steps_arg
        $ inject_arg $ stats_arg $ trace_arg)

(* The context a parsed bundle denotes.  The budget is attached last —
   [Ctx.with_budget] starts the token, and the deadline epoch should be
   the moment the checker starts, not argument parsing. *)
let ctx_of c =
  let module V = Ccal_verify in
  let ctx = V.Ctx.with_jobs c.jobs V.Ctx.default in
  let ctx =
    match c.cache with Some ca -> V.Ctx.with_cache ca ctx | None -> ctx
  in
  let ctx =
    match c.strategy with Some s -> V.Ctx.with_strategy s ctx | None -> ctx
  in
  let ctx = V.Ctx.with_memory c.memory ctx in
  let ctx = V.Ctx.with_faults c.faults ctx in
  let ctx = V.Ctx.with_stats c.stats ctx in
  let ctx =
    match c.trace with Some t -> V.Ctx.with_trace t ctx | None -> ctx
  in
  V.Ctx.with_budget c.budget ctx

let pp_fault_summary fmt (c : common) =
  if not (Ccal_verify.Fault.is_none c.faults) then begin
    let s = Ccal_verify.Fault.stats () in
    Format.fprintf fmt
      "faults injected: %d crashes, %d corruptions, %d oversized, %d skew \
       jumps@."
      s.Ccal_verify.Fault.crashes s.Ccal_verify.Fault.corruptions
      s.Ccal_verify.Fault.oversized s.Ccal_verify.Fault.skew_jumps
  end

(* Run a subcommand body under the bundle's telemetry settings, printing
   the fault and cache summaries afterwards. *)
let run_with_common (c : common) f =
  with_telemetry ~stats:c.stats ~trace:c.trace (fun () ->
      Ccal_verify.Fault.reset_stats ();
      let code = f (ctx_of c) in
      Format.printf "%a%a" pp_fault_summary c pp_cache_summary c.cache;
      code)

(* The one funnel every game-driving subcommand (stack, kv, pipeline,
   explore, litmus, crash) goes through: a bundle parse error exits 2,
   otherwise the body gets the parsed bundle and its context under the
   telemetry/fault/cache plumbing.  Subcommand-specific validation
   happens inside the body (same exit 2), so the wiring is written once
   rather than re-pasted per subcommand. *)
let with_common common f =
  match common with
  | Error msg ->
    Format.eprintf "%s@." msg;
    2
  | Ok c -> run_with_common c (fun ctx -> f c ctx)

let report_file_arg =
  Arg.(value & opt (some string) None
       & info [ "report" ] ~docv:"FILE"
           ~doc:"Also write the canonical (timing-free) report to $(docv).  \
                 The file is bit-identical between cold and warm cached \
                 runs and across $(b,--jobs) counts — made for $(b,cmp).")

let write_report report_file pp report =
  match report_file with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let fmt = Format.formatter_of_out_channel oc in
    Format.fprintf fmt "%a@." pp report;
    Format.pp_print_flush fmt ();
    close_out oc;
    Format.printf "canonical report written to %s@." path

(* ---------------- stack ---------------- *)

let stack_cmd =
  let run common lock seeds livelock report_file =
    with_common common @@ fun c ctx ->
    let lock = match lock with "mcs" -> `Mcs | _ -> `Ticket in
    let module V = Ccal_verify in
    let report r = write_report report_file V.Stack.pp_report_canonical r in
    match
      V.Stack.verify_all_ctx ~ctx ~lock ~seeds ?strategy:c.strategy
        ~adversarial:livelock ()
    with
    | V.Budget.Complete (Ok progress) ->
      Format.printf "%a@." V.Stack.pp_report progress.V.Stack.completed;
      report progress.V.Stack.completed;
      0
    | V.Budget.Exhausted { spent; partial = Ok progress } ->
      Format.printf "%a@." V.Stack.pp_report progress.V.Stack.completed;
      Format.printf "budget exhausted (%a) before edge %S@."
        V.Budget.pp_spent spent
        (Option.value progress.V.Stack.next_edge ~default:"?");
      report progress.V.Stack.completed;
      0
    | V.Budget.Complete (Error msg)
    | V.Budget.Exhausted { partial = Error msg; _ } ->
      Format.eprintf "stack verification failed: %s@." msg;
      1
  in
  let lock =
    Arg.(value & opt string "ticket"
         & info [ "lock" ] ~docv:"IMPL" ~doc:"Spinlock implementation (ticket|mcs).")
  in
  let seeds =
    Arg.(value & opt int 4
         & info [ "seeds" ] ~docv:"N" ~doc:"Random schedulers per check.")
  in
  let livelock =
    Arg.(value & flag
         & info [ "livelock" ]
             ~doc:"Append the adversarial spinning-rwlock edge, which \
                   livelocks under the trace-prefix schedulers.  Without a \
                   $(b,--budget-ms) this effectively hangs; with one, the \
                   run stops at the deadline and reports the completed \
                   edges ($(b,exhausted), exit 0).")
  in
  Cmd.v
    (Cmd.info "stack" ~doc:"Certify and link the whole Fig. 1 layer stack")
    Term.(const run $ common_term $ lock $ seeds $ livelock $ report_file_arg)

(* ---------------- kv ---------------- *)

let kv_cmd =
  let run common threads shards entries report_file =
    with_common common @@ fun _c ctx ->
    let module V = Ccal_verify in
    let module K = Ccal_kv.Kv_stack in
    let report r = write_report report_file K.pp_report_canonical r in
    match K.verify_ctx ~ctx ~threads ~shards ~entries () with
    | V.Budget.Complete (Ok r) ->
      Format.printf "%a" K.pp_report r;
      report r;
      0
    | V.Budget.Exhausted { spent; partial = Ok r } ->
      Format.printf "%a" K.pp_report r;
      Format.printf "budget exhausted (%a) after %d of 3 edges@."
        V.Budget.pp_spent spent
        (List.length r.K.edges);
      report r;
      0
    | V.Budget.Complete (Error msg)
    | V.Budget.Exhausted { partial = Error msg; _ } ->
      Format.eprintf "kv verification failed: %s@." msg;
      1
  in
  let threads =
    Arg.(value & opt int 3
         & info [ "threads" ] ~docv:"N"
             ~doc:"Client threads per edge game.  More threads explore more \
                   interleavings (and cost exponentially more schedules).")
  in
  let shards =
    Arg.(value & opt int 2
         & info [ "shards" ] ~docv:"N"
             ~doc:"Hash-table bucket count (each bucket gets its own lock).")
  in
  let entries =
    Arg.(value & opt int 2
         & info [ "entries" ] ~docv:"N"
             ~doc:"Block-cache capacity in direct-mapped entries.")
  in
  Cmd.v
    (Cmd.info "kv"
       ~doc:"Certify the kv serving stack (sharded hash table + block cache)")
    Term.(const run $ common_term $ threads $ shards $ entries $ report_file_arg)

(* ---------------- verify ---------------- *)

let verify_one name =
  let show = function
    | Ok cert ->
      Format.printf "%a@." Calculus.pp_cert cert;
      true
    | Error e ->
      Format.printf "%a@." Calculus.pp_error e;
      false
  in
  match name with
  | "ticket" -> show (Ticket_lock.certify ~focus:[ 1; 2 ] ())
  | "mcs" -> show (Mcs_lock.certify ~focus:[ 1; 2 ] ())
  | "local-queue" -> show (Queue_local.certify ())
  | "shared-queue" -> show (Queue_shared.certify ())
  | "queue-stack" -> show (Queue_shared.full_stack_certify ())
  | "qlock" -> show (Qlock.certify ())
  | "ipc" -> show (Ipc.certify ())
  | "rwlock" -> show (Rwlock.certify ())
  | other ->
    Format.eprintf "unknown object %S@." other;
    false

let objects =
  [ "ticket"; "mcs"; "local-queue"; "shared-queue"; "queue-stack"; "qlock";
    "ipc"; "rwlock" ]

let verify_cmd =
  let run name =
    let names = if name = "all" then objects else [ name ] in
    let ok = List.for_all (fun n ->
        Format.printf "== %s ==@." n;
        verify_one n) names
    in
    if ok then 0 else 1
  in
  let obj_arg =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"OBJECT"
             ~doc:"Object to certify: ticket, mcs, local-queue, shared-queue, \
                   queue-stack, qlock, ipc, or all.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Build the certificate for one object")
    Term.(const run $ obj_arg)

(* ---------------- cache ---------------- *)

let cache_cmd =
  let open_cache dir k =
    match Ccal_verify.Cache.create ?dir () with
    | c -> k c
    | exception Sys_error msg ->
      Format.eprintf "cannot open cache: %s@." msg;
      2
  in
  let stats_cmd =
    let run dir =
      open_cache dir (fun c ->
          let d = Ccal_verify.Cache.disk_stats c in
          Format.printf "dir:     %s@.entries: %d@.bytes:   %d@."
            (Ccal_verify.Cache.dir c) d.Ccal_verify.Cache.entries
            d.Ccal_verify.Cache.bytes;
          0)
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Print the certificate-cache location and size")
      Term.(const run $ cache_dir_arg)
  in
  let clear_cmd =
    let run dir =
      open_cache dir (fun c ->
          let removed = Ccal_verify.Cache.clear c in
          Format.printf "removed %d entries from %s@." removed
            (Ccal_verify.Cache.dir c);
          0)
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Delete every certificate-cache entry")
      Term.(const run $ cache_dir_arg)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear the on-disk certificate cache")
    [ stats_cmd; clear_cmd ]

(* ---------------- pipeline ---------------- *)

let pipeline_cmd =
  let run common seeds =
    with_common common @@ fun c ctx ->
    let module V = Ccal_verify in
    (match Ticket_lock.certify ~memory:c.memory ~focus:[ 1; 2 ] () with
      | Error e ->
        Format.eprintf "%a@." Calculus.pp_error e;
        1
      | Ok cert -> (
        Format.printf "%a@.@." Calculus.pp_cert cert;
        let client i =
          Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
              Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
        in
        (* As in [Stack.verify_all_ctx]: an explicit strategy derives the
           suite from the soundness game itself — the linked
           client+implementation threads over the certificate's
           underlay — so DPOR walks the very game it will replay. *)
        let scheds =
          match c.strategy with
          | None -> Sched.default_suite ~seeds
          | Some _ ->
            let j = cert.Calculus.judgment in
            let threads =
              List.map
                (fun i -> i, Prog.Module.link j.Calculus.impl (client i))
                j.Calculus.focus
            in
            V.Explore.scheds_of_strategy_ctx ~ctx j.Calculus.underlay threads
        in
        match V.Linearizability.refine_cert_ctx ~ctx cert ~client ~scheds with
        | V.Budget.Complete (Ok r) ->
          Format.printf "soundness: %d schedules refined -- OK@."
            r.Refinement.scheds_checked;
          0
        | V.Budget.Exhausted { spent; partial = Ok r } ->
          Format.printf
            "soundness: %d schedules refined before the budget ran out \
             (%a)@."
            r.Refinement.scheds_checked V.Budget.pp_spent spent;
          0
        | V.Budget.Complete (Error f)
        | V.Budget.Exhausted { partial = Error f; _ } ->
          Format.eprintf "%a@." Refinement.pp_failure f;
          1))
  in
  let seeds =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N" ~doc:"Random schedulers.")
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Run the Fig. 5 ticket-lock pipeline end to end")
    Term.(const run $ common_term $ seeds)

(* ---------------- explore ---------------- *)

(* Benchmark games for comparing the DPOR explorer against exhaustive
   enumeration.  Each returns (layer, threads).  Under [--memory tso]
   the machine-level games (ticket, mcs, litmus:NAME) run over the
   store-buffer layer, and the exhaustive side enumerates the flusher
   pseudo-threads as schedulable tids. *)
let explore_game name nthreads memory =
  let lock_client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
  in
  let queue_client i =
    Prog.bind (Prog.call "enQ_s" [ vi 0; vi (10 * i) ]) (fun _ ->
        Prog.call "deQ_s" [ vi 0 ])
  in
  let spawn client = List.init nthreads (fun k -> k + 1, client (k + 1)) in
  match name with
  | "lock" ->
    Some (Lock_intf.layer "Llock", spawn lock_client)
  | "ticket" ->
    let m = Ticket_lock.c_module () in
    Some
      (Ticket_lock.l0 ~memory (), spawn (fun i -> Prog.Module.link m (lock_client i)))
  | "mcs" ->
    let m = Mcs_lock.c_module () in
    Some
      (Mcs_lock.l0 ~memory (), spawn (fun i -> Prog.Module.link m (lock_client i)))
  | "queue" ->
    let m =
      Ccal_clight.Csem.module_of_fns [ Queue_shared.deq_fn; Queue_shared.enq_fn ]
    in
    Some
      (Queue_shared.underlay (), spawn (fun i -> Prog.Module.link m (queue_client i)))
  | "queue-atomic" ->
    Some (Queue_shared.overlay (), spawn queue_client)
  | "kv-ht" -> Some (Ccal_kv.Kv_stack.ht_game ~shards:2 ~threads:nthreads ())
  | "kv-sym" -> Some (Ccal_kv.Kv_stack.sym_game ~shards:2 ~threads:nthreads ())
  | "kv-cache" ->
    Some (Ccal_kv.Kv_stack.cache_game ~entries:2 ~threads:nthreads ())
  | "kv-composed" ->
    Some (Ccal_kv.Kv_stack.composed_game ~shards:2 ~entries:2 ~threads:nthreads ())
  | "wal" | "durable-kv" ->
    (* The crash-enabled disk games (DESIGN.md S30): the underlay exports
       the crash primitive, so the schedule space includes the crash
       pseudo-thread's move and the explorers enumerate power loss at
       every point like any other interleaving. *)
    let module D = Ccal_disk in
    let modul, client =
      if name = "wal" then D.Wal.module_ (), D.Wal.client
      else D.Durable_kv.module_ (), D.Durable_kv.client
    in
    Some
      ( D.Wal.underlay ~crashes:true (),
        spawn (fun i -> Prog.Module.link modul (client i)) )
  | _ -> (
    (* litmus:<NAME> — the conformance corpus over the mode's machine
       layer, e.g. litmus:SB, litmus:IRIW (CI's memory-model leg). *)
    match String.split_on_char ':' name with
    | [ "litmus"; t ] ->
      Option.map
        (fun (t : Ccal_machine.Litmus.test) ->
          Ccal_machine.Tso.machine_layer memory, t.Ccal_machine.Litmus.threads)
        (Ccal_machine.Litmus.find t)
    | _ -> None)

let explore_cmd =
  let run common obj nthreads depth mode no_oracle =
    with_common common @@ fun c ctx ->
    let module V = Ccal_verify in
    let module Engine = V.Ctx.Engine in
    let independence =
      match mode with
      | "events" -> Some Ccal_verify.Dpor.Commuting_events
      | "exact" -> Some Ccal_verify.Dpor.Exact
      | _ -> None
    in
    (* The explore subcommand measures a DPOR-family engine against the
       exhaustive oracle, so only those engines make sense here; the
       oracle itself and the random suite are rejected by name rather
       than silently swapped for the default. *)
    let engine =
      match c.strategy with
      | None -> Ok Engine.default
      | Some e -> (
        match e.Engine.algo with
        | Engine.Dpor | Engine.Optimal -> Ok e
        | Engine.Exhaustive | Engine.Random ->
          Error
            (Printf.sprintf
               "strategy %S is not an exploration engine for this \
                subcommand (expected dpor[:DEPTH] or \
                optimal[:DEPTH][,dedup][,sym]; the exhaustive oracle is \
                the comparison baseline)"
               (Engine.to_string e)))
    in
    match explore_game obj nthreads c.memory, independence, engine with
    | None, _, _ ->
      Format.eprintf
        "unknown game %S (expected lock, ticket, mcs, queue, queue-atomic, \
         kv-ht, kv-sym, kv-cache, kv-composed, wal, durable-kv or \
         litmus:NAME)@."
        obj;
      2
    | _, None, _ ->
      Format.eprintf "unknown mode %S (expected exact or events)@." mode;
      2
    | _, _, Error msg ->
      Format.eprintf "%s@." msg;
      2
    | Some (layer, threads), Some independence, Ok engine ->
      let label = Engine.to_string { engine with Engine.depth } in
      let header () =
        Format.printf "game %s: %d threads, depth %d, %s independence, %s@."
          obj nthreads depth
          (match independence with
          | V.Dpor.Exact -> "exact"
          | V.Dpor.Commuting_events -> "commuting-events")
          (Memory.to_string c.memory)
      in
      (match
         V.Dpor.explore_ctx ~ctx ~independence ~engine ~depth layer threads
       with
      | V.Budget.Exhausted { spent; partial } ->
        header ();
        Format.printf "  %s: %a@." label V.Dpor.pp_stats partial.V.Dpor.stats;
        Format.printf
          "  budget exhausted (%a) after %d of %d replays; comparison \
           skipped@."
          V.Budget.pp_spent spent partial.V.Dpor.stats.V.Dpor.schedules_run
          (List.length partial.V.Dpor.prefixes);
        0
      | V.Budget.Complete dpor when no_oracle ->
        header ();
        Format.printf "  %s: %a@." label V.Dpor.pp_stats dpor.V.Dpor.stats;
        Format.printf "  complete (oracle comparison skipped)@.";
        0
      | V.Budget.Complete dpor -> (
        (* Pseudo-threads (TSO flushers, the crash thread) are
           scheduler-movable too: the exhaustive side must enumerate
           their tids, or the comparison would miss every delayed-commit
           or crash interleaving. *)
        let effective =
          threads @ Game.pseudo_threads ~memory:c.memory layer threads
        in
        let tids = List.map fst effective in
        match
          V.Explore.run_all_ctx ~ctx layer threads
            (V.Explore.exhaustive_scheds ~tids ~depth)
        with
        | V.Budget.Exhausted { spent; partial } ->
          header ();
          Format.printf "  %s: %a@." label V.Dpor.pp_stats dpor.V.Dpor.stats;
          Format.printf
            "  budget exhausted (%a) after %d exhaustive runs; comparison \
             skipped@."
            V.Budget.pp_spent spent (List.length partial);
          0
        | V.Budget.Complete exhaustive ->
          let canon l =
            match independence with
            | V.Dpor.Exact -> l
            | V.Dpor.Commuting_events -> V.Dpor.canonical_log l
          in
          let dpor_logs =
            Log.dedup
              (List.map (fun (o : Game.outcome) -> canon o.Game.log)
                 dpor.V.Dpor.outcomes)
          in
          let exh_logs =
            Log.dedup (List.map canon (V.Explore.all_logs exhaustive))
          in
          let subset a b = List.for_all (fun l -> List.exists (Log.equal l) b) a in
          let agree = subset dpor_logs exh_logs && subset exh_logs dpor_logs in
          header ();
          Format.printf "  %s: %a@." label V.Dpor.pp_stats dpor.V.Dpor.stats;
          Format.printf "  exhaustive: %d schedules run; %d distinct logs@."
            (List.length exhaustive) (List.length exh_logs);
          Format.printf "  log sets %s@."
            (if agree then "agree" else "DISAGREE (DPOR is unsound here)");
          if agree then 0 else 1))
  in
  let obj =
    Arg.(value & pos 0 string "lock"
         & info [] ~docv:"GAME"
             ~doc:"Benchmark game: lock (atomic Llock interface), ticket or \
                   mcs (concrete spinlock implementations over L0), queue \
                   (lock-based shared queue), queue-atomic (the Lq_high \
                   overlay), kv-ht (sharded hash table over bucket locks), \
                   kv-sym (the symmetric N-worker variant every thread of \
                   which differs only in its own tid — the symmetry-\
                   reduction gate game), kv-cache (block cache over the \
                   flat disk) or kv-composed (cache stacked on the hash \
                   table).")
  in
  let nthreads =
    Arg.(value & opt int 3
         & info [ "threads" ] ~docv:"N" ~doc:"Number of competing threads.")
  in
  let depth =
    Arg.(value & opt int 5
         & info [ "depth" ] ~docv:"D" ~doc:"Scheduler decision depth.")
  in
  let mode =
    Arg.(value & opt string "exact"
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Independence mode: exact (raw log-set equality) or events \
                   (object-based commutation, compared up to canonical \
                   reordering).")
  in
  let no_oracle =
    Arg.(value & flag
         & info [ "no-oracle" ]
             ~doc:"Skip the exhaustive-oracle comparison and report the \
                   engine's stats only.  The way to probe depths where \
                   enumerating all |tids|^depth prefixes is infeasible \
                   (the $(b,make check-optimal) depth-8 gate).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Compare a DPOR-family engine against exhaustive enumeration")
    Term.(const run $ common_term $ obj $ nthreads $ depth $ mode $ no_oracle)

(* ---------------- litmus ---------------- *)

let litmus_cmd =
  let run common test_name table_file =
    with_common common @@ fun _c ctx ->
    let tests =
      match test_name with
      | "all" -> Ok Ccal_machine.Litmus.tests
      | n -> (
        match Ccal_machine.Litmus.find n with
        | Some t -> Ok [ t ]
        | None ->
          Error
            (Printf.sprintf "unknown litmus test %S (try %s)" n
               (String.concat ", "
                  (List.map
                     (fun (t : Ccal_machine.Litmus.test) ->
                       t.Ccal_machine.Litmus.name)
                     Ccal_machine.Litmus.tests))))
    in
    match tests with
    | Error msg ->
      Format.eprintf "%s@." msg;
      2
    | Ok tests ->
      let module V = Ccal_verify in
      (* The conformance suite is inherently dual-mode: each test runs
         under SC and TSO with the same knobs, whatever --memory says. *)
      let pairs = V.Litmus.run_both ~tests ~ctx () in
      List.iter
        (fun (sc, tso) ->
          Format.printf "%a@.%a@." V.Litmus.pp_report sc V.Litmus.pp_report
            tso)
        pairs;
      (match table_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        let fmt = Format.formatter_of_out_channel oc in
        Format.fprintf fmt "%a" V.Litmus.pp_table pairs;
        Format.pp_print_flush fmt ();
        close_out oc;
        Format.printf "per-mode outcome table written to %s@." path);
      if List.for_all (fun (sc, tso) -> V.Litmus.ok sc && V.Litmus.ok tso) pairs
      then 0
      else 1
  in
  let test_name =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"TEST"
             ~doc:"Litmus test to run (SB, SB+mfence, MP, LB, S, R, \
                   R+mfence, 2+2W, IRIW) or $(b,all).")
  in
  let table_file =
    Arg.(value & opt (some string) None
         & info [ "table" ] ~docv:"FILE"
             ~doc:"Write the per-mode outcome table (one row per test and \
                   outcome, reachable yes/no under each mode) to $(docv) — \
                   the artifact CI's memory-model leg uploads.")
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run the memory-model litmus conformance suite under SC and TSO")
    Term.(const run $ common_term $ test_name $ table_file)

(* ---------------- crash ---------------- *)

let crash_cmd =
  let run common edge_name nthreads shards crashes report_file =
    with_common common @@ fun _c ctx ->
    let module V = Ccal_verify in
    let module D = Ccal_disk in
    let edges =
      match edge_name with
      | "all" ->
        Ok
          [ D.Wal.crash_edge ~threads:nthreads ();
            D.Durable_kv.crash_edge ~threads:nthreads ~shards () ]
      | "wal" -> Ok [ D.Wal.crash_edge ~threads:nthreads () ]
      | "durable-kv" ->
        Ok [ D.Durable_kv.crash_edge ~threads:nthreads ~shards () ]
      | "unsynced" ->
        (* The negative control: sync acknowledges without reaching the
           platter, so the certificate must fail with a named crash
           point. *)
        Ok [ D.Wal.crash_edge ~threads:nthreads ~unsynced:true () ]
      | other ->
        Error
          (Printf.sprintf
             "unknown edge %S (expected all, wal, durable-kv or unsynced)"
             other)
    in
    match edges with
    | Error msg ->
      Format.eprintf "%s@." msg;
      2
    | Ok edges -> (
      let report r = write_report report_file V.Crash.pp_report_canonical r in
      match V.Crash.check_ctx ~ctx ~crashes edges with
      | V.Budget.Complete (Ok r) ->
        Format.printf "%a" V.Crash.pp_report r;
        report r;
        0
      | V.Budget.Exhausted { spent; partial = Ok r } ->
        Format.printf "%a" V.Crash.pp_report r;
        Format.printf "budget exhausted (%a) after %d of %d edges@."
          V.Budget.pp_spent spent
          (List.length r.V.Crash.edges)
          (List.length edges);
        report r;
        0
      | V.Budget.Complete (Error f)
      | V.Budget.Exhausted { partial = Error f; _ } ->
        Format.eprintf "%a@." V.Crash.pp_failure f;
        1)
  in
  let edge_name =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"EDGE"
             ~doc:"Crash edge to certify: $(b,all) (wal + durable-kv, the \
                   default), $(b,wal), $(b,durable-kv), or $(b,unsynced) \
                   (the deliberately broken no-sync WAL — must fail with a \
                   named crash point; exit 1).")
  in
  let nthreads =
    Arg.(value & opt int 2
         & info [ "threads" ] ~docv:"N"
             ~doc:"Client threads per edge game (each appends, syncs, \
                   appends again on its own keys).")
  in
  let shards =
    Arg.(value & opt int 2
         & info [ "shards" ] ~docv:"N"
             ~doc:"Hash-table shard count of the durable-kv edge.")
  in
  let crashes =
    Arg.(value & opt int 4
         & info [ "crashes" ] ~docv:"M"
             ~doc:"In-flight bound up to which the (keep, tear) mask \
                   lattice is enumerated in full at each crash point; \
                   larger in-flight sets fall back to the deterministic \
                   boundary sample.")
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:"Certify crash refinement of the WAL and durable-kv edges")
    Term.(const run $ common_term $ edge_name $ nthreads $ shards $ crashes
          $ report_file_arg)

(* ---------------- inventory ---------------- *)

let inventory_cmd =
  let run () =
    let layer_line (l : Layer.t) =
      Format.printf "  %-12s %s@." l.Layer.name
        (String.concat ", " (Layer.prim_names l))
    in
    Format.printf "layer interfaces (bottom to top):@.";
    layer_line (Ccal_machine.Mx86.layer ());
    layer_line (Ticket_lock.l0 ());
    layer_line (Ticket_lock.overlay ());
    layer_line (Queue_shared.underlay ());
    layer_line (Queue_shared.overlay ());
    layer_line (Qlock.overlay ());
    layer_line (Ipc.overlay ());
    Format.printf "@.objects: %s@." (String.concat ", " objects);
    0
  in
  Cmd.v
    (Cmd.info "inventory" ~doc:"Print the layer and object inventory")
    Term.(const run $ const ())

let () =
  let doc = "certified concurrent abstraction layers (PLDI'18 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "ccal" ~version:"1.0.0" ~doc)
          [ stack_cmd; kv_cmd; verify_cmd; pipeline_cmd; explore_cmd;
            litmus_cmd; crash_cmd; inventory_cmd; cache_cmd ]))
