(** The async-disk machine layer (DESIGN.md S30).

    A page store with asynchronous durability: writes queue into an
    in-flight set, reads see the volatile view, [d_sync] group-commits
    the whole set, and the crash primitive ({!Ccal_core.Durability.crash_tag})
    commits/tears/drops in-flight writes per its masks and halts the
    machine — further disk calls of real threads block forever.  The
    state is reconstructed from the log by {!replay} on every call, like
    every object in the repo. *)

open Ccal_core

val read_tag : string
val write_tag : string
val sync_tag : string

val crash_tag : string
(** = {!Ccal_core.Durability.crash_tag}. *)

type state = private {
  durable : Value.t Map.Make(Int).t;  (** the platter *)
  inflight : (int * Value.t) list;  (** queued writes, oldest first *)
  crashed : bool;
}

val initial : state
val unwritten : Value.t
(** What a never-written page reads as ([Vint 0]). *)

val torn : Value.t -> Value.t
(** The platter image of a torn write — recognisable garbage that any
    checksummed decoder rejects. *)

val is_torn : Value.t -> bool

val durable_page : state -> int -> Value.t option
val inflight : state -> (int * Value.t) list
val visible : state -> int -> Value.t
(** The volatile view: newest in-flight write wins over the platter. *)

val commit_all : state -> state
(** What [d_sync] does: commit the in-flight set in order. *)

val crash_commit : keep:int -> tear:int -> state -> state
(** The crash transition: bit [i] of [keep] commits in-flight write [i]
    (oldest first; torn when bit [i] of [tear] is also set), clear bits
    drop.  Shared by the in-game crash primitive and the certifier's
    analytic enumeration. *)

val of_durable : (int * Value.t) list -> state
(** A fresh (non-crashed, nothing in flight) state over the given
    platter — what recovery boots from. *)

val replay : state Replay.t
val replay_log : Log.t -> (state, string) result

val changes_disk : Event.t -> bool
(** Is this event a write or sync — i.e. a crash point boundary? *)

val prims : ?crashes:bool -> unit -> (string * Layer.prim) list
(** The disk primitives, for mixing into a lock underlay via
    [Lock_intf.layer ~extra].  [crashes] (default false) additionally
    exports the crash primitive, making any game over the layer
    crashable via the synthesized pseudo-thread
    ({!Ccal_core.Game.crash_threads}); the certifier instead keeps its
    underlay crash-free and enumerates crashes analytically. *)

val layer : ?crashes:bool -> unit -> Layer.t
(** A standalone disk layer (unit tests, litmus-style exploration). *)
