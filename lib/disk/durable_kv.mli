(** The durable KV edge (DESIGN.md S30): the S28 sharded hash table
    retargeted onto the WAL, so every mutation is logged before it is
    applied and [dsync] is the durability point. *)

open Ccal_core
open Ccal_verify

val get_tag : string
val put_tag : string
val del_tag : string
val sync_tag : string

val tombstone : int
(** The logged value of a delete ([-1]). *)

val module_ : ?shards:int -> ?unsynced:bool -> unit -> Prog.Module.t
(** [dget]/[dput]/[ddel]/[dsync] stacked over the WAL module unioned
    with the hashtable under private in-memory tags. *)

val underlay : ?bound:int -> ?crashes:bool -> unit -> Layer.t
(** = {!Wal.underlay} ([Llock+disk]). *)

val recovered_map : Wal.op list -> (int * int) list
(** Fold a surviving record prefix into the abstract map (tombstones
    delete), sorted by key. *)

val client : int -> Prog.t

val crash_edge :
  ?threads:int -> ?shards:int -> ?unsynced:bool -> unit -> Crash.edge
(** The durable-kv crash-refinement edge (default 2 threads, 2 shards). *)
