(** The write-ahead log object over the async disk (DESIGN.md S30).

    Checksummed records at page = LSN (1-based, contiguous), one lock
    serialising the log head (its published word carries the next LSN
    and the ghost linearization descriptor), group commit on [w_sync],
    and a recovery scan that truncates at the first torn, invalid or
    out-of-sequence record. *)

open Ccal_core
open Ccal_verify

val append_tag : string
val sync_tag : string

val wal_lock : int
(** Lock id of the log head — disjoint from the hashtable's meta/bucket
    range. *)

type op = Crash.op = { lsn : int; key : int; value : int }

val checksum : int -> int -> int -> int
val record : op -> Value.t
val decode : Value.t -> op option
(** [None] on a torn, checksum-invalid or malformed page. *)

val module_ : ?unsynced:bool -> unit -> Prog.Module.t
(** [w_append]/[w_sync] as programs over [Llock+disk].  [unsynced]
    (default false) is the deliberately broken no-WAL variant: [w_sync]
    skips the [d_sync] but still acknowledges — the bug the crash
    certificate catches. *)

val underlay : ?bound:int -> ?crashes:bool -> unit -> Layer.t
(** The lock layer with the disk primitives mixed in ([Llock+disk]);
    [crashes] additionally exports the crash primitive for in-game
    crash exploration. *)

val overlay : unit -> Layer.t
(** The atomic WAL spec [Lwal]: an append is one event returning its
    LSN, a sync one event returning the last appended LSN. *)

val r_wal : Sim_rel.t
(** Maps the log-head lock release carrying a ghost descriptor to the
    corresponding atomic overlay event; everything else erases. *)

val recover : Disk.state -> op list
(** Scan the platter from page 1, truncating at the first invalid
    record.  Volatile state is never consulted. *)

val repaired : Disk.state -> Disk.state
(** The platter recovery would rewrite: exactly the valid prefix.
    [recover (repaired st) = recover st]. *)

val appended_of_log : Log.t -> op list
(** The records the log's disk writes appended, in log order. *)

val acked_of_log : Log.t -> int
(** The highest LSN a completed [w_sync] acknowledged in the log. *)

val recover_prefix : Log.t -> keep:int -> tear:int -> (op list, string) result
(** Replay the prefix's disk, crash it under the masks, recover. *)

val client : int -> Prog.t
(** The crash-game workload of thread [i]: append, sync, append on
    per-thread keys. *)

val crash_edge : ?threads:int -> ?unsynced:bool -> unit -> Crash.edge
(** The WAL crash-refinement edge over [threads] clients (default 2). *)
