open Ccal_core

(* The async-disk machine layer (DESIGN.md S30).

   A page store with asynchronous durability: [d_write] only queues the
   page into an in-flight set, [d_read] sees the volatile view (newest
   in-flight write wins over the platter), and [d_sync] commits the
   whole in-flight set in order — group commit.  The crash primitive
   ([Durability.crash_tag]) is the machine's environment step: it
   commits the in-flight writes its keep mask selects (garbled when the
   tear mask also selects them), drops the rest, and halts the machine —
   every later disk call of a real thread blocks forever, so a crashed
   play ends as a deadlock of exactly the threads the power loss cut off.

   Like every object in the repo the disk is stateless: the state below
   is reconstructed from the global event log by a replay function on
   every call. *)

let read_tag = "d_read"
let write_tag = "d_write"
let sync_tag = "d_sync"
let crash_tag = Durability.crash_tag

module Imap = Map.Make (Int)

type state = {
  durable : Value.t Imap.t;  (** the platter: page -> value *)
  inflight : (int * Value.t) list;  (** queued writes, oldest first *)
  crashed : bool;
}

let initial = { durable = Imap.empty; inflight = []; crashed = false }

let unwritten = Value.int 0

(* A torn write: the platter holds recognisable garbage instead of the
   queued value, so any checksummed decoder rejects it. *)
let torn_marker = 0x7EA2

let torn v = Value.pair (Value.int torn_marker) v

let is_torn = function
  | Value.Vpair (Value.Vint m, _) -> m = torn_marker
  | _ -> false

let durable_page st p = Imap.find_opt p st.durable

let inflight st = st.inflight

let visible st p =
  let rec newest = function
    | [] -> ( match durable_page st p with Some v -> v | None -> unwritten)
    | (p', v) :: older -> if p' = p then v else newest older
  in
  newest (List.rev st.inflight)

let commit_all st =
  {
    st with
    durable =
      List.fold_left (fun d (p, v) -> Imap.add p v d) st.durable st.inflight;
    inflight = [];
  }

(* The crash transition over the in-flight set, oldest first: bit [i] of
   [keep] commits write [i] (torn when bit [i] of [tear] is also set),
   a clear bit drops it.  Shared between the in-game crash primitive and
   the certifier's analytic crash-point enumeration. *)
let crash_commit ~keep ~tear st =
  let durable, _ =
    List.fold_left
      (fun (d, i) (p, v) ->
        let d =
          if Durability.keeps ~mask:keep i then
            Imap.add p (if Durability.keeps ~mask:tear i then torn v else v) d
          else d
        in
        (d, i + 1))
      (st.durable, 0) st.inflight
  in
  { durable; inflight = []; crashed = true }

let of_durable pages =
  {
    initial with
    durable = List.fold_left (fun d (p, v) -> Imap.add p v d) Imap.empty pages;
  }

let replay : state Replay.t =
  Replay.fold ~init:initial ~step:(fun st (e : Event.t) ->
      if String.equal e.tag write_tag then
        match e.args with
        | [ Value.Vint p; v ] -> Ok { st with inflight = st.inflight @ [ (p, v) ] }
        | _ -> Error "d_write: bad arguments"
      else if String.equal e.tag sync_tag then Ok (commit_all st)
      else if String.equal e.tag crash_tag then
        match e.args with
        | [ Value.Vint keep; Value.Vint tear ] -> Ok (crash_commit ~keep ~tear st)
        | _ -> Error "d_crash: bad arguments"
      else Ok st)

let replay_log l = replay l

let changes_disk (e : Event.t) =
  String.equal e.tag write_tag || String.equal e.tag sync_tag

(* ---- the primitives ---- *)

let guard_crashed c st k =
  (* After the crash the machine is gone: a real thread's disk call can
     never fire again (the play deadlocks); only the crash pseudo-thread
     is past caring. *)
  if st.crashed && c >= 0 then Layer.Block else k ()

let read_prim =
  Layer.shared_prim read_tag (fun c args log ->
      match args with
      | [ Value.Vint _ ] -> (
        match replay log with
        | Error msg -> Layer.Stuck msg
        | Ok st ->
          guard_crashed c st @@ fun () ->
          let p = match args with [ Value.Vint p ] -> p | _ -> assert false in
          let ret = visible st p in
          Layer.Step
            { events = [ Event.make ~args ~ret c read_tag ]; ret; crit = Layer.Keep })
      | _ -> Layer.Stuck "d_read: expected one page argument")

let write_prim =
  Layer.shared_prim write_tag (fun c args log ->
      match args with
      | [ Value.Vint _; _ ] -> (
        match replay log with
        | Error msg -> Layer.Stuck msg
        | Ok st ->
          guard_crashed c st @@ fun () ->
          Layer.Step
            {
              events = [ Event.make ~args ~ret:Value.unit c write_tag ];
              ret = Value.unit;
              crit = Layer.Keep;
            })
      | _ -> Layer.Stuck "d_write: expected page and value arguments")

let sync_prim =
  Layer.shared_prim sync_tag (fun c args log ->
      match args with
      | [] -> (
        match replay log with
        | Error msg -> Layer.Stuck msg
        | Ok st ->
          guard_crashed c st @@ fun () ->
          let ret = Value.int (List.length st.inflight) in
          Layer.Step
            { events = [ Event.make ~args ~ret c sync_tag ]; ret; crit = Layer.Keep })
      | _ -> Layer.Stuck "d_sync: expected no arguments")

let crash_prim =
  Layer.shared_prim crash_tag (fun c args log ->
      if c >= 0 then
        Layer.Stuck "d_crash: only the crash pseudo-thread may crash the machine"
      else
        match args with
        | [ Value.Vint _; Value.Vint _ ] -> (
          match replay log with
          | Error msg -> Layer.Stuck msg
          | Ok st ->
            if st.crashed then Layer.Block
            else
              Layer.Step
                {
                  events = [ Event.make ~args ~ret:Value.unit c crash_tag ];
                  ret = Value.unit;
                  crit = Layer.Keep;
                })
        | _ -> Layer.Stuck "d_crash: expected keep and tear masks")

let prims ?(crashes = false) () =
  [ read_prim; write_prim; sync_prim ] @ if crashes then [ crash_prim ] else []

let layer ?crashes () =
  Layer.make
    (match crashes with
    | Some true -> "Ldisk+crash"
    | _ -> "Ldisk")
    (prims ?crashes ())
