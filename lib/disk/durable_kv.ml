open Ccal_core
open Ccal_verify
open Ccal_kv

let ( let* ) = Prog.( let* )

(* The durable KV edge (DESIGN.md S30): lib/kv's sharded hash table
   retargeted onto the WAL.  Every mutation is logged before it is
   applied to the in-memory table — write-ahead in the program order of
   the calling thread — and [d_sync] (via [w_sync]) is the durability
   point.  Recovery folds the WAL's surviving record prefix back into a
   map; tombstones are records with value [-1].

   The in-memory table is the S28 hashtable verbatim, instantiated under
   private tags so its names cannot collide with a client-visible map
   layer, with bucket locks (meta 0, buckets 1..shards) disjoint from
   the WAL's log-head lock by construction. *)

let get_tag = "dget"
let put_tag = "dput"
let del_tag = "ddel"
let sync_tag = "dsync"

let tombstone = -1

let mem_tags =
  { Hashtable.get = "m_get"; put = "m_put"; del = "m_del"; resize = "m_resize" }

let bad_args = Prog.call "dkv_bad_args" []

let bodies =
  [
    ( get_tag,
      fun args ->
        match args with
        | [ Value.Vint _ ] -> Prog.call mem_tags.Hashtable.get args
        | _ -> bad_args );
    ( put_tag,
      fun args ->
        match args with
        | [ Value.Vint _; Value.Vint v ] when v >= 0 ->
          (* logged before applied *)
          let* _ = Prog.call Wal.append_tag args in
          Prog.call mem_tags.Hashtable.put args
        | _ -> bad_args );
    ( del_tag,
      fun args ->
        match args with
        | [ Value.Vint k ] ->
          let* _ =
            Prog.call Wal.append_tag [ Value.int k; Value.int tombstone ]
          in
          Prog.call mem_tags.Hashtable.del args
        | _ -> bad_args );
    ( sync_tag,
      fun args ->
        match args with [] -> Prog.call Wal.sync_tag [] | _ -> bad_args );
  ]

let module_ ?(shards = 2) ?(unsynced = false) () =
  Prog.Module.stack
    ~lower:
      (Prog.Module.union
         (Wal.module_ ~unsynced ())
         (Hashtable.module_ ~tags:mem_tags ~shards ()))
    ~upper:(Prog.Module.of_bodies bodies)

let underlay ?bound ?crashes () = Wal.underlay ?bound ?crashes ()

(* The abstract state recovery rebuilds: fold the surviving record
   prefix, tombstones deleting.  Sorted by key — a canonical form for
   comparisons. *)
let recovered_map ops =
  let m =
    List.fold_left
      (fun m (o : Wal.op) ->
        if o.value = tombstone then List.remove_assoc o.key m
        else (o.key, o.value) :: List.remove_assoc o.key m)
      [] ops
  in
  List.sort compare m

(* ---- clients and the crash edge ---- *)

(* Thread 1 also deletes its key after syncing; everyone else puts,
   syncs, puts again — acknowledged and unacknowledged mutations in
   every play. *)
let client i =
  let put k v = Prog.call put_tag [ Value.int k; Value.int v ] in
  let sync = Prog.call sync_tag [] in
  if i = 1 then
    Prog.seq (put 1 11) (Prog.seq sync (Prog.call del_tag [ Value.int 1 ]))
  else Prog.seq (put i (10 * i)) (Prog.seq sync (put (10 + i) (100 + i)))

let threads_of ~threads modul =
  List.init threads (fun idx ->
      let i = idx + 1 in
      (i, Prog.Module.link modul (client i)))

let crash_edge ?(threads = 2) ?(shards = 2) ?(unsynced = false) () =
  let modul = module_ ~shards ~unsynced () in
  let base = Wal.crash_edge ~threads ~unsynced () in
  {
    base with
    Crash.name = (if unsynced then "durable-kv-unsynced" else "durable-kv");
    threads = threads_of ~threads modul;
    max_steps = 8_000;
    key_salt =
      Printf.sprintf "durable-kv:shards=%d:%s" shards
        (if unsynced then "unsynced" else "synced");
  }
