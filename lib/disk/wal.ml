open Ccal_core
open Ccal_objects
open Ccal_verify

let ( let* ) = Prog.( let* )

(* The write-ahead log object (DESIGN.md S30).

   Records live at page = LSN (1-based, contiguous); a record is
   [lsn; key; value; checksum] with the checksum mixed from the other
   three fields, so a torn or garbage page is recognised.  One lock
   serialises the log head; its published word carries the next LSN plus
   the ghost operation descriptor of the hashtable idiom, so appends are
   a single disk write under the lock and the release is the
   linearization point.  [w_sync] group-commits via [d_sync] and
   acknowledges every LSN appended before it.

   Recovery never trusts volatile state: it scans the platter from page
   1 and truncates at the first missing, torn, checksum-invalid or
   out-of-sequence record. *)

let append_tag = "w_append"
let sync_tag = "w_sync"

(* Disjoint by construction from the hashtable's lock range (meta 0,
   buckets 1..shards with the small shard counts the games use). *)
let wal_lock = 64

type op = Crash.op = { lsn : int; key : int; value : int }

let checksum lsn key value = Log.mix (Log.mix (Log.mix 0x5EED lsn) key) value

let record o =
  Value.list
    [ Value.int o.lsn; Value.int o.key; Value.int o.value;
      Value.int (checksum o.lsn o.key o.value) ]

let decode = function
  | Value.Vlist [ Value.Vint lsn; Value.Vint key; Value.Vint value; Value.Vint c ]
    when lsn >= 1 && c = checksum lsn key value ->
    Some { lsn; key; value }
  | _ -> None

(* ---- lock-word encoding ----

   word: Vint 0 (initial) | Vpair (Vint next_lsn, desc); the descriptor
   is the ghost linearization-point payload: Vint 0 (none) |
   Vlist [Vint 1; lsn; key; value] (append) | Vlist [Vint 2; upto]
   (sync acknowledging every lsn <= upto). *)

let desc_append o =
  Value.list [ Value.int 1; Value.int o.lsn; Value.int o.key; Value.int o.value ]
let desc_sync upto = Value.list [ Value.int 2; Value.int upto ]
let word next d = Value.pair (Value.int next) d

let next_of = function
  | Value.Vpair (Value.Vint n, _) when n >= 1 -> n
  | _ -> 1

(* ---- implementation bodies (programs over Llock+disk) ---- *)

let acq = Prog.call Lock_intf.acq_tag [ Value.int wal_lock ]
let rel w = Prog.call Lock_intf.rel_tag [ Value.int wal_lock; w ]
let bad_args = Prog.call "wal_bad_args" []

let append_body args =
  match args with
  | [ Value.Vint key; Value.Vint value ] ->
    let* w = acq in
    let o = { lsn = next_of w; key; value } in
    let* _ = Prog.call Disk.write_tag [ Value.int o.lsn; record o ] in
    let* _ = rel (word (o.lsn + 1) (desc_append o)) in
    Prog.ret (Value.int o.lsn)
  | _ -> bad_args

(* [unsynced] is the deliberately broken no-WAL variant: it skips the
   [d_sync] but still acknowledges — exactly the bug the crash
   certificate exists to catch. *)
let sync_body ~unsynced args =
  match args with
  | [] ->
    let* w = acq in
    let n = next_of w in
    let* _ = if unsynced then Prog.ret Value.unit else Prog.call Disk.sync_tag [] in
    let* _ = rel (word n (desc_sync (n - 1))) in
    Prog.ret (Value.int (n - 1))
  | _ -> bad_args

let module_ ?(unsynced = false) () =
  Prog.Module.of_bodies
    [ (append_tag, append_body); (sync_tag, sync_body ~unsynced) ]

let underlay ?bound ?crashes () =
  Lock_intf.layer ?bound ~extra:(Disk.prims ?crashes ()) "Llock+disk"

(* ---- the overlay spec and simulation relation ----

   The atomic WAL: an append is one event returning its LSN (the count
   of preceding appends plus one), a sync one event returning the last
   appended LSN.  The release of the log-head lock with a ghost
   descriptor is the linearization point. *)

let count_appends log =
  List.length
    (List.filter
       (fun (e : Event.t) -> String.equal e.tag append_tag)
       (Log.chronological log))

let overlay () =
  Layer.make "Lwal"
    [
      Layer.event_prim append_tag (fun _ args log ->
          match args with
          | [ Value.Vint _; Value.Vint _ ] ->
            Ok (Value.int (count_appends log + 1))
          | _ -> Error "w_append: bad arguments");
      Layer.event_prim sync_tag (fun _ args log ->
          match args with
          | [] -> Ok (Value.int (count_appends log))
          | _ -> Error "w_sync: bad arguments");
    ]

let r_wal =
  Sim_rel.of_events "R_wal" (fun (e : Event.t) ->
      if not (String.equal e.tag Lock_intf.rel_tag) then []
      else
        match e.args with
        | [ Value.Vint l; Value.Vpair (_, d) ] when l = wal_lock -> (
          match d with
          | Value.Vlist [ Value.Vint 1; Value.Vint lsn; Value.Vint key; Value.Vint value ]
            ->
            [ Event.make
                ~args:[ Value.int key; Value.int value ]
                ~ret:(Value.int lsn) e.src append_tag ]
          | Value.Vlist [ Value.Vint 2; Value.Vint upto ] ->
            [ Event.make ~args:[] ~ret:(Value.int upto) e.src sync_tag ]
          | _ -> [])
        | _ -> [])

(* ---- recovery ---- *)

let recover st =
  let rec scan n acc =
    match Option.map decode (Disk.durable_page st n) with
    | Some (Some o) when o.lsn = n -> scan (n + 1) (o :: acc)
    | _ -> List.rev acc
  in
  scan 1 []

(* The repaired platter recovery would rewrite: exactly the valid record
   prefix, nothing in flight, machine back up.  [recover (repaired st) =
   recover st] is the idempotence half of the QCheck property. *)
let repaired st =
  Disk.of_durable
    (List.map (fun o -> (o.lsn, record o)) (recover st))

(* ---- log accounting for the crash edge ---- *)

let appended_of_log log =
  List.filter_map
    (fun (e : Event.t) ->
      if String.equal e.tag Disk.write_tag then
        match e.args with [ Value.Vint _; v ] -> decode v | _ -> None
      else None)
    (Log.chronological log)

let acked_of_log log =
  List.fold_left
    (fun acc (e : Event.t) ->
      if String.equal e.tag Lock_intf.rel_tag then
        match e.args with
        | [ Value.Vint l;
            Value.Vpair (_, Value.Vlist [ Value.Vint 2; Value.Vint upto ]) ]
          when l = wal_lock ->
          max acc upto
        | _ -> acc
      else acc)
    0 (Log.chronological log)

let recover_prefix log ~keep ~tear =
  match Disk.replay_log log with
  | Error msg -> Error msg
  | Ok st -> Ok (recover (Disk.crash_commit ~keep ~tear st))

(* ---- clients and the crash edge ---- *)

(* Two appends around a sync per thread, on per-thread keys: enough to
   put acknowledged, unacknowledged-but-written and in-flight records in
   every prefix the schedules reach. *)
let client i =
  let app k v =
    Prog.call append_tag [ Value.int k; Value.int v ]
  in
  Prog.seq (app (10 + i) (100 + i))
    (Prog.seq (Prog.call sync_tag []) (app (20 + i) (200 + i)))

let threads_of ~threads modul =
  List.init threads (fun idx ->
      let i = idx + 1 in
      (i, Prog.Module.link modul (client i)))

let crash_edge ?(threads = 2) ?(unsynced = false) () =
  let modul = module_ ~unsynced () in
  {
    Crash.name = (if unsynced then "wal-unsynced" else "wal");
    layer = underlay ();
    threads = threads_of ~threads modul;
    max_steps = 4_000;
    is_crash_point = Disk.changes_disk;
    inflight =
      (fun log ->
        match Disk.replay_log log with
        | Ok st -> List.length (Disk.inflight st)
        | Error _ -> 0);
    appended = appended_of_log;
    acked = acked_of_log;
    recover = recover_prefix;
    key_salt = (if unsynced then "wal:unsynced" else "wal:synced");
  }
