(* Verification telemetry (DESIGN.md S25): the user-facing facade over
   the core instrumentation engine [Ccal_core.Probe].

   The engine (counters, spans, capture/commit) lives in core so the hot
   paths — [Game.run], the machine linking bodies — can bump it without a
   dependency cycle.  This module owns everything above that: the
   human-readable stats table ([pp_stats]) and the Chrome-trace exporter
   ([write_chrome_trace]), which turn a verification run's recorded
   counters, spans and pool statistics into artifacts for the CLI's
   [--stats] / [--trace] flags and the bench's BENCH_telemetry.json.

   No JSON library ships in the container, so the trace writer emits the
   Trace Event Format by hand — the format is flat enough (one object per
   event, string/number fields only) that this stays readable.  The test
   suite round-trips the output through its own JSON parser. *)

include Ccal_core.Probe

(* ------------------------------------------------------------------ *)
(* stats table                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-span-name aggregate over the recorded spans. *)
type span_stat = {
  sname : string;
  calls : int;
  total_ms : float;
  max_ms : float;
  domains : int;  (** distinct domains that recorded this span *)
}

let span_stats () =
  let tbl : (string, int ref * int64 ref * int64 ref * (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (s : span_ev) ->
      let calls, total, mx, doms =
        match Hashtbl.find_opt tbl s.name with
        | Some entry -> entry
        | None ->
          let entry = (ref 0, ref 0L, ref 0L, Hashtbl.create 4) in
          Hashtbl.add tbl s.name entry;
          entry
      in
      Stdlib.incr calls;
      total := Int64.add !total s.dur_ns;
      if Int64.compare s.dur_ns !mx > 0 then mx := s.dur_ns;
      Hashtbl.replace doms s.dom ())
    (spans ());
  Hashtbl.fold
    (fun sname (calls, total, mx, doms) acc ->
      {
        sname;
        calls = !calls;
        total_ms = Verify_clock.ns_to_ms !total;
        max_ms = Verify_clock.ns_to_ms !mx;
        domains = Hashtbl.length doms;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare (b.total_ms, b.sname) (a.total_ms, a.sname))

let pp_stats fmt () =
  let cs = counters () in
  Format.fprintf fmt "@[<v>telemetry:@,";
  if cs = [] then Format.fprintf fmt "  (no counters recorded)@,"
  else begin
    let width =
      List.fold_left (fun w (n, _) -> max w (String.length n)) 0 cs
    in
    Format.fprintf fmt "  counters:@,";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "    %-*s %10d@," width n v)
      cs
  end;
  (match span_stats () with
  | [] -> ()
  | ss ->
    let width =
      List.fold_left (fun w s -> max w (String.length s.sname)) 0 ss
    in
    Format.fprintf fmt "  spans:  %-*s %8s %12s %12s %5s@," width "name"
      "calls" "total-ms" "max-ms" "doms";
    List.iter
      (fun s ->
        Format.fprintf fmt "          %-*s %8d %12.3f %12.3f %5d@," width
          s.sname s.calls s.total_ms s.max_ms s.domains)
      ss);
  let ps = Parallel.stats () in
  if ps.Parallel.batches > 0 then
    Format.fprintf fmt "  pool:   %d batches, %d jobs, %.3f ms busy@,"
      ps.Parallel.batches ps.Parallel.jobs_run
      (float_of_int ps.Parallel.busy_ns /. 1e6);
  Format.fprintf fmt "@]"

let stats_string () = Format.asprintf "%a" pp_stats ()

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

(* about:tracing / Perfetto "Trace Event Format": a JSON object with a
   [traceEvents] array of complete events (ph = "X", microsecond ts/dur)
   plus one metadata event per domain naming its track.  tid = the OCaml
   domain id, so each pool worker gets its own row. *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let chrome_trace_string () =
  let evs = spans () in
  (* Relative timestamps: the monotonic epoch is arbitrary and the raw
     nanosecond values overflow the float mantissa viewers use. *)
  let t0 =
    List.fold_left
      (fun acc (s : span_ev) -> if Int64.compare s.ts_ns acc < 0 then s.ts_ns else acc)
      (match evs with [] -> 0L | s :: _ -> s.ts_ns)
      evs
  in
  let us_of ns = Int64.to_float ns /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  (* one name-metadata event per domain track *)
  let doms = Hashtbl.create 8 in
  List.iter
    (fun (s : span_ev) ->
      if not (Hashtbl.mem doms s.dom) then Hashtbl.add doms s.dom ())
    evs;
  Hashtbl.fold (fun d () acc -> d :: acc) doms []
  |> List.sort compare
  |> List.iter (fun d ->
         emit
           (Printf.sprintf
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
              d d));
  List.iter
    (fun (s : span_ev) ->
      let nb = Buffer.create 32 in
      json_escape nb s.name;
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"depth\":%d}}"
           (Buffer.contents nb)
           (us_of (Int64.sub s.ts_ns t0))
           (us_of s.dur_ns) s.dom s.depth))
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace_string ()))
