(** Crash-refinement certificates (DESIGN.md S30).

    A crash edge packages a whole-machine game over an async-disk
    underlay with an accounting view of its logs; the certificate checks
    that for every schedule of the suite, every enumerated crash point
    inside the play, and every (keep, tear) mask over the writes then in
    flight, post-crash recovery is a prefix-consistent refinement of the
    pre-crash history: no invented ops, and no operation acknowledged by
    a completed [sync] lost.  The checker is generic — edges carry the
    store encoding in closures — so object libraries above the verify
    stack can define edges without a dependency cycle. *)

open Ccal_core

type op = { lsn : int; key : int; value : int }
(** One logged operation, as recovery reads it back: monotonic LSN, key,
    value ([-1] encodes a tombstone). *)

val pp_op : Format.formatter -> op -> unit

type edge = {
  name : string;
  layer : Layer.t;
      (** the {e crash-free} underlay: the certifier applies crashes
          analytically to log prefixes, so the layer must not export the
          crash primitive (which would end every play at the in-game
          crash) *)
  threads : (Event.tid * Prog.t) list;
  max_steps : int;
  is_crash_point : Event.t -> bool;
      (** events after which the platter may differ (writes, syncs); the
          run's start is always a crash point *)
  inflight : Log.t -> int;
  appended : Log.t -> op list;
  acked : Log.t -> int;
  recover : Log.t -> keep:int -> tear:int -> (op list, string) result;
  key_salt : string;
      (** names the implementation variant in cache keys, standing in for
          the closures the fingerprint cannot traverse (the {!Sim_rel}
          naming convention) *)
}

type failure = {
  f_edge : string;
  f_sched : string;
  f_index : int;
  f_keep : int;
  f_tear : int;
  f_reason : string;
}
(** A named crash-refinement failure: the schedule, the crash point (as
    an event index into the play), and the masks.  Deterministic — the
    lowest-indexed schedule's first failing point wins for every jobs
    count and cache temperature. *)

val pp_failure : Format.formatter -> failure -> unit

type edge_report = {
  edge_name : string;
  schedules : int;
  crash_points : int;
  recoveries : int;
  distinct_logs : int;
  millis : float;
}

type report = {
  edges : edge_report list;
  total_recoveries : int;
  total_millis : float;
}

val report_of : edge_report list -> report
val pp_report : Format.formatter -> report -> unit

val pp_report_canonical : Format.formatter -> report -> unit
(** Timing-free: bit-identical across jobs counts, cache temperatures
    and fault plans — what [--report] writes. *)

val masks : bound:int -> int -> (int * int) list
(** [masks ~bound m]: the (keep, tear) pairs enumerated over [m]
    in-flight writes.  The full lattice (every subset, each with no tear
    and each single torn kept write) up to [m <= bound]; past the bound,
    a deterministic boundary sample (drop all, contiguous prefixes, keep
    all, torn head/tail). *)

val check_point :
  edge -> Log.t -> keep:int -> tear:int -> (unit, string) result
(** One recovery check at one crash point of one play prefix. *)

val cache_kind : string
(** The cache kind of stored edge reports: ["crash"]. *)

val check_edge_ctx :
  ctx:Ctx.t ->
  ?crashes:int ->
  edge ->
  (edge_report, failure) result Budget.outcome
(** Certify one edge over the suite derived from [ctx.strategy].
    [crashes] bounds full mask enumeration (default 4).  Runs through
    {!Ctx}: jobs, budget, faults and cache apply; successful reports
    memoize under {!cache_kind}; failures always reproduce live. *)

val check_ctx :
  ctx:Ctx.t ->
  ?crashes:int ->
  edge list ->
  (report, failure) result Budget.outcome
(** Certify the edges in order, polling the budget between edges. *)
