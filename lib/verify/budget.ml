(* Resource budgets and cooperative cancellation for the checkers.

   A {!t} is a static spec (wall-clock ms, game steps, live heap words —
   each optional); {!start} turns it into a runtime {!token} whose
   deadline epoch is the moment of the call.  Checkers poll the token at
   schedule granularity — between games in [Parallel.budgeted_scan],
   between moves in [Game.run] via a stop closure — and return
   [Exhausted {spent; partial}] instead of hanging or raising.

   Determinism protocol (DESIGN.md S27): only *step* budgets are
   deterministic.  Game moves are charged through {!charge}, and a
   budgeted scan gives each schedule a private allowance captured at
   scan entry, then re-truncates the merged prefix sequentially, so the
   set of schedules actually counted is a pure function of the inputs —
   identical on every jobs count.  Deadline and explicit cancellation
   are wall-clock events and inherently racy; they can only shrink the
   prefix further, never change a completed verdict.

   The shared step counter doubles as an early-stop heuristic for
   in-flight workers: once collectively over budget, remaining games
   stop promptly even though the deterministic accounting happens at
   merge time. *)

open Ccal_core

type t = {
  ms : float option;  (** wall-clock deadline, milliseconds from start *)
  steps : int option;  (** total game-move budget across the run *)
  words : int option;  (** live-heap high-water mark, words *)
}

let unlimited = { ms = None; steps = None; words = None }
let is_unlimited b = b.ms = None && b.steps = None && b.words = None

let make ?ms ?steps ?words () =
  let pos_f = Option.map (fun v -> if v < 0. then 0. else v) in
  let pos_i = Option.map (fun v -> if v < 0 then 0 else v) in
  { ms = pos_f ms; steps = pos_i steps; words = pos_i words }

let pp fmt b =
  if is_unlimited b then Format.pp_print_string fmt "unlimited"
  else begin
    let fields =
      List.filter_map Fun.id
        [
          Option.map (Printf.sprintf "ms:%g") b.ms;
          Option.map (Printf.sprintf "steps:%d") b.steps;
          Option.map (Printf.sprintf "words:%d") b.words;
        ]
    in
    Format.pp_print_string fmt (String.concat "," fields)
  end

(* What a run consumed, reported inside an [Exhausted] verdict. *)
type spent = {
  elapsed_ms : float;
  steps_used : int;
  reason : [ `Deadline | `Steps | `Memory | `Cancelled ];
}

let pp_reason fmt = function
  | `Deadline -> Format.pp_print_string fmt "deadline"
  | `Steps -> Format.pp_print_string fmt "steps"
  | `Memory -> Format.pp_print_string fmt "memory"
  | `Cancelled -> Format.pp_print_string fmt "cancelled"

let pp_spent fmt s =
  Format.fprintf fmt "%a after %.0fms / %d steps" pp_reason s.reason
    s.elapsed_ms s.steps_used

(* The generic budgeted-result shape shared by Explore / Dpor /
   Linearizability / Progress; Races and Stack define richer partials. *)
type 'a outcome = Complete of 'a | Exhausted of { spent : spent; partial : 'a }

let value = function Complete v -> v | Exhausted { partial; _ } -> partial
let is_complete = function Complete _ -> true | Exhausted _ -> false

let map f = function
  | Complete v -> Complete (f v)
  | Exhausted { spent; partial } -> Exhausted { spent; partial = f partial }

(* ------------------------------------------------------------------ *)
(* runtime tokens                                                      *)
(* ------------------------------------------------------------------ *)

type token = {
  budget : t;
  started_ns : int64;
  deadline_ns : int64 option;
  used : int Atomic.t;
      (** step counter: charged racily by in-flight workers as an
          early-stop heuristic, then overwritten by [settle] with the
          deterministic total of the merged prefix *)
  cancelled : bool Atomic.t;
  tripped : [ `Deadline | `Steps | `Memory | `Cancelled ] option Atomic.t;
}

let budget_exhaustions = Probe.counter "budget.exhaustions"
let budget_cancellations = Probe.counter "budget.cancellations"

let start budget =
  let started_ns = Verify_clock.now_ns () in
  {
    budget;
    started_ns;
    deadline_ns =
      Option.map
        (fun ms -> Int64.add started_ns (Int64.of_float (ms *. 1e6)))
        budget.ms;
    used = Atomic.make 0;
    cancelled = Atomic.make false;
    tripped = Atomic.make None;
  }

(* The default token on [Ctx.default]: no limits, polling it is cheap. *)
let no_token = start unlimited

let is_unlimited_token tk =
  is_unlimited tk.budget && not (Atomic.get tk.cancelled)

let cancel tk =
  if not (Atomic.get tk.cancelled) then begin
    Atomic.set tk.cancelled true;
    Probe.incr budget_cancellations
  end

let cancelled tk = Atomic.get tk.cancelled

let charge tk n = if tk.budget.steps <> None then ignore (Atomic.fetch_and_add tk.used n)

let steps_used tk = Atomic.get tk.used

let steps_remaining tk =
  match tk.budget.steps with
  | None -> max_int
  | Some s -> max 0 (s - Atomic.get tk.used)

let trip tk reason =
  (* first trip wins; later polls keep reporting the same reason *)
  ignore (Atomic.compare_and_set tk.tripped None (Some reason))

(* [poll_wall tk] checks only the wall-clock-flavoured dimensions —
   explicit cancellation, deadline, memory — never the shared step
   counter.  This is what game stop closures use: step exhaustion inside
   a game would depend on which other games happened to finish first,
   which differs across jobs counts; deadline and cancellation are
   inherently wall-clock events and allowed to (DESIGN.md S27). *)
let poll_wall tk =
  if Atomic.get tk.cancelled then begin
    trip tk `Cancelled;
    true
  end
  else if
    match tk.deadline_ns with
    | Some d when Verify_clock.now_ns () >= d ->
      trip tk `Deadline;
      true
    | _ -> false
  then true
  else
    match tk.budget.words with
    | Some w when Gc.(quick_stat ()).heap_words > w ->
      trip tk `Memory;
      true
    | _ -> false

(* [poll tk] is the full cooperative check, step budget included; used at
   schedule granularity (between games) where the racy step counter is
   only an early-stop heuristic — the budgeted scan's merge recomputes
   the deterministic truncation point. *)
let poll tk =
  (if
     match tk.budget.steps with
     | Some s when Atomic.get tk.used >= s ->
       trip tk `Steps;
       true
     | _ -> false
   then true
   else false)
  || poll_wall tk

let exhausted = poll

(* [settle tk n] overwrites the racy shared counter with the
   deterministic step total computed by the budgeted scan's merge pass,
   so both [spent] and the next scan's entry allowance are
   jobs-identical for step budgets. *)
let settle tk n = Atomic.set tk.used n

(* A budgeted scan truncated its prefix: if no wall-clock dimension
   already tripped (or trips right now), the truncation came from the
   deterministic step allowance. *)
let note_ran_out tk =
  if not (poll_wall tk) then
    match tk.budget.steps with Some _ -> trip tk `Steps | None -> ()

let spent tk =
  Probe.incr budget_exhaustions;
  {
    elapsed_ms = Verify_clock.elapsed_ms ~since:tk.started_ns;
    steps_used = Atomic.get tk.used;
    reason =
      (match Atomic.get tk.tripped with
      | Some r -> r
      | None -> if Atomic.get tk.cancelled then `Cancelled else `Deadline);
  }

(* Stop closure for [Game.config ?stop]: the private step [allowance]
   (captured deterministically at scan entry) is checked every move via
   a local counter; the shared token's wall-clock dimensions are polled
   only every [stride] moves so the per-move overhead stays negligible. *)
let game_stop tk ~allowance =
  if allowance = max_int && is_unlimited_token tk then None
  else begin
    let moves = ref 0 in
    let stride = 256 in
    Some
      (fun () ->
        incr moves;
        !moves > allowance || (!moves mod stride = 0 && poll_wall tk))
  end
