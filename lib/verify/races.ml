open Ccal_core

(* What a budget-exhausted scan has established so far — enough to
   resume without redoing work and to reproduce the eventual verdict
   bit-identically: the count of schedules fully evaluated (the resume
   point), the clean-run count, and the non-race failure messages in
   schedule order.  Racy outcomes never appear here: a race cuts the
   scan and wins immediately. *)
type partial = { scanned : int; clean : int; others : string list }

type verdict =
  | Race_free of { runs : int }
  | Race of { sched_name : string; detail : string; log : Log.t }
  | Other_failure of string
  | Exhausted of { spent : Budget.spent; partial : partial }

(* The per-schedule body: pure in the sense that it touches only its own
   game state, so the pool can evaluate schedules on any domain. *)
type sched_outcome =
  | Clean
  | Racy of { sched_name : string; detail : string; log : Log.t }
  | Other of string
  | Interrupted  (** the game hit the budget's stop closure mid-run *)

let classify sched outcome =
  match outcome.Game.status with
  | Game.Stuck (_, Layer.Data_race, msg) ->
    Racy { sched_name = sched.Sched.name; detail = msg; log = outcome.Game.log }
  | Game.Stuck (i, Layer.Invalid_transition, msg) ->
    Other (Printf.sprintf "thread %d stuck (not a race): %s" i msg)
  | Game.Deadlock ids ->
    Other
      (Printf.sprintf "deadlock among threads %s"
         (String.concat "," (List.map string_of_int ids)))
  | Game.Out_of_fuel -> Other "out of fuel"
  | Game.Cancelled -> Interrupted
  | Game.All_done ->
    if Ccal_machine.Pushpull.race_free outcome.Game.log then Clean
    else
      Racy
        {
          sched_name = sched.Sched.name;
          detail = "completed log fails push/pull replay";
          log = outcome.Game.log;
        }

let eval ?max_steps ?memory layer threads ~stop sched =
  Probe.incr Probe.race_checks;
  let outcome =
    Game.replay (Game.config ?max_steps ?stop ?memory layer threads sched)
  in
  (outcome.Game.steps, classify sched outcome)

(* Deterministic merge.  A race anywhere wins (the lowest-indexed one —
   [Parallel.budgeted_scan] guarantees the outcome list is the sequential
   prefix up to and including the first [Racy]); non-race failures such as
   one adversarial schedule running out of fuel no longer abort the scan,
   they are collected and reported only when no schedule exposes a race. *)
let merge outcomes =
  let rec go runs others = function
    | Racy { sched_name; detail; log } :: _ -> Race { sched_name; detail; log }
    | Other msg :: rest -> go runs (msg :: others) rest
    | Clean :: rest -> go (runs + 1) others rest
    | Interrupted :: _ ->
      (* never merged: an interrupted outcome is excluded from the
         budgeted prefix and reported as [Exhausted] instead *)
      assert false
    | [] -> (
      match List.rev others with
      | [] -> Race_free { runs }
      | first :: more ->
        Other_failure
          (if more = [] then first
           else
             Printf.sprintf "%s (+%d further non-race failures, %d clean runs)"
               first (List.length more) runs))
  in
  go 0 [] outcomes

(* Cache key: game identity plus the suite identity.  When the suite is
   implicit the key uses the strategy descriptor — deliberately, so a
   warm hit skips even the DPOR walk that would materialize it. *)
let check_key ?max_steps ~suite ~memory layer threads =
  let st = Fingerprint.string Fingerprint.empty "races" in
  let st = Fingerprint.layer st layer in
  let st = Fingerprint.memory st memory in
  let st =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let st =
    match suite with
    | `Scheds ss -> Fingerprint.scheds (Fingerprint.int st 1) ss
    | `Strategy s ->
      Fingerprint.string (Fingerprint.int st 2) (Ctx.Engine.to_string s)
  in
  Fingerprint.finish (Fingerprint.option Fingerprint.int st max_steps)

(* A resumed scan replays what the partial already knows as synthetic
   outcomes before merging the new ones; the merge only counts cleans and
   collects others in order, so the final verdict — message included — is
   byte-identical to a from-scratch run. *)
let synthetic (p : partial) =
  List.init p.clean (fun _ -> Clean) @ List.map (fun m -> Other m) p.others

let check_ctx ~ctx ?max_steps ?scheds ?resume layer threads =
  Ctx.arm ctx @@ fun () ->
  let run resume =
    let all_scheds =
      match scheds with
      | Some s -> s
      | None -> Explore.scheds_of_strategy_ctx ~ctx layer threads
    in
    let skip, syn =
      match resume with
      | None -> (0, [])
      | Some p -> (p.scanned, synthetic p)
    in
    let todo = List.filteri (fun i _ -> i >= skip) all_scheds in
    let replay =
      Parallel.budgeted_scan
        ?jobs:(Ctx.jobs_opt ctx)
        ~token:ctx.Ctx.token ~cost:fst
        ~interrupted:(fun (_, o) ->
          match o with Interrupted -> true | _ -> false)
        ~cut:(fun (_, o) -> match o with Racy _ -> true | _ -> false)
        (fun ~stop sched ->
          eval ?max_steps ~memory:ctx.Ctx.memory layer threads ~stop sched)
        todo
    in
    let outcomes = List.map snd replay.Parallel.prefix in
    if replay.Parallel.ran_out then begin
      let clean0, others0 =
        match resume with None -> (0, []) | Some p -> (p.clean, p.others)
      in
      let partial =
        {
          scanned = skip + replay.Parallel.scanned;
          clean =
            clean0
            + List.length
                (List.filter (function Clean -> true | _ -> false) outcomes);
          others =
            others0
            @ List.filter_map
                (function Other m -> Some m | _ -> None)
                outcomes;
        }
      in
      Exhausted { spent = Budget.spent ctx.Ctx.token; partial }
    end
    else merge (syn @ outcomes)
  in
  match ctx.Ctx.cache with
  | None -> run resume
  | Some c -> (
    let suite =
      match scheds with
      | Some ss -> `Scheds ss
      | None -> `Strategy ctx.Ctx.strategy
    in
    let key = check_key ?max_steps ~suite ~memory:ctx.Ctx.memory layer threads in
    match Cache.find c ~kind:"races" key with
    | Some (runs : int) -> Race_free { runs }
    | None -> (
      (* No full verdict cached: a stashed partial from an earlier
         exhausted run is the implicit resume point. *)
      let resume =
        match resume with
        | Some _ -> resume
        | None -> (Cache.find c ~kind:"races.partial" key : partial option)
      in
      match run resume with
      | Race_free { runs } as v ->
        Cache.store c ~kind:"races" key runs;
        Cache.invalidate c ~kind:"races.partial" key;
        v
      (* Races and other failures are never stored: they must always
         reproduce live, counterexample log and all.  Their partial is
         stale once the full scan finished, so it goes too. *)
      | (Race _ | Other_failure _) as v ->
        Cache.invalidate c ~kind:"races.partial" key;
        v
      | Exhausted { partial; _ } as v ->
        Cache.store c ~kind:"races.partial" key partial;
        v))
