open Ccal_core

type verdict =
  | Race_free of { runs : int }
  | Race of { sched_name : string; detail : string; log : Log.t }
  | Other_failure of string

let check ?max_steps ?strategy ?scheds layer threads =
  let scheds =
    match scheds with
    | Some s -> s
    | None ->
      Explore.scheds_of_strategy layer threads
        (Option.value strategy ~default:Explore.default_strategy)
  in
  let rec go runs = function
    | [] -> Race_free { runs }
    | sched :: rest -> (
      let outcome = Game.run (Game.config ?max_steps layer threads sched) in
      match outcome.Game.status with
      | Game.Stuck (_, Layer.Data_race, msg) ->
        Race { sched_name = sched.Sched.name; detail = msg; log = outcome.Game.log }
      | Game.Stuck (i, Layer.Invalid_transition, msg) ->
        Other_failure (Printf.sprintf "thread %d stuck (not a race): %s" i msg)
      | Game.Deadlock ids ->
        Other_failure
          (Printf.sprintf "deadlock among threads %s"
             (String.concat "," (List.map string_of_int ids)))
      | Game.Out_of_fuel -> Other_failure "out of fuel"
      | Game.All_done ->
        if Ccal_machine.Pushpull.race_free outcome.Game.log then go (runs + 1) rest
        else
          Race
            {
              sched_name = sched.Sched.name;
              detail = "completed log fails push/pull replay";
              log = outcome.Game.log;
            })
  in
  go 0 scheds
