open Ccal_core

type verdict =
  | Race_free of { runs : int }
  | Race of { sched_name : string; detail : string; log : Log.t }
  | Other_failure of string

(* The per-schedule body: pure in the sense that it touches only its own
   game state, so the pool can evaluate schedules on any domain. *)
type sched_outcome =
  | Clean
  | Racy of { sched_name : string; detail : string; log : Log.t }
  | Other of string

let check_sched ?max_steps layer threads sched =
  Probe.incr Probe.race_checks;
  let outcome = Game.run (Game.config ?max_steps layer threads sched) in
  match outcome.Game.status with
  | Game.Stuck (_, Layer.Data_race, msg) ->
    Racy { sched_name = sched.Sched.name; detail = msg; log = outcome.Game.log }
  | Game.Stuck (i, Layer.Invalid_transition, msg) ->
    Other (Printf.sprintf "thread %d stuck (not a race): %s" i msg)
  | Game.Deadlock ids ->
    Other
      (Printf.sprintf "deadlock among threads %s"
         (String.concat "," (List.map string_of_int ids)))
  | Game.Out_of_fuel -> Other "out of fuel"
  | Game.All_done ->
    if Ccal_machine.Pushpull.race_free outcome.Game.log then Clean
    else
      Racy
        {
          sched_name = sched.Sched.name;
          detail = "completed log fails push/pull replay";
          log = outcome.Game.log;
        }

(* Deterministic merge.  A race anywhere wins (the lowest-indexed one —
   [Parallel.scan] guarantees the outcome list is the sequential prefix up
   to and including the first [Racy]); non-race failures such as one
   adversarial schedule running out of fuel no longer abort the scan, they
   are collected and reported only when no schedule exposes a race. *)
let merge outcomes =
  let rec go runs others = function
    | Racy { sched_name; detail; log } :: _ -> Race { sched_name; detail; log }
    | Other msg :: rest -> go runs (msg :: others) rest
    | Clean :: rest -> go (runs + 1) others rest
    | [] -> (
      match List.rev others with
      | [] -> Race_free { runs }
      | first :: more ->
        Other_failure
          (if more = [] then first
           else
             Printf.sprintf "%s (+%d further non-race failures, %d clean runs)"
               first (List.length more) runs))
  in
  go 0 [] outcomes

(* Cache key: game identity plus the suite identity.  When the suite is
   implicit the key uses the strategy descriptor — deliberately, so a
   warm hit skips even the DPOR walk that would materialize it. *)
let check_key ?max_steps ~suite layer threads =
  let st = Fingerprint.string Fingerprint.empty "races" in
  let st = Fingerprint.layer st layer in
  let st =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let st =
    match suite with
    | `Scheds ss -> Fingerprint.scheds (Fingerprint.int st 1) ss
    | `Strategy s ->
      Fingerprint.string (Fingerprint.int st 2)
        (Format.asprintf "%a" Explore.pp_strategy s)
  in
  Fingerprint.finish (Fingerprint.option Fingerprint.int st max_steps)

let check ?max_steps ?strategy ?scheds ?jobs ?cache layer threads =
  let run () =
    let scheds =
      match scheds with
      | Some s -> s
      | None ->
        Explore.scheds_of_strategy ?jobs ?cache layer threads
          (Option.value strategy ~default:Explore.default_strategy)
    in
    merge
      (Parallel.scan ?jobs
         ~cut:(function Racy _ -> true | Clean | Other _ -> false)
         (check_sched ?max_steps layer threads)
         scheds)
  in
  match cache with
  | None -> run ()
  | Some c -> (
    let suite =
      match scheds with
      | Some ss -> `Scheds ss
      | None ->
        `Strategy (Option.value strategy ~default:Explore.default_strategy)
    in
    let key = check_key ?max_steps ~suite layer threads in
    match Cache.find c ~kind:"races" key with
    | Some (runs : int) -> Race_free { runs }
    | None -> (
      match run () with
      | Race_free { runs } as v ->
        Cache.store c ~kind:"races" key runs;
        v
      (* Races and other failures are never stored: they must always
         reproduce live, counterexample log and all. *)
      | (Race _ | Other_failure _) as v -> v))
