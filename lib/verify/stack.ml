open Ccal_core
open Ccal_objects

type edge = {
  edge_name : string;
  kind : [ `Cert of Calculus.rule_name | `Linking | `Soundness ];
  checks : int;
  millis : float;
  counters : (string * int) list;
      (* this edge's telemetry counter growth; [] when telemetry is off *)
}

type report = {
  edges : edge list;
  total_checks : int;
  total_millis : float;
}

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      let kind =
        match e.kind with
        | `Cert rule ->
          (match rule with
          | Calculus.Empty -> "Empty"
          | Calculus.Fun -> "Fun"
          | Calculus.Vcomp -> "Vcomp"
          | Calculus.Hcomp -> "Hcomp"
          | Calculus.Wk -> "Wk"
          | Calculus.Pcomp -> "Pcomp")
        | `Linking -> "Link"
        | `Soundness -> "Sound"
      in
      Format.fprintf fmt "  [%-5s] %-55s %4d checks  %6.1f ms@." kind
        e.edge_name e.checks e.millis;
      if e.counters <> [] then
        Format.fprintf fmt "          %s@."
          (String.concat ", "
             (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) e.counters)))
    r.edges;
  Format.fprintf fmt "  total: %d checks in %.1f ms@]" r.total_checks r.total_millis

(* Like [Verify_clock.timed], but also the edge's telemetry counter
   growth — [Probe.counters] snapshots are cheap (a handful of atomics)
   and empty when telemetry is off, so this adds nothing to the
   uninstrumented path. *)
let timed f =
  let before = Probe.counters () in
  let r, ms = Verify_clock.timed f in
  (r, ms, Probe.diff_counters before (Probe.counters ()))

(* Fold a [Parallel.scan]-produced prefix of per-schedule linking results
   back into the sequential count-or-first-error shape. *)
let fold_linking results =
  let rec go n = function
    | [] -> Ok n
    | Ok () :: rest -> go (n + 1) rest
    | (Error _ as e) :: _ -> e
  in
  go 0 results

let vi = Value.int

let verify_all ?(lock = `Ticket) ?(seeds = 4) ?strategy ?jobs () =
  let edges = ref [] in
  let push edge = edges := edge :: !edges in
  let scheds () = Sched.default_suite ~seeds in
  (* With an explicit strategy, every game-driving edge derives its
     scheduler suite from the edge's own game (DPOR must walk the game it
     will replay); without one, the seeded default suite is used. *)
  let scheds_for layer threads =
    match strategy with
    | None -> scheds ()
    | Some s -> Explore.scheds_of_strategy ?jobs layer threads s
  in
  let cert_scheds_for (cert : Calculus.cert) client =
    match strategy with
    | None -> scheds ()
    | Some s ->
      let j = cert.Calculus.judgment in
      let threads =
        List.map
          (fun i -> i, Prog.Module.link j.Calculus.impl (client i))
          j.Calculus.focus
      in
      Explore.scheds_of_strategy ?jobs j.Calculus.underlay threads s
  in
  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in

  (* 1. multicore linking over the hardware machine *)
  let faa_round i =
    Prog.seq_all
      [ Prog.call "faa" [ vi 0; vi 1 ]; Prog.call "faa" [ vi 0; vi 1 ];
        Prog.ret (vi i) ]
  in
  let link_result, ms, cs =
    timed (fun () ->
        let threads = [ 1, faa_round 1; 2, faa_round 2 ] in
        fold_linking
          (Parallel.scan ?jobs ~cut:Result.is_error
             (Ccal_machine.Mx86.check_multicore_linking_sched ~threads)
             (scheds_for (Ccal_machine.Mx86.layer ()) threads)))
  in
  let* n = link_result in
  push { edge_name = "Mx86 refines Lx86[D] (Thm 3.1)"; kind = `Linking; checks = n; millis = ms; counters = cs };

  (* 2. spinlock certificate *)
  let lock_name, certify_lock =
    match lock with
    | `Ticket -> "ticket", fun () -> Ticket_lock.certify ~focus:[ 1; 2 ] ()
    | `Mcs -> "mcs", fun () -> Mcs_lock.certify ~focus:[ 1; 2 ] ()
  in
  let lock_cert, ms, cs = timed certify_lock in
  let* lock_cert =
    Result.map_error (Format.asprintf "%a" Calculus.pp_error) lock_cert
  in
  push
    { edge_name = Printf.sprintf "L0 |- M_%s : Llock (Fun)" lock_name;
      kind = `Cert lock_cert.Calculus.rule;
      checks = Calculus.count_checks lock_cert; millis = ms; counters = cs };

  (* 3. parallel composition of per-thread lock certificates *)
  let pcomp_result, ms, cs =
    timed (fun () ->
        let mk focus =
          match lock with
          | `Ticket -> Ticket_lock.certify ~focus ()
          | `Mcs -> Mcs_lock.certify ~focus ()
        in
        let* c1 = Result.map_error (Format.asprintf "%a" Calculus.pp_error) (mk [ 1 ]) in
        let* c2 = Result.map_error (Format.asprintf "%a" Calculus.pp_error) (mk [ 2 ]) in
        (* the compat corpus: logs from contention games *)
        let layer = match lock with `Ticket -> Ticket_lock.l0 () | `Mcs -> Mcs_lock.l0 () in
        let m = match lock with `Ticket -> Ticket_lock.c_module () | `Mcs -> Mcs_lock.c_module () in
        let client i =
          Prog.Module.link m
            (Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
                 Prog.call "rel" [ vi 0; vi i ]))
        in
        let threads = [ 1, client 1; 2, client 2 ] in
        let logs =
          List.map
            (fun o -> o.Game.log)
            (Explore.run_all ?jobs layer threads (scheds_for layer threads))
        in
        Result.map_error (Format.asprintf "%a" Calculus.pp_error)
          (Calculus.pcomp c1 c2 ~compat_logs:logs))
  in
  let* pcert = pcomp_result in
  push
    { edge_name = "Llock[1] x Llock[2] => Llock[{1,2}] (Pcomp)";
      kind = `Cert pcert.Calculus.rule;
      checks = Calculus.count_checks pcert; millis = ms; counters = cs };

  (* 4. shared queue over the lock: vertical composition *)
  let stack_cert, ms, cs = timed (fun () -> Queue_shared.full_stack_certify ()) in
  let* stack_cert =
    Result.map_error (Format.asprintf "%a" Calculus.pp_error) stack_cert
  in
  push
    { edge_name = "L0 |- M_lock + M_q : Lq_high (Vcomp, Fig. 5)";
      kind = `Cert stack_cert.Calculus.rule;
      checks = Calculus.count_checks stack_cert; millis = ms; counters = cs };

  (* 5. queue soundness game *)
  let sound, ms, cs =
    timed (fun () ->
        let client i =
          Prog.seq_all
            [ Prog.call "enQ_s" [ vi 0; vi (10 + i) ];
              Prog.call "deQ_s" [ vi 0 ] ]
        in
        Linearizability.refine_cert ?jobs stack_cert ~client
          ~scheds:(cert_scheds_for stack_cert client))
  in
  let* sound_report =
    Result.map_error (Format.asprintf "%a" Refinement.pp_failure) sound
  in
  push
    { edge_name = "[[P + M]]_L0 refines [[P]]_Lq_high (Thm 2.2)";
      kind = `Soundness;
      checks = sound_report.Refinement.scheds_checked; millis = ms; counters = cs };

  (* 6. multithreaded linking over the scheduler *)
  let placement = [ 1, 0; 2, 0; 3, 1 ] in
  let mtl, ms, cs =
    timed (fun () ->
        let layer =
          Thread_sched.mt_layer placement (Lock_intf.layer "Llock")
        in
        let prog i =
          Prog.seq_all
            [ Prog.call "acq" [ vi 0 ]; Prog.call "rel" [ vi 0; vi i ];
              Prog.call Thread_sched.yield_tag []; Prog.call Thread_sched.exit_tag [] ]
        in
        let threads = [ 1, prog 1; 2, prog 2; 3, prog 3 ] in
        fold_linking
          (Parallel.scan ?jobs ~cut:Result.is_error
             (Thread_sched.check_multithreaded_linking_sched ~placement ~layer
                ~threads)
             (scheds_for layer threads)))
  in
  let* n = mtl in
  push
    { edge_name = "Lbtd[c] = Lhtd[c][Tc] (Thm 5.1)"; kind = `Linking;
      checks = n; millis = ms; counters = cs };

  (* 7. queuing lock *)
  let ql, ms, cs = timed (fun () -> Qlock.certify ()) in
  let* ql = Result.map_error (Format.asprintf "%a" Calculus.pp_error) ql in
  push
    { edge_name = "Lmt(Llock) |- M_qlock : Lqlock (Fun, Fig. 11)";
      kind = `Cert ql.Calculus.rule; checks = Calculus.count_checks ql;
      millis = ms; counters = cs };

  (* 8. IPC channel over condition variables *)
  let ipc, ms, cs = timed (fun () -> Ipc.certify ()) in
  let* ipc_cert = Result.map_error (Format.asprintf "%a" Calculus.pp_error) ipc in
  push
    { edge_name = "Lmt(spin+cv) |- M_ipc : Lipc (Fun)";
      kind = `Cert ipc_cert.Calculus.rule;
      checks = Calculus.count_checks ipc_cert; millis = ms; counters = cs };

  (* 9. IPC producer/consumer soundness including the blocking paths *)
  let ipc_sound, ms, cs =
    timed (fun () ->
        let* cert =
          Result.map_error (Format.asprintf "%a" Calculus.pp_error)
            (Ipc.certify ~placement:[ 1, 1; 2, 2; 9, 9 ] ~focus:[ 1; 2 ] ())
        in
        let client i =
          if i = 1 then
            Prog.seq_all
              [ Prog.call "send" [ vi 5; vi 10 ]; Prog.call "send" [ vi 5; vi 11 ];
                Prog.call "send" [ vi 5; vi 12 ];
                Prog.call Thread_sched.exit_tag [] ]
          else
            Prog.seq_all
              [ Prog.call "recv" [ vi 5 ]; Prog.call "recv" [ vi 5 ];
                Prog.call "recv" [ vi 5 ]; Prog.call Thread_sched.exit_tag [] ]
        in
        Result.map_error (Format.asprintf "%a" Refinement.pp_failure)
          (Linearizability.refine_cert ?jobs cert ~client
             ~scheds:(cert_scheds_for cert client)))
  in
  let* r = ipc_sound in
  push
    { edge_name = "[[producer|consumer]] refines Lipc (blocking paths)";
      kind = `Soundness; checks = r.Refinement.scheds_checked;
      millis = ms; counters = cs };

  (* 10. reader-writer lock: a synchronization library added on top of the
     existing lock layer without touching it *)
  let rw, ms, cs = timed (fun () -> Rwlock.certify ()) in
  let* rw = Result.map_error (Format.asprintf "%a" Calculus.pp_error) rw in
  push
    { edge_name = "Llock |- M_rwlock : Lrwlock (Fun, extension)";
      kind = `Cert rw.Calculus.rule; checks = Calculus.count_checks rw;
      millis = ms; counters = cs };

  let edges = List.rev !edges in
  Ok
    {
      edges;
      total_checks = List.fold_left (fun n e -> n + e.checks) 0 edges;
      total_millis = List.fold_left (fun t e -> t +. e.millis) 0. edges;
    }
