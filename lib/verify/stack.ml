open Ccal_core
open Ccal_objects

type edge = {
  edge_name : string;
  kind : [ `Cert of Calculus.rule_name | `Linking | `Soundness | `Adversarial ];
  checks : int;
  millis : float;
  counters : (string * int) list;
      (* this edge's telemetry counter growth; [] when telemetry is off *)
}

type report = {
  edges : edge list;
  total_checks : int;
  total_millis : float;
}

type progress = { completed : report; next_edge : string option }

let kind_label = function
  | `Cert rule ->
    (match rule with
    | Calculus.Empty -> "Empty"
    | Calculus.Fun -> "Fun"
    | Calculus.Vcomp -> "Vcomp"
    | Calculus.Hcomp -> "Hcomp"
    | Calculus.Wk -> "Wk"
    | Calculus.Pcomp -> "Pcomp")
  | `Linking -> "Link"
  | `Soundness -> "Sound"
  | `Adversarial -> "Adv"

let pp_counters fmt counters =
  if counters <> [] then
    Format.fprintf fmt "          %s@."
      (String.concat ", "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) counters))

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf fmt "  [%-5s] %-55s %4d checks  %6.1f ms@."
        (kind_label e.kind) e.edge_name e.checks e.millis;
      pp_counters fmt e.counters)
    r.edges;
  Format.fprintf fmt "  total: %d checks in %.1f ms@]" r.total_checks r.total_millis

(* The verdict-stable projection of the report: everything except the
   timing fields.  This is the "bit-identical" contract of the
   certificate cache — a warm run prints exactly this text, byte for
   byte, for every jobs count (DESIGN "Certificate cache"), so the CI
   cache leg can [cmp] cold and warm runs. *)
let pp_report_canonical fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf fmt "  [%-5s] %-55s %4d checks@." (kind_label e.kind)
        e.edge_name e.checks;
      pp_counters fmt e.counters)
    r.edges;
  Format.fprintf fmt "  total: %d checks@]" r.total_checks

(* Like [Verify_clock.timed], but also the edge's telemetry counter
   growth — [Probe.counters] snapshots are cheap (a handful of atomics)
   and empty when telemetry is off, so this adds nothing to the
   uninstrumented path. *)
let timed f =
  let before = Probe.counters () in
  let r, ms = Verify_clock.timed f in
  (r, ms, Probe.diff_counters before (Probe.counters ()))

(* Fold a [Parallel.scan]-produced prefix of per-schedule linking results
   back into the sequential count-or-first-error shape. *)
let fold_linking results =
  let rec go n = function
    | [] -> Ok n
    | Ok () :: rest -> go (n + 1) rest
    | (Error _ as e) :: _ -> e
  in
  go 0 results

let vi = Value.int

(* The client workloads of the game-driving edges, shared between the
   edge bodies and the edge fingerprints so the two can never drift. *)

let faa_round i =
  Prog.seq_all
    [ Prog.call "faa" [ vi 0; vi 1 ]; Prog.call "faa" [ vi 0; vi 1 ];
      Prog.ret (vi i) ]

let lock_client m i =
  Prog.Module.link m
    (Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
         Prog.call "rel" [ vi 0; vi i ]))

let queue_client i =
  Prog.seq_all
    [ Prog.call "enQ_s" [ vi 0; vi (10 + i) ]; Prog.call "deQ_s" [ vi 0 ] ]

let mt_placement = [ 1, 0; 2, 0; 3, 1 ]

let mt_prog i =
  Prog.seq_all
    [ Prog.call "acq" [ vi 0 ]; Prog.call "rel" [ vi 0; vi i ];
      Prog.call Thread_sched.yield_tag []; Prog.call Thread_sched.exit_tag [] ]

let ipc_placement = [ 1, 1; 2, 2; 9, 9 ]

let ipc_client i =
  if i = 1 then
    Prog.seq_all
      [ Prog.call "send" [ vi 5; vi 10 ]; Prog.call "send" [ vi 5; vi 11 ];
        Prog.call "send" [ vi 5; vi 12 ]; Prog.call Thread_sched.exit_tag [] ]
  else
    Prog.seq_all
      [ Prog.call "recv" [ vi 5 ]; Prog.call "recv" [ vi 5 ];
        Prog.call "recv" [ vi 5 ]; Prog.call Thread_sched.exit_tag [] ]

(* ------------------------------------------------------------------ *)
(* Edge fingerprints.

   One key per edge, covering exactly what that edge's verdict depends
   on: the ClightX sources of the objects it certifies (via
   [Csyntax.fp_fn] — the structural hash, so editing one object module
   invalidates exactly the edges whose key folds it in), the layer
   interfaces, the client workloads, and — for the game-driving edges
   only — the scheduler-suite identity (seeds or strategy).  [jobs] is
   never part of a key: verdicts are identical across jobs counts. *)

let fp_fns st fns = List.fold_left Ccal_clight.Csyntax.fp_fn st fns

let fp_placement st p =
  Fingerprint.list
    (fun st (t, c) -> Fingerprint.int (Fingerprint.int st t) c)
    st p

let edge_keys ~lock ~seeds ~strategy ~memory =
  let suite st =
    match strategy with
    | None -> Fingerprint.string (Fingerprint.int st 1) (Printf.sprintf "seeds:%d" seeds)
    | Some s ->
      Fingerprint.string (Fingerprint.int st 2) (Ctx.Engine.to_string s)
  in
  (* The memory mode is part of EVERY edge key — even the edges whose
     underlay is already an atomic interface — so a verdict computed
     under SC is never served for a TSO query (or vice versa). *)
  let base name =
    Fingerprint.memory
      (Fingerprint.string (Fingerprint.string Fingerprint.empty "stack-edge") name)
      memory
  in
  let lock_name = match lock with `Ticket -> "ticket" | `Mcs -> "mcs" in
  let lock_fns =
    match lock with
    | `Ticket -> [ Ticket_lock.acq_fn; Ticket_lock.rel_fn ]
    | `Mcs -> [ Mcs_lock.acq_fn; Mcs_lock.rel_fn ]
  in
  let lock_l0 =
    match lock with
    | `Ticket -> Ticket_lock.l0 ~memory ()
    | `Mcs -> Mcs_lock.l0 ~memory ()
  in
  let lock_overlay =
    match lock with
    | `Ticket -> Ticket_lock.overlay ()
    | `Mcs -> Mcs_lock.overlay ()
  in
  let lock_m =
    match lock with
    | `Ticket -> Ticket_lock.c_module ()
    | `Mcs -> Mcs_lock.c_module ()
  in
  let queue_fns =
    [ Ticket_lock.acq_fn; Ticket_lock.rel_fn; Queue_shared.enq_fn;
      Queue_shared.deq_fn ]
  in
  let ipc_fns =
    [ Ipc.send_fn; Ipc.recv_fn; Condvar.cv_wait_fn; Condvar.cv_signal_fn;
      Condvar.cv_broadcast_fn ]
  in
  let fp_threads st threads =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let e1 =
    let st = base "Mx86 refines Lx86[D] (Thm 3.1)" in
    let st = Fingerprint.layer st (Ccal_machine.Tso.machine_layer memory) in
    let st = fp_threads st [ 1, faa_round 1; 2, faa_round 2 ] in
    Fingerprint.finish (suite st)
  in
  let e2 =
    let st = base (Printf.sprintf "L0 |- M_%s : Llock (Fun)" lock_name) in
    let st = Fingerprint.string st lock_name in
    let st = fp_fns st lock_fns in
    let st = Fingerprint.layer st lock_l0 in
    Fingerprint.finish (Fingerprint.layer st lock_overlay)
  in
  let e3 =
    let st = base "Llock[1] x Llock[2] => Llock[{1,2}] (Pcomp)" in
    let st = Fingerprint.string st lock_name in
    let st = fp_fns st lock_fns in
    let st = Fingerprint.layer st lock_l0 in
    let st = Fingerprint.layer st lock_overlay in
    let st = fp_threads st [ 1, lock_client lock_m 1; 2, lock_client lock_m 2 ] in
    Fingerprint.finish (suite st)
  in
  let e4 =
    let st = base "L0 |- M_lock + M_q : Lq_high (Vcomp, Fig. 5)" in
    let st = fp_fns st queue_fns in
    let st = Fingerprint.layer st (Ticket_lock.l0 ~memory ()) in
    Fingerprint.finish (Fingerprint.layer st (Queue_shared.overlay ()))
  in
  let e5 =
    let st = base "[[P + M]]_L0 refines [[P]]_Lq_high (Thm 2.2)" in
    let st = fp_fns st queue_fns in
    let st = Fingerprint.layer st (Ticket_lock.l0 ~memory ()) in
    let st = Fingerprint.layer st (Queue_shared.overlay ()) in
    let st = fp_threads st [ 1, queue_client 1; 2, queue_client 2 ] in
    Fingerprint.finish (suite st)
  in
  let e6 =
    let st = base "Lbtd[c] = Lhtd[c][Tc] (Thm 5.1)" in
    let st = fp_placement st mt_placement in
    let st =
      Fingerprint.layer st
        (Thread_sched.mt_layer mt_placement (Lock_intf.layer "Llock"))
    in
    let st = fp_threads st [ 1, mt_prog 1; 2, mt_prog 2; 3, mt_prog 3 ] in
    Fingerprint.finish (suite st)
  in
  let e7 =
    let st = base "Lmt(Llock) |- M_qlock : Lqlock (Fun, Fig. 11)" in
    let st = fp_fns st [ Qlock.acq_q_fn; Qlock.rel_q_fn ] in
    Fingerprint.finish (Fingerprint.layer st (Qlock.overlay ()))
  in
  let e8 =
    let st = base "Lmt(spin+cv) |- M_ipc : Lipc (Fun)" in
    let st = fp_fns st ipc_fns in
    Fingerprint.finish (Fingerprint.layer st (Ipc.overlay ()))
  in
  let e9 =
    let st = base "[[producer|consumer]] refines Lipc (blocking paths)" in
    let st = fp_fns st ipc_fns in
    let st = Fingerprint.layer st (Ipc.overlay ()) in
    let st = fp_placement st ipc_placement in
    let st = fp_threads st [ 1, ipc_client 1; 2, ipc_client 2 ] in
    Fingerprint.finish (suite st)
  in
  let e10 =
    let st = base "Llock |- M_rwlock : Lrwlock (Fun, extension)" in
    let st =
      fp_fns st
        [ Rwlock.acq_r_fn; Rwlock.rel_r_fn; Rwlock.acq_w_fn; Rwlock.rel_w_fn ]
    in
    Fingerprint.finish (Fingerprint.layer st (Rwlock.overlay ()))
  in
  [
    "Mx86 refines Lx86[D] (Thm 3.1)", e1;
    Printf.sprintf "L0 |- M_%s : Llock (Fun)" lock_name, e2;
    "Llock[1] x Llock[2] => Llock[{1,2}] (Pcomp)", e3;
    "L0 |- M_lock + M_q : Lq_high (Vcomp, Fig. 5)", e4;
    "[[P + M]]_L0 refines [[P]]_Lq_high (Thm 2.2)", e5;
    "Lbtd[c] = Lhtd[c][Tc] (Thm 5.1)", e6;
    "Lmt(Llock) |- M_qlock : Lqlock (Fun, Fig. 11)", e7;
    "Lmt(spin+cv) |- M_ipc : Lipc (Fun)", e8;
    "[[producer|consumer]] refines Lipc (blocking paths)", e9;
    "Llock |- M_rwlock : Lrwlock (Fun, extension)", e10;
  ]

let edge_fingerprints ?(lock = `Ticket) ?(seeds = 4) ?strategy
    ?(memory = Memory.default) () =
  edge_keys ~lock ~seeds ~strategy ~memory

(* Budgeted sub-checkers inside an edge body signal exhaustion by
   exception; the edge loop catches it and reports the stack-level
   [Exhausted] with that edge as the frontier. *)
exception Ran_out_of_budget

let value_or_raise = function
  | Budget.Complete v -> v
  | Budget.Exhausted _ -> raise Ran_out_of_budget

let adversarial_edge_name =
  "Lrwlock spin suite under adversarial schedules (livelock)"

let verify_all_ctx ~ctx ?(lock = `Ticket) ?(seeds = 4) ?strategy
    ?(adversarial = false) () =
  Ctx.arm ctx @@ fun () ->
  let jobs = Ctx.jobs_opt ctx in
  let cache = ctx.Ctx.cache in
  let memory = ctx.Ctx.memory in
  let keys = edge_keys ~lock ~seeds ~strategy ~memory in
  (* Per-edge memoization.  The cache probe and store sit OUTSIDE the
     [timed] window of the edge body, so a cold run's per-edge counters
     are unaffected by caching and a warm hit reproduces the stored
     edge verbatim (timing aside: a hit's [millis] is the lookup time).
     Only successful edges are stored — a failing edge aborts the stack
     and always re-runs live.  Edges without a fingerprint (the
     adversarial one: its verdict is a budget demonstration, not a
     cacheable fact) always run live. *)
  let edge_cached name (run : unit -> (edge, string) result) =
    match cache, List.assoc_opt name keys with
    | None, _ | _, None -> run ()
    | Some c, Some key -> (
      let found, lookup_ms =
        Verify_clock.timed (fun () -> Cache.find c ~kind:"edge" key)
      in
      match found with
      | Some (e : edge) -> Ok { e with millis = lookup_ms }
      | None -> (
        match run () with
        | Ok e ->
          Cache.store c ~kind:"edge" key e;
          Ok e
        | Error _ as err -> err))
  in
  let scheds () = Sched.default_suite ~seeds in
  (* With an explicit strategy, every game-driving edge derives its
     scheduler suite from the edge's own game (DPOR must walk the game it
     will replay); without one, the seeded default suite is used.  The
     strategy-carrying context shares this call's token and cache, so the
     walk stays under the same budget. *)
  let scheds_for layer threads =
    match strategy with
    | None -> scheds ()
    | Some s ->
      Explore.scheds_of_strategy_ctx ~ctx:(Ctx.with_strategy s ctx) layer
        threads
  in
  let cert_scheds_for (cert : Calculus.cert) client =
    match strategy with
    | None -> scheds ()
    | Some s ->
      let j = cert.Calculus.judgment in
      let threads =
        List.map
          (fun i -> i, Prog.Module.link j.Calculus.impl (client i))
          j.Calculus.focus
      in
      Explore.scheds_of_strategy_ctx
        ~ctx:(Ctx.with_strategy s ctx)
        j.Calculus.underlay threads
  in
  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in

  (* Certificate memo shared by edges 4 and 5, outside the cache, so a
     cache hit on edge 4 does not force edge 5 to rebuild the
     certificate inside its own timed window. *)
  let stack_cert_memo = ref None in
  let build_stack_cert () =
    match !stack_cert_memo with
    | Some c -> Ok c
    | None ->
      Result.map
        (fun c ->
          stack_cert_memo := Some c;
          c)
        (Result.map_error (Format.asprintf "%a" Calculus.pp_error)
           (Queue_shared.full_stack_certify ~memory ()))
  in

  let lock_name, certify_lock =
    match lock with
    | `Ticket ->
      "ticket", fun () -> Ticket_lock.certify ~memory ~focus:[ 1; 2 ] ()
    | `Mcs -> "mcs", fun () -> Mcs_lock.certify ~memory ~focus:[ 1; 2 ] ()
  in
  let lock_edge_name = Printf.sprintf "L0 |- M_%s : Llock (Fun)" lock_name in

  (* The stack as data: each edge is a named thunk, run in order with the
     budget polled between edges — the frontier of an [Exhausted] stack
     is the first edge that did not complete. *)
  let edge_thunks =
    [
      (* 1. multicore linking over the hardware machine of the mode *)
      ( "Mx86 refines Lx86[D] (Thm 3.1)",
        fun () ->
          let link_result, ms, cs =
            timed (fun () ->
                let threads = [ 1, faa_round 1; 2, faa_round 2 ] in
                let check sched =
                  match memory with
                  | Memory.Sc ->
                    Ccal_machine.Mx86.check_multicore_linking_sched ~threads
                      sched
                  | Memory.Tso ->
                    Ccal_machine.Tso.check_multicore_linking_sched ~threads
                      sched
                in
                fold_linking
                  (Parallel.scan ?jobs ~cut:Result.is_error check
                     (scheds_for
                        (Ccal_machine.Tso.machine_layer memory)
                        threads)))
          in
          let* n = link_result in
          Ok
            { edge_name = "Mx86 refines Lx86[D] (Thm 3.1)"; kind = `Linking;
              checks = n; millis = ms; counters = cs } );
      (* 2. spinlock certificate *)
      ( lock_edge_name,
        fun () ->
          let lock_cert, ms, cs = timed certify_lock in
          let* lock_cert =
            Result.map_error (Format.asprintf "%a" Calculus.pp_error) lock_cert
          in
          Ok
            { edge_name = lock_edge_name; kind = `Cert lock_cert.Calculus.rule;
              checks = Calculus.count_checks lock_cert; millis = ms;
              counters = cs } );
      (* 3. parallel composition of per-thread lock certificates *)
      ( "Llock[1] x Llock[2] => Llock[{1,2}] (Pcomp)",
        fun () ->
          let pcomp_result, ms, cs =
            timed (fun () ->
                let mk focus =
                  match lock with
                  | `Ticket -> Ticket_lock.certify ~memory ~focus ()
                  | `Mcs -> Mcs_lock.certify ~memory ~focus ()
                in
                let* c1 =
                  Result.map_error (Format.asprintf "%a" Calculus.pp_error)
                    (mk [ 1 ])
                in
                let* c2 =
                  Result.map_error (Format.asprintf "%a" Calculus.pp_error)
                    (mk [ 2 ])
                in
                (* the compat corpus: logs from contention games *)
                let layer =
                  match lock with
                  | `Ticket -> Ticket_lock.l0 ~memory ()
                  | `Mcs -> Mcs_lock.l0 ~memory ()
                in
                let m =
                  match lock with
                  | `Ticket -> Ticket_lock.c_module ()
                  | `Mcs -> Mcs_lock.c_module ()
                in
                let threads = [ 1, lock_client m 1; 2, lock_client m 2 ] in
                let logs =
                  List.map
                    (fun o -> o.Game.log)
                    (value_or_raise
                       (Explore.run_all_ctx ~ctx layer threads
                          (scheds_for layer threads)))
                in
                Result.map_error (Format.asprintf "%a" Calculus.pp_error)
                  (Calculus.pcomp c1 c2 ~compat_logs:logs))
          in
          let* pcert = pcomp_result in
          Ok
            { edge_name = "Llock[1] x Llock[2] => Llock[{1,2}] (Pcomp)";
              kind = `Cert pcert.Calculus.rule;
              checks = Calculus.count_checks pcert; millis = ms;
              counters = cs } );
      (* 4. shared queue over the lock: vertical composition *)
      ( "L0 |- M_lock + M_q : Lq_high (Vcomp, Fig. 5)",
        fun () ->
          let stack_cert, ms, cs = timed build_stack_cert in
          let* stack_cert = stack_cert in
          Ok
            { edge_name = "L0 |- M_lock + M_q : Lq_high (Vcomp, Fig. 5)";
              kind = `Cert stack_cert.Calculus.rule;
              checks = Calculus.count_checks stack_cert; millis = ms;
              counters = cs } );
      (* 5. queue soundness game.  The certificate comes from the memo
         (or a rebuild, outside the timed window, when edge 4 was a cache
         hit); the edge's timing and counters cover the soundness game
         only, exactly as they always did. *)
      ( "[[P + M]]_L0 refines [[P]]_Lq_high (Thm 2.2)",
        fun () ->
          let* stack_cert = build_stack_cert () in
          let sound, ms, cs =
            timed (fun () ->
                Result.map_error (Format.asprintf "%a" Refinement.pp_failure)
                  (value_or_raise
                     (Linearizability.refine_cert_ctx ~ctx stack_cert
                        ~client:queue_client
                        ~scheds:(cert_scheds_for stack_cert queue_client))))
          in
          let* sound_report = sound in
          Ok
            { edge_name = "[[P + M]]_L0 refines [[P]]_Lq_high (Thm 2.2)";
              kind = `Soundness;
              checks = sound_report.Refinement.scheds_checked; millis = ms;
              counters = cs } );
      (* 6. multithreaded linking over the scheduler *)
      ( "Lbtd[c] = Lhtd[c][Tc] (Thm 5.1)",
        fun () ->
          let mtl, ms, cs =
            timed (fun () ->
                let layer =
                  Thread_sched.mt_layer mt_placement (Lock_intf.layer "Llock")
                in
                let threads = [ 1, mt_prog 1; 2, mt_prog 2; 3, mt_prog 3 ] in
                fold_linking
                  (Parallel.scan ?jobs ~cut:Result.is_error
                     (Thread_sched.check_multithreaded_linking_sched
                        ~placement:mt_placement ~layer ~threads)
                     (scheds_for layer threads)))
          in
          let* n = mtl in
          Ok
            { edge_name = "Lbtd[c] = Lhtd[c][Tc] (Thm 5.1)"; kind = `Linking;
              checks = n; millis = ms; counters = cs } );
      (* 7. queuing lock *)
      ( "Lmt(Llock) |- M_qlock : Lqlock (Fun, Fig. 11)",
        fun () ->
          let ql, ms, cs = timed (fun () -> Qlock.certify ()) in
          let* ql =
            Result.map_error (Format.asprintf "%a" Calculus.pp_error) ql
          in
          Ok
            { edge_name = "Lmt(Llock) |- M_qlock : Lqlock (Fun, Fig. 11)";
              kind = `Cert ql.Calculus.rule; checks = Calculus.count_checks ql;
              millis = ms; counters = cs } );
      (* 8. IPC channel over condition variables *)
      ( "Lmt(spin+cv) |- M_ipc : Lipc (Fun)",
        fun () ->
          let ipc, ms, cs = timed (fun () -> Ipc.certify ()) in
          let* ipc_cert =
            Result.map_error (Format.asprintf "%a" Calculus.pp_error) ipc
          in
          Ok
            { edge_name = "Lmt(spin+cv) |- M_ipc : Lipc (Fun)";
              kind = `Cert ipc_cert.Calculus.rule;
              checks = Calculus.count_checks ipc_cert; millis = ms;
              counters = cs } );
      (* 9. IPC producer/consumer soundness including the blocking paths *)
      ( "[[producer|consumer]] refines Lipc (blocking paths)",
        fun () ->
          let ipc_sound, ms, cs =
            timed (fun () ->
                let* cert =
                  Result.map_error (Format.asprintf "%a" Calculus.pp_error)
                    (Ipc.certify ~placement:ipc_placement ~focus:[ 1; 2 ] ())
                in
                Result.map_error (Format.asprintf "%a" Refinement.pp_failure)
                  (value_or_raise
                     (Linearizability.refine_cert_ctx ~ctx cert
                        ~client:ipc_client
                        ~scheds:(cert_scheds_for cert ipc_client))))
          in
          let* r = ipc_sound in
          Ok
            { edge_name = "[[producer|consumer]] refines Lipc (blocking paths)";
              kind = `Soundness; checks = r.Refinement.scheds_checked;
              millis = ms; counters = cs } );
      (* 10. reader-writer lock: a synchronization library added on top of
         the existing lock layer without touching it *)
      ( "Llock |- M_rwlock : Lrwlock (Fun, extension)",
        fun () ->
          let rw, ms, cs = timed (fun () -> Rwlock.certify ()) in
          let* rw =
            Result.map_error (Format.asprintf "%a" Calculus.pp_error) rw
          in
          Ok
            { edge_name = "Llock |- M_rwlock : Lrwlock (Fun, extension)";
              kind = `Cert rw.Calculus.rule; checks = Calculus.count_checks rw;
              millis = ms; counters = cs } );
    ]
    @
    if not adversarial then []
    else
      [
        (* 11 (opt-in). the spinning rwlock implementation under the
           trace-prefix suite: the spin retry loop phase-locks with
           [of_trace]'s round-robin degradation (the writer's turn always
           lands while a reader holds the underlay lock), so these games
           livelock to the fuel limit — the workload that demonstrates
           budgets turning a hang into an [Exhausted] report.  Stuckness
           and deadlock still fail the edge; burning all fuel does not. *)
        ( adversarial_edge_name,
          fun () ->
            let result, ms, cs =
              timed (fun () ->
                  let layer = Rwlock.underlay () in
                  let m = Rwlock.c_module () in
                  let spin p = Prog.Module.link m p in
                  let reader =
                    spin
                      (Prog.seq
                         (Prog.call "acq_r" [ vi 4 ])
                         (Prog.call "rel_r" [ vi 4 ]))
                  in
                  let writer =
                    spin
                      (Prog.seq
                         (Prog.call "acq_w" [ vi 4 ])
                         (Prog.call "rel_w" [ vi 4 ]))
                  in
                  let threads = [ 1, reader; 2, reader; 3, writer ] in
                  let scheds =
                    Explore.exhaustive_scheds ~tids:[ 1; 2; 3 ] ~depth:3
                  in
                  let outcomes =
                    value_or_raise
                      (Explore.run_all_ctx ~ctx ~max_steps:200_000 layer
                         threads scheds)
                  in
                  match
                    List.find_opt
                      (fun o ->
                        match o.Game.status with
                        | Game.Stuck _ | Game.Deadlock _ -> true
                        | Game.All_done | Game.Out_of_fuel | Game.Cancelled ->
                          false)
                      outcomes
                  with
                  | Some o ->
                    Error
                      (Format.asprintf "adversarial rwlock game failed: %a"
                         Game.pp_status o.Game.status)
                  | None -> Ok (List.length outcomes))
            in
            let* n = result in
            Ok
              { edge_name = adversarial_edge_name; kind = `Adversarial;
                checks = n; millis = ms; counters = cs } );
      ]
  in

  let mk_report acc =
    let edges = List.rev acc in
    {
      edges;
      total_checks = List.fold_left (fun n e -> n + e.checks) 0 edges;
      total_millis = List.fold_left (fun t e -> t +. e.millis) 0. edges;
    }
  in
  let exhausted_at acc name =
    Budget.Exhausted
      {
        spent = Budget.spent ctx.Ctx.token;
        partial = Ok { completed = mk_report acc; next_edge = Some name };
      }
  in
  let rec go acc = function
    | [] -> Budget.Complete (Ok { completed = mk_report acc; next_edge = None })
    | (name, thunk) :: rest ->
      if Budget.poll ctx.Ctx.token then exhausted_at acc name
      else (
        match edge_cached name thunk with
        | exception Ran_out_of_budget -> exhausted_at acc name
        | Error e -> Budget.Complete (Error e)
        | Ok edge -> go (edge :: acc) rest)
  in
  go [] edge_thunks
