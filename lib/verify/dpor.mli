(** Dynamic partial-order reduction for the certificate checkers.

    The checkers discharge the bounded-∀ over schedulers by enumeration;
    {!Explore.exhaustive_scheds} does so blindly, running all
    [|tids|^depth] scheduling prefixes even though most are permutations
    of independent moves producing logs already seen.  This module walks
    the whole-machine game as a DFS over the {e enabled} moves only,
    carrying sleep sets so that once a move's subtree is explored, its
    commuting reorderings are pruned from sibling subtrees.

    Each surviving branch is a scheduling prefix; running it back through
    {!Ccal_core.Game.run} (via {!Ccal_core.Sched.of_trace}) reproduces the
    exact outcome the exhaustive oracle would have computed, so DPOR is a
    drop-in schedule generator: same logs, fewer runs.  The
    [test/test_dpor.ml] harness checks distinct-log-set equality against
    the oracle. *)

open Ccal_core

type independence =
  | Exact
      (** two moves commute only when at least one is a silent completion
          (no events, log-insensitive).  Guarantees the DPOR leaf logs are
          {e set-equal} to the exhaustive oracle's raw logs: reordering two
          event-emitting moves always changes the log sequence, so only
          eventless moves may be slept.  This is the default and the mode
          the checkers use. *)
  | Commuting_events
      (** classical object-based independence: two moves commute iff their
          events touch different objects (first integer argument) or are
          all non-conflicting reads.  Logs are then deduplicated {e up to}
          commutation via {!canonical_log}; sound for layers whose replay
          functions are per-object (the shipped objects), and the mode to
          reach deeper bounds when only state coverage matters. *)

type stats = {
  schedules_considered : int;
      (** what exhaustive enumeration would run: [|threads|^depth] *)
  schedules_run : int;  (** branches actually replayed *)
  schedules_pruned : int;  (** [considered - run] *)
  sleep_set_prunes : int;  (** branches skipped because asleep *)
  distinct_logs : int;
      (** distinct leaf logs — under [Commuting_events], distinct
          canonical forms *)
}

type result = {
  prefixes : Event.tid list list;  (** surviving scheduling prefixes *)
  outcomes : Game.outcome list;  (** one {!Game.run} outcome per prefix *)
  stats : stats;
}

val default_reads : string list
(** Tags treated as non-conflicting reads by the object-based relation:
    [get_n] (ticket lock), [aload] (atomic cells), [read] (counters). *)

val independent_events : ?reads:string list -> Event.t -> Event.t -> bool
(** The object-based independence relation on log events. *)

val canonical_log : ?reads:string list -> Log.t -> Log.t
(** Lexicographically-least representative of the log's Mazurkiewicz
    trace: two logs are equal up to commuting independent events iff
    their canonical forms are equal. *)

val explore_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  result Budget.outcome
(** Explore the game to [depth] scheduling choices, pruning with sleep
    sets, and replay every surviving prefix.  [independence] defaults to
    {!Exact}.  [ctx.jobs] parallelises both phases over a {!Parallel}
    domain pool: the DFS splits its frontier into independent subtrees (a
    child's sleep set depends only on its parent and earlier siblings,
    all known before descent), and the replays are a deterministic
    parallel map — prefixes, outcomes, and stats are identical for every
    jobs count.  [ctx.cache] memoizes the DFS walk (prefixes + sleep-set
    prune count), keyed on the game identity and every DFS knob; the
    replay phase always runs live, so failures reproduce from the real
    game.

    The walk itself is never budgeted (depth-bounded and cheap); the
    replay phase charges [ctx.token] per game.  An [Exhausted] result
    still carries the {e complete} prefix frontier with the outcomes of
    the replayed prefix — [stats.schedules_run] says how far it got.

    [ctx.memory] selects the memory mode.  Under [Tso] the DFS adds the
    flusher pseudo-threads ({!Ccal_core.Game.flusher_threads}) to its
    root slots, so buffer-flush points are enumerated like any other
    move; flushes of different CPUs commute under [Commuting_events]
    (different buffers, and the commit's first argument is the cell).
    The mode is folded into the walk's cache key. *)

val prefixes_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Event.tid list list
(** The surviving scheduling prefixes only (no replay). *)

val schedules_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list
(** The surviving prefixes as fresh trace schedulers — the drop-in
    replacement for {!Explore.exhaustive_scheds} used by the checkers.
    Schedulers are stateful; each is good for one run. *)

val prefixes_with_prunes_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Event.tid list list * int
(** Prefixes plus the sleep-set prune count (what the walk cache
    stores). *)

(** {1 Deprecated entry points}

    The pre-[Ctx] signatures, kept for one release. *)

val explore :
  ?max_steps:int ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  ?jobs:int ->
  ?cache:Cache.t ->
  ?memory:Memory.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  result
[@@deprecated "use explore_ctx"]

val prefixes :
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  ?jobs:int ->
  ?cache:Cache.t ->
  ?memory:Memory.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Event.tid list list
[@@deprecated "use prefixes_ctx"]

val schedules :
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  ?jobs:int ->
  ?cache:Cache.t ->
  ?memory:Memory.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list
[@@deprecated "use schedules_ctx"]

val pp_stats : Format.formatter -> stats -> unit
