(** Dynamic partial-order reduction for the certificate checkers.

    The checkers discharge the bounded-∀ over schedulers by enumeration;
    {!Explore.exhaustive_scheds} does so blindly, running all
    [|tids|^depth] scheduling prefixes even though most are permutations
    of independent moves producing logs already seen.  This module walks
    the whole-machine game as a DFS over the {e enabled} moves only.
    Two DPOR-family engines share that transition core
    ({!Ccal_core.Strategy.Engine}):

    - [dpor] — sleep-set DPOR: once a move's subtree is explored, its
      commuting reorderings are pruned from sibling subtrees.  The walk
      splits its DFS frontier over the domain pool.
    - [optimal] — the sleep-set walk extended with state-fingerprint
      deduplication ([,dedup]: subtrees rooted at a previously-visited
      machine state are pruned under Godefroid's sleep-subset rule) and
      symmetry reduction across identical fresh threads ([,sym]).
      Sequential walk; the replay phase still parallelises.

    Each surviving branch is a scheduling prefix; running it back through
    {!Ccal_core.Game.run} (via {!Ccal_core.Sched.of_trace}) reproduces the
    exact outcome the exhaustive oracle would have computed, so DPOR is a
    drop-in schedule generator: same logs, fewer runs.  The
    [test/test_dpor.ml] harness checks distinct-log-set equality against
    the oracle for every engine. *)

open Ccal_core
module Engine = Strategy.Engine

type independence =
  | Exact
      (** two moves commute only when at least one is a silent completion
          (no events, log-insensitive).  Guarantees the DPOR leaf logs are
          {e set-equal} to the exhaustive oracle's raw logs: reordering two
          event-emitting moves always changes the log sequence, so only
          eventless moves may be slept.  This is the default and the mode
          the checkers use. *)
  | Commuting_events
      (** classical object-based independence: two moves commute iff their
          events touch different objects (first integer argument) or are
          all non-conflicting reads.  Logs are then deduplicated {e up to}
          commutation via {!canonical_log}; sound for layers whose replay
          functions are per-object (the shipped objects), and the mode to
          reach deeper bounds when only state coverage matters. *)

type stats = {
  schedules_considered : int;
      (** what exhaustive enumeration would run: [|threads|^depth],
          saturating at [max_int] (rendered as [">max-int"] by
          {!pp_stats}) *)
  schedules_run : int;  (** branches actually replayed *)
  schedules_pruned : int;  (** [considered - run] *)
  sleep_set_prunes : int;  (** branches skipped because asleep *)
  dedup_hits : int;
      (** subtrees pruned at a revisited state fingerprint ([,dedup]) *)
  sym_prunes : int;  (** branches pruned by thread symmetry ([,sym]) *)
  distinct_logs : int;
      (** distinct leaf logs — under [Commuting_events], distinct
          canonical forms *)
}

type result = {
  prefixes : Event.tid list list;  (** surviving scheduling prefixes *)
  outcomes : Game.outcome list;  (** one {!Game.run} outcome per prefix *)
  stats : stats;
}

val default_reads : string list
(** Tags treated as non-conflicting reads by the object-based relation:
    [get_n] (ticket lock), [aload] (atomic cells), [read] (counters). *)

val independent_events : ?reads:string list -> Event.t -> Event.t -> bool
(** The object-based independence relation on log events. *)

val canonical_log : ?reads:string list -> Log.t -> Log.t
(** Lexicographically-least representative of the log's Mazurkiewicz
    trace: two logs are equal up to commuting independent events iff
    their canonical forms are equal. *)

val suite_key :
  ?private_fuel:int ->
  engine:Engine.t ->
  independence:independence ->
  reads:string list ->
  memory:Memory.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Fingerprint.t
(** Cache key of an engine walk: the canonical engine descriptor (with
    [depth] substituted) plus the complete game identity and every walk
    knob.  [Explore.scheds_of_strategy_ctx] reuses the same scheme for
    every cacheable registered engine, so one key shape covers the whole
    suite cache (kind ["engine"]). *)

val explore_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  ?engine:Engine.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  result Budget.outcome
(** Explore the game to [depth] scheduling choices with [engine]
    (default: the context's strategy when it is DPOR-family, else
    {!Engine.default}; [engine.depth] is ignored in favour of [depth]),
    then replay every surviving prefix.  [independence] defaults to
    {!Exact}.  [ctx.jobs] parallelises the replay phase always, and the
    [dpor] engine's DFS (the frontier splits into independent subtrees);
    the [optimal] engine's walk is sequential (its dedup table is
    global) — prefixes, outcomes, and stats are identical for every jobs
    count under every engine.  [ctx.cache] memoizes the walk (prefixes +
    prune counters) under {!suite_key}; the replay phase always runs
    live, so failures reproduce from the real game.

    The walk itself is never budgeted (depth-bounded and cheap); the
    replay phase charges [ctx.token] per game.  An [Exhausted] result
    still carries the {e complete} prefix frontier with the outcomes of
    the replayed prefixes — [stats.schedules_run] says how far it got.

    [ctx.memory] selects the memory mode.  Under [Tso] the DFS adds the
    flusher pseudo-threads ({!Ccal_core.Game.flusher_threads}) to its
    root slots, so buffer-flush points are enumerated like any other
    move; flushes of different CPUs commute under [Commuting_events]
    (different buffers, and the commit's first argument is the cell).
    The mode is folded into the walk's cache key. *)

val walk_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  ?engine:Engine.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Event.tid list list * Engine.walk_stats
(** The walk only (no replay): surviving prefixes plus the prune
    counters — exactly what the suite cache stores. *)

val prefixes_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  ?engine:Engine.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Event.tid list list
(** The surviving scheduling prefixes only (no replay). *)

val schedules_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  ?independence:independence ->
  ?reads:string list ->
  ?engine:Engine.t ->
  depth:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list
(** The surviving prefixes as fresh trace schedulers — the drop-in
    replacement for {!Explore.exhaustive_scheds} used by the checkers.
    Schedulers are stateful; each is good for one run. *)

(** {1 Registered implementations}

    The DPOR-family entries of the [Explore] engine registry.  New
    engines implement {!Engine.IMPL} and register the same way — no
    checker changes (DESIGN.md S31). *)

module Sleep_impl : Engine.IMPL
module Optimal_impl : Engine.IMPL

val pp_stats : Format.formatter -> stats -> unit
(** Saturated counts ([max_int]) render as [">max-int"], never as a
    bare wrapped integer. *)
