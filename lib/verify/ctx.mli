(** The unified checker context (DESIGN.md S27).

    One record for every knob the checkers used to take as scattered
    optional arguments — pool size, certificate cache, exploration
    engine — plus the budget/cancellation token and the fault plan
    introduced with it.  Thread a context through the [*_ctx] entry
    points ([Races.check_ctx], [Linearizability.refine_ctx],
    [Progress.completes_within_ctx], [Dpor.explore_ctx],
    [Explore.run_all_ctx], [Stack.verify_all_ctx]).

    Nested checkers share the budget by sharing the context: a
    [Stack.verify_all_ctx] call passes its own context to every edge's
    races/linearizability scan, so one token covers the whole stack. *)

module Engine = Ccal_core.Strategy.Engine
(** The exploration-engine descriptor (DESIGN.md S31), re-exported so
    checker callers write [Ctx.Engine.optimal ~dedup:true ~depth:8 ()]
    without reaching into [Ccal_core]. *)

type t = {
  jobs : int;  (** domains for the pool; 1 = the sequential oracle *)
  cache : Cache.t option;
  strategy : Engine.t;  (** suite generator when no [?scheds] is given *)
  memory : Ccal_core.Memory.t;
      (** memory mode the games run under ([Sc] default, [Tso] for the
          buffered machine); folded into every cache key *)
  budget : Budget.t;
  token : Budget.token;  (** running token for [budget] *)
  faults : Fault.plan;
  stats : bool;  (** CLI toggle: print the telemetry table afterwards *)
  trace : string option;  (** CLI toggle: write a Chrome trace here *)
}

val default : t
(** Sequential, uncached, {!Engine.default} ([dpor:4]), unlimited
    budget, no faults. *)

val make :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?strategy:Engine.t ->
  ?memory:Ccal_core.Memory.t ->
  ?budget:Budget.t ->
  ?faults:Fault.plan ->
  ?stats:bool ->
  ?trace:string ->
  unit ->
  t
(** Build a context in one go; a non-unlimited [budget] starts its token
    immediately (the deadline epoch is this call).  Raises
    [Invalid_argument] on an invalid [strategy] descriptor (flag on an
    engine that does not take it, non-positive depth) — the same named
    errors {!Engine.validate} reports. *)

(** {1 Builders} *)

val with_jobs : int -> t -> t
val with_cache : Cache.t -> t -> t
val without_cache : t -> t

val with_strategy : Engine.t -> t -> t
(** Select the exploration engine.  Validates the descriptor
    ({!Engine.validate}), raising [Invalid_argument] with the named
    error on misuse — an invalid combination never reaches a checker. *)

val with_memory : Ccal_core.Memory.t -> t -> t
(** Select the memory mode ([--memory sc|tso] on the CLI).  Under [Tso]
    the checkers run games on a buffered layer with flusher
    pseudo-threads in the schedule space; the mode is folded into every
    cache key so verdicts never cross modes. *)

val with_budget : Budget.t -> t -> t
(** (Re)starts the token: the deadline epoch is the moment the budget is
    attached, so attach it last, right before running the checker. *)

val with_faults : Fault.plan -> t -> t
val with_stats : bool -> t -> t
val with_trace : string -> t -> t

(** {1 Plumbing} *)

val jobs_opt : t -> int option
(** [None] when sequential — the shape {!Parallel} and the legacy
    internals expect. *)

val arm : t -> (unit -> 'a) -> 'a
(** Run a thunk with the context's fault plan armed ({!Fault.with_plan}).
    Every [*_ctx] checker entry point wraps its body in this. *)

val pp : Format.formatter -> t -> unit
