(* A work-stealing domain-pool executor for the verifiers.

   Every checker in this library folds over an independent list of
   schedules — embarrassingly parallel work that used to run on a single
   OCaml domain.  This module evaluates such a job list in chunks across a
   pool of domains (stdlib [Domain]/[Mutex]/[Condition], no new
   dependencies) and merges the results *deterministically*: {!scan}
   returns exactly what a sequential early-exit fold would, bit for bit,
   regardless of completion order — the reported failure is always the one
   from the lowest-indexed job, and chunks wholly above a pinned cut are
   cancelled instead of evaluated.

   Design notes:

   - Pools are persistent and cached by size: the first [~jobs:n] request
     spawns [n - 1] worker domains which then sleep on a condition
     variable between batches; the submitting domain participates in every
     batch as the [n]-th worker.  An [at_exit] hook shuts every pool down
     so the runtime never waits on a sleeping domain.
   - Work distribution is a shared atomic claim counter: workers steal the
     next chunk of indices when they run dry, so an expensive schedule in
     the middle of the list cannot serialize the scan.
   - Early cancellation is an atomic low-water mark of the least index
     whose result satisfied [cut] (or raised).  Workers skip indices above
     the mark; every index at or below the final mark is guaranteed to
     have been evaluated, which is what makes the merge equal to the
     sequential scan.
   - [~jobs:1] (and empty/singleton job lists) bypass the pool entirely:
     no domains, no atomics — the sequential code path is the oracle the
     parallel one is tested against.

   Determinism caveat (DESIGN.md S24): parallelism changes wall-clock
   only, never a certificate judgment.  Anything nondeterministic would be
   a bug, and test/test_parallel.ml pins the equality. *)

let default_jobs () =
  match Sys.getenv_opt "CCAL_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* cumulative pool statistics (all pools, all batches)                 *)
(* ------------------------------------------------------------------ *)

type stats = { batches : int; jobs_run : int; busy_ns : int }

let stat_batches = Atomic.make 0
let stat_jobs = Atomic.make 0
let stat_busy_ns = Atomic.make 0

let stats () =
  {
    batches = Atomic.get stat_batches;
    jobs_run = Atomic.get stat_jobs;
    busy_ns = Atomic.get stat_busy_ns;
  }

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)
(* ------------------------------------------------------------------ *)

type batch = {
  run : int -> attempt:int -> [ `Done | `Crashed ];
      (** evaluate job [i] and store its cell; never raises.  [`Crashed]
          means an injected fault ate the attempt before evaluation — the
          claim loop requeues the index with the next attempt number. *)
  next : int Atomic.t;  (** next unclaimed index *)
  mutable chunk : int;
      (** indices per claim; the submitting domain recalibrates it after
          the warm-up prefix, before workers are woken *)
  limit : int;
  cut : int Atomic.t;  (** least index that ended the scan; [max_int] if none *)
  retry : (int * int) list Atomic.t;
      (** requeued (index, attempt) pairs from crashed workers; drained
          before fresh chunks are claimed *)
  give_up : unit -> bool;
      (** budget heuristic: when true, workers stop claiming (the
          budgeted merge recomputes the deterministic truncation) *)
}

type pool = {
  size : int;  (** total workers, including the submitting domain *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : batch option;
  mutable epoch : int;  (** bumped once per submitted batch *)
  mutable active : int;  (** spawned workers currently inside the batch *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let atomic_min a i =
  let rec go () =
    let cur = Atomic.get a in
    if i < cur && not (Atomic.compare_and_set a cur i) then go ()
  in
  go ()

(* The retry queue is a Treiber-style atomic list; contention is rare
   (only crashed workers push). *)
let pop_retry (b : batch) =
  let rec go () =
    match Atomic.get b.retry with
    | [] -> None
    | (x :: rest) as cur ->
      if Atomic.compare_and_set b.retry cur rest then Some x else go ()
  in
  go ()

let push_retry (b : batch) items =
  if items <> [] then begin
    let rec go () =
      let cur = Atomic.get b.retry in
      if not (Atomic.compare_and_set b.retry cur (items @ cur)) then go ()
    in
    go ()
  end

(* Claim and evaluate chunks until the counter runs past the limit or the
   cut mark.  Called by spawned workers and by the submitting domain.

   Crash-injection contract (DESIGN.md S27): a [`Crashed] attempt at
   index [i] requeues [(i, attempt + 1)] — and, when it happens mid-chunk,
   the abandoned remainder of the chunk — onto [b.retry]; the crashing
   worker then goes straight back to claiming, so the queue is always
   drained before the batch completes.  Attempts per index are strictly
   sequential (0, 1, ...), matching the inline attempt chain of the
   sequential path, so the evaluation that finally lands is the same one
   on every jobs count. *)
(* Evaluate the claimed index range [start, stop); returns how many
   indices were evaluated.  On an injected crash the failed index and the
   untouched remainder of the range are requeued and the range is
   abandoned. *)
let eval_chunk (b : batch) start stop =
  let t0 = Verify_clock.now_ns () in
  let i = ref start in
  (* A span, not a counter: which chunks each worker claims is
     timing-dependent, so it may only show up in the (inherently
     run-specific) trace, never in the jobs-deterministic totals. *)
  Ccal_core.Probe.span "pool.chunk" (fun () ->
      let live = ref true in
      while !live && !i < stop do
        (* indices above the cut can no longer influence the
           merged result: skip the rest of the chunk *)
        if !i <= Atomic.get b.cut then
          match b.run !i ~attempt:0 with
          | `Done -> incr i
          | `Crashed ->
            (* the crashed worker abandons its chunk; the failed
               index and the untouched remainder are requeued *)
            let rest = ref [ (!i, 1) ] in
            for j = stop - 1 downto !i + 1 do
              rest := (j, 0) :: !rest
            done;
            push_retry b !rest;
            live := false
        else live := false
      done);
  ignore (Atomic.fetch_and_add stat_jobs (!i - start));
  ignore
    (Atomic.fetch_and_add stat_busy_ns
       (Int64.to_int (Int64.sub (Verify_clock.now_ns ()) t0)));
  !i - start

let run_chunks (b : batch) =
  let rec claim () =
    if b.give_up () then ()
    else
      match pop_retry b with
      | Some (i, attempt) ->
        if i <= Atomic.get b.cut then begin
          match b.run i ~attempt with
          | `Done -> ignore (Atomic.fetch_and_add stat_jobs 1)
          | `Crashed -> push_retry b [ (i, attempt + 1) ]
        end;
        claim ()
      | None ->
        (* capture the chunk size once so the reserved range matches the
           counter increment even if a recalibration lands in between *)
        let c = b.chunk in
        let start = Atomic.fetch_and_add b.next c in
        if start < b.limit && start <= Atomic.get b.cut then begin
          ignore (eval_chunk b start (min b.limit (start + c)));
          claim ()
        end
  in
  claim ()

let rec worker_loop p seen =
  Mutex.lock p.mutex;
  while (not p.stopping) && p.epoch = seen do
    Condition.wait p.cond p.mutex
  done;
  if p.stopping then Mutex.unlock p.mutex
  else begin
    let seen = p.epoch in
    match p.job with
    | None ->
      (* the batch finished before this worker woke up *)
      Mutex.unlock p.mutex;
      worker_loop p seen
    | Some b ->
      p.active <- p.active + 1;
      Mutex.unlock p.mutex;
      run_chunks b;
      Mutex.lock p.mutex;
      p.active <- p.active - 1;
      if p.active = 0 then Condition.broadcast p.cond;
      Mutex.unlock p.mutex;
      worker_loop p seen
  end

let create_pool size =
  let p =
    {
      size;
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      epoch = 0;
      active = 0;
      stopping = false;
      domains = [];
    }
  in
  p.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p 0));
  p

let shutdown_pool p =
  Mutex.lock p.mutex;
  p.stopping <- true;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.domains;
  p.domains <- []

(* Submit one batch and help execute it; returns when every claimed chunk
   has been fully evaluated. *)
let run_batch p b =
  ignore (Atomic.fetch_and_add stat_batches 1);
  Mutex.lock p.mutex;
  p.job <- Some b;
  p.epoch <- p.epoch + 1;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  run_chunks b;
  Mutex.lock p.mutex;
  while p.active > 0 do
    Condition.wait p.cond p.mutex
  done;
  p.job <- None;
  Mutex.unlock p.mutex

(* Cost-calibrated claim sizing (DESIGN.md S24).  Per-schedule bodies
   range from ~1µs (a shallow lock game) to milliseconds (a C-interpreted
   layer); any fixed chunk constant is wrong for most of that range —
   too small and claim traffic plus chunk bookkeeping dominate, too large
   and the tail imbalances.  Before waking the workers, the submitting
   domain evaluates a short warm-up prefix through the normal claim
   protocol (so injected crashes still requeue), measures the per-item
   cost, and sizes every subsequent claim to about [target_claim_ns] of
   work, capped so at least [4 * size] claims remain for balance. *)
let target_claim_ns = 1_000_000
let warmup_items = 8

let calibrate_chunk pool (b : batch) =
  let warm = min warmup_items b.limit in
  if warm > 0 then begin
    let t0 = Verify_clock.now_ns () in
    let start = Atomic.fetch_and_add b.next warm in
    let got = eval_chunk b start (min b.limit (start + warm)) in
    let dt = Int64.to_int (Int64.sub (Verify_clock.now_ns ()) t0) in
    if got > 0 then begin
      let per_item = max 1 (dt / got) in
      let balance_cap = max 1 ((b.limit - warm) / (pool.size * 4)) in
      b.chunk <- max 1 (min (target_claim_ns / per_item) balance_cap)
    end
  end

(* Submit one batch with a calibrated chunk size.  The warm-up runs
   before workers are woken, so the recalibration is unobservable to
   them; results are unaffected either way — chunking changes wall-clock
   only, and test_telemetry.ml pins that the jobs-deterministic counters
   survive any chunk policy. *)
let run_calibrated p b =
  calibrate_chunk p b;
  run_batch p b

(* ------------------------------------------------------------------ *)
(* pool registry: one persistent pool per requested size               *)
(* ------------------------------------------------------------------ *)

let registry : (int, pool * bool ref) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()
let cleanup_registered = ref false

let shutdown_all () =
  Mutex.lock registry_mutex;
  let pools = Hashtbl.fold (fun _ (p, _) acc -> p :: acc) registry [] in
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex;
  List.iter shutdown_pool pools

(* Borrow the pool of the given size, creating it on first use.  Returns
   [None] when that pool is already running a batch (nested or concurrent
   use) — the caller then falls back to the sequential path, which is
   always correct. *)
let acquire size =
  Mutex.lock registry_mutex;
  if not !cleanup_registered then (
    cleanup_registered := true;
    at_exit shutdown_all);
  let r =
    match Hashtbl.find_opt registry size with
    | Some (p, busy) ->
      if !busy then None
      else (
        busy := true;
        Some (p, busy))
    | None ->
      let p = create_pool size in
      let busy = ref true in
      Hashtbl.add registry size (p, busy);
      Some (p, busy)
  in
  Mutex.unlock registry_mutex;
  r

let release busy =
  Mutex.lock registry_mutex;
  busy := false;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* deterministic scan / map                                            *)
(* ------------------------------------------------------------------ *)

type 'b cell =
  | Empty
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

(* Evaluate one job under the armed fault plan: the inline attempt chain
   (0, 1, ...) mirrors the pool's requeue path exactly, so the attempt
   that finally evaluates [f] is the same one the pool lands on. *)
let eval_faulted i f x =
  if not (Fault.armed ()) then f x
  else begin
    let rec go attempt =
      if Fault.crash ~index:i ~attempt then go (attempt + 1) else f x
    in
    go 0
  end

let sequential_scan ~cut f xs =
  let rec go i acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let y = eval_faulted i f x in
      if cut y then List.rev (y :: acc) else go (i + 1) (y :: acc) rest
  in
  go 0 [] xs

let scan ?jobs ~cut f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then sequential_scan ~cut f xs
  else
    match acquire (min jobs n) with
    | None -> sequential_scan ~cut f xs
    | Some (pool, busy) ->
      let arr = Array.of_list xs in
      let cells = Array.make n Empty in
      (* Telemetry counters bumped inside a job body go to a per-job
         capture delta, not the globals: under [jobs > 1] workers may
         evaluate indices past the final cut — indices a sequential scan
         never runs — so direct bumps would overcount.  The merge below
         commits the deltas of exactly the surviving prefix, in index
         order, keeping every counter total bit-identical to [~jobs:1]. *)
      let deltas = Array.make n None in
      let cut_mark = Atomic.make max_int in
      let run i ~attempt =
        if Fault.crash ~index:i ~attempt then `Crashed
        else begin
          deltas.(i) <-
            Ccal_core.Probe.captured (fun () ->
                match f arr.(i) with
                | v ->
                  cells.(i) <- Value v;
                  if cut v then atomic_min cut_mark i
                | exception e ->
                  cells.(i) <- Raised (e, Printexc.get_raw_backtrace ());
                  atomic_min cut_mark i);
          `Done
        end
      in
      let b =
        {
          run;
          next = Atomic.make 0;
          chunk = max 1 (min 32 (n / (pool.size * 4)));
          limit = n;
          cut = cut_mark;
          retry = Atomic.make [];
          give_up = (fun () -> false);
        }
      in
      Fun.protect
        ~finally:(fun () -> release busy)
        (fun () ->
          Ccal_core.Probe.span "pool.batch" (fun () -> run_calibrated pool b));
      (* Merge: walk the prefix up to and including the least cut index.
         Every slot in that prefix was evaluated (workers only skip
         indices strictly above the low-water mark, and crashed attempts
         are requeued until one lands), so the result is the sequential
         scan's, independent of completion order. *)
      let last = min (n - 1) (Atomic.get cut_mark) in
      for i = 0 to last do
        Ccal_core.Probe.commit deltas.(i)
      done;
      let rec collect i acc =
        if i > last then List.rev acc
        else
          match cells.(i) with
          | Value v -> collect (i + 1) (v :: acc)
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | Empty -> assert false (* all indices <= cut are evaluated *)
      in
      collect 0 []

let map ?jobs f xs = scan ?jobs ~cut:(fun _ -> false) f xs

(* The recommended jobs count, derived from a measured scaling curve
   rather than [Domain.recommended_domain_count] (which reflects the host,
   not the workload): the jobs value with the highest measured speedup,
   ties broken toward fewer domains — a tie means the extra domains buy
   nothing, so don't spawn them. *)
let recommend_domains curve =
  match curve with
  | [] -> 1
  | (j0, s0) :: rest ->
    fst
      (List.fold_left
         (fun (bj, bs) (j, s) ->
           if s > bs || (s = bs && j < bj) then (j, s) else (bj, bs))
         (j0, s0) rest)

(* ------------------------------------------------------------------ *)
(* budgeted scan                                                       *)
(* ------------------------------------------------------------------ *)

type 'b budgeted = {
  prefix : 'b list;  (** surviving outcomes, in index order *)
  scanned : int;  (** [List.length prefix] *)
  total : int;  (** number of jobs submitted *)
  steps_counted : int;  (** deterministic cumulative cost over the prefix *)
  ran_out : bool;  (** the scan stopped because the budget ran out *)
}

(* The deterministic truncation rules, shared verbatim by the sequential
   oracle and the pool's merge pass (DESIGN.md S27).  Walking indices in
   order with the cumulative cost [cum] of the included prefix:

   - stop (exhausted) before index [i] once [cum >= allowance], where
     [allowance] is the token's remaining step budget captured at scan
     entry — a pure function of the inputs, since every earlier scan
     [settle]d the token;
   - stop (exhausted) at [i] when its outcome is [interrupted] — with a
     step budget this means the game alone overran the allowance, which
     is deterministic; a deadline or cancellation can also interrupt,
     and those are wall-clock events allowed to move the prefix;
   - stop (complete) at [i] including the outcome when [cut] fires;
   - otherwise include the outcome, add its cost, continue.

   The shared token is charged live by workers purely as an early-stop
   heuristic ([give_up]); [Budget.settle] overwrites it with the
   deterministic total afterwards. *)
let budgeted_scan ?jobs ~token ~cost ~interrupted ~cut f xs =
  let n = List.length xs in
  let base = Budget.steps_used token in
  let allowance = Budget.steps_remaining token in
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  let arr = Array.of_list xs in
  let eval_raw i = f ~stop:(Budget.game_stop token ~allowance) arr.(i) in
  let eval i = eval_faulted i (fun _ -> eval_raw i) arr.(i) in
  let finish ~ran_out prefix scanned cum =
    Budget.settle token (base + cum);
    if ran_out then Budget.note_ran_out token;
    { prefix = List.rev prefix; scanned; total = n; steps_counted = cum; ran_out }
  in
  let sequential () =
    let rec go i cum acc =
      if i >= n then finish ~ran_out:false acc i cum
      else if cum >= allowance then finish ~ran_out:true acc i cum
      else if Budget.poll_wall token then finish ~ran_out:true acc i cum
      else begin
        let v = eval i in
        Budget.charge token (cost v);
        if interrupted v then finish ~ran_out:true acc i cum
        else if cut v then finish ~ran_out:false (v :: acc) (i + 1) (cum + cost v)
        else go (i + 1) (cum + cost v) (v :: acc)
      end
    in
    go 0 0 []
  in
  if n = 0 then finish ~ran_out:false [] 0 0
  else if jobs <= 1 || n <= 1 then sequential ()
  else
    match acquire (min jobs n) with
    | None -> sequential ()
    | Some (pool, busy) ->
      let cells = Array.make n Empty in
      let deltas = Array.make n None in
      let cut_mark = Atomic.make max_int in
      (* [body] evaluates uninjected: in the pool path the crash decision
         is made per claim (below), driving the requeue machinery; only
         the merge's hole-filling replays the inline attempt chain. *)
      let body ~faulted i () =
        match (if faulted then eval i else eval_raw i) with
        | v ->
          cells.(i) <- Value v;
          Budget.charge token (cost v);
          if cut v || interrupted v then atomic_min cut_mark i
        | exception e ->
          cells.(i) <- Raised (e, Printexc.get_raw_backtrace ());
          atomic_min cut_mark i
      in
      let run i ~attempt =
        if Fault.crash ~index:i ~attempt then `Crashed
        else begin
          deltas.(i) <- Ccal_core.Probe.captured (body ~faulted:false i);
          `Done
        end
      in
      let b =
        {
          run;
          next = Atomic.make 0;
          chunk = max 1 (min 32 (n / (pool.size * 4)));
          limit = n;
          cut = cut_mark;
          retry = Atomic.make [];
          give_up = (fun () -> Budget.poll token);
        }
      in
      Fun.protect
        ~finally:(fun () -> release busy)
        (fun () ->
          Ccal_core.Probe.span "pool.batch" (fun () -> run_calibrated pool b));
      (* Deterministic merge: same walk as [sequential], over the cells.
         Holes — indices skipped because a worker gave up on the racy
         heuristic — are filled by evaluating inline, capture and all, so
         the committed counter stream is identical to the oracle's. *)
      let fill i = deltas.(i) <- Ccal_core.Probe.captured (body ~faulted:true i) in
      let rec walk i cum acc =
        if i >= n then finish ~ran_out:false acc i cum
        else if cum >= allowance then finish ~ran_out:true acc i cum
        else begin
          (match cells.(i) with
          | Empty ->
            (* don't start new work past a tripped deadline; an
               already-evaluated cell still gets included below *)
            if not (Budget.poll_wall token) then fill i
          | Value _ | Raised _ -> ());
          match cells.(i) with
          | Empty -> finish ~ran_out:true acc i cum
          | Raised (e, bt) ->
            Ccal_core.Probe.commit deltas.(i);
            Printexc.raise_with_backtrace e bt
          | Value v ->
            Ccal_core.Probe.commit deltas.(i);
            if interrupted v then finish ~ran_out:true acc i cum
            else if cut v then
              finish ~ran_out:false (v :: acc) (i + 1) (cum + cost v)
            else walk (i + 1) (cum + cost v) (v :: acc)
        end
      in
      walk 0 0 []
