open Ccal_core

type bound_report = {
  runs : int;
  max_steps_used : int;
  bound : int;
}

(* Per-schedule body, handed to the {!Parallel} pool: the completed run's
   step count, the failure message, or the mark that the budget's stop
   closure interrupted the game mid-run.  Paired with the raw step count
   so the budgeted scan can charge actual game cost. *)
let check_sched ~bound layer threads ~stop sched =
  let outcome =
    Game.replay (Game.config ~max_steps:bound ?stop layer threads sched)
  in
  let r =
    match outcome.Game.status with
    | Game.All_done -> `Done outcome.Game.steps
    | Game.Cancelled -> `Interrupted
    | Game.Deadlock ids ->
      `Failed
        (Printf.sprintf "deadlock among threads %s under %s"
           (String.concat "," (List.map string_of_int ids))
           sched.Sched.name)
    | Game.Stuck (i, _, msg) ->
      `Failed
        (Printf.sprintf "thread %d stuck under %s: %s" i sched.Sched.name msg)
    | Game.Out_of_fuel ->
      `Failed
        (Printf.sprintf "run under %s exceeded the progress bound of %d moves"
           sched.Sched.name bound)
  in
  (outcome.Game.steps, r)

let completes_within_ctx ~ctx ?scheds ~bound layer threads =
  Ctx.arm ctx @@ fun () ->
  let scheds =
    match scheds with
    | Some s -> s
    | None -> Explore.scheds_of_strategy_ctx ~ctx layer threads
  in
  let replay =
    Parallel.budgeted_scan
      ?jobs:(Ctx.jobs_opt ctx)
      ~token:ctx.Ctx.token ~cost:fst
      ~interrupted:(fun (_, r) ->
        match r with `Interrupted -> true | _ -> false)
      ~cut:(fun (_, r) -> match r with `Failed _ -> true | _ -> false)
      (check_sched ~bound layer threads)
      scheds
  in
  let rec go runs worst = function
    | [] -> Ok { runs; max_steps_used = worst; bound }
    | (_, `Done steps) :: rest -> go (runs + 1) (max worst steps) rest
    | (_, `Failed msg) :: _ -> Error msg
    | (_, `Interrupted) :: _ ->
      (* excluded from the budgeted prefix by construction *)
      assert false
  in
  let report = go 0 0 replay.Parallel.prefix in
  if replay.Parallel.ran_out then
    Budget.Exhausted { spent = Budget.spent ctx.Ctx.token; partial = report }
  else Budget.Complete report

let lock_of (e : Event.t) =
  match e.args with
  | Value.Vint b :: _ -> Some b
  | _ -> None

(* Per lock, the source sequence of [tag] events. *)
let order_of tag l log =
  List.filter_map
    (fun (e : Event.t) ->
      if String.equal e.tag tag && lock_of e = Some l then Some e.src else None)
    (Log.chronological log)

let locks_mentioned tag log =
  List.sort_uniq Stdlib.compare
    (List.filter_map
       (fun (e : Event.t) ->
         if String.equal e.tag tag then lock_of e else None)
       (Log.chronological log))

let fifo_order ~ticket_tag ~enter_tag log =
  List.for_all
    (fun l ->
      let tickets = order_of ticket_tag l log in
      let enters = order_of enter_tag l log in
      (* every completed entry came in ticket order: [enters] is a prefix
         of [tickets] *)
      let rec prefix a b =
        match a, b with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && prefix a' b'
        | _ :: _, [] -> false
      in
      prefix enters tickets)
    (locks_mentioned ticket_tag log)

let waiting_spans ~ticket_tag ~enter_tag log =
  let events = Array.of_list (Log.chronological log) in
  let n = Array.length events in
  let spans = ref [] in
  for i = 0 to n - 1 do
    let e = events.(i) in
    if String.equal e.Event.tag ticket_tag then (
      let lock = lock_of e in
      let j = ref (i + 1) in
      let found = ref false in
      while (not !found) && !j < n do
        let e' = events.(!j) in
        if
          String.equal e'.Event.tag enter_tag
          && e'.Event.src = e.Event.src && lock_of e' = lock
        then (
          spans := (e.Event.src, !j - i) :: !spans;
          found := true);
        incr j
      done)
  done;
  List.rev !spans

let starvation_bound ~cs_events ~spin_events ~ncpus =
  cs_events * spin_events * ncpus

let check_starvation_free ~ticket_tag ~enter_tag ~cs_events ~spin_events ~ncpus
    logs =
  let bound = starvation_bound ~cs_events ~spin_events ~ncpus in
  let rec go worst = function
    | [] -> Ok worst
    | log :: rest ->
      let spans = waiting_spans ~ticket_tag ~enter_tag log in
      let bad = List.find_opt (fun (_, s) -> s > bound) spans in
      (match bad with
      | Some (t, s) ->
        Error
          (Printf.sprintf
             "thread %d waited %d events, exceeding the n*m*#CPU bound of %d"
             t s bound)
      | None ->
        let worst =
          List.fold_left (fun w (_, s) -> max w s) worst spans
        in
        go worst rest)
  in
  go 0 logs
