(** Data-race detection through the push/pull memory model.

    "If a program tries to pull a not-free location, or tries to access or
    push to a location not owned by the current CPU, a data race may occur
    and the machine gets stuck.  One goal of concurrent program
    verification is to show that a program is data-race free; in our
    setting, we accomplish this by showing that the program does not get
    stuck" (Sec. 3.1). *)

open Ccal_core

type verdict =
  | Race_free of { runs : int }
  | Race of { sched_name : string; detail : string; log : Log.t }
  | Other_failure of string

val check :
  ?max_steps:int ->
  ?strategy:Explore.strategy ->
  ?scheds:Sched.t list ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  verdict
(** Run the machine under each scheduler; a [Stuck] status carrying
    [Layer.Data_race] — the structured mark a racing push/pull replay
    leaves — is reported as a race, any other stuckness as
    [Other_failure]; completed runs are additionally re-validated with
    {!Ccal_machine.Pushpull.race_free}.  When no explicit [scheds] are
    given the suite comes from [strategy]
    (default {!Explore.default_strategy}, i.e. DPOR). *)
