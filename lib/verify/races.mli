(** Data-race detection through the push/pull memory model.

    "If a program tries to pull a not-free location, or tries to access or
    push to a location not owned by the current CPU, a data race may occur
    and the machine gets stuck.  One goal of concurrent program
    verification is to show that a program is data-race free; in our
    setting, we accomplish this by showing that the program does not get
    stuck" (Sec. 3.1). *)

open Ccal_core

type partial = {
  scanned : int;  (** schedules fully evaluated — the resume point *)
  clean : int;  (** clean runs among them *)
  others : string list;  (** non-race failure messages, schedule order *)
}
(** What a budget-exhausted scan established before the budget tripped.
    Racy outcomes never appear: a race cuts the scan and wins as a full
    [Race] verdict immediately. *)

type verdict =
  | Race_free of { runs : int }  (** [runs] counts the clean runs *)
  | Race of { sched_name : string; detail : string; log : Log.t }
  | Other_failure of string
  | Exhausted of { spent : Budget.spent; partial : partial }
      (** the budget ran out mid-scan; [partial] resumes it *)

val check_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  ?scheds:Sched.t list ->
  ?resume:partial ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  verdict
(** Run the machine under each scheduler; a [Stuck] status carrying
    [Layer.Data_race] — the structured mark a racing push/pull replay
    leaves — is reported as a race; completed runs are additionally
    re-validated with {!Ccal_machine.Pushpull.race_free}.  Any other
    stuckness (deadlock, fuel exhaustion, an invalid transition) is a
    non-race failure: it is {e collected without aborting the scan}, so a
    genuine race on a later schedule is still found; only when no schedule
    races is [Other_failure] reported (the first failure, annotated with
    the count of further ones).

    When no explicit [scheds] are given the suite comes from
    [ctx.strategy] (default DPOR).  [ctx.jobs] spreads the scan over a
    {!Parallel} domain pool; the verdict is bit-identical for every jobs
    count — a reported [Race] is always the lowest-indexed racing
    schedule.  [ctx.cache] memoizes [Race_free] verdicts only, keyed on
    the game and suite identity (never jobs): a racing or otherwise
    failing game always re-runs live, so its counterexample is reproduced
    from the real machine, never replayed from disk.

    [ctx.token] is charged one step per game move.  When the budget runs
    out mid-scan the verdict is [Exhausted] carrying a {!partial}; pass
    it back as [?resume] (schedulers are regenerated — they are stateful)
    to continue where the scan stopped, with a final verdict byte-equal
    to a from-scratch run.  With [ctx.cache] the partial is also stashed
    under its own ["races.partial"] kind and picked up automatically on
    the next identically-keyed call; it is invalidated exactly when the
    full verdict lands.  Under a pure step budget the partial is
    bit-identical for every jobs count. *)
