(** Data-race detection through the push/pull memory model.

    "If a program tries to pull a not-free location, or tries to access or
    push to a location not owned by the current CPU, a data race may occur
    and the machine gets stuck.  One goal of concurrent program
    verification is to show that a program is data-race free; in our
    setting, we accomplish this by showing that the program does not get
    stuck" (Sec. 3.1). *)

open Ccal_core

type verdict =
  | Race_free of { runs : int }  (** [runs] counts the clean runs *)
  | Race of { sched_name : string; detail : string; log : Log.t }
  | Other_failure of string

val check :
  ?max_steps:int ->
  ?strategy:Explore.strategy ->
  ?scheds:Sched.t list ->
  ?jobs:int ->
  ?cache:Cache.t ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  verdict
(** Run the machine under each scheduler; a [Stuck] status carrying
    [Layer.Data_race] — the structured mark a racing push/pull replay
    leaves — is reported as a race; completed runs are additionally
    re-validated with {!Ccal_machine.Pushpull.race_free}.  Any other
    stuckness (deadlock, fuel exhaustion, an invalid transition) is a
    non-race failure: it is {e collected without aborting the scan}, so a
    genuine race on a later schedule is still found; only when no schedule
    races is [Other_failure] reported (the first failure, annotated with
    the count of further ones).  When no explicit [scheds] are given the
    suite comes from [strategy] (default {!Explore.default_strategy},
    i.e. DPOR).  [jobs] spreads the scan over a {!Parallel} domain pool;
    the verdict is bit-identical for every jobs count — a reported [Race]
    is always the lowest-indexed racing schedule — and [~jobs:1] (the
    default) keeps the sequential path.  [cache] memoizes [Race_free]
    verdicts only, keyed on the game and suite identity (never [jobs]):
    a racing or otherwise failing game always re-runs live, so its
    counterexample is reproduced from the real machine, never replayed
    from disk. *)
