(** The Fig. 1 layer stack, assembled and verified end-to-end.

    The paper's motivating picture: above the multicore hardware sit the
    spinlocks, then the shared queues, then the thread scheduler with
    [yield]/[sleep]/[wakeup], then the high-level synchronization libraries
    (queuing lock, condition variables, IPC).  This module certifies every
    edge of that stack with the layer calculus and checks the two linking
    theorems, returning a machine-readable report — the reproduction of
    Figure 1 plus the verification pipeline of Figure 5. *)

open Ccal_core

type edge = {
  edge_name : string;  (** e.g. ["L0 |- M_ticket : Llock"] *)
  kind :
    [ `Cert of Calculus.rule_name | `Linking | `Soundness | `Adversarial ];
  checks : int;  (** evidence entries / schedules discharged *)
  millis : float;
  counters : (string * int) list;
      (** this edge's telemetry counter growth ({!Telemetry.diff_counters}
          over the edge's body); [[]] when telemetry is off.  Like
          [checks], identical for every [jobs] count. *)
}

type report = {
  edges : edge list;
  total_checks : int;
  total_millis : float;
}

type progress = { completed : report; next_edge : string option }
(** How far a (possibly budgeted) stack verification got: the report over
    the completed edges, and — when the budget ran out — the first edge
    that did not complete. *)

val pp_report : Format.formatter -> report -> unit

val pp_report_canonical : Format.formatter -> report -> unit
(** The verdict-stable projection: like {!pp_report} but without the
    timing fields.  This text is bit-identical between a cold and a warm
    cached run, and across every [jobs] count — the CI cache leg and the
    cache tests compare it byte for byte. *)

val edge_fingerprints :
  ?lock:[ `Ticket | `Mcs ] ->
  ?seeds:int ->
  ?strategy:Ctx.Engine.t ->
  ?memory:Ccal_core.Memory.t ->
  unit ->
  (string * Fingerprint.t) list
(** The cache key of every edge {!verify_all} would check, in order,
    keyed by [edge_name] — exposed so tests can assert the invalidation
    contract: changing an input (the lock implementation, the seeds, the
    strategy, the memory mode) must change exactly the keys of the edges
    that depend on it.  The memory mode enters {e every} key — an SC
    verdict is never served for a TSO query.  [jobs] takes no part in
    any key. *)

val adversarial_edge_name : string
(** Name of the opt-in spinning-rwlock edge, for CLI/report plumbing. *)

val verify_all_ctx :
  ctx:Ctx.t ->
  ?lock:[ `Ticket | `Mcs ] ->
  ?seeds:int ->
  ?strategy:Ctx.Engine.t ->
  ?adversarial:bool ->
  unit ->
  (progress, string) result Budget.outcome
(** Certify and link the whole stack.  When [strategy] is given, every
    game-driving edge (the linking theorems, the Pcomp compatibility
    corpus and the soundness games) derives its scheduler suite from that
    engine over the edge's own game — the DPOR family walks each game and
    replays only non-redundant prefixes; otherwise the seeded default
    suite ([seeds], default 4) is used.  ([ctx.strategy] is {e not} used:
    the stack's historical default is the seeded suite, so the strategy
    stays an explicit argument.)  [ctx.jobs] spreads every game-driving
    edge's schedule scan over a {!Parallel} domain pool; the report
    differs only in the timing fields — failures and check counts are
    identical for every jobs count.  The edges:
    {ol
    {- multicore linking (Thm 3.1) over the hardware machine;}
    {- the spinlock certificate ([`Ticket] by default; [`Mcs] drops in the
       other implementation unchanged, Sec. 6);}
    {- the shared-queue certificate and its vertical composition with the
       lock (Fig. 5 extended);}
    {- parallel composition of per-thread lock certificates (Pcomp);}
    {- multithreaded linking (Thm 5.1) over the scheduler;}
    {- the queuing-lock and IPC certificates;}
    {- whole-machine soundness games for the lock, queue and IPC layers.}}

    [adversarial] (default false) appends the spinning-rwlock livelock
    edge ({!adversarial_edge_name}): the C spin loops phase-lock with the
    trace-prefix schedulers and burn their whole fuel allowance, so the
    edge is effectively a hang without a budget and the canonical
    demonstration that one turns it into an [Exhausted] report.

    [ctx.budget] is polled between edges and inside every budgeted inner
    checker; an [Exhausted] outcome carries the {!progress} frontier —
    the report over completed edges plus the name of the first edge that
    did not complete.  Completed edges are never re-verified on resume
    when [ctx.cache] is set (their verdicts were stored).

    [ctx.cache] memoizes each edge's verdict on disk under its
    {!edge_fingerprints} key: a hit pushes the stored edge (verdict,
    [checks], [counters]) with the lookup time as [millis] and skips the
    edge's game entirely; a miss runs the edge and stores it on success.
    Failing edges are never stored, so failures always reproduce live.
    The cache handle is also threaded into the edges' inner checkers
    ({!Explore.run_all_ctx}, {!Dpor}, {!Linearizability.refine_cert_ctx}),
    which keep their own finer-grained entries.  The adversarial edge is
    never cached. *)
