open Ccal_core
module L = Ccal_machine.Litmus

type report = {
  name : string;
  memory : Memory.t;
  observed : int list list;  (** reachable outcome tuples, sorted distinct *)
  expected : int list list;
  errors : string list;  (** extraction failures; must be empty *)
  schedules : int;  (** surviving DPOR prefixes replayed *)
}

let ok r = r.errors = [] && r.observed = r.expected

(* TSO-only outcomes a mode actually reached / missed — for reporting. *)
let extra r = List.filter (fun o -> not (List.mem o r.expected)) r.observed
let missing r = List.filter (fun o -> not (List.mem o r.observed)) r.expected

let run_test ~ctx (t : L.test) =
  let memory = ctx.Ctx.memory in
  let layer = Ccal_machine.Tso.machine_layer memory in
  let result =
    Budget.value
      (Dpor.explore_ctx ~ctx ~independence:Dpor.Commuting_events
         ~depth:t.L.depth layer t.L.threads)
  in
  let observed, errors =
    List.fold_left
      (fun (obs, errs) (o : Game.outcome) ->
        match o.Game.status with
        | Game.All_done -> (
          match t.L.observe o with
          | Ok tuple -> tuple :: obs, errs
          | Error e -> obs, e :: errs)
        | status -> obs, Format.asprintf "%a" Game.pp_status status :: errs)
      ([], []) result.Dpor.outcomes
  in
  {
    name = t.L.name;
    memory;
    observed = List.sort_uniq compare observed;
    expected = L.expected memory t;
    errors = List.sort_uniq compare errors;
    schedules = List.length result.Dpor.outcomes;
  }

let run_all ?(tests = L.tests) ~ctx () = List.map (run_test ~ctx) tests

let pp_report fmt r =
  let pp_set fmt os =
    Format.fprintf fmt "{%s}"
      (String.concat " "
         (List.map (Format.asprintf "%a" L.pp_outcome) os))
  in
  Format.fprintf fmt "%-10s %-4s %-4s observed=%a" r.name
    (Memory.to_string r.memory)
    (if ok r then "ok" else "FAIL")
    pp_set r.observed;
  if extra r <> [] then Format.fprintf fmt " extra=%a" pp_set (extra r);
  if missing r <> [] then Format.fprintf fmt " missing=%a" pp_set (missing r);
  List.iter (fun e -> Format.fprintf fmt " error=%s" e) r.errors

(* The per-mode outcome table: every outcome either mode reaches, marked
   per mode — the artifact the CI memory-model leg uploads. *)
let pp_table fmt (reports : (report * report) list) =
  Format.fprintf fmt "%-10s %-12s %-3s %-3s@." "test" "outcome" "sc" "tso";
  List.iter
    (fun (sc, tso) ->
      let outcomes =
        List.sort_uniq compare
          (sc.observed @ tso.observed @ sc.expected @ tso.expected)
      in
      List.iter
        (fun o ->
          let mark r = if List.mem o r.observed then "yes" else "no" in
          Format.fprintf fmt "%-10s %-12s %-3s %-3s@." sc.name
            (Format.asprintf "%a" L.pp_outcome o)
            (mark sc) (mark tso))
        outcomes)
    reports

(* Run the corpus under both modes with the same ctx knobs. *)
let run_both ?(tests = L.tests) ~ctx () =
  List.map
    (fun t ->
      ( run_test ~ctx:(Ctx.with_memory Memory.Sc ctx) t,
        run_test ~ctx:(Ctx.with_memory Memory.Tso ctx) t ))
    tests
