(* The unified checker context (DESIGN.md S27).

   PR 2–4 grew the checkers a long tail of optional arguments — [?jobs],
   [?cache], [?strategy], stats toggles — and later PRs added budget and
   fault knobs on top.  Rather than widen every signature again, the
   knobs live in one record threaded uniformly through every checker
   entry point ([Races.check_ctx], [Linearizability.refine_ctx],
   [Progress.completes_within_ctx], [Dpor.explore_ctx],
   [Explore.run_all_ctx], [Stack.verify_all_ctx]). *)

module Engine = Ccal_core.Strategy.Engine

type t = {
  jobs : int;  (** domains for the pool; 1 = the sequential oracle *)
  cache : Cache.t option;
  strategy : Engine.t;  (** suite generator when no [?scheds] is given *)
  memory : Ccal_core.Memory.t;
      (** memory mode the games run under; enters every cache key, so an
          SC verdict is never served for a TSO query *)
  budget : Budget.t;
  token : Budget.token;
      (** the running token for [budget]; nested checkers (Stack → Races
          → Explore) share it by passing the same context down, so one
          budget covers the whole verification *)
  faults : Fault.plan;
  stats : bool;  (** CLI toggle: print the telemetry table afterwards *)
  trace : string option;  (** CLI toggle: write a Chrome trace here *)
}

let default =
  {
    jobs = 1;
    cache = None;
    strategy = Engine.default;
    memory = Ccal_core.Memory.default;
    budget = Budget.unlimited;
    token = Budget.no_token;
    faults = Fault.none;
    stats = false;
    trace = None;
  }

(* Builders.  [with_budget] (re)starts the token, so the deadline epoch
   is the moment the budget is attached — attach it last, right before
   running the checker. *)
let with_jobs jobs t = { t with jobs = max 1 jobs }
let with_cache cache t = { t with cache = Some cache }
let without_cache t = { t with cache = None }
let with_strategy strategy t = { t with strategy = Engine.checked strategy }
let with_memory memory t = { t with memory }
let with_budget budget t = { t with budget; token = Budget.start budget }
let with_faults faults t = { t with faults }
let with_stats stats t = { t with stats }
let with_trace trace t = { t with trace = Some trace }

let make ?(jobs = 1) ?cache ?(strategy = Engine.default)
    ?(memory = Ccal_core.Memory.default) ?budget ?(faults = Fault.none)
    ?(stats = false) ?trace () =
  let budget = Option.value budget ~default:Budget.unlimited in
  {
    jobs = max 1 jobs;
    cache;
    strategy = Engine.checked strategy;
    memory;
    budget;
    token = (if Budget.is_unlimited budget then Budget.no_token else Budget.start budget);
    faults;
    stats;
    trace;
  }

let jobs_opt t = if t.jobs <= 1 then None else Some t.jobs

(* [arm ctx f] runs [f] with the context's fault plan armed; every
   checker entry point wraps its body in this. *)
let arm t f = Fault.with_plan t.faults f

let pp fmt t =
  Format.fprintf fmt "jobs:%d cache:%s strategy:%s memory:%s budget:%a faults:%a"
    t.jobs
    (match t.cache with Some c -> Cache.dir c | None -> "off")
    (Engine.to_string t.strategy)
    (Ccal_core.Memory.to_string t.memory)
    Budget.pp t.budget Fault.pp t.faults
