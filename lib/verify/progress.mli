(** Progress properties (Sec. 2, Sec. 4.1).

    Certified concurrent layers enforce termination-sensitive correctness:
    a certified lock is not just mutually exclusive but {e starvation-free}
    — under a fair scheduler and the definite-release rely condition, every
    acquire completes within a bounded number of steps ("the while-loop in
    acq terminates in n × m × #CPU steps", Sec. 4.1). *)

open Ccal_core

type bound_report = {
  runs : int;
  max_steps_used : int;  (** worst completed-run length observed *)
  bound : int;
}

val completes_within_ctx :
  ctx:Ctx.t ->
  ?scheds:Sched.t list ->
  bound:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  (bound_report, string) result Budget.outcome
(** Every run under (fair) schedulers finishes — no deadlock, no stuck
    thread — within [bound] moves.  The scheduler suite is [scheds] when
    given, otherwise derived from [ctx.strategy] (default DPOR).
    [ctx.jobs] spreads the scan over a {!Parallel} domain pool; the
    reported failure is always the lowest-indexed failing schedule,
    identical to the sequential scan.  [ctx.token] is charged one step
    per game move; an [Exhausted] outcome carries the report over the
    schedule prefix evaluated before the budget tripped ([Ok]-shaped: a
    failing schedule cuts the scan and completes with [Error]
    immediately). *)

val fifo_order :
  ticket_tag:string ->
  enter_tag:string ->
  Log.t ->
  bool
(** First-in-first-out: per lock, the order of [enter_tag] events (e.g.
    [pull]) matches the order in which threads drew tickets
    ([ticket_tag], e.g. [FAI_t] for the ticket lock or [xchg] for MCS).
    FIFO implies 0-bounded bypass, the strongest starvation-freedom. *)

val waiting_spans :
  ticket_tag:string ->
  enter_tag:string ->
  Log.t ->
  (Event.tid * int) list
(** For each completed acquisition: the number of log events between
    drawing the ticket and entering — the measured wait that the
    starvation-freedom bound dominates. *)

val starvation_bound :
  cs_events:int -> spin_events:int -> ncpus:int -> int
(** The Sec. 4.1 bound: with every critical section over within
    [cs_events] events ([n], from the definite-release rely condition),
    any CPU scheduled within [spin_events] of its competitors' events
    ([m], from scheduler fairness), an acquire completes within
    [n × m × #CPU] events. *)

val check_starvation_free :
  ticket_tag:string ->
  enter_tag:string ->
  cs_events:int ->
  spin_events:int ->
  ncpus:int ->
  Log.t list ->
  (int, string) result
(** Check every waiting span of every log against {!starvation_bound};
    returns the worst span seen. *)
