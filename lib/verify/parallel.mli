(** A work-stealing domain-pool executor with deterministic merging
    (DESIGN.md S24).

    The bounded substitute for the paper's ∀-quantified proofs replays the
    layer game over enumerated scheduler suites — an independent job per
    schedule.  This module spreads such job lists over a persistent pool
    of OCaml domains (stdlib [Domain]/[Mutex]/[Condition], no new
    dependencies) while keeping every checker verdict {e bit-identical} to
    the sequential scan: parallelism changes wall-clock only, never a
    certificate judgment.

    Pools are cached by size and reused across calls; worker domains sleep
    between batches and are joined by an [at_exit] hook.  The submitting
    domain always participates, so [~jobs:n] means [n] runners on [n - 1]
    spawned domains.  [~jobs:1] (the oracle) bypasses the pool entirely
    and takes the plain sequential code path. *)

val default_jobs : unit -> int
(** The [CCAL_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()].  What the CLI and the
    benchmarks use when no [--jobs] is given. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], evaluated across [min jobs
    (length xs)] domains.  Exceptions are re-raised deterministically: the
    one from the lowest-indexed job, as the sequential map would. *)

val scan : ?jobs:int -> cut:('b -> bool) -> ('a -> 'b) -> 'a list -> 'b list
(** [scan ~jobs ~cut f xs] is the parallel early-exit scan: it returns
    exactly what

    {[ let rec go = function
         | [] -> []
         | x :: r -> let y = f x in if cut y then [ y ] else y :: go r ]}

    would — all results up to and including the {e lowest-indexed} job
    satisfying [cut] — regardless of the order in which domains finish.
    Once a cut is pinned, chunks wholly above it are cancelled rather than
    evaluated.  This is how every checker reports the failure of the
    lowest-indexed schedule, identical to the sequential fold. *)

val recommend_domains : (int * float) list -> int
(** [recommend_domains curve] derives the jobs count to recommend from a
    measured [(jobs, speedup)] scaling curve: the entry with the highest
    speedup, ties broken toward fewer domains.  [1] on an empty curve.
    This is what the benchmark writes into [BENCH_parallel.json]'s
    [recommended_domains] — a measurement, not
    [Domain.recommended_domain_count]. *)

(** {1 Budgeted scan} *)

type 'b budgeted = {
  prefix : 'b list;  (** surviving outcomes, in index order *)
  scanned : int;  (** [List.length prefix] *)
  total : int;  (** number of jobs submitted *)
  steps_counted : int;  (** deterministic cumulative cost over the prefix *)
  ran_out : bool;  (** the scan stopped because the budget ran out *)
}

val budgeted_scan :
  ?jobs:int ->
  token:Budget.token ->
  cost:('b -> int) ->
  interrupted:('b -> bool) ->
  cut:('b -> bool) ->
  (stop:(unit -> bool) option -> 'a -> 'b) ->
  'a list ->
  'b budgeted
(** {!scan} under a {!Budget.token} (DESIGN.md S27).  The body receives a
    per-job stop closure to thread into [Game.config]; [cost] extracts a
    job's step cost from its outcome and [interrupted] recognises an
    outcome cut short by the stop closure (e.g. [Game.Cancelled]).

    Determinism: with a {e step} budget, the returned prefix is a pure
    function of the inputs — every job gets the same private step
    allowance (the token's remaining budget at scan entry), and the
    merge re-truncates the prefix sequentially at the first job whose
    cumulative cost exceeds the allowance, evaluating inline any job the
    racy early-stop heuristic skipped.  Deadline and cancellation are
    wall-clock events and may move the truncation point, never a
    completed outcome.  On return the token is {!Budget.settle}d with the
    deterministic total, so stacked scans compose.  Injected worker
    crashes (see {!Fault}) are absorbed by the pool's requeue path in
    this scan and in {!scan}/{!map}. *)

type stats = {
  batches : int;  (** batches submitted to any pool *)
  jobs_run : int;  (** jobs actually evaluated (cancelled ones excluded) *)
  busy_ns : int;  (** cumulative per-chunk busy time across workers *)
}

val stats : unit -> stats
(** Cumulative counters over all pools since program start, timed with
    {!Verify_clock}.  [busy_ns / elapsed_ns] approximates pool
    utilisation in the scaling benchmarks. *)

val shutdown_all : unit -> unit
(** Join every pooled domain.  Runs automatically [at_exit]; exposed for
    tests and long-lived embedders. *)
