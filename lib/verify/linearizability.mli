(** Linearizability as contextual refinement.

    Filipovic et al. showed linearizability is equivalent to contextual
    refinement, and Liang et al. extended the equivalence to progress
    properties (Sec. 7, "Abstraction for Concurrent Objects") — which is
    why CCAL proves contextual refinement and gets linearizability for
    free.  This checker follows the same route executably: a concurrent
    object is linearizable on a workload when every underlay log, produced
    under a scheduler suite, translates to a log the atomic overlay machine
    reproduces with the same per-thread results. *)

open Ccal_core

type report = {
  runs : int;
  distinct_logs : int;
  events : int;  (** total underlay events observed *)
}

val refine_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  ?expect_all_done:bool ->
  underlay:Layer.t ->
  impl:Prog.Module.t ->
  overlay:Layer.t ->
  rel:Sim_rel.t ->
  client:(Event.tid -> Prog.t) ->
  tids:Event.tid list ->
  scheds:Sched.t list ->
  unit ->
  (Refinement.report, Refinement.failure) result Budget.outcome
(** Drop-in parallel {!Refinement.check}: the per-schedule body
    ({!Refinement.check_sched_stop}) is evaluated over a {!Parallel}
    domain pool and the ordered results folded as the sequential loop
    would — the report (or lowest-indexed failure) is structurally
    identical for every [ctx.jobs] count, and [jobs = 1] (the default)
    stays on the sequential path.  [ctx.cache] memoizes successful
    reports, keyed on both interfaces, the implementation, the relation
    name, the client workload, and the suite identity; the stored entry
    records the hash of its logs and is invalidated (and re-run) if it
    no longer matches.  Failures are never stored — a failing refinement
    always reproduces live.  [ctx.token] is charged the underlay event
    count per schedule; an [Exhausted] outcome carries the ([Ok]-shaped)
    report over the schedules checked before the budget tripped. *)

val refine_cert_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  ?expect_all_done:bool ->
  Calculus.cert ->
  client:(Event.tid -> Prog.t) ->
  scheds:Sched.t list ->
  (Refinement.report, Refinement.failure) result Budget.outcome
(** {!refine_ctx} with the components of a certificate — the parallel
    counterpart of {!Refinement.check_cert}, used by the {!Stack}
    soundness edges. *)

val check_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  ?scheds:Sched.t list ->
  underlay:Layer.t ->
  impl:Prog.Module.t ->
  overlay:Layer.t ->
  rel:Sim_rel.t ->
  client:(Event.tid -> Prog.t) ->
  tids:Event.tid list ->
  unit ->
  (report, Refinement.failure) result Budget.outcome
(** When no explicit [scheds] are given, the suite is derived from
    [ctx.strategy] (default DPOR) over the underlay game of the linked
    client+implementation threads.  [ctx.jobs] parallelises both the
    DPOR walk and the refinement scan; the verdict is identical for
    every jobs count. *)

val check_cert_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  ?scheds:Sched.t list ->
  Calculus.cert ->
  client:(Event.tid -> Prog.t) ->
  (report, Refinement.failure) result Budget.outcome
