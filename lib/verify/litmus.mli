(** The litmus conformance runner: enumerate the reachable outcomes of
    each {!Ccal_machine.Litmus} test under [ctx.memory] with the DPOR
    explorer and pin them against the hand-derived x86-TSO tables.

    The exploration uses {!Dpor.Commuting_events} at the test's declared
    depth: commuting reorderings preserve read values and final memory,
    so the surviving prefix frontier covers every reachable outcome
    tuple while collapsing the interleaving blow-up (IRIW has millions
    of interleavings but a handful of Mazurkiewicz classes).  Under
    [Tso] the flusher pseudo-threads enter the exploration like any
    other thread, so delayed commits are enumerated, and every replayed
    game ends with drained buffers. *)

open Ccal_core

type report = {
  name : string;
  memory : Memory.t;
  observed : int list list;  (** reachable outcome tuples, sorted distinct *)
  expected : int list list;
  errors : string list;  (** extraction failures; must be empty *)
  schedules : int;  (** surviving DPOR prefixes replayed *)
}

val ok : report -> bool
(** No errors and [observed = expected] — exact conformance, both
    directions: every allowed outcome reached, every forbidden outcome
    unreachable. *)

val extra : report -> int list list
(** Observed but not expected (should be empty). *)

val missing : report -> int list list
(** Expected but not observed (should be empty). *)

val run_test : ctx:Ctx.t -> Ccal_machine.Litmus.test -> report
(** Explore one test under [ctx.memory].  Cached through [ctx.cache]
    (the DFS walk key includes the memory mode). *)

val run_all :
  ?tests:Ccal_machine.Litmus.test list -> ctx:Ctx.t -> unit -> report list

val run_both :
  ?tests:Ccal_machine.Litmus.test list ->
  ctx:Ctx.t ->
  unit ->
  (report * report) list
(** Each test under [Sc] and [Tso] with the same ctx knobs —
    [(sc_report, tso_report)] pairs for the per-mode outcome table. *)

val pp_report : Format.formatter -> report -> unit

val pp_table : Format.formatter -> (report * report) list -> unit
(** The per-mode outcome table uploaded by the CI memory-model leg:
    one row per (test, outcome), marked reachable yes/no per mode. *)
