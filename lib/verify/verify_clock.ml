(* Monotonic timing for the verifiers.  [Unix.gettimeofday] is wall-clock
   time: it jumps backwards and forwards under NTP adjustment, which makes
   the per-edge timings in {!Stack} and the pool's per-chunk accounting
   unreliable.  Bechamel ships a CLOCK_MONOTONIC stub with no further
   dependencies, so we use that. *)

(* The skew offset is the clock's fault-injection hook (DESIGN.md S27):
   it only grows, so skewed time is still monotonic — injected skew can
   move timings and deadlines, never a verdict. *)
let now_ns () = Int64.add (Monotonic_clock.now ()) (Fault.skew_ns ())

let ns_to_ms ns = Int64.to_float ns /. 1e6

let elapsed_ms ~since = ns_to_ms (Int64.sub (now_ns ()) since)

let timed f =
  let t0 = now_ns () in
  let r = f () in
  r, elapsed_ms ~since:t0
