(* Monotonic timing for the verifiers.  [Unix.gettimeofday] is wall-clock
   time: it jumps backwards and forwards under NTP adjustment, which makes
   the per-edge timings in {!Stack} and the pool's per-chunk accounting
   unreliable.  Bechamel ships a CLOCK_MONOTONIC stub with no further
   dependencies, so we use that. *)

let now_ns () = Monotonic_clock.now ()

let ns_to_ms ns = Int64.to_float ns /. 1e6

let elapsed_ms ~since = ns_to_ms (Int64.sub (now_ns ()) since)

let timed f =
  let t0 = now_ns () in
  let r = f () in
  r, elapsed_ms ~since:t0
