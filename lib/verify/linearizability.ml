open Ccal_core

type report = {
  runs : int;
  distinct_logs : int;
  events : int;
}

(* Parallel counterpart of {!Refinement.check}: evaluate the per-schedule
   body over the {!Parallel} pool, then fold the ordered results exactly as
   the sequential loop does — the reported failure (if any) is the
   lowest-indexed failing schedule, so the result is identical for every
   jobs count. *)
let refine ?max_steps ?expect_all_done ?jobs ~underlay ~impl ~overlay ~rel
    ~client ~tids ~scheds () =
  let results =
    Parallel.scan ?jobs ~cut:Result.is_error
      (Refinement.check_sched ?max_steps ?expect_all_done ~underlay ~impl
         ~overlay ~rel ~client ~tids)
      scheds
  in
  let rec go scheds_checked logs translated = function
    | [] ->
      Ok
        {
          Refinement.scheds_checked;
          logs = List.rev logs;
          translated = List.rev translated;
        }
    | Ok (l, lt) :: rest ->
      go (scheds_checked + 1) (l :: logs) (lt :: translated) rest
    | Error (f : Refinement.failure) :: _ -> Error f
  in
  go 0 [] [] results

let refine_cert ?max_steps ?expect_all_done ?jobs (cert : Calculus.cert)
    ~client ~scheds =
  refine ?max_steps ?expect_all_done ?jobs
    ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ~scheds ()

let check ?max_steps ?strategy ?scheds ?jobs ~underlay ~impl ~overlay ~rel
    ~client ~tids () =
  let scheds =
    match scheds with
    | Some s -> s
    | None ->
      (* The schedulers drive the underlay game, so derive the suite from
         the same linked threads [Refinement.check] will run. *)
      let threads_under =
        List.map (fun i -> i, Prog.Module.link impl (client i)) tids
      in
      Explore.scheds_of_strategy ?jobs underlay threads_under
        (Option.value strategy ~default:Explore.default_strategy)
  in
  match
    refine ?max_steps ?jobs ~underlay ~impl ~overlay ~rel ~client ~tids
      ~scheds ()
  with
  | Error _ as e -> e
  | Ok r ->
    let logs = r.Refinement.logs in
    let distinct_logs = List.length (Log.dedup logs) in
    Probe.add Probe.logs_distinct distinct_logs;
    Ok
      {
        runs = r.Refinement.scheds_checked;
        distinct_logs;
        events = List.fold_left (fun n l -> n + Log.length l) 0 logs;
      }

let check_cert ?max_steps ?strategy ?scheds ?jobs (cert : Calculus.cert)
    ~client =
  check ?max_steps ?strategy ?scheds ?jobs
    ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ()
