open Ccal_core

type report = {
  runs : int;
  distinct_logs : int;
  events : int;
}

(* Parallel counterpart of {!Refinement.check}: evaluate the per-schedule
   body over the {!Parallel} pool, then fold the ordered results exactly as
   the sequential loop does — the reported failure (if any) is the
   lowest-indexed failing schedule, so the result is identical for every
   jobs count.  The budget is charged the underlay event count of each
   schedule (a deterministic proxy for its work); an interrupted underlay
   game truncates the scan into an [Exhausted] outcome. *)
let refine_live ~ctx ?max_steps ?expect_all_done ~underlay ~impl ~overlay
    ~rel ~client ~tids ~scheds () =
  let cost = function
    | `Checked (Ok (l, _)) -> Log.length l
    | `Checked (Error (f : Refinement.failure)) ->
      Log.length f.Refinement.under_log
    | `Interrupted -> 0
  in
  let replay =
    Parallel.budgeted_scan
      ?jobs:(Ctx.jobs_opt ctx)
      ~token:ctx.Ctx.token ~cost
      ~interrupted:(fun r -> match r with `Interrupted -> true | _ -> false)
      ~cut:(fun r -> match r with `Checked (Error _) -> true | _ -> false)
      (fun ~stop sched ->
        Refinement.check_sched_stop ?max_steps ?expect_all_done ?stop
          ~memory:ctx.Ctx.memory ~underlay ~impl ~overlay ~rel ~client ~tids
          sched)
      scheds
  in
  let rec go scheds_checked logs translated = function
    | [] ->
      Ok
        {
          Refinement.scheds_checked;
          logs = List.rev logs;
          translated = List.rev translated;
        }
    | `Checked (Ok (l, lt)) :: rest ->
      go (scheds_checked + 1) (l :: logs) (lt :: translated) rest
    | `Checked (Error (f : Refinement.failure)) :: _ -> Error f
    | `Interrupted :: _ ->
      (* excluded from the budgeted prefix by construction *)
      assert false
  in
  let report = go 0 [] [] replay.Parallel.prefix in
  if replay.Parallel.ran_out then
    Budget.Exhausted { spent = Budget.spent ctx.Ctx.token; partial = report }
  else Budget.Complete report

(* Cache key of a refinement scan: both machine interfaces, the
   implementation bodies, the relation (by name), the client workload on
   the focused threads, the suite identity, and the fuel/strictness
   knobs.  [jobs] is absent by design. *)
let refine_key ?max_steps ?expect_all_done ~memory ~underlay ~impl ~overlay
    ~rel ~client ~tids ~scheds () =
  let st = Fingerprint.string Fingerprint.empty "refine" in
  let st = Fingerprint.layer st underlay in
  let st = Fingerprint.layer st overlay in
  let st = Fingerprint.memory st memory in
  let st = Fingerprint.modul st impl in
  let st = Fingerprint.string st rel.Sim_rel.name in
  let st =
    Fingerprint.list
      (fun st i -> Fingerprint.prog (Fingerprint.int st i) (client i))
      st tids
  in
  let st = Fingerprint.scheds st scheds in
  let st = Fingerprint.option Fingerprint.int st max_steps in
  Fingerprint.finish (Fingerprint.option Fingerprint.bool st expect_all_done)

(* The stored verdict: the successful report plus the hash of its logs,
   re-checked on load so a bit-rotted entry invalidates instead of
   deserializing into a wrong-but-plausible report. *)
type stored_report = { report : Refinement.report; log_hash : Fingerprint.t }

let report_hash (r : Refinement.report) =
  let st = Fingerprint.int Fingerprint.empty r.Refinement.scheds_checked in
  let st = Fingerprint.list Fingerprint.log st r.Refinement.logs in
  Fingerprint.finish (Fingerprint.list Fingerprint.log st r.Refinement.translated)

let refine_ctx ~ctx ?max_steps ?expect_all_done ~underlay ~impl ~overlay
    ~rel ~client ~tids ~scheds () =
  Ctx.arm ctx @@ fun () ->
  let live () =
    refine_live ~ctx ?max_steps ?expect_all_done ~underlay ~impl ~overlay
      ~rel ~client ~tids ~scheds ()
  in
  match ctx.Ctx.cache with
  | None -> live ()
  | Some c -> (
    let key =
      refine_key ?max_steps ?expect_all_done ~memory:ctx.Ctx.memory ~underlay
        ~impl ~overlay ~rel ~client ~tids ~scheds ()
    in
    let run_and_store () =
      match live () with
      | Budget.Complete (Ok report) as ok ->
        Cache.store c ~kind:"refine" key
          { report; log_hash = report_hash report };
        ok
      (* Refinement failures always re-run live, and an exhausted prefix
         is not the report — neither is stored. *)
      | (Budget.Complete (Error _) | Budget.Exhausted _) as r -> r
    in
    match Cache.find c ~kind:"refine" key with
    | Some { report; log_hash }
      when Fingerprint.equal (report_hash report) log_hash ->
      Budget.Complete (Ok report)
    | Some _ ->
      Cache.invalidate c ~kind:"refine" key;
      run_and_store ()
    | None -> run_and_store ())

let refine_cert_ctx ~ctx ?max_steps ?expect_all_done (cert : Calculus.cert)
    ~client ~scheds =
  refine_ctx ~ctx ?max_steps ?expect_all_done
    ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ~scheds ()

let summarize (r : Refinement.report) =
  let logs = r.Refinement.logs in
  let distinct_logs = List.length (Log.dedup logs) in
  Probe.add Probe.logs_distinct distinct_logs;
  {
    runs = r.Refinement.scheds_checked;
    distinct_logs;
    events = List.fold_left (fun n l -> n + Log.length l) 0 logs;
  }

let check_ctx ~ctx ?max_steps ?scheds ~underlay ~impl ~overlay ~rel ~client
    ~tids () =
  Ctx.arm ctx @@ fun () ->
  let scheds =
    match scheds with
    | Some s -> s
    | None ->
      (* The schedulers drive the underlay game, so derive the suite from
         the same linked threads [Refinement.check] will run. *)
      let threads_under =
        List.map (fun i -> i, Prog.Module.link impl (client i)) tids
      in
      Explore.scheds_of_strategy_ctx ~ctx underlay threads_under
  in
  Budget.map
    (Result.map summarize)
    (refine_ctx ~ctx ?max_steps ~underlay ~impl ~overlay ~rel ~client ~tids
       ~scheds ())

let check_cert_ctx ~ctx ?max_steps ?scheds (cert : Calculus.cert) ~client =
  check_ctx ~ctx ?max_steps ?scheds
    ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ()
