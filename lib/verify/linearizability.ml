open Ccal_core

type report = {
  runs : int;
  distinct_logs : int;
  events : int;
}

let check ?max_steps ?strategy ?scheds ~underlay ~impl ~overlay ~rel ~client
    ~tids () =
  let scheds =
    match scheds with
    | Some s -> s
    | None ->
      (* The schedulers drive the underlay game, so derive the suite from
         the same linked threads [Refinement.check] will run. *)
      let threads_under =
        List.map (fun i -> i, Prog.Module.link impl (client i)) tids
      in
      Explore.scheds_of_strategy underlay threads_under
        (Option.value strategy ~default:Explore.default_strategy)
  in
  match
    Refinement.check ?max_steps ~underlay ~impl ~overlay ~rel ~client ~tids
      ~scheds ()
  with
  | Error _ as e -> e
  | Ok r ->
    let logs = r.Refinement.logs in
    Ok
      {
        runs = r.Refinement.scheds_checked;
        distinct_logs = List.length (Log.dedup logs);
        events = List.fold_left (fun n l -> n + Log.length l) 0 logs;
      }

let check_cert ?max_steps ?strategy ?scheds (cert : Calculus.cert) ~client =
  check ?max_steps ?strategy ?scheds
    ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ()
