open Ccal_core

type report = {
  runs : int;
  distinct_logs : int;
  events : int;
}

(* Parallel counterpart of {!Refinement.check}: evaluate the per-schedule
   body over the {!Parallel} pool, then fold the ordered results exactly as
   the sequential loop does — the reported failure (if any) is the
   lowest-indexed failing schedule, so the result is identical for every
   jobs count. *)
let refine_live ?max_steps ?expect_all_done ?jobs ~underlay ~impl ~overlay
    ~rel ~client ~tids ~scheds () =
  let results =
    Parallel.scan ?jobs ~cut:Result.is_error
      (Refinement.check_sched ?max_steps ?expect_all_done ~underlay ~impl
         ~overlay ~rel ~client ~tids)
      scheds
  in
  let rec go scheds_checked logs translated = function
    | [] ->
      Ok
        {
          Refinement.scheds_checked;
          logs = List.rev logs;
          translated = List.rev translated;
        }
    | Ok (l, lt) :: rest ->
      go (scheds_checked + 1) (l :: logs) (lt :: translated) rest
    | Error (f : Refinement.failure) :: _ -> Error f
  in
  go 0 [] [] results

(* Cache key of a refinement scan: both machine interfaces, the
   implementation bodies, the relation (by name), the client workload on
   the focused threads, the suite identity, and the fuel/strictness
   knobs.  [jobs] is absent by design. *)
let refine_key ?max_steps ?expect_all_done ~underlay ~impl ~overlay ~rel
    ~client ~tids ~scheds () =
  let st = Fingerprint.string Fingerprint.empty "refine" in
  let st = Fingerprint.layer st underlay in
  let st = Fingerprint.layer st overlay in
  let st = Fingerprint.modul st impl in
  let st = Fingerprint.string st rel.Sim_rel.name in
  let st =
    Fingerprint.list
      (fun st i -> Fingerprint.prog (Fingerprint.int st i) (client i))
      st tids
  in
  let st = Fingerprint.scheds st scheds in
  let st = Fingerprint.option Fingerprint.int st max_steps in
  Fingerprint.finish (Fingerprint.option Fingerprint.bool st expect_all_done)

(* The stored verdict: the successful report plus the hash of its logs,
   re-checked on load so a bit-rotted entry invalidates instead of
   deserializing into a wrong-but-plausible report. *)
type stored_report = { report : Refinement.report; log_hash : Fingerprint.t }

let report_hash (r : Refinement.report) =
  let st = Fingerprint.int Fingerprint.empty r.Refinement.scheds_checked in
  let st = Fingerprint.list Fingerprint.log st r.Refinement.logs in
  Fingerprint.finish (Fingerprint.list Fingerprint.log st r.Refinement.translated)

let refine ?max_steps ?expect_all_done ?jobs ?cache ~underlay ~impl ~overlay
    ~rel ~client ~tids ~scheds () =
  let live () =
    refine_live ?max_steps ?expect_all_done ?jobs ~underlay ~impl ~overlay
      ~rel ~client ~tids ~scheds ()
  in
  match cache with
  | None -> live ()
  | Some c -> (
    let key =
      refine_key ?max_steps ?expect_all_done ~underlay ~impl ~overlay ~rel
        ~client ~tids ~scheds ()
    in
    match Cache.find c ~kind:"refine" key with
    | Some { report; log_hash }
      when Fingerprint.equal (report_hash report) log_hash ->
      Ok report
    | Some _ ->
      Cache.invalidate c ~kind:"refine" key;
      live ()
    | None -> (
      match live () with
      | Ok report as ok ->
        Cache.store c ~kind:"refine" key
          { report; log_hash = report_hash report };
        ok
      (* Refinement failures always re-run live — never stored. *)
      | Error _ as e -> e))

let refine_cert ?max_steps ?expect_all_done ?jobs ?cache
    (cert : Calculus.cert) ~client ~scheds =
  refine ?max_steps ?expect_all_done ?jobs ?cache
    ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ~scheds ()

let check ?max_steps ?strategy ?scheds ?jobs ~underlay ~impl ~overlay ~rel
    ~client ~tids () =
  let scheds =
    match scheds with
    | Some s -> s
    | None ->
      (* The schedulers drive the underlay game, so derive the suite from
         the same linked threads [Refinement.check] will run. *)
      let threads_under =
        List.map (fun i -> i, Prog.Module.link impl (client i)) tids
      in
      Explore.scheds_of_strategy ?jobs underlay threads_under
        (Option.value strategy ~default:Explore.default_strategy)
  in
  match
    refine ?max_steps ?jobs ~underlay ~impl ~overlay ~rel ~client ~tids
      ~scheds ()
  with
  | Error _ as e -> e
  | Ok r ->
    let logs = r.Refinement.logs in
    let distinct_logs = List.length (Log.dedup logs) in
    Probe.add Probe.logs_distinct distinct_logs;
    Ok
      {
        runs = r.Refinement.scheds_checked;
        distinct_logs;
        events = List.fold_left (fun n l -> n + Log.length l) 0 logs;
      }

let check_cert ?max_steps ?strategy ?scheds ?jobs (cert : Calculus.cert)
    ~client =
  check ?max_steps ?strategy ?scheds ?jobs
    ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ()
