open Ccal_core

(* Crash-refinement certificates (DESIGN.md S30).

   A crash edge is a whole-machine game over an async-disk underlay plus
   an accounting view of its logs: which operations the run appended to
   the log-structured store, which it acknowledged as synced, and what
   recovery reads back from a given post-crash platter.  The certificate
   quantifies over every schedule of the suite and, inside each play,
   over every crash point (the start of the run and the position after
   each disk-state-changing event) and every enumerated (keep, tear)
   mask over the writes in flight there — the same mask lattice the
   in-game crash pseudo-thread samples adversarially — and demands that
   post-crash recovery is a prefix-consistent refinement of the
   pre-crash history:

     - no invented ops: the recovered sequence is a prefix of the
       appended sequence;
     - no acknowledged op lost: the prefix extends at least to the
       highest LSN a completed [sync] acknowledged before the crash.

   The checker itself is generic — the edge closures carry all knowledge
   of the WAL encoding — so the disk library can define edges without
   this module depending on it.  Everything runs through {!Ctx}: the
   schedule scan is a {!Parallel.budgeted_scan} (verdicts identical for
   every jobs count, lowest-index failure wins), budgets and faults
   apply unchanged, and successful edge reports memoize under the
   ["crash"] cache kind. *)

type op = { lsn : int; key : int; value : int }

let pp_op ppf o = Format.fprintf ppf "lsn %d: (%d -> %d)" o.lsn o.key o.value

type edge = {
  name : string;
  layer : Layer.t;  (** the crash-free underlay (crashes are analytic) *)
  threads : (Event.tid * Prog.t) list;
  max_steps : int;
  is_crash_point : Event.t -> bool;
      (** events after which the machine may lose power with a changed
          platter (disk writes and syncs) *)
  inflight : Log.t -> int;  (** in-flight (unsynced) writes at a prefix *)
  appended : Log.t -> op list;
      (** the operations the prefix appended to the store, in log order,
          completed or still in flight *)
  acked : Log.t -> int;
      (** highest LSN a completed [sync] in the prefix acknowledged *)
  recover : Log.t -> keep:int -> tear:int -> (op list, string) result;
      (** crash the prefix's disk under the masks, run recovery, return
          the operations recovery reads back *)
  key_salt : string;
      (** distinguishes implementation variants behind identical layer
          shapes (e.g. the deliberately unsynced WAL) in cache keys *)
}

type failure = {
  f_edge : string;
  f_sched : string;
  f_index : int;  (** events played before the crash *)
  f_keep : int;
  f_tear : int;
  f_reason : string;
}

let pp_failure ppf f =
  Format.fprintf ppf
    "crash-refinement failure: edge %s, schedule %s, crash point %d \
     (keep=0x%x tear=0x%x): %s"
    f.f_edge f.f_sched f.f_index f.f_keep f.f_tear f.f_reason

type edge_report = {
  edge_name : string;
  schedules : int;
  crash_points : int;
  recoveries : int;
  distinct_logs : int;
  millis : float;
}

type report = {
  edges : edge_report list;
  total_recoveries : int;
  total_millis : float;
}

let report_of edges =
  {
    edges;
    total_recoveries = List.fold_left (fun n e -> n + e.recoveries) 0 edges;
    total_millis = List.fold_left (fun m e -> m +. e.millis) 0. edges;
  }

let pp_edge ~millis ppf e =
  Format.fprintf ppf "  %-44s ok  %4d schedules  %5d crash points  %6d recoveries  %3d logs"
    e.edge_name e.schedules e.crash_points e.recoveries e.distinct_logs;
  if millis then Format.fprintf ppf "  %8.1f ms" e.millis;
  Format.pp_print_newline ppf ()

let pp_report_gen ~millis ppf r =
  Format.fprintf ppf "crash refinement: %d edges, %d recoveries"
    (List.length r.edges) r.total_recoveries;
  if millis then Format.fprintf ppf ", %.1f ms" r.total_millis;
  Format.pp_print_newline ppf ();
  List.iter (pp_edge ~millis ppf) r.edges

let pp_report ppf r = pp_report_gen ~millis:true ppf r
let pp_report_canonical ppf r = pp_report_gen ~millis:false ppf r

(* ---- mask enumeration ----

   With [m] writes in flight, the full lattice is every keep subset,
   each paired with no tear and with each single torn kept write.  Past
   the bound (CLI [--crashes], default 4) full enumeration is 2^m and the
   suite degrades to the boundary cases — drop all, every contiguous
   prefix, keep all, and a torn head/tail — deterministically, so
   verdicts stay jobs- and cache-stable. *)

let masks ~bound m =
  let pairs =
    if m = 0 then [ (0, 0) ]
    else if m <= bound then
      List.concat_map
        (fun keep ->
          (keep, 0)
          :: List.filter_map
               (fun i ->
                 if Durability.keeps ~mask:keep i then Some (keep, 1 lsl i)
                 else None)
               (List.init m Fun.id))
        (List.init (1 lsl m) Fun.id)
    else
      let all = Durability.all_keep m in
      ((0, 0) :: (all, 0) :: (all, 1) :: (all, 1 lsl (m - 1))
      :: List.map (fun i -> (Durability.all_keep (i + 1), 0)) (List.init m Fun.id))
  in
  List.sort_uniq compare pairs

(* ---- the per-crash-point check ---- *)

let rec is_prefix recovered appended =
  match (recovered, appended) with
  | [], _ -> Ok ()
  | r :: _, [] ->
    Error
      (Format.asprintf "recovered op not in the appended sequence (invented op): %a"
         pp_op r)
  | r :: rt, a :: at ->
    if r = a then is_prefix rt at
    else
      Error
        (Format.asprintf "recovered op diverges from the appended sequence: %a, expected %a"
           pp_op r pp_op a)

let check_point edge prefix ~keep ~tear =
  match edge.recover prefix ~keep ~tear with
  | Error msg -> Error (Printf.sprintf "recovery failed: %s" msg)
  | Ok recovered -> (
    let appended = edge.appended prefix in
    let acked = edge.acked prefix in
    match is_prefix recovered appended with
    | Error _ as e -> e
    | Ok () ->
      let n = List.length recovered in
      if n < acked then
        Error
          (Printf.sprintf
             "acknowledged-synced op lost: sync acknowledged lsn %d but recovery \
              reads back only %d op%s"
             acked n (if n = 1 then "" else "s"))
      else Ok ())

(* ---- the per-schedule body ---- *)

type sched_outcome = {
  so_points : int;
  so_recoveries : int;
  so_cost : int;  (** deterministic budget cost of this schedule *)
  so_log : Log.t;
  so_failure : failure option;
}

let check_sched ~bound ?stop edge sched =
  let cfg =
    Game.config ~max_steps:edge.max_steps ?stop edge.layer edge.threads sched
  in
  let o = Game.replay cfg in
  match o.Game.status with
  | Game.Cancelled -> `Interrupted
  | Game.All_done ->
    let events = Log.chronological o.Game.log in
    let fail i (keep, tear) reason =
      {
        f_edge = edge.name;
        f_sched = sched.Sched.name;
        f_index = i;
        f_keep = keep;
        f_tear = tear;
        f_reason = reason;
      }
    in
    (* Crash points in play order: the empty start plus the position
       after every disk-state-changing event.  The first failing
       (point, keep, tear) in this deterministic order is the one
       reported, for every jobs count and cache temperature. *)
    let points = ref 0 and recoveries = ref 0 and failure = ref None in
    let at_point i prefix =
      incr points;
      let m = edge.inflight prefix in
      List.iter
        (fun (keep, tear) ->
          if !failure = None then begin
            incr recoveries;
            match check_point edge prefix ~keep ~tear with
            | Ok () -> ()
            | Error reason -> failure := Some (fail i (keep, tear) reason)
          end)
        (masks ~bound m)
    in
    at_point 0 Log.empty;
    let _ =
      List.fold_left
        (fun (i, prefix) e ->
          let prefix = Log.append e prefix in
          let i = i + 1 in
          if !failure = None && edge.is_crash_point e then at_point i prefix;
          (i, prefix))
        (0, Log.empty) events
    in
    `Checked
      {
        so_points = !points;
        so_recoveries = !recoveries;
        so_cost = o.Game.steps + !recoveries;
        so_log = o.Game.log;
        so_failure = !failure;
      }
  | status ->
    (* The crash-free underlay game must finish: a deadlock or stuck run
       here is an edge-construction bug, reported as a failure rather
       than silently skipped. *)
    `Checked
      {
        so_points = 0;
        so_recoveries = 0;
        so_cost = o.Game.steps;
        so_log = o.Game.log;
        so_failure =
          Some
            {
              f_edge = edge.name;
              f_sched = sched.Sched.name;
              f_index = o.Game.steps;
              f_keep = 0;
              f_tear = 0;
              f_reason =
                Format.asprintf "underlay game did not complete: %a"
                  Game.pp_status status;
            };
      }

(* ---- the per-edge scan ---- *)

let check_edge_live ~ctx ~bound edge scheds =
  let replay =
    Parallel.budgeted_scan
      ?jobs:(Ctx.jobs_opt ctx)
      ~token:ctx.Ctx.token
      ~cost:(function `Checked so -> so.so_cost | `Interrupted -> 0)
      ~interrupted:(fun r -> r = `Interrupted)
      ~cut:(fun r ->
        match r with
        | `Checked { so_failure = Some _; _ } -> true
        | `Checked _ | `Interrupted -> false)
      (fun ~stop sched -> check_sched ~bound ?stop edge sched)
      scheds
  in
  let rec go schedules points recoveries logs = function
    | [] ->
      let distinct_logs = List.length (Log.dedup (List.rev logs)) in
      Probe.add Probe.logs_distinct distinct_logs;
      Ok
        {
          edge_name = edge.name;
          schedules;
          crash_points = points;
          recoveries;
          distinct_logs;
          millis = 0.;
        }
    | `Checked { so_failure = Some f; _ } :: _ -> Error f
    | `Checked so :: rest ->
      go (schedules + 1) (points + so.so_points) (recoveries + so.so_recoveries)
        (so.so_log :: logs) rest
    | `Interrupted :: _ ->
      (* excluded from the budgeted prefix by construction *)
      assert false
  in
  let result = go 0 0 0 [] replay.Parallel.prefix in
  if replay.Parallel.ran_out then
    Budget.Exhausted { spent = Budget.spent ctx.Ctx.token; partial = result }
  else Budget.Complete result

(* Cache key of a crash edge: the underlay, the client programs, the
   schedule suite, the mask bound, the fuel, the memory mode, and the
   variant salt.  The accounting closures are identified by
   [name]/[key_salt] — the same convention {!Sim_rel} uses for relations.
   [jobs] is absent by design. *)
let edge_key ~ctx ~bound edge scheds =
  let st = Fingerprint.string Fingerprint.empty "crash-edge" in
  let st = Fingerprint.string st edge.name in
  let st = Fingerprint.string st edge.key_salt in
  let st = Fingerprint.layer st edge.layer in
  let st =
    List.fold_left
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st edge.threads
  in
  let st = Fingerprint.scheds st scheds in
  let st = Fingerprint.int st bound in
  let st = Fingerprint.int st edge.max_steps in
  let st = Fingerprint.memory st ctx.Ctx.memory in
  Fingerprint.finish st

let cache_kind = "crash"

let check_edge_ctx ~ctx ?(crashes = 4) edge =
  Ctx.arm ctx @@ fun () ->
  let scheds = Explore.scheds_of_strategy_ctx ~ctx edge.layer edge.threads in
  let live () =
    let outcome, ms =
      Verify_clock.timed (fun () -> check_edge_live ~ctx ~bound:crashes edge scheds)
    in
    Budget.map (Result.map (fun e -> { e with millis = ms })) outcome
  in
  match ctx.Ctx.cache with
  | None -> live ()
  | Some c -> (
    let key = edge_key ~ctx ~bound:crashes edge scheds in
    let found, lookup_ms =
      Verify_clock.timed (fun () -> Cache.find c ~kind:cache_kind key)
    in
    match found with
    | Some (e : edge_report) -> Budget.Complete (Ok { e with millis = lookup_ms })
    | None -> (
      match live () with
      | Budget.Complete (Ok e) as ok ->
        Cache.store c ~kind:cache_kind key e;
        ok
      (* Failures always reproduce live, and an exhausted prefix is not
         the verdict — neither is stored. *)
      | (Budget.Complete (Error _) | Budget.Exhausted _) as r -> r))

let check_ctx ~ctx ?crashes edges =
  Ctx.arm ctx @@ fun () ->
  let rec loop acc = function
    | [] -> Budget.Complete (Ok (report_of (List.rev acc)))
    | e :: rest ->
      if Budget.poll ctx.Ctx.token then
        Budget.Exhausted
          {
            spent = Budget.spent ctx.Ctx.token;
            partial = Ok (report_of (List.rev acc));
          }
      else (
        match check_edge_ctx ~ctx ?crashes e with
        | Budget.Complete (Ok er) -> loop (er :: acc) rest
        | Budget.Complete (Error f) -> Budget.Complete (Error f)
        | Budget.Exhausted { spent; partial } ->
          let partial =
            match partial with
            | Ok er -> Ok (report_of (List.rev (er :: acc)))
            | Error f -> Error f
          in
          Budget.Exhausted { spent; partial })
  in
  loop [] edges
