open Ccal_core

let format_version = 1
let magic = Printf.sprintf "CCAL-CACHE:%d:%d\n" format_version Fingerprint.version

(* Mirrored into telemetry so --stats/--trace runs see cache behaviour;
   the per-handle session counters below are always on. *)
let hits_c = Probe.counter "cache.hits"
let misses_c = Probe.counter "cache.misses"
let invalidations_c = Probe.counter "cache.invalidations"

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  stores : int Atomic.t;
}

let dir t = t.dir

let default_dir () =
  match Sys.getenv_opt "CCAL_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    let cache_root =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> d
      | _ ->
        let home = Option.value (Sys.getenv_opt "HOME") ~default:"." in
        Filename.concat home ".cache"
    in
    Filename.concat cache_root "ccal")

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  let dir = Option.value dir ~default:(default_dir ()) in
  (try mkdir_p dir
   with Unix.Unix_error (e, _, _) ->
     raise (Sys_error (Printf.sprintf "%s: %s" dir (Unix.error_message e))));
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  {
    dir;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    stores = Atomic.make 0;
  }

let entry_suffix = Printf.sprintf ".v%d" format_version
let tmp_prefix = ".tmp-"

let path t ~kind fp =
  Filename.concat t.dir (kind ^ "-" ^ Fingerprint.to_hex fp ^ entry_suffix)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let has_magic s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

let find t ~kind fp =
  let file = path t ~kind fp in
  match read_file file with
  | exception _ ->
    Atomic.incr t.misses;
    Probe.incr misses_c;
    None
  | s -> (
    let invalidate () =
      (try Sys.remove file with Sys_error _ -> ());
      Atomic.incr t.invalidations;
      Probe.incr invalidations_c;
      Atomic.incr t.misses;
      Probe.incr misses_c;
      None
    in
    if not (has_magic s) then invalidate ()
    else
      match Marshal.from_string s (String.length magic) with
      | v ->
        Atomic.incr t.hits;
        Probe.incr hits_c;
        Some v
      | exception _ -> invalidate ())

let invalidate t ~kind fp =
  (try Sys.remove (path t ~kind fp) with Sys_error _ -> ());
  Atomic.incr t.invalidations;
  Probe.incr invalidations_c

let store t ~kind fp v =
  match
    let payload = magic ^ Marshal.to_string v [] in
    (* Fault injection (DESIGN.md S27): a corrupted store truncates the
       payload so the next [find] invalidates-as-miss and the verdict is
       recomputed live; an oversized store appends junk that
       [Marshal.from_string] never reads.  Either way the injected fault
       can move bytes and timings, never a verdict. *)
    let payload =
      if not (Fault.armed ()) then payload
      else begin
        let key = kind ^ "-" ^ Fingerprint.to_hex fp in
        if Fault.corrupt_store ~key then Fault.corrupt_payload payload
        else if Fault.oversize_store ~key then Fault.oversize_payload payload
        else payload
      end
    in
    let tmp =
      Filename.temp_file ~temp_dir:t.dir tmp_prefix entry_suffix
    in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc payload);
        Sys.rename tmp (path t ~kind fp))
  with
  | () -> Atomic.incr t.stores
  | exception (Sys_error _ | Unix.Unix_error _) -> ()

type session = { hits : int; misses : int; invalidations : int; stores : int }

let session_stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    invalidations = Atomic.get t.invalidations;
    stores = Atomic.get t.stores;
  }

(* An entry of any format version (stale ".v0" files still count and
   clear); in-flight temp files are not entries. *)
let is_entry name =
  (not (String.starts_with ~prefix:tmp_prefix name))
  &&
  match String.rindex_opt name '.' with
  | Some i ->
    String.length name > i + 2
    && name.[i + 1] = 'v'
    && int_of_string_opt (String.sub name (i + 2) (String.length name - i - 2))
       <> None
  | None -> false

type disk = { entries : int; bytes : int }

let disk_stats t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> { entries = 0; bytes = 0 }
  | names ->
    Array.fold_left
      (fun acc name ->
        if is_entry name then
          let size =
            match (Unix.stat (Filename.concat t.dir name)).Unix.st_size with
            | s -> s
            | exception Unix.Unix_error _ -> 0
          in
          { entries = acc.entries + 1; bytes = acc.bytes + size }
        else acc)
      { entries = 0; bytes = 0 } names

let clear t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | names ->
    Array.fold_left
      (fun n name ->
        if is_entry name then (
          match Sys.remove (Filename.concat t.dir name) with
          | () -> n + 1
          | exception Sys_error _ -> n)
        else n)
      0 names
