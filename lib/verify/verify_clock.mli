(** Monotonic timing for the verifiers.

    All verifier-side timing (the per-edge milliseconds of
    {!Stack.verify_all}, the pool's per-chunk accounting in {!Parallel},
    the scaling benchmarks) goes through this module rather than
    [Unix.gettimeofday], which is wall-clock time and jumps under NTP
    adjustment.  Backed by a CLOCK_MONOTONIC C stub
    ([bechamel.monotonic_clock]); timings are only meaningful as
    differences. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock (arbitrary epoch).  Under an
    armed {!Fault} plan this includes the injected skew offset, which
    only grows — readings stay monotonic. *)

val ns_to_ms : int64 -> float

val elapsed_ms : since:int64 -> float
(** Milliseconds elapsed since a {!now_ns} reading. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and returns its result with the elapsed
    milliseconds. *)
