(** Interleaving exploration.

    The behaviour of a layer machine is the set of logs under {e all}
    schedulers (Sec. 2); the checkers approximate the quantifier by
    enumerating scheduling prefixes up to a depth bound and topping up
    with seeded random fair schedules.  This is the bounded substitute for
    the paper's ∀-quantified Coq proofs (DESIGN.md, Substitutions).

    {!exhaustive_scheds} is the reference oracle: all [|tids|^depth]
    prefixes, no pruning.  Which engine actually generates a checker's
    suite is selected by the {!Engine} descriptor in [Ctx.t]
    (DESIGN.md S31): implementations satisfy {!Engine.IMPL} and live in
    a registry keyed by algorithm name, so the checkers dispatch through
    {!scheds_of_strategy_ctx} and never name an engine module.  The
    oracle remains available both as the [exhaustive] engine and as the
    ground truth the equivalence tests compare the DPOR family against. *)

open Ccal_core

module Engine = Strategy.Engine
(** Re-export: the descriptor, its constructors/parser, and the
    {!Engine.IMPL} contract engine implementations satisfy. *)

val exhaustive_scheds : tids:Event.tid list -> depth:int -> Sched.t list
(** All [|tids|^depth] scheduling prefixes (round-robin afterwards).
    Use small depths: the count is exponential. *)

val random_scheds : count:int -> Sched.t list
(** [count] seeded random schedulers (deterministic suite). *)

val full_suite : tids:Event.tid list -> ?depth:int -> ?random:int -> unit -> Sched.t list
(** Exhaustive prefixes (default depth 4) plus random schedules (default
    16) plus round-robin. *)

(** {1 The engine registry} *)

val register_engine : (module Engine.IMPL) -> unit
(** Register an engine implementation under its algorithm name
    (replacing any previous registration).  The built-ins — exhaustive,
    random, and the {!Dpor} family (sleep-set and optimal) — are
    registered at load time; a new engine is one module plus one call
    here, and every checker picks it up through [ctx.strategy] with no
    further changes. *)

val suite_of_strategy_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Engine.suite
(** Materialize [ctx.strategy] through the registry: validate the
    descriptor (raising [Invalid_argument] with the named error on an
    invalid combination or an unregistered algorithm), run the
    implementation, and memoize cacheable [Prefixes] suites in
    [ctx.cache] under {!Dpor.suite_key} (kind ["engine"] — the same
    entries {!Dpor.walk_ctx} reads and writes, so the walk cache and the
    suite cache are one cache). *)

val scheds_of_strategy_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list
(** {!suite_of_strategy_ctx} as a scheduler list — the form the checkers
    consume.  Prefix suites become trace schedulers with content-bearing
    names ([tag:[t0,t1,…]]); the DPOR-walking engines need the layer and
    threads to be the ones the returned schedulers will drive.
    [ctx.jobs] parallelises the sleep-set walk; every suite is identical
    for every jobs count.  The walk is never budgeted (see
    {!Dpor.explore_ctx}). *)

(** {2 Built-in implementations} *)

module Exhaustive_impl : Engine.IMPL
(** All [|tids|^depth] prefixes over the real and pseudo threads — the
    oracle.  Never cached (the entry would be as large as the work). *)

module Random_impl : Engine.IMPL
(** [depth]-many seeded random schedulers (an opaque [Schedulers]
    suite — deterministic, but not prefix-shaped, so never cached). *)

(** {1 Running suites} *)

val run_all_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list ->
  Game.outcome list Budget.outcome
(** Run the machine under every scheduler.  [ctx.jobs] spreads the runs
    over a {!Parallel} domain pool; the outcome list keeps schedule
    order.  [ctx.cache] memoizes the whole outcome list, keyed on the
    game identity (layer, programs, scheduler names, fuel) — but only
    when every outcome is [All_done] {e and} the scan completed: corpora
    containing failures or cut short by the budget re-run live.
    [ctx.token] is charged per game step; an [Exhausted] result carries
    the outcome prefix that was fully evaluated before the budget
    tripped, bit-identical for every jobs count under a step budget. *)

val all_logs : Game.outcome list -> Log.t list

val count_distinct_logs : Game.outcome list -> int
(** Number of distinct interleavings actually observed (hashed dedup —
    linear in total events, not quadratic in runs). *)
