(** Interleaving exploration.

    The behaviour of a layer machine is the set of logs under {e all}
    schedulers (Sec. 2); the checkers approximate the quantifier by
    enumerating scheduling prefixes up to a depth bound and topping up
    with seeded random fair schedules.  This is the bounded substitute for
    the paper's ∀-quantified Coq proofs (DESIGN.md, Substitutions).

    {!exhaustive_scheds} is the reference oracle: all [|tids|^depth]
    prefixes, no pruning.  The default engine behind the checkers is the
    sleep-set DPOR explorer ({!Dpor}), selected through {!strategy}; the
    oracle remains available both as the [`Exhaustive] strategy and as the
    ground truth the equivalence tests compare DPOR against. *)

open Ccal_core

val exhaustive_scheds : tids:Event.tid list -> depth:int -> Sched.t list
(** All [|tids|^depth] scheduling prefixes (round-robin afterwards).
    Use small depths: the count is exponential. *)

val random_scheds : count:int -> Sched.t list
(** [count] seeded random schedulers (deterministic suite). *)

val full_suite : tids:Event.tid list -> ?depth:int -> ?random:int -> unit -> Sched.t list
(** Exhaustive prefixes (default depth 4) plus random schedules (default
    16) plus round-robin. *)

type strategy =
  [ `Exhaustive of int  (** all [|tids|^depth] prefixes — the oracle *)
  | `Dpor of int  (** sleep-set DPOR to the given depth bound — default *)
  | `Random of int  (** [count] seeded random schedulers *)
  ]
(** How a checker enumerates schedulers. *)

val default_strategy : strategy
(** [`Dpor 4] — what the checkers use when no explicit scheduler list or
    strategy is supplied. *)

val pp_strategy : Format.formatter -> strategy -> unit

val scheds_of_strategy_ctx :
  ctx:Ctx.t ->
  ?private_fuel:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list
(** Materialize [ctx.strategy] into a scheduler suite for the given game.
    [`Dpor] walks the game itself to find the non-redundant prefixes;
    the layer and threads must therefore be the ones the returned
    schedulers will drive.  [ctx.jobs] parallelises the DPOR walk
    ({!Dpor.schedules_ctx}); the suite is identical for every jobs count.
    [ctx.cache] memoizes the DPOR walk.  The walk is never budgeted
    (see {!Dpor.explore_ctx}). *)

val run_all_ctx :
  ctx:Ctx.t ->
  ?max_steps:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list ->
  Game.outcome list Budget.outcome
(** Run the machine under every scheduler.  [ctx.jobs] spreads the runs
    over a {!Parallel} domain pool; the outcome list keeps schedule
    order.  [ctx.cache] memoizes the whole outcome list, keyed on the
    game identity (layer, programs, scheduler names, fuel) — but only
    when every outcome is [All_done] {e and} the scan completed: corpora
    containing failures or cut short by the budget re-run live.
    [ctx.token] is charged per game step; an [Exhausted] result carries
    the outcome prefix that was fully evaluated before the budget
    tripped, bit-identical for every jobs count under a step budget. *)

(** {1 Deprecated entry points}

    The pre-[Ctx] signatures, kept for one release. *)

val scheds_of_strategy :
  ?private_fuel:int ->
  ?jobs:int ->
  ?cache:Cache.t ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  strategy ->
  Sched.t list
[@@deprecated "use scheds_of_strategy_ctx"]

val run_all :
  ?max_steps:int ->
  ?jobs:int ->
  ?cache:Cache.t ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list ->
  Game.outcome list
[@@deprecated "use run_all_ctx"]

val all_logs : Game.outcome list -> Log.t list

val count_distinct_logs : Game.outcome list -> int
(** Number of distinct interleavings actually observed (hashed dedup —
    linear in total events, not quadratic in runs). *)
