open Ccal_core

let exhaustive_scheds ~tids ~depth =
  let rec traces d =
    if d <= 0 then [ [] ]
    else
      let shorter = traces (d - 1) in
      List.concat_map (fun t -> List.map (fun tr -> t :: tr) shorter) tids
  in
  List.map (fun tr -> Sched.of_trace tr) (traces depth)

let random_scheds ~count = List.init count (fun k -> Sched.random ~seed:(k + 1))

let full_suite ~tids ?(depth = 4) ?(random = 16) () =
  (Sched.round_robin :: exhaustive_scheds ~tids ~depth) @ random_scheds ~count:random

type strategy =
  [ `Exhaustive of int
  | `Dpor of int
  | `Random of int
  ]

let default_strategy = `Dpor 4

let pp_strategy fmt = function
  | `Exhaustive d -> Format.fprintf fmt "exhaustive(depth=%d)" d
  | `Dpor d -> Format.fprintf fmt "dpor(depth=%d)" d
  | `Random n -> Format.fprintf fmt "random(count=%d)" n

let scheds_of_strategy ?private_fuel ?jobs layer threads = function
  | `Exhaustive depth ->
    exhaustive_scheds ~tids:(List.map fst threads) ~depth
  | `Dpor depth -> Dpor.schedules ?private_fuel ?jobs ~depth layer threads
  | `Random count -> random_scheds ~count

let run_all ?max_steps ?jobs layer threads scheds =
  Probe.span "explore.run_all" (fun () ->
      Parallel.map ?jobs
        (fun sched -> Game.run (Game.config ?max_steps layer threads sched))
        scheds)

let all_logs outcomes = List.map (fun o -> o.Game.log) outcomes

let count_distinct_logs outcomes = List.length (Log.dedup (all_logs outcomes))
