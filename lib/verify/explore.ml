open Ccal_core

let exhaustive_scheds ~tids ~depth =
  let rec traces d =
    if d <= 0 then [ [] ]
    else
      let shorter = traces (d - 1) in
      List.concat_map (fun t -> List.map (fun tr -> t :: tr) shorter) tids
  in
  (* Content-bearing names, not the default "trace": the certificate
     cache identifies a scheduler suite by its names, so two exhaustive
     suites of different prefixes must not alias. *)
  List.map
    (fun tr ->
      Sched.of_trace
        ~name:
          (Printf.sprintf "exh:[%s]"
             (String.concat "," (List.map string_of_int tr)))
        tr)
    (traces depth)

let random_scheds ~count = List.init count (fun k -> Sched.random ~seed:(k + 1))

let full_suite ~tids ?(depth = 4) ?(random = 16) () =
  (Sched.round_robin :: exhaustive_scheds ~tids ~depth) @ random_scheds ~count:random

type strategy =
  [ `Exhaustive of int
  | `Dpor of int
  | `Random of int
  ]

let default_strategy = `Dpor 4

let pp_strategy fmt = function
  | `Exhaustive d -> Format.fprintf fmt "exhaustive(depth=%d)" d
  | `Dpor d -> Format.fprintf fmt "dpor(depth=%d)" d
  | `Random n -> Format.fprintf fmt "random(count=%d)" n

let scheds_of_strategy ?private_fuel ?jobs ?cache layer threads = function
  | `Exhaustive depth ->
    exhaustive_scheds ~tids:(List.map fst threads) ~depth
  | `Dpor depth ->
    Dpor.schedules ?private_fuel ?jobs ?cache ~depth layer threads
  | `Random count -> random_scheds ~count

(* Cache key of a [run_all] call: the complete game identity — layer,
   linked client programs, scheduler suite (by name), fuel.  [jobs] is
   deliberately absent: outcomes are bit-identical across jobs counts. *)
let runall_key ?max_steps layer threads scheds =
  let st = Fingerprint.string Fingerprint.empty "runall" in
  let st = Fingerprint.layer st layer in
  let st =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let st = Fingerprint.scheds st scheds in
  Fingerprint.finish (Fingerprint.option Fingerprint.int st max_steps)

let run_all ?max_steps ?jobs ?cache layer threads scheds =
  let body () =
    Probe.span "explore.run_all" (fun () ->
        Parallel.map ?jobs
          (fun sched -> Game.run (Game.config ?max_steps layer threads sched))
          scheds)
  in
  match cache with
  | None -> body ()
  | Some c -> (
    let key = runall_key ?max_steps layer threads scheds in
    match Cache.find c ~kind:"runall" key with
    | Some (outcomes : Game.outcome list) -> outcomes
    | None ->
      let outcomes = body () in
      (* Only fully clean corpora are stored: any non-[All_done] status
         is a (potential) failure and must always reproduce live. *)
      if List.for_all (fun o -> o.Game.status = Game.All_done) outcomes then
        Cache.store c ~kind:"runall" key outcomes;
      outcomes)

let all_logs outcomes = List.map (fun o -> o.Game.log) outcomes

let count_distinct_logs outcomes = List.length (Log.dedup (all_logs outcomes))
