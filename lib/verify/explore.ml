open Ccal_core
module Engine = Strategy.Engine

let exhaustive_prefixes ~tids ~depth =
  let rec traces d =
    if d <= 0 then [ [] ]
    else
      let shorter = traces (d - 1) in
      List.concat_map (fun t -> List.map (fun tr -> t :: tr) shorter) tids
  in
  traces depth

(* Content-bearing names, not the default "trace": the certificate cache
   identifies a scheduler suite by its names, so two suites of different
   prefixes must not alias.  The dpor family shares the "dpor" tag —
   identical prefixes from [dpor] and flagless [optimal] then share
   verdict cache entries, which is sound because the replayed games are
   identical. *)
let sched_of_prefix ~tag tr =
  Sched.of_trace
    ~name:
      (Printf.sprintf "%s:[%s]" tag
         (String.concat "," (List.map string_of_int tr)))
    tr

let exhaustive_scheds ~tids ~depth =
  List.map (sched_of_prefix ~tag:"exh") (exhaustive_prefixes ~tids ~depth)

let random_scheds ~count = List.init count (fun k -> Sched.random ~seed:(k + 1))

let full_suite ~tids ?(depth = 4) ?(random = 16) () =
  (Sched.round_robin :: exhaustive_scheds ~tids ~depth) @ random_scheds ~count:random

(* ------------------------------------------------------------------ *)
(* The engine registry (DESIGN.md S31)                                 *)
(* ------------------------------------------------------------------ *)

let registry : (string, (module Engine.IMPL)) Hashtbl.t = Hashtbl.create 8

let register_engine (module I : Engine.IMPL) =
  Hashtbl.replace registry (Engine.algo_name I.algo) (module I : Engine.IMPL)

let find_engine algo = Hashtbl.find_opt registry (Engine.algo_name algo)

module Exhaustive_impl : Engine.IMPL = struct
  let algo = Engine.Exhaustive

  (* Never cached: materializing all [|tids|^depth] prefixes is the cost,
     and a cache entry would be as large as recomputing it. *)
  let cacheable = false

  let suite ~engine ~jobs:_ ~memory ?private_fuel:_ layer threads =
    (* Pseudo-threads (TSO flushers, the crash thread) are schedulable
       too, so the exhaustive prefix alphabet must include their tids. *)
    let effective = threads @ Game.pseudo_threads ~memory layer threads in
    Engine.Prefixes
      {
        tag = "exh";
        prefixes =
          exhaustive_prefixes ~tids:(List.map fst effective)
            ~depth:engine.Engine.depth;
        stats = Engine.no_walk_stats;
      }
end

module Random_impl : Engine.IMPL = struct
  let algo = Engine.Random
  let cacheable = false

  let suite ~engine ~jobs:_ ~memory:_ ?private_fuel:_ _layer _threads =
    (* [depth] doubles as the suite size for the random engine. *)
    Engine.Schedulers (random_scheds ~count:engine.Engine.depth)
end

let () =
  register_engine (module Exhaustive_impl);
  register_engine (module Random_impl);
  register_engine (module Dpor.Sleep_impl);
  register_engine (module Dpor.Optimal_impl)

let suite_of_strategy_ctx ~ctx ?private_fuel layer threads =
  let engine = ctx.Ctx.strategy in
  (match Engine.validate engine with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let (module I : Engine.IMPL) =
    match find_engine engine.Engine.algo with
    | Some impl -> impl
    | None ->
      invalid_arg
        ("no registered exploration engine: " ^ Engine.algo_name engine.Engine.algo)
  in
  let live () =
    I.suite ~engine ~jobs:ctx.Ctx.jobs ~memory:ctx.Ctx.memory ?private_fuel
      layer threads
  in
  match ctx.Ctx.cache with
  | Some c when I.cacheable -> (
    (* One keying scheme for every cacheable engine: [Dpor.suite_key]
       under kind "engine", storing (tag, prefixes, stats) — the same
       shape [Dpor.walk] reads and writes, so the walk cache and the
       suite cache are one cache. *)
    let key =
      Dpor.suite_key ?private_fuel ~engine ~independence:Dpor.Exact
        ~reads:Dpor.default_reads ~memory:ctx.Ctx.memory
        ~depth:engine.Engine.depth layer threads
    in
    match Cache.find c ~kind:"engine" key with
    | Some
        ((tag, prefixes, stats) :
          string * Event.tid list list * Engine.walk_stats) ->
      Engine.Prefixes { tag; prefixes; stats }
    | None -> (
      match live () with
      | Engine.Prefixes { tag; prefixes; stats } as s ->
        Cache.store c ~kind:"engine" key (tag, prefixes, stats);
        s
      | Engine.Schedulers _ as s -> s))
  | _ -> live ()

let scheds_of_strategy_ctx ~ctx ?private_fuel layer threads =
  match suite_of_strategy_ctx ~ctx ?private_fuel layer threads with
  | Engine.Schedulers ss -> ss
  | Engine.Prefixes { tag; prefixes; _ } ->
    List.map (sched_of_prefix ~tag) prefixes

(* Cache key of a [run_all] call: the complete game identity — layer,
   linked client programs, scheduler suite (by name), fuel.  [jobs] is
   deliberately absent: outcomes are bit-identical across jobs counts. *)
let runall_key ?max_steps ~memory layer threads scheds =
  let st = Fingerprint.string Fingerprint.empty "runall" in
  let st = Fingerprint.layer st layer in
  let st = Fingerprint.memory st memory in
  let st =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let st = Fingerprint.scheds st scheds in
  Fingerprint.finish (Fingerprint.option Fingerprint.int st max_steps)

let run_all_ctx ~ctx ?max_steps layer threads scheds =
  Ctx.arm ctx @@ fun () ->
  let body () =
    Probe.span "explore.run_all" (fun () ->
        Parallel.budgeted_scan
          ?jobs:(Ctx.jobs_opt ctx)
          ~token:ctx.Ctx.token
          ~cost:(fun o -> o.Game.steps)
          ~interrupted:(fun o -> o.Game.status = Game.Cancelled)
          ~cut:(fun _ -> false)
          (fun ~stop sched ->
            Game.replay
              (Game.config ?max_steps ?stop ~memory:ctx.Ctx.memory layer
                 threads sched))
          scheds)
  in
  let finish (b : Game.outcome Parallel.budgeted) =
    if b.Parallel.ran_out then
      Budget.Exhausted
        { spent = Budget.spent ctx.Ctx.token; partial = b.Parallel.prefix }
    else Budget.Complete b.Parallel.prefix
  in
  match ctx.Ctx.cache with
  | None -> finish (body ())
  | Some c -> (
    let key = runall_key ?max_steps ~memory:ctx.Ctx.memory layer threads scheds in
    match Cache.find c ~kind:"runall" key with
    | Some (outcomes : Game.outcome list) -> Budget.Complete outcomes
    | None -> (
      match finish (body ()) with
      | Budget.Complete outcomes as r ->
        (* Only fully clean, fully explored corpora are stored: any
           non-[All_done] status is a (potential) failure and must always
           reproduce live, and an exhausted prefix is not the corpus. *)
        if List.for_all (fun o -> o.Game.status = Game.All_done) outcomes
        then Cache.store c ~kind:"runall" key outcomes;
        r
      | Budget.Exhausted _ as r -> r))

let all_logs outcomes = List.map (fun o -> o.Game.log) outcomes

let count_distinct_logs outcomes = List.length (Log.dedup (all_logs outcomes))
