open Ccal_core

let exhaustive_scheds ~tids ~depth =
  let rec traces d =
    if d <= 0 then [ [] ]
    else
      let shorter = traces (d - 1) in
      List.concat_map (fun t -> List.map (fun tr -> t :: tr) shorter) tids
  in
  (* Content-bearing names, not the default "trace": the certificate
     cache identifies a scheduler suite by its names, so two exhaustive
     suites of different prefixes must not alias. *)
  List.map
    (fun tr ->
      Sched.of_trace
        ~name:
          (Printf.sprintf "exh:[%s]"
             (String.concat "," (List.map string_of_int tr)))
        tr)
    (traces depth)

let random_scheds ~count = List.init count (fun k -> Sched.random ~seed:(k + 1))

let full_suite ~tids ?(depth = 4) ?(random = 16) () =
  (Sched.round_robin :: exhaustive_scheds ~tids ~depth) @ random_scheds ~count:random

type strategy =
  [ `Exhaustive of int
  | `Dpor of int
  | `Random of int
  ]

let default_strategy = `Dpor 4

let pp_strategy fmt = function
  | `Exhaustive d -> Format.fprintf fmt "exhaustive(depth=%d)" d
  | `Dpor d -> Format.fprintf fmt "dpor(depth=%d)" d
  | `Random n -> Format.fprintf fmt "random(count=%d)" n

let scheds_of_strategy_ctx ~ctx ?private_fuel layer threads =
  match ctx.Ctx.strategy with
  | `Exhaustive depth ->
    (* Pseudo-threads (TSO flushers, the crash thread) are schedulable
       too, so the exhaustive prefix alphabet must include their tids. *)
    let effective =
      threads @ Game.pseudo_threads ~memory:ctx.Ctx.memory layer threads
    in
    exhaustive_scheds ~tids:(List.map fst effective) ~depth
  | `Dpor depth -> Dpor.schedules_ctx ~ctx ?private_fuel ~depth layer threads
  | `Random count -> random_scheds ~count

let scheds_of_strategy ?private_fuel ?jobs ?cache layer threads strategy =
  scheds_of_strategy_ctx
    ~ctx:(Ctx.of_legacy ?jobs ?cache ~strategy ())
    ?private_fuel layer threads

(* Cache key of a [run_all] call: the complete game identity — layer,
   linked client programs, scheduler suite (by name), fuel.  [jobs] is
   deliberately absent: outcomes are bit-identical across jobs counts. *)
let runall_key ?max_steps ~memory layer threads scheds =
  let st = Fingerprint.string Fingerprint.empty "runall" in
  let st = Fingerprint.layer st layer in
  let st = Fingerprint.memory st memory in
  let st =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let st = Fingerprint.scheds st scheds in
  Fingerprint.finish (Fingerprint.option Fingerprint.int st max_steps)

let run_all_ctx ~ctx ?max_steps layer threads scheds =
  Ctx.arm ctx @@ fun () ->
  let body () =
    Probe.span "explore.run_all" (fun () ->
        Parallel.budgeted_scan
          ?jobs:(Ctx.jobs_opt ctx)
          ~token:ctx.Ctx.token
          ~cost:(fun o -> o.Game.steps)
          ~interrupted:(fun o -> o.Game.status = Game.Cancelled)
          ~cut:(fun _ -> false)
          (fun ~stop sched ->
            Game.replay
              (Game.config ?max_steps ?stop ~memory:ctx.Ctx.memory layer
                 threads sched))
          scheds)
  in
  let finish (b : Game.outcome Parallel.budgeted) =
    if b.Parallel.ran_out then
      Budget.Exhausted
        { spent = Budget.spent ctx.Ctx.token; partial = b.Parallel.prefix }
    else Budget.Complete b.Parallel.prefix
  in
  match ctx.Ctx.cache with
  | None -> finish (body ())
  | Some c -> (
    let key = runall_key ?max_steps ~memory:ctx.Ctx.memory layer threads scheds in
    match Cache.find c ~kind:"runall" key with
    | Some (outcomes : Game.outcome list) -> Budget.Complete outcomes
    | None -> (
      match finish (body ()) with
      | Budget.Complete outcomes as r ->
        (* Only fully clean, fully explored corpora are stored: any
           non-[All_done] status is a (potential) failure and must always
           reproduce live, and an exhausted prefix is not the corpus. *)
        if List.for_all (fun o -> o.Game.status = Game.All_done) outcomes
        then Cache.store c ~kind:"runall" key outcomes;
        r
      | Budget.Exhausted _ as r -> r))

let run_all ?max_steps ?jobs ?cache layer threads scheds =
  Budget.value
    (run_all_ctx
       ~ctx:(Ctx.of_legacy ?jobs ?cache ())
       ?max_steps layer threads scheds)

let all_logs outcomes = List.map (fun o -> o.Game.log) outcomes

let count_distinct_logs outcomes = List.length (Log.dedup (all_logs outcomes))
