open Ccal_core

type independence = Exact | Commuting_events

type stats = {
  schedules_considered : int;
  schedules_run : int;
  schedules_pruned : int;
  sleep_set_prunes : int;
  distinct_logs : int;
}

type result = {
  prefixes : Event.tid list list;
  outcomes : Game.outcome list;
  stats : stats;
}

let default_reads = [ "get_n"; "aload"; "read" ]

(* The object an event touches: by convention every shared primitive of the
   concrete objects takes the object identifier (lock, cell, location,
   channel…) as its first integer argument.  Events without one (e.g.
   [switch]) are conservatively dependent on everything. *)
let obj (e : Event.t) =
  match e.args with Value.Vint b :: _ -> Some b | _ -> None

let independent_events ?(reads = default_reads) (e1 : Event.t) (e2 : Event.t) =
  e1.src <> e2.src
  &&
  match obj e1, obj e2 with
  | Some a, Some b when a <> b -> true
  | Some _, Some _ -> List.mem e1.tag reads && List.mem e2.tag reads
  | _ -> false

(* Canonical representative of a Mazurkiewicz trace: repeatedly emit the
   [Event.compare]-least event among those with no earlier dependent event.
   Two logs are equivalent up to commuting independent events iff their
   canonical forms are equal. *)
let canonical_events indep events =
  let rec minimal_candidates rev_prefix = function
    | [] -> []
    | e :: rest ->
      let minimal = List.for_all (fun p -> indep p e) rev_prefix in
      let here =
        if minimal then [ e, List.rev_append rev_prefix rest ] else []
      in
      here @ minimal_candidates (e :: rev_prefix) rest
  in
  let rec build acc evs =
    match evs with
    | [] -> List.rev acc
    | first :: _ -> (
      match minimal_candidates [] evs with
      | [] -> List.rev_append acc [ first ] (* unreachable: the head is minimal *)
      | c :: cs ->
        let e, rest =
          List.fold_left
            (fun (be, br) (e, r) ->
              if Event.compare e be < 0 then e, r else be, br)
            c cs
        in
        build (e :: acc) rest)
  in
  build [] events

let canonical_log ?reads log =
  Log.append_all
    (canonical_events (independent_events ?reads) (Log.chronological log))
    Log.empty

(* One enabled move of one thread, as classified by the DFS. *)
type move =
  | Fin  (** the thread runs to completion without emitting events *)
  | Step of Event.t list * Machine.thread_state
  | Halt  (** picking this thread ends the run stuck — a leaf *)

let independent_moves independence reads m1 m2 =
  match m1, m2 with
  | Fin, _ | _, Fin -> true
  | Halt, _ | _, Halt -> false
  | Step (es1, _), Step (es2, _) -> (
    match independence with
    | Exact -> false
    | Commuting_events ->
      List.for_all
        (fun e1 -> List.for_all (independent_events ~reads e1) es2)
        es1)

let rec pow b n = if n <= 0 then 1 else b * pow b (n - 1)

(* Sleep-set DFS over the enabled moves of the whole-machine game, bounded
   to [depth] scheduling choices.  Thread states are immutable, so a node
   is just (slots, log, step); each surviving branch records its choice
   prefix, later replayed through [Game.run] so leaf outcomes are
   bit-identical to the exhaustive oracle's. *)
let prefixes_with_prunes ?private_fuel ?(independence = Exact)
    ?(reads = default_reads) ~depth layer threads =
  let recorded = ref [] in
  let sleep_prunes = ref 0 in
  let record rev_prefix = recorded := List.rev rev_prefix :: !recorded in
  let classify slots log =
    List.filter_map
      (fun (i, st) ->
        match Machine.step_move ?private_fuel layer i st log with
        | Machine.Blocked_at _ -> None
        | Machine.Finished _ -> Some (i, Fin)
        | Machine.Moved (evs, st') -> Some (i, Step (evs, st'))
        | Machine.Stuck _ -> Some (i, Halt))
      slots
  in
  let apply slots log i = function
    | Step (evs, st') ->
      ( List.map (fun (j, st) -> if j = i then j, st' else j, st) slots,
        Log.append_all evs log )
    | Fin -> List.filter (fun (j, _) -> j <> i) slots, log
    | Halt -> slots, log
  in
  let rec dfs slots log step rev_prefix sleep =
    if step >= depth || slots = [] then record rev_prefix
    else
      let enabled = classify slots log in
      match enabled with
      | [] -> record rev_prefix (* deadlock: every thread is blocked *)
      | _ ->
        let explored = ref [] in
        List.iter
          (fun (i, m) ->
            if List.exists (fun (j, _) -> j = i) sleep then incr sleep_prunes
            else (
              (match m with
              | Halt -> record (i :: rev_prefix)
              | Fin | Step _ ->
                let sleep' =
                  List.filter
                    (fun (_, m') -> independent_moves independence reads m' m)
                    (sleep @ List.rev !explored)
                in
                let slots', log' = apply slots log i m in
                dfs slots' log' (step + 1) (i :: rev_prefix) sleep');
              explored := (i, m) :: !explored))
          enabled
  in
  let slots0 = List.map (fun (i, p) -> i, Machine.initial layer i p) threads in
  dfs slots0 Log.empty 0 [] [];
  List.rev !recorded, !sleep_prunes

let prefixes ?private_fuel ?independence ?reads ~depth layer threads =
  fst (prefixes_with_prunes ?private_fuel ?independence ?reads ~depth layer threads)

let sched_of_prefix prefix =
  Sched.of_trace
    ~name:
      (Printf.sprintf "dpor:[%s]"
         (String.concat "," (List.map string_of_int prefix)))
    prefix

let schedules ?private_fuel ?independence ?reads ~depth layer threads =
  List.map sched_of_prefix
    (prefixes ?private_fuel ?independence ?reads ~depth layer threads)

let explore ?max_steps ?private_fuel ?(independence = Exact) ?reads ~depth
    layer threads =
  let prefixes, sleep_set_prunes =
    prefixes_with_prunes ?private_fuel ~independence ?reads ~depth layer threads
  in
  let outcomes =
    List.map
      (fun p -> Game.run (Game.config ?max_steps layer threads (sched_of_prefix p)))
      prefixes
  in
  let logs = List.map (fun o -> o.Game.log) outcomes in
  let representative =
    match independence with
    | Exact -> logs
    | Commuting_events -> List.map (canonical_log ?reads) logs
  in
  let schedules_considered = pow (List.length threads) depth in
  let schedules_run = List.length prefixes in
  {
    prefixes;
    outcomes;
    stats =
      {
        schedules_considered;
        schedules_run;
        schedules_pruned = max 0 (schedules_considered - schedules_run);
        sleep_set_prunes;
        distinct_logs = List.length (Log.dedup representative);
      };
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<h>schedules: %d run / %d considered (%d pruned, %d sleep-set skips); %d distinct logs@]"
    s.schedules_run s.schedules_considered s.schedules_pruned
    s.sleep_set_prunes s.distinct_logs
