open Ccal_core
module Engine = Strategy.Engine

type independence = Exact | Commuting_events

type stats = {
  schedules_considered : int;
  schedules_run : int;
  schedules_pruned : int;
  sleep_set_prunes : int;
  dedup_hits : int;
  sym_prunes : int;
  distinct_logs : int;
}

type result = {
  prefixes : Event.tid list list;
  outcomes : Game.outcome list;
  stats : stats;
}

let default_reads = [ "get_n"; "aload"; "read" ]

(* The object an event touches: by convention every shared primitive of the
   concrete objects takes the object identifier (lock, cell, location,
   channel…) as its first integer argument.  Events without one (e.g.
   [switch]) are conservatively dependent on everything. *)
let obj (e : Event.t) =
  match e.args with Value.Vint b :: _ -> Some b | _ -> None

let independent_events ?(reads = default_reads) (e1 : Event.t) (e2 : Event.t) =
  e1.src <> e2.src
  &&
  match obj e1, obj e2 with
  | Some a, Some b when a <> b -> true
  | Some _, Some _ -> List.mem e1.tag reads && List.mem e2.tag reads
  | _ -> false

(* Canonical representative of a Mazurkiewicz trace: repeatedly emit the
   [Event.compare]-least event among those with no earlier dependent event.
   Two logs are equivalent up to commuting independent events iff their
   canonical forms are equal. *)
let canonical_events indep events =
  let rec minimal_candidates rev_prefix = function
    | [] -> []
    | e :: rest ->
      let minimal = List.for_all (fun p -> indep p e) rev_prefix in
      let here =
        if minimal then [ e, List.rev_append rev_prefix rest ] else []
      in
      here @ minimal_candidates (e :: rev_prefix) rest
  in
  let rec build acc evs =
    match evs with
    | [] -> List.rev acc
    | first :: _ -> (
      match minimal_candidates [] evs with
      | [] -> List.rev_append acc [ first ] (* unreachable: the head is minimal *)
      | c :: cs ->
        let e, rest =
          List.fold_left
            (fun (be, br) (e, r) ->
              if Event.compare e be < 0 then e, r else be, br)
            c cs
        in
        build (e :: acc) rest)
  in
  build [] events

let canonical_log ?reads log =
  Log.append_all
    (canonical_events (independent_events ?reads) (Log.chronological log))
    Log.empty

(* One enabled move of one thread, as classified by the DFS. *)
type move =
  | Fin  (** the thread runs to completion without emitting events *)
  | Step of Event.t list * Machine.thread_state
  | Halt  (** picking this thread ends the run stuck — a leaf *)

let independent_moves independence reads m1 m2 =
  match m1, m2 with
  | Fin, _ | _, Fin -> true
  | Halt, _ | _, Halt -> false
  | Step (es1, _), Step (es2, _) -> (
    match independence with
    | Exact -> false
    | Commuting_events ->
      List.for_all
        (fun e1 -> List.for_all (independent_events ~reads e1) es2)
        es1)

(* Saturating [b^n].  The deeper bounds the optimal engine reaches make
   [|threads|^depth] overflow native ints (e.g. 8 threads at depth 21);
   a wrapped count would silently report nonsense prune ratios, so the
   count pins at [max_int] and [pp_stats] renders that distinctly. *)
let sat_mul a b = if a > 0 && b > max_int / a then max_int else a * b
let pow b n =
  let rec go acc n = if n <= 0 then acc else go (sat_mul acc b) (n - 1) in
  go 1 n

(* A DFS node.  Thread states are immutable, so this is a complete,
   self-contained description of a subtree root: a child's sleep set
   depends only on its parent's sleep set and its earlier siblings' moves,
   both known before descending, which is what makes subtrees independent
   and the frontier-parallel walk below possible. *)
type node = {
  slots : (Event.tid * Machine.thread_state) list;
  log : Log.t;
  step : int;
  rev_prefix : Event.tid list;
  sleep : (Event.tid * move) list;
}

(* The frontier of a partially-expanded DFS, in pre-order: leaves already
   pinned interleave with unexpanded subtree roots. *)
type fringe_item = Leaf of Event.tid list | Subtree of node

(* Sleep-set DFS over the enabled moves of the whole-machine game, bounded
   to [depth] scheduling choices.  Each surviving branch records its
   choice prefix, later replayed through [Game.run] so leaf outcomes are
   bit-identical to the exhaustive oracle's.

   With [jobs > 1] the root is expanded level-synchronously until the
   frontier holds enough subtrees to feed the pool; subtrees then run
   sequential DFS on separate domains and their results are concatenated
   in fringe order.  Pre-order is preserved at every stage, so the prefix
   list (and the prune count, a sum) is identical for every jobs count. *)
(* Cache key of an engine walk: the engine descriptor plus the game
   identity and every knob that shapes the walk.  The walk has no
   failure mode (a stuck leaf is just a short prefix), so unlike
   verdicts its result is stored unconditionally; the replay phase
   always runs live.  [Explore] uses the same key for every cacheable
   registered engine, so one scheme covers the whole suite cache. *)
let suite_key ?private_fuel ~engine ~independence ~reads ~memory ~depth layer
    threads =
  let st = Fingerprint.string Fingerprint.empty "engine-suite" in
  let st =
    Fingerprint.string st (Engine.to_string { engine with Engine.depth })
  in
  let st = Fingerprint.layer st layer in
  let st = Fingerprint.memory st memory in
  let st =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let st = Fingerprint.int st depth in
  let st =
    Fingerprint.int st (match independence with Exact -> 1 | Commuting_events -> 2)
  in
  let st = Fingerprint.list Fingerprint.string st reads in
  Fingerprint.finish (Fingerprint.option Fingerprint.int st private_fuel)

let prefixes_with_prunes_live ?private_fuel ?(independence = Exact)
    ?(reads = default_reads) ?jobs ?(memory = Memory.default) ~depth layer
    threads =
  (* Pseudo-threads (TSO flushers, the crash thread of a crash-enabled
     layer) are part of the schedule space: the DFS explores their moves
     like any other thread's.  [Game.config] re-adds the same
     pseudo-threads internally, so the original [threads] go to replay
     untouched. *)
  let threads = threads @ Game.pseudo_threads ~memory layer threads in
  let classify slots log =
    List.filter_map
      (fun (i, st) ->
        match Machine.step_move ?private_fuel layer i st log with
        | Machine.Blocked_at _ -> None
        | Machine.Finished _ -> Some (i, Fin)
        | Machine.Moved (evs, st') -> Some (i, Step (evs, st'))
        | Machine.Stuck _ -> Some (i, Halt))
      slots
  in
  let apply slots log i = function
    | Step (evs, st') ->
      ( List.map (fun (j, st) -> if j = i then j, st' else j, st) slots,
        Log.append_all evs log )
    | Fin -> List.filter (fun (j, _) -> j <> i) slots, log
    | Halt -> slots, log
  in
  (* One level of expansion: the node's children (and immediate leaves) in
     sibling order, plus the sleep-set prunes taken at this node. *)
  let expand n =
    if n.step >= depth || n.slots = [] then [ Leaf (List.rev n.rev_prefix) ], 0
    else
      match classify n.slots n.log with
      | [] -> [ Leaf (List.rev n.rev_prefix) ], 0 (* deadlock: all blocked *)
      | enabled ->
        let prunes = ref 0 in
        let explored = ref [] in
        let items = ref [] in
        List.iter
          (fun (i, m) ->
            if List.exists (fun (j, _) -> j = i) n.sleep then incr prunes
            else (
              (match m with
              | Halt -> items := Leaf (List.rev (i :: n.rev_prefix)) :: !items
              | Fin | Step _ ->
                let sleep' =
                  List.filter
                    (fun (_, m') -> independent_moves independence reads m' m)
                    (n.sleep @ List.rev !explored)
                in
                let slots', log' = apply n.slots n.log i m in
                items :=
                  Subtree
                    {
                      slots = slots';
                      log = log';
                      step = n.step + 1;
                      rev_prefix = i :: n.rev_prefix;
                      sleep = sleep';
                    }
                  :: !items);
              explored := (i, m) :: !explored))
          enabled;
        List.rev !items, !prunes
  in
  (* Sequential DFS of a whole subtree, expressed through [expand] so both
     engines walk literally the same transition code. *)
  let dfs_from root =
    let recorded = ref [] in
    let prunes = ref 0 in
    let rec go n =
      let items, p = expand n in
      prunes := !prunes + p;
      List.iter
        (function
          | Leaf prefix -> recorded := prefix :: !recorded
          | Subtree n' -> go n')
        items
    in
    go root;
    List.rev !recorded, !prunes
  in
  let root =
    {
      slots = List.map (fun (i, p) -> i, Machine.initial layer i p) threads;
      log = Log.empty;
      step = 0;
      rev_prefix = [];
      sleep = [];
    }
  in
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  if jobs <= 1 then dfs_from root
  else begin
    (* Grow the frontier breadth-first until it can feed the pool.  Each
       round replaces every subtree root by its expansion, in place, so
       fringe order stays pre-order.

       The split depth is calibrated, not fixed: each round descends one
       level, and growth stops at the shallowest depth whose frontier
       holds [jobs * 8] subtrees — enough outstanding subtrees that an
       uneven one (sleep sets prune subtrees very unevenly) can be
       absorbed by work stealing, while keeping each subtree a full
       domain-local DFS: sleep sets never cross a domain boundary, and
       no two domains ever touch the same prefix. *)
    let target = jobs * 8 in
    let count_subtrees fringe =
      List.length
        (List.filter (function Subtree _ -> true | Leaf _ -> false) fringe)
    in
    let rec grow fringe prunes rounds =
      let subtrees = count_subtrees fringe in
      if subtrees = 0 || subtrees >= target || rounds <= 0 then fringe, prunes
      else
        let prunes = ref prunes in
        let fringe' =
          List.concat_map
            (function
              | Leaf _ as l -> [ l ]
              | Subtree n ->
                let items, p = expand n in
                prunes := !prunes + p;
                items)
            fringe
        in
        grow fringe' !prunes (rounds - 1)
    in
    let fringe, grow_prunes = grow [ Subtree root ] 0 (depth + 1) in
    let parts =
      Parallel.map ~jobs
        (function Leaf p -> [ p ], 0 | Subtree n -> dfs_from n)
        fringe
    in
    ( List.concat_map fst parts,
      List.fold_left (fun acc (_, p) -> acc + p) grow_prunes parts )
  end

(* ------------------------------------------------------------------ *)
(* The optimal engine (DESIGN.md S31)                                  *)
(* ------------------------------------------------------------------ *)

(* Sleep-set DFS extended with the two state-level reductions the
   sleep-set engine cannot perform:

   - [dedup]: state-fingerprint deduplication.  Two prefixes that
     converge on the same machine state — same per-thread continuations
     and abstract states, same step count, same log (same canonical log
     under [Commuting_events]) — root isomorphic subtrees whose leaf
     outcomes are pairwise equivalent, because the post-prefix
     round-robin tail is a pure function of that state.  The second
     visit is pruned.  Soundness needs Godefroid's sleep-set caching
     rule: a visit is covered only by an earlier visit that explored at
     least as much, i.e. whose not-explored (slept ∪ symmetry-pruned)
     tid set is a subset of the current one; the current sleep set's
     moves are covered along the current path as usual.  The step count
     lives in the key because the depth bound is part of the state: a
     shallower twin has a longer round-robin tail.

   - [sym]: symmetry reduction across identical fresh threads.  Two
     real threads whose initial programs differ only in their own tid
     (equal {!Fingerprint.prog_blind} fingerprints) are interchangeable
     until either is scheduled or either tid leaks into the log as data;
     at any node where several such threads are enabled, fresh, and
     absent from the log's integers, only the first is explored.  The
     pruned branches are covered up to the tid transposition, so leaf
     logs are preserved only up to renaming — [sym] is opt-in and
     excluded from the literal log-identity matrix.

   The walk is sequential (the dedup table is global); [ctx.jobs] still
   parallelises the replay phase, so verdicts stay jobs-independent. *)
let optimal_walk_live ?private_fuel ~independence ~reads ~dedup ~sym ~memory
    ~depth layer threads =
  let threads = threads @ Game.pseudo_threads ~memory layer threads in
  let classify slots log =
    List.filter_map
      (fun (i, st) ->
        match Machine.step_move ?private_fuel layer i st log with
        | Machine.Blocked_at _ -> None
        | Machine.Finished _ -> Some (i, Fin)
        | Machine.Moved (evs, st') -> Some (i, Step (evs, st'))
        | Machine.Stuck _ -> Some (i, Halt))
      slots
  in
  let apply slots log i = function
    | Step (evs, st') ->
      ( List.map (fun (j, st) -> if j = i then j, st' else j, st) slots,
        Log.append_all evs log )
    | Fin -> List.filter (fun (j, _) -> j <> i) slots, log
    | Halt -> slots, log
  in
  (* Symmetry classes over the real tids: the tid-blinded fingerprint of
     each initial program, computed once — freshness (tid never
     scheduled) means the thread still sits in its initial state. *)
  let sym_class =
    if not sym then fun _ -> None
    else
      let classes =
        List.filter_map
          (fun (i, p) ->
            if i < 0 then None
            else
              Some
                ( i,
                  Fingerprint.finish
                    (Fingerprint.prog_blind ~tid:i Fingerprint.empty p) ))
          threads
      in
      fun i -> List.assoc_opt i classes
  in
  let module Iset = Set.Make (Int) in
  let add_value_ints acc v =
    let rec go acc (v : Value.t) =
      match v with
      | Value.Vint n -> Iset.add n acc
      | Value.Vpair (a, b) -> go (go acc a) b
      | Value.Vlist vs -> List.fold_left go acc vs
      | Value.Vunit | Value.Vbool _ -> acc
    in
    go acc v
  in
  let add_event_ints acc (e : Event.t) =
    add_value_ints
      (List.fold_left add_value_ints (Iset.add e.src acc) e.args)
      e.ret
  in
  let state_key step slots log =
    let st = Fingerprint.int Fingerprint.empty step in
    let st =
      Fingerprint.list
        (fun st (i, (ts : Machine.thread_state)) ->
          let st = Fingerprint.int st i in
          let st = Fingerprint.prog ~budget:512 st ts.Machine.prog in
          let st =
            Fingerprint.list
              (fun st (k, v) -> Fingerprint.value (Fingerprint.string st k) v)
              st (Abs.fields ts.Machine.abs)
          in
          Fingerprint.bool st ts.Machine.crit)
        st slots
    in
    let log_hash =
      match independence with
      | Exact -> Log.hash log
      | Commuting_events -> Log.hash (canonical_log ~reads log)
    in
    Fingerprint.finish (Fingerprint.int st log_hash)
  in
  let seen : (Fingerprint.t, Iset.t list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  let covered key not_explored =
    match Hashtbl.find_opt seen key with
    | None -> false
    | Some stored -> List.exists (fun s -> Iset.subset s not_explored) !stored
  in
  let record key not_explored =
    match Hashtbl.find_opt seen key with
    | Some stored -> stored := not_explored :: !stored
    | None -> Hashtbl.add seen key (ref [ not_explored ])
  in
  let recorded = ref [] in
  let sleep_prunes = ref 0 in
  let dedup_hits = ref 0 in
  let sym_prunes = ref 0 in
  let rec go n log_ints =
    let emit_leaf () = recorded := List.rev n.rev_prefix :: !recorded in
    (* A leaf does not branch, so any earlier visit of the same state at
       the same step covers it wholesale: stored with the empty set. *)
    let leaf_covered () =
      dedup
      &&
      let key = state_key n.step n.slots n.log in
      if covered key Iset.empty then begin
        incr dedup_hits;
        true
      end
      else begin
        record key Iset.empty;
        false
      end
    in
    if n.step >= depth || n.slots = [] then begin
      if not (leaf_covered ()) then emit_leaf ()
    end
    else
      match classify n.slots n.log with
      | [] -> if not (leaf_covered ()) then emit_leaf () (* deadlock *)
      | enabled ->
        (* Decide each enabled move before touching any child: slept,
           symmetry-pruned, or explored. *)
        let decisions =
          let sym_reps = ref [] in
          List.map
            (fun (i, m) ->
              if List.exists (fun (j, _) -> j = i) n.sleep then (i, m, `Sleep)
              else
                let symmetric =
                  m <> Halt && i >= 0
                  && (not (List.mem i n.rev_prefix))
                  && (not (Iset.mem i log_ints))
                  &&
                  match sym_class i with
                  | None -> false
                  | Some c ->
                    if
                      List.exists
                        (fun (c', i') ->
                          Fingerprint.equal c c'
                          && not (Iset.mem i' log_ints))
                        !sym_reps
                    then true
                    else begin
                      sym_reps := (c, i) :: !sym_reps;
                      false
                    end
                in
                if symmetric then (i, m, `Sym) else (i, m, `Explore))
            enabled
        in
        let not_explored =
          List.fold_left
            (fun acc (i, _, d) ->
              match d with `Sleep | `Sym -> Iset.add i acc | `Explore -> acc)
            Iset.empty decisions
        in
        let deduped =
          dedup
          &&
          let key = state_key n.step n.slots n.log in
          if covered key not_explored then begin
            incr dedup_hits;
            true
          end
          else begin
            record key not_explored;
            false
          end
        in
        if not deduped then begin
          let explored = ref [] in
          List.iter
            (fun (i, m, d) ->
              match d with
              | `Sleep -> incr sleep_prunes
              | `Sym -> incr sym_prunes
              | `Explore ->
                (match m with
                | Halt ->
                  recorded := List.rev (i :: n.rev_prefix) :: !recorded
                | Fin | Step _ ->
                  let sleep' =
                    List.filter
                      (fun (_, m') -> independent_moves independence reads m' m)
                      (n.sleep @ List.rev !explored)
                  in
                  let slots', log' = apply n.slots n.log i m in
                  let log_ints' =
                    if not sym then log_ints
                    else
                      match m with
                      | Step (evs, _) ->
                        List.fold_left add_event_ints log_ints evs
                      | Fin | Halt -> log_ints
                  in
                  go
                    {
                      slots = slots';
                      log = log';
                      step = n.step + 1;
                      rev_prefix = i :: n.rev_prefix;
                      sleep = sleep';
                    }
                    log_ints');
                explored := (i, m) :: !explored)
            decisions
        end
  in
  go
    {
      slots = List.map (fun (i, p) -> i, Machine.initial layer i p) threads;
      log = Log.empty;
      step = 0;
      rev_prefix = [];
      sleep = [];
    }
    Iset.empty;
  ( List.rev !recorded,
    {
      Engine.sleep_prunes = !sleep_prunes;
      dedup_hits = !dedup_hits;
      sym_prunes = !sym_prunes;
    } )

(* ------------------------------------------------------------------ *)
(* Engine dispatch, suite cache, schedulers                            *)
(* ------------------------------------------------------------------ *)

let walk_live ?private_fuel ?(independence = Exact) ?(reads = default_reads)
    ?jobs ?(memory = Memory.default) ~engine ~depth layer threads =
  match (engine : Engine.t).algo with
  | Engine.Dpor ->
    let prefixes, prunes =
      prefixes_with_prunes_live ?private_fuel ~independence ~reads ?jobs
        ~memory ~depth layer threads
    in
    prefixes, { Engine.no_walk_stats with Engine.sleep_prunes = prunes }
  | Engine.Optimal ->
    optimal_walk_live ?private_fuel ~independence ~reads
      ~dedup:engine.Engine.dedup ~sym:engine.Engine.sym ~memory ~depth layer
      threads
  | Engine.Exhaustive | Engine.Random ->
    invalid_arg
      ("Dpor.walk: not a DPOR-family engine: " ^ Engine.to_string engine)

let walk ?private_fuel ?(independence = Exact) ?(reads = default_reads) ?jobs
    ?cache ?(memory = Memory.default) ~engine ~depth layer threads =
  let body () =
    walk_live ?private_fuel ~independence ~reads ?jobs ~memory ~engine ~depth
      layer threads
  in
  match cache with
  | None -> body ()
  | Some c -> (
    let key =
      suite_key ?private_fuel ~engine ~independence ~reads ~memory ~depth
        layer threads
    in
    (* The stored shape is shared with [Explore]'s suite cache (one
       ["engine"] kind for every cacheable engine), so the scheduler-name
       tag rides along even though the dpor family's is constant. *)
    match Cache.find c ~kind:"engine" key with
    | Some ((_tag, prefixes, stats) : string * Event.tid list list * Engine.walk_stats)
      ->
      prefixes, stats
    | None ->
      let prefixes, stats = body () in
      Cache.store c ~kind:"engine" key ("dpor", prefixes, stats);
      (prefixes, stats))

let sched_of_prefix prefix =
  Sched.of_trace
    ~name:
      (Printf.sprintf "dpor:[%s]"
         (String.concat "," (List.map string_of_int prefix)))
    prefix

let pp_count fmt n =
  if n = max_int then Format.pp_print_string fmt ">max-int"
  else Format.pp_print_int fmt n

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<h>schedules: %d run / %a considered (%a pruned, %d sleep-set skips%t); %d distinct logs@]"
    s.schedules_run pp_count s.schedules_considered pp_count
    s.schedules_pruned s.sleep_set_prunes
    (fun fmt ->
      if s.dedup_hits > 0 then
        Format.fprintf fmt ", %d state-dedup hits" s.dedup_hits;
      if s.sym_prunes > 0 then
        Format.fprintf fmt ", %d symmetry prunes" s.sym_prunes)
    s.distinct_logs

(* ------------------------------------------------------------------ *)
(* unified-context entry points (DESIGN.md S27)                        *)
(* ------------------------------------------------------------------ *)

(* The DFS walk itself stays un-budgeted: it is depth-bounded and cheap
   relative to replay, and keeping it whole means an [Exhausted] explore
   still reports the complete schedule frontier — exactly what a resumed
   run needs.  Only the replay phase, which runs full games, charges the
   step budget. *)

(* The engine a context implies for the walk: the context's strategy
   when it is DPOR-family, otherwise the default sleep-set engine (a
   checker driving an [`Exhaustive]/[`Random] context never reaches the
   walk — [Explore] dispatches those to their own implementations). *)
let engine_of_ctx ctx =
  match (ctx.Ctx.strategy : Engine.t).algo with
  | Engine.Dpor | Engine.Optimal -> ctx.Ctx.strategy
  | Engine.Exhaustive | Engine.Random -> Engine.default

let walk_ctx ~ctx ?private_fuel ?independence ?reads ?engine ~depth layer
    threads =
  let engine =
    match engine with Some e -> e | None -> engine_of_ctx ctx
  in
  Ctx.arm ctx (fun () ->
      walk ?private_fuel ?independence ?reads ?jobs:(Ctx.jobs_opt ctx)
        ?cache:ctx.Ctx.cache ~memory:ctx.Ctx.memory ~engine ~depth layer
        threads)

let prefixes_ctx ~ctx ?private_fuel ?independence ?reads ?engine ~depth layer
    threads =
  fst
    (walk_ctx ~ctx ?private_fuel ?independence ?reads ?engine ~depth layer
       threads)

let schedules_ctx ~ctx ?private_fuel ?independence ?reads ?engine ~depth layer
    threads =
  List.map sched_of_prefix
    (prefixes_ctx ~ctx ?private_fuel ?independence ?reads ?engine ~depth layer
       threads)

let explore_ctx ~ctx ?max_steps ?private_fuel ?(independence = Exact) ?reads
    ?engine ~depth layer threads =
  Ctx.arm ctx @@ fun () ->
  let engine =
    match engine with Some e -> e | None -> engine_of_ctx ctx
  in
  let prefixes, walk_stats =
    Probe.span "dpor.prefixes" (fun () ->
        walk ?private_fuel ~independence ?reads ?jobs:(Ctx.jobs_opt ctx)
          ?cache:ctx.Ctx.cache ~memory:ctx.Ctx.memory ~engine ~depth layer
          threads)
  in
  let replay =
    Probe.span "dpor.replay" (fun () ->
        Parallel.budgeted_scan ?jobs:(Ctx.jobs_opt ctx) ~token:ctx.Ctx.token
          ~cost:(fun o -> o.Game.steps)
          ~interrupted:(fun o -> o.Game.status = Game.Cancelled)
          ~cut:(fun _ -> false)
          (fun ~stop p ->
            Game.replay
              (Game.config ?max_steps ?stop ~memory:ctx.Ctx.memory layer
                 threads (sched_of_prefix p)))
          prefixes)
  in
  let outcomes = replay.Parallel.prefix in
  let logs = List.map (fun o -> o.Game.log) outcomes in
  let representative =
    match independence with
    | Exact -> logs
    | Commuting_events -> List.map (canonical_log ?reads) logs
  in
  let schedules_considered = pow (List.length threads) depth in
  let distinct_logs =
    Probe.span "dpor.dedup" (fun () -> List.length (Log.dedup representative))
  in
  Probe.add Probe.sleep_set_prunes walk_stats.Engine.sleep_prunes;
  Probe.add Probe.logs_distinct distinct_logs;
  let result =
    {
      prefixes;
      outcomes;
      stats =
        {
          schedules_considered;
          schedules_run = replay.Parallel.scanned;
          schedules_pruned =
            max 0 (schedules_considered - List.length prefixes);
          sleep_set_prunes = walk_stats.Engine.sleep_prunes;
          dedup_hits = walk_stats.Engine.dedup_hits;
          sym_prunes = walk_stats.Engine.sym_prunes;
          distinct_logs;
        };
    }
  in
  if replay.Parallel.ran_out then
    Budget.Exhausted { spent = Budget.spent ctx.Ctx.token; partial = result }
  else Budget.Complete result

(* ------------------------------------------------------------------ *)
(* Registered engine implementations                                   *)
(* ------------------------------------------------------------------ *)

(* The two DPOR-family implementations behind the [Explore] registry.
   They run the live walks; [Explore.scheds_of_strategy_ctx] layers the
   suite cache on top with {!suite_key} so every cacheable engine shares
   one keying scheme. *)

module Sleep_impl : Engine.IMPL = struct
  let algo = Engine.Dpor
  let cacheable = true

  let suite ~engine ~jobs ~memory ?private_fuel layer threads =
    let prefixes, stats =
      walk_live ?private_fuel ~jobs ~memory ~engine ~depth:engine.Engine.depth
        layer threads
    in
    Engine.Prefixes { tag = "dpor"; prefixes; stats }
end

module Optimal_impl : Engine.IMPL = struct
  let algo = Engine.Optimal
  let cacheable = true

  let suite ~engine ~jobs ~memory ?private_fuel layer threads =
    let prefixes, stats =
      walk_live ?private_fuel ~jobs ~memory ~engine ~depth:engine.Engine.depth
        layer threads
    in
    Engine.Prefixes { tag = "dpor"; prefixes; stats }
end
