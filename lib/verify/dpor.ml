open Ccal_core

type independence = Exact | Commuting_events

type stats = {
  schedules_considered : int;
  schedules_run : int;
  schedules_pruned : int;
  sleep_set_prunes : int;
  distinct_logs : int;
}

type result = {
  prefixes : Event.tid list list;
  outcomes : Game.outcome list;
  stats : stats;
}

let default_reads = [ "get_n"; "aload"; "read" ]

(* The object an event touches: by convention every shared primitive of the
   concrete objects takes the object identifier (lock, cell, location,
   channel…) as its first integer argument.  Events without one (e.g.
   [switch]) are conservatively dependent on everything. *)
let obj (e : Event.t) =
  match e.args with Value.Vint b :: _ -> Some b | _ -> None

let independent_events ?(reads = default_reads) (e1 : Event.t) (e2 : Event.t) =
  e1.src <> e2.src
  &&
  match obj e1, obj e2 with
  | Some a, Some b when a <> b -> true
  | Some _, Some _ -> List.mem e1.tag reads && List.mem e2.tag reads
  | _ -> false

(* Canonical representative of a Mazurkiewicz trace: repeatedly emit the
   [Event.compare]-least event among those with no earlier dependent event.
   Two logs are equivalent up to commuting independent events iff their
   canonical forms are equal. *)
let canonical_events indep events =
  let rec minimal_candidates rev_prefix = function
    | [] -> []
    | e :: rest ->
      let minimal = List.for_all (fun p -> indep p e) rev_prefix in
      let here =
        if minimal then [ e, List.rev_append rev_prefix rest ] else []
      in
      here @ minimal_candidates (e :: rev_prefix) rest
  in
  let rec build acc evs =
    match evs with
    | [] -> List.rev acc
    | first :: _ -> (
      match minimal_candidates [] evs with
      | [] -> List.rev_append acc [ first ] (* unreachable: the head is minimal *)
      | c :: cs ->
        let e, rest =
          List.fold_left
            (fun (be, br) (e, r) ->
              if Event.compare e be < 0 then e, r else be, br)
            c cs
        in
        build (e :: acc) rest)
  in
  build [] events

let canonical_log ?reads log =
  Log.append_all
    (canonical_events (independent_events ?reads) (Log.chronological log))
    Log.empty

(* One enabled move of one thread, as classified by the DFS. *)
type move =
  | Fin  (** the thread runs to completion without emitting events *)
  | Step of Event.t list * Machine.thread_state
  | Halt  (** picking this thread ends the run stuck — a leaf *)

let independent_moves independence reads m1 m2 =
  match m1, m2 with
  | Fin, _ | _, Fin -> true
  | Halt, _ | _, Halt -> false
  | Step (es1, _), Step (es2, _) -> (
    match independence with
    | Exact -> false
    | Commuting_events ->
      List.for_all
        (fun e1 -> List.for_all (independent_events ~reads e1) es2)
        es1)

let rec pow b n = if n <= 0 then 1 else b * pow b (n - 1)

(* A DFS node.  Thread states are immutable, so this is a complete,
   self-contained description of a subtree root: a child's sleep set
   depends only on its parent's sleep set and its earlier siblings' moves,
   both known before descending, which is what makes subtrees independent
   and the frontier-parallel walk below possible. *)
type node = {
  slots : (Event.tid * Machine.thread_state) list;
  log : Log.t;
  step : int;
  rev_prefix : Event.tid list;
  sleep : (Event.tid * move) list;
}

(* The frontier of a partially-expanded DFS, in pre-order: leaves already
   pinned interleave with unexpanded subtree roots. *)
type fringe_item = Leaf of Event.tid list | Subtree of node

(* Sleep-set DFS over the enabled moves of the whole-machine game, bounded
   to [depth] scheduling choices.  Each surviving branch records its
   choice prefix, later replayed through [Game.run] so leaf outcomes are
   bit-identical to the exhaustive oracle's.

   With [jobs > 1] the root is expanded level-synchronously until the
   frontier holds enough subtrees to feed the pool; subtrees then run
   sequential DFS on separate domains and their results are concatenated
   in fringe order.  Pre-order is preserved at every stage, so the prefix
   list (and the prune count, a sum) is identical for every jobs count. *)
(* Cache key of a DPOR walk: the game identity plus every knob that
   shapes the DFS.  The walk has no failure mode (a stuck leaf is just a
   short prefix), so unlike verdicts its result is stored
   unconditionally; the replay phase always runs live. *)
let walk_key ?private_fuel ~independence ~reads ~memory ~depth layer threads =
  let st = Fingerprint.string Fingerprint.empty "dpor" in
  let st = Fingerprint.layer st layer in
  let st = Fingerprint.memory st memory in
  let st =
    Fingerprint.list
      (fun st (i, p) -> Fingerprint.prog (Fingerprint.int st i) p)
      st threads
  in
  let st = Fingerprint.int st depth in
  let st =
    Fingerprint.int st (match independence with Exact -> 1 | Commuting_events -> 2)
  in
  let st = Fingerprint.list Fingerprint.string st reads in
  Fingerprint.finish (Fingerprint.option Fingerprint.int st private_fuel)

let prefixes_with_prunes_live ?private_fuel ?(independence = Exact)
    ?(reads = default_reads) ?jobs ?(memory = Memory.default) ~depth layer
    threads =
  (* Pseudo-threads (TSO flushers, the crash thread of a crash-enabled
     layer) are part of the schedule space: the DFS explores their moves
     like any other thread's.  [Game.config] re-adds the same
     pseudo-threads internally, so the original [threads] go to replay
     untouched. *)
  let threads = threads @ Game.pseudo_threads ~memory layer threads in
  let classify slots log =
    List.filter_map
      (fun (i, st) ->
        match Machine.step_move ?private_fuel layer i st log with
        | Machine.Blocked_at _ -> None
        | Machine.Finished _ -> Some (i, Fin)
        | Machine.Moved (evs, st') -> Some (i, Step (evs, st'))
        | Machine.Stuck _ -> Some (i, Halt))
      slots
  in
  let apply slots log i = function
    | Step (evs, st') ->
      ( List.map (fun (j, st) -> if j = i then j, st' else j, st) slots,
        Log.append_all evs log )
    | Fin -> List.filter (fun (j, _) -> j <> i) slots, log
    | Halt -> slots, log
  in
  (* One level of expansion: the node's children (and immediate leaves) in
     sibling order, plus the sleep-set prunes taken at this node. *)
  let expand n =
    if n.step >= depth || n.slots = [] then [ Leaf (List.rev n.rev_prefix) ], 0
    else
      match classify n.slots n.log with
      | [] -> [ Leaf (List.rev n.rev_prefix) ], 0 (* deadlock: all blocked *)
      | enabled ->
        let prunes = ref 0 in
        let explored = ref [] in
        let items = ref [] in
        List.iter
          (fun (i, m) ->
            if List.exists (fun (j, _) -> j = i) n.sleep then incr prunes
            else (
              (match m with
              | Halt -> items := Leaf (List.rev (i :: n.rev_prefix)) :: !items
              | Fin | Step _ ->
                let sleep' =
                  List.filter
                    (fun (_, m') -> independent_moves independence reads m' m)
                    (n.sleep @ List.rev !explored)
                in
                let slots', log' = apply n.slots n.log i m in
                items :=
                  Subtree
                    {
                      slots = slots';
                      log = log';
                      step = n.step + 1;
                      rev_prefix = i :: n.rev_prefix;
                      sleep = sleep';
                    }
                  :: !items);
              explored := (i, m) :: !explored))
          enabled;
        List.rev !items, !prunes
  in
  (* Sequential DFS of a whole subtree, expressed through [expand] so both
     engines walk literally the same transition code. *)
  let dfs_from root =
    let recorded = ref [] in
    let prunes = ref 0 in
    let rec go n =
      let items, p = expand n in
      prunes := !prunes + p;
      List.iter
        (function
          | Leaf prefix -> recorded := prefix :: !recorded
          | Subtree n' -> go n')
        items
    in
    go root;
    List.rev !recorded, !prunes
  in
  let root =
    {
      slots = List.map (fun (i, p) -> i, Machine.initial layer i p) threads;
      log = Log.empty;
      step = 0;
      rev_prefix = [];
      sleep = [];
    }
  in
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  if jobs <= 1 then dfs_from root
  else begin
    (* Grow the frontier breadth-first until it can feed the pool.  Each
       round replaces every subtree root by its expansion, in place, so
       fringe order stays pre-order.

       The split depth is calibrated, not fixed: each round descends one
       level, and growth stops at the shallowest depth whose frontier
       holds [jobs * 8] subtrees — enough outstanding subtrees that an
       uneven one (sleep sets prune subtrees very unevenly) can be
       absorbed by work stealing, while keeping each subtree a full
       domain-local DFS: sleep sets never cross a domain boundary, and
       no two domains ever touch the same prefix. *)
    let target = jobs * 8 in
    let count_subtrees fringe =
      List.length
        (List.filter (function Subtree _ -> true | Leaf _ -> false) fringe)
    in
    let rec grow fringe prunes rounds =
      let subtrees = count_subtrees fringe in
      if subtrees = 0 || subtrees >= target || rounds <= 0 then fringe, prunes
      else
        let prunes = ref prunes in
        let fringe' =
          List.concat_map
            (function
              | Leaf _ as l -> [ l ]
              | Subtree n ->
                let items, p = expand n in
                prunes := !prunes + p;
                items)
            fringe
        in
        grow fringe' !prunes (rounds - 1)
    in
    let fringe, grow_prunes = grow [ Subtree root ] 0 (depth + 1) in
    let parts =
      Parallel.map ~jobs
        (function Leaf p -> [ p ], 0 | Subtree n -> dfs_from n)
        fringe
    in
    ( List.concat_map fst parts,
      List.fold_left (fun acc (_, p) -> acc + p) grow_prunes parts )
  end

let prefixes_with_prunes ?private_fuel ?(independence = Exact)
    ?(reads = default_reads) ?jobs ?cache ?(memory = Memory.default) ~depth
    layer threads =
  let body () =
    prefixes_with_prunes_live ?private_fuel ~independence ~reads ?jobs ~memory
      ~depth layer threads
  in
  match cache with
  | None -> body ()
  | Some c -> (
    let key =
      walk_key ?private_fuel ~independence ~reads ~memory ~depth layer threads
    in
    match Cache.find c ~kind:"dpor" key with
    | Some (r : Event.tid list list * int) -> r
    | None ->
      let r = body () in
      Cache.store c ~kind:"dpor" key r;
      r)

let prefixes ?private_fuel ?independence ?reads ?jobs ?cache ?memory ~depth
    layer threads =
  fst
    (prefixes_with_prunes ?private_fuel ?independence ?reads ?jobs ?cache
       ?memory ~depth layer threads)

let sched_of_prefix prefix =
  Sched.of_trace
    ~name:
      (Printf.sprintf "dpor:[%s]"
         (String.concat "," (List.map string_of_int prefix)))
    prefix

let schedules ?private_fuel ?independence ?reads ?jobs ?cache ?memory ~depth
    layer threads =
  List.map sched_of_prefix
    (prefixes ?private_fuel ?independence ?reads ?jobs ?cache ?memory ~depth
       layer threads)

let explore ?max_steps ?private_fuel ?(independence = Exact) ?reads ?jobs
    ?cache ?(memory = Memory.default) ~depth layer threads =
  let prefixes, sleep_set_prunes =
    Probe.span "dpor.prefixes" (fun () ->
        prefixes_with_prunes ?private_fuel ~independence ?reads ?jobs ?cache
          ~memory ~depth layer threads)
  in
  let outcomes =
    Probe.span "dpor.replay" (fun () ->
        Parallel.map ?jobs
          (fun p ->
            Game.replay
              (Game.config ?max_steps ~memory layer threads
                 (sched_of_prefix p)))
          prefixes)
  in
  let logs = List.map (fun o -> o.Game.log) outcomes in
  let representative =
    match independence with
    | Exact -> logs
    | Commuting_events -> List.map (canonical_log ?reads) logs
  in
  let schedules_considered = pow (List.length threads) depth in
  let schedules_run = List.length prefixes in
  let distinct_logs =
    Probe.span "dpor.dedup" (fun () -> List.length (Log.dedup representative))
  in
  Probe.add Probe.sleep_set_prunes sleep_set_prunes;
  Probe.add Probe.logs_distinct distinct_logs;
  {
    prefixes;
    outcomes;
    stats =
      {
        schedules_considered;
        schedules_run;
        schedules_pruned = max 0 (schedules_considered - schedules_run);
        sleep_set_prunes;
        distinct_logs;
      };
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<h>schedules: %d run / %d considered (%d pruned, %d sleep-set skips); %d distinct logs@]"
    s.schedules_run s.schedules_considered s.schedules_pruned
    s.sleep_set_prunes s.distinct_logs

(* ------------------------------------------------------------------ *)
(* unified-context entry points (DESIGN.md S27)                        *)
(* ------------------------------------------------------------------ *)

(* The DFS walk itself stays un-budgeted: it is depth-bounded and cheap
   relative to replay, and keeping it whole means an [Exhausted] explore
   still reports the complete schedule frontier — exactly what a resumed
   run needs.  Only the replay phase, which runs full games, charges the
   step budget. *)

let prefixes_with_prunes_ctx ~ctx ?private_fuel ?independence ?reads ~depth
    layer threads =
  Ctx.arm ctx (fun () ->
      prefixes_with_prunes ?private_fuel ?independence ?reads
        ?jobs:(Ctx.jobs_opt ctx) ?cache:ctx.Ctx.cache ~memory:ctx.Ctx.memory
        ~depth layer threads)

let prefixes_ctx ~ctx ?private_fuel ?independence ?reads ~depth layer threads =
  fst
    (prefixes_with_prunes_ctx ~ctx ?private_fuel ?independence ?reads ~depth
       layer threads)

let schedules_ctx ~ctx ?private_fuel ?independence ?reads ~depth layer threads =
  List.map sched_of_prefix
    (prefixes_ctx ~ctx ?private_fuel ?independence ?reads ~depth layer threads)

let explore_ctx ~ctx ?max_steps ?private_fuel ?(independence = Exact) ?reads
    ~depth layer threads =
  Ctx.arm ctx @@ fun () ->
  let prefixes, sleep_set_prunes =
    Probe.span "dpor.prefixes" (fun () ->
        prefixes_with_prunes ?private_fuel ~independence ?reads
          ?jobs:(Ctx.jobs_opt ctx) ?cache:ctx.Ctx.cache ~memory:ctx.Ctx.memory
          ~depth layer threads)
  in
  let replay =
    Probe.span "dpor.replay" (fun () ->
        Parallel.budgeted_scan ?jobs:(Ctx.jobs_opt ctx) ~token:ctx.Ctx.token
          ~cost:(fun o -> o.Game.steps)
          ~interrupted:(fun o -> o.Game.status = Game.Cancelled)
          ~cut:(fun _ -> false)
          (fun ~stop p ->
            Game.replay
              (Game.config ?max_steps ?stop ~memory:ctx.Ctx.memory layer
                 threads (sched_of_prefix p)))
          prefixes)
  in
  let outcomes = replay.Parallel.prefix in
  let logs = List.map (fun o -> o.Game.log) outcomes in
  let representative =
    match independence with
    | Exact -> logs
    | Commuting_events -> List.map (canonical_log ?reads) logs
  in
  let schedules_considered = pow (List.length threads) depth in
  let distinct_logs =
    Probe.span "dpor.dedup" (fun () -> List.length (Log.dedup representative))
  in
  Probe.add Probe.sleep_set_prunes sleep_set_prunes;
  Probe.add Probe.logs_distinct distinct_logs;
  let result =
    {
      prefixes;
      outcomes;
      stats =
        {
          schedules_considered;
          schedules_run = replay.Parallel.scanned;
          schedules_pruned =
            max 0 (schedules_considered - List.length prefixes);
          sleep_set_prunes;
          distinct_logs;
        };
    }
  in
  if replay.Parallel.ran_out then
    Budget.Exhausted { spent = Budget.spent ctx.Ctx.token; partial = result }
  else Budget.Complete result
