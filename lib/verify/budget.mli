(** Resource budgets and cooperative cancellation.

    A {!t} bounds a verification run along up to three dimensions —
    wall-clock milliseconds, game steps, live heap words.  {!start}
    turns the spec into a runtime {!token} (deadline epoch = the call);
    checkers poll the token at schedule granularity and return
    {!Exhausted} with a resumable partial result instead of hanging.

    Only step budgets are deterministic: a budgeted scan gives each
    schedule a private allowance captured at scan entry and re-truncates
    the merged prefix sequentially, so the counted schedule set is
    jobs-independent (DESIGN.md S27).  Deadline / cancellation are
    wall-clock events; they shrink the prefix but never change a
    completed verdict. *)

type t = {
  ms : float option;  (** wall-clock deadline, ms from {!start} *)
  steps : int option;  (** total game-move budget *)
  words : int option;  (** live-heap high-water mark, words *)
}

val unlimited : t
val is_unlimited : t -> bool

val make : ?ms:float -> ?steps:int -> ?words:int -> unit -> t
(** Negative values are clamped to zero (instantly exhausted). *)

val pp : Format.formatter -> t -> unit

(** {1 Outcomes} *)

type spent = {
  elapsed_ms : float;
  steps_used : int;
  reason : [ `Deadline | `Steps | `Memory | `Cancelled ];
}

val pp_spent : Format.formatter -> spent -> unit
val pp_reason :
  Format.formatter -> [ `Deadline | `Steps | `Memory | `Cancelled ] -> unit

(** The budgeted-result shape shared by the checkers: either the full
    verdict, or what was established before the budget ran out. *)
type 'a outcome = Complete of 'a | Exhausted of { spent : spent; partial : 'a }

val value : 'a outcome -> 'a
val is_complete : 'a outcome -> bool
val map : ('a -> 'b) -> 'a outcome -> 'b outcome

(** {1 Tokens} *)

type token

val start : t -> token
(** Start the clock: the deadline epoch is this call. *)

val no_token : token
(** A shared unlimited token — the default on [Ctx.default]; polling it
    is two atomic reads and it never trips. *)

val is_unlimited_token : token -> bool

val cancel : token -> unit
(** Explicit cooperative cancellation; every poller sees it at its next
    check.  Idempotent. *)

val cancelled : token -> bool

val poll : token -> bool
(** True once any budget dimension is exhausted (or {!cancel} was
    called).  Cheap enough for schedule granularity. *)

val poll_wall : token -> bool
(** Like {!poll} but ignoring the shared step counter: cancellation,
    deadline and memory only.  Used inside games, where shared-step
    exhaustion would be jobs-dependent. *)

val exhausted : token -> bool
(** Alias of {!poll}. *)

val charge : token -> int -> unit
(** Add [n] game steps to the shared counter (heuristic early-stop;
    the deterministic accounting happens via {!settle}). *)

val steps_used : token -> int

val steps_remaining : token -> int
(** Remaining step allowance ([max_int] when unbounded) — captured once
    at scan entry to derive each schedule's private allowance. *)

val settle : token -> int -> unit
(** Overwrite the shared step counter with the deterministic total
    computed by a budgeted scan's merge pass, so {!spent} and the next
    scan's entry allowance are jobs-identical. *)

val note_ran_out : token -> unit
(** Called by a budgeted scan when it truncates its prefix: records
    [`Steps] as the trip reason unless a wall-clock dimension already
    tripped (the deterministic truncation never polls the token, so the
    reason would otherwise be lost).  First trip wins. *)

val spent : token -> spent
(** Snapshot for an [Exhausted] report; bumps the [budget.exhaustions]
    probe counter. *)

val game_stop : token -> allowance:int -> (unit -> bool) option
(** Stop closure for [Game.config ?stop]: trips when the game exceeds
    its private step [allowance], and polls the shared token every 256
    moves.  [None] when both are unlimited. *)
