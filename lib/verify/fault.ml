(* Deterministic fault injection for the verification service.

   The ROADMAP north-star is a checker that runs unattended against
   adversarial inputs; this module injects the faults such a deployment
   meets — worker crashes, cache-file corruption, clock skew, oversized
   on-disk artifacts — from a seeded plan, so every injection point fires
   (or not) as a pure function of the plan and the site.  The contract,
   pinned by test/test_robust.ml, is that verdicts are bit-identical with
   and without an armed plan on every jobs count: crashes are absorbed by
   the pool's requeue path, corrupt cache entries degrade to misses, skew
   only moves timings, oversize only moves disk bytes.

   The active plan is process-global (like the telemetry switch) so the
   leaf modules — [Cache.store], the claim loop of [Parallel],
   [Verify_clock.now_ns] — can consult it without threading a context
   through every call; checkers arm the plan carried by their [Ctx] for
   the duration of one verification. *)

type plan = {
  seed : int;
  crash : float;  (** per (job index, attempt) worker-crash probability *)
  corrupt : float;  (** per cache store, corrupt the written entry *)
  skew : float;  (** per clock read, advance a monotonic skew offset *)
  oversize : float;  (** per cache store, pad the entry with junk *)
}

let none = { seed = 0; crash = 0.; corrupt = 0.; skew = 0.; oversize = 0. }
let is_none p = p.crash = 0. && p.corrupt = 0. && p.skew = 0. && p.oversize = 0.

let make ?(seed = 1) ?(crash = 0.) ?(corrupt = 0.) ?(skew = 0.)
    ?(oversize = 0.) () =
  let clamp r = if r < 0. then 0. else if r > 1. then 1. else r in
  {
    seed;
    crash = clamp crash;
    corrupt = clamp corrupt;
    skew = clamp skew;
    oversize = clamp oversize;
  }

(* --inject SPEC: comma-separated kind:rate pairs plus an optional
   seed:N, e.g. "crash:0.1,corrupt-cache:0.05,skew:0.2,oversize:0.01". *)
let parse s =
  let ( let* ) = Result.bind in
  let item acc field =
    match String.split_on_char ':' (String.trim field) with
    | [ "" ] -> Ok acc
    | [ "seed"; n ] -> (
      match int_of_string_opt n with
      | Some seed -> Ok { acc with seed }
      | None -> Error (Printf.sprintf "bad seed %S" n))
    | [ kind; r ] -> (
      match float_of_string_opt r with
      | Some rate when rate >= 0. && rate <= 1. -> (
        match kind with
        | "crash" -> Ok { acc with crash = rate }
        | "corrupt-cache" -> Ok { acc with corrupt = rate }
        | "skew" -> Ok { acc with skew = rate }
        | "oversize" -> Ok { acc with oversize = rate }
        | _ ->
          Error
            (Printf.sprintf
               "unknown fault kind %S (expected crash, corrupt-cache, skew \
                or oversize)"
               kind))
      | Some _ | None ->
        Error (Printf.sprintf "bad rate %S (expected a float in [0,1])" r))
    | _ -> Error (Printf.sprintf "bad fault %S (expected KIND:RATE)" field)
  in
  List.fold_left
    (fun acc field ->
      let* acc = acc in
      item acc field)
    (Ok { none with seed = 1 })
    (String.split_on_char ',' s)

let pp fmt p =
  if is_none p then Format.pp_print_string fmt "none"
  else begin
    let field name r rest =
      if r > 0. then Printf.sprintf "%s:%g" name r :: rest else rest
    in
    Format.fprintf fmt "%s,seed:%d"
      (String.concat ","
         (field "crash" p.crash
            (field "corrupt-cache" p.corrupt
               (field "skew" p.skew (field "oversize" p.oversize [])))))
      p.seed
  end

(* ------------------------------------------------------------------ *)
(* the armed plan                                                      *)
(* ------------------------------------------------------------------ *)

let armed_plan = Atomic.make none

let with_plan p f =
  if is_none p then f ()
  else begin
    let saved = Atomic.get armed_plan in
    Atomic.set armed_plan p;
    Fun.protect ~finally:(fun () -> Atomic.set armed_plan saved) f
  end

let armed () = not (is_none (Atomic.get armed_plan))

(* ------------------------------------------------------------------ *)
(* seeded decisions                                                    *)
(* ------------------------------------------------------------------ *)

(* splitmix64 finalizer (Int64 arithmetic — the constants exceed OCaml's
   63-bit native int); decisions are a pure function of (seed, site),
   never of time or domain identity. *)
let mix x =
  let open Int64 in
  let x = mul (of_int x) 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  to_int (logand (logxor x (shift_right_logical x 31)) 0x3FFFFFFFFFFFFFFFL)

let unit_float h = float_of_int (h land 0x3FFFFFFF) /. 1073741824.0

let decide rate site =
  rate > 0.
  &&
  let p = Atomic.get armed_plan in
  unit_float (mix (mix (p.seed + site) + 0x5bd1)) < rate

let hash_string s =
  let h = ref 0 in
  String.iter (fun c -> h := mix ((!h * 131) + Char.code c)) s;
  !h

(* injection statistics: plain session counters, deliberately NOT Probe
   counters — which faults actually fire on speculated pool indices is
   execution-dependent, and the telemetry table must stay
   jobs-deterministic. *)
type stats = {
  crashes : int;
  corruptions : int;
  oversized : int;
  skew_jumps : int;
}

let crashes_c = Atomic.make 0
let corruptions_c = Atomic.make 0
let oversized_c = Atomic.make 0
let skew_jumps_c = Atomic.make 0

let stats () =
  {
    crashes = Atomic.get crashes_c;
    corruptions = Atomic.get corruptions_c;
    oversized = Atomic.get oversized_c;
    skew_jumps = Atomic.get skew_jumps_c;
  }

let reset_stats () =
  Atomic.set crashes_c 0;
  Atomic.set corruptions_c 0;
  Atomic.set oversized_c 0;
  Atomic.set skew_jumps_c 0

(* ------------------------------------------------------------------ *)
(* decision points                                                     *)
(* ------------------------------------------------------------------ *)

(* After [max_attempts] consecutive crashes an index runs uninjected, so
   requeueing always terminates even at crash rates near 1. *)
let max_attempts = 8

let crash ~index ~attempt =
  let p = Atomic.get armed_plan in
  attempt < max_attempts
  && p.crash > 0.
  && decide p.crash (mix ((index * 8191) + attempt) lxor 0x1)
  && (Atomic.incr crashes_c;
      true)

let corrupt_store ~key =
  let p = Atomic.get armed_plan in
  p.corrupt > 0.
  && decide p.corrupt (hash_string key lxor 0x2)
  && (Atomic.incr corruptions_c;
      true)

let oversize_store ~key =
  let p = Atomic.get armed_plan in
  p.oversize > 0.
  && decide p.oversize (hash_string key lxor 0x4)
  && (Atomic.incr oversized_c;
      true)

(* Clock skew: a monotone offset added to [Verify_clock.now_ns].  Each
   armed read rolls the per-call counter; a [skew]-fraction of reads
   advances the offset by a seeded jump of up to ~2ms.  The offset only
   grows, so skewed time is still monotonic — the fault moves every
   timing and deadline, never a verdict. *)
let skew_offset = Atomic.make 0L
let skew_calls = Atomic.make 0

let skew_ns () =
  let p = Atomic.get armed_plan in
  if p.skew = 0. then 0L
  else begin
    let call = Atomic.fetch_and_add skew_calls 1 in
    if decide p.skew (mix call lxor 0x8) then begin
      Atomic.incr skew_jumps_c;
      let jump = Int64.of_int (mix (call lxor p.seed) land 0x1FFFFF) in
      let rec bump () =
        let cur = Atomic.get skew_offset in
        if not (Atomic.compare_and_set skew_offset cur (Int64.add cur jump))
        then bump ()
      in
      bump ()
    end;
    Atomic.get skew_offset
  end

(* Corruption payloads for [Cache.store]. *)

let corrupt_payload s =
  (* Truncate to half: the magic header may survive, but the marshaled
     value cannot deserialize, so a later [find] deletes-as-miss. *)
  String.sub s 0 (String.length s / 2)

let oversize_payload s =
  (* Trailing junk after the marshaled value: [Marshal.from_string] stops
     at its own length header, so the entry still deserializes — only the
     on-disk footprint balloons. *)
  s ^ String.make 65536 '\xAA'
