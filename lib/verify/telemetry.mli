(** Verification telemetry (DESIGN.md S25).

    The facade the CLI, bench and tests use: the full instrumentation
    API of {!Ccal_core.Probe} (counters, spans, capture) re-exported,
    plus the two exporters behind the [--stats] and [--trace] flags.

    Typical session:
    {[
      Telemetry.enable ();
      ... run checkers ...
      Format.printf "%a" Telemetry.pp_stats ();
      Telemetry.write_chrome_trace "trace.json"
    ]}

    Counters are deterministic across [?jobs] counts (DESIGN.md S24
    extends to telemetry: the parallel executor captures per-job deltas
    and commits exactly the sequential prefix).  Spans carry wall-clock
    and vary run to run; they are for profiling, not for certificates. *)

include module type of Ccal_core.Probe
(** @inline *)

(** {1 Stats table} *)

type span_stat = {
  sname : string;
  calls : int;
  total_ms : float;
  max_ms : float;
  domains : int;  (** distinct domains that recorded this span *)
}

val span_stats : unit -> span_stat list
(** Per-name aggregates over {!spans}, sorted by total time descending. *)

val pp_stats : Format.formatter -> unit -> unit
(** The human-readable table: non-zero counters, span aggregates, and
    the cumulative {!Parallel.stats} when any pool ran. *)

val stats_string : unit -> string

(** {1 Chrome trace export} *)

val chrome_trace_string : unit -> string
(** The recorded spans as Trace Event Format JSON (one complete ["X"]
    event per span, microsecond timestamps relative to the earliest
    span, [tid] = recording domain, plus ["M"] metadata events naming
    each domain's track).  Loadable in [about:tracing] / Perfetto. *)

val write_chrome_trace : string -> unit
(** Write {!chrome_trace_string} to a file. *)
