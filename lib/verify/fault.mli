(** Deterministic fault injection for the verification service.

    A seeded {!plan} describes which faults to inject and at what rate;
    {!with_plan} arms it for the duration of one checker run.  Decision
    points ({!crash}, {!corrupt_store}, {!oversize_store}, {!skew_ns})
    are pure functions of the plan and the call site, never of wall
    clock or domain identity, so an injected run is reproducible.  The
    robustness contract — verdicts bit-identical with and without an
    armed plan, on every jobs count — is pinned by test/test_robust.ml. *)

type plan = {
  seed : int;
  crash : float;  (** per (pool index, attempt) worker-crash probability *)
  corrupt : float;  (** per cache store, corrupt the written entry *)
  skew : float;  (** per clock read, chance of advancing a skew offset *)
  oversize : float;  (** per cache store, pad the entry with junk *)
}

val none : plan
(** No faults; arming it is a no-op. *)

val is_none : plan -> bool

val make :
  ?seed:int ->
  ?crash:float ->
  ?corrupt:float ->
  ?skew:float ->
  ?oversize:float ->
  unit ->
  plan
(** Rates are clamped to [0,1]; [seed] defaults to 1. *)

val parse : string -> (plan, string) result
(** Parse a [--inject] spec: comma-separated [KIND:RATE] fields with
    kinds [crash], [corrupt-cache], [skew], [oversize], plus an optional
    [seed:N] — e.g. ["crash:0.1,corrupt-cache:0.05,seed:7"]. *)

val pp : Format.formatter -> plan -> unit

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] arms [p] process-wide while [f] runs, restoring the
    previously armed plan afterwards (exceptions included).  Arming
    {!none} is free. *)

val armed : unit -> bool
(** True while a non-{!none} plan is armed. *)

(** {1 Decision points}

    Called by the leaf modules; each returns whether the fault fires at
    this site under the armed plan, bumping the session {!stats}. *)

val crash : index:int -> attempt:int -> bool
(** Should the worker evaluating pool index [index] on its
    [attempt]-th try crash?  The pool requeues the chunk; the sequential
    path replays the same attempt chain inline, so final evaluations are
    identical across jobs counts. *)

val corrupt_store : key:string -> bool
val oversize_store : key:string -> bool

val skew_ns : unit -> int64
(** Monotone clock-skew offset to add to [Verify_clock.now_ns]; [0L]
    when no skew is armed.  The offset only grows, so skewed time is
    still monotonic. *)

val corrupt_payload : string -> string
(** Truncate a cache payload so it can no longer deserialize. *)

val oversize_payload : string -> string
(** Pad a cache payload with trailing junk the reader ignores. *)

(** {1 Session statistics} *)

type stats = {
  crashes : int;
  corruptions : int;
  oversized : int;
  skew_jumps : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit
