(** On-disk content-addressed certificate cache.

    Every verdict the checkers produce is a pure function of its inputs
    — layer interfaces, implementation, scheduler suite, engine
    configuration, fuel — so it can be memoized under a
    {!Ccal_core.Fingerprint} of those inputs (DESIGN "Certificate
    cache").  The store is one file per verdict, named
    [<kind>-<fingerprint>.v<format>] in a cache directory; payloads are
    [Marshal]ed OCaml values behind a magic header.

    Policies, enforced here and at the call sites:
    {ul
    {- {e Failures are never cached.}  Checkers only store successful
       verdicts, so a failing edge always re-runs live and reproduces
       its counterexample from the real game, never from disk.}
    {- {e Corruption is a miss.}  A truncated, bad-magic, or
       undeserializable entry is deleted and counted as an
       invalidation; the caller re-runs as if the entry never existed.}
    {- {e Writes are atomic.}  Entries are written to a temp file in
       the cache directory and [rename]d into place, so concurrent
       writers and crashes leave either the old entry or the new one,
       never a torn file.}
    {- {e [jobs] is never part of a key.}  Verdicts are bit-identical
       across jobs counts (DESIGN "Parallel checking"), so a cache
       populated under [-j 7] serves hits under [-j 1].}}

    Session counters are mirrored into the {!Ccal_core.Probe} counters
    [cache.hits] / [cache.misses] / [cache.invalidations], so
    [--stats]/[--trace] telemetry sees cache behaviour; the always-on
    copies in {!session_stats} feed [ccal cache stats] and the tests
    without requiring the telemetry switch. *)

open Ccal_core

type t
(** A handle on one cache directory, with session counters. *)

val default_dir : unit -> string
(** [$CCAL_CACHE_DIR] when set and non-empty; otherwise
    [$XDG_CACHE_HOME/ccal]; otherwise [$HOME/.cache/ccal]. *)

val create : ?dir:string -> unit -> t
(** Open (creating directories as needed) the store at [dir] (default
    {!default_dir}).  Raises [Sys_error] if the directory cannot be
    created or is not writable. *)

val dir : t -> string

val find : t -> kind:string -> Fingerprint.t -> 'a option
(** Look up the entry of that kind and key.  [kind] is a short static
    tag naming the payload type ("edge", "races", "refine", "dpor",
    "runall") — it is part of the filename, so a fingerprint collision
    across payload types cannot type-confuse [Marshal].  Absent entries
    count a miss; present entries count a hit; corrupt entries are
    deleted, count an invalidation {e and} a miss, and return [None]. *)

val invalidate : t -> kind:string -> Fingerprint.t -> unit
(** Drop the entry (if present) and count an invalidation.  Callers use
    this when an entry deserializes but fails an integrity check — e.g.
    a stored report whose recorded log hash no longer matches its
    logs. *)

val store : t -> kind:string -> Fingerprint.t -> 'a -> unit
(** Write the entry atomically (temp file + rename).  Best-effort: an
    unwritable directory drops the write silently — the cache never
    turns a passing verification into a failure. *)

type session = { hits : int; misses : int; invalidations : int; stores : int }

val session_stats : t -> session
(** Counters accumulated through this handle (always on, unlike the
    mirrored [Probe] counters which record only under telemetry). *)

type disk = { entries : int; bytes : int }

val disk_stats : t -> disk
(** Entry count and total size on disk (all format versions). *)

val clear : t -> int
(** Delete all cache entries; returns how many were removed. *)

val format_version : int
(** On-disk format version, part of both the magic header and the
    filename; bumping it (or {!Fingerprint.version}) orphans every
    existing entry. *)
