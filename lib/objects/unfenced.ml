open Ccal_core
module A = Ccal_machine.Atomic
module P = Ccal_machine.Pushpull
module T = Ccal_machine.Tso

(* Deliberately broken synchronisation: Dekker-style flag handshakes
   whose mutual exclusion depends on the store-to-load ordering that
   x86-TSO does NOT provide.  Both variants are store-buffering (SB)
   shaped on purpose — the one reordering TSO exhibits is store→load, so
   an SB core is the only honest way to break an algorithm with it
   (classic message passing, for instance, is TSO-correct: FIFO buffers
   preserve store→store).

   Under SC the flag protocol is exact mutual exclusion: whoever reads
   the peer's flag as 0 knows the peer has not yet stored, and program
   order makes its own store visible first — at most one thread enters.
   Under TSO both stores can sit in their buffers while both loads read
   0 from memory, so both threads pull the protected location: the
   push/pull replay detects the double pull as a data race, and the game
   reports [Stuck (_, Data_race, _)] — the named violation the negative
   tests pin. *)

type variant = Trylock | Handshake

let variant_name = function Trylock -> "trylock" | Handshake -> "handshake"

(* Cell map.  [Trylock] uses flag cells 11/12, [Handshake] a req/ack
   mailbox pair 21/22; both guard the same push/pull location. *)
let protected_loc = 5

let flags = function Trylock -> (11, 12) | Handshake -> (21, 22)

let store b v = Prog.call A.astore_tag [ Value.int b; Value.int v ]
let load b = Prog.call A.aload_tag [ Value.int b ]
let fence = Prog.call A.mfence_tag []

(* flag[mine] := 1; (mfence;) if flag[theirs] = 0 then enter the
   critical section through pull/push. *)
let side ~fenced ~mine ~theirs ~publish =
  Prog.seq (store mine 1)
    (let check =
       Prog.bind (load theirs) (fun r ->
           if Value.equal r (Value.int 0) then
             Prog.bind (Prog.call P.pull_tag [ Value.int protected_loc ])
               (fun _ ->
                 Prog.seq
                   (Prog.call P.push_tag
                      [ Value.int protected_loc; Value.int publish ])
                   Prog.ret_unit)
           else Prog.ret_unit)
     in
     if fenced then Prog.seq fence check else check)

let threads ?(fenced = false) variant =
  let a, b = flags variant in
  [ 1, side ~fenced ~mine:a ~theirs:b ~publish:1;
    2, side ~fenced ~mine:b ~theirs:a ~publish:2 ]

let layer memory = T.machine_layer memory

let variants = [ Trylock; Handshake ]
