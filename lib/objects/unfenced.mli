(** Deliberately unfenced mutual-exclusion variants — the negative
    controls of the memory-mode test matrix.

    Each variant is a Dekker-style flag handshake guarding a push/pull
    location: correct (race-free) under sequential consistency, broken
    under x86-TSO, where both stores can sit in their buffers while both
    loads read 0 — so both threads pull the location and the push/pull
    replay reports a data race.  Both variants are store-buffering
    shaped by construction: store→load is the only reordering TSO
    exhibits, so an SB core is the only honest way to break an algorithm
    with it (classic message passing is TSO-correct).

    With [~fenced:true] an [mfence] sits between the flag store and the
    peer-flag load; the fenced variants are race-free under both memory
    modes, pinning that the fence (not luck) restores exclusion. *)

open Ccal_core

type variant =
  | Trylock  (** flag cells 11/12 *)
  | Handshake  (** req/ack mailbox cells 21/22 *)

val variant_name : variant -> string
val variants : variant list

val protected_loc : int
(** The push/pull location both sides race for (5). *)

val threads : ?fenced:bool -> variant -> (Event.tid * Prog.t) list
(** The two racing threads (tids 1 and 2). *)

val layer : Memory.t -> Layer.t
(** The bare hardware layer of the mode ({!Ccal_machine.Tso.machine_layer}). *)
