(** The ticket lock — the paper's running example (Sec. 2, Fig. 10,
    Sec. 4.1).

    The lock keeps two "now serving"/"next ticket" counters whose state is
    replayed from the log by [Rticket] (counting [FAI_t] and [inc_n]
    events, Sec. 4.1).  The bottom interface [L0] extends the hardware
    layer [Lx86] with the three ticket primitives, implemented by x86
    atomic instructions; the C module [M1] (Fig. 10) implements [acq]/[rel]
    over it, with the lock-protected data accessed through the push/pull
    memory model: a successful acquire pulls the protected location, the
    release pushes it back.

    The module exports the full verification pipeline of Fig. 5:
    the C code, its compiled assembly, the simulation relation [R_ticket]
    erasing ticket traffic and renaming [pull]/[push] to [acq]/[rel], the
    certified-layer builder, and the low-level specification strategies
    [φ'_acq]/[φ'_rel] of Sec. 2. *)

open Ccal_core

val fai_tag : string
val get_n_tag : string
val inc_n_tag : string

type ticket_state = {
  next : int;  (** next ticket to hand out, [t] *)
  serving : int;  (** "now serving", [n] *)
}

val replay_ticket : int -> ticket_state Replay.t
(** [Rticket] for lock [b].  Counter values wrap at 2^32 as the [uint]
    fields of the C implementation do; mutual exclusion is unaffected as
    long as there are fewer than 2^32 CPUs (Sec. 4.1). *)

val l0 : ?memory:Memory.t -> unit -> Layer.t
(** [L0]: the hardware layer of the memory mode ([Lx86] under [Sc], the
    buffered [Ltso] under [Tso]) extended with [FAI_t]/[get_n]/[inc_n].
    The implementation issues no plain stores, so under TSO its buffers
    stay empty and the certificate carries over unchanged. *)

val overlay : ?bound:int -> unit -> Layer.t
(** [Llock]: the atomic lock interface this implementation certifies
    against (shared with the MCS lock). *)

val acq_fn : Ccal_clight.Csyntax.fn
(** Fig. 10's [acq]: fetch a ticket, spin on [get_n], pull the protected
    location; returns the protected value. *)

val rel_fn : Ccal_clight.Csyntax.fn
(** Fig. 10's [rel(b,v)]: push the protected value back, then [inc_n]. *)

val c_module : unit -> Prog.Module.t
(** [M1] as C semantics. *)

val asm_module : unit -> Prog.Module.t
(** [CompCertX(M1)]: the compiled assembly semantics. *)

val r_ticket : Sim_rel.t
(** Erase [FAI_t]/[get_n]/[inc_n], rename [pull ↦ acq] and [push ↦ rel]. *)

val phi_acq_low : Event.tid -> int -> Strategy.t
(** The automaton [φ'_acq[i]] of Sec. 2: [!i.FAI_t ↓t], then a [get_n]
    self-loop while the ticket is not served, then the pull. *)

val phi_rel_low : Event.tid -> int -> Value.t -> Strategy.t
(** [φ'_rel[i]]: push the value, then [inc_n]. *)

val prim_tests : ?locks:int list -> ?values:int list -> unit -> Calculus.prim_tests
(** Default argument vectors for the [Fun]-rule obligations. *)

val env_suite :
  ?memory:Memory.t ->
  ?locks:int list -> ?rivals:Event.tid list -> ?rounds:int list -> unit -> Calculus.env_suite
(** Environment suites whose participants run real acquire/release rounds
    of this very implementation over [L0] (so all environment events carry
    replay-consistent return values).  Under [Tso] every context is
    wrapped with {!Ccal_machine.Tso.with_drain}. *)

val certify :
  ?max_moves:int ->
  ?memory:Memory.t ->
  ?focus:Event.tid list ->
  ?use_asm:bool ->
  unit ->
  (Calculus.cert, Calculus.error) result
(** Build the certificate [L0[A] ⊢_{R_ticket} M1 : Llock[A]] via the [Fun]
    rule (C semantics by default, compiled assembly when [use_asm]).
    [?memory] certifies over the corresponding hardware machine; the
    relation composes {!Ccal_machine.Tso.drop_buffering} under [Tso]. *)
