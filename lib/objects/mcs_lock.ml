open Ccal_core
module C = Ccal_clight.Csyntax
module Cx = Ccal_compcertx.Compile
module A = Ccal_machine.Atomic
module P = Ccal_machine.Pushpull

(* MCS is the genuinely buffered object: its handoff protocol runs on
   plain [astore]/[aload] cells.  Under TSO the rely/guarantee release
   bound doubles, because [Rg.releases_within] ages held locks by every
   log event and the buffering machinery ([buf_store] + [commit] per
   store, plus the environment's drains) roughly doubles the event count
   of an acquire/release round. *)
let l0 ?(memory = Memory.default) () =
  let base = Ccal_machine.Tso.machine_layer memory in
  let bound = match memory with Memory.Sc -> 96 | Memory.Tso -> 192 in
  let cond =
    Rg.lock_condition ~bound ~acq_tag:P.pull_tag ~rel_tag:P.push_tag ()
  in
  Layer.make ~rely:cond ~guar:cond "L0_mcs" base.Layer.prims

let overlay ?bound () = Lock_intf.layer ?bound "Llock"

(* Cell addressing: tail(b) = b*1000, locked(b,j) = b*1000+100+j,
   next(b,j) = b*1000+200+j.  Expressed in C below. *)
let tail b = C.Binop (C.Mul, b, C.Const 1000)
let locked b j = C.Binop (C.Add, C.Binop (C.Add, tail b, C.Const 100), j)
let next_ b j = C.Binop (C.Add, C.Binop (C.Add, tail b, C.Const 200), j)

(*  int acq(int b) {
      me = cpuid();
      astore(next(b,me), 0);
      pred = xchg(tail(b), me);
      if (pred != 0) {
        astore(locked(b,me), 1);
        astore(next(b,pred), me);
        l = aload(locked(b,me));
        while (l == 1) { l = aload(locked(b,me)); }
      }
      return pull(b);
    } *)
let acq_fn =
  {
    C.name = "acq";
    params = [ "b" ];
    locals = [ "me"; "pred"; "l"; "v" ];
    body =
      C.seq
        [
          C.calla "me" "cpuid" [];
          C.call_ A.astore_tag [ next_ (C.v "b") (C.v "me"); C.i 0 ];
          C.calla "pred" A.xchg_tag [ tail (C.v "b"); C.v "me" ];
          C.if_
            C.(v "pred" <> i 0)
            (C.seq
               [
                 C.call_ A.astore_tag [ locked (C.v "b") (C.v "me"); C.i 1 ];
                 C.call_ A.astore_tag [ next_ (C.v "b") (C.v "pred"); C.v "me" ];
                 C.calla "l" A.aload_tag [ locked (C.v "b") (C.v "me") ];
                 C.while_
                   C.(v "l" = i 1)
                   (C.calla "l" A.aload_tag [ locked (C.v "b") (C.v "me") ]);
               ])
            C.Sskip;
          C.calla "v" P.pull_tag [ C.v "b" ];
          C.return (C.v "v");
        ];
  }

(*  void rel(int b, int v) {
      push(b, v);
      me = cpuid();
      nxt = aload(next(b,me));
      if (nxt == 0) {
        old = cas(tail(b), me, 0);
        if (old == me) { return; }
        nxt = aload(next(b,me));
        while (nxt == 0) { nxt = aload(next(b,me)); }
      }
      astore(locked(b,nxt), 0);
    } *)
let rel_fn =
  {
    C.name = "rel";
    params = [ "b"; "v" ];
    locals = [ "me"; "nxt"; "old" ];
    body =
      C.seq
        [
          C.call_ P.push_tag [ C.v "b"; C.v "v" ];
          C.calla "me" "cpuid" [];
          C.calla "nxt" A.aload_tag [ next_ (C.v "b") (C.v "me") ];
          C.if_
            C.(v "nxt" = i 0)
            (C.seq
               [
                 C.calla "old" A.cas_tag [ tail (C.v "b"); C.v "me"; C.i 0 ];
                 C.if_ C.(v "old" = v "me") C.return_unit
                   (C.seq
                      [
                        C.calla "nxt" A.aload_tag [ next_ (C.v "b") (C.v "me") ];
                        C.while_
                          C.(v "nxt" = i 0)
                          (C.calla "nxt" A.aload_tag [ next_ (C.v "b") (C.v "me") ]);
                        C.call_ A.astore_tag [ locked (C.v "b") (C.v "nxt"); C.i 0 ];
                        C.return_unit;
                      ]);
               ])
            (C.seq
               [
                 C.call_ A.astore_tag [ locked (C.v "b") (C.v "nxt"); C.i 0 ];
                 C.return_unit;
               ]);
          C.return_unit;
        ];
  }

let fns = [ acq_fn; rel_fn ]

let c_module () = Ccal_clight.Csem.module_of_fns fns
let asm_module () = Cx.compile_module fns

let r_mcs =
  Sim_rel.of_table "R_mcs"
    [
      A.xchg_tag, `Drop;
      A.cas_tag, `Drop;
      A.aload_tag, `Drop;
      A.astore_tag, `Drop;
      A.faa_tag, `Drop;
      P.pull_tag, `To Lock_intf.acq_tag;
      P.push_tag, `To Lock_intf.rel_tag;
    ]

let prim_tests ?(locks = [ 0 ]) ?(values = [ 7 ]) () : Calculus.prim_tests =
  let acq_cases =
    List.concat_map
      (fun b ->
        Calculus.case [ Value.int b ]
        :: List.map
             (fun v ->
               Calculus.case
                 ~pre:
                   [
                     Lock_intf.acq_tag, [ Value.int b ];
                     Lock_intf.rel_tag, [ Value.int b; Value.int v ];
                   ]
                 [ Value.int b ])
             values)
      locks
  in
  let rel_cases =
    List.concat_map
      (fun b ->
        List.map
          (fun v ->
            Calculus.case
              ~pre:[ Lock_intf.acq_tag, [ Value.int b ] ]
              [ Value.int b; Value.int v ])
          values)
      locks
  in
  [ Lock_intf.acq_tag, acq_cases; Lock_intf.rel_tag, rel_cases ]

let rival_prog b rounds =
  let rec go k =
    if k = 0 then Prog.ret_unit
    else
      Prog.bind (Prog.call Lock_intf.acq_tag [ Value.int b ]) (fun v ->
          Prog.seq
            (Prog.call Lock_intf.rel_tag [ Value.int b; v ])
            (go (k - 1)))
  in
  go rounds

let env_suite ?(memory = Memory.default) ?(locks = [ 0 ]) ?(rivals = [ 9; 8 ])
    ?(rounds = [ 1; 2 ]) () : Calculus.env_suite =
 fun i ->
  let b = match locks with b :: _ -> b | [] -> 0 in
  let layer = l0 ~memory () in
  let impl = c_module () in
  let rivals = List.filter (fun j -> j <> i) rivals in
  let rival j =
    j, Machine.strategy_of_prog layer j (Prog.Module.link impl (rival_prog b 1))
  in
  (* Under TSO the drain wrapper is load-bearing, not an option: the
     focused CPU's own buffered [locked(me) := 1] would otherwise be
     forwarded to its spin loop forever.  Draining at each environment
     query point is exactly x86-TSO's guarantee that buffers flush
     eventually, and lets the predecessor's [locked(me) := 0] handoff
     reach memory. *)
  let adapt env =
    match memory with
    | Memory.Sc -> env
    | Memory.Tso -> Ccal_machine.Tso.with_drain env
  in
  List.map adapt
    (Env_context.empty
    :: List.concat_map
         (fun per_query ->
           match rivals with
           | [] -> []
           | [ j ] ->
             [
               Env_context.of_strategies
                 (Printf.sprintf "one-rival(r%d)" per_query)
                 [ rival j ] ~rounds:per_query;
             ]
           | j :: k :: _ ->
             [
               Env_context.of_strategies
                 (Printf.sprintf "one-rival(r%d)" per_query)
                 [ rival j ] ~rounds:per_query;
               Env_context.of_strategies
                 (Printf.sprintf "two-rivals(r%d)" per_query)
                 [ rival j; rival k ] ~rounds:per_query;
             ])
         rounds)

let certify ?max_moves ?(memory = Memory.default) ?(focus = [ 1; 2 ])
    ?(use_asm = false) () =
  let impl = if use_asm then asm_module () else c_module () in
  Calculus.fun_rule ?max_moves ~underlay:(l0 ~memory ())
    ~overlay:(overlay ())
    ~impl
    ~rel:(Ccal_machine.Tso.under_memory memory r_mcs)
    ~focus ~prim_tests:(prim_tests ())
    ~envs:(env_suite ~memory ()) ()
