(** The shared queue object (Sec. 4.2).

    A shared queue is an atomic object built by wrapping local queue
    operations with lock acquire/release — "to implement the atomic queue
    object, we simply wrap the local queue operations with lock acquire and
    release statements" (Sec. 6).  The queue contents are the
    lock-protected value: [acq] hands the current logical list to the
    critical section, which manipulates it with silent helpers (the paper's
    [deQ_t] operating under the assumption that the lock is held) and
    publishes the result through [rel].

    The overlay is the atomic interface [Lq_high]: one event per operation.
    The simulation relation is the [Rlock] of Sec. 4.2: it {e merges} the
    [c.acq(i) … c.rel(i,q')] pair into the single higher-level event — a
    stateful log translation, not a pointwise one. *)

open Ccal_core

val deq_tag : string
val enq_tag : string

val helpers : (string * Layer.prim) list
(** The silent list helpers [q_hd]/[q_tl]/[q_snoc]/[q_len] (the paper's
    critical-section operations such as [deQ_t], Sec. 4.2); also reused by
    the IPC channel's buffer. *)

val underlay : ?bound:int -> unit -> Layer.t
(** [Lq]: the atomic lock interface plus the silent list helpers
    [q_hd]/[q_tl]/[q_snoc] used inside the critical section. *)

val overlay : ?bound:int -> unit -> Layer.t
(** [Lq_high]: atomic [deQ_s(q)] (returns [-1] on empty) and
    [enQ_s(q,v)], with state replayed from the events themselves. *)

val replay_queue : int -> Value.t list Replay.t
(** Logical contents of shared queue [q] from [deQ_s]/[enQ_s] events. *)

val deq_fn : Ccal_clight.Csyntax.fn
val enq_fn : Ccal_clight.Csyntax.fn

val c_module : unit -> Prog.Module.t
val asm_module : unit -> Prog.Module.t

val r_lock : Sim_rel.t
(** The event-merging relation [Rlock] (Sec. 4.2): [acq(q) … rel(q, l')]
    becomes [deQ_s]/[enQ_s] according to how the published list differs
    from the acquired one; lock events of shared queues disappear. *)

val prim_tests : ?queues:int list -> unit -> Calculus.prim_tests

val env_suite :
  ?queues:int list -> ?rivals:Event.tid list -> ?rounds:int list -> unit -> Calculus.env_suite

val certify :
  ?max_moves:int -> ?focus:Event.tid list -> ?use_asm:bool -> unit ->
  (Calculus.cert, Calculus.error) result
(** [Lq[A] ⊢_{Rlock} M_sq : Lq_high[A]]. *)

val full_stack_certify :
  ?max_moves:int -> ?memory:Memory.t -> ?focus:Event.tid list -> unit ->
  (Calculus.cert, Calculus.error) result
(** The vertical composition of Fig. 5 extended to the queue: ticket lock
    certificate stacked under the shared-queue certificate,
    [L0[A] ⊢_{Rlock ∘ R_ticket} M1 ⊕ M_sq : Lq_high[A]].  [?memory]
    selects the hardware machine the lock certificate is built over; the
    queue certificate above it is memory-mode-insensitive (its underlay
    is already the atomic lock interface). *)
