open Ccal_core

type placement = (Event.tid * int) list

let yield_tag = "yield"
let sleep_tag = "sleep"
let wakeup_tag = "wakeup"
let wait_tag = "wait"
let exit_tag = "texit"

type cpu_state = {
  running : Event.tid option;
  rdq : Event.tid list;
  pendq : Event.tid list;
}

type state = {
  cpus : (int * cpu_state) list;
  slpq : (int * Event.tid list) list;
}

let cpu_of placement t = List.assoc_opt t placement

let init_state placement =
  let cpus =
    List.sort_uniq Stdlib.compare (List.map snd placement)
    |> List.map (fun c ->
           let threads =
             List.filter_map (fun (t, c') -> if c' = c then Some t else None)
               placement
             |> List.sort Stdlib.compare
           in
           match threads with
           | [] -> c, { running = None; rdq = []; pendq = [] }
           | first :: rest -> c, { running = Some first; rdq = rest; pendq = [] })
  in
  { cpus; slpq = [] }

let get_cpu st c =
  match List.assoc_opt c st.cpus with
  | Some cs -> cs
  | None -> { running = None; rdq = []; pendq = [] }

let set_cpu st c cs = { st with cpus = (c, cs) :: List.remove_assoc c st.cpus }

let get_slpq st chan = Option.value ~default:[] (List.assoc_opt chan st.slpq)
let set_slpq st chan q = { st with slpq = (chan, q) :: List.remove_assoc chan st.slpq }

(* Deschedule the running thread of a CPU: drain [pendq] into [rdq], then
   promote the next ready thread (if any). *)
let deschedule cs ~requeue =
  let rdq = cs.rdq @ cs.pendq @ requeue in
  match rdq with
  | [] -> { running = None; rdq = []; pendq = [] }
  | next :: rest -> { running = Some next; rdq = rest; pendq = [] }

let chan_of_args = function
  | (Value.Vint chan : Value.t) :: _ -> Some chan
  | _ -> None

let replay_sched placement : state Replay.t =
  Replay.fold ~init:(init_state placement) ~step:(fun st (e : Event.t) ->
      let scheduling =
        List.mem e.tag [ yield_tag; sleep_tag; wakeup_tag; exit_tag ]
      in
      if not scheduling then Ok st
      else
        match cpu_of placement e.src with
        | None ->
          Error (Printf.sprintf "scheduling event from unplaced thread %d" e.src)
        | Some c ->
          let cs = get_cpu st c in
          if cs.running <> Some e.src then
            Error
              (Printf.sprintf "scheduling event from descheduled thread %d" e.src)
          else if String.equal e.tag yield_tag then
            Ok (set_cpu st c (deschedule cs ~requeue:[ e.src ]))
          else if String.equal e.tag exit_tag then
            Ok (set_cpu st c (deschedule cs ~requeue:[]))
          else if String.equal e.tag sleep_tag then
            match chan_of_args e.args with
            | None -> Error "sleep: bad arguments"
            | Some chan ->
              let st = set_slpq st chan (get_slpq st chan @ [ e.src ]) in
              Ok (set_cpu st c (deschedule cs ~requeue:[]))
          else
            (* wakeup *)
            match chan_of_args e.args with
            | None -> Error "wakeup: bad arguments"
            | Some chan -> (
              match get_slpq st chan with
              | [] -> Ok st
              | w :: rest -> (
                let st = set_slpq st chan rest in
                match cpu_of placement w with
                | None ->
                  Error (Printf.sprintf "woken thread %d is unplaced" w)
                | Some cw ->
                  let csw = get_cpu st cw in
                  let csw' =
                    if csw.running = None then { csw with running = Some w }
                    else if cw = c then { csw with rdq = csw.rdq @ [ w ] }
                    else { csw with pendq = csw.pendq @ [ w ] }
                  in
                  Ok (set_cpu st cw csw'))))

let is_running placement t log =
  match replay_sched placement log with
  | Error _ -> false
  | Ok st -> (
    match cpu_of placement t with
    | None -> false
    | Some c -> (get_cpu st c).running = Some t)

let sleepers placement chan log =
  match replay_sched placement log with
  | Error _ -> []
  | Ok st -> get_slpq st chan

(* ------------------------------------------------------------------ *)
(* The multithreaded layer transformer                                  *)
(* ------------------------------------------------------------------ *)

let turn_checked placement sem =
 fun t args log ->
  match replay_sched placement log with
  | Error msg -> Layer.Stuck msg
  | Ok st -> (
    match cpu_of placement t with
    | None -> Layer.Stuck (Printf.sprintf "thread %d is not placed on any CPU" t)
    | Some c ->
      if (get_cpu st c).running = Some t then sem t args log else Layer.Block)

let yield_prim placement =
  ( yield_tag,
    Layer.Shared
      (turn_checked placement (fun t _args _log ->
           Layer.Step
             { events = [ Event.make t yield_tag ]; ret = Value.unit; crit = Layer.Keep })) )

let exit_prim placement =
  ( exit_tag,
    Layer.Shared
      (turn_checked placement (fun t _args _log ->
           Layer.Step
             { events = [ Event.make t exit_tag ]; ret = Value.unit; crit = Layer.Keep })) )

(* sleep(chan, lk, v): one move, two events — release the spinlock
   publishing v, then go to sleep.  Atomicity avoids the lost-wakeup race. *)
let sleep_prim placement =
  ( sleep_tag,
    Layer.Shared
      (turn_checked placement (fun t args log ->
           match args with
           | [ Value.Vint chan; Value.Vint lk; v ] -> (
             match Lock_intf.replay_lock lk log with
             | Error msg -> Layer.Stuck msg
             | Ok { holder = Some h; _ } when h = t ->
               Layer.Step
                 {
                   events =
                     [
                       Event.make ~args:[ Value.int lk; v ] t Lock_intf.rel_tag;
                       Event.make ~args:[ Value.int chan ] t sleep_tag;
                     ];
                   ret = Value.unit;
                   crit = Layer.Exit;
                 }
             | Ok _ ->
               Layer.Stuck
                 (Printf.sprintf "thread %d sleeps without holding lock %d" t lk))
           | _ -> Layer.Stuck "sleep: expected channel, lock and value")) )

let wakeup_prim placement =
  ( wakeup_tag,
    Layer.Shared
      (turn_checked placement (fun t args log ->
           match chan_of_args args with
           | None -> Layer.Stuck "wakeup: expected a channel"
           | Some chan ->
             let woken =
               match sleepers placement chan log with
               | [] -> 0
               | w :: _ -> w
             in
             let ret = Value.int woken in
             Layer.Step
               {
                 events = [ Event.make ~args ~ret t wakeup_tag ];
                 ret;
                 crit = Layer.Keep;
               })) )

(* wait(chan): block until no longer sleeping (the waker removed us from
   slpq) and scheduled again; the logged event marks the completion point. *)
let wait_prim placement =
  ( wait_tag,
    Layer.Shared
      (fun t args log ->
        match chan_of_args args with
        | None -> Layer.Stuck "wait: expected a channel"
        | Some chan -> (
          match replay_sched placement log with
          | Error msg -> Layer.Stuck msg
          | Ok st ->
            if List.mem t (get_slpq st chan) then Layer.Block
            else
              match cpu_of placement t with
              | None -> Layer.Stuck (Printf.sprintf "thread %d is not placed" t)
              | Some c ->
                if (get_cpu st c).running <> Some t then Layer.Block
                else
                  Layer.Step
                    {
                      events = [ Event.make ~args t wait_tag ];
                      ret = Value.unit;
                      crit = Layer.Keep;
                    })) )

let get_tid_prim =
  ("get_tid", Layer.Private (fun t _args abs -> Ok (abs, Value.int t)))

let mt_layer placement base =
  let wrapped =
    List.map
      (fun (name, prim) ->
        match prim with
        | Layer.Private _ -> name, prim
        | Layer.Shared sem -> name, Layer.Shared (turn_checked placement sem))
      base.Layer.prims
  in
  Layer.make ~rely:base.Layer.rely ~guar:base.Layer.guar
    ~init_abs:base.Layer.init_abs
    ("Lmt(" ^ base.Layer.name ^ ")")
    (wrapped
    @ [
        yield_prim placement;
        sleep_prim placement;
        wakeup_prim placement;
        wait_prim placement;
        exit_prim placement;
        get_tid_prim;
      ])

(* ------------------------------------------------------------------ *)
(* Multithreaded linking (Thm 5.1)                                     *)
(* ------------------------------------------------------------------ *)

let turn_consistent placement log =
  let events = Log.chronological log in
  let rec go prefix = function
    | [] -> true
    | (e : Event.t) :: rest -> (
      match replay_sched placement prefix with
      | Error _ -> false
      | Ok st -> (
        match cpu_of placement e.src with
        | None -> false
        | Some c ->
          (get_cpu st c).running = Some e.src && go (Log.append e prefix) rest))
  in
  go Log.empty events

let check_multithreaded_linking_sched ?max_steps ~placement ~layer ~threads
    sched =
  Probe.span "thread_sched.linking" @@ fun () ->
  let outcome = Game.run (Game.config ?max_steps layer threads sched) in
  match outcome.Game.status with
  | Game.Stuck (i, _, msg) -> Error (Printf.sprintf "thread %d stuck: %s" i msg)
  | Game.Deadlock ids ->
    Error
      (Printf.sprintf "deadlock among threads %s under %s"
         (String.concat "," (List.map string_of_int ids))
         sched.Sched.name)
  | Game.Out_of_fuel -> Error "out of fuel"
  | Game.Cancelled ->
    Error (Printf.sprintf "run under %s was cancelled" sched.Sched.name)
  | Game.All_done -> (
    if not (turn_consistent placement outcome.Game.log) then
      Error (Printf.sprintf "log not turn-consistent under %s" sched.Sched.name)
    else
      match Refinement.replay_multi ?max_steps layer threads outcome.Game.log with
      | Ok _ -> Ok ()
      | Error (reason, _) ->
        Error (Printf.sprintf "log does not replay deterministically: %s" reason))

let check_multithreaded_linking ?max_steps ~placement ~layer ~threads ~scheds () =
  let rec go n = function
    | [] -> Ok n
    | sched :: rest -> (
      match
        check_multithreaded_linking_sched ?max_steps ~placement ~layer ~threads
          sched
      with
      | Ok () -> go (n + 1) rest
      | Error _ as e -> e)
  in
  go 0 scheds
