(** Multithreaded layers: the thread scheduler (Sec. 5.1–5.3).

    Threads are partitioned onto CPUs by a {!placement}.  On each CPU at
    most one thread is {e running}; the others sit in the CPU's ready queue
    [rdq], in its pending queue [pendq] (threads woken up by other CPUs),
    or in a shared sleeping queue [slpq] (Sec. 5.1).  All of this state is
    replayed from the scheduling events [yield]/[sleep]/[wakeup]/[texit]
    by the replay function [Rsched], which tracks the currently-running
    thread (Sec. 5.1).

    {!mt_layer} is the layer transformer that turns any interface into its
    multithreaded counterpart: every shared primitive of a thread that is
    not currently running {e blocks} — the executable form of "the machine
    runs P when control is transferred to a member of A" — and the
    scheduling primitives are added:

    {ul
    {- [yield()]: requeue the caller (draining [pendq] into [rdq]) and
       transfer control to the next ready thread;}
    {- [sleep(chan, lk, v)]: atomically release spinlock [lk] (publishing
       [v]), enqueue the caller on sleeping queue [chan], and deschedule —
       the atomicity is the whole point of the paper's [sleep(i, lk)]
       signature: splitting release from sleep loses wakeups.  One move,
       two events ([rel] then [sleep]), so no interleaving fits between;}
    {- [wait(chan)]: block until woken {e and} scheduled, then log a [wait]
       event (the point at which a queuing-lock acquire completes);}
    {- [wakeup(chan)]: dequeue the first sleeper (returning its id, or 0
       if none) and make it ready — on its own CPU's [rdq], on a remote
       CPU's [pendq], or running directly if that CPU is idle;}
    {- [texit()]: leave the CPU for good (so sibling threads can run after
       the caller's program finishes);}
    {- [get_tid()]: private, the caller's id (Fig. 11's [get_tid]).}}

    Thread ids must be ≥ 1 (0 is the "nobody" value in replay results). *)

open Ccal_core

type placement = (Event.tid * int) list
(** [thread ↦ cpu].  Threads of a CPU start with the lowest id running and
    the rest in [rdq], in increasing order. *)

val yield_tag : string
val sleep_tag : string
val wakeup_tag : string
val wait_tag : string
val exit_tag : string

type cpu_state = {
  running : Event.tid option;
  rdq : Event.tid list;
  pendq : Event.tid list;
}

type state = {
  cpus : (int * cpu_state) list;
  slpq : (int * Event.tid list) list;  (** per-channel sleeper FIFOs *)
}

val init_state : placement -> state
val replay_sched : placement -> state Replay.t
(** [Rsched]: scheduling state from the log; stuck on ill-formed logs
    (scheduling events from descheduled or unplaced threads). *)

val is_running : placement -> Event.tid -> Log.t -> bool
val sleepers : placement -> int -> Log.t -> Event.tid list

val mt_layer : placement -> Layer.t -> Layer.t
(** The multithreaded interface [L[c][T]] over a base interface. *)

val turn_consistent : placement -> Log.t -> bool
(** Every event of the log was produced by a thread that was running on
    its CPU at that point — the key invariant behind the multithreaded
    linking theorem (Thm 5.1): the machine that replays scheduling from
    the log captures every concrete scheduling behaviour. *)

val check_multithreaded_linking_sched :
  ?max_steps:int ->
  placement:placement ->
  layer:Layer.t ->
  threads:(Event.tid * Prog.t) list ->
  Sched.t ->
  (unit, string) result
(** The per-schedule body of {!check_multithreaded_linking}.  Pure up to
    its own game state, so the parallel checkers ({!Ccal_verify.Stack})
    can evaluate schedules on any domain. *)

val check_multithreaded_linking :
  ?max_steps:int ->
  placement:placement ->
  layer:Layer.t ->
  threads:(Event.tid * Prog.t) list ->
  scheds:Sched.t list ->
  unit ->
  (int, string) result
(** The tested analogue of Thm 5.1: for each scheduler, run the
    multithreaded game; the resulting log must be turn-consistent and must
    replay deterministically against the same multithreaded machine under
    the induced schedule. *)
