(** The MCS queue lock (Mellor-Crummey & Scott), verified against the same
    atomic interface as the ticket lock.

    The paper verifies both the ticket and the MCS lock against the same
    high-level atomic specification, so "the lock implementations can be
    freely interchanged without affecting any proof in the higher-level
    modules using locks" (Sec. 6); Kim et al. [24] describe the MCS proof
    in detail.  Here the implementation uses the hardware layer's atomic
    cells: per lock [b], cell [b·1000] holds the queue tail, and cells
    [b·1000 + 100 + j] / [b·1000 + 200 + j] hold CPU [j]'s [locked] flag
    and [next] pointer.  CPU ids must be in [1 .. 99]; 0 is the nil
    pointer.  The protected data travels through the same push/pull
    location [b] as for the ticket lock. *)

open Ccal_core

val l0 : ?memory:Memory.t -> unit -> Layer.t
(** The bottom interface: the hardware layer of the memory mode ([Lx86]
    under [Sc], the buffered [Ltso] under [Tso]) with its atomic cells
    and push/pull primitives (no lock-specific primitives are needed —
    MCS works on raw cells).  Under [Tso] the rely/guarantee release
    bound doubles (96 → 192): buffering events inflate the event count
    the bound is measured in. *)

val overlay : ?bound:int -> unit -> Layer.t
(** The same [Llock] atomic interface as {!Ticket_lock.overlay}. *)

val acq_fn : Ccal_clight.Csyntax.fn
val rel_fn : Ccal_clight.Csyntax.fn

val c_module : unit -> Prog.Module.t
val asm_module : unit -> Prog.Module.t

val r_mcs : Sim_rel.t
(** Erase the cell traffic, rename [pull ↦ acq] / [push ↦ rel]. *)

val prim_tests : ?locks:int list -> ?values:int list -> unit -> Calculus.prim_tests

val env_suite :
  ?memory:Memory.t ->
  ?locks:int list -> ?rivals:Event.tid list -> ?rounds:int list -> unit -> Calculus.env_suite
(** Under [Tso] every context is wrapped with
    {!Ccal_machine.Tso.with_drain}: the environment commits pending
    stores at each query point.  For MCS this is load-bearing — the
    focused CPU's own buffered [locked := 1] store would otherwise be
    forwarded to its spin loop forever. *)

val certify :
  ?max_moves:int ->
  ?memory:Memory.t ->
  ?focus:Event.tid list ->
  ?use_asm:bool ->
  unit ->
  (Calculus.cert, Calculus.error) result
(** [L0[A] ⊢_{R_mcs} M_mcs : Llock[A]].  [?memory] certifies over the
    corresponding hardware machine; under [Tso] the relation composes
    {!Ccal_machine.Tso.drop_buffering} in front of [R_mcs]. *)
