open Ccal_core
module C = Ccal_clight.Csyntax

let deq_tag = "deQ_s"
let enq_tag = "enQ_s"

(* Silent list helpers used inside the critical section; an int-valued
   protected cell (the initial 0) reads as the empty queue. *)
let as_list = function
  | Value.Vlist vs -> vs
  | _ -> []

let q_hd_prim =
  Layer.pure_private "q_hd" (fun args ->
      match args with
      | [ l ] -> ( match as_list l with [] -> Value.int (-1) | v :: _ -> v)
      | _ -> Value.int (-1))

let q_tl_prim =
  Layer.pure_private "q_tl" (fun args ->
      match args with
      | [ l ] -> (
        match as_list l with [] -> Value.list [] | _ :: rest -> Value.list rest)
      | _ -> Value.list [])

let q_snoc_prim =
  Layer.pure_private "q_snoc" (fun args ->
      match args with
      | [ l; v ] -> Value.list (as_list l @ [ v ])
      | _ -> Value.list [])

let q_len_prim =
  Layer.pure_private "q_len" (fun args ->
      match args with
      | [ l ] -> Value.int (List.length (as_list l))
      | _ -> Value.int 0)

let helpers = [ q_hd_prim; q_tl_prim; q_snoc_prim; q_len_prim ]

let underlay ?bound () =
  Lock_intf.layer ?bound ~extra:helpers "Lq"

(* ------------------------------------------------------------------ *)
(* Atomic overlay                                                      *)
(* ------------------------------------------------------------------ *)

let queue_of_args = function
  | (Value.Vint q : Value.t) :: _ -> Some q
  | _ -> None

let replay_queue q : Value.t list Replay.t =
  Replay.fold ~init:[] ~step:(fun vs (e : Event.t) ->
      match queue_of_args e.args with
      | Some q' when q' = q ->
        if String.equal e.tag enq_tag then
          match e.args with
          | [ _; v ] -> Ok (vs @ [ v ])
          | _ -> Error "enQ_s: bad arguments"
        else if String.equal e.tag deq_tag then
          Ok (match vs with [] -> [] | _ :: rest -> rest)
        else Ok vs
      | Some _ | None -> Ok vs)

let deq_prim =
  Layer.event_prim deq_tag (fun _c args log ->
      match queue_of_args args with
      | Some q ->
        Result.map
          (function [] -> Value.int (-1) | v :: _ -> v)
          (replay_queue q log)
      | None -> Error "deQ_s: expected a queue")

let enq_prim =
  Layer.event_prim enq_tag (fun _c args log ->
      match queue_of_args args with
      | Some q -> Result.map (fun _ -> Value.unit) (replay_queue q log)
      | None -> Error "enQ_s: expected queue and value")

let overlay ?bound () =
  let cond = Lock_intf.condition ?bound () in
  Layer.make ~rely:cond ~guar:cond "Lq_high" [ deq_prim; enq_prim ]

(* ------------------------------------------------------------------ *)
(* Implementation (Sec. 4.2): wrap the queue operation in the lock     *)
(* ------------------------------------------------------------------ *)

let deq_fn =
  {
    C.name = deq_tag;
    params = [ "q" ];
    locals = [ "l"; "r"; "l2" ];
    body =
      C.seq
        [
          C.calla "l" Lock_intf.acq_tag [ C.v "q" ];
          C.calla "r" "q_hd" [ C.v "l" ];
          C.calla "l2" "q_tl" [ C.v "l" ];
          C.call_ Lock_intf.rel_tag [ C.v "q"; C.v "l2" ];
          C.return (C.v "r");
        ];
  }

let enq_fn =
  {
    C.name = enq_tag;
    params = [ "q"; "val" ];
    locals = [ "l"; "l2" ];
    body =
      C.seq
        [
          C.calla "l" Lock_intf.acq_tag [ C.v "q" ];
          C.calla "l2" "q_snoc" [ C.v "l"; C.v "val" ];
          C.call_ Lock_intf.rel_tag [ C.v "q"; C.v "l2" ];
          C.return_unit;
        ];
  }

let fns = [ deq_fn; enq_fn ]

let c_module () = Ccal_clight.Csem.module_of_fns fns
let asm_module () = Ccal_compcertx.Compile.compile_module fns

(* Rlock (Sec. 4.2): merge each thread's [acq(q) … rel(q, l')] pair into
   the single atomic event, inferred from how the published list differs
   from the acquired one. *)
let r_lock =
  Sim_rel.of_log_fn "Rlock" (fun log ->
      let translate (pending, out) (e : Event.t) =
        if String.equal e.tag Lock_intf.acq_tag then
          match e.args with
          | [ Value.Vint q ] ->
            (e.src, (q, as_list e.ret)) :: pending, out
          | _ -> pending, e :: out
        else if String.equal e.tag Lock_intf.rel_tag then
          match e.args, List.assoc_opt e.src pending with
          | [ Value.Vint q; l2v ], Some (q', l) when q = q' ->
            let pending = List.remove_assoc e.src pending in
            let l2 = as_list l2v in
            let ev =
              if List.length l2 > List.length l then
                let v = List.nth l2 (List.length l2 - 1) in
                Event.make ~args:[ Value.int q; v ] e.src enq_tag
              else
                let ret =
                  match l with [] -> Value.int (-1) | v :: _ -> v
                in
                Event.make ~args:[ Value.int q ] ~ret e.src deq_tag
            in
            pending, ev :: out
          | _ -> pending, e :: out
        else pending, e :: out
      in
      let _, out =
        List.fold_left translate ([], []) (Log.chronological log)
      in
      Log.append_all (List.rev out) Log.empty)

let prim_tests ?(queues = [ 0 ]) () : Calculus.prim_tests =
  List.concat_map
    (fun q ->
      let iq = Value.int q in
      let e v = enq_tag, [ iq; Value.int v ] in
      let d = deq_tag, [ iq ] in
      [
        deq_tag,
          [
            Calculus.case [ iq ];
            Calculus.case ~pre:[ e 4 ] [ iq ];
            Calculus.case ~pre:[ e 4; e 5; d ] [ iq ];
          ];
        enq_tag,
          [
            Calculus.case [ iq; Value.int 9 ];
            Calculus.case ~pre:[ e 1; d; d ] [ iq; Value.int 2 ];
          ];
      ])
    queues

let rival_prog q =
  Prog.seq
    (Prog.call enq_tag [ Value.int q; Value.int 42 ])
    (Prog.bind (Prog.call deq_tag [ Value.int q ]) (fun _ -> Prog.ret_unit))

let env_suite ?(queues = [ 0 ]) ?(rivals = [ 9; 8 ]) ?(rounds = [ 1; 2 ]) () :
    Calculus.env_suite =
 fun i ->
  let q = match queues with q :: _ -> q | [] -> 0 in
  let layer = underlay () in
  let impl = c_module () in
  let rivals = List.filter (fun j -> j <> i) rivals in
  let rival j =
    j, Machine.strategy_of_prog layer j (Prog.Module.link impl (rival_prog q))
  in
  Env_context.empty
  :: List.concat_map
       (fun per_query ->
         match rivals with
         | [] -> []
         | [ j ] ->
           [
             Env_context.of_strategies
               (Printf.sprintf "one-rival(r%d)" per_query)
               [ rival j ] ~rounds:per_query;
           ]
         | j :: k :: _ ->
           [
             Env_context.of_strategies
               (Printf.sprintf "two-rivals(r%d)" per_query)
               [ rival j; rival k ] ~rounds:per_query;
           ])
       rounds

let certify ?max_moves ?(focus = [ 1; 2 ]) ?(use_asm = false) () =
  let impl = if use_asm then asm_module () else c_module () in
  Calculus.fun_rule ?max_moves ~underlay:(underlay ()) ~overlay:(overlay ())
    ~impl ~rel:r_lock ~focus ~prim_tests:(prim_tests ())
    ~envs:(env_suite ()) ()

(* The Fig. 5 pipeline extended to the queue: ticket lock under the shared
   queue.  The intermediate interface must carry the silent helpers
   through, so we rebuild the lock certificate against [Lq]-named layers. *)
let full_stack_certify ?max_moves ?(memory = Memory.default) ?(focus = [ 1; 2 ])
    () =
  let l0q =
    let base = Ticket_lock.l0 ~memory () in
    Layer.make ~rely:base.Layer.rely ~guar:base.Layer.guar "L0_q"
      (base.Layer.prims @ helpers)
  in
  let lock_cert =
    Calculus.fun_rule ?max_moves ~underlay:l0q ~overlay:(underlay ())
      ~impl:(Ticket_lock.c_module ())
      ~rel:(Ccal_machine.Tso.under_memory memory Ticket_lock.r_ticket)
      ~focus
      ~prim_tests:(Ticket_lock.prim_tests ())
      ~envs:(Ticket_lock.env_suite ~memory ()) ()
  in
  match lock_cert with
  | Error _ as e -> e
  | Ok c1 -> (
    match certify ?max_moves ~focus () with
    | Error _ as e -> e
    | Ok c2 -> Calculus.vcomp c1 c2)
