open Ccal_core
module C = Ccal_clight.Csyntax
module Cx = Ccal_compcertx.Compile

let fai_tag = "FAI_t"
let get_n_tag = "get_n"
let inc_n_tag = "inc_n"

type ticket_state = {
  next : int;
  serving : int;
}

let wrap32 n = n land 0xFFFFFFFF

let lock_of_args = function
  | (Value.Vint b : Value.t) :: _ -> Some b
  | _ -> None

let replay_ticket b : ticket_state Replay.t =
  Replay.fold ~init:{ next = 0; serving = 0 } ~step:(fun st (e : Event.t) ->
      match lock_of_args e.args with
      | Some b' when b' = b ->
        if String.equal e.tag fai_tag then
          Ok { st with next = wrap32 (st.next + 1) }
        else if String.equal e.tag inc_n_tag then
          Ok { st with serving = wrap32 (st.serving + 1) }
        else Ok st
      | Some _ | None -> Ok st)

let ticket_prim tag ret_of =
  Layer.event_prim tag (fun _c args log ->
      match lock_of_args args with
      | Some b -> Result.map ret_of (replay_ticket b log)
      | None -> Error (tag ^ ": expected a lock argument"))

let fai_prim = ticket_prim fai_tag (fun st -> Value.int st.next)
let get_n_prim = ticket_prim get_n_tag (fun st -> Value.int st.serving)
let inc_n_prim = ticket_prim inc_n_tag (fun _ -> Value.unit)

(* At L0 the discipline on participants is over the raw events: pulled
   locations are pushed back within a bounded number of steps. *)
let l0_condition =
  Rg.lock_condition ~bound:96 ~acq_tag:Ccal_machine.Pushpull.pull_tag
    ~rel_tag:Ccal_machine.Pushpull.push_tag ()

(* The ticket implementation issues no plain stores (FAI_t/get_n/inc_n
   plus pull/push only), so under TSO its buffers stay empty and the
   certificates carry over with nothing but the layer swap. *)
let l0 ?(memory = Memory.default) () =
  let base = Ccal_machine.Tso.machine_layer memory in
  Layer.make ~rely:l0_condition ~guar:l0_condition "L0_ticket"
    (base.Layer.prims @ [ fai_prim; get_n_prim; inc_n_prim ])

let overlay ?bound () =
  Lock_intf.layer ?bound "Llock"

(* Fig. 10:
     int acq(int b) {
       int myt = FAI_t(b);
       int n = get_n(b);
       while (n != myt) { n = get_n(b); }
       return pull(b);
     } *)
let acq_fn =
  {
    C.name = "acq";
    params = [ "b" ];
    locals = [ "myt"; "n"; "v" ];
    body =
      C.seq
        [
          C.calla "myt" fai_tag [ C.v "b" ];
          C.calla "n" get_n_tag [ C.v "b" ];
          C.while_ C.(v "n" <> v "myt") (C.calla "n" get_n_tag [ C.v "b" ]);
          C.calla "v" Ccal_machine.Pushpull.pull_tag [ C.v "b" ];
          C.return (C.v "v");
        ];
  }

(* Fig. 10:  void rel(int b, int v) { push(b, v); inc_n(b); } *)
let rel_fn =
  {
    C.name = "rel";
    params = [ "b"; "v" ];
    locals = [];
    body =
      C.seq
        [
          C.call_ Ccal_machine.Pushpull.push_tag [ C.v "b"; C.v "v" ];
          C.call_ inc_n_tag [ C.v "b" ];
          C.return_unit;
        ];
  }

let fns = [ acq_fn; rel_fn ]

let c_module () = Ccal_clight.Csem.module_of_fns fns
let asm_module () = Cx.compile_module fns

let r_ticket =
  Sim_rel.of_table "R_ticket"
    [
      fai_tag, `Drop;
      get_n_tag, `Drop;
      inc_n_tag, `Drop;
      Ccal_machine.Pushpull.pull_tag, `To Lock_intf.acq_tag;
      Ccal_machine.Pushpull.push_tag, `To Lock_intf.rel_tag;
    ]

(* The automaton φ'_acq[i] of Sec. 2. *)
let phi_acq_low i b =
  let barg = [ Value.int b ] in
  let pull_move =
    {
      Strategy.step =
        (fun l ->
          let ev = Event.make ~args:barg i Ccal_machine.Pushpull.pull_tag in
          match Ccal_machine.Pushpull.replay_loc b (Log.append ev l) with
          | Error msg -> Strategy.Refuse msg
          | Ok (v, _) ->
            Strategy.Move ([ { ev with ret = v } ], Strategy.Done v));
    }
  in
  let rec spin myt =
    {
      Strategy.step =
        (fun l ->
          match replay_ticket b l with
          | Error msg -> Strategy.Refuse msg
          | Ok { serving; _ } ->
            let ev =
              Event.make ~args:barg ~ret:(Value.int serving) i get_n_tag
            in
            if serving = myt then Strategy.Move ([ ev ], Strategy.Next pull_move)
            else Strategy.Move ([ ev ], Strategy.Next (spin myt)));
    }
  in
  {
    Strategy.step =
      (fun l ->
        match replay_ticket b l with
        | Error msg -> Strategy.Refuse msg
        | Ok { next; _ } ->
          let ev = Event.make ~args:barg ~ret:(Value.int next) i fai_tag in
          Strategy.Move ([ ev ], Strategy.Next (spin next)));
  }

let phi_rel_low i b v =
  Strategy.of_moves
    [
      (fun _ -> [ Event.make ~args:[ Value.int b; v ] i Ccal_machine.Pushpull.push_tag ]);
      (fun _ -> [ Event.make ~args:[ Value.int b ] i inc_n_tag ]);
    ]

let prim_tests ?(locks = [ 0 ]) ?(values = [ 7 ]) () : Calculus.prim_tests =
  let acq_cases =
    List.concat_map
      (fun b ->
        Calculus.case [ Value.int b ]
        :: List.map
             (fun v ->
               (* re-acquisition after a release observing the published
                  value *)
               Calculus.case
                 ~pre:
                   [
                     Lock_intf.acq_tag, [ Value.int b ];
                     Lock_intf.rel_tag, [ Value.int b; Value.int v ];
                   ]
                 [ Value.int b ])
             values)
      locks
  in
  let rel_cases =
    List.concat_map
      (fun b ->
        List.map
          (fun v ->
            Calculus.case
              ~pre:[ Lock_intf.acq_tag, [ Value.int b ] ]
              [ Value.int b; Value.int v ])
          values)
      locks
  in
  [ Lock_intf.acq_tag, acq_cases; Lock_intf.rel_tag, rel_cases ]

(* Environment participants run real lock rounds of this implementation, so
   their events carry replay-consistent return values. *)
let rival_prog b rounds =
  let rec go k =
    if k = 0 then Prog.ret_unit
    else
      Prog.bind (Prog.call Lock_intf.acq_tag [ Value.int b ]) (fun v ->
          Prog.seq
            (Prog.call Lock_intf.rel_tag [ Value.int b; v ])
            (go (k - 1)))
  in
  go rounds

let env_suite ?(memory = Memory.default) ?(locks = [ 0 ]) ?(rivals = [ 9; 8 ])
    ?(rounds = [ 1; 2 ]) () : Calculus.env_suite =
 fun i ->
  let b = match locks with b :: _ -> b | [] -> 0 in
  let layer = l0 ~memory () in
  let impl = c_module () in
  let rivals = List.filter (fun j -> j <> i) rivals in
  let rival j =
    j, Machine.strategy_of_prog layer j (Prog.Module.link impl (rival_prog b 1))
  in
  (* Under TSO every context gains the drain behaviour: the environment
     commits pending stores at each query point (x86-TSO's progress
     guarantee that buffers flush eventually). *)
  let adapt env =
    match memory with
    | Memory.Sc -> env
    | Memory.Tso -> Ccal_machine.Tso.with_drain env
  in
  List.map adapt
    (Env_context.empty
    :: List.concat_map
         (fun per_query ->
           match rivals with
           | [] -> []
           | [ j ] ->
             [
               Env_context.of_strategies
                 (Printf.sprintf "one-rival(r%d)" per_query)
                 [ rival j ] ~rounds:per_query;
             ]
           | j :: k :: _ ->
             [
               Env_context.of_strategies
                 (Printf.sprintf "one-rival(r%d)" per_query)
                 [ rival j ] ~rounds:per_query;
               Env_context.of_strategies
                 (Printf.sprintf "two-rivals(r%d)" per_query)
                 [ rival j; rival k ] ~rounds:per_query;
             ])
         rounds)

let certify ?max_moves ?(memory = Memory.default) ?(focus = [ 1; 2 ])
    ?(use_asm = false) () =
  let impl = if use_asm then asm_module () else c_module () in
  Calculus.fun_rule ?max_moves ~underlay:(l0 ~memory ())
    ~overlay:(overlay ())
    ~impl
    ~rel:(Ccal_machine.Tso.under_memory memory r_ticket)
    ~focus ~prim_tests:(prim_tests ())
    ~envs:(env_suite ~memory ()) ()
