open Ccal_core

let acq_tag = "acq"
let rel_tag = "rel"

type lock_state = {
  holder : Event.tid option;
  value : Value.t;
}

module Imap = Map.Make (Int)

let replay_locks : lock_state Imap.t Replay.t =
  Replay.fold ~init:Imap.empty ~step:(fun m (e : Event.t) ->
      let current b =
        match Imap.find_opt b m with
        | Some st -> st
        | None -> { holder = None; value = Value.int 0 }
      in
      if String.equal e.tag acq_tag then
        match e.args with
        | [ Value.Vint b ] -> (
          match current b with
          | { holder = None; value } ->
            Ok (Imap.add b { holder = Some e.src; value } m)
          | { holder = Some h; _ } ->
            Error
              (Printf.sprintf "invalid log: thread %d acquires lock %d held by %d"
                 e.src b h))
        | _ -> Error "acq: bad arguments"
      else if String.equal e.tag rel_tag then
        match e.args with
        | [ Value.Vint b; v ] -> (
          match current b with
          | { holder = Some h; _ } when h = e.src ->
            Ok (Imap.add b { holder = None; value = v } m)
          | { holder = Some h; _ } ->
            Error
              (Printf.sprintf "invalid log: thread %d releases lock %d held by %d"
                 e.src b h)
          | { holder = None; _ } ->
            Error
              (Printf.sprintf "invalid log: thread %d releases free lock %d" e.src b))
        | _ -> Error "rel: bad arguments"
      else Ok m)

(* Single-lock specialization of {!replay_locks}, the hot path of every
   [acq]/[rel] call (once per attempted move of a lock game).  The target
   lock's state lives in two mutable cells and other locks are tracked
   only by holder — enough to reproduce {!replay_locks}' error behaviour
   (messages included) on arbitrary logs, since a lock's value never
   decides an error.  A single-lock log therefore replays with no
   allocation beyond the final state record, where the map fold allocated
   a map node per acq/rel event per call. *)
let replay_lock_via_map b : lock_state Replay.t =
 fun l ->
  match replay_locks l with
  | Error _ as e -> e
  | Ok m -> (
    match Imap.find_opt b m with
    | Some st -> Ok st
    | None -> Ok { holder = None; value = Value.int 0 })

let replay_lock b : lock_state Replay.t =
 fun l ->
  if Log.length l > 16_384 then
    (* the specialized fold below recurses once per event; fall back to
       the map fold rather than risk the native stack on fuel-bound logs *)
    replay_lock_via_map b l
  else
  let holder = ref None in
  let value = ref (Value.int 0) in
  let others = ref [] in  (* (lock, holder) for locks <> b *)
  let error = ref None in
  let holder_of b' =
    if b' = b then !holder
    else Option.join (List.assoc_opt b' !others)
  in
  let set_other b' h = others := (b', h) :: List.remove_assoc b' !others in
  let step (e : Event.t) =
    if String.equal e.tag acq_tag then
      match e.args with
      | [ Value.Vint b' ] -> (
        match holder_of b' with
        | None -> if b' = b then holder := Some e.src else set_other b' (Some e.src)
        | Some h ->
          error :=
            Some
              (Printf.sprintf "invalid log: thread %d acquires lock %d held by %d"
                 e.src b' h))
      | _ -> error := Some "acq: bad arguments"
    else if String.equal e.tag rel_tag then
      match e.args with
      | [ Value.Vint b'; v ] -> (
        match holder_of b' with
        | Some h when h = e.src ->
          if b' = b then begin
            holder := None;
            value := v
          end
          else set_other b' None
        | Some h ->
          error :=
            Some
              (Printf.sprintf "invalid log: thread %d releases lock %d held by %d"
                 e.src b' h)
        | None ->
          error :=
            Some
              (Printf.sprintf "invalid log: thread %d releases free lock %d" e.src b'))
      | _ -> error := Some "rel: bad arguments"
  in
  (* oldest-first, first-error-wins, without materializing the reversed
     list — the same traversal {!Replay.fold} uses *)
  let rec go = function
    | [] -> ()
    | e :: older ->
      go older;
      if !error = None then step e
  in
  go (Log.newest_first l);
  match !error with
  | Some msg -> Error msg
  | None -> Ok { holder = !holder; value = !value }

let acq_prim =
  ( acq_tag,
    Layer.Shared
      (fun c args log ->
        match args with
        | [ Value.Vint b ] -> (
          match replay_lock b log with
          | Error msg -> Layer.Stuck msg
          | Ok { holder = Some _; _ } -> Layer.Block
          | Ok { holder = None; value } ->
            let ev = Event.make ~args ~ret:value c acq_tag in
            Layer.Step { events = [ ev ]; ret = value; crit = Layer.Enter })
        | _ -> Layer.Stuck "acq: expected one lock argument") )

let rel_prim =
  ( rel_tag,
    Layer.Shared
      (fun c args log ->
        match args with
        | [ Value.Vint b; _ ] -> (
          match replay_lock b log with
          | Error msg -> Layer.Stuck msg
          | Ok { holder = Some h; _ } when h = c ->
            let ev = Event.make ~args c rel_tag in
            Layer.Step { events = [ ev ]; ret = Value.unit; crit = Layer.Exit }
          | Ok _ ->
            Layer.Stuck
              (Printf.sprintf "thread %d releases lock %d it does not hold" c b))
        | _ -> Layer.Stuck "rel: expected lock and value arguments") )

let condition ?bound () = Rg.lock_condition ?bound ~acq_tag ~rel_tag ()

let layer ?bound ?(extra = []) name =
  let cond = condition ?bound () in
  Layer.make ~rely:cond ~guar:cond name ([ acq_prim; rel_prim ] @ extra)

let mutual_exclusion l =
  (* Mutual exclusion holds iff the log replays without violation: the
     replay function rejects exactly the overlapping-critical-section
     logs. *)
  Replay.well_formed replay_locks l

let handoffs b l =
  List.filter_map
    (fun (e : Event.t) ->
      if String.equal e.tag acq_tag && e.args = [ Value.int b ] then Some e.src
      else None)
    (Log.chronological l)
