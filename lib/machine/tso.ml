open Ccal_core

let buf_store_tag = "buf_store"
let commit_tag = "commit"
let mfence_tag = Atomic.mfence_tag
let flush_tag = Memory.flush_tag

module Imap = Map.Make (Int)

let int2 = function
  | [ Value.Vint a; Value.Vint b ] -> Some (a, b)
  | _ -> None

(* A commit carries (cell, value, cpu): the cell first, so the DPOR
   explorer's first-int-arg convention sees commits of different cells
   (and flushes of different CPUs, which can only touch different
   buffers) as commuting, and a commit as conflicting with every
   same-cell access; the cpu last, because the event's [src] is the
   mover — the flusher pseudo-thread for a flush move, the thread itself
   for an RMW/fence drain — and replay must key the buffer by the owning
   CPU, not by who drained it. *)
let int3 = function
  | [ Value.Vint a; Value.Vint b; Value.Vint c ] -> Some (a, b, c)
  | _ -> None

(* Shared memory: commits plus the (always-drained) RMW operations. *)
let replay_memory_map : int Imap.t Replay.t =
  Replay.fold ~init:Imap.empty ~step:(fun m (e : Event.t) ->
      let get b = Option.value ~default:0 (Imap.find_opt b m) in
      match e.tag, e.args with
      | tag, [ Value.Vint b; Value.Vint v; Value.Vint _cpu ]
        when String.equal tag commit_tag ->
        Ok (Imap.add b v m)
      | tag, [ Value.Vint b; Value.Vint d ] when String.equal tag Atomic.faa_tag ->
        Ok (Imap.add b (get b + d) m)
      | tag, [ Value.Vint b; Value.Vint v ] when String.equal tag Atomic.xchg_tag ->
        Ok (Imap.add b v m)
      | tag, [ Value.Vint b; Value.Vint expected; Value.Vint v ]
        when String.equal tag Atomic.cas_tag ->
        if get b = expected then Ok (Imap.add b v m) else Ok m
      | tag, [ Value.Vint b; Value.Vint v ] when String.equal tag Atomic.astore_tag ->
        Ok (Imap.add b v m)
      | _ -> Ok m)

let replay_memory b : int Replay.t =
 fun l ->
  Result.map
    (fun m -> Option.value ~default:0 (Imap.find_opt b m))
    (replay_memory_map l)

(* A CPU's store buffer: its buffered stores minus the commits drained
   from it (FIFO).  Buffered stores are identified by [src]; commits by
   their cpu argument — their [src] is whoever performed the drain. *)
let replay_buffer t : (int * int) list Replay.t =
  Replay.fold ~init:[] ~step:(fun buf (e : Event.t) ->
      if String.equal e.tag buf_store_tag then
        if e.src <> t then Ok buf
        else begin
          match int2 e.args with
          | Some bv -> Ok (buf @ [ bv ])
          | None -> Error "buf_store: bad arguments"
        end
      else if String.equal e.tag commit_tag then begin
        match int3 e.args with
        | Some (b, v, cpu) ->
          if cpu <> t then Ok buf
          else (
            match buf with
            | head :: rest when head = (b, v) -> Ok rest
            | _ -> Error "commit does not match the oldest buffered store")
        | None -> Error "commit: bad arguments"
      end
      else Ok buf)

let commit_event ~src t (b, v) =
  Event.make ~args:[ Value.int b; Value.int v; Value.int t ] src commit_tag

(* The events draining CPU [t]'s buffer in FIFO order.  [?src] is the
   mover recorded on the commits: the thread itself for RMW/fence drains
   (the default), the flusher pseudo-thread for environment drains. *)
let drain_events ?src t log =
  let src = Option.value ~default:t src in
  match replay_buffer t log with
  | Error _ -> Error "inconsistent store buffer"
  | Ok buf -> Ok (List.map (commit_event ~src t) buf)

(* aload: forward from the own buffer (youngest write wins), else memory. *)
let load_value t b log =
  match replay_buffer t log with
  | Error msg -> Error msg
  | Ok buf -> (
    match List.rev (List.filter (fun (b', _) -> b' = b) buf) with
    | (_, v) :: _ -> Ok v
    | [] -> replay_memory b log)

let astore_prim =
  ( Atomic.astore_tag,
    Layer.Shared
      (fun t args _log ->
        match int2 args with
        | Some _ ->
          Layer.Step
            {
              events = [ Event.make ~args t buf_store_tag ];
              ret = Value.unit;
              crit = Layer.Keep;
            }
        | None -> Layer.Stuck "astore: expected cell and value") )

let aload_prim =
  ( Atomic.aload_tag,
    Layer.Shared
      (fun t args log ->
        match args with
        | [ Value.Vint b ] -> (
          match load_value t b log with
          | Error msg -> Layer.Stuck msg
          | Ok v ->
            let ret = Value.int v in
            Layer.Step
              { events = [ Event.make ~args ~ret t Atomic.aload_tag ]; ret; crit = Layer.Keep })
        | _ -> Layer.Stuck "aload: expected a cell") )

(* RMW operations and fences drain the caller's buffer first (x86-TSO). *)
let draining tag arity ret_of update_args =
  ( tag,
    Layer.Shared
      (fun t args log ->
        if List.length args <> arity then
          Layer.Stuck (Printf.sprintf "%s: expected %d arguments" tag arity)
        else
          match drain_events t log with
          | Error msg -> Layer.Stuck msg
          | Ok commits -> (
            let log' = Log.append_all commits log in
            match args with
            | Value.Vint b :: _ -> (
              match replay_memory b log' with
              | Error msg -> Layer.Stuck msg
              | Ok old ->
                let ret = ret_of old in
                let ev = Event.make ~args:(update_args args) ~ret t tag in
                Layer.Step { events = commits @ [ ev ]; ret; crit = Layer.Keep })
            | _ -> Layer.Stuck (tag ^ ": expected a cell"))) )

let faa_prim = draining Atomic.faa_tag 2 Value.int (fun a -> a)
let xchg_prim = draining Atomic.xchg_tag 2 Value.int (fun a -> a)
let cas_prim = draining Atomic.cas_tag 3 Value.int (fun a -> a)

let mfence_prim =
  ( mfence_tag,
    Layer.Shared
      (fun t _args log ->
        match drain_events t log with
        | Error msg -> Layer.Stuck msg
        | Ok commits ->
          Layer.Step
            {
              events = commits @ [ Event.make t mfence_tag ];
              ret = Value.unit;
              crit = Layer.Keep;
            }) )

(* The buffer-flush scheduler move (DESIGN.md S29): commit the single
   oldest pending store of the named CPU, or block when its buffer is
   empty.  The game gives every real thread a flusher pseudo-thread
   looping on this primitive, so the DPOR explorer enumerates flush
   points like any other move; flushes of different CPUs touch different
   buffers and different (cell, cpu) commit pairs, so the first-int-arg
   independence rule lets them commute unless they hit the same cell. *)
let flush_prim =
  ( flush_tag,
    Layer.Shared
      (fun src args log ->
        match args with
        | [ Value.Vint cpu ] -> (
          match replay_buffer cpu log with
          | Error msg -> Layer.Stuck msg
          | Ok [] -> Layer.Block
          | Ok (oldest :: _) ->
            Layer.Step
              {
                events = [ commit_event ~src cpu oldest ];
                ret = Value.unit;
                crit = Layer.Keep;
              })
        | _ -> Layer.Stuck "flush: expected a cpu") )

(* pull/push are synchronisation primitives: they fence. *)
let fenced_pushpull (name, prim) =
  match prim with
  | Layer.Private _ -> name, prim
  | Layer.Shared sem ->
    ( name,
      Layer.Shared
        (fun t args log ->
          match drain_events t log with
          | Error msg -> Layer.Stuck msg
          | Ok commits -> (
            let log' = Log.append_all commits log in
            match sem t args log' with
            | Layer.Step s -> Layer.Step { s with events = commits @ s.events }
            | (Layer.Block | Layer.Stuck _ | Layer.Race _) as r -> r)) )

let layer () =
  Layer.make "Ltso"
    ([ aload_prim; astore_prim; faa_prim; xchg_prim; cas_prim; mfence_prim;
       flush_prim ]
    @ List.map fenced_pushpull Pushpull.prims
    @ [ Mx86.cpuid_prim ])

let machine_layer = function
  | Memory.Sc -> Mx86.layer ()
  | Memory.Tso -> layer ()

(* ------------------------------------------------------------------ *)
(* buffering-event erasure                                             *)
(* ------------------------------------------------------------------ *)

(* A TSO log as an SC log: each commit becomes the owning CPU's [astore]
   at the commit's log position (that is when the store became globally
   visible); the buffered store and the fences vanish.  Note this is the
   memory-order reading of the log, not its program-order reading — for
   a buffered program the two genuinely differ, which is the whole
   point of the mode. *)
let erase_event (e : Event.t) =
  if String.equal e.tag commit_tag then
    match int3 e.args with
    | Some (b, v, cpu) ->
      [ Event.make ~args:[ Value.int b; Value.int v ] cpu Atomic.astore_tag ]
    | None -> [ e ]
  else if String.equal e.tag buf_store_tag || String.equal e.tag mfence_tag then
    []
  else [ e ]

let erase_buffering log =
  Log.append_all (List.concat_map erase_event (Log.chronological log)) Log.empty

let erase_buffering_rel = Sim_rel.of_events "erase-buffering" erase_event

(* Object simulation relations translate implementation events away; the
   buffering machinery must go with them.  [Sim_rel.of_table] keeps
   unknown tags, so TSO certificates compose this in front of the object
   relation. *)
let drop_buffering =
  Sim_rel.of_events "drop-buffering" (fun e ->
      if
        String.equal e.tag buf_store_tag
        || String.equal e.tag commit_tag
        || String.equal e.tag mfence_tag
      then []
      else [ e ])

let under_memory memory rel =
  match (memory : Memory.t) with
  | Memory.Sc -> rel
  | Memory.Tso -> Sim_rel.compose drop_buffering rel

(* ------------------------------------------------------------------ *)
(* environment drains                                                  *)
(* ------------------------------------------------------------------ *)

let buffered_cpus log =
  List.sort_uniq Stdlib.compare
    (List.filter_map
       (fun (e : Event.t) ->
         if String.equal e.tag buf_store_tag then Some e.src else None)
       (Log.newest_first log))

(* Everything currently buffered, committed: CPUs in ascending order,
   each buffer FIFO, commits signed by the CPU's flusher pseudo-thread.
   Deterministic, so certificate runs replay bit-identically. *)
let drain_all log =
  List.concat_map
    (fun cpu ->
      match drain_events ~src:(Memory.flusher_tid cpu) cpu log with
      | Ok commits -> commits
      | Error _ -> [])
    (buffered_cpus log)

(* The certificate games have no scheduler to move flushers, only an
   environment context queried before every move ({!Simulation.drive},
   {!Machine.run_local}).  Wrapping a context with [with_drain] makes
   the environment commit every pending store at each query point —
   x86-TSO's progress guarantee that buffers drain eventually, without
   which a buffered spin (MCS waiting on its own forwarded store) never
   terminates. *)
let with_drain (env : Env_context.t) =
  Env_context.make
    (env.Env_context.name ^ "+drain")
    (fun ~focus log ->
      let drained = drain_all log in
      let more = env.Env_context.query ~focus (Log.append_all drained log) in
      drained @ more)

let drain_env = with_drain Env_context.empty

(* ------------------------------------------------------------------ *)
(* whole-log discipline checks                                         *)
(* ------------------------------------------------------------------ *)

let cells_mentioned log =
  List.sort_uniq Stdlib.compare
    (List.filter_map
       (fun (e : Event.t) ->
         match e.args with
         | Value.Vint b :: _
           when List.mem e.tag
                  [ Atomic.faa_tag; Atomic.xchg_tag; Atomic.cas_tag;
                    Atomic.astore_tag; Atomic.aload_tag; buf_store_tag; commit_tag ]
           ->
           Some b
         | _ -> None)
       (Log.chronological log))

(* Final memory of a TSO log includes any still-buffered stores drained in
   program order, matching what an SC run would have written. *)
let final_memory_tso threads log =
  let drained =
    List.fold_left
      (fun l (t, _) ->
        match drain_events t l with
        | Ok commits -> Log.append_all commits l
        | Error _ -> l)
      log threads
  in
  drained

(* Every buffer replays well-formed (each commit matched its FIFO head)
   and ends empty — the log discipline of a completed TSO game, whose
   flushers cannot all block until every buffer has drained. *)
let buffers_drained ~threads log =
  List.for_all
    (fun (t, _) -> match replay_buffer t log with Ok [] -> true | _ -> false)
    threads

let check_multicore_linking_sched ?max_steps ~threads sched =
  Mx86.check_multicore_linking_sched ?max_steps ~layer:(layer ())
    ~memory:Memory.Tso ~threads sched

(* Race-free programs on TSO behave as if sequentially consistent
   (Sewell et al., the result the paper leans on).  Executable form: run
   the same threads under the same (stateless!) scheduler on both
   machines — the TSO game with its flusher moves — and require
   identical thread results and identical final memory on every cell
   either run mentions.  [Sched.of_trace] values are stateful and must
   not be reused across two games; round-robin/random schedulers are
   safe. *)
let sc_equivalent_on ?(max_steps = 100_000) ~threads ~scheds () =
  let rec go n = function
    | [] -> Ok n
    | sched :: rest -> (
      let tso =
        Game.run
          (Game.config ~max_steps ~memory:Memory.Tso (layer ()) threads sched)
      in
      let sc =
        Game.run (Game.config ~max_steps (Mx86.layer ()) threads sched)
      in
      match tso.Game.status, sc.Game.status with
      | Game.All_done, Game.All_done ->
        let results_equal =
          List.length tso.Game.results = List.length sc.Game.results
          && List.for_all
               (fun (t, v) ->
                 match List.assoc_opt t sc.Game.results with
                 | Some v' -> Value.equal v v'
                 | None -> false)
               tso.Game.results
        in
        if not results_equal then
          Error
            (Printf.sprintf "results differ under %s" sched.Sched.name)
        else if not (buffers_drained ~threads tso.Game.log) then
          Error
            (Printf.sprintf "TSO game ended with a non-empty store buffer under %s"
               sched.Sched.name)
        else
          let cells =
            List.sort_uniq Stdlib.compare
              (cells_mentioned tso.Game.log @ cells_mentioned sc.Game.log)
          in
          let mem_equal =
            List.for_all
              (fun b ->
                match replay_memory b tso.Game.log, Atomic.replay_cell b sc.Game.log with
                | Ok v, Ok v' -> v = v'
                | _ -> false)
              cells
          in
          if mem_equal then go (n + 1) rest
          else Error (Printf.sprintf "final memory differs under %s" sched.Sched.name)
      | s1, s2 ->
        Error
          (Format.asprintf "statuses differ under %s: TSO %a, SC %a"
             sched.Sched.name Game.pp_status s1 Game.pp_status s2))
  in
  go 0 scheds
