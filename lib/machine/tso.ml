open Ccal_core

let buf_store_tag = "buf_store"
let commit_tag = "commit"
let mfence_tag = "mfence"

module Imap = Map.Make (Int)

let int2 = function
  | [ Value.Vint a; Value.Vint b ] -> Some (a, b)
  | _ -> None

(* Shared memory: commits plus the (always-drained) RMW operations. *)
let replay_memory_map : int Imap.t Replay.t =
  Replay.fold ~init:Imap.empty ~step:(fun m (e : Event.t) ->
      let get b = Option.value ~default:0 (Imap.find_opt b m) in
      match e.tag, e.args with
      | tag, [ Value.Vint b; Value.Vint v ] when String.equal tag commit_tag ->
        Ok (Imap.add b v m)
      | tag, [ Value.Vint b; Value.Vint d ] when String.equal tag Atomic.faa_tag ->
        Ok (Imap.add b (get b + d) m)
      | tag, [ Value.Vint b; Value.Vint v ] when String.equal tag Atomic.xchg_tag ->
        Ok (Imap.add b v m)
      | tag, [ Value.Vint b; Value.Vint expected; Value.Vint v ]
        when String.equal tag Atomic.cas_tag ->
        if get b = expected then Ok (Imap.add b v m) else Ok m
      | tag, [ Value.Vint b; Value.Vint v ] when String.equal tag Atomic.astore_tag ->
        Ok (Imap.add b v m)
      | _ -> Ok m)

let replay_memory b : int Replay.t =
 fun l ->
  Result.map
    (fun m -> Option.value ~default:0 (Imap.find_opt b m))
    (replay_memory_map l)

(* A CPU's store buffer: its buffered stores minus its commits (FIFO). *)
let replay_buffer t : (int * int) list Replay.t =
  Replay.fold ~init:[] ~step:(fun buf (e : Event.t) ->
      if e.src <> t then Ok buf
      else if String.equal e.tag buf_store_tag then
        match int2 e.args with
        | Some bv -> Ok (buf @ [ bv ])
        | None -> Error "buf_store: bad arguments"
      else if String.equal e.tag commit_tag then
        match buf, int2 e.args with
        | head :: rest, Some bv when head = bv -> Ok rest
        | _ -> Error "commit does not match the oldest buffered store"
      else Ok buf)

let drain_events t log =
  match replay_buffer t log with
  | Error _ -> Error "inconsistent store buffer"
  | Ok buf ->
    Ok
      (List.map
         (fun (b, v) ->
           Event.make ~args:[ Value.int b; Value.int v ] t commit_tag)
         buf)

(* aload: forward from the own buffer (youngest write wins), else memory. *)
let load_value t b log =
  match replay_buffer t log with
  | Error msg -> Error msg
  | Ok buf -> (
    match List.rev (List.filter (fun (b', _) -> b' = b) buf) with
    | (_, v) :: _ -> Ok v
    | [] -> replay_memory b log)

let astore_prim =
  ( Atomic.astore_tag,
    Layer.Shared
      (fun t args _log ->
        match int2 args with
        | Some _ ->
          Layer.Step
            {
              events = [ Event.make ~args t buf_store_tag ];
              ret = Value.unit;
              crit = Layer.Keep;
            }
        | None -> Layer.Stuck "astore: expected cell and value") )

let aload_prim =
  ( Atomic.aload_tag,
    Layer.Shared
      (fun t args log ->
        match args with
        | [ Value.Vint b ] -> (
          match load_value t b log with
          | Error msg -> Layer.Stuck msg
          | Ok v ->
            let ret = Value.int v in
            Layer.Step
              { events = [ Event.make ~args ~ret t Atomic.aload_tag ]; ret; crit = Layer.Keep })
        | _ -> Layer.Stuck "aload: expected a cell") )

(* RMW operations and fences drain the caller's buffer first (x86-TSO). *)
let draining tag arity ret_of update_args =
  ( tag,
    Layer.Shared
      (fun t args log ->
        if List.length args <> arity then
          Layer.Stuck (Printf.sprintf "%s: expected %d arguments" tag arity)
        else
          match drain_events t log with
          | Error msg -> Layer.Stuck msg
          | Ok commits -> (
            let log' = Log.append_all commits log in
            match args with
            | Value.Vint b :: _ -> (
              match replay_memory b log' with
              | Error msg -> Layer.Stuck msg
              | Ok old ->
                let ret = ret_of old in
                let ev = Event.make ~args:(update_args args) ~ret t tag in
                Layer.Step { events = commits @ [ ev ]; ret; crit = Layer.Keep })
            | _ -> Layer.Stuck (tag ^ ": expected a cell"))) )

let faa_prim = draining Atomic.faa_tag 2 Value.int (fun a -> a)
let xchg_prim = draining Atomic.xchg_tag 2 Value.int (fun a -> a)
let cas_prim = draining Atomic.cas_tag 3 Value.int (fun a -> a)

let mfence_prim =
  ( mfence_tag,
    Layer.Shared
      (fun t _args log ->
        match drain_events t log with
        | Error msg -> Layer.Stuck msg
        | Ok commits ->
          Layer.Step
            {
              events = commits @ [ Event.make t mfence_tag ];
              ret = Value.unit;
              crit = Layer.Keep;
            }) )

(* pull/push are synchronisation primitives: they fence. *)
let fenced_pushpull (name, prim) =
  match prim with
  | Layer.Private _ -> name, prim
  | Layer.Shared sem ->
    ( name,
      Layer.Shared
        (fun t args log ->
          match drain_events t log with
          | Error msg -> Layer.Stuck msg
          | Ok commits -> (
            let log' = Log.append_all commits log in
            match sem t args log' with
            | Layer.Step s -> Layer.Step { s with events = commits @ s.events }
            | (Layer.Block | Layer.Stuck _ | Layer.Race _) as r -> r)) )

let layer () =
  Layer.make "Ltso"
    ([ aload_prim; astore_prim; faa_prim; xchg_prim; cas_prim; mfence_prim ]
    @ List.map fenced_pushpull Pushpull.prims
    @ [ Mx86.cpuid_prim ])

let erase_buffering =
  Sim_rel.of_events "erase-buffering" (fun e ->
      if String.equal e.tag commit_tag then
        [ { e with Event.tag = Atomic.astore_tag } ]
      else if String.equal e.tag buf_store_tag || String.equal e.tag mfence_tag
      then []
      else [ e ])

let cells_mentioned log =
  List.sort_uniq Stdlib.compare
    (List.filter_map
       (fun (e : Event.t) ->
         match e.args with
         | Value.Vint b :: _
           when List.mem e.tag
                  [ Atomic.faa_tag; Atomic.xchg_tag; Atomic.cas_tag;
                    Atomic.astore_tag; Atomic.aload_tag; buf_store_tag; commit_tag ]
           ->
           Some b
         | _ -> None)
       (Log.chronological log))

(* Final memory of a TSO log includes any still-buffered stores drained in
   program order, matching what an SC run would have written. *)
let final_memory_tso threads log =
  let drained =
    List.fold_left
      (fun l (t, _) ->
        match drain_events t l with
        | Ok commits -> Log.append_all commits l
        | Error _ -> l)
      log threads
  in
  drained

let sc_equivalent_on ?(max_steps = 100_000) ~threads ~scheds () =
  let rec go n = function
    | [] -> Ok n
    | sched :: rest -> (
      let tso =
        Game.run (Game.config ~max_steps (layer ()) threads sched)
      in
      let sc =
        Game.run (Game.config ~max_steps (Mx86.layer ()) threads sched)
      in
      match tso.Game.status, sc.Game.status with
      | Game.All_done, Game.All_done ->
        let results_equal =
          List.length tso.Game.results = List.length sc.Game.results
          && List.for_all
               (fun (t, v) ->
                 match List.assoc_opt t sc.Game.results with
                 | Some v' -> Value.equal v v'
                 | None -> false)
               tso.Game.results
        in
        if not results_equal then
          Error
            (Printf.sprintf "results differ under %s" sched.Sched.name)
        else
          let tso_final = final_memory_tso threads tso.Game.log in
          let cells =
            List.sort_uniq Stdlib.compare
              (cells_mentioned tso.Game.log @ cells_mentioned sc.Game.log)
          in
          let mem_equal =
            List.for_all
              (fun b ->
                match replay_memory b tso_final, Atomic.replay_cell b sc.Game.log with
                | Ok v, Ok v' -> v = v'
                | _ -> false)
              cells
          in
          if mem_equal then go (n + 1) rest
          else Error (Printf.sprintf "final memory differs under %s" sched.Sched.name)
      | s1, s2 ->
        Error
          (Format.asprintf "statuses differ under %s: TSO %a, SC %a"
             sched.Sched.name Game.pp_status s1 Game.pp_status s2))
  in
  go 0 scheds
