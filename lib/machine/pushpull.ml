open Ccal_core

type ownership =
  | Free
  | Owned of Event.tid

let pull_tag = "pull"
let push_tag = "push"

module Imap = Map.Make (Int)

(* Replay the value/ownership of every location, getting stuck on races
   exactly as Fig. 8's [Rshared]. *)
let replay_map : (Value.t * ownership) Imap.t Replay.t =
  Replay.fold ~init:Imap.empty ~step:(fun m (e : Event.t) ->
      let current b =
        match Imap.find_opt b m with
        | Some st -> st
        | None -> Value.int 0, Free
      in
      if String.equal e.tag pull_tag then
        match e.args with
        | [ Value.Vint b ] -> (
          match current b with
          | v, Free -> Ok (Imap.add b (v, Owned e.src) m)
          | _, Owned owner ->
            Error
              (Printf.sprintf "race: CPU %d pulls location %d owned by CPU %d"
                 e.src b owner))
        | _ -> Error "pull: bad arguments"
      else if String.equal e.tag push_tag then
        match e.args with
        | [ Value.Vint b; v ] -> (
          match current b with
          | _, Owned owner when owner = e.src -> Ok (Imap.add b (v, Free) m)
          | _, Owned owner ->
            Error
              (Printf.sprintf "race: CPU %d pushes location %d owned by CPU %d"
                 e.src b owner)
          | _, Free ->
            Error (Printf.sprintf "race: CPU %d pushes free location %d" e.src b))
        | _ -> Error "push: bad arguments"
      else Ok m)

let replay_loc b : (Value.t * ownership) Replay.t =
 fun l ->
  match replay_map l with
  | Error _ as e -> e
  | Ok m -> (
    match Imap.find_opt b m with
    | Some st -> Ok st
    | None -> Ok (Value.int 0, Free))

let replay_all : (int * (Value.t * ownership)) list Replay.t =
 fun l -> Result.map Imap.bindings (replay_map l)

let race_free l = Replay.well_formed replay_map l

(* The prims inspect the ownership state of the location {e before}
   appending their own event: a pre-existing replay error means the log was
   already ill-formed (ordinary stuckness), while an ownership conflict
   introduced by this very call is a data race ([Layer.Race]) — the checkers
   classify on that constructor instead of scanning message strings. *)
let pull_prim =
  ( pull_tag,
    Layer.Shared
      (fun c args log ->
        match args with
        | [ Value.Vint b ] -> (
          match replay_loc b log with
          | Error msg -> Layer.Stuck msg
          | Ok (_, Owned owner) ->
            Layer.Race
              (Printf.sprintf "race: CPU %d pulls location %d owned by CPU %d"
                 c b owner)
          | Ok (v, Free) ->
            let ev = Event.make ~args ~ret:v c pull_tag in
            Layer.Step { events = [ ev ]; ret = v; crit = Layer.Enter })
        | _ -> Layer.Stuck "pull: expected one location argument") )

let push_prim =
  ( push_tag,
    Layer.Shared
      (fun c args log ->
        match args with
        | [ Value.Vint b; _ ] -> (
          match replay_loc b log with
          | Error msg -> Layer.Stuck msg
          | Ok (_, Owned owner) when owner = c ->
            let ev = Event.make ~args c push_tag in
            Layer.Step { events = [ ev ]; ret = Value.unit; crit = Layer.Exit }
          | Ok (_, Owned owner) ->
            Layer.Race
              (Printf.sprintf "race: CPU %d pushes location %d owned by CPU %d"
                 c b owner)
          | Ok (_, Free) ->
            Layer.Race (Printf.sprintf "race: CPU %d pushes free location %d" c b))
        | _ -> Layer.Stuck "push: expected location and value arguments") )

let prims = [ pull_prim; push_prim ]
