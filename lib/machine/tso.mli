(** The x86-TSO hardware machine — the buffered memory mode.

    Sec. 6 (Limitations): "Our concurrent machine models assume strong
    sequential consistency for atomic primitives.  Previous work
    demonstrated that race-free programs on a TSO model do indeed behave
    as if executing on a sequentially consistent machine ... we believe
    extending our work from SC to TSO is promising."

    This module implements that extension as a first-class memory mode
    ({!Ccal_core.Memory}).  Plain stores go into a per-CPU FIFO store
    buffer (a [buf_store] event); loads forward from the own buffer
    (youngest matching write) before reading memory; read-modify-write
    primitives ([faa]/[xchg]/[cas]), the explicit [mfence] and the
    push/pull synchronisation primitives drain the caller's buffer first
    (each drained write is a [commit] event) — the essential rules of
    x86-TSO.  Everything is replayed from the log, so the buffers are
    never stored.

    Buffer flush is an explicit scheduler move: the layer exports a
    [flush] primitive ({!Ccal_core.Memory.flush_tag}) that commits the
    single oldest pending store of a CPU or blocks when its buffer is
    empty, and games configured with [~memory:Tso] give every thread a
    flusher pseudo-thread looping on it
    ({!Ccal_core.Game.flusher_threads}).  The DPOR explorer therefore
    enumerates flush points like any other move; flushes of different
    CPUs commute (different buffers, different commit objects), flushes
    of the same cell conflict with same-cell accesses.

    Checks built on top (see the litmus suite in the tests and
    {!Ccal_verify.Litmus}):
    {ul
    {- the store-buffering litmus test distinguishes the modes: the
       outcome [r1 = r2 = 0] is reachable on TSO but not on SC;}
    {- with an [mfence] between the store and the load, TSO re-converges
       with SC;}
    {- push/pull-disciplined (race-free) programs have the same behaviour
       sets on both machines ({!sc_equivalent_on}), the Sewell et al.
       result the paper leans on.}} *)

open Ccal_core

val buf_store_tag : string
(** A store that entered the caller's store buffer. *)

val commit_tag : string
(** A buffered store reaching shared memory.  Arguments are
    [(cell, value, cpu)]: the cell first so the DPOR first-int-arg
    convention treats same-cell commits/accesses as dependent, the
    owning cpu last because the event's [src] is the mover (a flusher
    pseudo-thread for flush moves, the thread itself for RMW/fence
    drains). *)

val mfence_tag : string

val flush_tag : string
(** = {!Ccal_core.Memory.flush_tag}. *)

val replay_memory : int -> int Replay.t
(** Value of cell [b] in shared memory: [commit] events plus the
    SC operations ([faa]/[xchg]/[cas]/[astore] of {!Atomic}). *)

val replay_buffer : Event.tid -> (int * int) list Replay.t
(** The pending (cell, value) writes of a CPU's store buffer, oldest
    first.  Errors if some commit did not match the FIFO head — the
    store-buffer discipline every well-formed TSO log satisfies. *)

val drain_events :
  ?src:Event.tid -> Event.tid -> Log.t -> (Event.t list, string) result
(** The [commit] events draining CPU [t]'s buffer in FIFO order.
    [?src] (default [t]) is the mover recorded on the commits. *)

val load_value : Event.tid -> int -> Log.t -> (int, string) result
(** What CPU [t] reads from cell [b]: own-buffer forwarding (youngest
    matching buffered write) falling back to shared memory. *)

val flush_prim : string * Layer.prim
(** The buffer-flush scheduler move: commit the oldest pending store of
    the cpu named by the argument, or block when its buffer is empty. *)

val layer : unit -> Layer.t
(** The TSO hardware layer [Ltso]: [aload]/[astore]/[faa]/[xchg]/[cas]
    with store-buffer semantics, [mfence], [flush], plus the push/pull
    primitives (fenced: they drain first) and [cpuid]. *)

val machine_layer : Memory.t -> Layer.t
(** The hardware layer of a memory mode: {!Mx86.layer} for [Sc],
    {!layer} for [Tso]. *)

val erase_buffering : Log.t -> Log.t
(** Read a TSO log as an SC log: each [commit (b, v, cpu)] becomes cpu's
    [astore (b, v)] at the commit's position (memory order, where the
    store became globally visible); [buf_store] and [mfence] vanish.
    The litmus runner extracts outcomes from erased logs so one outcome
    function serves both modes. *)

val erase_buffering_rel : Sim_rel.t
(** {!erase_buffering} as a simulation relation. *)

val drop_buffering : Sim_rel.t
(** Erase [buf_store]/[commit]/[mfence] outright.  Object simulation
    relations built with {!Sim_rel.of_table} keep unknown tags, so TSO
    certificates compose this in front of the object relation. *)

val under_memory : Memory.t -> Sim_rel.t -> Sim_rel.t
(** [under_memory m r] is [r] under [Sc] and [drop_buffering ∘ r] under
    [Tso] — the uniform way call sites adapt an object relation to the
    memory mode. *)

val drain_all : Log.t -> Event.t list
(** Commit everything currently buffered: CPUs in ascending order, each
    buffer FIFO, commits signed by the CPU's flusher pseudo-thread.
    Deterministic, so certificate runs replay bit-identically. *)

val with_drain : Env_context.t -> Env_context.t
(** Wrap an environment context so it first commits every pending store
    at each query point (then queries the wrapped context on the drained
    log).  This is x86-TSO's progress guarantee — buffers drain
    eventually — without which a buffered spin (e.g. MCS waiting on its
    own forwarded store) never terminates in a certificate game. *)

val drain_env : Env_context.t
(** [with_drain Env_context.empty]. *)

val buffers_drained :
  threads:(Event.tid * 'a) list -> Log.t -> bool
(** Every listed CPU's buffer replays well-formed and ends empty — the
    log discipline of a completed TSO game. *)

val cells_mentioned : Log.t -> int list
(** The atomic cells a log touches (sorted, distinct). *)

val final_memory_tso : (Event.tid * 'a) list -> Log.t -> Log.t
(** The log extended with each listed CPU's pending stores committed —
    the memory an SC run would have produced, for final-state
    comparisons. *)

val check_multicore_linking_sched :
  ?max_steps:int ->
  threads:(Event.tid * Prog.t) list ->
  Sched.t ->
  (unit, string) result
(** Theorem 3.1 over the TSO machine: {!Mx86.check_multicore_linking_sched}
    with [~layer:(layer ())] and [~memory:Tso].  The workload must be
    commit-free (no plain stores) since the erased log is replayed
    move-for-move; storeful workloads are covered by the store-buffer
    discipline checks ({!replay_buffer}, {!buffers_drained}) instead. *)

val sc_equivalent_on :
  ?max_steps:int ->
  threads:(Event.tid * Prog.t) list ->
  scheds:Sched.t list ->
  unit ->
  (int, string) result
(** Run the same threads on the TSO machine (with [~memory:Tso], so
    flusher moves are in play) and on the SC machine under each
    scheduler and require identical thread results, drained buffers and
    identical final memory on every mentioned cell — the executable form
    of "race-free programs on TSO behave as if executing on a
    sequentially consistent machine".  Schedulers must be stateless
    (round-robin/random); {!Sched.of_trace} values are single-use. *)
