(** The litmus conformance corpus: the classic x86 memory-model tests as
    games over the bare machine layer.

    Each test is a small multi-threaded program over cells [x = 0] and
    [y = 1] together with its {e expected} outcome sets under each memory
    mode, hand-derived from the x86-TSO abstract machine (Owens, Sarkar,
    Sewell — "A better x86 memory model: x86-TSO").  The runner
    ({!Ccal_verify.Litmus}) enumerates the {e reachable} outcomes with the
    DPOR explorer and pins the two sets equal: under [Tso] every
    x86-allowed outcome must be reached (the store buffers are not
    decorative) and nothing more (they are not broken); under [Sc] the
    TSO-only outcomes must be unreachable.

    Only SB and R gain TSO-only outcomes — store→load is the sole
    reordering a FIFO store buffer with forwarding exhibits — so the
    corpus also pins the negative space: MP, LB, S, 2+2W and IRIW
    (multi-copy atomicity) must coincide with SC.  The [+mfence] variants
    of SB and R pin that a fence between the store and the load
    re-converges the TSO set onto the SC set. *)

open Ccal_core

type test = {
  name : string;  (** conventional litmus name, e.g. ["SB"], ["SB+mfence"] *)
  fenced : bool;
  threads : (Event.tid * Prog.t) list;
  depth : int;
      (** DPOR exploration depth covering every complete game, including
          flusher commits *)
  observe : Game.outcome -> (int list, string) result;
      (** extract the outcome tuple from a completed game: registers from
          thread results, final memory through {!Tso.erase_buffering} —
          safe because a completed TSO game has drained buffers *)
  sc : int list list;  (** expected outcome set under [Sc], sorted *)
  tso : int list list;  (** expected outcome set under [Tso], sorted *)
}

val tests : test list
(** SB, SB+mfence, MP, LB, S, R, R+mfence, 2+2W, IRIW. *)

val find : string -> test option

val expected : Memory.t -> test -> int list list

val pp_outcome : Format.formatter -> int list -> unit
