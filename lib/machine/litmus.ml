open Ccal_core

type test = {
  name : string;
  fenced : bool;
  threads : (Event.tid * Prog.t) list;
  depth : int;
  observe : Game.outcome -> (int list, string) result;
  sc : int list list;
  tso : int list list;
}

(* Cells: x = 0, y = 1; registers are thread results. *)
let x = 0
let y = 1

let st b v = Prog.call Atomic.astore_tag [ Value.int b; Value.int v ]
let ld b = Prog.call Atomic.aload_tag [ Value.int b ]
let fence = Prog.call Atomic.mfence_tag []

(* st b1 v1; (mfence;) r := ld b2; ret r *)
let st_then_ld ?(fenced = false) (b1, v1) b2 =
  let tail = Prog.bind (ld b2) Prog.ret in
  Prog.seq (st b1 v1) (if fenced then Prog.seq fence tail else tail)

(* r1 := ld b1; r2 := ld b2; ret r1*10 + r2 (registers are 0..2) *)
let two_loads b1 b2 =
  Prog.bind (ld b1) (fun r1 ->
      Prog.bind (ld b2) (fun r2 ->
          match r1, r2 with
          | Value.Vint a, Value.Vint b -> Prog.ret (Value.int ((a * 10) + b))
          | _ -> Prog.ret (Value.int (-1))))

let stores pairs = Prog.seq_all (List.map (fun (b, v) -> st b v) pairs)

(* Observations.  Registers come from thread results; final memory is
   read from the log through {!Tso.erase_buffering}, so the same
   extraction serves both modes — an erased TSO log reads as the SC log
   of its memory order, and a completed TSO game has drained buffers
   (the flushers cannot all block otherwise). *)
let result i (o : Game.outcome) =
  match List.assoc_opt i o.Game.results with
  | Some (Value.Vint n) -> Ok n
  | Some _ -> Error (Printf.sprintf "thread %d returned a non-integer" i)
  | None -> Error (Printf.sprintf "thread %d has no result" i)

let packed i o = Result.map (fun n -> [ n / 10; n mod 10 ]) (result i o)
let reg i o = Result.map (fun n -> [ n ]) (result i o)

let final b (o : Game.outcome) =
  Result.map
    (fun n -> [ n ])
    (Atomic.replay_cell b (Tso.erase_buffering o.Game.log))

let obs parts o =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | f :: rest -> (
      match f o with Ok ns -> go (ns :: acc) rest | Error _ as e -> e)
  in
  go [] parts

let sorted = List.sort compare

(* Outcome tables, hand-derived from the x86-TSO abstract machine (Owens
   et al.); registers in the fixed order of the [observe] list.  Only SB
   and R gain TSO-only outcomes: store→load is the sole reordering a
   FIFO store buffer with forwarding exhibits, and TSO is multi-copy
   atomic, so MP/LB/S/2+2W/IRIW coincide with SC. *)

let sb ~fenced =
  let sc = sorted [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ] in
  {
    name = (if fenced then "SB+mfence" else "SB");
    fenced;
    threads =
      [ 1, st_then_ld ~fenced (x, 1) y; 2, st_then_ld ~fenced (y, 1) x ];
    depth = 12;
    observe = obs [ reg 1; reg 2 ];
    sc;
    tso = (if fenced then sc else sorted ([ 0; 0 ] :: sc));
  }

let mp =
  let both = sorted [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ] in
  {
    name = "MP";
    fenced = false;
    threads =
      [ 1, Prog.seq (stores [ x, 1; y, 1 ]) (Prog.ret (Value.int 0));
        2, two_loads y x ];
    depth = 14;
    observe = obs [ packed 2 ];
    sc = both;
    tso = both (* FIFO buffers preserve store→store: MP is TSO-correct *);
  }

let lb =
  let both = sorted [ [ 0; 0 ]; [ 1; 0 ]; [ 0; 1 ] ] in
  let side b1 b2 = Prog.bind (ld b1) (fun r -> Prog.seq (st b2 1) (Prog.ret r)) in
  {
    name = "LB";
    fenced = false;
    threads = [ 1, side y x; 2, side x y ];
    depth = 12;
    observe = obs [ reg 1; reg 2 ];
    sc = both;
    tso = both (* loads are never delayed past later operations *);
  }

let s =
  let both = sorted [ [ 1; 1 ]; [ 0; 2 ]; [ 0; 1 ] ] in
  {
    name = "S";
    fenced = false;
    threads =
      [ 1, Prog.seq (stores [ x, 2; y, 1 ]) (Prog.ret (Value.int 0));
        2, Prog.bind (ld y) (fun r -> Prog.seq (st x 1) (Prog.ret r)) ];
    depth = 14;
    observe = obs [ reg 2; final x ];
    sc = both;
    tso = both;
  }

let r ~fenced =
  let sc = sorted [ [ 1; 2 ]; [ 0; 1 ]; [ 1; 1 ] ] in
  {
    name = (if fenced then "R+mfence" else "R");
    fenced;
    threads =
      [ 1, Prog.seq (stores [ x, 1; y, 1 ]) (Prog.ret (Value.int 0));
        2, st_then_ld ~fenced (y, 2) x ];
    depth = 14;
    observe = obs [ reg 2; final y ];
    sc;
    tso = (if fenced then sc else sorted ([ 0; 2 ] :: sc));
  }

let two_plus_two_w =
  let both = sorted [ [ 2; 1 ]; [ 1; 2 ]; [ 2; 2 ] ] in
  {
    name = "2+2W";
    fenced = false;
    threads =
      [ 1, Prog.seq (stores [ x, 1; y, 2 ]) (Prog.ret (Value.int 0));
        2, Prog.seq (stores [ y, 1; x, 2 ]) (Prog.ret (Value.int 0)) ];
    depth = 14;
    observe = obs [ final x; final y ];
    sc = both;
    tso = both (* the (1,1) cycle needs store→store reordering *);
  }

let iriw =
  (* all 16 register vectors except (1,0,1,0): the two readers may not
     disagree on the order of the independent writes — TSO is multi-copy
     atomic, so this is forbidden under both modes. *)
  let all =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            List.concat_map
              (fun c -> List.map (fun d -> [ a; b; c; d ]) [ 0; 1 ])
              [ 0; 1 ])
          [ 0; 1 ])
      [ 0; 1 ]
  in
  let both = sorted (List.filter (fun o -> o <> [ 1; 0; 1; 0 ]) all) in
  {
    name = "IRIW";
    fenced = false;
    threads =
      [ 1, Prog.seq (st x 1) (Prog.ret (Value.int 0));
        2, Prog.seq (st y 1) (Prog.ret (Value.int 0));
        3, two_loads x y;
        4, two_loads y x ];
    depth = 18;
    observe = obs [ packed 3; packed 4 ];
    sc = both;
    tso = both;
  }

let tests =
  [ sb ~fenced:false; sb ~fenced:true; mp; lb; s; r ~fenced:false;
    r ~fenced:true; two_plus_two_w; iriw ]

let find name = List.find_opt (fun t -> String.equal t.name name) tests

let expected (memory : Memory.t) t =
  match memory with Memory.Sc -> t.sc | Memory.Tso -> t.tso

let pp_outcome fmt o =
  Format.fprintf fmt "(%s)"
    (String.concat "," (List.map string_of_int o))
