open Ccal_core

let cpuid_prim =
  ("cpuid", Layer.Private (fun c _args abs -> Ok (abs, Value.int c)))

let layer () =
  Layer.make "Lx86" (Atomic.prims @ Pushpull.prims @ [ cpuid_prim ])

let behaviors ?max_steps ~threads ~scheds () =
  Game.behaviors ?max_steps ~log_switches:true (layer ()) threads scheds

let erase_switches =
  Sim_rel.of_events "erase-switches" (fun e ->
      if Event.is_switch e then [] else [ e ])

(* [?layer]/[?memory] generalize the linking check to other hardware
   machines over the same game semantics — {!Tso} passes its buffered
   layer and [Memory.Tso] so flush moves are part of the play.  The
   replayed strategies must reproduce the erased log verbatim, so the
   client workload must be commit-free under TSO (no plain stores);
   store-buffer discipline for storeful workloads is checked separately
   ({!Tso.replay_buffer} well-formedness). *)
let check_multicore_linking_sched ?max_steps ?layer:l ?(memory = Memory.default)
    ~threads sched =
  Probe.span "mx86.linking" @@ fun () ->
  let l = match l with Some l -> l | None -> layer () in
  let outcome =
    Game.run (Game.config ?max_steps ~log_switches:true ~memory l threads sched)
  in
  match outcome.Game.status with
  | Game.Stuck (i, _, msg) ->
    Error (Printf.sprintf "Mx86 run stuck at CPU %d: %s" i msg)
  | Game.Deadlock _ | Game.Out_of_fuel | Game.Cancelled ->
    Error
      (Printf.sprintf "Mx86 run did not complete under %s" sched.Sched.name)
  | Game.All_done -> (
    let erased = Sim_rel.apply erase_switches outcome.Game.log in
    match Refinement.replay_multi ?max_steps l threads erased with
    | Ok _ -> Ok ()
    | Error (reason, _) ->
      Error
        (Printf.sprintf "multicore linking failed under %s: %s"
           sched.Sched.name reason))

let check_multicore_linking ?max_steps ~threads ~scheds () =
  let rec go n = function
    | [] -> Ok n
    | sched :: rest -> (
      match check_multicore_linking_sched ?max_steps ~threads sched with
      | Ok () -> go (n + 1) rest
      | Error _ as e -> e)
  in
  go 0 scheds
