(** Atomic cells — the x86 atomic instructions of the bottom layer.

    The primitives of the lowest interface [Lx86] are "implemented using
    x86 atomic instructions" (Sec. 2).  We model the hardware's atomic
    read-modify-write operations on integer cells; each operation appends
    one event, and the cell's current value is reconstructed from the log
    by the replay function {!replay_cell} — shared state is never stored
    (Sec. 2, "replay functions"). *)

(** Event tags: fetch-and-add (the ticket lock's [FAI]), atomic exchange
    (used by the MCS lock), compare-and-swap, atomic load/store. *)

val faa_tag : string

val xchg_tag : string
val cas_tag : string
val aload_tag : string
val astore_tag : string

val mfence_tag : string
(** Memory fence.  A no-op marker event on the SC machine; {!Tso} gives
    the same tag its store-buffer-draining semantics, so fenced programs
    run unchanged under both memory modes. *)

val replay_cell : int -> int Ccal_core.Replay.t
(** Current value of atomic cell [b] (cells start at 0). *)

val faa : string * Ccal_core.Layer.prim
(** [faa(b, d)]: atomically add [d] to cell [b]; returns the old value. *)

val xchg : string * Ccal_core.Layer.prim
(** [xchg(b, v)]: atomically set cell [b] to [v]; returns the old value. *)

val cas : string * Ccal_core.Layer.prim
(** [cas(b, expected, new)]: if cell [b] equals [expected], set it to
    [new]; returns the old value either way (callers compare against
    [expected] to detect success). *)

val aload : string * Ccal_core.Layer.prim
(** [aload(b)]: atomic read. *)

val astore : string * Ccal_core.Layer.prim
(** [astore(b, v)]: atomic write; returns unit. *)

val mfence : string * Ccal_core.Layer.prim
(** [mfence()]: appends an [mfence] event; no state change under SC. *)

val prims : (string * Ccal_core.Layer.prim) list
