open Ccal_core

let faa_tag = "faa"
let xchg_tag = "xchg"
let cas_tag = "cas"
let aload_tag = "aload"
let astore_tag = "astore"
let mfence_tag = "mfence"

(* Specialized single-cell replay: the map-per-call fold this replaces
   never errors and events
   on other cells cannot change cell [b], so folding one integer through
   only the matching events yields the same value as building the whole
   map — without allocating it.  Every atomic primitive calls this once
   per move, so the map-free fold is the difference between ~100 KB and a
   few words of allocation per replayed schedule. *)
let replay_cell b : int Replay.t =
  Replay.fold ~init:0 ~step:(fun v (e : Event.t) ->
      match e.tag, e.args with
      | tag, [ Value.Vint b'; Value.Vint d ]
        when b' = b && String.equal tag faa_tag ->
        Ok (v + d)
      | tag, [ Value.Vint b'; Value.Vint x ]
        when b' = b && String.equal tag xchg_tag ->
        Ok x
      | tag, [ Value.Vint b'; Value.Vint expected; Value.Vint x ]
        when b' = b && String.equal tag cas_tag ->
        if v = expected then Ok x else Ok v
      | tag, [ Value.Vint b'; Value.Vint x ]
        when b' = b && String.equal tag astore_tag ->
        Ok x
      | _ -> Ok v)

(* An atomic operation computes its return value from the replayed state of
   the log it extends. *)
let atomic_prim tag arity ret_of =
  ( tag,
    Layer.Shared
      (fun c args log ->
        if List.length args <> arity then
          Layer.Stuck (Printf.sprintf "%s: expected %d arguments" tag arity)
        else
          match args with
          | Value.Vint b :: _ -> (
            match replay_cell b log with
            | Error msg -> Layer.Stuck msg
            | Ok old ->
              let ret = ret_of old in
              let ev = Event.make ~args ~ret c tag in
              Layer.Step { events = [ ev ]; ret; crit = Layer.Keep })
          | _ -> Layer.Stuck (tag ^ ": expected a cell location")) )

let faa = atomic_prim faa_tag 2 Value.int
let xchg = atomic_prim xchg_tag 2 Value.int
let cas = atomic_prim cas_tag 3 Value.int
let aload = atomic_prim aload_tag 1 Value.int
let astore = atomic_prim astore_tag 2 (fun _ -> Value.unit)

(* On the SC machine every store is already globally visible, so the
   fence only marks the log.  It exists here so fenced programs (the
   litmus suite's [_fenced] variants) run unchanged under both memory
   modes; {!Tso} gives the same tag its draining semantics. *)
let mfence =
  ( mfence_tag,
    Layer.Shared
      (fun c _args _log ->
        Layer.Step
          { events = [ Event.make c mfence_tag ]; ret = Value.unit; crit = Layer.Keep }) )

let prims = [ faa; xchg; cas; aload; astore; mfence ]
