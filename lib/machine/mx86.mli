(** The multiprocessor machine model [Mx86] (Sec. 3.1).

    The machine state is the tuple [(c, fρ, m, a, l)] of Fig. 7: current
    CPU, per-CPU private states, shared memory, abstract state and global
    log.  In this reproduction the per-CPU private state lives in the layer
    machine's thread states ({!Ccal_core.Machine.thread_state}), the shared
    memory and abstract state are replayed from the log (push/pull and
    atomic cells), and the two transition classes — program transitions
    and hardware scheduling — are realized by the whole-machine game with
    scheduling events recorded in the log ([log_switches]).

    {!check_multicore_linking} is the tested analogue of Theorem 3.1
    (Multicore Linking): every behaviour of the hardware machine (with
    arbitrary hardware scheduling events) refines the CPU-local layer
    interface [Lx86[D]], via the relation that erases scheduling events. *)

val cpuid_prim : string * Ccal_core.Layer.prim
(** [cpuid()]: private primitive returning the calling CPU's id. *)

val layer : unit -> Ccal_core.Layer.t
(** The bottom interface [Lx86]: atomic cells ({!Atomic.prims}), push/pull
    shared memory ({!Pushpull.prims}) and [cpuid]. *)

val behaviors :
  ?max_steps:int ->
  threads:(Ccal_core.Event.tid * Ccal_core.Prog.t) list ->
  scheds:Ccal_core.Sched.t list ->
  unit ->
  Ccal_core.Game.outcome list
(** [⟦P⟧_{Mx86}]: runs with hardware scheduling recorded as [switch]
    events, as the hardware machine does. *)

val erase_switches : Ccal_core.Sim_rel.t
(** The simulation relation of Theorem 3.1: erase scheduling events. *)

val check_multicore_linking_sched :
  ?max_steps:int ->
  ?layer:Ccal_core.Layer.t ->
  ?memory:Ccal_core.Memory.t ->
  threads:(Ccal_core.Event.tid * Ccal_core.Prog.t) list ->
  Ccal_core.Sched.t ->
  (unit, string) result
(** The per-schedule body of {!check_multicore_linking}.  Pure up to its
    own game state, so the parallel checkers ({!Ccal_verify.Stack}) can
    evaluate schedules on any domain.  [?layer] (default {!layer}) and
    [?memory] (default [Sc]) generalize the check to other hardware
    machines over the same game semantics — {!Tso} passes its buffered
    layer so flush moves become part of the play; the client workload
    must then be commit-free (no plain stores), since the erased log is
    replayed move-for-move against the same layer. *)

val check_multicore_linking :
  ?max_steps:int ->
  threads:(Ccal_core.Event.tid * Ccal_core.Prog.t) list ->
  scheds:Ccal_core.Sched.t list ->
  unit ->
  (int, string) result
(** For each scheduler: run [Mx86], erase scheduling events, and replay the
    resulting log on the machine over [Lx86[D]] (picking the induced
    scheduler).  Returns the number of schedules checked. *)
