(** The functional map specification — the linearizability target of the
    kv serving stack (DESIGN.md S28).

    An atomic key-value map over integer keys and values, in the style of
    verified-betrfs' [MapSpec.s.dfy]: every operation is one shared event
    whose return value is computed by replaying the overlay log.  The
    sharded hash table ({!Hashtable}) and the block cache
    ({!Block_cache}) are both certified as contextual refinements of this
    layer; linearizability follows (Sec. 7 of the paper). *)

open Ccal_core

val get_tag : string
val put_tag : string
val del_tag : string
val resize_tag : string

val absent : int
(** Sentinel returned for a key that is not in the map ([-1]).  Workload
    values must be non-negative. *)

val lookup : int -> Log.t -> int
(** Current value of a key: allocation-light newest-first scan with early
    exit — the first [put]/[del] touching the key decides (the PR 6
    replay idiom; no intermediate map is built). *)

val shard_count : default:int -> Log.t -> int
(** Current shard count: the newest [resize] event's argument, or
    [default] when none. *)

module Imap : Map.S with type key = int

val replay_map : int Imap.t Replay.t
(** Whole-map replay (chronological fold) — the reference oracle the
    tests compare {!lookup} against. *)

val layer : ?shards:int -> unit -> Layer.t
(** The atomic map layer [Lmap]: [get k], [put k v] (returns the old
    value), [del k] (returns the old value), [resize n] (spec no-op on
    contents; returns the old shard count).  [shards] (default 4) is the
    initial shard count [resize]'s return replays from; it is baked into
    the layer name so fingerprints distinguish configurations. *)

val cache_overlay : unit -> Layer.t
(** [Lmap] restricted to [get]/[put] — the overlay the block-cache edges
    refine (the cache serves reads and writes; delete and resize stay
    hash-table-level operations). *)
