open Ccal_core
open Ccal_objects
open Ccal_verify

type edge = {
  edge_name : string;
  checks : int;
  distinct_logs : int;
  millis : float;
}

type report = {
  edges : edge list;
  total_checks : int;
  total_millis : float;
}

let report_of edges =
  {
    edges;
    total_checks = List.fold_left (fun n e -> n + e.checks) 0 edges;
    total_millis = List.fold_left (fun m e -> m +. e.millis) 0. edges;
  }

let pp_edge ~millis ppf e =
  Format.fprintf ppf "  %-68s ok  %5d schedules  %3d logs" e.edge_name e.checks
    e.distinct_logs;
  if millis then Format.fprintf ppf "  %8.1f ms" e.millis;
  Format.pp_print_newline ppf ()

let pp_report_gen ~millis ppf r =
  Format.fprintf ppf "kv stack: %d edges, %d checks" (List.length r.edges)
    r.total_checks;
  if millis then Format.fprintf ppf ", %.1f ms" r.total_millis;
  Format.pp_print_newline ppf ();
  List.iter (pp_edge ~millis ppf) r.edges

let pp_report ppf r = pp_report_gen ~millis:true ppf r
let pp_report_canonical ppf r = pp_report_gen ~millis:false ppf r

(* ---- client workloads (programs over the overlay interface) ---- *)

(* Two keys, three roles: thread 1 also deletes its key, thread 2 grows
   the table mid-workload, everyone else puts and gets — enough to
   exercise every operation and the 2-key contention in one small game. *)
let ht_client ~shards i =
  let k = Value.int (i mod 2) in
  let put = Prog.call Map_spec.put_tag [ k; Value.int (10 + i) ] in
  let get = Prog.call Map_spec.get_tag [ k ] in
  if i = 1 then Prog.seq put (Prog.seq get (Prog.call Map_spec.del_tag [ k ]))
  else if i = 2 then
    Prog.seq put
      (Prog.seq (Prog.call Map_spec.resize_tag [ Value.int (shards + 1) ]) get)
  else Prog.seq put get

(* Three keys over (by default) two direct-mapped entries, so the eviction
   and write-back paths of the cache are reachable alongside the
   same-entry reader/writer contention. *)
let cache_client i =
  let k = Value.int (i mod 3) in
  Prog.seq
    (Prog.call Map_spec.put_tag [ k; Value.int (20 + i) ])
    (Prog.call Map_spec.get_tag [ k ])

(* Uniform workers for the symmetry-reduction gate: every thread runs
   put-then-get on the one key, and the only tid-dependent integer in its
   program is its own tid (the stored value) — so [Fingerprint.prog_blind]
   places all N workers in a single symmetry class and the optimal
   engine's [sym] flag can collapse the fresh-worker permutations. *)
let sym_client i =
  let k = Value.int 0 in
  Prog.seq
    (Prog.call Map_spec.put_tag [ k; Value.int i ])
    (Prog.call Map_spec.get_tag [ k ])

let composed_underlay () =
  Lock_intf.layer ~extra:(Block_cache.entry_prims ()) "Llock+cache"

(* ---- the edges ---- *)

type spec = {
  name : string;
  underlay : Layer.t;
  impl : Prog.Module.t;
  overlay : Layer.t;
  rel : Sim_rel.t;
  client : Event.tid -> Prog.t;
  tids : Event.tid list;
}

let edge_specs ~threads ~shards ~entries =
  let tids = List.init threads (fun i -> i + 1) in
  [
    {
      name = Printf.sprintf "Llock |- M_kv(shards=%d) : Lmap" shards;
      underlay = Hashtable.underlay ();
      impl = Hashtable.module_ ~shards ();
      overlay = Map_spec.layer ~shards ();
      rel = Hashtable.r_kv;
      client = ht_client ~shards;
      tids;
    };
    {
      name =
        Printf.sprintf "Lcache_disk |- M_cache(entries=%d) : Lmap[get,put]"
          entries;
      underlay = Block_cache.underlay ();
      impl = Block_cache.module_ ~entries ();
      overlay = Map_spec.cache_overlay ();
      rel = Block_cache.r_cache;
      client = cache_client;
      tids;
    };
    {
      name =
        Printf.sprintf
          "Llock+cache |- M_cache(entries=%d) . M_kv(shards=%d) : Lmap[get,put]"
          entries shards;
      underlay = composed_underlay ();
      impl =
        Prog.Module.stack
          ~lower:(Hashtable.module_ ~tags:Hashtable.backing_tags ~shards ())
          ~upper:(Block_cache.module_ ~entries ());
      overlay = Map_spec.cache_overlay ();
      rel = Block_cache.r_cache;
      client = cache_client;
      tids;
    };
  ]

(* One key per edge, covering exactly what the verdict depends on: both
   interfaces, the implementation module, the relation name, the client
   programs, and the strategy the scheduler suite derives from.  [jobs]
   is never part of a key (verdicts are jobs-identical). *)
let spec_fingerprint ~strategy s =
  let st = Fingerprint.string Fingerprint.empty "kv-edge" in
  let st = Fingerprint.string st s.name in
  let st = Fingerprint.layer st s.underlay in
  let st = Fingerprint.layer st s.overlay in
  let st = Fingerprint.modul st s.impl in
  let st = Fingerprint.rel st s.rel in
  let st = Fingerprint.list Fingerprint.int st s.tids in
  let st =
    List.fold_left (fun st i -> Fingerprint.prog st (s.client i)) st s.tids
  in
  let st = Fingerprint.string st (Ctx.Engine.to_string strategy) in
  Fingerprint.finish st

let fingerprints ?(threads = 3) ?(shards = 2) ?(entries = 2)
    ?(strategy = Ctx.Engine.default) () =
  List.map
    (fun s -> s.name, spec_fingerprint ~strategy s)
    (edge_specs ~threads ~shards ~entries)

let verify_ctx ~ctx ?(threads = 3) ?(shards = 2) ?(entries = 2) () =
  Ctx.arm ctx @@ fun () ->
  let specs = edge_specs ~threads ~shards ~entries in
  let run_edge s =
    let outcome, ms =
      Verify_clock.timed (fun () ->
          Linearizability.check_ctx ~ctx ~underlay:s.underlay ~impl:s.impl
            ~overlay:s.overlay ~rel:s.rel ~client:s.client ~tids:s.tids ())
    in
    match outcome with
    | Budget.Complete (Ok (r : Linearizability.report)) ->
      `Done
        {
          edge_name = s.name;
          checks = r.Linearizability.runs;
          distinct_logs = r.Linearizability.distinct_logs;
          millis = ms;
        }
    | Budget.Complete (Error f) ->
      `Failed
        (Format.asprintf "%s: %a" s.name Refinement.pp_failure f)
    | Budget.Exhausted { spent; _ } -> `Exhausted spent
  in
  (* Per-edge memoization under the ["kvedge"] kind: a hit skips the
     edge's DPOR walk and refinement scan entirely (its [millis] is the
     lookup time); only successful edges are stored, so failures always
     reproduce live. *)
  let cached_edge s =
    match ctx.Ctx.cache with
    | None -> run_edge s
    | Some c -> (
      let key = spec_fingerprint ~strategy:ctx.Ctx.strategy s in
      let found, lookup_ms =
        Verify_clock.timed (fun () -> Cache.find c ~kind:"kvedge" key)
      in
      match found with
      | Some (e : edge) -> `Done { e with millis = lookup_ms }
      | None -> (
        match run_edge s with
        | `Done e ->
          Cache.store c ~kind:"kvedge" key e;
          `Done e
        | other -> other))
  in
  let rec loop acc = function
    | [] -> Budget.Complete (Ok (report_of (List.rev acc)))
    | s :: rest ->
      if Budget.poll ctx.Ctx.token then
        Budget.Exhausted
          {
            spent = Budget.spent ctx.Ctx.token;
            partial = Ok (report_of (List.rev acc));
          }
      else (
        match cached_edge s with
        | `Done e -> loop (e :: acc) rest
        | `Failed msg -> Budget.Complete (Error msg)
        | `Exhausted spent ->
          Budget.Exhausted { spent; partial = Ok (report_of (List.rev acc)) })
  in
  loop [] specs

(* ---- whole-machine games ---- *)

let linked m client tids =
  List.map (fun i -> i, Prog.Module.link m (client i)) tids

let ht_game ~shards ~threads () =
  let tids = List.init threads (fun i -> i + 1) in
  ( Hashtable.underlay (),
    linked (Hashtable.module_ ~shards ()) (ht_client ~shards) tids )

let sym_game ~shards ~threads () =
  let tids = List.init threads (fun i -> i + 1) in
  ( Hashtable.underlay (),
    linked (Hashtable.module_ ~shards ()) sym_client tids )

let cache_game ~entries ~threads () =
  let tids = List.init threads (fun i -> i + 1) in
  ( Block_cache.underlay (),
    linked (Block_cache.module_ ~entries ()) cache_client tids )

let composed_game ~shards ~entries ~threads () =
  let tids = List.init threads (fun i -> i + 1) in
  let impl =
    Prog.Module.stack
      ~lower:(Hashtable.module_ ~tags:Hashtable.backing_tags ~shards ())
      ~upper:(Block_cache.module_ ~entries ())
  in
  composed_underlay (), linked impl cache_client tids

(* ---- the YCSB-style workload ---- *)

(* A tiny deterministic LCG per thread; the bench and the CLI must see
   the same op stream for the same seed, so no [Random] state. *)
let ycsb_game ?(seed = 42) ~shards ~threads ~read_pct ~ops ~keyspace () =
  let m = Hashtable.module_ ~shards () in
  let thread i =
    let s = ref (((seed * 31) + (i * 7919)) land 0x3FFFFFFF) in
    let next () =
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      !s
    in
    let op () =
      let r = next () mod 100 in
      let k = Value.int (next () mod keyspace) in
      if r < read_pct then Prog.call Map_spec.get_tag [ k ]
      else Prog.call Map_spec.put_tag [ k; Value.int (next () mod 1000) ]
    in
    let rec build n acc =
      if n = 0 then List.rev acc else build (n - 1) (op () :: acc)
    in
    Prog.Module.link m (Prog.seq_all (build ops []))
  in
  ( Hashtable.underlay (),
    List.init threads (fun idx -> idx + 1, thread (idx + 1)) )
