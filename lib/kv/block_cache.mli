(** The block cache (DESIGN.md S28): a fixed-capacity, direct-mapped page
    cache in front of a modeled backing store, certified as a layer
    refining the plain map ({!Map_spec.cache_overlay}).

    Each cache entry carries the rich per-entry lock state machine of the
    scache RWLock (SNIPPETS.md snippet 3): [Unmapped] / [Reading] /
    [Available] / [Writeback] / [Exc] flags, a pending-exclusive mark
    ([PendingExcLock] — a waiting writer blocks new readers), a dirty
    bit, and per-thread reader refcounts.  The state is never stored: it
    is replayed from the entry's events ({!replay_entry}), in the CCAL
    discipline.

    Linearization points are ghost-carrying events: [c_end_read] returns
    the cached value (the atomic [get]), [c_update] returns the
    overwritten value (the atomic [put]); the simulation relation
    {!r_cache} keeps exactly those and erases the rest.  The backing
    store is reached through the [disk_read]/[disk_write] primitives —
    modeled flat storage in the standalone edge ({!underlay}), or the
    sharded hash table when the two layers are stacked
    ({!Kv_stack}). *)

open Ccal_core

(** {1 Entry state replay} *)

type flag = Unmapped | Reading | Available | Writeback | Exc

type entry = {
  flag : flag;
  page : int;  (** key currently mapped; [-1] when none *)
  value : int;  (** cached value for [page] *)
  dirty : bool;
  pending : int;  (** tid of the waiting exclusive locker; [-1] when none *)
  owner : int;  (** [Reading]/[Writeback]/[Exc] owner tid; [-1] when none *)
  readers : (int * int) list;  (** per-thread reader refcounts *)
}

val initial_entry : entry
val pp_flag : Format.formatter -> flag -> unit

val replay_entry : int -> Log.t -> (entry, string) result
(** Replay one entry's state machine from its events (chronological,
    first-error-wins, via ref cells in the PR 6 idiom). *)

val disk_lookup : int -> Log.t -> int
(** Current backing-store value of a page: newest-first early-exit scan
    of the [disk_write] events ({!Map_spec.absent} default). *)

(** {1 Layer plumbing} *)

val entry_prims : unit -> (string * Layer.prim) list
(** The per-entry cache primitives ([c_open], [c_fill], [c_fill_exc],
    [c_end_read], [c_exc], [c_exc_wait], [c_update], [c_wb_done]) —
    capacity-independent; the entry id is an argument.  Exposed
    separately so {!Kv_stack} can graft them onto the lock layer for the
    composed edge. *)

val underlay : unit -> Layer.t
(** Standalone-cache underlay: the entry primitives plus the modeled
    flat backing store ([disk_read]/[disk_write]). *)

val module_ : ?tags:Hashtable.tags -> entries:int -> unit -> Prog.Module.t
(** Implementation of [get]/[put] over {!underlay} with [entries]
    direct-mapped cache entries (entry of key [k] is [k mod entries]).
    [tags] names the exported primitives (default {!Hashtable.spec_tags};
    only [get]/[put] are implemented — delete and resize are
    table-level operations). *)

val r_cache : Sim_rel.t
(** [c_end_read] ↦ atomic [get], [c_update] ↦ atomic [put]; everything
    else erases. *)
