open Ccal_core

let get_tag = "get"
let put_tag = "put"
let del_tag = "del"
let resize_tag = "resize"

let absent = -1

(* Single-key specialization of {!replay_map}: the newest [put]/[del]
   touching the key decides, so a newest-first scan can stop at the first
   match — no intermediate map, no allocation (the PR 6 replay idiom, cf.
   [Lock_intf.replay_lock]). *)
let lookup k log =
  let rec go = function
    | [] -> absent
    | (e : Event.t) :: older ->
      if String.equal e.tag put_tag then
        match e.args with
        | Value.Vint k' :: Value.Vint v :: _ when k' = k -> v
        | _ -> go older
      else if String.equal e.tag del_tag then
        match e.args with
        | Value.Vint k' :: _ when k' = k -> absent
        | _ -> go older
      else go older
  in
  go (Log.newest_first log)

let shard_count ~default log =
  let rec go = function
    | [] -> default
    | (e : Event.t) :: older ->
      if String.equal e.tag resize_tag then
        match e.args with
        | Value.Vint n :: _ -> n
        | _ -> go older
      else go older
  in
  go (Log.newest_first log)

module Imap = Map.Make (Int)

let replay_map : int Imap.t Replay.t =
  Replay.fold ~init:Imap.empty ~step:(fun m (e : Event.t) ->
      if String.equal e.tag put_tag then
        match e.args with
        | [ Value.Vint k; Value.Vint v ] -> Ok (Imap.add k v m)
        | _ -> Error "put: bad arguments"
      else if String.equal e.tag del_tag then
        match e.args with
        | [ Value.Vint k ] -> Ok (Imap.remove k m)
        | _ -> Error "del: bad arguments"
      else Ok m)

let layer ?(shards = 4) () =
  Layer.make
    (Printf.sprintf "Lmap(shards=%d)" shards)
    [
      Layer.event_prim get_tag (fun _ args log ->
          match args with
          | [ Value.Vint k ] -> Ok (Value.int (lookup k log))
          | _ -> Error "get: bad arguments");
      Layer.event_prim put_tag (fun _ args log ->
          match args with
          | [ Value.Vint k; Value.Vint v ] when v >= 0 ->
            Ok (Value.int (lookup k log))
          | _ -> Error "put: bad arguments");
      Layer.event_prim del_tag (fun _ args log ->
          match args with
          | [ Value.Vint k ] -> Ok (Value.int (lookup k log))
          | _ -> Error "del: bad arguments");
      Layer.event_prim resize_tag (fun _ args log ->
          match args with
          | [ Value.Vint n ] when n >= 1 ->
            Ok (Value.int (shard_count ~default:shards log))
          | _ -> Error "resize: bad arguments");
    ]

let cache_overlay () = Layer.restrict [ get_tag; put_tag ] (layer ~shards:1 ())
