open Ccal_core

let ( let* ) = Prog.( let* )

(* ---- the per-entry lock state machine (scache RWLock) ---- *)

type flag = Unmapped | Reading | Available | Writeback | Exc

type entry = {
  flag : flag;
  page : int;
  value : int;
  dirty : bool;
  pending : int;
  owner : int;
  readers : (int * int) list;
}

let initial_entry =
  { flag = Unmapped; page = -1; value = Map_spec.absent; dirty = false;
    pending = -1; owner = -1; readers = [] }

let pp_flag ppf f =
  Format.pp_print_string ppf
    (match f with
    | Unmapped -> "Unmapped"
    | Reading -> "Reading"
    | Available -> "Available"
    | Writeback -> "Writeback"
    | Exc -> "Exc")

let open_tag = "c_open"
let fill_tag = "c_fill"
let fill_exc_tag = "c_fill_exc"
let end_read_tag = "c_end_read"
let exc_tag = "c_exc"
let exc_wait_tag = "c_exc_wait"
let update_tag = "c_update"
let wb_done_tag = "c_wb_done"
let disk_read_tag = "disk_read"
let disk_write_tag = "disk_write"

let is_cache_tag t =
  String.length t > 2 && t.[0] = 'c' && t.[1] = '_'
  && (String.equal t open_tag || String.equal t fill_tag
     || String.equal t fill_exc_tag || String.equal t end_read_tag
     || String.equal t exc_tag || String.equal t exc_wait_tag
     || String.equal t update_tag || String.equal t wb_done_tag)

let refcount t rs = match List.assoc_opt t rs with Some n -> n | None -> 0

let readers_incr t rs = (t, refcount t rs + 1) :: List.remove_assoc t rs

let readers_decr t rs =
  let n = refcount t rs - 1 in
  let rs' = List.remove_assoc t rs in
  if n <= 0 then rs' else (t, n) :: rs'

(* Enabledness predicates shared by the primitives and the replay
   validator, so the two can never drift. *)
let can_hit st k =
  st.page = k
  && (st.flag = Available || st.flag = Writeback)
  && st.pending = -1

let can_claim_clean st k =
  st.flag = Unmapped
  || (st.flag = Available && st.page <> k && st.readers = []
     && st.pending = -1 && not st.dirty)

let can_evict_dirty st k =
  st.flag = Available && st.page <> k && st.readers = [] && st.pending = -1
  && st.dirty

(* One transition of the entry state machine, dispatched on the recorded
   return shape; an event whose preconditions do not hold marks the log
   ill-formed (first error wins in the replay). *)
let step (st : entry) (e : Event.t) : (entry, string) result =
  let t = e.src in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let claim k =
    Ok { initial_entry with flag = Reading; page = k; owner = t }
  in
  if String.equal e.tag open_tag || String.equal e.tag exc_tag then
    match e.args, e.ret with
    | [ _; Value.Vint k ], Value.Vpair (Value.Vint 1, _)
      when String.equal e.tag open_tag ->
      if can_hit st k then Ok { st with readers = readers_incr t st.readers }
      else err "c_open: invalid hit by %d on page %d" t k
    | [ _; Value.Vint k ], Value.Vint 1 when String.equal e.tag exc_tag ->
      if st.page = k && st.flag = Available && st.readers = [] && st.pending = -1
      then Ok { st with flag = Exc; owner = t }
      else err "c_exc: invalid exclusive grab by %d on page %d" t k
    | [ _; Value.Vint k ], Value.Vint 3 when String.equal e.tag exc_tag ->
      if st.page = k && st.flag = Available && st.readers <> []
         && st.pending = -1
      then Ok { st with pending = t }
      else err "c_exc: invalid pending mark by %d on page %d" t k
    | [ _; Value.Vint k ], Value.Vint 0 ->
      if can_claim_clean st k then claim k
      else err "%s: invalid claim by %d on page %d" e.tag t k
    | [ _; Value.Vint k ], Value.Vpair (Value.Vint 2, _) ->
      if can_evict_dirty st k then Ok { st with flag = Writeback; owner = t }
      else err "%s: invalid dirty eviction by %d" e.tag t
    | _ -> err "%s: malformed event" e.tag
  else if String.equal e.tag exc_wait_tag then
    match e.args with
    | [ _; Value.Vint k ] ->
      if st.pending = t && st.page = k && st.flag = Available
         && st.readers = []
      then Ok { st with flag = Exc; owner = t; pending = -1 }
      else err "c_exc_wait: thread %d not the drained pending locker" t
    | _ -> Error "c_exc_wait: malformed event"
  else if String.equal e.tag fill_tag || String.equal e.tag fill_exc_tag then
    match e.args with
    | [ _; Value.Vint k; Value.Vint v ] ->
      if st.flag = Reading && st.page = k && st.owner = t then
        if String.equal e.tag fill_tag then
          Ok { st with flag = Available; value = v; dirty = false; owner = -1;
                       readers = [ t, 1 ] }
        else Ok { st with flag = Exc; value = v; dirty = false }
      else err "%s: thread %d is not reading page %d" e.tag t k
    | _ -> err "%s: malformed event" e.tag
  else if String.equal e.tag end_read_tag then
    match e.args with
    | [ _; Value.Vint k ] ->
      if st.page = k && refcount t st.readers >= 1
         && (st.flag = Available || st.flag = Writeback)
      then Ok { st with readers = readers_decr t st.readers }
      else err "c_end_read: thread %d holds no read reference on %d" t k
    | _ -> Error "c_end_read: malformed event"
  else if String.equal e.tag update_tag then
    match e.args with
    | [ _; Value.Vint k; Value.Vint v ] ->
      if st.flag = Exc && st.owner = t && st.page = k then
        Ok { st with flag = Available; value = v; dirty = true; owner = -1 }
      else err "c_update: thread %d does not hold page %d exclusively" t k
    | _ -> Error "c_update: malformed event"
  else if String.equal e.tag wb_done_tag then
    match e.args with
    | [ _; Value.Vint p ] ->
      if st.flag = Writeback && st.owner = t && st.page = p && st.readers = []
      then Ok initial_entry
      else err "c_wb_done: thread %d is not the drained writeback owner" t
    | _ -> Error "c_wb_done: malformed event"
  else Ok st

(* Chronological, first-error-wins, allocation-light (ref cells over the
   newest-first spine — the PR 6 replay idiom, cf. [Lock_intf.replay_lock]). *)
let replay_entry eid log =
  let st = ref initial_entry in
  let error = ref None in
  let step_ev (e : Event.t) =
    match e.args with
    | Value.Vint eid' :: _ when eid' = eid && is_cache_tag e.tag -> (
      match step !st e with
      | Ok st' -> st := st'
      | Error msg -> error := Some msg)
    | _ -> ()
  in
  let rec go = function
    | [] -> ()
    | e :: older ->
      go older;
      if !error = None then step_ev e
  in
  go (Log.newest_first log);
  match !error with Some m -> Error m | None -> Ok !st

let disk_lookup p log =
  let rec go = function
    | [] -> Map_spec.absent
    | (e : Event.t) :: older ->
      if String.equal e.tag disk_write_tag then
        match e.args with
        | Value.Vint p' :: Value.Vint v :: _ when p' = p -> v
        | _ -> go older
      else go older
  in
  go (Log.newest_first log)

(* ---- the cache primitives ---- *)

let with_entry name args log f =
  match args with
  | Value.Vint e :: _ -> (
    match replay_entry e log with
    | Error msg -> Layer.Stuck msg
    | Ok st -> f st)
  | _ -> Layer.Stuck (name ^ ": bad arguments")

let emit t tag args ret =
  Layer.Step
    { events = [ Event.make ~args ~ret t tag ]; ret; crit = Layer.Keep }

let open_prim =
  Layer.shared_prim open_tag (fun t args log ->
      match args with
      | [ Value.Vint _; Value.Vint k ] ->
        with_entry open_tag args log (fun st ->
            if can_hit st k then
              emit t open_tag args
                (Value.pair (Value.int 1) (Value.int st.value))
            else if can_claim_clean st k then emit t open_tag args (Value.int 0)
            else if can_evict_dirty st k then
              emit t open_tag args
                (Value.pair (Value.int 2)
                   (Value.pair (Value.int st.page) (Value.int st.value)))
            else Layer.Block)
      | _ -> Layer.Stuck "c_open: bad arguments")

let exc_prim =
  Layer.shared_prim exc_tag (fun t args log ->
      match args with
      | [ Value.Vint _; Value.Vint k ] ->
        with_entry exc_tag args log (fun st ->
            if st.page = k && st.flag = Available && st.pending = -1 then
              if st.readers = [] then emit t exc_tag args (Value.int 1)
              else emit t exc_tag args (Value.int 3)
            else if can_claim_clean st k then emit t exc_tag args (Value.int 0)
            else if can_evict_dirty st k then
              emit t exc_tag args
                (Value.pair (Value.int 2)
                   (Value.pair (Value.int st.page) (Value.int st.value)))
            else Layer.Block)
      | _ -> Layer.Stuck "c_exc: bad arguments")

let exc_wait_prim =
  Layer.shared_prim exc_wait_tag (fun t args log ->
      match args with
      | [ Value.Vint _; Value.Vint k ] ->
        with_entry exc_wait_tag args log (fun st ->
            if st.pending <> t then
              Layer.Stuck
                (Printf.sprintf "c_exc_wait: thread %d never marked pending" t)
            else if st.page = k && st.flag = Available && st.readers = [] then
              emit t exc_wait_tag args (Value.int 1)
            else Layer.Block)
      | _ -> Layer.Stuck "c_exc_wait: bad arguments")

(* [c_fill] and [c_fill_exc] share enabledness (the reading owner lands
   the page); the replay distinguishes them by tag — shared vs exclusive
   continuation. *)
let fill_prim tag =
  Layer.shared_prim tag (fun t args log ->
      match args with
      | [ Value.Vint _; Value.Vint k; Value.Vint v ] ->
        with_entry tag args log (fun st ->
            if st.flag = Reading && st.page = k && st.owner = t then
              emit t tag args (Value.int v)
            else
              Layer.Stuck
                (Printf.sprintf "%s: thread %d is not reading page %d" tag t k))
      | _ -> Layer.Stuck (tag ^ ": bad arguments"))

let end_read_prim =
  Layer.shared_prim end_read_tag (fun t args log ->
      match args with
      | [ Value.Vint _; Value.Vint k ] ->
        with_entry end_read_tag args log (fun st ->
            if st.page = k && refcount t st.readers >= 1
               && (st.flag = Available || st.flag = Writeback)
            then emit t end_read_tag args (Value.int st.value)
            else
              Layer.Stuck
                (Printf.sprintf
                   "c_end_read: thread %d holds no read reference on %d" t k))
      | _ -> Layer.Stuck "c_end_read: bad arguments")

let update_prim =
  Layer.shared_prim update_tag (fun t args log ->
      match args with
      | [ Value.Vint _; Value.Vint k; Value.Vint v ] when v >= 0 ->
        with_entry update_tag args log (fun st ->
            if st.flag = Exc && st.owner = t && st.page = k then
              emit t update_tag args (Value.int st.value)
            else
              Layer.Stuck
                (Printf.sprintf
                   "c_update: thread %d does not hold page %d exclusively" t k))
      | _ -> Layer.Stuck "c_update: bad arguments")

let wb_done_prim =
  Layer.shared_prim wb_done_tag (fun t args log ->
      match args with
      | [ Value.Vint _; Value.Vint p ] ->
        with_entry wb_done_tag args log (fun st ->
            if st.flag = Writeback && st.owner = t && st.page = p then
              if st.readers = [] then emit t wb_done_tag args (Value.int 0)
              else Layer.Block (* hit-during-writeback readers drain first *)
            else
              Layer.Stuck
                (Printf.sprintf "c_wb_done: thread %d is not writing back %d" t
                   p))
      | _ -> Layer.Stuck "c_wb_done: bad arguments")

let entry_prims () =
  [
    open_prim;
    fill_prim fill_tag;
    fill_prim fill_exc_tag;
    end_read_prim;
    exc_prim;
    exc_wait_prim;
    update_prim;
    wb_done_prim;
  ]

let disk_prims () =
  [
    Layer.event_prim disk_read_tag (fun _ args log ->
        match args with
        | [ Value.Vint p ] -> Ok (Value.int (disk_lookup p log))
        | _ -> Error "disk_read: bad arguments");
    Layer.event_prim disk_write_tag (fun _ args _log ->
        match args with
        | [ Value.Vint _; Value.Vint v ] when v >= 0 -> Ok (Value.int 0)
        | _ -> Error "disk_write: bad arguments");
  ]

let underlay () = Layer.make "Lcache_disk" (entry_prims () @ disk_prims ())

(* ---- the implementation module ---- *)

let bad_args = Prog.call "kv_bad_args" []

let entry_of k entries = ((k mod entries) + entries) mod entries

let get_body ~entries args =
  match args with
  | [ Value.Vint k ] ->
    let ei = Value.int (entry_of k entries) and ki = Value.int k in
    let rec attempt () =
      let* r = Prog.call open_tag [ ei; ki ] in
      match r with
      | Value.Vpair (Value.Vint 1, _) -> Prog.call end_read_tag [ ei; ki ]
      | Value.Vint 0 ->
        let* v = Prog.call disk_read_tag [ ki ] in
        let* _ = Prog.call fill_tag [ ei; ki; v ] in
        Prog.call end_read_tag [ ei; ki ]
      | Value.Vpair (Value.Vint 2, Value.Vpair (p, pv)) ->
        let* _ = Prog.call disk_write_tag [ p; pv ] in
        let* _ = Prog.call wb_done_tag [ ei; p ] in
        attempt ()
      | _ -> bad_args
    in
    attempt ()
  | _ -> bad_args

let put_body ~entries args =
  match args with
  | [ Value.Vint k; Value.Vint v ] when v >= 0 ->
    let ei = Value.int (entry_of k entries) and ki = Value.int k in
    let vi = Value.int v in
    let rec attempt () =
      let* r = Prog.call exc_tag [ ei; ki ] in
      match r with
      | Value.Vint 1 -> Prog.call update_tag [ ei; ki; vi ]
      | Value.Vint 3 ->
        let* _ = Prog.call exc_wait_tag [ ei; ki ] in
        Prog.call update_tag [ ei; ki; vi ]
      | Value.Vint 0 ->
        let* ov = Prog.call disk_read_tag [ ki ] in
        let* _ = Prog.call fill_exc_tag [ ei; ki; ov ] in
        Prog.call update_tag [ ei; ki; vi ]
      | Value.Vpair (Value.Vint 2, Value.Vpair (p, pv)) ->
        let* _ = Prog.call disk_write_tag [ p; pv ] in
        let* _ = Prog.call wb_done_tag [ ei; p ] in
        attempt ()
      | _ -> bad_args
    in
    attempt ()
  | _ -> bad_args

let module_ ?(tags = Hashtable.spec_tags) ~entries () =
  Prog.Module.of_bodies
    [ tags.Hashtable.get, get_body ~entries; tags.Hashtable.put, put_body ~entries ]

(* ---- the simulation relation ---- *)

let r_cache =
  Sim_rel.of_events "R_cache" (fun (e : Event.t) ->
      if String.equal e.tag end_read_tag then
        match e.args with
        | [ _; (Value.Vint _ as k) ] ->
          [ Event.make ~args:[ k ] ~ret:e.ret e.src Map_spec.get_tag ]
        | _ -> []
      else if String.equal e.tag update_tag then
        match e.args with
        | [ _; k; v ] ->
          [ Event.make ~args:[ k; v ] ~ret:e.ret e.src Map_spec.put_tag ]
        | _ -> []
      else [])
