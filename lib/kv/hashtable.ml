open Ccal_core
open Ccal_objects

let ( let* ) = Prog.( let* )

let meta_lock = 0
let bucket_of k shards = 1 + (((k mod shards) + shards) mod shards)

(* ---- lock-word encoding ----

   meta word:   Vint 0 (initial) | Vpair (Vint shard_count, desc)
   bucket word: Vint 0 (initial) | Vpair (Vlist entries, desc)

   where entries are Vpair (Vint key, Vint value) and desc is the ghost
   operation descriptor published at a linearization point:
   Vint 0 (none) | Vlist [Vint opcode; Vlist args; ret].  Decoders are
   total — an unexpected word reads as the initial state rather than
   crashing the game. *)

let no_desc = Value.int 0
let desc op args ret = Value.list [ Value.int op; Value.list args; ret ]
let meta_word n d = Value.pair (Value.int n) d
let bucket_word es d = Value.pair (Value.list es) d

let meta_count ~default w =
  match w with
  | Value.Vpair (Value.Vint n, _) when n >= 1 -> n
  | _ -> default

let bucket_entries w =
  match w with
  | Value.Vpair (Value.Vlist es, _) -> es
  | _ -> []

let find_entry k es =
  let rec go = function
    | [] -> Map_spec.absent
    | Value.Vpair (Value.Vint k', Value.Vint v) :: rest ->
      if k' = k then v else go rest
    | _ :: rest -> go rest
  in
  go es

let remove_entry k es =
  List.filter
    (function Value.Vpair (Value.Vint k', _) -> k' <> k | _ -> true)
    es

let add_entry k v es = Value.pair (Value.int k) (Value.int v) :: remove_entry k es

let op_get = 1
let op_put = 2
let op_del = 3
let op_resize = 4

let tag_of_op op =
  if op = op_get then Some Map_spec.get_tag
  else if op = op_put then Some Map_spec.put_tag
  else if op = op_del then Some Map_spec.del_tag
  else if op = op_resize then Some Map_spec.resize_tag
  else None

(* ---- implementation bodies (programs over the lock layer) ---- *)

let acq l = Prog.call Lock_intf.acq_tag [ Value.int l ]
let rel l w = Prog.call Lock_intf.rel_tag [ Value.int l; w ]

(* A body handed arguments it cannot type calls a primitive no layer
   exports: the machine gets stuck, which is the spec's behaviour too. *)
let bad_args = Prog.call "kv_bad_args" []

(* Lock-coupled descent to the bucket of [k]: meta pins the shard count
   until the bucket lock is held, so resize cannot slip in between. *)
let with_bucket ~shards k f =
  let* wm = acq meta_lock in
  let mc = meta_count ~default:shards wm in
  let b = bucket_of k mc in
  let* wb = acq b in
  let* _ = rel meta_lock (meta_word mc no_desc) in
  f b (bucket_entries wb)

let get_body ~shards args =
  match args with
  | [ Value.Vint k ] ->
    with_bucket ~shards k (fun b es ->
        let v = find_entry k es in
        let* _ =
          rel b (bucket_word es (desc op_get [ Value.int k ] (Value.int v)))
        in
        Prog.ret (Value.int v))
  | _ -> bad_args

let put_body ~shards args =
  match args with
  | [ Value.Vint k; Value.Vint v ] when v >= 0 ->
    with_bucket ~shards k (fun b es ->
        let old = find_entry k es in
        let* _ =
          rel b
            (bucket_word (add_entry k v es)
               (desc op_put [ Value.int k; Value.int v ] (Value.int old)))
        in
        Prog.ret (Value.int old))
  | _ -> bad_args

let del_body ~shards args =
  match args with
  | [ Value.Vint k ] ->
    with_bucket ~shards k (fun b es ->
        let old = find_entry k es in
        let* _ =
          rel b
            (bucket_word (remove_entry k es)
               (desc op_del [ Value.int k ] (Value.int old)))
        in
        Prog.ret (Value.int old))
  | _ -> bad_args

(* Resize takes meta plus every bucket (old and new range) in ascending
   id order — total order with the per-op lock coupling, so no deadlock —
   redistributes, and linearizes at the meta release. *)
let resize_body ~shards args =
  match args with
  | [ Value.Vint n ] when n >= 1 ->
    let* wm = acq meta_lock in
    let mc = meta_count ~default:shards wm in
    let hi = max mc n in
    let rec grab b acc =
      if b > hi then redistribute acc
      else
        let* wb = acq b in
        grab (b + 1) (acc @ bucket_entries wb)
    and redistribute all =
      let contents b =
        List.filter
          (function
            | Value.Vpair (Value.Vint k, _) -> bucket_of k n = b
            | _ -> false)
          all
      in
      let rec release b =
        if b > hi then
          let* _ =
            rel meta_lock
              (meta_word n (desc op_resize [ Value.int n ] (Value.int mc)))
          in
          Prog.ret (Value.int mc)
        else
          let* _ =
            rel b (bucket_word (if b <= n then contents b else []) no_desc)
          in
          release (b + 1)
      in
      release 1
    in
    grab 1 []
  | _ -> bad_args

(* ---- layer plumbing ---- *)

type tags = { get : string; put : string; del : string; resize : string }

let spec_tags =
  {
    get = Map_spec.get_tag;
    put = Map_spec.put_tag;
    del = Map_spec.del_tag;
    resize = Map_spec.resize_tag;
  }

let backing_tags =
  { get = "disk_read"; put = "disk_write"; del = "disk_del";
    resize = "disk_resize" }

let underlay ?bound () = Lock_intf.layer ?bound "Llock"

let module_ ?(tags = spec_tags) ~shards () =
  Prog.Module.of_bodies
    [
      tags.get, get_body ~shards;
      tags.put, put_body ~shards;
      tags.del, del_body ~shards;
      tags.resize, resize_body ~shards;
    ]

(* ---- the simulation relation ----

   Pointwise: a bucket (or meta) release whose published word carries a
   ghost descriptor is the operation's linearization point and maps to
   the corresponding atomic map event; every other lock event erases. *)

let r_kv =
  Sim_rel.of_events "R_kv" (fun (e : Event.t) ->
      if not (String.equal e.tag Lock_intf.rel_tag) then []
      else
        match e.args with
        | [ Value.Vint _;
            Value.Vpair (_, Value.Vlist [ Value.Vint op; Value.Vlist args; ret ])
          ] -> (
          match tag_of_op op with
          | Some tag -> [ Event.make ~args ~ret e.src tag ]
          | None -> [])
        | _ -> [])

let bucket_contents b log =
  match Lock_intf.replay_lock b log with
  | Error _ -> []
  | Ok { Lock_intf.value; _ } ->
    List.filter_map
      (function
        | Value.Vpair (Value.Vint k, Value.Vint v) -> Some (k, v)
        | _ -> None)
      (bucket_entries value)
