(** The kv serving stack, certified end-to-end (DESIGN.md S28).

    Three edges, mirroring {!Ccal_verify.Stack} for the Fig. 1 stack:
    {ol
    {- the sharded hash table refines the atomic map
       ([Llock |- M_kv : Lmap]);}
    {- the block cache over the modeled flat disk refines the map
       restricted to [get]/[put];}
    {- the composed service — block cache stacked on the hash table as
       its backing store — refines the same restricted map.}}

    Every edge is checked as contextual refinement
    ({!Ccal_verify.Linearizability.check_ctx}), so linearizability,
    budgets, certificate caching, fault plans, telemetry and [?jobs] all
    apply for free; verdicts are bit-identical across jobs counts. *)

open Ccal_core
open Ccal_verify

type edge = {
  edge_name : string;
  checks : int;  (** schedules discharged (jobs-independent) *)
  distinct_logs : int;
  millis : float;
}

type report = {
  edges : edge list;
  total_checks : int;
  total_millis : float;
}

val pp_report : Format.formatter -> report -> unit

val pp_report_canonical : Format.formatter -> report -> unit
(** Verdict-stable projection (no timing fields) — bit-identical between
    cold and warm cached runs and across jobs counts; the [make check-kv]
    gate compares it byte for byte. *)

val fingerprints :
  ?threads:int -> ?shards:int -> ?entries:int ->
  ?strategy:Ctx.Engine.t -> unit -> (string * Fingerprint.t) list
(** The cache key of every edge {!verify_ctx} would check, in order, for
    the invalidation tests ([jobs] takes no part in any key). *)

val verify_ctx :
  ctx:Ctx.t ->
  ?threads:int ->
  ?shards:int ->
  ?entries:int ->
  unit ->
  (report, string) result Budget.outcome
(** Verify all three edges.  [threads] (default 3) is the client thread
    count, [shards] (default 2) the hash-table bucket count, [entries]
    (default 2) the cache capacity.  Scheduler suites derive from
    [ctx.strategy] per edge game; [ctx.cache] memoizes whole edges under
    the ["kvedge"] kind (failures always re-run live) as well as the
    inner DPOR walks and refinement reports; [ctx.budget] is polled
    between edges. *)

(** {1 Whole-machine games} (the explore corpus and the bench) *)

val ht_game :
  shards:int -> threads:int -> unit -> Layer.t * (Event.tid * Prog.t) list
(** The hash-table contention game: each thread puts then gets on a
    2-key working set (thread 1 also deletes), linked down to the lock
    layer. *)

val sym_game :
  shards:int -> threads:int -> unit -> Layer.t * (Event.tid * Prog.t) list
(** The symmetric N-worker game: every thread puts then gets the one key
    and the only tid-dependent integer in each program is its own tid, so
    all workers share one {!Ccal_core.Fingerprint.prog_blind} symmetry
    class — the game the optimal engine's [sym] flag is measured on. *)

val cache_game :
  entries:int -> threads:int -> unit -> Layer.t * (Event.tid * Prog.t) list
(** The block-cache game over the flat disk: a 3-key working set over
    [entries] direct-mapped slots, so eviction and write-back paths are
    in play. *)

val composed_game :
  shards:int ->
  entries:int ->
  threads:int ->
  unit ->
  Layer.t * (Event.tid * Prog.t) list
(** The full service: cache over hash table over locks. *)

val ycsb_game :
  ?seed:int ->
  shards:int ->
  threads:int ->
  read_pct:int ->
  ops:int ->
  keyspace:int ->
  unit ->
  Layer.t * (Event.tid * Prog.t) list
(** A YCSB-style workload over the sharded table: each thread runs [ops]
    operations, reads with probability [read_pct]% (the 95/5 and 50/50
    mixes of the bench), keys drawn uniformly from [keyspace].  The op
    streams are seeded and deterministic. *)
