(** The sharded concurrent hash table (DESIGN.md S28).

    N buckets, each guarded by its own certified lock from the existing
    spinlock interface ({!Ccal_objects.Lock_intf.layer}), plus a meta
    lock holding the shard count — modeled on verified-betrfs'
    [hack-hash-table].  The locking discipline is lock-coupling in a
    fixed order (meta < bucket 1 < bucket 2 < …): an operation acquires
    the meta lock, reads the shard count, acquires its bucket, and only
    then releases meta, so a concurrent [resize] (which takes meta and
    every bucket) can never invalidate a bucket choice in flight.

    Each operation's linearization point is the release of its bucket
    lock: the released word carries, next to the bucket contents, a
    ghost descriptor of the operation (opcode, arguments, result) that
    the simulation relation {!r_kv} turns into the corresponding atomic
    {!Map_spec} event.  Per-bucket rely-guarantee obligations come for
    free from the lock layer's acquire/release condition. *)

open Ccal_core

val meta_lock : int
(** Lock id of the shard-count lock (0; buckets are 1..N). *)

val bucket_of : int -> int -> int
(** [bucket_of k shards] — the lock id guarding key [k]. *)

type tags = { get : string; put : string; del : string; resize : string }

val spec_tags : tags
(** The {!Map_spec} names — what the standalone hash-table edge
    exports. *)

val backing_tags : tags
(** [disk_read]/[disk_write]/[disk_del]/[disk_resize] — the names the
    block cache's backing store calls, for stacking the cache on top of
    the table ({!Prog.Module.stack}). *)

val underlay : ?bound:int -> unit -> Layer.t
(** The lock layer the table is implemented over. *)

val module_ : ?tags:tags -> shards:int -> unit -> Prog.Module.t
(** Implementation module: [get]/[put]/[del]/[resize] bodies as programs
    over {!underlay}.  [shards] is the initial bucket count (must match
    the [Map_spec.layer] the edge refines). *)

val r_kv : Sim_rel.t
(** The simulation relation: a bucket-lock release carrying a ghost
    descriptor maps to the corresponding atomic map event; every other
    lock event is erased. *)

val bucket_contents : int -> Log.t -> (int * int) list
(** Replay a bucket's (key, value) association from the lock events —
    test oracle for directed tests. *)
