(** Concurrent layer interfaces.

    A layer interface [L[A] = (L, R, G)] (Sec. 3.2) equips an abstract
    machine with a collection of primitives [L], a rely condition [R]
    describing acceptable environment contexts, and a guarantee condition
    [G] on locally-generated events.

    Primitives come in two kinds, mirroring Sec. 3.1's transition classes:
    {ul
    {- {e private} primitives are silent: they read/update the calling
       thread's private abstract state and produce no events;}
    {- {e shared} primitives are the only means of accessing and appending
       events to the global log.  Their semantics is a function of the
       current log — the shared state is always reconstructed by a replay
       function, never stored (Sec. 2).}} *)

type crit =
  | Enter  (** this call enters the critical state (paper: gray states) —
               the layer machine stops querying its environment context
               until the critical state is exited (Sec. 2, Fig. 8) *)
  | Exit  (** this call exits the critical state *)
  | Keep  (** no change *)

type stuck_kind =
  | Invalid_transition
      (** the machine got stuck for an ordinary reason: bad arguments, a
          fuel bound, an ill-formed log, an unknown primitive… *)
  | Data_race
      (** the stuck transition specifically witnesses a data race — e.g.
          the push/pull replay of Fig. 8 returning [None] because two
          threads hold overlapping ownership.  Checkers classify on this
          constructor rather than scanning message strings. *)

type shared_result =
  | Step of {
      events : Event.t list;  (** events appended by this call, in order *)
      ret : Value.t;
      crit : crit;
    }
  | Block
      (** the primitive cannot fire in the current log (e.g. an atomic
          [acq] finding the lock held).  The machine waits for more
          environment events; in a whole-machine game the scheduler must
          pick another thread. *)
  | Stuck of string
      (** no valid transition for an ordinary reason (bad arguments,
          ill-formed log, …) — classified as {!Invalid_transition}. *)
  | Race of string
      (** no valid transition because this call witnesses a data race —
          the push/pull replay function of Fig. 8 returning [None].
          Classified as {!Data_race} so checkers never have to scan
          message strings. *)

val pp_stuck_kind : Format.formatter -> stuck_kind -> unit

type shared_sem = Event.tid -> Value.t list -> Log.t -> shared_result
(** Semantics of a shared primitive: given the caller, arguments and
    current global log (already extended with any environment events),
    produce the appended events, return value and critical-state change. *)

type private_sem =
  Event.tid -> Value.t list -> Abs.t -> (Abs.t * Value.t, string) result
(** Semantics of a private primitive over the caller's private abstract
    state. *)

type prim =
  | Shared of shared_sem
  | Private of private_sem

type t = {
  name : string;
  prims : (string * prim) list;  (** primitive collection [L.L] *)
  rely : Rely_guarantee.t;  (** [L.R] *)
  guar : Rely_guarantee.t;  (** [L.G] *)
  init_abs : Event.tid -> Abs.t;
      (** initial private abstract state of each thread *)
}

val make :
  ?rely:Rely_guarantee.t ->
  ?guar:Rely_guarantee.t ->
  ?init_abs:(Event.tid -> Abs.t) ->
  string ->
  (string * prim) list ->
  t
(** [make name prims] builds a layer interface; [rely]/[guar] default to
    the trivial invariant and [init_abs] to the empty state. *)

val find_prim : string -> t -> prim option
val prim_names : t -> string list
val has_prim : string -> t -> bool

val union : t -> t -> t
(** Primitive-collection union [L1.L ⊕ L2.L], used by the [Hcomp] rule; the
    rely/guarantee of the two operands must be {!Rely_guarantee.same},
    otherwise [Invalid_argument] is raised (the rule's side condition). *)

val with_conditions : rely:Rely_guarantee.t -> guar:Rely_guarantee.t -> t -> t
(** Replace the rely/guarantee conditions (used when lifting a layer to a
    stronger interface, e.g. [L'1[i]] acquiring fairness assumptions in
    Sec. 2). *)

val restrict : string list -> t -> t
(** Keep only the named primitives (hide the rest), as when a higher layer
    stops exporting the raw ticket-lock primitives. *)

(** {1 Common primitive builders} *)

val shared_prim :
  string ->
  (Event.tid -> Value.t list -> Log.t -> shared_result) ->
  string * prim

val private_prim :
  string ->
  (Event.tid -> Value.t list -> Abs.t -> (Abs.t * Value.t, string) result) ->
  string * prim

val event_prim :
  ?crit:crit -> string -> (Event.tid -> Value.t list -> Log.t -> (Value.t, string) result) -> string * prim
(** [event_prim name ret] is the common shape of an atomic shared
    primitive: append exactly the event [i.name(args)->v] where [v] is
    computed from the log by a replay function, and return [v]. *)

val pure_private : string -> (Value.t list -> Value.t) -> string * prim
(** A private primitive that only computes (no state change). *)
