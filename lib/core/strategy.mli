(** Strategies.

    Each participant of the concurrency game contributes its play by
    appending events to the global log; its strategy is a deterministic
    partial function from the current log to its next move (Sec. 2).  We
    represent strategies as resumptions: stepping on the current log either
    produces a move (events to append, plus the rest of the strategy),
    blocks (the move is not enabled yet — e.g. an atomic [acq] on a held
    lock), or refuses (the strategy is stuck: no valid transition exists).

    The automata drawn in the paper (e.g. [φ'_acq[i]], [φ_acq[i]]) are
    values of this type; the semantics [⟨P⟩_{L[i]}] of running a program
    over a local layer interface is also a strategy
    ({!Machine.strategy_of_prog}). *)

type t = { step : Log.t -> step_result }

and step_result =
  | Move of Event.t list * outcome
      (** append these events (possibly none) and continue *)
  | Blocked  (** enabled later: ask the environment for more events *)
  | Refuse of string  (** stuck — no valid move *)

and outcome =
  | Done of Value.t  (** the strategy terminated with a result *)
  | Next of t

val stopped : Value.t -> t
(** The idle strategy: emits no further events and stays [Done]
    (the reflexive "?l', !ε" edge of the paper's automata). *)

val of_moves : ?ret:Value.t -> (Log.t -> Event.t list) list -> t
(** [of_moves ms] plays each move function once, in order, then terminates
    with [ret] (default unit). *)

val emit_once : (Event.tid -> Log.t -> Event.t list) -> Event.tid -> t
(** One move computed from the log, then done. *)

val map_events : (Event.t -> Event.t list) -> t -> t
(** Translate every emitted event (used to relate strategies at two layers
    via a simulation relation). *)

val pp_step_result : Format.formatter -> step_result -> unit

(** {1 Exploration engines}

    How a checker enumerates scheduling prefixes (DESIGN.md S31).  The
    descriptor is a first-class record — algorithm × depth bound ×
    optional state-dedup and symmetry-reduction flags — threaded through
    [Verify.Ctx] so every checker selects engines uniformly; the
    implementations satisfy {!Engine.IMPL} and register with
    [Explore.register_engine], so a new engine never touches the
    checkers. *)

module Engine : sig
  type algo =
    | Exhaustive  (** all [|tids|^depth] prefixes — the oracle *)
    | Dpor  (** sleep-set DPOR; frontier-parallel walk — the default *)
    | Optimal
        (** sleep-set DPOR with source-style state handling: optional
            state-fingerprint dedup ([dedup]) and symmetry reduction
            across identical fresh threads ([sym]); sequential walk *)
    | Random  (** [depth] seeded random schedulers *)

  type t = {
    algo : algo;
    depth : int;  (** depth bound; for [Random], the suite size *)
    dedup : bool;  (** state-fingerprint dedup — [Optimal] only *)
    sym : bool;  (** symmetry reduction — [Optimal] only *)
  }

  val default : t
  (** [dpor ~depth:4] — what the checkers use when nothing is selected. *)

  (** {2 Constructors} — validate the flag combination, raising
      [Invalid_argument] with the named error on misuse. *)

  val dpor : depth:int -> t
  val optimal : ?dedup:bool -> ?sym:bool -> depth:int -> unit -> t
  val exhaustive : depth:int -> t
  val random : count:int -> t

  val validate : t -> (unit, string) result
  (** [Error] carries the named rejection (bad flag combination,
      non-positive depth) the CLI reports verbatim. *)

  val checked : t -> t
  (** Identity on valid descriptors; raises [Invalid_argument] with the
      {!validate} error otherwise. *)

  val algo_name : algo -> string

  val grammar : string
  (** The accepted [--strategy] grammar, for error messages. *)

  val to_string : t -> string
  (** Canonical descriptor, e.g. ["optimal:8,dedup"].  Cache-identity
      bearing: it enters the suite cache key and every verdict key built
      from an implicit strategy. *)

  val of_string : string -> (t, string) result
  (** Parse a [--strategy] argument; rejects unknown engines, malformed
      depths, and invalid flag combinations with a named error — never a
      silent fallback. *)

  val pp : Format.formatter -> t -> unit

  (** {2 Implementation contract} *)

  type walk_stats = {
    sleep_prunes : int;  (** branches skipped because asleep *)
    dedup_hits : int;  (** subtrees pruned at a revisited state *)
    sym_prunes : int;  (** branches pruned by thread symmetry *)
  }

  val no_walk_stats : walk_stats

  type suite =
    | Prefixes of {
        tag : string;
            (** scheduler-name prefix, e.g. ["dpor"] — the names are
                cache-identity-bearing *)
        prefixes : Event.tid list list;
        stats : walk_stats;
      }
    | Schedulers of Sched.t list  (** opaque suite; never cached *)

  module type IMPL = sig
    val algo : algo

    val cacheable : bool
    (** Whether a [Prefixes] suite may be memoized, keyed on the
        descriptor and the game identity. *)

    val suite :
      engine:t ->
      jobs:int ->
      memory:Memory.t ->
      ?private_fuel:int ->
      Layer.t ->
      (Event.tid * Prog.t) list ->
      suite
  end
end
