type thread_state = {
  prog : Prog.t;
  abs : Abs.t;
  crit : bool;
}

let initial layer tid prog = { prog; abs = layer.Layer.init_abs tid; crit = false }

type move_result =
  | Moved of Event.t list * thread_state
  | Finished of Value.t * Abs.t
  | Blocked_at of thread_state * string
  | Stuck of Layer.stuck_kind * string

let apply_crit dc crit =
  match dc with Layer.Enter -> true | Layer.Exit -> false | Layer.Keep -> crit

(* Execute silent steps then at most one shared call; returns the move
   result together with the number of silent steps taken. *)
let step_move_counted ?(private_fuel = 100_000) layer tid st log =
  let rec go prog abs crit fuel silent =
    if fuel <= 0 then Stuck (Layer.Invalid_transition, Prog.steps_bound_exceeded), silent
    else
      match prog with
      | Prog.Ret v -> Finished (v, abs), silent
      | Prog.Call c -> (
        match Layer.find_prim c.prim layer with
        | None ->
          Stuck (Layer.Invalid_transition,
                 "unknown primitive " ^ c.prim ^ " in layer " ^ layer.Layer.name), silent
        | Some (Layer.Private sem) -> (
          match sem tid c.args abs with
          | Ok (abs', v) -> go (c.k v) abs' crit (fuel - 1) (silent + 1)
          | Error msg -> Stuck (Layer.Invalid_transition, c.prim ^ ": " ^ msg), silent)
        | Some (Layer.Shared sem) -> (
          match sem tid c.args log with
          | Layer.Step { events; ret; crit = dc } ->
            Moved (events, { prog = c.k ret; abs; crit = apply_crit dc crit }), silent
          | Layer.Block -> Blocked_at ({ prog; abs; crit }, c.prim), silent
          | Layer.Stuck msg -> Stuck (Layer.Invalid_transition, c.prim ^ ": " ^ msg), silent
          | Layer.Race msg -> Stuck (Layer.Data_race, c.prim ^ ": " ^ msg), silent))
  in
  go st.prog st.abs st.crit private_fuel 0

let step_move ?private_fuel layer tid st log =
  fst (step_move_counted ?private_fuel layer tid st log)

let strategy_of_prog layer tid prog =
  let rec of_state st =
    {
      Strategy.step =
        (fun log ->
          match step_move layer tid st log with
          | Moved (evs, st') -> Strategy.Move (evs, Strategy.Next (of_state st'))
          | Finished (v, _) -> Strategy.Move ([], Strategy.Done v)
          | Blocked_at _ -> Strategy.Blocked
          | Stuck (_, msg) -> Strategy.Refuse msg);
    }
  in
  of_state (initial layer tid prog)

type run_outcome =
  | Done of Value.t
  | No_progress of string
  | Stuck_run of string
  | Out_of_fuel

type run_result = {
  outcome : run_outcome;
  log : Log.t;
  own_events : Event.t list;
  moves : int;
  silent_steps : int;
  guar_violation : Log.t option;
}

let run_local ?(max_moves = 10_000) ?(block_retries = 64) ?(check_guar = false)
    layer tid ~env prog =
  let guar = layer.Layer.guar in
  let rec loop st log own moves silent retries violation =
    if moves > max_moves then
      { outcome = Out_of_fuel; log; own_events = List.rev own; moves; silent_steps = silent; guar_violation = violation }
    else
      (* Query point: ask the environment unless in the critical state. *)
      let log =
        if st.crit then log
        else Log.append_all (env.Env_context.query ~focus:[ tid ] log) log
      in
      let result, s = step_move_counted layer tid st log in
      let silent = silent + s in
      match result with
      | Finished (v, _) ->
        { outcome = Done v; log; own_events = List.rev own; moves; silent_steps = silent; guar_violation = violation }
      | Stuck (_, msg) ->
        { outcome = Stuck_run msg; log; own_events = List.rev own; moves; silent_steps = silent; guar_violation = violation }
      | Blocked_at (st, prim) ->
        if retries >= block_retries then
          { outcome = No_progress ("blocked on " ^ prim); log; own_events = List.rev own; moves; silent_steps = silent; guar_violation = violation }
        else if st.crit then
          (* A blocked call inside a critical state can never be unblocked by
             the environment (we are not listening): report no progress. *)
          { outcome = No_progress ("blocked on " ^ prim ^ " in critical state"); log; own_events = List.rev own; moves; silent_steps = silent; guar_violation = violation }
        else loop st log own moves silent (retries + 1) violation
      | Moved (evs, st') ->
        let log' = Log.append_all evs log in
        let own' = List.rev_append evs own in
        let violation =
          match violation with
          | Some _ -> violation
          | None ->
            if check_guar && not (guar.Rely_guarantee.holds tid log') then Some log'
            else None
        in
        loop st' log' own' (moves + 1) silent 0 violation
  in
  loop (initial layer tid prog) Log.empty [] 0 0 0 None
