(** Schedulers.

    The scheduler acts as the judge of the concurrency game: at each round
    it picks one participant to make a move (Sec. 2).  The behaviour of a
    whole layer machine is the set of logs generated under all possible
    schedulers; experiments therefore run suites of schedulers: round-robin,
    seeded pseudo-random (both fair), and explicit traces used by the
    exhaustive interleaving enumerator of the verification harness. *)

type t = {
  name : string;
  pick : step:int -> Log.t -> runnable:Event.tid list -> Event.tid option;
      (** choose the next mover among [runnable] (never empty); [None]
          means the scheduler has no opinion and the game falls back to the
          first runnable thread *)
}

val round_robin : t
(** Fair: cycles through thread ids in increasing order. *)

val random : seed:int -> t
(** Deterministic pseudo-random scheduler (splitmix-style hash of
    [seed, step]); fair with probability 1, and reproducible. *)

val of_trace : ?name:string -> Event.tid list -> t
(** Follow the given choice list; entries that are not currently runnable
    are skipped; after the trace is exhausted, behaves like
    {!round_robin}.  The internal cursor is stateful: use each scheduler
    value for exactly one run.  [name] defaults to ["trace"]. *)

val biased : favored:Event.tid -> ratio:int -> seed:int -> t
(** Picks [favored] [ratio] times more often than others when runnable —
    an adversarial scheduler used to hunt starvation. *)

val default_suite : seeds:int -> t list
(** Round-robin plus [seeds] random schedulers — the default scheduler
    suite of the checkers. *)

val splitmix : int -> int
(** The underlying avalanche hash (exposed for the verification harness's
    random choices). Result is non-negative. *)
