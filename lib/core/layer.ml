type crit = Enter | Exit | Keep
type stuck_kind = Invalid_transition | Data_race

type shared_result =
  | Step of {
      events : Event.t list;
      ret : Value.t;
      crit : crit;
    }
  | Block
  | Stuck of string
  | Race of string

let pp_stuck_kind fmt = function
  | Invalid_transition -> Format.pp_print_string fmt "invalid-transition"
  | Data_race -> Format.pp_print_string fmt "data-race"

type shared_sem = Event.tid -> Value.t list -> Log.t -> shared_result

type private_sem =
  Event.tid -> Value.t list -> Abs.t -> (Abs.t * Value.t, string) result

type prim =
  | Shared of shared_sem
  | Private of private_sem

type t = {
  name : string;
  prims : (string * prim) list;
  rely : Rely_guarantee.t;
  guar : Rely_guarantee.t;
  init_abs : Event.tid -> Abs.t;
}

let make ?(rely = Rely_guarantee.always) ?(guar = Rely_guarantee.always)
    ?(init_abs = fun _ -> Abs.empty) name prims =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then
        invalid_arg ("Layer.make: duplicate primitive " ^ n)
      else Hashtbl.add seen n ())
    prims;
  { name; prims; rely; guar; init_abs }

let find_prim name l = List.assoc_opt name l.prims
let prim_names l = List.map fst l.prims
let has_prim name l = List.mem_assoc name l.prims

let union a b =
  if not (Rely_guarantee.same a.rely b.rely) then
    invalid_arg "Layer.union: rely conditions differ"
  else if not (Rely_guarantee.same a.guar b.guar) then
    invalid_arg "Layer.union: guarantee conditions differ"
  else
    let overlap =
      List.filter (fun (n, _) -> List.mem_assoc n b.prims) a.prims
    in
    (match overlap with
    | [] -> ()
    | (n, _) :: _ -> invalid_arg ("Layer.union: primitive in both layers: " ^ n));
    {
      name = a.name ^ "+" ^ b.name;
      prims = a.prims @ b.prims;
      rely = a.rely;
      guar = a.guar;
      init_abs =
        (fun i ->
          List.fold_left
            (fun abs (k, v) -> Abs.set k v abs)
            (a.init_abs i)
            (Abs.fields (b.init_abs i)));
    }

let with_conditions ~rely ~guar l = { l with rely; guar }

let restrict names l =
  { l with prims = List.filter (fun (n, _) -> List.mem n names) l.prims }

let shared_prim name sem = name, Shared sem
let private_prim name sem = name, Private sem

let event_prim ?(crit = Keep) name ret =
  ( name,
    Shared
      (fun i args log ->
        match ret i args log with
        | Ok v ->
          Step { events = [ Event.make ~args ~ret:v i name ]; ret = v; crit }
        | Error msg -> Stuck msg) )

let pure_private name f =
  name, Private (fun _ args abs -> Ok (abs, f args))
