(** Global logs.

    The global log [l] is the list of observable events recording all shared
    operations, in chronological order (Sec. 3.1).  The paper writes
    [l • e] for "cons-ing" an event to the log; internally we store the most
    recent event first, which makes {!append} O(1) and makes replay functions
    natural structural recursions (Fig. 8). *)

type t

val empty : t

val append : Event.t -> t -> t
(** [append e l] is the paper's [l • e]. *)

val append_all : Event.t list -> t -> t
(** [append_all es l] appends [es] in order: the head of [es] happens
    first. *)

val newest_first : t -> Event.t list
(** Events, most recent first (the representation order used by the paper's
    replay functions, which match on [e :: l']). *)

val chronological : t -> Event.t list
(** Events in the order they happened. *)

val length : t -> int
val is_empty : t -> bool

val latest : t -> Event.t option

val suffix_since : t -> t -> Event.t list
(** [suffix_since earlier later] is the chronological list of events appended
    to [earlier] to obtain [later]; raises [Invalid_argument] if [earlier] is
    not a prefix (by length) of [later].  Used by environment-context
    queries, which return the events added since the last query point. *)

val filter : (Event.t -> bool) -> t -> t
(** Keep only the events satisfying the predicate (chronological order is
    preserved).  Used by simulation relations that erase low-level events. *)

val map_events : (Event.t -> Event.t list) -> t -> t
(** [map_events f l] rewrites each event [e] into the (possibly empty)
    sequence [f e], preserving order.  This is how the paper's simulation
    relations on logs (e.g. [R1] mapping [i.hold] to [i.acq] and other
    lock-related events to empty ones, Sec. 2) are implemented. *)

val by_thread : Event.tid -> t -> Event.t list
(** Chronological events produced by one thread. *)

val count : (Event.t -> bool) -> t -> int

val equal : t -> t -> bool

val mix : int -> int -> int
(** [mix acc k] is one multiply-xor avalanche round: xor [k] into the
    accumulator, multiply by an odd constant, fold the high bits back
    down, and mask to [max_int].  This is the round behind {!hash};
    {!Fingerprint} folds structural data through the same mixer so
    cache keys and log hashes diffuse identically. *)

val hash : t -> int
(** Order-sensitive structural hash, compatible with {!equal}.  Each
    event is folded through a multiply-xor avalanche round and the length
    is mixed in by a second finalization pass, so permuted logs — the
    bulk of what the DPOR harness deduplicates — spread across buckets
    instead of chaining. *)

val dedup : ?hash:(t -> int) -> t list -> t list
(** Distinct logs in first-occurrence order; hashed, so linear in the
    total number of events (the verification harness counts distinct
    interleavings over thousands of runs).  Hash collisions cost time,
    never correctness ({!equal} decides within a bucket); [?hash]
    (default {!hash}) exists so tests can force the collision path. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
