(** Contextual refinement — the soundness theorem (Thm 2.2).

    From [L'[D] ⊢_R M : L[D]] the paper concludes that for any client
    program [P], every log in [⟦P ⊕ M⟧_{L'[D]}] has an [R]-related log in
    [⟦P⟧_{L[D]}].  We check this directly: for each scheduler in a suite,

    {ol
    {- run the whole-machine game for [P ⊕ M] over the underlay, obtaining
       a log [l];}
    {- translate [l] by [R];}
    {- replay the translated log against the overlay machine running [P]:
       the schedule is {e induced} by the translated log (the paper's
       "picking a suitable scheduler for every interleaving", Thm 3.1),
       and each overlay thread must produce exactly its translated events
       and the same return value.}} *)

type failure = {
  sched_name : string;
  reason : string;
  under_log : Log.t;
  over_log : Log.t;  (** overlay log reconstructed so far *)
}

type report = {
  scheds_checked : int;
  logs : Log.t list;  (** underlay logs observed (a corpus reusable for
                          [Calculus.compat] checks) *)
  translated : Log.t list;
}

val pp_failure : Format.formatter -> failure -> unit

val replay_multi :
  ?max_steps:int ->
  ?allow_blocked_at_end:bool ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Log.t ->
  ((Event.tid * Value.t) list, string * Log.t) result
(** [replay_multi overlay threads l] checks that the overlay machine can
    produce exactly the log [l] under the schedule induced by [l], and
    returns the per-thread results.  When [allow_blocked_at_end] (used for
    refining partial runs, e.g. deadlocked behaviours), a thread that ends
    the log blocked on a primitive is accepted rather than an error.
    Exposed for the multicore/multithread linking checks (Thm 3.1,
    Thm 5.1). *)

val check_sched_stop :
  ?max_steps:int ->
  ?expect_all_done:bool ->
  ?stop:(unit -> bool) ->
  ?memory:Memory.t ->
  underlay:Layer.t ->
  impl:Prog.Module.t ->
  overlay:Layer.t ->
  rel:Sim_rel.t ->
  client:(Event.tid -> Prog.t) ->
  tids:Event.tid list ->
  Sched.t ->
  [ `Checked of (Log.t * Log.t, failure) result | `Interrupted ]
(** {!check_sched} with a cooperative-cancellation closure threaded into
    the underlay game: when [stop] trips mid-run the schedule reports
    [`Interrupted] instead of a verdict, and the budgeted checkers count
    it toward an [Exhausted] result (DESIGN.md S27).  [?memory] selects
    the memory mode of the {e underlay} game only (the overlay spec is
    replayed as ever); under [Tso] the relation must translate the
    buffering events away. *)

val check_sched :
  ?max_steps:int ->
  ?expect_all_done:bool ->
  underlay:Layer.t ->
  impl:Prog.Module.t ->
  overlay:Layer.t ->
  rel:Sim_rel.t ->
  client:(Event.tid -> Prog.t) ->
  tids:Event.tid list ->
  Sched.t ->
  (Log.t * Log.t, failure) result
(** The per-schedule body of {!check}: run the underlay game under one
    scheduler, translate, replay against the overlay, compare per-thread
    results.  Returns the (underlay, translated) log pair.  Pure up to its
    own game state, so the parallel checkers
    ({!Ccal_verify.Linearizability}) can evaluate schedules on any
    domain. *)

val check :
  ?max_steps:int ->
  ?expect_all_done:bool ->
  underlay:Layer.t ->
  impl:Prog.Module.t ->
  overlay:Layer.t ->
  rel:Sim_rel.t ->
  client:(Event.tid -> Prog.t) ->
  tids:Event.tid list ->
  scheds:Sched.t list ->
  unit ->
  (report, failure) result
(** Check [∀P-run. ⟦P ⊕ M⟧_{L'[D]} ⊑_R ⟦P⟧_{L[D]}] for the given client
    over the scheduler suite.  When [expect_all_done] (default true), an
    underlay run that deadlocks or gets stuck is itself a failure — this is
    the progress half of the termination-sensitive refinement. *)

val check_cert :
  ?max_steps:int ->
  ?expect_all_done:bool ->
  Calculus.cert ->
  client:(Event.tid -> Prog.t) ->
  scheds:Sched.t list ->
  (report, failure) result
(** {!check} with the components of a certificate; the domain is the
    certificate's focused thread set. *)
