(** Stable structural fingerprints for cache keys.

    The certificate cache (DESIGN "Certificate cache") keys each stored
    verdict by a fingerprint of everything the verdict depends on: the
    layer interfaces, the implementation programs, the scheduler suite,
    the engine configuration (seeds / DPOR depth / independence
    relation), and the fuel bounds.  Fingerprints are folded through the
    same multiply-xor avalanche round as {!Log.hash} ({!Log.mix}), so
    they diffuse identically to the log hashes stored alongside the
    verdicts.

    Fingerprints are {e stable}: they depend only on the structure of
    the values, never on addresses, ordering of hash tables, or wall
    clock — the same inputs fingerprint identically across processes,
    jobs counts, and runs.  They are {e versioned}: {!version} is mixed
    into the initial state, so bumping it invalidates every cached
    verdict at once (the cache's format-migration story).

    Closures cannot be hashed structurally.  The combinators below deal
    with each closure-bearing type explicitly: programs ({!prog}) are
    fingerprinted by probing their continuations with a small fixed set
    of deterministic values under a node budget; layers ({!layer}) by
    their name, primitive names and kinds, and rely/guarantee names;
    schedulers ({!scheds}) by their names — which is why every scheduler
    fed to a cached checker must carry a content-bearing name. *)

type t
(** A finished fingerprint. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_hex : t -> string
(** 16-digit lowercase hex rendering — the cache's filename component. *)

val pp : Format.formatter -> t -> unit

val version : int
(** Fingerprint format version.  Mixed into {!empty}; bump it whenever
    the meaning of any combinator changes so stale cache entries become
    unreachable rather than wrong. *)

(** {1 Builder} *)

type state
(** Accumulator state: fold data in with the combinators, then
    {!finish}. *)

val empty : state
(** Initial state, seeded with {!version}. *)

val finish : state -> t
(** Final avalanche pass. *)

val int : state -> int -> state
val bool : state -> bool -> state
val string : state -> string -> state
val option : (state -> 'a -> state) -> state -> 'a option -> state
val list : (state -> 'a -> state) -> state -> 'a list -> state

(** {1 Domain values} *)

val value : state -> Value.t -> state
val event : state -> Event.t -> state

val log : state -> Log.t -> state
(** Mixes {!Log.hash} and the length. *)

val prog : ?budget:int -> state -> Prog.t -> state
(** Structural fingerprint of an interaction tree.  [Ret] mixes the
    value; [Call] mixes the primitive name and arguments, then probes
    the continuation with a fixed deterministic set of return values
    ([()], [0], [1], [true]) and recurses on each resulting subtree.  A
    shared node [budget] (default [2048]) bounds the traversal; when it
    runs out, or a probe raises (e.g. the continuation rejects a probe
    value's type), a distinct marker is mixed instead.  Deterministic as
    long as continuations are pure — which every program built from
    {!Prog.call}/{!Prog.bind} and every ClightX interpretation is. *)

val prog_blind : tid:int -> ?budget:int -> state -> Prog.t -> state
(** Like {!prog}, but every [Vint] equal to [tid] in the structure the
    program {e emits} (call arguments, return values) is replaced by a
    marker before mixing.  Sibling worker programs that differ only in
    their own thread id fingerprint identically — the symmetry-class
    test of the optimal explorer's [sym] reduction (DESIGN.md S31).
    Probe values fed into continuations are not blinded. *)

val modul : ?budget:int -> state -> Prog.Module.t -> state
(** Fingerprint of a module: for each primitive name (in
    {!Prog.Module.names} order), probe the body builder with a fixed set
    of argument vectors and fingerprint the resulting programs.
    [budget] (default [512]) applies per probed body. *)

val layer : state -> Layer.t -> state
(** Name, primitive names and kinds (shared/private), and the
    rely/guarantee names.  Primitive {e semantics} are closures and are
    not probed: a layer's fingerprint is its interface identity, so two
    layers with the same name must export the same semantics (true
    throughout this codebase, where layers are built by named
    constructor functions). *)

val scheds : state -> Sched.t list -> state
(** Scheduler suite identity: the ordered list of scheduler names.
    Anonymous schedulers (the default ["trace"] name of
    {!Sched.of_trace}) make suites indistinguishable — give them
    content-bearing names before fingerprinting. *)

val rel : state -> Sim_rel.t -> state
(** Simulation-relation identity: the relation name (relations are
    closures, like layer primitives — a relation's fingerprint is its
    name, so two relations with the same name must translate
    identically; true throughout this codebase, where relations are
    built by named constructors). *)

val memory : state -> Memory.t -> state
(** The memory mode.  Folded into every game-shaped key (DESIGN.md S29)
    so an SC verdict is never served for a TSO query and vice versa,
    even where the two modes' layer interfaces coincide. *)
