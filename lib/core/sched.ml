type t = {
  name : string;
  pick : step:int -> Log.t -> runnable:Event.tid list -> Event.tid option;
}

(* SplitMix-style avalanche with constants in OCaml's 63-bit int range. *)
let splitmix x =
  let x = (x * 0x2545F491) + 0x9E3779B9 in
  let x = (x lxor (x lsr 16)) * 0x45D9F3B in
  let x = (x lxor (x lsr 13)) * 0xC2B2AE35 in
  (* [abs min_int] is still negative: mask the sign bit away so the result
     is non-negative for every input, including [min_int]. *)
  abs (x lxor (x lsr 16)) land max_int

let round_robin =
  {
    name = "round-robin";
    pick =
      (fun ~step _ ~runnable ->
        match runnable with
        | [] -> None
        | _ ->
          let sorted = List.sort_uniq Stdlib.compare runnable in
          Some (List.nth sorted (step mod List.length sorted)));
  }

let random ~seed =
  {
    name = Printf.sprintf "random(seed=%d)" seed;
    pick =
      (fun ~step _ ~runnable ->
        match runnable with
        | [] -> None
        | _ ->
          let n = List.length runnable in
          Some (List.nth runnable (splitmix ((seed * 1_000_003) + step) mod n)));
  }

let of_trace ?(name = "trace") trace =
  let remaining = ref trace in
  {
    name;
    pick =
      (fun ~step log ~runnable ->
        let rec next () =
          match !remaining with
          | [] -> round_robin.pick ~step log ~runnable
          | i :: rest ->
            remaining := rest;
            if List.mem i runnable then Some i else next ()
        in
        next ());
  }

let biased ~favored ~ratio ~seed =
  {
    name = Printf.sprintf "biased(%d x%d)" favored ratio;
    pick =
      (fun ~step _ ~runnable ->
        match runnable with
        | [] -> None
        | _ ->
          let h = splitmix ((seed * 7_919) + step) in
          if List.mem favored runnable && h mod (ratio + 1) <> 0 then Some favored
          else
            let n = List.length runnable in
            Some (List.nth runnable (h / 7 mod n)));
  }

let default_suite ~seeds =
  round_robin :: List.init seeds (fun k -> random ~seed:(k + 1))
