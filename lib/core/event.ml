type tid = int

type t = {
  src : tid;
  tag : string;
  args : Value.t list;
  ret : Value.t;
}

let make ?(args = []) ?(ret = Value.unit) src tag = { src; tag; args; ret }

let switch_tag = "switch"
let switch i = make i switch_tag
let is_switch e = String.equal e.tag switch_tag

let equal a b =
  a.src = b.src
  && String.equal a.tag b.tag
  && (try List.for_all2 Value.equal a.args b.args with Invalid_argument _ -> false)
  && Value.equal a.ret b.ret

let hash e = Hashtbl.hash (e.src, e.tag, e.args, e.ret)

let compare a b =
  let c = Stdlib.compare a.src b.src in
  if c <> 0 then c
  else
    let c = String.compare a.tag b.tag in
    if c <> 0 then c
    else
      let c = List.compare Value.compare a.args b.args in
      if c <> 0 then c else Value.compare a.ret b.ret

let pp fmt e =
  match e.args with
  | [] -> Format.fprintf fmt "%d.%s->%a" e.src e.tag Value.pp e.ret
  | args ->
    Format.fprintf fmt "%d.%s(%a)->%a" e.src e.tag
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",") Value.pp)
      args Value.pp e.ret

let to_string e = Format.asprintf "%a" pp e
