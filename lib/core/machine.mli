(** The (local) layer machine.

    An abstract layer machine based on an interface [L] is the base machine
    extended with the abstract states and primitives of [L] (Sec. 2).  This
    module executes a program of one focused thread over a layer interface:

    {ul
    {- private primitive calls and returns are {e silent} transitions;}
    {- each shared primitive call is a {e query point}: unless the thread
       is in the critical state, the machine first queries the environment
       context for the events appended by other participants, then performs
       the shared call, appending its events to the log (Sec. 3.2);}
    {- a blocked shared call ([Layer.Block]) makes the machine query the
       environment again and retry — this is the spec-level spinning of
       e.g. [φ'_acq[i]] waiting for its ticket to be served.}}

    The same single-move stepper also presents the running program {e as a
    strategy} ({!strategy_of_prog}), realizing the paper's
    "[⟨P⟩_{L[i]}] can also be viewed as a strategy" (Sec. 2). *)

type thread_state = {
  prog : Prog.t;
  abs : Abs.t;  (** private abstract state *)
  crit : bool;  (** currently in the critical state? *)
}

val initial : Layer.t -> Event.tid -> Prog.t -> thread_state

type move_result =
  | Moved of Event.t list * thread_state
      (** performed one shared call (events in order); private steps before
          it were executed silently *)
  | Finished of Value.t * Abs.t
      (** the program returned without reaching another query point *)
  | Blocked_at of thread_state * string
      (** the named shared primitive is not enabled on this log; the
          returned state resumes exactly at the blocked call *)
  | Stuck of Layer.stuck_kind * string
      (** no valid transition; the kind distinguishes a detected data race
          ([Layer.Data_race]) from ordinary stuckness *)

val step_move :
  ?private_fuel:int ->
  Layer.t ->
  Event.tid ->
  thread_state ->
  Log.t ->
  move_result
(** Execute silent steps then at most one shared primitive call.
    [private_fuel] (default 100_000) bounds silent steps per move so that a
    diverging private computation is reported as [Stuck] rather than
    looping. *)

val step_move_counted :
  ?private_fuel:int ->
  Layer.t ->
  Event.tid ->
  thread_state ->
  Log.t ->
  move_result * int
(** Like {!step_move} but also returns the number of silent steps taken —
    the interpreter's cost model (see the Sec. 6 performance experiment). *)

val strategy_of_prog : Layer.t -> Event.tid -> Prog.t -> Strategy.t
(** The strategy [⟨P⟩_{L[i]}]: each strategy step performs one move of the
    layer machine on the given log. *)

(** {1 Whole-program local execution} *)

type run_outcome =
  | Done of Value.t
  | No_progress of string
      (** blocked with an exhausted environment (the paper's machines wait
          forever; we bound retries) *)
  | Stuck_run of string
  | Out_of_fuel

type run_result = {
  outcome : run_outcome;
  log : Log.t;  (** final global log, env events included *)
  own_events : Event.t list;  (** chronological events emitted by the focused thread *)
  moves : int;  (** shared moves performed *)
  silent_steps : int;  (** private/silent steps performed — the cost model
                           for the Sec. 6 performance experiment *)
  guar_violation : Log.t option;
      (** earliest log at which the layer's guarantee failed for the
          focused thread, if it ever did *)
}

val run_local :
  ?max_moves:int ->
  ?block_retries:int ->
  ?check_guar:bool ->
  Layer.t ->
  Event.tid ->
  env:Env_context.t ->
  Prog.t ->
  run_result
(** Run a whole program of thread [i] over [L[i]] under environment context
    [env], starting from the empty log. *)
