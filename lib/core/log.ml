type t = { rev_events : Event.t list; len : int }

let empty = { rev_events = []; len = 0 }

let append e l = { rev_events = e :: l.rev_events; len = l.len + 1 }

let append_all es l = List.fold_left (fun l e -> append e l) l es

let newest_first l = l.rev_events

let chronological l = List.rev l.rev_events

let length l = l.len
let is_empty l = l.len = 0

let latest l = match l.rev_events with [] -> None | e :: _ -> Some e

let suffix_since earlier later =
  if earlier.len > later.len then
    invalid_arg "Log.suffix_since: earlier log is longer than later log"
  else
    let rec take acc n evs =
      if n = 0 then acc
      else
        match evs with
        | [] -> invalid_arg "Log.suffix_since: inconsistent lengths"
        | e :: rest -> take (e :: acc) (n - 1) rest
    in
    take [] (later.len - earlier.len) later.rev_events

let filter p l =
  let evs = List.filter p l.rev_events in
  { rev_events = evs; len = List.length evs }

let map_events f l =
  let chron = chronological l in
  let mapped = List.concat_map f chron in
  List.fold_left (fun acc e -> append e acc) empty mapped

let by_thread i l = List.filter (fun (e : Event.t) -> e.src = i) (chronological l)

let count p l =
  List.fold_left (fun n e -> if p e then n + 1 else n) 0 l.rev_events

let equal a b =
  a.len = b.len && List.for_all2 Event.equal a.rev_events b.rev_events

(* Multiply-xor avalanche per event.  The previous [acc * 31 + h] chain
   barely diffuses the low bits: permutations and near-permutations of the
   same events land in the same bucket far too often, degrading [dedup]
   to its quadratic worst case on exactly the permuted-log corpora the
   DPOR harness feeds it.  The xor-in / odd-multiply / shift-down round
   spreads every event hash across the word, and a second finalization
   pass mixes the length back in so prefixes separate from extensions. *)
let mix acc k =
  let h = (acc lxor k) * 0x9E3779B1 in
  (h lxor (h lsr 16)) land max_int

let hash l =
  let h = List.fold_left (fun acc e -> mix acc (Event.hash e)) 0x2545F491 l.rev_events in
  let h = mix h l.len in
  mix h (h lsr 11)

(* Order-preserving dedup, hashing into buckets so counting distinct logs
   is linear in the total number of events rather than quadratic in the
   number of logs.  Collisions only cost time, never correctness: equality
   within a bucket is decided by [equal].  [?hash] lets the tests drive
   the collision path deliberately (e.g. a constant hash). *)
let dedup ?(hash = hash) logs =
  let buckets = Hashtbl.create 64 in
  List.filter
    (fun l ->
      let h = hash l in
      let seen = Option.value (Hashtbl.find_opt buckets h) ~default:[] in
      if List.exists (equal l) seen then false
      else (
        Hashtbl.replace buckets h (l :: seen);
        true))
    logs

let pp fmt l =
  Format.fprintf fmt "@[<hov 1>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") Event.pp)
    (chronological l)

let to_string l = Format.asprintf "%a" pp l
