type failure = {
  sched_name : string;
  reason : string;
  under_log : Log.t;
  over_log : Log.t;
}

type report = {
  scheds_checked : int;
  logs : Log.t list;
  translated : Log.t list;
}

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v 2>refinement failure under %s: %s@ underlay log: %a@ overlay log: %a@]"
    f.sched_name f.reason Log.pp f.under_log Log.pp f.over_log

type slot = {
  mutable state : [ `Run of Machine.thread_state | `Done of Value.t ];
  mutable pending : Event.t list;  (** events of the current move not yet matched *)
}

let replay_multi ?(max_steps = 200_000) ?(allow_blocked_at_end = false) overlay
    threads l =
  let slots =
    List.map
      (fun (i, p) ->
        i, { state = `Run (Machine.initial overlay i p); pending = [] })
      threads
  in
  let find i =
    match List.assoc_opt i slots with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "log mentions unknown thread %d" i)
  in
  let events = Log.chronological l in
  let rec consume log remaining steps =
    if steps > max_steps then Error ("replay " ^ Prog.steps_bound_exceeded, log)
    else
      match remaining with
      | [] -> finish log
      | (e : Event.t) :: rest -> (
        match find e.src with
        | Error msg -> Error (msg, log)
        | Ok slot -> (
          match slot.pending with
          | p :: ps ->
            if Event.equal p e then (
              slot.pending <- ps;
              consume (Log.append e log) rest (steps + 1))
            else
              Error
                ( Printf.sprintf "overlay thread %d emits %s but log has %s"
                    e.src (Event.to_string p) (Event.to_string e),
                  log )
          | [] -> (
            match slot.state with
            | `Done _ ->
              Error
                ( Printf.sprintf "thread %d already finished but log has %s"
                    e.src (Event.to_string e),
                  log )
            | `Run st -> (
              match Machine.step_move overlay e.src st log with
              | Machine.Moved (evs, st') ->
                slot.state <- `Run st';
                slot.pending <- evs;
                if evs = [] then consume log remaining (steps + 1)
                else consume log remaining (steps + 1)
              | Machine.Finished (v, _) ->
                slot.state <- `Done v;
                Error
                  ( Printf.sprintf
                      "thread %d finished silently but log expects %s" e.src
                      (Event.to_string e),
                    log )
              | Machine.Blocked_at (_, prim) ->
                Error
                  ( Printf.sprintf
                      "overlay thread %d blocked on %s where log expects %s"
                      e.src prim (Event.to_string e),
                    log )
              | Machine.Stuck (_, msg) ->
                Error (Printf.sprintf "overlay thread %d stuck: %s" e.src msg, log)
              ))))
  and finish log =
    (* All events consumed: every thread must run to completion silently. *)
    let rec drain (i, slot) fuel log =
      if fuel <= 0 then Error (Printf.sprintf "thread %d does not terminate silently" i, log)
      else
        match slot.state with
        | `Done _ -> Ok ()
        | `Run st -> (
          if slot.pending <> [] then
            Error
              ( Printf.sprintf "thread %d has unmatched pending events" i,
                log )
          else
            match Machine.step_move overlay i st log with
            | Machine.Finished (v, _) ->
              slot.state <- `Done v;
              Ok ()
            | Machine.Moved ([], st') ->
              slot.state <- `Run st';
              drain (i, slot) (fuel - 1) log
            | Machine.Moved (evs, _) ->
              Error
                ( Printf.sprintf "thread %d emits extra events: %s" i
                    (String.concat ", " (List.map Event.to_string evs)),
                  log )
            | Machine.Blocked_at (_, prim) ->
              if allow_blocked_at_end then Ok ()
              else
                Error
                  (Printf.sprintf "thread %d blocked on %s at end of log" i prim, log)
            | Machine.Stuck (_, msg) ->
              Error (Printf.sprintf "thread %d stuck at end of log: %s" i msg, log))
    in
    let rec drain_all = function
      | [] ->
        Ok
          (List.filter_map
             (fun (i, slot) ->
               match slot.state with `Done v -> Some (i, v) | `Run _ -> None)
             slots)
      | s :: rest -> (
        match drain s 1_000 log with
        | Ok () -> drain_all rest
        | Error e -> Error e)
    in
    drain_all slots
  in
  consume Log.empty events 0

(* The per-schedule body of {!check}: one underlay run, translated and
   replayed against the overlay.  Exposed (through {!check_sched}) so the
   parallel checkers can hand it, schedule by schedule, to a domain pool;
   it is pure up to its own game state. *)
let check_one_gen ?stop ?memory ~max_steps ~expect_all_done ~underlay ~overlay
    ~rel ~threads_under ~threads_over sched =
  (* [?memory] applies to the underlay game only: the implementation runs
     on the (possibly buffered) hardware machine, while the overlay spec
     is replayed as ever — the relation is responsible for translating
     the buffering events away ({!Ccal_machine.Tso.under_memory}). *)
  let outcome =
    Game.replay
      (Game.config ~max_steps ?stop ?memory underlay threads_under sched)
  in
  match outcome.Game.status with
  | Game.Cancelled ->
    (* Only reachable when a [stop] closure was installed: the budget ran
       out mid-game.  Not a refinement verdict either way — the budgeted
       scan counts it as an interrupted schedule. *)
    `Interrupted
  | (Game.Deadlock _ | Game.Stuck _ | Game.Out_of_fuel) when expect_all_done ->
    `Checked
      (Error
         {
           sched_name = sched.Sched.name;
           reason =
             Format.asprintf "underlay run did not complete: %a"
               Game.pp_status outcome.Game.status;
           under_log = outcome.Game.log;
           over_log = Log.empty;
         })
  | _ ->
    `Checked
      (let l = outcome.Game.log in
       let lt = Sim_rel.apply rel l in
       match
         replay_multi ~max_steps ~allow_blocked_at_end:(not expect_all_done)
           overlay threads_over lt
       with
       | Error (reason, over_log) ->
         Error { sched_name = sched.Sched.name; reason; under_log = l; over_log }
       | Ok over_results ->
         (* Termination-sensitivity: results must agree thread-by-thread. *)
         let mismatches =
           List.filter
             (fun (i, v) ->
               match List.assoc_opt i over_results with
               | Some v' -> not (Value.equal v v')
               | None -> true)
             outcome.Game.results
         in
         (match mismatches with
         | (i, v) :: _ ->
           Error
             {
               sched_name = sched.Sched.name;
               reason =
                 Printf.sprintf
                   "thread %d returned %s at the underlay but %s at the overlay"
                   i (Value.to_string v)
                   (match List.assoc_opt i over_results with
                   | Some v' -> Value.to_string v'
                   | None -> "nothing");
               under_log = l;
               over_log = lt;
             }
         | [] -> Ok (l, lt)))

let check_one ~max_steps ~expect_all_done ~underlay ~overlay ~rel ~threads_under
    ~threads_over sched =
  match
    check_one_gen ~max_steps ~expect_all_done ~underlay ~overlay ~rel
      ~threads_under ~threads_over sched
  with
  | `Checked r -> r
  | `Interrupted -> assert false (* no stop closure installed *)

let check_sched_stop ?(max_steps = 200_000) ?(expect_all_done = true) ?stop
    ?memory ~underlay ~impl ~overlay ~rel ~client ~tids sched =
  let threads_under =
    List.map (fun i -> i, Prog.Module.link impl (client i)) tids
  in
  let threads_over = List.map (fun i -> i, client i) tids in
  check_one_gen ?stop ?memory ~max_steps ~expect_all_done ~underlay ~overlay
    ~rel ~threads_under ~threads_over sched

let check_sched ?(max_steps = 200_000) ?(expect_all_done = true) ~underlay
    ~impl ~overlay ~rel ~client ~tids sched =
  let threads_under =
    List.map (fun i -> i, Prog.Module.link impl (client i)) tids
  in
  let threads_over = List.map (fun i -> i, client i) tids in
  check_one ~max_steps ~expect_all_done ~underlay ~overlay ~rel ~threads_under
    ~threads_over sched

let check ?(max_steps = 200_000) ?(expect_all_done = true) ~underlay ~impl
    ~overlay ~rel ~client ~tids ~scheds () =
  let threads_under =
    List.map (fun i -> i, Prog.Module.link impl (client i)) tids
  in
  let threads_over = List.map (fun i -> i, client i) tids in
  let rec go scheds_checked logs translated = function
    | [] -> Ok { scheds_checked; logs = List.rev logs; translated = List.rev translated }
    | sched :: rest -> (
      match
        check_one ~max_steps ~expect_all_done ~underlay ~overlay ~rel
          ~threads_under ~threads_over sched
      with
      | Error f -> Error f
      | Ok (l, lt) -> go (scheds_checked + 1) (l :: logs) (lt :: translated) rest)
  in
  go 0 [] [] scheds

let check_cert ?max_steps ?expect_all_done (cert : Calculus.cert) ~client ~scheds =
  check ?max_steps ?expect_all_done ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ~scheds ()
