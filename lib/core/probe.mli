(** The instrumentation engine behind {!Ccal_verify.Telemetry}
    (DESIGN.md S25): named monotonic counters and timed spans, domain-safe
    and ~free when disabled.

    This lives in core so the hot paths ({!Game.run}, the machine linking
    bodies) can be instrumented without a dependency cycle; the stats
    table and Chrome-trace exporters live in [Ccal_verify.Telemetry],
    which re-exports this interface.

    Everything here is verdict-neutral: instrumentation observes the
    checkers, it never influences them.  Counters are additionally
    {e deterministic across jobs counts}: increments made inside a
    [Parallel] job body are diverted into a per-job delta ({!captured})
    and committed only for the deterministically merged prefix, so the
    totals under [jobs = 4] equal the sequential oracle's bit for bit. *)

val now_ns : unit -> int64
(** The monotonic clock (same source as [Ccal_verify.Verify_clock]). *)

(** {1 The switch} *)

val enable : unit -> unit
val disable : unit -> unit

val is_enabled : unit -> bool
(** Default [false]: every other entry point is a single atomic read. *)

(** {1 Counters} *)

type counter
(** A named monotonic counter; interned once, bumped without lookups. *)

val counter : string -> counter
(** Intern (or find) the counter of that name. *)

val add : counter -> int -> unit
val incr : counter -> unit

val add_named : string -> int -> unit
(** [add] for dynamic names (e.g. per checker × object keys); pays a
    table lookup, so intern with {!counter} on hot paths. *)

val counters : unit -> (string * int) list
(** Snapshot of all non-zero counters, sorted by name. *)

val get : string -> int

val diff_counters :
  (string * int) list -> (string * int) list -> (string * int) list
(** [diff_counters before after]: per-name growth between two
    {!counters} snapshots (counters are monotone). *)

(** {1 Deterministic capture}

    Used by the parallel executor: a job body's counter increments are
    collected into a delta instead of the globals, and the executor
    commits the deltas of exactly the jobs a sequential early-exit scan
    would have run, in index order. *)

type delta

val captured : (unit -> unit) -> delta option
(** Run [f] with this domain's counter increments diverted into a fresh
    delta.  Passthrough ([None]) when disabled.  [f] must not raise (the
    executor's job bodies never do). *)

val commit : delta option -> unit
(** Apply a delta via {!add} — so a scan nested inside another capture
    folds into the enclosing delta, keeping the outer merge
    deterministic too. *)

(** {1 Spans} *)

type span_ev = {
  name : string;
  ts_ns : int64;
  dur_ns : int64;
  dom : int;  (** recording domain — one Chrome-trace track each *)
  depth : int;  (** nesting depth within that domain at record time *)
}

val span : string -> (unit -> 'a) -> 'a
(** Time [f] on this domain's track; nested calls record increasing
    [depth].  Spans carry wall-clock and are {e not} jobs-deterministic
    (unlike counters); per-domain buffers are capped so a forgotten
    {!enable} stays bounded. *)

val spans : unit -> span_ev list
(** All recorded spans, grouped by domain and ordered by start time.
    Meaningful once the pools are idle (between batches / after runs). *)

val reset : unit -> unit
(** Zero every counter and drop every span (tests, benchmarks). *)

(** {1 The standard counters} *)

val schedules_run : counter
(** Bumped once per completed {!Game.run}. *)

val replay_steps : counter
(** Bumped by each {!Game.run} with its shared + silent step total — the
    log-replay work the run performed. *)

val sleep_set_prunes : counter
(** Bumped by [Dpor.explore] with the branches sleep sets skipped. *)

val logs_distinct : counter
(** Bumped where checkers count distinct logs ([Dpor.explore],
    [Linearizability.check]). *)

val race_checks : counter
(** Bumped once per schedule the race checker examines. *)
