(** The crash move of the async-disk machine (DESIGN.md S30).

    A crash-enabled layer exports {!crash_tag}; the game synthesises a
    crash pseudo-thread (id {!crash_tid}, the same negative-tid
    machinery as the TSO flushers) whose single move fires it at a
    scheduler-chosen point, non-deterministically dropping or tearing
    any subset of the disk's unsynced in-flight writes. *)

val crash_tag : string
(** Name of the crash primitive ([d_crash keep tear]).  Its presence in
    a layer is how {!Game.pseudo_threads} recognises the machine as
    crashable. *)

val crash_tid : Event.tid
(** Thread id of the crash pseudo-thread: [-1], disjoint from every real
    thread (ids >= 1) and every flusher ({!Memory.flusher_tid} of a cpu
    >= 1). *)

val is_crash : Event.tid -> bool

val keeps : mask:int -> int -> bool
(** [keeps ~mask i]: does bit [i] of the mask select in-flight write [i]
    (oldest first)? *)

val all_keep : int -> int
(** The keep-everything mask over [n] in-flight writes. *)

val crash_args : keep:int -> tear:int -> Value.t list
(** The argument list of a [crash_tag] call. *)
