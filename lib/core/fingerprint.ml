type t = int
type state = int

let equal = Int.equal
let compare = Int.compare
let to_hex fp = Printf.sprintf "%016x" fp
let pp fmt fp = Format.pp_print_string fmt (to_hex fp)

(* Bump whenever any combinator below changes meaning: stale entries
   written under the old scheme must become unreachable, not wrong. *)
let version = 1

let int st n = Log.mix st n
let bool st b = int st (if b then 1 else 0)

(* Same seed constant as [Log.hash], then the version: a format bump
   re-keys every fingerprint at once. *)
let empty = int (int 0x2545F491 0x46505249 (* "FPRI" *)) version

let finish st =
  let st = int st (st lsr 11) in
  int st 0x464E (* "FN" *)

let string st s =
  String.fold_left (fun st c -> int st (Char.code c)) (int st (String.length s)) s

let option f st = function None -> int st 0x4E (* 'N' *) | Some x -> f (int st 0x53) x

let list f st xs = List.fold_left f (int st (List.length xs)) xs

let rec value st (v : Value.t) =
  match v with
  | Vunit -> int st 1
  | Vint n -> int (int st 2) n
  | Vbool b -> bool (int st 3) b
  | Vpair (a, b) -> value (value (int st 4) a) b
  | Vlist vs -> list value (int st 5) vs

let event st (e : Event.t) =
  value (list value (string (int (int st 0x45) e.src) e.tag) e.args) e.ret

let log st l = int (int st (Log.length l)) (Log.hash l)

(* Fixed probe set for continuations.  Covers the return shapes the
   object bodies actually branch on: unit, the 0/1 integers (ticket
   numbers, queue heads, boolean-as-int flags) and a genuine boolean.
   A probe whose type the continuation rejects raises; that is mixed as
   a marker, not an error — rejection is itself structure. *)
let probes = [ Value.Vunit; Value.Vint 0; Value.Vint 1; Value.Vbool true ]

let prog ?(budget = 2048) st p =
  let remaining = ref budget in
  let rec go st (p : Prog.t) =
    if !remaining <= 0 then int st 0x544F (* truncation marker *)
    else begin
      decr remaining;
      match p with
      | Ret v -> value (int st 0x52) v
      | Call { prim; args; k } ->
        let st = list value (string (int st 0x43) prim) args in
        List.fold_left
          (fun st pv ->
            match k pv with
            | sub -> go (value (int st 0x4B) pv) sub
            | exception _ -> int (value (int st 0x58) pv) 0x454B (* probe rejected *))
          st probes
    end
  in
  go st p

(* Tid-blinded program fingerprint: like [prog], but every [Vint]
   occurrence of the thread's own id in the structure the program emits
   (primitive arguments, return values) is replaced by a marker.  Two
   sibling workers whose programs differ only in their own tid then
   fingerprint identically — the symmetry classes of the optimal
   explorer's [sym] reduction (DESIGN.md S31).  Probe values fed INTO
   continuations are not blinded: they are ours and identical across
   threads. *)
let prog_blind ~tid ?(budget = 2048) st p =
  let rec blind (v : Value.t) =
    match v with
    | Vint n when n = tid -> Value.Vint 0x544944 (* "TID" marker *)
    | Vpair (a, b) -> Value.Vpair (blind a, blind b)
    | Vlist vs -> Value.Vlist (List.map blind vs)
    | Vunit | Vbool _ | Vint _ -> v
  in
  let bvalue st v = value st (blind v) in
  let remaining = ref budget in
  let rec go st (p : Prog.t) =
    if !remaining <= 0 then int st 0x544F
    else begin
      decr remaining;
      match p with
      | Ret v -> bvalue (int st 0x52) v
      | Call { prim; args; k } ->
        let st = list bvalue (string (int st 0x43) prim) args in
        List.fold_left
          (fun st pv ->
            match k pv with
            | sub -> go (value (int st 0x4B) pv) sub
            | exception _ -> int (value (int st 0x58) pv) 0x454B)
          st probes
    end
  in
  go st p

(* Argument vectors for probing module bodies: nullary, one int, two
   ints — the arities the case-study primitives use. *)
let arg_probes = [ []; [ Value.Vint 0 ]; [ Value.Vint 0; Value.Vint 1 ] ]

let modul ?(budget = 512) st m =
  (* [budget] is per probed body, so whole-module work is bounded by
     [budget * |names| * |arg_probes|]. *)
  List.fold_left
    (fun st name ->
      let st = string (int st 0x4D) name in
      match Prog.Module.find name m with
      | None -> int st 0x30
      | Some body ->
        List.fold_left
          (fun st args ->
            let st = list value st args in
            match body args with
            | p -> prog ~budget st p
            | exception _ -> int st 0x454B)
          st arg_probes)
    st (Prog.Module.names m)

let layer st (l : Layer.t) =
  let st = string (int st 0x4C) l.name in
  let st = string st l.rely.Rely_guarantee.name in
  let st = string st l.guar.Rely_guarantee.name in
  list
    (fun st (name, prim) ->
      int (string st name) (match prim with Layer.Shared _ -> 1 | Layer.Private _ -> 2))
    st l.prims

let scheds st ss = list (fun st (s : Sched.t) -> string st s.name) st ss

(* The memory mode enters every game-shaped key (DESIGN.md S29): an SC
   verdict must never be served for a TSO query, even for layers whose
   prim lists coincide. *)
let memory st (m : Memory.t) =
  int (int st 0x4D454D (* "MEM" *)) (match m with Memory.Sc -> 1 | Memory.Tso -> 2)

let rel st (r : Sim_rel.t) = string (int st 0x52454C (* "REL" *)) r.Sim_rel.name
