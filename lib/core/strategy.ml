type t = { step : Log.t -> step_result }

and step_result =
  | Move of Event.t list * outcome
  | Blocked
  | Refuse of string

and outcome =
  | Done of Value.t
  | Next of t

let stopped v = { step = (fun _ -> Move ([], Done v)) }

let of_moves ?(ret = Value.unit) moves =
  let rec go = function
    | [] -> stopped ret
    | m :: rest -> { step = (fun l -> Move (m l, Next (go rest))) }
  in
  go moves

let emit_once f i =
  { step = (fun l -> Move (f i l, Done Value.unit)) }

let rec map_events f s =
  {
    step =
      (fun l ->
        match s.step l with
        | Move (evs, out) ->
          let out' =
            match out with
            | Done v -> Done v
            | Next s' -> Next (map_events f s')
          in
          Move (List.concat_map f evs, out')
        | Blocked -> Blocked
        | Refuse msg -> Refuse msg);
  }

let pp_step_result fmt = function
  | Move (evs, out) ->
    Format.fprintf fmt "Move([%a], %s)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         Event.pp)
      evs
      (match out with Done v -> "Done " ^ Value.to_string v | Next _ -> "Next")
  | Blocked -> Format.pp_print_string fmt "Blocked"
  | Refuse msg -> Format.fprintf fmt "Refuse(%s)" msg

(* ------------------------------------------------------------------ *)
(* Exploration engines (DESIGN.md S31)                                 *)
(* ------------------------------------------------------------------ *)

module Engine = struct
  type algo = Exhaustive | Dpor | Optimal | Random

  type t = {
    algo : algo;
    depth : int;
    dedup : bool;
    sym : bool;
  }

  let algo_name = function
    | Exhaustive -> "exhaustive"
    | Dpor -> "dpor"
    | Optimal -> "optimal"
    | Random -> "random"

  let grammar =
    "default | dpor[:DEPTH] | optimal[:DEPTH][,dedup][,sym] | \
     exhaustive[:DEPTH] | random[:COUNT]"

  let validate t =
    let flag_error flag =
      Error
        (Printf.sprintf
           "invalid strategy combination: engine \"%s\" does not take flag \
            \"%s\" (only \"optimal\" supports dedup/sym)"
           (algo_name t.algo) flag)
    in
    if t.depth <= 0 then
      Error
        (Printf.sprintf "invalid strategy: %s %d must be positive"
           (match t.algo with Random -> "count" | _ -> "depth")
           t.depth)
    else
      match t.algo with
      | Optimal -> Ok ()
      | Exhaustive | Dpor | Random ->
        if t.dedup then flag_error "dedup"
        else if t.sym then flag_error "sym"
        else Ok ()

  let checked t =
    match validate t with Ok () -> t | Error msg -> invalid_arg msg

  let dpor ~depth = checked { algo = Dpor; depth; dedup = false; sym = false }

  let optimal ?(dedup = false) ?(sym = false) ~depth () =
    checked { algo = Optimal; depth; dedup; sym }

  let exhaustive ~depth =
    checked { algo = Exhaustive; depth; dedup = false; sym = false }

  let random ~count =
    checked { algo = Random; depth = count; dedup = false; sym = false }

  let default = dpor ~depth:4

  (* Canonical descriptor.  This string is cache-identity-bearing: it
     enters the suite cache key and every verdict key built from an
     implicit strategy, so its rendering must stay stable. *)
  let to_string t =
    Printf.sprintf "%s:%d%s%s" (algo_name t.algo) t.depth
      (if t.dedup then ",dedup" else "")
      (if t.sym then ",sym" else "")

  let pp fmt t = Format.pp_print_string fmt (to_string t)

  let of_string s =
    let ( let* ) = Result.bind in
    match String.split_on_char ',' (String.trim s) with
    | [] | [ "" ] ->
      Error (Printf.sprintf "empty strategy (expected %s)" grammar)
    | base :: flags ->
      let* algo, depth =
        let name, num =
          match String.index_opt base ':' with
          | None -> base, None
          | Some i ->
            ( String.sub base 0 i,
              Some (String.sub base (i + 1) (String.length base - i - 1)) )
        in
        let* n =
          match num with
          | None -> Ok None
          | Some raw -> (
            match int_of_string_opt raw with
            | Some n -> Ok (Some n)
            | None ->
              Error
                (Printf.sprintf "invalid strategy %S: %S is not an integer" s
                   raw))
        in
        match name, n with
        | "default", None -> Ok (Dpor, 4)
        | "default", Some _ ->
          Error
            (Printf.sprintf
               "invalid strategy %S: \"default\" takes no depth" s)
        | "dpor", n -> Ok (Dpor, Option.value n ~default:4)
        | "optimal", n -> Ok (Optimal, Option.value n ~default:4)
        | "exhaustive", n -> Ok (Exhaustive, Option.value n ~default:4)
        | "random", n -> Ok (Random, Option.value n ~default:16)
        | other, _ ->
          Error
            (Printf.sprintf "unknown strategy %S (expected %s)" other grammar)
      in
      let* dedup, sym =
        List.fold_left
          (fun acc flag ->
            let* dedup, sym = acc in
            match String.trim flag with
            | "dedup" ->
              if dedup then
                Error (Printf.sprintf "invalid strategy %S: duplicate flag \"dedup\"" s)
              else Ok (true, sym)
            | "sym" ->
              if sym then
                Error (Printf.sprintf "invalid strategy %S: duplicate flag \"sym\"" s)
              else Ok (dedup, true)
            | other ->
              Error
                (Printf.sprintf
                   "unknown strategy flag %S in %S (expected \"dedup\" or \
                    \"sym\")"
                   other s))
          (Ok (false, false)) flags
      in
      let t = { algo; depth; dedup; sym } in
      let* () = validate t in
      Ok t

  (* Prune counters of one engine walk — what the suite cache stores
     alongside the surviving prefixes. *)
  type walk_stats = {
    sleep_prunes : int;
    dedup_hits : int;
    sym_prunes : int;
  }

  let no_walk_stats = { sleep_prunes = 0; dedup_hits = 0; sym_prunes = 0 }

  (* What an engine implementation hands back: either a tree of
     scheduling prefixes (cacheable, replayed through [Sched.of_trace]
     under [tag]) or an opaque scheduler list (never cached). *)
  type suite =
    | Prefixes of {
        tag : string;
        prefixes : Event.tid list list;
        stats : walk_stats;
      }
    | Schedulers of Sched.t list

  (* The contract an engine implementation satisfies.  Implementations
     register with [Explore.register_engine]; the checkers select them
     through the descriptor in [Ctx.t] and never name a module, so a new
     engine is one module plus one registration — no checker changes. *)
  module type IMPL = sig
    val algo : algo

    val cacheable : bool
    (** Whether a [Prefixes] suite may be memoized by the certificate
        cache, keyed on the descriptor and the game identity. *)

    val suite :
      engine:t ->
      jobs:int ->
      memory:Memory.t ->
      ?private_fuel:int ->
      Layer.t ->
      (Event.tid * Prog.t) list ->
      suite
  end
end
