(* The machine memory mode (DESIGN.md S29).

   [Sc] is the paper's machine: every shared store reaches memory in the
   move that issues it.  [Tso] is the x86-TSO extension the paper's
   Limitations section calls promising: plain stores enter a per-CPU
   FIFO store buffer and reach memory only when the buffer drains — at a
   fence, at a read-modify-write, at a synchronisation primitive, or
   through an explicit buffer-flush scheduler move.

   The flush move is modelled as a pseudo-thread per CPU (a "flusher"):
   an infinite program repeatedly calling the [flush_tag] primitive for
   its CPU.  Flusher thread ids are negative, disjoint from every real
   thread id, so schedulers, DPOR prefixes and logs can name them
   without colliding with the domain. *)

type t = Sc | Tso

let default = Sc
let equal a b = a = b

let to_string = function Sc -> "sc" | Tso -> "tso"

let of_string = function
  | "sc" | "SC" -> Some Sc
  | "tso" | "TSO" -> Some Tso
  | _ -> None

let pp fmt m = Format.pp_print_string fmt (to_string m)

(* The buffer-flush primitive: [flush cpu] commits the oldest pending
   store of [cpu]'s buffer, or blocks when the buffer is empty.  Only
   TSO layers provide it; its presence is how the game recognises a
   layer as buffered. *)
let flush_tag = "flush"

let flusher_tid cpu = -cpu - 1
let is_flusher i = i < 0
let cpu_of_flusher i = -i - 1
