(** Observable events.

    Every call to a shared primitive is recorded as an observable event
    appended to the global log (Sec. 2).  An event carries the id of the
    thread/CPU that produced it (its source), the primitive's tag, the call
    arguments, and the value the call returned — e.g. the event written
    [i.FAI_t] in the paper is [{src = i; tag = "FAI_t"; args = [b]; ret = t}].

    Hardware scheduling transitions are also recorded as events (Sec. 3.1);
    they use the distinguished tag {!switch_tag}. *)

type tid = int
(** Thread / CPU identifier.  The full domain [D] of the paper is a finite
    set of such ids. *)

type t = {
  src : tid;  (** producing thread / CPU *)
  tag : string;  (** primitive name, e.g. ["FAI_t"], ["acq"], ["pull"] *)
  args : Value.t list;  (** call arguments recorded with the event *)
  ret : Value.t;  (** return value recorded with the event *)
}

val make : ?args:Value.t list -> ?ret:Value.t -> tid -> string -> t
(** [make i tag] builds the event [i.tag]; [args] and [ret] default to
    empty / unit. *)

val switch_tag : string
(** Tag of hardware/software scheduling events ([c.switch]). *)

val switch : tid -> t
(** [switch i] is the scheduling event recording that control was
    transferred to [i]. *)

val is_switch : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, compatible with {!equal} — used by the hashed
    distinct-log counting of the verification harness. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
