type config = {
  layer : Layer.t;
  threads : (Event.tid * Prog.t) list;
  sched : Sched.t;
  max_steps : int;
  log_switches : bool;
  check_guar : bool;
  memory : Memory.t;
  stop : (unit -> bool) option;
}

let config ?(max_steps = 100_000) ?(log_switches = false) ?(check_guar = false)
    ?(memory = Memory.default) ?stop layer threads sched =
  { layer; threads; sched; max_steps; log_switches; check_guar; memory; stop }

(* Buffer flushes as scheduler moves (DESIGN.md S29): under TSO, every
   real thread gets a flusher pseudo-thread whose infinite program
   repeatedly calls the layer's flush primitive for that CPU.  The flush
   primitive blocks on an empty buffer, so a flusher is runnable exactly
   while its CPU has pending stores — and a game whose only pending
   threads are blocked flushers has drained every buffer and is done.
   Layers without the flush primitive (SC machines, spec layers) get no
   flushers regardless of the mode. *)
let flusher_threads ~memory layer threads =
  match (memory : Memory.t) with
  | Memory.Sc -> []
  | Memory.Tso ->
    if not (Layer.has_prim Memory.flush_tag layer) then []
    else
      List.map
        (fun (cpu, _) ->
          let args = [ Value.int cpu ] in
          let rec p = Prog.Call { prim = Memory.flush_tag; args; k = (fun _ -> p) } in
          (Memory.flusher_tid cpu, p))
        threads

(* The crash move as a scheduler pseudo-thread (DESIGN.md S30): a layer
   exporting the crash primitive gets one crash thread whose single move
   fires it — so "the machine loses power here" is just one more
   scheduler choice, enumerated by the same DPOR/exhaustive machinery as
   every other move.  The in-game crash carries the adversarial masks
   (keep nothing, tear nothing); the certifier enumerates the full mask
   lattice analytically over log prefixes. *)
let crash_threads layer =
  if not (Layer.has_prim Durability.crash_tag layer) then []
  else
    let args = Durability.crash_args ~keep:0 ~tear:0 in
    [ (Durability.crash_tid,
       Prog.Call { prim = Durability.crash_tag; args; k = (fun _ -> Prog.Ret Value.unit) }) ]

(* The single synthesis point for every pseudo-thread a game runs beside
   the real domain.  Negative tids are one shared namespace — crash
   thread at -1, flusher for cpu c at -c-1 with cpus >= 1 — and real
   tids must be non-negative; any collision is a construction error
   caught here rather than a silent mis-scheduled game. *)
let pseudo_threads ~memory layer threads =
  let pseudo = flusher_threads ~memory layer threads @ crash_threads layer in
  List.iter
    (fun (i, _) ->
      if i < 0 then
        invalid_arg
          (Printf.sprintf
             "Game.pseudo_threads: real thread id %d collides with the pseudo-thread namespace (tids < 0)"
             i))
    threads;
  let rec distinct = function
    | [] -> ()
    | (i, _) :: rest ->
      if List.mem_assoc i rest then
        invalid_arg
          (Printf.sprintf "Game.pseudo_threads: duplicate pseudo-thread id %d" i);
      distinct rest
  in
  distinct pseudo;
  pseudo

let effective_threads cfg =
  cfg.threads @ pseudo_threads ~memory:cfg.memory cfg.layer cfg.threads

type status =
  | All_done
  | Deadlock of Event.tid list
  | Stuck of Event.tid * Layer.stuck_kind * string
  | Out_of_fuel
  | Cancelled

type outcome = {
  log : Log.t;
  results : (Event.tid * Value.t) list;
  status : status;
  steps : int;
  silent_steps : int;
  guar_violations : (Event.tid * Log.t) list;
}

type slot =
  | Running of Machine.thread_state
  | Finished of Value.t

(* Telemetry (DESIGN.md S25): every completed game bumps the run and
   replay-work counters.  [Probe.add] is a single atomic-bool read when
   telemetry is off, and inside a [Parallel] job the counts go to the
   job's capture delta, keeping totals jobs-deterministic. *)
let observe (o : outcome) =
  Probe.incr Probe.schedules_run;
  Probe.add Probe.replay_steps (o.steps + o.silent_steps);
  o

(* All pending threads are blocked.  Flushers block exactly on an empty
   buffer, so a deadlock made only of flushers is a drained, finished
   game; otherwise the flushers are reported out — they are machinery,
   not members of the domain. *)
let deadlock_status ids =
  match List.filter (fun i -> not (Memory.is_flusher i)) ids with
  | [] -> All_done
  | real -> Deadlock real

let run cfg =
  let slots =
    List.map
      (fun (i, p) -> i, ref (Running (Machine.initial cfg.layer i p)))
      (effective_threads cfg)
  in
  (* Pseudo-threads (tids < 0) are machinery, not members of the domain:
     flushers never finish, but a fired crash thread does, and its unit
     result must not leak into the observable thread results. *)
  let results () =
    List.filter_map
      (fun (i, r) ->
        match !r with
        | Finished v when i >= 0 -> Some (i, v)
        | Finished _ | Running _ -> None)
      slots
  in
  let rec loop log steps silent last_mover violations =
    if steps >= cfg.max_steps then
      { log; results = results (); status = Out_of_fuel; steps; silent_steps = silent; guar_violations = List.rev violations }
    else
      let pending =
        List.filter_map
          (fun (i, r) -> match !r with Running st -> Some (i, r, st) | Finished _ -> None)
          slots
      in
      match pending with
      | [] ->
        { log; results = results (); status = All_done; steps; silent_steps = silent; guar_violations = List.rev violations }
      | _ when (match cfg.stop with Some s -> s () | None -> false) ->
        (* Cooperative cancellation (DESIGN.md S27): the stop closure is
           polled once per move, before the scheduler is consulted but
           only when a move remains — a game that already finished all
           its moves reports [All_done] even on an exactly-spent budget —
           so a cancelled game carries a meaningful play prefix in
           [log]. *)
        { log; results = results (); status = Cancelled; steps; silent_steps = silent; guar_violations = List.rev violations }
      | _ ->
        (* Pick a mover; threads found blocked at this log are excluded and
           the scheduler is asked again. *)
        let rec attempt excluded =
          let candidates =
            List.filter (fun (i, _, _) -> not (List.mem i excluded)) pending
          in
          match candidates with
          | [] ->
            `Deadlock (List.map (fun (i, _, _) -> i) pending)
          | _ ->
            let runnable = List.map (fun (i, _, _) -> i) candidates in
            let chosen =
              match cfg.sched.Sched.pick ~step:steps log ~runnable with
              | Some i when List.mem i runnable -> i
              | Some _ | None -> List.hd runnable
            in
            let _, slot, st =
              List.find (fun (i, _, _) -> i = chosen) candidates
            in
            let move_log =
              if cfg.log_switches && last_mover <> Some chosen then
                Log.append (Event.switch chosen) log
              else log
            in
            let result, cost = Machine.step_move_counted cfg.layer chosen st move_log in
            (match result with
            | Machine.Moved (evs, st') ->
              slot := Running st';
              `Moved (chosen, move_log, evs, cost)
            | Machine.Finished (v, _) ->
              slot := Finished v;
              `Moved (chosen, move_log, [], cost)
            | Machine.Blocked_at (st', _) ->
              slot := Running st';
              attempt (chosen :: excluded)
            | Machine.Stuck (kind, msg) -> `Stuck (chosen, kind, msg))
        in
        (match attempt [] with
        | `Deadlock ids ->
          { log; results = results (); status = deadlock_status ids; steps; silent_steps = silent; guar_violations = List.rev violations }
        | `Stuck (i, kind, msg) ->
          { log; results = results (); status = Stuck (i, kind, msg); steps; silent_steps = silent; guar_violations = List.rev violations }
        | `Moved (i, move_log, evs, cost) ->
          let log' = Log.append_all evs move_log in
          let violations =
            if
              cfg.check_guar && evs <> []
              && not (cfg.layer.Layer.guar.Rely_guarantee.holds i log')
            then (i, log') :: violations
            else violations
          in
          loop log' (steps + 1) (silent + cost) (Some i) violations)
  in
  observe (loop Log.empty 0 0 None [])

(* ------------------------------------------------------------------ *)
(* allocation-light replay (DESIGN.md S24)                             *)
(* ------------------------------------------------------------------ *)

(* Reusable per-domain working state for {!replay_into}.  [run] rebuilds
   a [(tid, ref slot) list] association per schedule and re-filters it
   into [pending]/[candidates] lists on every move; over ~10⁵ replayed
   schedules that churn is what made the minor GC the bottleneck of the
   parallel checkers.  The scratch keeps the thread table in three
   parallel arrays, resized only when the thread count changes, so a
   domain replaying a suite reuses the same words for every schedule. *)
type scratch = {
  mutable ids : Event.tid array;  (* thread ids, in [threads] order *)
  mutable slots : slot array;  (* parallel to [ids] *)
  mutable blocked : bool array;  (* threads found blocked this move *)
}

let make_scratch () = { ids = [||]; slots = [||]; blocked = [||] }

(* Bit-identical to {!run} — pinned by the QCheck equivalence properties
   in test/test_parallel.ml.  The loop below mirrors [run] clause for
   clause; only the bookkeeping containers differ. *)
let replay_into scratch cfg =
  let threads = effective_threads cfg in
  let n = List.length threads in
  if Array.length scratch.ids <> n then begin
    scratch.ids <- Array.make n 0;
    scratch.slots <- Array.make n (Finished Value.unit);
    scratch.blocked <- Array.make n false
  end;
  let ids = scratch.ids
  and slots = scratch.slots
  and blocked = scratch.blocked in
  List.iteri
    (fun k (i, p) ->
      ids.(k) <- i;
      slots.(k) <- Running (Machine.initial cfg.layer i p))
    threads;
  let results () =
    let rec go k acc =
      if k < 0 then acc
      else
        match slots.(k) with
        | Finished v when ids.(k) >= 0 -> go (k - 1) ((ids.(k), v) :: acc)
        | Finished _ | Running _ -> go (k - 1) acc
    in
    go (n - 1) []
  in
  let pending_ids () =
    let rec go k acc =
      if k < 0 then acc
      else
        match slots.(k) with
        | Running _ -> go (k - 1) (ids.(k) :: acc)
        | Finished _ -> go (k - 1) acc
    in
    go (n - 1) []
  in
  let index_of i =
    let rec go k = if ids.(k) = i then k else go (k + 1) in
    go 0
  in
  let rec loop log steps silent last_mover violations =
    if steps >= cfg.max_steps then
      { log; results = results (); status = Out_of_fuel; steps; silent_steps = silent; guar_violations = List.rev violations }
    else begin
      let npending = ref 0 in
      for k = 0 to n - 1 do
        match slots.(k) with
        | Running _ -> incr npending
        | Finished _ -> ()
      done;
      if !npending = 0 then
        { log; results = results (); status = All_done; steps; silent_steps = silent; guar_violations = List.rev violations }
      else if match cfg.stop with Some s -> s () | None -> false then
        { log; results = results (); status = Cancelled; steps; silent_steps = silent; guar_violations = List.rev violations }
      else begin
        for k = 0 to n - 1 do
          blocked.(k) <- false
        done;
        let rec attempt () =
          (* runnable = still-running threads not yet found blocked this
             move, in [threads] order — exactly [run]'s candidate list *)
          let rec build k acc =
            if k < 0 then acc
            else
              build (k - 1)
                (match slots.(k) with
                | Running _ when not blocked.(k) -> ids.(k) :: acc
                | Running _ | Finished _ -> acc)
          in
          match build (n - 1) [] with
          | [] -> `Deadlock (pending_ids ())
          | runnable ->
            let chosen =
              match cfg.sched.Sched.pick ~step:steps log ~runnable with
              | Some i when List.mem i runnable -> i
              | Some _ | None -> List.hd runnable
            in
            let k = index_of chosen in
            let st =
              match slots.(k) with
              | Running st -> st
              | Finished _ -> assert false
            in
            let move_log =
              if cfg.log_switches && last_mover <> Some chosen then
                Log.append (Event.switch chosen) log
              else log
            in
            let result, cost =
              Machine.step_move_counted cfg.layer chosen st move_log
            in
            (match result with
            | Machine.Moved (evs, st') ->
              slots.(k) <- Running st';
              `Moved (chosen, move_log, evs, cost)
            | Machine.Finished (v, _) ->
              slots.(k) <- Finished v;
              `Moved (chosen, move_log, [], cost)
            | Machine.Blocked_at (st', _) ->
              slots.(k) <- Running st';
              blocked.(k) <- true;
              attempt ()
            | Machine.Stuck (kind, msg) -> `Stuck (chosen, kind, msg))
        in
        match attempt () with
        | `Deadlock ids ->
          { log; results = results (); status = deadlock_status ids; steps; silent_steps = silent; guar_violations = List.rev violations }
        | `Stuck (i, kind, msg) ->
          { log; results = results (); status = Stuck (i, kind, msg); steps; silent_steps = silent; guar_violations = List.rev violations }
        | `Moved (i, move_log, evs, cost) ->
          let log' = Log.append_all evs move_log in
          let violations =
            if
              cfg.check_guar && evs <> []
              && not (cfg.layer.Layer.guar.Rely_guarantee.holds i log')
            then (i, log') :: violations
            else violations
          in
          loop log' (steps + 1) (silent + cost) (Some i) violations
      end
    end
  in
  observe (loop Log.empty 0 0 None [])

(* A lock-free freelist of scratches: the checkers call {!replay} from
   arbitrary pool domains, and a Treiber stack keeps the live scratch
   count bounded by the number of concurrent games without a domain-local
   key per call site. *)
let scratch_pool : scratch list Atomic.t = Atomic.make []

let rec pool_get () =
  match Atomic.get scratch_pool with
  | [] -> make_scratch ()
  | (s :: rest) as cur ->
    if Atomic.compare_and_set scratch_pool cur rest then s else pool_get ()

let rec pool_put s =
  let cur = Atomic.get scratch_pool in
  if not (Atomic.compare_and_set scratch_pool cur (s :: cur)) then pool_put s

let replay cfg =
  let s = pool_get () in
  Fun.protect ~finally:(fun () -> pool_put s) (fun () -> replay_into s cfg)

let behaviors ?max_steps ?log_switches ?check_guar ?memory layer threads scheds =
  List.map
    (fun sched ->
      run (config ?max_steps ?log_switches ?check_guar ?memory layer threads sched))
    scheds

let successful o =
  match o.status with All_done -> o.guar_violations = [] | _ -> false

let pp_status fmt = function
  | All_done -> Format.pp_print_string fmt "all-done"
  | Deadlock ids ->
    Format.fprintf fmt "deadlock(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         Format.pp_print_int)
      ids
  | Stuck (i, Layer.Invalid_transition, msg) ->
    Format.fprintf fmt "stuck(thread %d: %s)" i msg
  | Stuck (i, Layer.Data_race, msg) ->
    Format.fprintf fmt "race(thread %d: %s)" i msg
  | Out_of_fuel -> Format.pp_print_string fmt "out-of-fuel"
  | Cancelled -> Format.pp_print_string fmt "cancelled"
