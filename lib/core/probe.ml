(* The instrumentation engine behind Ccal_verify.Telemetry (DESIGN.md S25).

   Counters and spans live here in core — below Game and the machines —
   so the hot paths (Game.run, the linking bodies) can bump them without
   a dependency cycle; the exporters and the CLI/bench wiring live in
   lib/verify/telemetry.ml.

   Design constraints, in order:

   - Verdict-neutral and ~free when disabled.  Every entry point reads
     one atomic boolean and returns; the default is off.  Instrumentation
     must never change a certificate judgment, only observe it.
   - Domain-safe.  Counters are atomics (or per-capture local tables,
     see below); spans go to per-domain buffers registered once under a
     mutex — worker domains never contend on a shared span list.
   - Deterministic across jobs counts.  A counter bumped inside a
     [Parallel.scan] job body would overcount under [jobs > 1]: workers
     may evaluate indices beyond the early-exit cut before the cut is
     published, indices the sequential oracle never runs.  [captured]
     diverts a job's counts into a local delta; the executor commits the
     deltas of exactly the merged prefix, in index order, so totals are
     bit-identical for every jobs count.  Spans are exempt: they carry
     wall-clock timestamps and are inherently run-specific.  *)

let now_ns () = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* the switch                                                          *)
(* ------------------------------------------------------------------ *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* ------------------------------------------------------------------ *)
(* named monotonic counters                                            *)
(* ------------------------------------------------------------------ *)

type counter = { cname : string; ccell : int Atomic.t }

let counters_mutex = Mutex.create ()
let counter_table : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.lock counters_mutex;
  let cell =
    match Hashtbl.find_opt counter_table name with
    | Some c -> c
    | None ->
      let c = Atomic.make 0 in
      Hashtbl.add counter_table name c;
      c
  in
  Mutex.unlock counters_mutex;
  { cname = name; ccell = cell }

(* A capture delta: counter increments diverted away from the globals,
   waiting for a deterministic commit.  Single-domain, so plain refs. *)
type delta = (string, int ref) Hashtbl.t

(* The domain's active capture, if any. *)
let local_delta : delta option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let bump_delta (d : delta) name n =
  match Hashtbl.find_opt d name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add d name (ref n)

let add c n =
  if Atomic.get enabled && n <> 0 then
    match !(Domain.DLS.get local_delta) with
    | Some d -> bump_delta d c.cname n
    | None -> ignore (Atomic.fetch_and_add c.ccell n)

let incr c = add c 1

let add_named name n = if Atomic.get enabled && n <> 0 then add (counter name) n

let captured f =
  if not (Atomic.get enabled) then (
    f ();
    None)
  else begin
    let slot = Domain.DLS.get local_delta in
    let saved = !slot in
    let d : delta = Hashtbl.create 8 in
    slot := Some d;
    Fun.protect ~finally:(fun () -> slot := saved) f;
    Some d
  end

(* Commit through [add], not straight into the globals: a scan nested
   inside another capture must surface its jobs' counts into the
   enclosing delta so the outer merge stays deterministic too. *)
let commit = function
  | None -> ()
  | Some (d : delta) -> Hashtbl.iter (fun name r -> add_named name !r) d

let counters () =
  Mutex.lock counters_mutex;
  let snap =
    Hashtbl.fold
      (fun name cell acc ->
        let v = Atomic.get cell in
        if v = 0 then acc else (name, v) :: acc)
      counter_table []
  in
  Mutex.unlock counters_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) snap

let get name =
  Mutex.lock counters_mutex;
  let v =
    match Hashtbl.find_opt counter_table name with
    | Some c -> Atomic.get c
    | None -> 0
  in
  Mutex.unlock counters_mutex;
  v

let diff_counters before after =
  (* both snapshots are name-sorted; counters are monotone, so a merge
     walk yields the per-name growth *)
  let rec go acc before after =
    match before, after with
    | _, [] -> List.rev acc
    | [], (n, v) :: a -> go ((n, v) :: acc) [] a
    | (nb, vb) :: b', (na, va) :: a' ->
      let c = String.compare nb na in
      if c = 0 then
        go (if va = vb then acc else (na, va - vb) :: acc) b' a'
      else if c < 0 then go acc b' after
      else go ((na, va) :: acc) before a'
  in
  go [] before after

(* ------------------------------------------------------------------ *)
(* timed spans, one buffer per domain                                  *)
(* ------------------------------------------------------------------ *)

type span_ev = {
  name : string;
  ts_ns : int64;
  dur_ns : int64;
  dom : int;  (** the recording domain — one trace track each *)
  depth : int;  (** nesting depth within that domain at record time *)
}

(* Per-domain recorder.  Only its own domain mutates it; the exporter
   reads after the pools have quiesced. *)
type recorder = {
  rdom : int;
  mutable rdepth : int;
  mutable rspans : span_ev list;  (* newest first *)
  mutable rcount : int;
}

let span_cap = 200_000 (* per-domain; keeps a forgotten [enable] bounded *)

let recorders_mutex = Mutex.create ()
let recorders : recorder list ref = ref []

let recorder_key : recorder Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          rdom = (Domain.self () :> int);
          rdepth = 0;
          rspans = [];
          rcount = 0;
        }
      in
      Mutex.lock recorders_mutex;
      recorders := r :: !recorders;
      Mutex.unlock recorders_mutex;
      r)

let span name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let r = Domain.DLS.get recorder_key in
    let depth = r.rdepth in
    r.rdepth <- depth + 1;
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (now_ns ()) t0 in
        r.rdepth <- depth;
        if r.rcount < span_cap then begin
          r.rspans <-
            { name; ts_ns = t0; dur_ns = dur; dom = r.rdom; depth } :: r.rspans;
          r.rcount <- r.rcount + 1
        end)
      f
  end

let spans () =
  Mutex.lock recorders_mutex;
  let rs = !recorders in
  Mutex.unlock recorders_mutex;
  List.concat_map (fun r -> List.rev r.rspans) rs
  |> List.sort (fun a b ->
         let c = compare a.dom b.dom in
         if c <> 0 then c else Int64.compare a.ts_ns b.ts_ns)

(* ------------------------------------------------------------------ *)
(* reset (tests and benchmarks)                                        *)
(* ------------------------------------------------------------------ *)

let reset () =
  Mutex.lock counters_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counter_table;
  Mutex.unlock counters_mutex;
  Mutex.lock recorders_mutex;
  List.iter
    (fun r ->
      r.rspans <- [];
      r.rcount <- 0)
    !recorders;
  Mutex.unlock recorders_mutex

(* ------------------------------------------------------------------ *)
(* the standard counters                                               *)
(* ------------------------------------------------------------------ *)

let schedules_run = counter "schedules_run"
let replay_steps = counter "replay_steps"
let sleep_set_prunes = counter "sleep_set_prunes"
let logs_distinct = counter "logs_distinct"
let race_checks = counter "race_checks"
