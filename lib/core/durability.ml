(* The crash move of the async-disk machine (DESIGN.md S30).

   Crash safety is one more environment step: a layer whose machine can
   lose power exports a [crash_tag] primitive, and the game synthesises a
   crash pseudo-thread — the same mechanism as the TSO buffer flushers of
   S29 — whose single move fires that primitive at a scheduler-chosen
   point.  The primitive's two mask arguments pick, per in-flight write
   (oldest first), whether it reaches the platter intact ([keep] bit
   set, [tear] bit clear), reaches it torn ([keep] and [tear] both set),
   or is dropped (bit clear); unsynced writes the masks drop are gone
   and volatile state resets.  The crash-refinement certifier
   (lib/verify/crash.ml) enumerates the same masks analytically over
   log prefixes, so the in-game thread carries the adversarial default:
   drop everything.

   Pseudo-thread ids share one negative namespace: the crash thread owns
   [crash_tid = -1], the TSO flushers own [Memory.flusher_tid cpu =
   -cpu - 1] for cpus >= 1.  [Game.pseudo_threads] is the single
   synthesis point and rejects any collision, pinned by a unit test. *)

let crash_tag = "d_crash"

let crash_tid = -1

let is_crash i = i = crash_tid

(* Mask arithmetic shared by the disk machine and the certifier: bit [i]
   of [keep] decides whether in-flight write [i] (oldest first) survives
   the crash; bit [i] of [tear] additionally garbles a surviving write. *)
let keeps ~mask i = mask land (1 lsl i) <> 0

let all_keep n = (1 lsl n) - 1

let crash_args ~keep ~tear = [ Value.int keep; Value.int tear ]
