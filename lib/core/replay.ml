type 'a t = Log.t -> ('a, string) result

(* Replay functions run once per shared-primitive call, so this fold is
   the hottest loop of the whole checker: materializing the reversed
   (chronological) list on every call used to dominate the per-schedule
   allocation profile.  Instead, recurse right-to-left over the
   newest-first spine — the older suffix is folded before [step] sees the
   newer head, so the order (and the first-error-wins semantics: the
   oldest failing event reports) is exactly that of the chronological
   fold, with zero allocation beyond [step]'s own.

   The recursion depth is the log length.  Logs are bounded by the game
   fuel, which stress tests push to a few hundred thousand moves; beyond a
   conservative depth the fold falls back to the allocating reversal
   rather than risk the native stack. *)
let deep = 16_384

let fold ~init ~step : 'a t =
 fun l ->
  if Log.length l <= deep then
    let rec go = function
      | [] -> Ok init
      | e :: older -> (
        match go older with
        | Ok acc -> step acc e
        | Error _ as err -> err)
    in
    go (Log.newest_first l)
  else
    let rec go acc = function
      | [] -> Ok acc
      | e :: rest -> (
        match step acc e with
        | Ok acc' -> go acc' rest
        | Error _ as err -> err)
    in
    go init (Log.chronological l)

let pure x : 'a t = fun _ -> Ok x

let map f r : 'b t = fun l -> Result.map f (r l)

let both ra rb : ('a * 'b) t =
 fun l ->
  match ra l with
  | Error _ as e -> e
  | Ok a -> (
    match rb l with
    | Error _ as e -> e
    | Ok b -> Ok (a, b))

let run_exn r l =
  match r l with
  | Ok x -> x
  | Error msg -> failwith ("Replay.run_exn: stuck: " ^ msg)

let well_formed r l = match r l with Ok _ -> true | Error _ -> false
