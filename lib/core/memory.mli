(** The machine memory mode (DESIGN.md S29).

    [Sc]: sequentially consistent — every shared store reaches memory in
    the move that issues it (the paper's machine model).  [Tso]: x86-TSO
    — plain stores enter a per-CPU FIFO store buffer and reach memory
    when the buffer drains (fence, read-modify-write, synchronisation
    primitive, or an explicit buffer-flush scheduler move).

    Buffer flushes are scheduler moves: each CPU gets a "flusher"
    pseudo-thread (negative thread id) whose infinite program repeatedly
    calls {!flush_tag} for that CPU.  {!Game} synthesises the flushers
    whenever a TSO game runs over a layer providing the flush
    primitive. *)

type t = Sc | Tso

val default : t
(** [Sc]. *)

val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val flush_tag : string
(** The buffer-flush primitive: [flush cpu] commits the oldest pending
    store of [cpu]'s buffer, or blocks when that buffer is empty.  Its
    presence in a layer marks the layer as buffered. *)

val flusher_tid : Event.tid -> Event.tid
(** The pseudo-thread id of CPU [c]'s flusher: [-c - 1] — negative, so
    disjoint from every real thread id. *)

val is_flusher : Event.tid -> bool
val cpu_of_flusher : Event.tid -> Event.tid
