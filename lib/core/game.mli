(** Whole-machine game semantics.

    Each run of a client program [P] over [L[D]] is a play of the game
    involving the members of [D] plus a scheduler (Sec. 2): at every round
    the scheduler picks a thread, which makes one move (one shared
    primitive call, silent steps included) using its strategy; the emitted
    events are appended to the global log.  A thread whose next shared call
    is not enabled ([Layer.Block]) cannot be the mover; if no thread can
    move, the machine is deadlocked.

    The behaviour [⟦P⟧_{L[D]}] is the set of logs generated under all
    schedulers; {!behaviors} approximates it over a scheduler suite. *)

type config = {
  layer : Layer.t;
  threads : (Event.tid * Prog.t) list;  (** the domain [D] with each thread's program *)
  sched : Sched.t;
  max_steps : int;  (** bound on total moves (fuel) *)
  log_switches : bool;
      (** record a scheduling event whenever the mover changes, as the
          multicore hardware model does (Sec. 3.1) *)
  check_guar : bool;  (** check the layer guarantee after every move *)
  memory : Memory.t;
      (** memory mode (DESIGN.md S29): under {!Memory.Tso} a buffered
          layer gets one flusher pseudo-thread per real thread, making
          buffer drains explicit scheduler moves *)
  stop : (unit -> bool) option;
      (** cooperative cancellation: polled once per move; when it turns
          true the game ends with {!Cancelled} and its play prefix *)
}

val config :
  ?max_steps:int ->
  ?log_switches:bool ->
  ?check_guar:bool ->
  ?memory:Memory.t ->
  ?stop:(unit -> bool) ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t ->
  config

val flusher_threads :
  memory:Memory.t ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  (Event.tid * Prog.t) list
(** The flusher pseudo-threads a game synthesises for [threads]: one per
    real thread (id {!Memory.flusher_tid}), each an infinite loop of the
    layer's flush primitive for its CPU.  Empty under [Sc] and for
    layers without the flush primitive.  Exposed so the DPOR walk can
    enumerate flush moves over exactly the threads the replayed game
    will run.

    A deadlock made only of blocked flushers reports {!All_done}: the
    flush primitive blocks exactly on an empty buffer, so such a game
    has drained every buffer and finished every real thread.  Flusher
    ids never appear in {!Deadlock} lists or [results]. *)

val crash_threads : Layer.t -> (Event.tid * Prog.t) list
(** The crash pseudo-thread a game synthesises for a crash-enabled layer
    (DESIGN.md S30): one thread (id {!Durability.crash_tid}) whose
    single move fires the layer's {!Durability.crash_tag} primitive with
    the adversarial masks (drop every in-flight write).  Empty for
    layers without the crash primitive. *)

val pseudo_threads :
  memory:Memory.t ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  (Event.tid * Prog.t) list
(** All pseudo-threads the game appends to the real domain:
    {!flusher_threads} followed by {!crash_threads}.  This is the single
    synthesis point, shared by {!run}/{!replay} and by the DPOR and
    exhaustive explorers, so the negative-tid namespace (crash thread at
    [-1], flusher for cpu [c] at [-c-1]) cannot silently collide.
    Raises [Invalid_argument] on a real thread with a negative id or a
    duplicated pseudo tid.  Pseudo tids never appear in {!Deadlock}
    lists or [results]. *)

type status =
  | All_done
  | Deadlock of Event.tid list  (** every unfinished thread is blocked *)
  | Stuck of Event.tid * Layer.stuck_kind * string
      (** a thread has no valid transition; [Layer.Data_race] marks a
          detected data race, [Layer.Invalid_transition] everything else *)
  | Out_of_fuel
  | Cancelled  (** the [stop] closure tripped (budget/cancellation) *)

type outcome = {
  log : Log.t;
  results : (Event.tid * Value.t) list;  (** return values of finished threads *)
  status : status;
  steps : int;  (** moves performed *)
  silent_steps : int;
  guar_violations : (Event.tid * Log.t) list;
      (** moves after which the guarantee failed (empty when not checked) *)
}

val run : config -> outcome

(** {1 Allocation-light replay}

    The parallel checkers replay on the order of 10⁵ schedules per
    verdict; {!run}'s per-move list rebuilds and per-schedule slot
    reconstruction made the minor GC — a stop-the-world rendezvous across
    every domain on OCaml 5 — the bottleneck of the whole pool
    (DESIGN.md S24).  {!replay_into} plays the identical game over a
    reusable scratch, and is pinned bit-identical to {!run} by the
    equivalence properties in test/test_parallel.ml. *)

type scratch
(** Reusable per-domain working state: the thread table as parallel
    arrays, resized only when the thread count changes.  A scratch must
    not be shared between concurrently running games. *)

val make_scratch : unit -> scratch

val replay_into : scratch -> config -> outcome
(** [replay_into s cfg] = [run cfg], reusing [s]'s storage. *)

val replay : config -> outcome
(** Like {!run}, borrowing a scratch from a lock-free freelist — the
    entry point the checkers use for their per-schedule bodies. *)

val behaviors :
  ?max_steps:int ->
  ?log_switches:bool ->
  ?check_guar:bool ->
  ?memory:Memory.t ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list ->
  outcome list
(** Run the same machine under each scheduler of the suite. *)

val successful : outcome -> bool
(** [All_done] with no guarantee violation. *)

val pp_status : Format.formatter -> status -> unit
