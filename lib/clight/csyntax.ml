(* Abstract syntax of ClightX — the C subset of the layered language
   (Sec. 2 writes layer implementations such as Fig. 3, 10, 11 in it).
   Programs are first-order: integer-valued expressions, structured
   control, and calls to the primitives of the underlay interface. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not

type expr =
  | Const of int
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt =
  | Sskip
  | Sassign of string * expr  (* x = e; *)
  | Scall of string option * string * expr list  (* x = prim(e, ...); *)
  | Sseq of stmt * stmt
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Sreturn of expr option

type fn = {
  name : string;
  params : string list;
  locals : string list;
  body : stmt;
}

(* Convenience constructors for writing layer code in OCaml. *)

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let i n = Const n
let v x = Var x

let rec seq = function
  | [] -> Sskip
  | [ s ] -> s
  | s :: rest -> Sseq (s, seq rest)

let set x e = Sassign (x, e)
let call_ prim args = Scall (None, prim, args)
let calla x prim args = Scall (Some x, prim, args)
let while_ cond body = Swhile (cond, body)
let if_ cond st sf = Sif (cond, st, sf)
let return e = Sreturn (Some e)
let return_unit = Sreturn None

(* Sizes, for the Table 1/2 line-counting analogue. *)

let rec stmt_size = function
  | Sskip -> 1
  | Sassign _ -> 1
  | Scall _ -> 1
  | Sseq (a, b) -> Stdlib.( + ) (stmt_size a) (stmt_size b)
  | Sif (_, a, b) -> Stdlib.( + ) 1 (Stdlib.( + ) (stmt_size a) (stmt_size b))
  | Swhile (_, s) -> Stdlib.( + ) 1 (stmt_size s)
  | Sreturn _ -> 1

let fn_size fn = stmt_size fn.body

(* Pretty-printing, for documentation and the CLI. *)

let binop_syntax = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr fmt = function
  | Const n -> Format.pp_print_int fmt n
  | Var x -> Format.pp_print_string fmt x
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_syntax op) pp_expr b
  | Unop (Neg, e) -> Format.fprintf fmt "(-%a)" pp_expr e
  | Unop (Not, e) -> Format.fprintf fmt "(!%a)" pp_expr e

let rec pp_stmt fmt = function
  | Sskip -> Format.pp_print_string fmt ";"
  | Sassign (x, e) -> Format.fprintf fmt "%s = %a;" x pp_expr e
  | Scall (None, p, args) ->
    Format.fprintf fmt "%s(%a);" p pp_args args
  | Scall (Some x, p, args) ->
    Format.fprintf fmt "%s = %s(%a);" x p pp_args args
  | Sseq (a, b) -> Format.fprintf fmt "%a@ %a" pp_stmt a pp_stmt b
  | Sif (c, a, b) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@ %a@]@ @[<v 2>} else {@ %a@]@ }"
      pp_expr c pp_stmt a pp_stmt b
  | Swhile (c, s) ->
    Format.fprintf fmt "@[<v 2>while (%a) {@ %a@]@ }" pp_expr c pp_stmt s
  | Sreturn None -> Format.pp_print_string fmt "return;"
  | Sreturn (Some e) -> Format.fprintf fmt "return %a;" pp_expr e

and pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_expr fmt args

let pp_fn fmt fn =
  Format.fprintf fmt "@[<v 2>%s(%s) {@ %a@]@ }" fn.name
    (String.concat ", " fn.params)
    pp_stmt fn.body

(* Structural fingerprints, for the certificate cache: the cache key of
   an edge certified from ClightX code must change exactly when the code
   changes, so the fold covers every constructor — including [locals],
   which [pp_fn] elides. *)

let fp_binop = function
  | Add -> 1
  | Sub -> 2
  | Mul -> 3
  | Div -> 4
  | Mod -> 5
  | Eq -> 6
  | Ne -> 7
  | Lt -> 8
  | Le -> 9
  | Gt -> 10
  | Ge -> 11
  | And -> 12
  | Or -> 13

let rec fp_expr st e =
  let open Ccal_core in
  match e with
  | Const n -> Fingerprint.int (Fingerprint.int st 0x6345) n
  | Var x -> Fingerprint.string (Fingerprint.int st 0x6356) x
  | Binop (op, a, b) ->
    fp_expr (fp_expr (Fingerprint.int (Fingerprint.int st 0x6342) (fp_binop op)) a) b
  | Unop (Neg, e) -> fp_expr (Fingerprint.int st 0x634E) e
  | Unop (Not, e) -> fp_expr (Fingerprint.int st 0x6321) e

let rec fp_stmt st s =
  let open Ccal_core in
  match s with
  | Sskip -> Fingerprint.int st 0x7300
  | Sassign (x, e) -> fp_expr (Fingerprint.string (Fingerprint.int st 0x7341) x) e
  | Scall (x, p, args) ->
    Fingerprint.list fp_expr
      (Fingerprint.string
         (Fingerprint.option Fingerprint.string (Fingerprint.int st 0x7343) x)
         p)
      args
  | Sseq (a, b) -> fp_stmt (fp_stmt (Fingerprint.int st 0x7353) a) b
  | Sif (c, a, b) -> fp_stmt (fp_stmt (fp_expr (Fingerprint.int st 0x7349) c) a) b
  | Swhile (c, s) -> fp_stmt (fp_expr (Fingerprint.int st 0x7357) c) s
  | Sreturn e -> Fingerprint.option fp_expr (Fingerprint.int st 0x7352) e

let fp_fn st fn =
  let open Ccal_core in
  let st = Fingerprint.string (Fingerprint.int st 0x6646) fn.name in
  let st = Fingerprint.list Fingerprint.string st fn.params in
  let st = Fingerprint.list Fingerprint.string st fn.locals in
  fp_stmt st fn.body

let fingerprint fns =
  let open Ccal_core in
  Fingerprint.finish (Fingerprint.list fp_fn Fingerprint.empty fns)
