open Ccal_core

exception Semantics_error of string

let fault_prim = "c_fault"

module Smap = Map.Make (String)

type env = Value.t Smap.t

let eval_binop op a b =
  let bool_int c = if c then 1 else 0 in
  match op with
  | Csyntax.Add -> Some (a + b)
  | Csyntax.Sub -> Some (a - b)
  | Csyntax.Mul -> Some (a * b)
  | Csyntax.Div -> if b = 0 then None else Some (a / b)
  | Csyntax.Mod -> if b = 0 then None else Some (a mod b)
  | Csyntax.Eq -> Some (bool_int (a = b))
  | Csyntax.Ne -> Some (bool_int (a <> b))
  | Csyntax.Lt -> Some (bool_int (a < b))
  | Csyntax.Le -> Some (bool_int (a <= b))
  | Csyntax.Gt -> Some (bool_int (a > b))
  | Csyntax.Ge -> Some (bool_int (a >= b))
  | Csyntax.And -> Some (bool_int (a <> 0 && b <> 0))
  | Csyntax.Or -> Some (bool_int (a <> 0 || b <> 0))

let rec eval_expr env = function
  | Csyntax.Const n -> Ok (Value.int n)
  | Csyntax.Var x -> (
    match Smap.find_opt x env with
    | Some v -> Ok v
    | None -> Error ("unbound variable " ^ x))
  | Csyntax.Binop (op, ea, eb) -> (
    match eval_expr env ea, eval_expr env eb with
    | Ok (Value.Vint a), Ok (Value.Vint b) -> (
      match eval_binop op a b with
      | Some n -> Ok (Value.int n)
      | None -> Error "division by zero")
    | Ok _, Ok _ -> Error "non-integer operand"
    | (Error _ as e), _ | _, (Error _ as e) -> e)
  | Csyntax.Unop (Csyntax.Neg, e) -> (
    match eval_expr env e with
    | Ok (Value.Vint a) -> Ok (Value.int (-a))
    | Ok _ -> Error "non-integer operand"
    | Error _ as err -> err)
  | Csyntax.Unop (Csyntax.Not, e) -> (
    match eval_expr env e with
    | Ok (Value.Vint a) -> Ok (Value.int (if a = 0 then 1 else 0))
    | Ok _ -> Error "non-integer operand"
    | Error _ as err -> err)

let rec eval_exprs env = function
  | [] -> Ok []
  | e :: rest -> (
    match eval_expr env e with
    | Error _ as err -> err
    | Ok v -> (
      match eval_exprs env rest with
      | Error _ as err -> err
      | Ok vs -> Ok (v :: vs)))

let prog_of_fn ?(fuel = 1_000_000) (fn : Csyntax.fn) args =
  let dup =
    List.find_opt
      (fun x -> List.mem x fn.Csyntax.locals)
      fn.Csyntax.params
  in
  (match dup with
  | Some x ->
    raise (Semantics_error (fn.Csyntax.name ^ ": name used as both parameter and local: " ^ x))
  | None -> ());
  let fault msg =
    Prog.call (fault_prim ^ ": " ^ fn.Csyntax.name ^ ": " ^ msg) []
  in
  if List.length args <> List.length fn.Csyntax.params then
    fault
      (Printf.sprintf "expected %d arguments, got %d"
         (List.length fn.Csyntax.params)
         (List.length args))
  else
    let env =
      List.fold_left2
        (fun env x v -> Smap.add x v env)
        Smap.empty fn.Csyntax.params args
    in
    let env =
      List.fold_left (fun env x -> Smap.add x (Value.int 0) env) env fn.Csyntax.locals
    in
    (* CPS interpretation: [k] receives the environment and remaining
       fuel after normal completion; [Sreturn] bypasses it and ends the
       whole function.  Fuel is threaded as a value, never a shared ref:
       the produced [Prog.t] is re-entered many times (every schedule
       replay, and state fingerprinting probes continuations), and a
       mutable fuel pool would drain across entries, changing live
       semantics under observation. *)
    let rec exec stmt env fuel (k : env -> int -> Prog.t) : Prog.t =
      let fuel = fuel - 1 in
      if fuel <= 0 then fault Prog.steps_bound_exceeded
      else
        match stmt with
        | Csyntax.Sskip -> k env fuel
        | Csyntax.Sassign (x, e) -> (
          match eval_expr env e with
          | Ok v -> k (Smap.add x v env) fuel
          | Error msg -> fault msg)
        | Csyntax.Scall (dest, prim, arg_exprs) -> (
          match eval_exprs env arg_exprs with
          | Error msg -> fault msg
          | Ok vs ->
            Prog.Call
              {
                prim;
                args = vs;
                k =
                  (fun v ->
                    match dest with
                    | None -> k env fuel
                    | Some x -> k (Smap.add x v env) fuel);
              })
        | Csyntax.Sseq (a, b) -> exec a env fuel (fun env fuel -> exec b env fuel k)
        | Csyntax.Sif (cond, st, sf) -> (
          match eval_expr env cond with
          | Ok (Value.Vint 0) -> exec sf env fuel k
          | Ok (Value.Vint _) -> exec st env fuel k
          | Ok _ -> fault "non-integer branch condition"
          | Error msg -> fault msg)
        | Csyntax.Swhile (cond, body) -> (
          match eval_expr env cond with
          | Ok (Value.Vint 0) -> k env fuel
          | Ok (Value.Vint _) -> exec body env fuel (fun env fuel -> exec stmt env fuel k)
          | Ok _ -> fault "non-integer loop condition"
          | Error msg -> fault msg)
        | Csyntax.Sreturn None -> Prog.ret_unit
        | Csyntax.Sreturn (Some e) -> (
          match eval_expr env e with
          | Ok v -> Prog.ret v
          | Error msg -> fault msg)
    in
    exec fn.Csyntax.body env fuel (fun _ _ -> Prog.ret_unit)

let module_of_fns ?fuel fns =
  Prog.Module.of_bodies
    (List.map (fun (fn : Csyntax.fn) -> fn.Csyntax.name, prog_of_fn ?fuel fn) fns)
