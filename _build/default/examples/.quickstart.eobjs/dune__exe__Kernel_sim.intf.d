examples/kernel_sim.mli:
