examples/quickstart.mli:
