examples/quickstart.ml: Calculus Ccal_clight Ccal_compcertx Ccal_core Env_context Event Format Game Layer List Log Prog Refinement Result Sched Sim_rel String Value
