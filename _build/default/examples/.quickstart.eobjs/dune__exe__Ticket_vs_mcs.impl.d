examples/ticket_vs_mcs.ml: Calculus Ccal_core Ccal_objects Ccal_verify Event Format Game List Lock_intf Log Mcs_lock Prog Sched Sim_rel String Ticket_lock Value
