examples/ticket_vs_mcs.mli:
