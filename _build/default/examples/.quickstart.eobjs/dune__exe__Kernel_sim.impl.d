examples/kernel_sim.ml: Ccal_core Ccal_objects Ccal_verify Format Game Ipc List Lock_intf Log Prog Qlock Queue_shared Replay Sched Sim_rel Thread_sched Value
