examples/producer_consumer.ml: Calculus Ccal_core Ccal_objects Event Format Game Ipc List Log Prog Sched Sim_rel String Thread_sched Value
