(* Quickstart: the paper's Sec. 2 walkthrough (Fig. 3 and Fig. 5).

   The client program P has two threads, each calling [foo] once.  [foo]
   calls [f] and [g] in a critical section protected by a ticket lock
   (module M2 over interface L1); the lock itself is implemented with
   FAI_t/get_n/inc_n over L0 (module M1).  We build both certified layers
   with the Fun rule, stack them with Vcomp, and check the soundness
   theorem — every interleaved run over L0 is captured by an atomic run
   over L2, reproducing the paper's log pair (l'_g, l_g).

   Run with:  dune exec examples/quickstart.exe *)

open Ccal_core
module C = Ccal_clight.Csyntax

let vi = Value.int

(* ---------------- L0: ticket-lock words + f/g + hold ---------------- *)

(* Rticket: the lock state replayed from the log (Sec. 2). *)
let replay_ticket log =
  let count tag =
    Log.count (fun (e : Event.t) -> String.equal e.Event.tag tag) log
  in
  count "FAI_t", count "inc_n"

let event_prim name ret_of =
  Layer.event_prim name (fun _c _args log -> Ok (ret_of log))

let l0 =
  Layer.make "L0"
    [
      event_prim "FAI_t" (fun log -> vi (fst (replay_ticket log)));
      event_prim "get_n" (fun log -> vi (snd (replay_ticket log)));
      event_prim "inc_n" (fun _ -> Value.unit);
      event_prim "hold" (fun _ -> Value.unit);
      event_prim "f" (fun _ -> Value.unit);
      event_prim "g" (fun _ -> Value.unit);
    ]

(* ---------------- M1: the ticket lock of Fig. 3, in C --------------- *)

let acq_fn =
  {
    C.name = "acq"; params = []; locals = [ "myt"; "n" ];
    body =
      C.seq
        [
          C.calla "myt" "FAI_t" [];
          C.calla "n" "get_n" [];
          C.while_ C.(v "n" <> v "myt") (C.calla "n" "get_n" []);
          C.call_ "hold" [];
          C.return_unit;
        ];
  }

let rel_fn =
  { C.name = "rel"; params = []; locals = [];
    body = C.seq [ C.call_ "inc_n" []; C.return_unit ] }

let m1 = Ccal_clight.Csem.module_of_fns [ acq_fn; rel_fn ]

(* ---------------- L1: the atomic lock interface ---------------------- *)

(* Replay the holder from atomic acq/rel events. *)
let holder log =
  List.fold_left
    (fun h (e : Event.t) ->
      if String.equal e.tag "acq" then Some e.src
      else if String.equal e.tag "rel" then None
      else h)
    None (Log.chronological log)

let l1 =
  Layer.make "L1"
    [
      ( "acq",
        Layer.Shared
          (fun c _ log ->
            match holder log with
            | Some _ -> Layer.Block
            | None ->
              Layer.Step
                { events = [ Event.make c "acq" ]; ret = Value.unit; crit = Layer.Enter }) );
      ( "rel",
        Layer.Shared
          (fun c _ log ->
            match holder log with
            | Some h when h = c ->
              Layer.Step
                { events = [ Event.make c "rel" ]; ret = Value.unit; crit = Layer.Exit }
            | _ -> Layer.Stuck "rel of a lock not held") );
      event_prim "f" (fun _ -> Value.unit);
      event_prim "g" (fun _ -> Value.unit);
    ]

(* R1: map i.hold to i.acq, i.inc_n to i.rel, other lock events to ε. *)
let r1 =
  Sim_rel.of_table "R1"
    [ "hold", `To "acq"; "inc_n", `To "rel"; "FAI_t", `Drop; "get_n", `Drop ]

(* ---------------- M2: foo over L1 (Fig. 3) --------------------------- *)

let foo_fn =
  { C.name = "foo"; params = []; locals = [];
    body =
      C.seq
        [ C.call_ "acq" []; C.call_ "f" []; C.call_ "g" []; C.call_ "rel" [];
          C.return_unit ] }

let m2 = Ccal_clight.Csem.module_of_fns [ foo_fn ]

(* ---------------- L2: atomic foo ------------------------------------- *)

let l2 = Layer.make "L2" [ event_prim "foo" (fun _ -> Value.unit) ]

(* R2: merge acq•f•g•rel into a single foo at the rel. *)
let r2 =
  Sim_rel.of_log_fn "R2" (fun log ->
      let keep =
        List.filter_map
          (fun (e : Event.t) ->
            if String.equal e.tag "rel" then Some (Event.make e.src "foo")
            else if List.mem e.tag [ "acq"; "f"; "g" ] then None
            else Some e)
          (Log.chronological log)
      in
      Log.append_all keep Log.empty)

(* ---------------- the Fig. 5 pipeline -------------------------------- *)

let () =
  Format.printf "== CCAL quickstart: the ticket-lock example of Sec. 2 ==@.@.";

  (* (2.2)  L0[i] |-_R1 M1 : L1[i]   (fun-lift + log-lift in one step) *)
  let envs _ = [ Env_context.empty ] in
  let c1 =
    Calculus.fun_rule ~underlay:l0 ~overlay:l1 ~impl:m1 ~rel:r1 ~focus:[ 1; 2 ]
      ~prim_tests:
        [ "acq", [ Calculus.case [] ];
          "rel", [ Calculus.case ~pre:[ "acq", [] ] [] ] ]
      ~envs ()
    |> Result.get_ok
  in
  Format.printf "built  %s@." "L0[{1,2}] |-_R1 M1 : L1[{1,2}]";

  (* (2.3)  L1[i] |-_R2 M2 : L2[i] *)
  let c2 =
    Calculus.fun_rule ~underlay:l1 ~overlay:l2 ~impl:m2 ~rel:r2 ~focus:[ 1; 2 ]
      ~prim_tests:[ "foo", [ Calculus.case [] ] ]
      ~envs ()
    |> Result.get_ok
  in
  Format.printf "built  %s@." "L1[{1,2}] |-_R2 M2 : L2[{1,2}]";

  (* vertical composition *)
  let cert = Result.get_ok (Calculus.vcomp c1 c2) in
  Format.printf "@.%a@.@." Calculus.pp_cert cert;

  (* thread-safe compilation: CompCertX(M1 ⊕ M2), validated *)
  (match
     Ccal_compcertx.Validate.validate_module ~layer:l0 ~tids:[ 1 ]
       ~arg_cases:[] ~envs:(fun _ -> [ Env_context.empty ])
       [ acq_fn; rel_fn ]
   with
  | Ok r ->
    Format.printf "CompCertX validated %d lock functions (%d co-executions)@."
      r.Ccal_compcertx.Validate.fns_validated r.Ccal_compcertx.Validate.cases_run
  | Error f ->
    Format.printf "compilation validation failed: %a@!"
      Ccal_compcertx.Validate.pp_failure f);

  (* the client program P of Fig. 3 and a concrete interleaved run *)
  let client _i = Prog.call "foo" [] in
  let threads =
    [ 1, Prog.Module.link cert.Calculus.judgment.Calculus.impl (client 1);
      2, Prog.Module.link cert.Calculus.judgment.Calculus.impl (client 2) ]
  in
  let o =
    Game.run
      (Game.config l0 threads (Sched.of_trace [ 1; 2; 2; 1; 1; 2; 1; 2; 1; 1; 2; 2 ]))
  in
  Format.printf "@.l'_g (over L0) = %a@." Log.pp o.Game.log;
  let lg = Sim_rel.apply cert.Calculus.judgment.Calculus.rel o.Game.log in
  Format.printf "l_g  (over L2) = %a@." Log.pp lg;

  (* soundness: every interleaving refines an atomic run *)
  match
    Refinement.check_cert cert ~client ~scheds:(Sched.default_suite ~seeds:16)
  with
  | Ok r ->
    Format.printf
      "@.soundness (Thm 2.2): %d schedules of P over L0 all refine [[P]]_L2 -- OK@."
      r.Refinement.scheds_checked
  | Error f -> Format.printf "@.soundness FAILED: %a@." Refinement.pp_failure f
