(* Producer/consumer over the certified IPC channel (Sec. 6's synchronous
   IPC, built from spinlock + condition variables + scheduler).

   Two producers and one consumer share a bounded channel of capacity 2;
   producers block (sleep, not spin) when the buffer is full, the consumer
   when it is empty.  The run below prints both views of one execution:
   the concrete log with its sleeps and wakeups, and its translation into
   the atomic send/recv history.

   Run with:  dune exec examples/producer_consumer.exe *)

open Ccal_core
open Ccal_objects

let vi = Value.int
let chan = 5

let placement = [ 1, 1; 2, 2; 3, 3 ]

let producer first count =
  Prog.seq_all
    (List.init count (fun k -> Prog.call "send" [ vi chan; vi (first + k) ])
    @ [ Prog.call Thread_sched.exit_tag [] ])

let consumer count =
  let rec go k acc =
    if k = 0 then
      Prog.seq
        (Prog.call Thread_sched.exit_tag [])
        (Prog.ret (Value.list (List.rev acc)))
    else Prog.bind (Prog.call "recv" [ vi chan ]) (fun v -> go (k - 1) (v :: acc))
  in
  go count []

let () =
  Format.printf "== producer/consumer over the certified IPC channel ==@.@.";

  (* certify the channel first *)
  (match Ipc.certify ~placement ~focus:[ 1; 2 ] () with
  | Ok c ->
    Format.printf "channel certified against Lipc: %d checks@.@."
      (Calculus.count_checks c)
  | Error e -> Format.printf "certification FAILED: %a@." Calculus.pp_error e);

  let layer = Ipc.underlay ~placement () in
  let m = Ipc.c_module () in
  let threads =
    [ 1, Prog.Module.link m (producer 100 3);
      2, Prog.Module.link m (producer 200 3);
      3, Prog.Module.link m (consumer 6) ]
  in
  let o =
    Game.run (Game.config ~max_steps:200_000 layer threads (Sched.random ~seed:7))
  in
  Format.printf "concrete log (%d events):@.  %a@.@." (Log.length o.Game.log)
    Log.pp o.Game.log;

  let atomic = Sim_rel.apply Ipc.r_ipc o.Game.log in
  Format.printf "atomic history (%d events):@.  %a@.@." (Log.length atomic)
    Log.pp atomic;

  (match List.assoc_opt 3 o.Game.results with
  | Some v -> Format.printf "consumer received: %s@." (Value.to_string v)
  | None -> Format.printf "consumer did not finish: %a@." Game.pp_status o.Game.status);

  (* each producer's messages arrive in order *)
  let received =
    match List.assoc_opt 3 o.Game.results with
    | Some (Value.Vlist vs) -> List.map Value.to_int vs
    | _ -> []
  in
  let subseq base =
    List.filter (fun v -> v / 100 = base / 100) received
  in
  Format.printf "per-producer FIFO: p1 %b, p2 %b@."
    (subseq 100 = List.sort compare (subseq 100))
    (subseq 200 = List.sort compare (subseq 200));

  (* sleeping, not spinning: count the sleeps the bounded buffer forced *)
  let sleeps =
    Log.count (fun e -> String.equal e.Event.tag Thread_sched.sleep_tag) o.Game.log
  in
  Format.printf "blocking events in this run: %d sleeps / %d wakeups@." sleeps
    (Log.count (fun e -> String.equal e.Event.tag Thread_sched.wakeup_tag) o.Game.log)
