(** Translation validation for CompCertX.

    The paper's CompCertX carries a per-function Coq correctness theorem:
    compiled assembly refines its ClightX source over any layer interface.
    Our substitute runs source and compiled code side by side — same layer,
    same thread, same arguments, and the same environment events — and
    demands identical logs and return values (identity simulation).
    A validated compilation can then replace C bodies by assembly bodies in
    any certificate, which is how Fig. 5's "thread-safe compilation" step
    is discharged (see DESIGN.md, Substitutions). *)

type failure = {
  fn_name : string;
  args : Ccal_core.Value.t list;
  tid : Ccal_core.Event.tid;
  env_name : string;
  reason : string;
  c_log : Ccal_core.Log.t;
  asm_log : Ccal_core.Log.t;
}

val pp_failure : Format.formatter -> failure -> unit

type report = {
  fns_validated : int;
  cases_run : int;
}

val validate_fn :
  ?max_moves:int ->
  layer:Ccal_core.Layer.t ->
  tids:Ccal_core.Event.tid list ->
  arg_cases:Ccal_core.Value.t list list ->
  envs:(Ccal_core.Event.tid -> Ccal_core.Env_context.t list) ->
  Ccal_clight.Csyntax.fn ->
  (int, failure) result
(** Validate one function over every thread, argument vector and (paired)
    environment context; returns the number of cases run. *)

val validate_module :
  ?max_moves:int ->
  layer:Ccal_core.Layer.t ->
  tids:Ccal_core.Event.tid list ->
  arg_cases:(string * Ccal_core.Value.t list list) list ->
  envs:(Ccal_core.Event.tid -> Ccal_core.Env_context.t list) ->
  Ccal_clight.Csyntax.fn list ->
  (report, failure) result
(** Validate each function of a module with its own argument cases
    (functions without an entry are validated on the empty argument
    vector). *)
