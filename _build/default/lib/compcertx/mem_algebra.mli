(** The extended algebraic memory model of thread-safe CompCertX
    (Sec. 5.5, Fig. 12).

    Each thread's stack frames live in its private memory; when threads on
    one CPU are composed, their private memories must combine into a single
    coherent CompCert-style memory.  The trick is {e empty placeholder
    blocks}: a scheduling primitive also allocates permission-less blocks
    standing for the stack frames other threads allocate while the thread
    is descheduled ([liftnb]), so block numbers stay aligned.

    [m1 ⊛ m2 ≃ m] is the ternary composition relation; Fig. 12's axioms
    ([Nb], [Comm], [Ld], [St], [Alloc], [Lift-R], [Lift-L]) are theorems of
    this implementation, checked by the property-based test-suite. *)

type block
type t
(** A memory: a sequence of blocks, some of which may be empty
    placeholders (no permissions). *)

type loc = { block : int; off : int }

val empty : t
val nb : t -> int
(** [nb(m)]: total number of blocks. *)

val alloc : t -> int -> int -> t * int
(** [alloc m lo hi]: append a fresh real block with bounds [[lo,hi)];
    returns the new memory and the block's index. *)

val liftnb : t -> int -> t
(** [liftnb(m,n)]: extend [m] with [n] empty placeholder blocks. *)

val ld : t -> loc -> Ccal_core.Value.t option
(** [ld(m,ℓ)]: load; [None] if the block is absent/empty/out of bounds
    (no permission). *)

val st : t -> loc -> Ccal_core.Value.t -> t option
(** [st(m,ℓ,v)]: store; [None] without permission. *)

val block_is_empty : t -> int -> bool
(** Is the indexed block an empty placeholder (or absent)? *)

val compose : t -> t -> t option
(** [compose m1 m2]: the canonical [m] with [m1 ⊛ m2 ≃ m], if the two
    memories are compatible (no index holds a real block in both). *)

val related : t -> t -> t -> bool
(** [related m1 m2 m]: does [m1 ⊛ m2 ≃ m] hold? *)

val compose_many : t list -> t option
(** N-thread composition, defined by iterating the binary one as at the
    end of Sec. 5.5. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Construction helpers for tests} *)

val of_blocks : [ `Real of (int * Ccal_core.Value.t) list | `Empty ] list -> t
(** Build a memory from block descriptions ([`Real] blocks get bounds
    covering their bindings). *)
