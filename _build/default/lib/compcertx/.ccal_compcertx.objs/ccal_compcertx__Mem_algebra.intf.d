lib/compcertx/mem_algebra.mli: Ccal_core Format
