lib/compcertx/compile.mli: Ccal_clight Ccal_core Ccal_machine
