lib/compcertx/mem_algebra.ml: Ccal_core Format Int List Map Option Value
