lib/compcertx/compile.ml: Asm Asm_sem Ccal_clight Ccal_machine List Map Printf String
