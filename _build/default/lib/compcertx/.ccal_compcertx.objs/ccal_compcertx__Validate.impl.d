lib/compcertx/validate.ml: Ccal_clight Ccal_core Ccal_machine Compile Env_context Event Format List Log Machine Option Printf String Value
