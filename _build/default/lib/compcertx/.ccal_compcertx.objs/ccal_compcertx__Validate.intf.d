lib/compcertx/validate.mli: Ccal_clight Ccal_core Format
