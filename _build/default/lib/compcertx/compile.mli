(** The CompCertX-style per-function compiler from ClightX to assembly.

    CompCertX compiles each certified C layer into a certified assembly
    layer (Sec. 5.5).  The paper's compiler carries a Coq correctness
    proof; ours is paired with per-run translation validation
    ({!Validate}) — compiled code is co-executed with its source over the
    same layer interface and environment context, and must produce the
    same log and result (see DESIGN.md, Substitutions).

    Calling convention: function arguments arrive in frame slots
    [0 .. arity-1]; primitive-call arguments are pushed left-to-right;
    results travel in [EAX]. *)

exception Unsupported of string

val compile_fn : Ccal_clight.Csyntax.fn -> Ccal_machine.Asm.fn
(** Compile one function.  Raises [Unsupported] on name clashes the
    compiler cannot allocate slots for. *)

val compile_module :
  ?fuel:int -> Ccal_clight.Csyntax.fn list -> Ccal_core.Prog.Module.t
(** [CompCertX(M)]: compile every function and return the assembly module
    ready for linking — the paper's
    [CompCertX(M1 ⊕ M2)] in Fig. 5. *)

val slot_of_var : Ccal_clight.Csyntax.fn -> string -> int option
(** The frame slot the compiler assigns to a variable (for tests). *)
