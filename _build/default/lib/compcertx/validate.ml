open Ccal_core

type failure = {
  fn_name : string;
  args : Value.t list;
  tid : Event.tid;
  env_name : string;
  reason : string;
  c_log : Log.t;
  asm_log : Log.t;
}

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v 2>translation validation failed: %s(%s) on thread %d under %s: %s@ C log:   %a@ asm log: %a@]"
    f.fn_name
    (String.concat ", " (List.map Value.to_string f.args))
    f.tid f.env_name f.reason Log.pp f.c_log Log.pp f.asm_log

type report = {
  fns_validated : int;
  cases_run : int;
}

(* Source and compiled code must see the *same* environment events: the
   suite generator is called twice and must be deterministic (all suites in
   this code base are built from pure data). *)
let validate_fn ?max_moves ~layer ~tids ~arg_cases ~envs (fn : Ccal_clight.Csyntax.fn) =
  let asm_fn = Compile.compile_fn fn in
  let max_moves = Option.value ~default:10_000 max_moves in
  let run_case tid args env_c env_a =
    let c_run =
      Machine.run_local ~max_moves layer tid ~env:env_c
        (Ccal_clight.Csem.prog_of_fn fn args)
    in
    let asm_run =
      Machine.run_local ~max_moves layer tid ~env:env_a
        (Ccal_machine.Asm_sem.prog_of_fn asm_fn args)
    in
    let fail reason =
      Error
        {
          fn_name = fn.Ccal_clight.Csyntax.name;
          args;
          tid;
          env_name = env_c.Env_context.name;
          reason;
          c_log = c_run.Machine.log;
          asm_log = asm_run.Machine.log;
        }
    in
    match c_run.Machine.outcome, asm_run.Machine.outcome with
    | Machine.Done vc, Machine.Done va ->
      if not (Value.equal vc va) then
        fail
          (Printf.sprintf "results differ: C returned %s, assembly returned %s"
             (Value.to_string vc) (Value.to_string va))
      else if not (Log.equal c_run.Machine.log asm_run.Machine.log) then
        fail "logs differ"
      else Ok ()
    | Machine.Done _, _ -> fail "assembly did not terminate where C did"
    | Machine.Stuck_run msg, _ -> fail ("source execution got stuck: " ^ msg)
    | Machine.No_progress msg, _ -> fail ("source execution blocked: " ^ msg)
    | Machine.Out_of_fuel, _ -> fail "source execution ran out of fuel"
  in
  let cases =
    List.concat_map (fun args -> List.map (fun tid -> args, tid) tids) arg_cases
  in
  let rec go n = function
    | [] -> Ok n
    | (args, tid) :: rest -> (
      let envs_c = envs tid and envs_a = envs tid in
      let rec over_envs = function
        | [], [] -> Ok ()
        | ec :: cs, ea :: as_ -> (
          match run_case tid args ec ea with
          | Ok () -> over_envs (cs, as_)
          | Error _ as e -> e)
        | _ ->
          Error
            {
              fn_name = fn.Ccal_clight.Csyntax.name;
              args;
              tid;
              env_name = "<suite>";
              reason = "environment suite generator is not deterministic";
              c_log = Log.empty;
              asm_log = Log.empty;
            }
      in
      match over_envs (envs_c, envs_a) with
      | Ok () -> go (n + List.length envs_c) rest
      | Error _ as e -> e)
  in
  go 0 cases

let validate_module ?max_moves ~layer ~tids ~arg_cases ~envs fns =
  let rec go fns_validated cases_run = function
    | [] -> Ok { fns_validated; cases_run }
    | fn :: rest -> (
      let cases =
        match List.assoc_opt fn.Ccal_clight.Csyntax.name arg_cases with
        | Some cs -> cs
        | None -> [ [] ]
      in
      match validate_fn ?max_moves ~layer ~tids ~arg_cases:cases ~envs fn with
      | Ok n -> go (fns_validated + 1) (cases_run + n) rest
      | Error _ as e -> e)
  in
  go 0 0 fns
