open Ccal_machine

exception Unsupported of string

module Smap = Map.Make (String)

let binop_of = function
  | Ccal_clight.Csyntax.Add -> Asm.Add
  | Ccal_clight.Csyntax.Sub -> Asm.Sub
  | Ccal_clight.Csyntax.Mul -> Asm.Mul
  | Ccal_clight.Csyntax.Div -> Asm.Div
  | Ccal_clight.Csyntax.Mod -> Asm.Mod
  | Ccal_clight.Csyntax.Eq -> Asm.Eq
  | Ccal_clight.Csyntax.Ne -> Asm.Ne
  | Ccal_clight.Csyntax.Lt -> Asm.Lt
  | Ccal_clight.Csyntax.Le -> Asm.Le
  | Ccal_clight.Csyntax.Gt -> Asm.Gt
  | Ccal_clight.Csyntax.Ge -> Asm.Ge
  | Ccal_clight.Csyntax.And -> Asm.And
  | Ccal_clight.Csyntax.Or -> Asm.Or

let slots_of_fn (fn : Ccal_clight.Csyntax.fn) =
  let add (map, next) x =
    if Smap.mem x map then
      raise (Unsupported (fn.name ^ ": variable declared twice: " ^ x))
    else Smap.add x next map, next + 1
  in
  let map, _ = List.fold_left add (Smap.empty, 0) (fn.params @ fn.locals) in
  map

let slot_of_var fn x = Smap.find_opt x (slots_of_fn fn)

(* Expressions compile to code leaving the result in EAX; intermediates go
   through the operand stack, so nested expressions need no register
   allocator. *)
let rec compile_expr slots fn_name e =
  match e with
  | Ccal_clight.Csyntax.Const n -> [ Asm.Mov (Asm.EAX, Asm.Imm n) ]
  | Ccal_clight.Csyntax.Var x -> (
    match Smap.find_opt x slots with
    | Some slot -> [ Asm.Load (Asm.EAX, Asm.Imm slot) ]
    | None -> raise (Unsupported (fn_name ^ ": unbound variable " ^ x)))
  | Ccal_clight.Csyntax.Binop (op, a, b) ->
    compile_expr slots fn_name a
    @ [ Asm.Push (Asm.Reg Asm.EAX) ]
    @ compile_expr slots fn_name b
    @ [
        Asm.Mov (Asm.ECX, Asm.Reg Asm.EAX);
        Asm.Pop Asm.EAX;
        Asm.Op (binop_of op, Asm.EAX, Asm.Reg Asm.ECX);
      ]
  | Ccal_clight.Csyntax.Unop (Ccal_clight.Csyntax.Neg, a) ->
    compile_expr slots fn_name a
    @ [
        Asm.Mov (Asm.ECX, Asm.Reg Asm.EAX);
        Asm.Mov (Asm.EAX, Asm.Imm 0);
        Asm.Op (Asm.Sub, Asm.EAX, Asm.Reg Asm.ECX);
      ]
  | Ccal_clight.Csyntax.Unop (Ccal_clight.Csyntax.Not, a) ->
    compile_expr slots fn_name a @ [ Asm.Op (Asm.Eq, Asm.EAX, Asm.Imm 0) ]

let compile_fn (fn : Ccal_clight.Csyntax.fn) =
  let slots = slots_of_fn fn in
  let fresh =
    let counter = ref 0 in
    fun base ->
      incr counter;
      Printf.sprintf ".%s_%s%d" fn.name base !counter
  in
  let rec compile_stmt s =
    match s with
    | Ccal_clight.Csyntax.Sskip -> []
    | Ccal_clight.Csyntax.Sassign (x, e) -> (
      match Smap.find_opt x slots with
      | Some slot ->
        compile_expr slots fn.name e
        @ [ Asm.Store (Asm.Imm slot, Asm.Reg Asm.EAX) ]
      | None -> raise (Unsupported (fn.name ^ ": unbound variable " ^ x)))
    | Ccal_clight.Csyntax.Scall (dest, prim, args) ->
      List.concat_map
        (fun a -> compile_expr slots fn.name a @ [ Asm.Push (Asm.Reg Asm.EAX) ])
        args
      @ [ Asm.CallPrim (prim, List.length args) ]
      @ (match dest with
        | None -> []
        | Some x -> (
          match Smap.find_opt x slots with
          | Some slot -> [ Asm.Store (Asm.Imm slot, Asm.Reg Asm.EAX) ]
          | None -> raise (Unsupported (fn.name ^ ": unbound variable " ^ x))))
    | Ccal_clight.Csyntax.Sseq (a, b) -> compile_stmt a @ compile_stmt b
    | Ccal_clight.Csyntax.Sif (cond, st, sf) ->
      let l_else = fresh "else" and l_end = fresh "endif" in
      compile_expr slots fn.name cond
      @ [ Asm.Jz (Asm.Reg Asm.EAX, l_else) ]
      @ compile_stmt st
      @ [ Asm.Jmp l_end; Asm.Label l_else ]
      @ compile_stmt sf
      @ [ Asm.Label l_end ]
    | Ccal_clight.Csyntax.Swhile (cond, body) ->
      let l_loop = fresh "loop" and l_end = fresh "endloop" in
      [ Asm.Label l_loop ]
      @ compile_expr slots fn.name cond
      @ [ Asm.Jz (Asm.Reg Asm.EAX, l_end) ]
      @ compile_stmt body
      @ [ Asm.Jmp l_loop; Asm.Label l_end ]
    | Ccal_clight.Csyntax.Sreturn None -> [ Asm.RetVoid ]
    | Ccal_clight.Csyntax.Sreturn (Some e) ->
      compile_expr slots fn.name e @ [ Asm.Ret (Asm.Reg Asm.EAX) ]
  in
  {
    Asm.name = fn.name;
    arity = List.length fn.params;
    body = compile_stmt fn.body @ [ Asm.RetVoid ];
  }

let compile_module ?fuel fns =
  Asm_sem.module_of_fns ?fuel (List.map compile_fn fns)
