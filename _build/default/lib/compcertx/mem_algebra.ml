open Ccal_core

module Imap = Map.Make (Int)

type block =
  | Empty
  | Real of {
      lo : int;
      hi : int;
      data : Value.t Imap.t;
    }

type t = block list  (* index 0 = first allocated *)

type loc = { block : int; off : int }

let empty = []

let nb m = List.length m

let alloc m lo hi =
  let idx = nb m in
  m @ [ Real { lo; hi; data = Imap.empty } ], idx

let liftnb m n =
  if n <= 0 then m else m @ List.init n (fun _ -> Empty)

let block_at m i = List.nth_opt m i

let ld m l =
  match block_at m l.block with
  | Some (Real b) when l.off >= b.lo && l.off < b.hi ->
    Some (Option.value ~default:(Value.int 0) (Imap.find_opt l.off b.data))
  | Some (Real _) | Some Empty | None -> None

let st m l v =
  match block_at m l.block with
  | Some (Real b) when l.off >= b.lo && l.off < b.hi ->
    Some
      (List.mapi
         (fun i blk ->
           if i = l.block then Real { b with data = Imap.add l.off v b.data }
           else blk)
         m)
  | Some (Real _) | Some Empty | None -> None

let block_is_empty m i =
  match block_at m i with
  | Some Empty | None -> true
  | Some (Real _) -> false

let compose m1 m2 =
  let n = max (nb m1) (nb m2) in
  let rec go i acc =
    if i >= n then Some (List.rev acc)
    else
      match block_at m1 i, block_at m2 i with
      | (Some (Real _) as b), (Some Empty | None)
      | (Some Empty | None), (Some (Real _) as b) ->
        go (i + 1) (Option.get b :: acc)
      | (Some Empty | None), (Some Empty | None) -> go (i + 1) (Empty :: acc)
      | Some (Real _), Some (Real _) -> None
  in
  go 0 []

let block_equal a b =
  match a, b with
  | Empty, Empty -> true
  | Real x, Real y ->
    x.lo = y.lo && x.hi = y.hi && Imap.equal Value.equal x.data y.data
  | (Empty | Real _), _ -> false

let equal a b = List.length a = List.length b && List.for_all2 block_equal a b

let related m1 m2 m =
  match compose m1 m2 with
  | Some m' -> equal m m'
  | None -> false

let compose_many ms =
  List.fold_left
    (fun acc m ->
      match acc with
      | None -> None
      | Some acc -> compose acc m)
    (Some empty) ms

let pp fmt m =
  let pp_block fmt = function
    | Empty -> Format.pp_print_string fmt "<empty>"
    | Real b ->
      Format.fprintf fmt "[%d,%d){%a}" b.lo b.hi
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           (fun fmt (k, v) -> Format.fprintf fmt "%d=%a" k Value.pp v))
        (Imap.bindings b.data)
  in
  Format.fprintf fmt "@[<hov 1>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       pp_block)
    m

let of_blocks descrs =
  List.map
    (function
      | `Empty -> Empty
      | `Real bindings ->
        let data =
          List.fold_left (fun d (k, v) -> Imap.add k v d) Imap.empty bindings
        in
        let lo, hi =
          match bindings with
          | [] -> 0, 1
          | _ ->
            let keys = List.map fst bindings in
            List.fold_left min (List.hd keys) keys,
            List.fold_left max (List.hd keys) keys + 1
        in
        Real { lo; hi; data })
    descrs
