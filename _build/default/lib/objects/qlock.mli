(** The queuing lock (Sec. 5.4, Fig. 11).

    With queuing locks, waiting threads are put to sleep instead of busy
    spinning.  The implementation combines a spinlock (protecting the
    lock's [ql_busy] word, which is exactly the spinlock-protected value in
    our model) with the scheduler primitives: a failed acquire sleeps on
    the lock's channel — atomically releasing the spinlock — and completes
    when the releaser's [wakeup] hands the lock over directly
    ([ql_busy[l] = wakeup(l)], Fig. 11 line 12).

    The atomic overlay is a {e thread-local} interface in the sense of
    Sec. 5.3: scheduling has disappeared — [acq_q]/[rel_q] are single
    events, [yield] is a logged no-op — which is what makes the C-level
    specification of the scheduling-dependent code possible.

    Thread ids must be ≥ 1; [ql_busy = 0] means the lock is free (the
    paper uses [-1]; our protected words start at 0). *)

open Ccal_core

val acq_q_tag : string
val rel_q_tag : string

val underlay : placement:Thread_sched.placement -> unit -> Layer.t
(** The multithreaded spinlock interface: [mt_layer] over [Llock]. *)

val overlay : ?bound:int -> unit -> Layer.t
(** [Lqlock]: atomic [acq_q]/[rel_q] (blocking, holder-checked) plus the
    no-op [yield]/[texit] events. *)

val replay_qlock : int -> Event.tid option Replay.t
(** Holder of queuing lock [l] from overlay events. *)

val acq_q_fn : Ccal_clight.Csyntax.fn
val rel_q_fn : Ccal_clight.Csyntax.fn

val c_module : unit -> Prog.Module.t
val asm_module : unit -> Prog.Module.t

val r_qlock : Sim_rel.t
(** The stateful relation: a spinlock section ending in [rel(l, self)]
    (fast path) or a [wait(l)] event (slow path) becomes [acq_q(l)];
    a section containing a [wakeup(l)] becomes [rel_q(l)]; the sleeping
    attempt and all scheduler internals disappear; [yield]/[texit]
    survive. *)

val prim_tests : ?locks:int list -> unit -> Calculus.prim_tests

val env_suite :
  placement:Thread_sched.placement ->
  ?locks:int list ->
  ?rivals:Event.tid list ->
  ?rounds:int list ->
  unit ->
  Calculus.env_suite

val certify :
  ?max_moves:int ->
  ?placement:Thread_sched.placement ->
  ?focus:Event.tid list ->
  ?use_asm:bool ->
  unit ->
  (Calculus.cert, Calculus.error) result
(** [Lmt(Llock)[A] ⊢_{R_qlock} M_ql : Lqlock[A]]. *)
