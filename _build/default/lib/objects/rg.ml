open Ccal_core

let lock_arg (e : Event.t) =
  match e.args with
  | Value.Vint b :: _ -> Some b
  | _ -> None

(* Scan thread [i]'s lock events, returning [None] on a protocol violation
   or [Some held] with the locks currently held. *)
let scan ~acq_tag ~rel_tag i l =
  let step acc (e : Event.t) =
    match acc with
    | None -> None
    | Some held ->
      if e.src <> i then acc
      else if String.equal e.tag acq_tag then
        match lock_arg e with
        | Some b -> if List.mem b held then None else Some (b :: held)
        | None -> None
      else if String.equal e.tag rel_tag then
        match lock_arg e with
        | Some b ->
          if List.mem b held then Some (List.filter (fun x -> x <> b) held)
          else None
        | None -> None
      else acc
  in
  List.fold_left step (Some []) (Log.chronological l)

let lock_wellformed ~acq_tag ~rel_tag =
  Rely_guarantee.make
    (Printf.sprintf "wellformed(%s/%s)" acq_tag rel_tag)
    (fun i l -> scan ~acq_tag ~rel_tag i l <> None)

let releases_within ~bound ~acq_tag ~rel_tag =
  Rely_guarantee.make
    (Printf.sprintf "releases-within(%d,%s/%s)" bound acq_tag rel_tag)
    (fun i l ->
      (* For each lock currently held by [i], count the events logged since
         the acquisition. *)
      let rec go held = function
        | [] -> List.for_all (fun (_, age) -> age <= bound) held
        | (e : Event.t) :: rest ->
          let held = List.map (fun (b, age) -> b, age + 1) held in
          let held =
            if e.src <> i then held
            else if String.equal e.tag acq_tag then
              match lock_arg e with
              | Some b -> (b, 0) :: held
              | None -> held
            else if String.equal e.tag rel_tag then
              match lock_arg e with
              | Some b -> List.filter (fun (b', _) -> b' <> b) held
              | None -> held
            else held
          in
          if List.exists (fun (_, age) -> age > bound) held then false
          else go held rest
      in
      go [] (Log.chronological l))

let lock_condition ?(bound = 64) ~acq_tag ~rel_tag () =
  Rely_guarantee.conj
    (lock_wellformed ~acq_tag ~rel_tag)
    (releases_within ~bound ~acq_tag ~rel_tag)

let held_locks ~acq_tag ~rel_tag i l =
  Option.value ~default:[] (scan ~acq_tag ~rel_tag i l)
