(** Rely/guarantee building blocks shared by the lock objects.

    The paper's lock layers impose two conditions on every participant
    (Sec. 2, Sec. 4.1): {e well-bracketing} — lock-related events follow
    the lock protocol (a release only by the holder, no re-acquisition of a
    held lock) — and {e definite release} — a held lock is released within
    a bounded number of steps (the "definite action" used to prove
    starvation-freedom). *)

val lock_wellformed : acq_tag:string -> rel_tag:string -> Ccal_core.Rely_guarantee.t
(** [holds i l]: thread [i]'s [acq]/[rel] events in [l] are well bracketed
    per lock: it never releases a lock it does not hold and never
    re-acquires a lock it already holds. *)

val releases_within :
  bound:int -> acq_tag:string -> rel_tag:string -> Ccal_core.Rely_guarantee.t
(** [holds i l]: no lock is held by [i] for more than [bound] subsequent
    events of the log — the executable form of "the held locks will
    eventually be released" (Sec. 2), with "eventually" bounded so that
    the invariant is checkable on finite logs. *)

val lock_condition :
  ?bound:int -> acq_tag:string -> rel_tag:string -> unit -> Ccal_core.Rely_guarantee.t
(** Conjunction of the two conditions above; [bound] defaults to 64. *)

val held_locks : acq_tag:string -> rel_tag:string -> Ccal_core.Event.tid -> Ccal_core.Log.t -> int list
(** The locks currently held by a thread (for tests and diagnostics). *)
