open Ccal_core
module C = Ccal_clight.Csyntax

(* ------------------------------------------------------------------ *)
(* Private heap layer                                                  *)
(* ------------------------------------------------------------------ *)

let heap_field a = "h:" ^ string_of_int a
let hp_field = "hp"
let heap_base = 1000

let lload_prim =
  ( "lload",
    Layer.Private
      (fun _ args abs ->
        match args with
        | [ Value.Vint a ] -> (
          match Abs.get (heap_field a) abs with
          | Value.Vunit -> Ok (abs, Value.int 0)
          | v -> Ok (abs, v))
        | _ -> Error "lload: expected an address") )

let lstore_prim =
  ( "lstore",
    Layer.Private
      (fun _ args abs ->
        match args with
        | [ Value.Vint a; v ] -> Ok (Abs.set (heap_field a) v abs, Value.unit)
        | _ -> Error "lstore: expected address and value") )

let lalloc_prim =
  ( "lalloc",
    Layer.Private
      (fun _ args abs ->
        match args with
        | [ Value.Vint n ] when n > 0 ->
          let hp =
            match Abs.get hp_field abs with
            | Value.Vint p -> p
            | _ -> heap_base
          in
          Ok (Abs.set hp_field (Value.int (hp + n)) abs, Value.int hp)
        | _ -> Error "lalloc: expected a positive size") )

let heap_layer () =
  Layer.make "Lheap" [ lload_prim; lstore_prim; lalloc_prim ]

(* ------------------------------------------------------------------ *)
(* Abstract queue layer (the paper's a.tdqp)                           *)
(* ------------------------------------------------------------------ *)

let tdqp_field q = "tdqp:" ^ string_of_int q

let get_queue q abs =
  match Abs.get (tdqp_field q) abs with
  | Value.Vlist vs -> vs
  | _ -> []

let abs_enq_prim =
  ( "enQ",
    Layer.Private
      (fun _ args abs ->
        match args with
        | [ Value.Vint q; v ] ->
          let vs = get_queue q abs in
          Ok (Abs.set (tdqp_field q) (Value.list (vs @ [ v ])) abs, Value.unit)
        | _ -> Error "enQ: expected queue and value") )

let abs_deq_prim =
  ( "deQ",
    Layer.Private
      (fun _ args abs ->
        match args with
        | [ Value.Vint q ] -> (
          match get_queue q abs with
          | [] -> Ok (abs, Value.int (-1))
          | v :: rest ->
            Ok (Abs.set (tdqp_field q) (Value.list rest) abs, v))
        | _ -> Error "deQ: expected a queue") )

let abs_qlen_prim =
  ( "qlen",
    Layer.Private
      (fun _ args abs ->
        match args with
        | [ Value.Vint q ] -> Ok (abs, Value.int (List.length (get_queue q abs)))
        | _ -> Error "qlen: expected a queue") )

let abs_layer () =
  Layer.make "Labsq" [ abs_enq_prim; abs_deq_prim; abs_qlen_prim ]

(* ------------------------------------------------------------------ *)
(* Doubly-linked-list implementation over the heap                     *)
(* ------------------------------------------------------------------ *)

(* Queue control block at address q: [q] = head, [q+1] = tail, [q+2] = len.
   Node layout: [nd] = value, [nd+1] = prev, [nd+2] = next; 0 = null. *)

let enq_fn =
  {
    C.name = "enQ";
    params = [ "q"; "val" ];
    locals = [ "nd"; "t"; "len" ];
    body =
      C.seq
        [
          C.calla "nd" "lalloc" [ C.i 3 ];
          C.call_ "lstore" [ C.v "nd"; C.v "val" ];
          C.calla "t" "lload" [ C.(v "q" + i 1) ];
          C.call_ "lstore" [ C.(v "nd" + i 1); C.v "t" ];
          C.call_ "lstore" [ C.(v "nd" + i 2); C.i 0 ];
          C.if_
            C.(v "t" = i 0)
            (C.call_ "lstore" [ C.v "q"; C.v "nd" ])
            (C.call_ "lstore" [ C.(v "t" + i 2); C.v "nd" ]);
          C.call_ "lstore" [ C.(v "q" + i 1); C.v "nd" ];
          C.calla "len" "lload" [ C.(v "q" + i 2) ];
          C.call_ "lstore" [ C.(v "q" + i 2); C.(v "len" + i 1) ];
          C.return_unit;
        ];
  }

let deq_fn =
  {
    C.name = "deQ";
    params = [ "q" ];
    locals = [ "h"; "val"; "n"; "len" ];
    body =
      C.seq
        [
          C.calla "h" "lload" [ C.v "q" ];
          C.if_
            C.(v "h" = i 0)
            (C.return (C.i (-1)))
            (C.seq
               [
                 C.calla "val" "lload" [ C.v "h" ];
                 C.calla "n" "lload" [ C.(v "h" + i 2) ];
                 C.call_ "lstore" [ C.v "q"; C.v "n" ];
                 C.if_
                   C.(v "n" = i 0)
                   (C.call_ "lstore" [ C.(v "q" + i 1); C.i 0 ])
                   (C.call_ "lstore" [ C.(v "n" + i 1); C.i 0 ]);
                 C.calla "len" "lload" [ C.(v "q" + i 2) ];
                 C.call_ "lstore" [ C.(v "q" + i 2); C.(v "len" - i 1) ];
                 C.return (C.v "val");
               ]);
        ];
  }

let qlen_fn =
  {
    C.name = "qlen";
    params = [ "q" ];
    locals = [ "len" ];
    body =
      C.seq
        [
          C.calla "len" "lload" [ C.(v "q" + i 2) ];
          C.return (C.v "len");
        ];
  }

let fns = [ enq_fn; deq_fn; qlen_fn ]

let c_module () = Ccal_clight.Csem.module_of_fns fns
let asm_module () = Ccal_compcertx.Compile.compile_module fns

let prim_tests ?(queues = [ 0 ]) () : Calculus.prim_tests =
  let iq q = Value.int q in
  List.concat_map
    (fun q ->
      let e v = "enQ", [ iq q; Value.int v ] in
      let d = "deQ", [ iq q ] in
      [
        "deQ",
          [
            Calculus.case [ iq q ];  (* empty *)
            Calculus.case ~pre:[ e 5 ] [ iq q ];
            Calculus.case ~pre:[ e 5; e 6; e 7 ] [ iq q ];
            Calculus.case ~pre:[ e 5; d; e 6 ] [ iq q ];
            Calculus.case ~pre:[ e 5; e 6; d; d ] [ iq q ];  (* empty again *)
          ];
        "enQ",
          [
            Calculus.case [ iq q; Value.int 1 ];
            Calculus.case ~pre:[ e 2; d; d ] [ iq q; Value.int 3 ];
          ];
        "qlen",
          [
            Calculus.case [ iq q ];
            Calculus.case ~pre:[ e 1; e 2; d ] [ iq q ];
          ];
      ])
    queues

let certify ?max_moves ?(focus = [ 1 ]) ?(use_asm = false) () =
  let impl = if use_asm then asm_module () else c_module () in
  Calculus.fun_rule ?max_moves ~underlay:(heap_layer ()) ~overlay:(abs_layer ())
    ~impl ~rel:Sim_rel.id ~focus ~prim_tests:(prim_tests ())
    ~envs:(fun _ -> [ Env_context.empty ])
    ()
