(** A sense-reversing barrier — another synchronization library over the
    scheduler primitives (Fig. 1's "Sync. Libs").

    [bar_wait(b, n)] blocks until [n] threads have arrived at barrier [b];
    the last arriver wakes all sleepers.  The state (arrival count and
    generation) is the spinlock-protected word of lock [b]: the low bits
    count arrivals, the generation distinguishes reuses.

    Unlike locks and queues, a barrier episode is {e not} a linearizable
    single-event object — all [n] waits overlap by design — so instead of
    an atomic overlay certificate, the library is verified behaviourally:
    {!episodes_wellformed} checks on every log that no thread leaves an
    episode before the last thread of that episode has arrived, and the
    test-suite checks it over scheduler suites, plus reuse across
    generations. *)

open Ccal_core

val arrive_tag : string
(** Logged when a thread arrives (the spinlock publication). *)

val pass_tag : string
(** Logged when a thread passes the barrier. *)

val bar_wait_fn : Ccal_clight.Csyntax.fn
(** [bar_wait(b, n)]. *)

val c_module : unit -> Prog.Module.t

val underlay : placement:Thread_sched.placement -> unit -> Layer.t
(** [mt_layer] over the spinlock interface plus the [bar_arrive]/
    [bar_pass] marker primitives. *)

val episodes_wellformed : n:int -> int -> Log.t -> bool
(** [episodes_wellformed ~n b log]: grouping [arrive]/[pass] events of
    barrier [b] into generations of [n], every pass of generation [g]
    happens after the [n]-th arrival of generation [g]. *)
