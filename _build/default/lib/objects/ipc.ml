open Ccal_core
module C = Ccal_clight.Csyntax
module T = Thread_sched

let send_tag = "send"
let recv_tag = "recv"

let capacity = 2

(* Condition-variable channels of channel [ch]: not-full and not-empty. *)
let notfull ch = C.Binop (C.Add, C.Binop (C.Mul, ch, C.Const 2), C.Const 1000)
let notempty ch = C.Binop (C.Add, C.Binop (C.Mul, ch, C.Const 2), C.Const 1001)

let underlay ~placement () =
  T.mt_layer placement
    (Lock_intf.layer ~extra:Queue_shared.helpers "Lipc_under")

(* ------------------------------------------------------------------ *)
(* Atomic overlay                                                      *)
(* ------------------------------------------------------------------ *)

let chan_of_args = function
  | (Value.Vint ch : Value.t) :: _ -> Some ch
  | _ -> None

let replay_chan ch : Value.t list Replay.t =
  Replay.fold ~init:[] ~step:(fun buf (e : Event.t) ->
      match chan_of_args e.args with
      | Some ch' when ch' = ch ->
        if String.equal e.tag send_tag then
          match e.args with
          | [ _; v ] ->
            if List.length buf >= capacity then
              Error "invalid log: send to a full channel"
            else Ok (buf @ [ v ])
          | _ -> Error "send: bad arguments"
        else if String.equal e.tag recv_tag then
          match buf with
          | [] -> Error "invalid log: recv from an empty channel"
          | _ :: rest -> Ok rest
        else Ok buf
      | Some _ | None -> Ok buf)

let send_prim =
  ( send_tag,
    Layer.Shared
      (fun t args log ->
        match args with
        | [ Value.Vint ch; _ ] -> (
          match replay_chan ch log with
          | Error msg -> Layer.Stuck msg
          | Ok buf ->
            if List.length buf >= capacity then Layer.Block
            else
              Layer.Step
                {
                  events = [ Event.make ~args t send_tag ];
                  ret = Value.unit;
                  crit = Layer.Keep;
                })
        | _ -> Layer.Stuck "send: expected channel and message") )

let recv_prim =
  ( recv_tag,
    Layer.Shared
      (fun t args log ->
        match chan_of_args args with
        | None -> Layer.Stuck "recv: expected a channel"
        | Some ch -> (
          match replay_chan ch log with
          | Error msg -> Layer.Stuck msg
          | Ok [] -> Layer.Block
          | Ok (v :: _) ->
            Layer.Step
              {
                events = [ Event.make ~args ~ret:v t recv_tag ];
                ret = v;
                crit = Layer.Keep;
              })) )

let noop_event_prim tag =
  ( tag,
    Layer.Shared
      (fun t _args _log ->
        Layer.Step
          { events = [ Event.make t tag ]; ret = Value.unit; crit = Layer.Keep }) )

let overlay ?bound:_ () =
  Layer.make "Lipc"
    [
      send_prim;
      recv_prim;
      noop_event_prim T.yield_tag;
      noop_event_prim T.exit_tag;
    ]

(* ------------------------------------------------------------------ *)
(* Implementation: bounded buffer with two condition variables         *)
(* ------------------------------------------------------------------ *)

(*  void send(int ch, int msg) {
      int buf = acq(ch);
      int n = q_len(buf);
      while (n >= CAP) {
        cv_wait(notfull(ch), ch, buf);
        buf = acq(ch);
        n = q_len(buf);
      }
      int buf2 = q_snoc(buf, msg);
      cv_signal(notempty(ch));
      rel(ch, buf2);
    } *)
let send_fn =
  {
    C.name = send_tag;
    params = [ "ch"; "msg" ];
    locals = [ "buf"; "n"; "buf2"; "w" ];
    body =
      C.seq
        [
          C.calla "buf" Lock_intf.acq_tag [ C.v "ch" ];
          C.calla "n" "q_len" [ C.v "buf" ];
          C.while_
            C.(v "n" >= i capacity)
            (C.seq
               [
                 C.call_ "cv_wait" [ notfull (C.v "ch"); C.v "ch"; C.v "buf" ];
                 C.calla "buf" Lock_intf.acq_tag [ C.v "ch" ];
                 C.calla "n" "q_len" [ C.v "buf" ];
               ]);
          C.calla "buf2" "q_snoc" [ C.v "buf"; C.v "msg" ];
          C.calla "w" "cv_signal" [ notempty (C.v "ch") ];
          C.call_ Lock_intf.rel_tag [ C.v "ch"; C.v "buf2" ];
          C.return_unit;
        ];
  }

(*  int recv(int ch) {
      int buf = acq(ch);
      int n = q_len(buf);
      while (n == 0) {
        cv_wait(notempty(ch), ch, buf);
        buf = acq(ch);
        n = q_len(buf);
      }
      int m = q_hd(buf);
      int buf2 = q_tl(buf);
      cv_signal(notfull(ch));
      rel(ch, buf2);
      return m;
    } *)
let recv_fn =
  {
    C.name = recv_tag;
    params = [ "ch" ];
    locals = [ "buf"; "n"; "m"; "buf2"; "w" ];
    body =
      C.seq
        [
          C.calla "buf" Lock_intf.acq_tag [ C.v "ch" ];
          C.calla "n" "q_len" [ C.v "buf" ];
          C.while_
            C.(v "n" = i 0)
            (C.seq
               [
                 C.call_ "cv_wait" [ notempty (C.v "ch"); C.v "ch"; C.v "buf" ];
                 C.calla "buf" Lock_intf.acq_tag [ C.v "ch" ];
                 C.calla "n" "q_len" [ C.v "buf" ];
               ]);
          C.calla "m" "q_hd" [ C.v "buf" ];
          C.calla "buf2" "q_tl" [ C.v "buf" ];
          C.calla "w" "cv_signal" [ notfull (C.v "ch") ];
          C.call_ Lock_intf.rel_tag [ C.v "ch"; C.v "buf2" ];
          C.return (C.v "m");
        ];
  }

let fns = [ send_fn; recv_fn ]

let c_module () =
  Prog.Module.stack
    ~lower:(Condvar.c_module ())
    ~upper:(Ccal_clight.Csem.module_of_fns fns)

(* ------------------------------------------------------------------ *)
(* Simulation relation: merge each productive spinlock section into    *)
(* its atomic event; sleeping retries disappear.                       *)
(* ------------------------------------------------------------------ *)

let as_list = function
  | Value.Vlist vs -> vs
  | _ -> []

let r_ipc =
  Sim_rel.of_log_fn "R_ipc" (fun log ->
      let step (sections, out) (e : Event.t) =
        let in_section = List.assoc_opt e.src sections in
        if String.equal e.tag Lock_intf.acq_tag then
          match e.args with
          | [ Value.Vint ch ] -> (e.src, (ch, as_list e.ret)) :: sections, out
          | _ -> sections, e :: out
        else if String.equal e.tag Lock_intf.rel_tag then
          match e.args, in_section with
          | [ Value.Vint ch; bufv ], Some (ch', buf) when ch = ch' ->
            let sections = List.remove_assoc e.src sections in
            let buf2 = as_list bufv in
            let n = List.length buf and n2 = List.length buf2 in
            if n2 > n then
              let v = List.nth buf2 (n2 - 1) in
              sections,
              Event.make ~args:[ Value.int ch; v ] e.src send_tag :: out
            else if n2 < n then
              let ret = match buf with v :: _ -> v | [] -> Value.int (-1) in
              sections,
              Event.make ~args:[ Value.int ch ] ~ret e.src recv_tag :: out
            else (* unchanged: the release half of a sleeping retry *)
              sections, out
          | _ -> sections, e :: out
        else if
          List.mem e.tag [ T.sleep_tag; T.wait_tag; T.wakeup_tag ]
        then sections, out
        else sections, e :: out
      in
      let _, out = List.fold_left step ([], []) (Log.chronological log) in
      Log.append_all (List.rev out) Log.empty)

(* ------------------------------------------------------------------ *)
(* Certification                                                       *)
(* ------------------------------------------------------------------ *)

(* Only non-blocking cases here: the sleeping paths need a cooperating
   peer and are exercised by the refinement games and the test-suite's
   producer/consumer scenarios. *)
let prim_tests ?(chans = [ 5 ]) () : Calculus.prim_tests =
  List.concat_map
    (fun ch ->
      let ic = Value.int ch in
      let s v = send_tag, [ ic; Value.int v ] in
      let r = recv_tag, [ ic ] in
      [
        send_tag,
          [
            Calculus.case [ ic; Value.int 11 ];
            Calculus.case ~pre:[ s 1 ] [ ic; Value.int 12 ];
            Calculus.case ~pre:[ s 1; r ] [ ic; Value.int 13 ];
          ];
        recv_tag,
          [
            Calculus.case ~pre:[ s 21 ] [ ic ];
            Calculus.case ~pre:[ s 21; s 22 ] [ ic ];
            Calculus.case ~pre:[ s 21; s 22; r ] [ ic ];
          ];
      ])
    chans

let rival_prog ch =
  Prog.seq
    (Prog.call send_tag [ Value.int ch; Value.int 42 ])
    (Prog.bind (Prog.call recv_tag [ Value.int ch ]) (fun _ ->
         Prog.call T.exit_tag []))

let env_suite ~placement ?(chans = [ 5 ]) ?(rivals = [ 9 ]) ?(rounds = [ 1; 2 ])
    () : Calculus.env_suite =
 fun i ->
  let ch = match chans with c :: _ -> c | [] -> 5 in
  let layer = underlay ~placement () in
  let impl = c_module () in
  let rivals = List.filter (fun j -> j <> i) rivals in
  let rival j =
    j, Machine.strategy_of_prog layer j (Prog.Module.link impl (rival_prog ch))
  in
  Env_context.empty
  :: List.concat_map
       (fun per_query ->
         List.map
           (fun j ->
             Env_context.of_strategies
               (Printf.sprintf "rival%d(r%d)" j per_query)
               [ rival j ] ~rounds:per_query)
           rivals)
       rounds

let default_placement focus rivals =
  List.map (fun t -> t, t) (List.sort_uniq Stdlib.compare (focus @ rivals))

let certify ?max_moves ?placement ?(focus = [ 1; 2 ]) () =
  let rivals = [ 9 ] in
  let placement =
    match placement with
    | Some p -> p
    | None -> default_placement focus rivals
  in
  Calculus.fun_rule ?max_moves ~underlay:(underlay ~placement ())
    ~overlay:(overlay ()) ~impl:(c_module ()) ~rel:r_ipc ~focus
    ~prim_tests:(prim_tests ())
    ~envs:(env_suite ~placement ()) ()
