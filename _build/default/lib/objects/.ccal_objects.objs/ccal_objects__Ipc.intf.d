lib/objects/ipc.mli: Calculus Ccal_clight Ccal_core Event Layer Prog Replay Sim_rel Thread_sched Value
