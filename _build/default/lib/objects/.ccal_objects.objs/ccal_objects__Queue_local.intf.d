lib/objects/queue_local.mli: Calculus Ccal_clight Ccal_core Event Layer Prog
