lib/objects/ticket_lock.ml: Calculus Ccal_clight Ccal_compcertx Ccal_core Ccal_machine Env_context Event Layer List Lock_intf Log Machine Printf Prog Replay Result Rg Sim_rel Strategy String Value
