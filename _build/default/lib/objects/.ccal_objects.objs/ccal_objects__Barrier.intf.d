lib/objects/barrier.mli: Ccal_clight Ccal_core Layer Log Prog Thread_sched
