lib/objects/qlock.ml: Calculus Ccal_clight Ccal_compcertx Ccal_core Env_context Event Layer List Lock_intf Log Machine Printf Prog Replay Rg Sim_rel Stdlib String Thread_sched Value
