lib/objects/lock_intf.mli: Ccal_core
