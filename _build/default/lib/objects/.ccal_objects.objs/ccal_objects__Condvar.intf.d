lib/objects/condvar.mli: Ccal_clight Ccal_core
