lib/objects/mcs_lock.mli: Calculus Ccal_clight Ccal_core Event Layer Prog Sim_rel
