lib/objects/thread_sched.ml: Ccal_core Event Game Layer List Lock_intf Log Option Printf Refinement Replay Sched Stdlib String Value
