lib/objects/condvar.ml: Ccal_clight Ccal_compcertx Thread_sched
