lib/objects/mcs_lock.ml: Calculus Ccal_clight Ccal_compcertx Ccal_core Ccal_machine Env_context Layer List Lock_intf Machine Printf Prog Rg Sim_rel Value
