lib/objects/barrier.ml: Ccal_clight Ccal_core Event Layer Lock_intf Log String Thread_sched Value
