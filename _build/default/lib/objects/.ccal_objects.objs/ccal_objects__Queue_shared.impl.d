lib/objects/queue_shared.ml: Calculus Ccal_clight Ccal_compcertx Ccal_core Env_context Event Layer List Lock_intf Log Machine Printf Prog Replay Result Sim_rel String Ticket_lock Value
