lib/objects/thread_sched.mli: Ccal_core Event Layer Log Prog Replay Sched
