lib/objects/ticket_lock.mli: Calculus Ccal_clight Ccal_core Event Layer Prog Replay Sim_rel Strategy Value
