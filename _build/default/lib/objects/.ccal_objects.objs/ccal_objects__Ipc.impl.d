lib/objects/ipc.ml: Calculus Ccal_clight Ccal_core Condvar Env_context Event Layer List Lock_intf Log Machine Printf Prog Queue_shared Replay Sim_rel Stdlib String Thread_sched Value
