lib/objects/rg.mli: Ccal_core
