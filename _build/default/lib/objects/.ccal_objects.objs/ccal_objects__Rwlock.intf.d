lib/objects/rwlock.mli: Calculus Ccal_clight Ccal_core Event Layer Log Prog Replay Sim_rel
