lib/objects/queue_local.ml: Abs Calculus Ccal_clight Ccal_compcertx Ccal_core Env_context Layer List Sim_rel Value
