lib/objects/lock_intf.ml: Ccal_core Event Int Layer List Log Map Printf Replay Rg String Value
