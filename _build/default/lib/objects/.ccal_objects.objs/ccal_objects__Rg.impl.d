lib/objects/rg.ml: Ccal_core Event List Log Option Printf Rely_guarantee String Value
