lib/objects/rwlock.ml: Calculus Ccal_clight Ccal_compcertx Ccal_core Env_context Event Layer List Lock_intf Log Machine Option Printf Prog Replay Rg Sim_rel Stdlib String Value
