lib/objects/queue_shared.mli: Calculus Ccal_clight Ccal_core Event Layer Prog Replay Sim_rel Value
