open Ccal_core
module C = Ccal_clight.Csyntax
module T = Thread_sched

let arrive_tag = "bar_arrive"
let pass_tag = "bar_pass"

let marker tag =
  Layer.event_prim tag (fun _ args _ ->
      match args with
      | [ Value.Vint _ ] -> Ok Value.unit
      | _ -> Error (tag ^ ": expected a barrier id"))

let underlay ~placement () =
  T.mt_layer placement
    (Lock_intf.layer ~extra:[ marker arrive_tag; marker pass_tag ] "Lbar_under")

(* sleeping channel of barrier b *)
let chan b = C.Binop (C.Add, b, C.Const 3000)

(*  void bar_wait(int b, int n) {
      int v = acq(b);
      bar_arrive(b);
      if (v + 1 == n) {
        int w = wakeup(chan b);
        while (w != 0) { w = wakeup(chan b); }
        rel(b, 0);                       // reset: next generation
      } else {
        sleep(chan b, b, v + 1);         // publish count, go to sleep
        wait(chan b);
      }
      bar_pass(b);
    } *)
let bar_wait_fn =
  {
    C.name = "bar_wait";
    params = [ "b"; "n" ];
    locals = [ "v"; "w" ];
    body =
      C.seq
        [
          C.calla "v" Lock_intf.acq_tag [ C.v "b" ];
          C.call_ arrive_tag [ C.v "b" ];
          C.if_
            C.(v "v" + i 1 = v "n")
            (C.seq
               [
                 C.calla "w" T.wakeup_tag [ chan (C.v "b") ];
                 C.while_
                   C.(v "w" <> i 0)
                   (C.calla "w" T.wakeup_tag [ chan (C.v "b") ]);
                 C.call_ Lock_intf.rel_tag [ C.v "b"; C.i 0 ];
               ])
            (C.seq
               [
                 C.call_ T.sleep_tag [ chan (C.v "b"); C.v "b"; C.(v "v" + i 1) ];
                 C.call_ T.wait_tag [ chan (C.v "b") ];
               ]);
          C.call_ pass_tag [ C.v "b" ];
          C.return_unit;
        ];
  }

let c_module () = Ccal_clight.Csem.module_of_fns [ bar_wait_fn ]

let episodes_wellformed ~n b log =
  (* at every prefix, passes never outrun completed generations *)
  let rec go arrives passes = function
    | [] -> true
    | (e : Event.t) :: rest ->
      if e.args <> [ Value.int b ] then go arrives passes rest
      else if String.equal e.tag arrive_tag then go (arrives + 1) passes rest
      else if String.equal e.tag pass_tag then
        let passes = passes + 1 in
        passes <= n * (arrives / n) && go arrives passes rest
      else go arrives passes rest
  in
  go 0 0 (Log.chronological log)
