(** Synchronous inter-process communication: a bounded channel.

    The CertiKOS kernel built with CCAL provides "a synchronous
    inter-process communication protocol using the queuing lock" (Sec. 6).
    Our channel is a bounded buffer protected by a spinlock, with two
    condition-variable channels ([not-full] / [not-empty]) for blocking
    senders and receivers — the full scheduler/condvar stack in action.

    The atomic overlay [Lipc] has one event per operation: [send(ch, v)]
    blocks while the buffer is full, [recv(ch)] blocks while it is empty
    and returns the oldest message.  The simulation relation merges each
    successful spinlock section into its atomic event — the same
    list-difference trick as the shared queue — and erases the sleeping
    retries entirely. *)

open Ccal_core

val send_tag : string
val recv_tag : string

val capacity : int
(** Channel capacity (2: small enough that tests exercise the full/empty
    blocking paths). *)

val underlay : placement:Thread_sched.placement -> unit -> Layer.t
(** [mt_layer] over the spinlock interface extended with the silent list
    helpers. *)

val overlay : ?bound:int -> unit -> Layer.t
(** [Lipc]: atomic [send]/[recv] plus the no-op [yield]/[texit]. *)

val replay_chan : int -> Value.t list Replay.t
(** Buffer contents of channel [ch] from overlay events. *)

val send_fn : Ccal_clight.Csyntax.fn
val recv_fn : Ccal_clight.Csyntax.fn

val c_module : unit -> Prog.Module.t
(** The channel implementation linked over the condvar helpers. *)

val r_ipc : Sim_rel.t

val prim_tests : ?chans:int list -> unit -> Calculus.prim_tests

val env_suite :
  placement:Thread_sched.placement ->
  ?chans:int list ->
  ?rivals:Event.tid list ->
  ?rounds:int list ->
  unit ->
  Calculus.env_suite

val certify :
  ?max_moves:int ->
  ?placement:Thread_sched.placement ->
  ?focus:Event.tid list ->
  unit ->
  (Calculus.cert, Calculus.error) result
(** [Lmt(Lipc_under)[A] ⊢_{R_ipc} M_ipc : Lipc[A]]. *)
