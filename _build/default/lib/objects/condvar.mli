(** Condition variables (Fig. 1's "Sync. Libs").

    A condition variable here is a sleeping-queue channel used under a
    spinlock, following the classic monitor pattern: [cv_wait(cv, lk, v)]
    atomically publishes [v], releases spinlock [lk] and sleeps on channel
    [cv], returning once woken {e and} rescheduled (Mesa semantics — the
    caller must re-acquire the lock and re-check its predicate in a loop);
    [cv_signal(cv)] wakes one sleeper and [cv_broadcast(cv)] all of them.
    Both must be called while holding the lock that guards the predicate,
    otherwise signals may be lost.

    These are thin C wrappers over the scheduler primitives of
    {!Thread_sched}; their verification happens end-to-end through the IPC
    channel built on top ({!Ipc}), the same way the paper validates its
    synchronization libraries through the systems using them. *)

val cv_wait_fn : Ccal_clight.Csyntax.fn
(** [cv_wait(cv, lk, v)]: sleep on [cv], atomically releasing [lk] with
    published value [v]; returns after wakeup + reschedule.  The caller
    re-acquires [lk] itself. *)

val cv_signal_fn : Ccal_clight.Csyntax.fn
(** [cv_signal(cv)]: wake the first sleeper; returns its thread id (0 if
    none). *)

val cv_broadcast_fn : Ccal_clight.Csyntax.fn
(** [cv_broadcast(cv)]: wake all current sleepers; returns how many. *)

val c_module : unit -> Ccal_core.Prog.Module.t
val asm_module : unit -> Ccal_core.Prog.Module.t
val fns : Ccal_clight.Csyntax.fn list
