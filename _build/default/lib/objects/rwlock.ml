open Ccal_core
module C = Ccal_clight.Csyntax

let acq_r_tag = "acq_r"
let rel_r_tag = "rel_r"
let acq_w_tag = "acq_w"
let rel_w_tag = "rel_w"

type rw_state =
  | Free
  | Readers of int
  | Writer of Event.tid

let underlay ?bound () = Lock_intf.layer ?bound "Llock"

(* ------------------------------------------------------------------ *)
(* Overlay                                                             *)
(* ------------------------------------------------------------------ *)

let lock_of_args = function
  | (Value.Vint l : Value.t) :: _ -> Some l
  | _ -> None

(* Internal replay tracks reader identities so that a stray [rel_r] is an
   invalid log, not a silent no-op. *)
let replay_readers l : (Event.tid list option * Event.tid option) Replay.t =
  (* (Some readers, None) or (None, Some writer); (Some [], None) = free *)
  Replay.fold ~init:(Some [], None) ~step:(fun st (e : Event.t) ->
      match lock_of_args e.args with
      | Some l' when l' = l -> (
        match e.tag, st with
        | tag, (Some readers, None) when String.equal tag acq_r_tag ->
          Ok (Some (e.src :: readers), None)
        | tag, (Some readers, None) when String.equal tag rel_r_tag ->
          (* a thread may hold several read acquisitions; remove one *)
          let rec remove_one = function
            | [] -> None
            | t :: rest ->
              if t = e.src then Some rest
              else Option.map (fun r -> t :: r) (remove_one rest)
          in
          (match remove_one readers with
          | Some readers' -> Ok (Some readers', None)
          | None -> Error (Printf.sprintf "thread %d rel_r without acq_r" e.src))
        | tag, (Some [], None) when String.equal tag acq_w_tag ->
          Ok (None, Some e.src)
        | tag, (None, Some w) when String.equal tag rel_w_tag && w = e.src ->
          Ok (Some [], None)
        | tag, _
          when List.mem tag [ acq_r_tag; rel_r_tag; acq_w_tag; rel_w_tag ] ->
          Error
            (Printf.sprintf "invalid rwlock log: %s by %d in the wrong state"
               tag e.src)
        | _ -> Ok st)
      | Some _ | None -> Ok st)

let replay_rw l : rw_state Replay.t =
 fun log ->
  match replay_readers l log with
  | Error _ as e -> e
  | Ok (Some [], None) -> Ok Free
  | Ok (Some readers, None) -> Ok (Readers (List.length readers))
  | Ok (_, Some w) -> Ok (Writer w)
  | Ok (None, None) -> Ok Free

let event_of t args tag = Event.make ~args t tag

let acq_r_prim =
  ( acq_r_tag,
    Layer.Shared
      (fun t args log ->
        match lock_of_args args with
        | None -> Layer.Stuck "acq_r: expected a lock"
        | Some l -> (
          match replay_rw l log with
          | Error msg -> Layer.Stuck msg
          | Ok (Writer _) -> Layer.Block
          | Ok (Free | Readers _) ->
            Layer.Step
              { events = [ event_of t args acq_r_tag ]; ret = Value.unit; crit = Layer.Keep })) )

let rel_r_prim =
  ( rel_r_tag,
    Layer.Shared
      (fun t args log ->
        match lock_of_args args with
        | None -> Layer.Stuck "rel_r: expected a lock"
        | Some l -> (
          match replay_readers l log with
          | Error msg -> Layer.Stuck msg
          | Ok (Some readers, None) when List.mem t readers ->
            Layer.Step
              { events = [ event_of t args rel_r_tag ]; ret = Value.unit; crit = Layer.Keep }
          | Ok _ ->
            Layer.Stuck (Printf.sprintf "thread %d rel_r without holding" t))) )

let acq_w_prim =
  ( acq_w_tag,
    Layer.Shared
      (fun t args log ->
        match lock_of_args args with
        | None -> Layer.Stuck "acq_w: expected a lock"
        | Some l -> (
          match replay_rw l log with
          | Error msg -> Layer.Stuck msg
          | Ok Free ->
            Layer.Step
              { events = [ event_of t args acq_w_tag ]; ret = Value.unit; crit = Layer.Enter }
          | Ok (Readers _ | Writer _) -> Layer.Block)) )

let rel_w_prim =
  ( rel_w_tag,
    Layer.Shared
      (fun t args log ->
        match lock_of_args args with
        | None -> Layer.Stuck "rel_w: expected a lock"
        | Some l -> (
          match replay_rw l log with
          | Error msg -> Layer.Stuck msg
          | Ok (Writer w) when w = t ->
            Layer.Step
              { events = [ event_of t args rel_w_tag ]; ret = Value.unit; crit = Layer.Exit }
          | Ok _ -> Layer.Stuck (Printf.sprintf "thread %d rel_w without holding" t))) )

let overlay ?bound () =
  let cond = Rg.lock_condition ?bound ~acq_tag:acq_w_tag ~rel_tag:rel_w_tag () in
  Layer.make ~rely:cond ~guar:cond "Lrwlock"
    [ acq_r_prim; rel_r_prim; acq_w_prim; rel_w_prim ]

(* ------------------------------------------------------------------ *)
(* Implementation over the spinlock                                    *)
(* ------------------------------------------------------------------ *)

(* The spinlock-protected word: 0 free, n > 0 readers, -1 writer. *)

let spin_loop_until ~publish_cond ~publish =
  (* ok = 0; while (!ok) { v = acq(l); if (cond v) { rel(l, publish v); ok = 1 }
     else { rel(l, v) } } *)
  C.seq
    [
      C.set "ok" (C.i 0);
      C.while_
        C.(v "ok" = i 0)
        (C.seq
           [
             C.calla "w" Lock_intf.acq_tag [ C.v "l" ];
             C.if_ publish_cond
               (C.seq
                  [
                    C.call_ Lock_intf.rel_tag [ C.v "l"; publish ];
                    C.set "ok" (C.i 1);
                  ])
               (C.call_ Lock_intf.rel_tag [ C.v "l"; C.v "w" ]);
           ]);
      C.return_unit;
    ]

let acq_r_fn =
  {
    C.name = acq_r_tag;
    params = [ "l" ];
    locals = [ "w"; "ok" ];
    body = spin_loop_until ~publish_cond:C.(v "w" >= i 0) ~publish:C.(v "w" + i 1);
  }

let rel_r_fn =
  {
    C.name = rel_r_tag;
    params = [ "l" ];
    locals = [ "w" ];
    body =
      C.seq
        [
          C.calla "w" Lock_intf.acq_tag [ C.v "l" ];
          C.call_ Lock_intf.rel_tag [ C.v "l"; C.(v "w" - i 1) ];
          C.return_unit;
        ];
  }

let acq_w_fn =
  {
    C.name = acq_w_tag;
    params = [ "l" ];
    locals = [ "w"; "ok" ];
    body = spin_loop_until ~publish_cond:C.(v "w" = i 0) ~publish:(C.i (-1));
  }

let rel_w_fn =
  {
    C.name = rel_w_tag;
    params = [ "l" ];
    locals = [ "w" ];
    body =
      C.seq
        [
          C.calla "w" Lock_intf.acq_tag [ C.v "l" ];
          C.call_ Lock_intf.rel_tag [ C.v "l"; C.i 0 ];
          C.return_unit;
        ];
  }

let fns = [ acq_r_fn; rel_r_fn; acq_w_fn; rel_w_fn ]

let c_module () = Ccal_clight.Csem.module_of_fns fns
let asm_module () = Ccal_compcertx.Compile.compile_module fns

(* ------------------------------------------------------------------ *)
(* Simulation relation                                                 *)
(* ------------------------------------------------------------------ *)

let r_rw =
  Sim_rel.of_log_fn "R_rw" (fun log ->
      let step (sections, out) (e : Event.t) =
        if String.equal e.tag Lock_intf.acq_tag then
          match e.args, e.ret with
          | [ Value.Vint l ], Value.Vint v -> (e.src, (l, v)) :: sections, out
          | _ -> sections, e :: out
        else if String.equal e.tag Lock_intf.rel_tag then
          match e.args, List.assoc_opt e.src sections with
          | [ Value.Vint l; Value.Vint v' ], Some (l', v) when l = l' ->
            let sections = List.remove_assoc e.src sections in
            let emit tag = Event.make ~args:[ Value.int l ] e.src tag :: out in
            if v' = v then sections, out (* failed attempt *)
            else if v >= 0 && v' = v + 1 then sections, emit acq_r_tag
            else if v > 0 && v' = v - 1 then sections, emit rel_r_tag
            else if v = 0 && v' = -1 then sections, emit acq_w_tag
            else if v = -1 && v' = 0 then sections, emit rel_w_tag
            else sections, e :: out
          | _ -> sections, e :: out
        else sections, e :: out
      in
      let _, out = List.fold_left step ([], []) (Log.chronological log) in
      Log.append_all (List.rev out) Log.empty)

(* ------------------------------------------------------------------ *)
(* Certification                                                       *)
(* ------------------------------------------------------------------ *)

let prim_tests ?(locks = [ 4 ]) () : Calculus.prim_tests =
  List.concat_map
    (fun l ->
      let il = Value.int l in
      let ar = acq_r_tag, [ il ] and rr = rel_r_tag, [ il ] in
      let aw = acq_w_tag, [ il ] and rw = rel_w_tag, [ il ] in
      [
        acq_r_tag,
          [ Calculus.case [ il ];
            Calculus.case ~pre:[ ar ] [ il ];  (* second reader *)
            Calculus.case ~pre:[ aw; rw ] [ il ] ];
        rel_r_tag,
          [ Calculus.case ~pre:[ ar ] [ il ];
            Calculus.case ~pre:[ ar; ar; rr ] [ il ] ];
        acq_w_tag,
          [ Calculus.case [ il ];
            Calculus.case ~pre:[ ar; rr ] [ il ] ];
        rel_w_tag, [ Calculus.case ~pre:[ aw ] [ il ] ];
      ])
    locks

let rival_prog l =
  Prog.seq_all
    [
      Prog.call acq_r_tag [ Value.int l ];
      Prog.call rel_r_tag [ Value.int l ];
      Prog.call acq_w_tag [ Value.int l ];
      Prog.call rel_w_tag [ Value.int l ];
    ]

let env_suite ?(locks = [ 4 ]) ?(rivals = [ 9 ]) ?(rounds = [ 1; 2 ]) () :
    Calculus.env_suite =
 fun i ->
  let l = match locks with l :: _ -> l | [] -> 4 in
  let layer = underlay () in
  let impl = c_module () in
  let rivals = List.filter (fun j -> j <> i) rivals in
  let rival j =
    j, Machine.strategy_of_prog layer j (Prog.Module.link impl (rival_prog l))
  in
  Env_context.empty
  :: List.concat_map
       (fun per_query ->
         List.map
           (fun j ->
             Env_context.of_strategies
               (Printf.sprintf "rival%d(r%d)" j per_query)
               [ rival j ] ~rounds:per_query)
           rivals)
       rounds

let certify ?max_moves ?(focus = [ 1; 2 ]) ?(use_asm = false) () =
  let impl = if use_asm then asm_module () else c_module () in
  Calculus.fun_rule ?max_moves ~underlay:(underlay ()) ~overlay:(overlay ())
    ~impl ~rel:r_rw ~focus ~prim_tests:(prim_tests ())
    ~envs:(env_suite ()) ()

let no_reader_writer_overlap log =
  let events = Log.chronological log in
  let locks =
    List.sort_uniq Stdlib.compare
      (List.filter_map
         (fun (e : Event.t) ->
           if List.mem e.tag [ acq_r_tag; rel_r_tag; acq_w_tag; rel_w_tag ] then
             lock_of_args e.args
           else None)
         events)
  in
  List.for_all
    (fun l ->
      let rec go prefix = function
        | [] -> true
        | e :: rest ->
          let prefix = Log.append e prefix in
          Replay.well_formed (replay_rw l) prefix && go prefix rest
      in
      go Log.empty events)
    locks
