(** The atomic spinlock interface [Llock] (Sec. 2, Sec. 4.1).

    At this level a lock is a pair of atomic primitives:

    {ul
    {- [acq(b)] — a single event; {e blocks} while the lock is held (there
       is no spinning to observe any more), enters the critical state, and
       returns the lock-protected value (the paper's pull of the protected
       location happens inside the lock acquisition, Fig. 10);}
    {- [rel(b, v)] — a single event publishing [v] as the new protected
       value and leaving the critical state.}}

    Both the ticket lock and the MCS lock implement this same interface,
    which is what lets lock implementations be interchanged freely without
    affecting any proof in higher modules (Sec. 6).

    The interface carries the lock rely/guarantee conditions: environment
    participants keep their lock events well-bracketed and release held
    locks within a bounded number of steps (the fairness/definite-release
    conditions of Sec. 2 used for starvation-freedom). *)

val acq_tag : string
val rel_tag : string

type lock_state = {
  holder : Ccal_core.Event.tid option;
  value : Ccal_core.Value.t;  (** current protected value (initially 0) *)
}

val replay_lock : int -> lock_state Ccal_core.Replay.t
(** Lock state of lock [b], replayed from [acq]/[rel] events; stuck on
    ill-formed logs (acquisition of a held lock, release by a
    non-holder). *)

val acq_prim : string * Ccal_core.Layer.prim
val rel_prim : string * Ccal_core.Layer.prim

val condition : ?bound:int -> unit -> Ccal_core.Rely_guarantee.t
(** Well-bracketing plus bounded release, over the atomic tags. *)

val layer : ?bound:int -> ?extra:(string * Ccal_core.Layer.prim) list -> string -> Ccal_core.Layer.t
(** An atomic lock layer with the given name, optionally extended with
    pass-through primitives (the paper's [f], [g] of Fig. 3). *)

val mutual_exclusion : Ccal_core.Log.t -> bool
(** No two threads hold the same lock simultaneously at any prefix — the
    safety property of Sec. 4.1, checked over a whole log. *)

val handoffs : int -> Ccal_core.Log.t -> Ccal_core.Event.tid list
(** The sequence of threads that acquired lock [b], in order (used to
    compare lock-acquisition order across layers). *)
