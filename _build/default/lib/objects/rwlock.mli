(** A reader-writer lock — an additional synchronization library in the
    spirit of Fig. 1's "Sync. Libs".

    The implementation keeps the reader count in the word protected by a
    spinlock ([0] = free, [n > 0] = [n] readers, [-1] = a writer): a
    reader increments it under the spinlock, a writer spins (acquiring and
    releasing the spinlock) until the count is zero and then publishes
    [-1].  The atomic overlay has four events — [acq_r]/[rel_r] (blocking
    while a writer holds) and [acq_w]/[rel_w] (blocking while anyone
    holds) — and the simulation relation merges each {e successful}
    spinlock section into its atomic event, erasing failed attempts, the
    same linearization-by-publication pattern as the shared queue.

    This object demonstrates that new synchronization libraries verify
    against the existing lock layer without touching it (Sec. 6's
    compositionality claim). *)

open Ccal_core

val acq_r_tag : string
val rel_r_tag : string
val acq_w_tag : string
val rel_w_tag : string

type rw_state =
  | Free
  | Readers of int
  | Writer of Event.tid

val underlay : ?bound:int -> unit -> Layer.t
(** The atomic spinlock interface (shared with the other objects). *)

val overlay : ?bound:int -> unit -> Layer.t

val replay_rw : int -> rw_state Replay.t
(** State of rwlock [l] from overlay events. *)

val acq_r_fn : Ccal_clight.Csyntax.fn
val rel_r_fn : Ccal_clight.Csyntax.fn
val acq_w_fn : Ccal_clight.Csyntax.fn
val rel_w_fn : Ccal_clight.Csyntax.fn

val c_module : unit -> Prog.Module.t
val asm_module : unit -> Prog.Module.t

val r_rw : Sim_rel.t

val prim_tests : ?locks:int list -> unit -> Calculus.prim_tests

val env_suite :
  ?locks:int list -> ?rivals:Event.tid list -> ?rounds:int list -> unit -> Calculus.env_suite

val certify :
  ?max_moves:int -> ?focus:Event.tid list -> ?use_asm:bool -> unit ->
  (Calculus.cert, Calculus.error) result

val no_reader_writer_overlap : Log.t -> bool
(** Safety over an overlay log: at no prefix do a writer and anyone else
    hold the lock simultaneously. *)
