module C = Ccal_clight.Csyntax
module T = Thread_sched

let cv_wait_fn =
  {
    C.name = "cv_wait";
    params = [ "cv"; "lk"; "pv" ];
    locals = [];
    body =
      C.seq
        [
          C.call_ T.sleep_tag [ C.v "cv"; C.v "lk"; C.v "pv" ];
          C.call_ T.wait_tag [ C.v "cv" ];
          C.return_unit;
        ];
  }

let cv_signal_fn =
  {
    C.name = "cv_signal";
    params = [ "cv" ];
    locals = [ "w" ];
    body =
      C.seq
        [
          C.calla "w" T.wakeup_tag [ C.v "cv" ];
          C.return (C.v "w");
        ];
  }

let cv_broadcast_fn =
  {
    C.name = "cv_broadcast";
    params = [ "cv" ];
    locals = [ "w"; "n" ];
    body =
      C.seq
        [
          C.set "n" (C.i 0);
          C.calla "w" T.wakeup_tag [ C.v "cv" ];
          C.while_
            C.(v "w" <> i 0)
            (C.seq
               [
                 C.set "n" C.(v "n" + i 1);
                 C.calla "w" T.wakeup_tag [ C.v "cv" ];
               ]);
          C.return (C.v "n");
        ];
  }

let fns = [ cv_wait_fn; cv_signal_fn; cv_broadcast_fn ]

let c_module () = Ccal_clight.Csem.module_of_fns fns
let asm_module () = Ccal_compcertx.Compile.compile_module fns
