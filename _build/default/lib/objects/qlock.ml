open Ccal_core
module C = Ccal_clight.Csyntax
module T = Thread_sched

let acq_q_tag = "acq_q"
let rel_q_tag = "rel_q"

let underlay ~placement () =
  T.mt_layer placement (Lock_intf.layer "Llock")

(* ------------------------------------------------------------------ *)
(* Atomic overlay: the thread-local world of Sec. 5.3                  *)
(* ------------------------------------------------------------------ *)

let lock_of_args = function
  | (Value.Vint l : Value.t) :: _ -> Some l
  | _ -> None

let replay_qlock l : Event.tid option Replay.t =
  Replay.fold ~init:None ~step:(fun holder (e : Event.t) ->
      match lock_of_args e.args with
      | Some l' when l' = l ->
        if String.equal e.tag acq_q_tag then
          match holder with
          | None -> Ok (Some e.src)
          | Some h ->
            Error
              (Printf.sprintf
                 "invalid log: thread %d acquires qlock %d held by %d" e.src l h)
        else if String.equal e.tag rel_q_tag then
          match holder with
          | Some h when h = e.src -> Ok None
          | _ ->
            Error
              (Printf.sprintf "invalid log: thread %d releases qlock %d" e.src l)
        else Ok holder
      | Some _ | None -> Ok holder)

let acq_q_prim =
  ( acq_q_tag,
    Layer.Shared
      (fun t args log ->
        match lock_of_args args with
        | None -> Layer.Stuck "acq_q: expected a lock"
        | Some l -> (
          match replay_qlock l log with
          | Error msg -> Layer.Stuck msg
          | Ok (Some _) -> Layer.Block
          | Ok None ->
            Layer.Step
              {
                events = [ Event.make ~args t acq_q_tag ];
                ret = Value.unit;
                crit = Layer.Enter;
              })) )

let rel_q_prim =
  ( rel_q_tag,
    Layer.Shared
      (fun t args log ->
        match lock_of_args args with
        | None -> Layer.Stuck "rel_q: expected a lock"
        | Some l -> (
          match replay_qlock l log with
          | Error msg -> Layer.Stuck msg
          | Ok (Some h) when h = t ->
            Layer.Step
              {
                events = [ Event.make ~args t rel_q_tag ];
                ret = Value.unit;
                crit = Layer.Exit;
              }
          | Ok _ ->
            Layer.Stuck
              (Printf.sprintf "thread %d releases qlock %d it does not hold" t l))) )

let noop_event_prim tag =
  ( tag,
    Layer.Shared
      (fun t _args _log ->
        Layer.Step
          { events = [ Event.make t tag ]; ret = Value.unit; crit = Layer.Keep }) )

let overlay ?bound () =
  let cond =
    Rg.lock_condition ?bound ~acq_tag:acq_q_tag ~rel_tag:rel_q_tag ()
  in
  Layer.make ~rely:cond ~guar:cond "Lqlock"
    [
      acq_q_prim;
      rel_q_prim;
      noop_event_prim T.yield_tag;
      noop_event_prim T.exit_tag;
    ]

(* ------------------------------------------------------------------ *)
(* Implementation (Fig. 11)                                            *)
(* ------------------------------------------------------------------ *)

(*  void acq_q(int l) {
      int busy = acq(l);
      if (busy != 0) { sleep(l, l, busy); wait(l); }
      else { rel(l, get_tid()); }
    } *)
let acq_q_fn =
  {
    C.name = acq_q_tag;
    params = [ "l" ];
    locals = [ "busy"; "me" ];
    body =
      C.seq
        [
          C.calla "busy" Lock_intf.acq_tag [ C.v "l" ];
          C.if_
            C.(v "busy" <> i 0)
            (C.seq
               [
                 C.call_ T.sleep_tag [ C.v "l"; C.v "l"; C.v "busy" ];
                 C.call_ T.wait_tag [ C.v "l" ];
               ])
            (C.seq
               [
                 C.calla "me" "get_tid" [];
                 C.call_ Lock_intf.rel_tag [ C.v "l"; C.v "me" ];
               ]);
          C.return_unit;
        ];
  }

(*  void rel_q(int l) {
      acq(l);
      int w = wakeup(l);
      rel(l, w);             // ql_busy[l] = wakeup(l)
    } *)
let rel_q_fn =
  {
    C.name = rel_q_tag;
    params = [ "l" ];
    locals = [ "busy"; "w" ];
    body =
      C.seq
        [
          C.calla "busy" Lock_intf.acq_tag [ C.v "l" ];
          C.calla "w" T.wakeup_tag [ C.v "l" ];
          C.call_ Lock_intf.rel_tag [ C.v "l"; C.v "w" ];
          C.return_unit;
        ];
  }

let fns = [ acq_q_fn; rel_q_fn ]

let c_module () = Ccal_clight.Csem.module_of_fns fns
let asm_module () = Ccal_compcertx.Compile.compile_module fns

(* ------------------------------------------------------------------ *)
(* The simulation relation                                             *)
(* ------------------------------------------------------------------ *)

type section = {
  lock : int;
  woken : Event.tid option;  (** a wakeup happened; the thread it woke *)
}

(* The linearization points: a fast-path acquire linearizes at its
   spinlock release (publishing the caller's id); a release linearizes at
   its spinlock release, and when it woke a sleeper the hand-off makes the
   sleeper's acquire linearize immediately after (the [ql_busy[l] =
   wakeup(l)] assignment of Fig. 11 transfers ownership directly) — the
   woken thread's later [wait] is scheduling noise at this level. *)
let r_qlock =
  Sim_rel.of_log_fn "R_qlock" (fun log ->
      let step (sections, out) (e : Event.t) =
        let in_section = List.assoc_opt e.src sections in
        if String.equal e.tag Lock_intf.acq_tag then
          match lock_of_args e.args with
          | Some l -> (e.src, { lock = l; woken = None }) :: sections, out
          | None -> sections, e :: out
        else if String.equal e.tag T.wakeup_tag then
          match in_section, e.ret with
          | Some s, Value.Vint w ->
            (e.src, { s with woken = Some w }) :: List.remove_assoc e.src sections,
            out
          | _ -> sections, out
        else if String.equal e.tag Lock_intf.rel_tag then
          match e.args, in_section with
          | [ Value.Vint l; v ], Some s when s.lock = l ->
            let sections = List.remove_assoc e.src sections in
            (match s.woken with
            | Some w ->
              let out =
                Event.make ~args:[ Value.int l ] e.src rel_q_tag :: out
              in
              let out =
                if w > 0 then
                  Event.make ~args:[ Value.int l ] w acq_q_tag :: out
                else out
              in
              sections, out
            | None ->
              if Value.equal v (Value.int e.src) then
                (* fast path: published own id *)
                sections, Event.make ~args:[ Value.int l ] e.src acq_q_tag :: out
              else
                (* the release half of a sleep: no overlay event *)
                sections, out)
          | _ -> sections, e :: out
        else if
          String.equal e.tag T.wait_tag || String.equal e.tag T.sleep_tag
        then sections, out
        else sections, e :: out
      in
      let _, out = List.fold_left step ([], []) (Log.chronological log) in
      Log.append_all (List.rev out) Log.empty)

(* ------------------------------------------------------------------ *)
(* Certification                                                       *)
(* ------------------------------------------------------------------ *)

let prim_tests ?(locks = [ 3 ]) () : Calculus.prim_tests =
  List.concat_map
    (fun l ->
      let il = Value.int l in
      [
        acq_q_tag,
          [
            Calculus.case [ il ];
            Calculus.case ~pre:[ acq_q_tag, [ il ]; rel_q_tag, [ il ] ] [ il ];
          ];
        rel_q_tag, [ Calculus.case ~pre:[ acq_q_tag, [ il ] ] [ il ] ];
      ])
    locks

let rival_prog l =
  Prog.seq
    (Prog.call acq_q_tag [ Value.int l ])
    (Prog.seq
       (Prog.call rel_q_tag [ Value.int l ])
       (Prog.call T.exit_tag []))

(* Unfolded lazily through the continuation, so construction terminates. *)
let yield_forever_prog =
  let rec loop () = Prog.bind (Prog.call T.yield_tag []) (fun _ -> loop ()) in
  loop ()

let env_suite ~placement ?(locks = [ 3 ]) ?(rivals = [ 9; 8 ]) ?(rounds = [ 1; 2 ])
    () : Calculus.env_suite =
 fun i ->
  let l = match locks with l :: _ -> l | [] -> 3 in
  let layer = underlay ~placement () in
  let impl = c_module () in
  let rivals = List.filter (fun j -> j <> i) rivals in
  let rival j =
    j, Machine.strategy_of_prog layer j (Prog.Module.link impl (rival_prog l))
  in
  (* Threads sharing the focused thread's CPU must keep yielding, or the
     focused thread would never be rescheduled after sleeping. *)
  let my_cpu = List.assoc_opt i placement in
  let siblings =
    List.filter_map
      (fun (t, c) ->
        if t <> i && (not (List.mem t rivals)) && Some c = my_cpu then
          Some (t, Machine.strategy_of_prog layer t yield_forever_prog)
        else None)
      placement
  in
  (* With siblings on the focused CPU the silent context is not valid —
     the focused thread may start descheduled and needs their yields. *)
  (match siblings with
  | [] -> Env_context.empty
  | _ -> Env_context.of_strategies "siblings-only" siblings ~rounds:1)
  :: List.concat_map
       (fun per_query ->
         match rivals with
         | [] -> []
         | [ j ] ->
           [
             Env_context.of_strategies
               (Printf.sprintf "one-rival(r%d)" per_query)
               (rival j :: siblings) ~rounds:per_query;
           ]
         | j :: k :: _ ->
           [
             Env_context.of_strategies
               (Printf.sprintf "one-rival(r%d)" per_query)
               (rival j :: siblings) ~rounds:per_query;
             Env_context.of_strategies
               (Printf.sprintf "two-rivals(r%d)" per_query)
               (rival j :: rival k :: siblings)
               ~rounds:per_query;
           ])
       rounds

let default_placement focus rivals =
  List.map (fun t -> t, t) (List.sort_uniq Stdlib.compare (focus @ rivals))

let certify ?max_moves ?placement ?(focus = [ 1; 2 ]) ?(use_asm = false) () =
  let rivals = [ 9; 8 ] in
  let placement =
    match placement with
    | Some p -> p
    | None -> default_placement focus rivals
  in
  let impl = if use_asm then asm_module () else c_module () in
  Calculus.fun_rule ?max_moves ~underlay:(underlay ~placement ())
    ~overlay:(overlay ()) ~impl ~rel:r_qlock ~focus
    ~prim_tests:(prim_tests ())
    ~envs:(env_suite ~placement ()) ()
