(** The local (sequential) queue: a doubly-linked list refined to a logical
    list.

    The paper's local queue library (Sec. 6, Table 2) is a sequential
    object: "the queue is represented as a logical list in the
    specification, while it is implemented as a doubly linked list".  Here
    the implementation works over a private heap layer ([lload]/[lstore]/
    [lalloc] on the thread's private abstract state — silent primitives,
    Sec. 3.1), and the overlay exposes abstract list operations whose state
    is the field [tdqp:q] of the abstract state (the paper's [a.tdqp],
    Sec. 4.2).  Since both layers are silent, the simulation degenerates to
    equal return values on equal call sequences — which is exactly how
    sequential layers are built in Gu et al. [15]. *)

open Ccal_core

val heap_layer : unit -> Layer.t
(** [Lheap]: private heap with [lload(a)], [lstore(a,v)] and the bump
    allocator [lalloc(n)] (addresses from 1000; 0 is the null pointer). *)

val abs_layer : unit -> Layer.t
(** [Labsq]: abstract queues as logical lists — [enQ(q,v)], [deQ(q)]
    (returns [-1] on empty), [qlen(q)]. *)

val enq_fn : Ccal_clight.Csyntax.fn
val deq_fn : Ccal_clight.Csyntax.fn
val qlen_fn : Ccal_clight.Csyntax.fn

val c_module : unit -> Prog.Module.t
val asm_module : unit -> Prog.Module.t

val prim_tests : ?queues:int list -> unit -> Calculus.prim_tests
(** Call sequences exercising empty/singleton/multi-element queues. *)

val certify :
  ?max_moves:int -> ?focus:Event.tid list -> ?use_asm:bool -> unit ->
  (Calculus.cert, Calculus.error) result
(** [Lheap[A] ⊢_id M_q : Labsq[A]]. *)
