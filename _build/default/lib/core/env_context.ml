exception Invalid_env of string

type t = {
  name : string;
  query : focus:Event.tid list -> Log.t -> Event.t list;
}

let empty = { name = "empty"; query = (fun ~focus:_ _ -> []) }

let make name query = { name; query }

let of_script name chunks =
  let remaining = ref chunks in
  {
    name;
    query =
      (fun ~focus:_ _ ->
        match !remaining with
        | [] -> []
        | chunk :: rest ->
          remaining := rest;
          chunk);
  }

let of_strategies name parts ~rounds =
  (* Mutable resumption state per participant: each query advances every
     live environment participant by at most [rounds] moves, interleaved
     round-robin, and returns everything they emitted. *)
  let states = ref (List.map (fun (i, s) -> i, Some s) parts) in
  let query ~focus:_ log =
    let emitted = ref [] in
    let log = ref log in
    for _ = 1 to rounds do
      states :=
        List.map
          (fun (i, st) ->
            match st with
            | None -> i, None
            | Some s -> (
              match s.Strategy.step !log with
              | Strategy.Move (evs, out) ->
                List.iter
                  (fun e ->
                    emitted := e :: !emitted;
                    log := Log.append e !log)
                  evs;
                let st' =
                  match out with
                  | Strategy.Done _ -> None
                  | Strategy.Next s' -> Some s'
                in
                i, st'
              | Strategy.Blocked -> i, Some s
              | Strategy.Refuse _ -> i, None))
          !states
    done;
    List.rev !emitted
  in
  { name; query }

let valid_events ~focus evs =
  List.for_all (fun (e : Event.t) -> not (List.mem e.src focus)) evs

let checked ~rely e =
  {
    name = e.name ^ "|checked";
    query =
      (fun ~focus log ->
        let evs = e.query ~focus log in
        if not (valid_events ~focus evs) then
          raise
            (Invalid_env
               (Printf.sprintf "context %s produced an event from the focused set"
                  e.name));
        let log' = Log.append_all evs log in
        List.iter
          (fun (ev : Event.t) ->
            if not (rely.Rely_guarantee.holds ev.src log') then
              raise
                (Invalid_env
                   (Printf.sprintf "context %s violates rely %s for thread %d"
                      e.name rely.Rely_guarantee.name ev.src)))
          evs;
        evs);
  }
