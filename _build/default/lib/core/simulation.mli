(** Strategy simulation — the executable analogue of Definition 2.1.

    [φ ≤_R φ'] holds iff for any two related environmental event sequences
    and related initial logs, every log produced by [φ] has an [R]-related
    log producible by [φ'].  Our relations are event translations
    ({!Sim_rel}), for which the related overlay log is determined: it is
    the translation of the underlay log.  The check therefore

    {ol
    {- drives the underlay strategy [φ] to completion under an environment
       context, obtaining a log [l];}
    {- translates [l] by [R];}
    {- replays the translated log against the overlay strategy [φ'],
       verifying that [φ'] produces exactly the focused thread's translated
       events at each of its moves, accepts the translated environment
       events in between, and terminates with a related return value.}}

    Passing the check for every environment context in a suite is the
    tested counterpart of the Coq proof obligation discharged by the paper's
    [Fun] rule (Fig. 9); see DESIGN.md (Substitutions). *)

type failure = {
  env_name : string;
  reason : string;
  impl_log : Log.t;  (** underlay log at the point of failure *)
  spec_log : Log.t;  (** overlay log reconstructed so far *)
}

type report = {
  envs_checked : int;
  impl_moves : int;  (** total underlay moves across all runs *)
}

val pp_failure : Format.formatter -> failure -> unit

type driven = {
  log : Log.t;
  ret : Value.t option;  (** [None] if the strategy did not finish *)
  moves : int;
  blocked : bool;  (** ended blocked with the environment exhausted *)
  refused : string option;
}

val drive :
  ?max_moves:int ->
  ?block_retries:int ->
  Event.tid ->
  Strategy.t ->
  env:Env_context.t ->
  init_log:Log.t ->
  driven
(** Drive a strategy to completion, querying the environment before every
    move (the strategy itself decides nothing about the environment; this
    realizes the alternation of environment and player moves). *)

val replay_against :
  Event.tid ->
  Strategy.t ->
  init_log:Log.t ->
  Log.t ->
  (Value.t option, string * Log.t) result
(** [replay_against i spec ~init_log l] checks that strategy [spec] (for
    player [i]) can produce exactly the player-[i] events of [l], with the
    other events injected as environment moves; returns the spec's final
    value, or the reason and partial overlay log on mismatch. *)

val check_strategies :
  ?max_moves:int ->
  ?ret_rel:(Value.t -> Value.t -> bool) ->
  Sim_rel.t ->
  tid:Event.tid ->
  impl:(unit -> Strategy.t) ->
  spec:(unit -> Strategy.t) ->
  envs:Env_context.t list ->
  (report, failure) result
(** Check [impl ≤_R spec] over the environment suite.  Strategies are
    supplied as thunks because driving consumes them (and environment
    scripts are single-use).  [ret_rel] relates final values (default:
    equality). *)

val check_progs :
  ?max_moves:int ->
  ?ret_rel:(Value.t -> Value.t -> bool) ->
  Sim_rel.t ->
  tid:Event.tid ->
  impl_layer:Layer.t ->
  impl:Prog.t ->
  spec_layer:Layer.t ->
  spec:Prog.t ->
  envs:Env_context.t list ->
  (report, failure) result
(** [check_progs] is {!check_strategies} on [⟨impl⟩_{L_u[i]}] and
    [⟨spec⟩_{L_o[i]}] — the judgment the paper writes
    [L_u[i] ⊢_R impl : spec]. *)
