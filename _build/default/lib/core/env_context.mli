(** Environment contexts.

    When a layer machine focuses on a thread set [A], the behaviour of all
    other participants (remaining threads plus the scheduler) is an
    {e environment context} [E] (Sec. 2).  At each query point the machine
    asks [E] for the events appended by the environment since the previous
    query; the paper writes [E[A, l]] for this extension of [l] (Sec. 3.2).

    An environment context is {e valid} for a layer interface when every
    event it returns comes from outside the focused set and the extended
    log satisfies the layer's rely condition. *)

type t = {
  name : string;
  query : focus:Event.tid list -> Log.t -> Event.t list;
      (** [query ~focus l] returns the (chronologically ordered) events
          appended by the environment before control returns to [focus]. *)
}

val empty : t
(** The silent environment (no other participants): always returns []. *)

val make : string -> (focus:Event.tid list -> Log.t -> Event.t list) -> t

val of_script : string -> Event.t list list -> t
(** [of_script name chunks] answers the [n]-th query with the [n]-th chunk
    (and [] afterwards).  Queries are counted per context value, so each
    script is single-use per run; build a fresh one per execution. *)

val of_strategies : string -> (Event.tid * Strategy.t) list -> rounds:int -> t
(** [of_strategies name parts ~rounds] is the union of the strategies of
    the environment participants, driven round-robin: each query lets every
    unfinished participant make at most [rounds] moves.  This realizes the
    paper's "union of the strategies by the scheduler plus those
    participants not in A". *)

val valid_events : focus:Event.tid list -> Event.t list -> bool
(** All events originate outside the focused set. *)

val checked :
  rely:Rely_guarantee.t -> t -> t
(** [checked ~rely e] wraps [e] so that any answer extending the log to one
    violating [rely] (for the event's source) raises [Invalid_env]; this is
    how experiments restrict attention to valid environment contexts. *)

exception Invalid_env of string
