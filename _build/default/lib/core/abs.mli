(** Thread-private abstract state.

    The abstract state [a] of a layer machine (Fig. 7) summarizes in-memory
    data structures from lower layers; it is not a ghost state because
    private primitives read and update it.  We represent it as a finite
    record of named {!Value.t} fields (the paper's Coq records such as
    [a.tdqp], [a.tcbp], [a.status]). *)

type t

val empty : t

val get : string -> t -> Value.t
(** [get k a] reads field [k]; unset fields read as [Value.unit]. *)

val find : string -> t -> Value.t option

val set : string -> Value.t -> t -> t
(** [set k v a] is the paper's record update [a{k : v}]. *)

val update : string -> (Value.t -> Value.t) -> t -> t

val fields : t -> (string * Value.t) list
(** Bindings, sorted by field name. *)

val of_fields : (string * Value.t) list -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
