type t =
  | Vunit
  | Vint of int
  | Vbool of bool
  | Vpair of t * t
  | Vlist of t list

exception Type_error of string

let unit = Vunit
let int n = Vint n
let bool b = Vbool b
let pair a b = Vpair (a, b)
let list vs = Vlist vs

let rec equal a b =
  match a, b with
  | Vunit, Vunit -> true
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vpair (x1, y1), Vpair (x2, y2) -> equal x1 x2 && equal y1 y2
  | Vlist xs, Vlist ys ->
    (try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | (Vunit | Vint _ | Vbool _ | Vpair _ | Vlist _), _ -> false

let rec compare a b =
  match a, b with
  | Vunit, Vunit -> 0
  | Vunit, _ -> -1
  | _, Vunit -> 1
  | Vint x, Vint y -> Stdlib.compare x y
  | Vint _, _ -> -1
  | _, Vint _ -> 1
  | Vbool x, Vbool y -> Stdlib.compare x y
  | Vbool _, _ -> -1
  | _, Vbool _ -> 1
  | Vpair (x1, y1), Vpair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | Vpair _, _ -> -1
  | _, Vpair _ -> 1
  | Vlist xs, Vlist ys -> List.compare compare xs ys

let rec pp fmt = function
  | Vunit -> Format.pp_print_string fmt "()"
  | Vint n -> Format.pp_print_int fmt n
  | Vbool b -> Format.pp_print_bool fmt b
  | Vpair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | Vlist vs ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ") pp)
      vs

let to_string v = Format.asprintf "%a" pp v

let to_int = function
  | Vint n -> n
  | v -> raise (Type_error ("expected int, got " ^ to_string v))

let to_bool = function
  | Vbool b -> b
  | Vint n -> n <> 0
  | _ -> raise (Type_error "expected bool")

let to_pair = function
  | Vpair (a, b) -> a, b
  | _ -> raise (Type_error "expected pair")

let to_list = function
  | Vlist vs -> vs
  | _ -> raise (Type_error "expected list")
