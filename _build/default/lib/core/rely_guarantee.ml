type t = {
  name : string;
  holds : Event.tid -> Log.t -> bool;
}

let always = { name = "true"; holds = (fun _ _ -> true) }
let never = { name = "false"; holds = (fun _ _ -> false) }

let make name holds = { name; holds }

let conj a b =
  if a == always then b
  else if b == always then a
  else
    {
      name = Printf.sprintf "(%s /\\ %s)" a.name b.name;
      holds = (fun i l -> a.holds i l && b.holds i l);
    }

let disj a b =
  if a == never then b
  else if b == never then a
  else
    {
      name = Printf.sprintf "(%s \\/ %s)" a.name b.name;
      holds = (fun i l -> a.holds i l || b.holds i l);
    }

let same a b = String.equal a.name b.name

let holds_for_all inv tids l = List.for_all (fun i -> inv.holds i l) tids

let implies_on g r ~tids ~logs =
  List.for_all
    (fun l -> List.for_all (fun i -> (not (g.holds i l)) || r.holds i l) tids)
    logs
