(** Simulation relations on logs.

    A certified layer relates the logs of its underlay and overlay machines
    by a simulation relation [R] (Sec. 2).  Every relation in the paper is
    functional on logs: the overlay log is computed from the underlay log,
    either event-by-event — e.g. [R1] maps [i.hold] to [i.acq], [i.inc_n]
    to [i.rel] and the remaining lock-related events to empty sequences —
    or by a stateful scan that merges several underlay events into one
    overlay event, e.g. the [Rlock] of Sec. 4.2 merging [c.acq … c.rel]
    into a single [c.deQ].  Two logs are related iff translating the
    underlay log yields the overlay log.

    Relations compose ([R ∘ S], used by the [Vcomp] rule) and the identity
    relation is the unit. *)

type t = {
  name : string;
  apply : Log.t -> Log.t;  (** translate a whole underlay log *)
}

val id : t
(** The identity relation (fun-lift steps use it, Sec. 2). *)

val of_events : string -> (Event.t -> Event.t list) -> t
(** Pointwise relation: each underlay event maps to zero or more overlay
    events independently. *)

val of_log_fn : string -> (Log.t -> Log.t) -> t
(** General (stateful-scan) relation. *)

val of_table :
  string ->
  ?default:[ `Keep | `Drop ] ->
  (string * [ `To of string | `Drop ]) list ->
  t
(** [of_table name rules]: map events by tag — [(tag, `To tag')] renames
    the event (keeping source, arguments and return), [(tag, `Drop)]
    erases it; unlisted tags follow [default] (default [`Keep]). *)

val compose : t -> t -> t
(** [compose r s] first translates by [r] (lower), then by [s]: the
    relation the paper writes [S ∘ R] in [Vcomp]. *)

val apply : t -> Log.t -> Log.t

val related : t -> Log.t -> Log.t -> bool
(** [related r l l']: does translating [l] yield [l']? *)
