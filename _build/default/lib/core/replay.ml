type 'a t = Log.t -> ('a, string) result

let fold ~init ~step : 'a t =
 fun l ->
  let rec go acc = function
    | [] -> Ok acc
    | e :: rest -> (
      match step acc e with
      | Ok acc' -> go acc' rest
      | Error _ as err -> err)
  in
  go init (Log.chronological l)

let pure x : 'a t = fun _ -> Ok x

let map f r : 'b t = fun l -> Result.map f (r l)

let both ra rb : ('a * 'b) t =
 fun l ->
  match ra l with
  | Error _ as e -> e
  | Ok a -> (
    match rb l with
    | Error _ as e -> e
    | Ok b -> Ok (a, b))

let run_exn r l =
  match r l with
  | Ok x -> x
  | Error msg -> failwith ("Replay.run_exn: stuck: " ^ msg)

let well_formed r l = match r l with Ok _ -> true | Error _ -> false
