(** Strategies.

    Each participant of the concurrency game contributes its play by
    appending events to the global log; its strategy is a deterministic
    partial function from the current log to its next move (Sec. 2).  We
    represent strategies as resumptions: stepping on the current log either
    produces a move (events to append, plus the rest of the strategy),
    blocks (the move is not enabled yet — e.g. an atomic [acq] on a held
    lock), or refuses (the strategy is stuck: no valid transition exists).

    The automata drawn in the paper (e.g. [φ'_acq[i]], [φ_acq[i]]) are
    values of this type; the semantics [⟨P⟩_{L[i]}] of running a program
    over a local layer interface is also a strategy
    ({!Machine.strategy_of_prog}). *)

type t = { step : Log.t -> step_result }

and step_result =
  | Move of Event.t list * outcome
      (** append these events (possibly none) and continue *)
  | Blocked  (** enabled later: ask the environment for more events *)
  | Refuse of string  (** stuck — no valid move *)

and outcome =
  | Done of Value.t  (** the strategy terminated with a result *)
  | Next of t

val stopped : Value.t -> t
(** The idle strategy: emits no further events and stays [Done]
    (the reflexive "?l', !ε" edge of the paper's automata). *)

val of_moves : ?ret:Value.t -> (Log.t -> Event.t list) list -> t
(** [of_moves ms] plays each move function once, in order, then terminates
    with [ret] (default unit). *)

val emit_once : (Event.tid -> Log.t -> Event.t list) -> Event.tid -> t
(** One move computed from the log, then done. *)

val map_events : (Event.t -> Event.t list) -> t -> t
(** Translate every emitted event (used to relate strategies at two layers
    via a simulation relation). *)

val pp_step_result : Format.formatter -> step_result -> unit
