type t =
  | Ret of Value.t
  | Call of call

and call = {
  prim : string;
  args : Value.t list;
  k : Value.t -> t;
}

let ret v = Ret v
let ret_unit = Ret Value.unit
let ret_int n = Ret (Value.int n)

let call prim args = Call { prim; args; k = ret }

let rec bind p f =
  match p with
  | Ret v -> f v
  | Call c -> Call { c with k = (fun v -> bind (c.k v) f) }

let ( let* ) = bind

let seq a b = bind a (fun _ -> b)

let seq_all ps = List.fold_left seq ret_unit ps

module Module = struct
  module Smap = Map.Make (String)

  type prog = t

  type nonrec t = (Value.t list -> prog) Smap.t

  let empty = Smap.empty

  let of_bodies bodies =
    List.fold_left
      (fun m (name, body) ->
        if Smap.mem name m then
          invalid_arg ("Prog.Module.of_bodies: duplicate primitive " ^ name)
        else Smap.add name body m)
      empty bodies

  let names m = List.map fst (Smap.bindings m)
  let find name m = Smap.find_opt name m

  let union a b =
    Smap.union
      (fun name _ _ ->
        invalid_arg ("Prog.Module.union: primitive implemented twice: " ^ name))
      a b

  let rec link' m p =
    match p with
    | Ret _ -> p
    | Call c -> (
      match Smap.find_opt c.prim m with
      | Some body -> bind (body c.args) (fun v -> link' m (c.k v))
      | None -> Call { c with k = (fun v -> link' m (c.k v)) })

  let stack ~lower ~upper =
    union lower (Smap.map (fun body args -> link' lower (body args)) upper)

  let rec link m p =
    match p with
    | Ret _ -> p
    | Call c -> (
      match Smap.find_opt c.prim m with
      | Some body -> bind (body c.args) (fun v -> link m (c.k v))
      | None -> Call { c with k = (fun v -> link m (c.k v)) })
end

let steps_bound_exceeded = "step bound exceeded"
