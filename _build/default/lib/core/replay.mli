(** Replay functions.

    All shared abstract state in CCAL is represented by the global log;
    functions that reconstruct the current shared state from the log are
    called {e replay functions} (Sec. 2).  [Rticket] (lock state from
    [FAI_t]/[inc_n] events), [Rshared] (push/pull ownership, Fig. 8) and
    [Rsched] (currently-running thread, Sec. 5.1) are all instances.

    A replay function may be partial: replaying an ill-formed log (e.g. a
    racy push/pull sequence) gets stuck, which is exactly how the paper's
    machines detect data races. *)

type 'a t = Log.t -> ('a, string) result
(** A replay function reconstructing a shared state of type ['a], or
    [Error reason] if the log is ill-formed (the machine is stuck). *)

val fold : init:'a -> step:('a -> Event.t -> ('a, string) result) -> 'a t
(** [fold ~init ~step] replays the log chronologically from [init],
    applying [step] to each event.  This is the shape of every replay
    function in the paper (Fig. 8 is a right fold on the log). *)

val pure : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val both : 'a t -> 'b t -> ('a * 'b) t
(** Replay two shared states from the same log. *)

val run_exn : 'a t -> Log.t -> 'a
(** Like application, but raises [Failure] on stuck replays; for tests. *)

val well_formed : 'a t -> Log.t -> bool
(** [well_formed r l] holds iff replaying [l] does not get stuck. *)
