module Smap = Map.Make (String)

type t = Value.t Smap.t

let empty = Smap.empty

let find k a = Smap.find_opt k a

let get k a = match find k a with Some v -> v | None -> Value.unit

let set k v a = Smap.add k v a

let update k f a = Smap.add k (f (get k a)) a

let fields a = Smap.bindings a

let of_fields kvs = List.fold_left (fun a (k, v) -> set k v a) empty kvs

let equal a b = Smap.equal Value.equal a b

let pp fmt a =
  Format.fprintf fmt "@[<hov 1>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       (fun fmt (k, v) -> Format.fprintf fmt "%s=%a" k Value.pp v))
    (fields a)
