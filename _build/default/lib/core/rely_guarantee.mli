(** Rely and guarantee conditions.

    In a concurrent layer interface [L[A] = (L, R, G)] (Sec. 3.2), the rely
    condition [R] specifies the set of acceptable environment contexts and
    the guarantee condition [G] the invariant that locally-generated events
    maintain.  Both are per-thread invariants over the global log
    ([R, G ∈ Id ⇀ Inv], [Inv ∈ Log → Prop], Fig. 7).

    Invariants are named so that the side conditions of the layer calculus
    (Fig. 9) that require syntactically equal conditions ([Hcomp]) can be
    checked, and so that counterexamples print usefully. *)

type t = {
  name : string;
  holds : Event.tid -> Log.t -> bool;
      (** [holds i l]: the events of thread [i] in [l] satisfy the
          invariant. *)
}

val always : t
(** The trivial invariant (every log acceptable). *)

val never : t
(** The empty invariant (no log acceptable); unit for {!disj}. *)

val make : string -> (Event.tid -> Log.t -> bool) -> t

val conj : t -> t -> t
(** Conjunction — used by [Pcomp]'s composed rely ([R_A ∩ R_B]). *)

val disj : t -> t -> t
(** Disjunction — used by [Pcomp]'s composed guarantee ([G_A ∪ G_B]). *)

val same : t -> t -> bool
(** Name-based syntactic equality, used by the [Hcomp] side conditions. *)

val holds_for_all : t -> Event.tid list -> Log.t -> bool

val implies_on : t -> t -> tids:Event.tid list -> logs:Log.t list -> bool
(** [implies_on g r ~tids ~logs] checks, on the given corpus, that every
    log satisfying [g] for a thread also satisfies [r] for that thread.
    This is the tested analogue of the [Compat] side condition
    "the guarantee of [L[A]] implies the rely of [L[B]]" (Fig. 9): the Coq
    development proves the inclusion once and for all, we check it on all
    logs produced while verifying the composed system (see DESIGN.md,
    Substitutions). *)
