type t = {
  name : string;
  apply : Log.t -> Log.t;
}

let id = { name = "id"; apply = (fun l -> l) }

let of_events name translate =
  { name; apply = (fun l -> Log.map_events translate l) }

let of_log_fn name apply = { name; apply }

let of_table name ?(default = `Keep) rules =
  let translate (e : Event.t) =
    match List.assoc_opt e.tag rules with
    | Some (`To tag') -> [ { e with tag = tag' } ]
    | Some `Drop -> []
    | None -> ( match default with `Keep -> [ e ] | `Drop -> [])
  in
  of_events name translate

let compose r s =
  if r == id then s
  else if s == id then r
  else { name = s.name ^ " o " ^ r.name; apply = (fun l -> s.apply (r.apply l)) }

let apply r l = r.apply l

let related r l l' = Log.equal (apply r l) l'
