(** The concurrent layer calculus (Fig. 9).

    A certified concurrent abstraction layer is a triple
    [(L1[A], M, L2[A])] plus evidence that the implementation [M], running
    on behalf of the thread set [A] over the underlay interface [L1],
    faithfully implements the overlay interface [L2] (Sec. 1–2).

    In the paper the evidence is a Coq proof object; here it is a
    {!cert} value that can only be built by the rule constructors below,
    each of which {e runs} the corresponding side conditions (simulation
    checks over environment-context suites, syntactic layer conditions,
    tested compat implications).  Composition then mirrors Fig. 9 exactly:
    [Empty], [Fun], [Vcomp], [Hcomp], [Wk], and the parallel composition
    rule [Pcomp] with its [Compat] side condition. *)

type judgment = {
  underlay : Layer.t;
  impl : Prog.Module.t;
  overlay : Layer.t;
  rel : Sim_rel.t;
  focus : Event.tid list;  (** the focused thread set [A] *)
}

type rule_name = Empty | Fun | Vcomp | Hcomp | Wk | Pcomp

type cert = {
  judgment : judgment;
  rule : rule_name;
  premises : cert list;
  evidence : string list;  (** human-readable record of discharged checks *)
}

val pp_cert : Format.formatter -> cert -> unit
(** Print the derivation tree. *)

type error = {
  rule : rule_name;
  message : string;
  sim_failure : Simulation.failure option;
}

val pp_error : Format.formatter -> error -> unit

(** {1 Test configuration} *)

type prim_case = {
  args : Value.t list;  (** arguments for the primitive under test *)
  pre : (string * Value.t list) list;
      (** overlay calls establishing the precondition — e.g. [rel] is only
          meaningful after an [acq]; both sides of the simulation run the
          same prefix (through the module on the implementation side) *)
}

type prim_tests = (string * prim_case list) list
(** For each overlay primitive, the cases on which its implementation is
    checked against its specification. *)

val case : ?pre:(string * Value.t list) list -> Value.t list -> prim_case

type env_suite = Event.tid -> Env_context.t list
(** Environment-context suites are generators: contexts are stateful
    (single-use), so a fresh suite is drawn for every individual check. *)

(** {1 Rules} *)

val empty_rule : Layer.t -> Event.tid list -> cert
(** [L[A] ⊢_id ∅ : L[A]]. *)

val fun_rule :
  ?max_moves:int ->
  underlay:Layer.t ->
  overlay:Layer.t ->
  impl:Prog.Module.t ->
  rel:Sim_rel.t ->
  focus:Event.tid list ->
  prim_tests:prim_tests ->
  envs:env_suite ->
  unit ->
  (cert, error) result
(** The [Fun] rule: for every focused thread [i], every overlay primitive
    [p] implemented by [impl] and every test argument vector, check
    [⟨impl(p)(args)⟩_{underlay[i]} ≤_rel ⟨p(args)⟩_{overlay[i]}]
    over a fresh environment suite. *)

val vcomp : cert -> cert -> (cert, error) result
(** [Vcomp]: from [L1 ⊢_R M : L2] and [L2 ⊢_S N : L3], derive
    [L1 ⊢_{R∘S} M ⊕ N : L3]. *)

val hcomp : cert -> cert -> (cert, error) result
(** [Hcomp]: from [L ⊢_R M : L1] and [L ⊢_R N : L2] (same relation, same
    rely/guarantee), derive [L ⊢_R M ⊕ N : L1 ⊕ L2]. *)

(** {1 Layer simulation and weakening} *)

type layer_sim = {
  lower : Layer.t;
  upper : Layer.t;
  sim_rel : Sim_rel.t;
  sim_focus : Event.tid list;
  sim_evidence : string list;
}
(** Evidence for [L ≤_R L'] — every primitive of the upper interface is
    simulated by its lower counterpart (the "log-lift" pattern, Sec. 2). *)

val check_layer_sim :
  ?max_moves:int ->
  lower:Layer.t ->
  upper:Layer.t ->
  rel:Sim_rel.t ->
  focus:Event.tid list ->
  prim_tests:prim_tests ->
  envs:env_suite ->
  unit ->
  (layer_sim, error) result

val layer_sim_id : Layer.t -> Event.tid list -> layer_sim
(** The reflexive simulation [L ≤_id L]. *)

val wk : layer_sim -> cert -> layer_sim -> (cert, error) result
(** [Wk]: from [L'1 ≤_R L1], [L1 ⊢_S M : L2] and [L2 ≤_T L'2], derive
    [L'1 ⊢_{R∘S∘T} M : L'2]. *)

(** {1 Parallel composition} *)

val compat :
  Layer.t ->
  a:Event.tid list ->
  b:Event.tid list ->
  logs:Log.t list ->
  (string, string) result
(** The [Compat] side condition, tested on a log corpus: for every thread
    of one side, its guarantee implies the rely the other side assumes
    (see DESIGN.md on the tested-implication substitution). *)

val pcomp : cert -> cert -> compat_logs:Log.t list -> (cert, error) result
(** [Pcomp]: compose certificates for disjoint thread sets [A] and [B]
    over the same layers, module and relation into one for [A ∪ B],
    checking [Compat] on both the underlay and overlay interfaces. *)

(** {1 Inspection} *)

val focus : cert -> Event.tid list
val count_checks : cert -> int
(** Total number of evidence entries in the derivation (proof-effort
    proxy reported by the Table 2 analogue). *)
