type t = { step : Log.t -> step_result }

and step_result =
  | Move of Event.t list * outcome
  | Blocked
  | Refuse of string

and outcome =
  | Done of Value.t
  | Next of t

let stopped v = { step = (fun _ -> Move ([], Done v)) }

let of_moves ?(ret = Value.unit) moves =
  let rec go = function
    | [] -> stopped ret
    | m :: rest -> { step = (fun l -> Move (m l, Next (go rest))) }
  in
  go moves

let emit_once f i =
  { step = (fun l -> Move (f i l, Done Value.unit)) }

let rec map_events f s =
  {
    step =
      (fun l ->
        match s.step l with
        | Move (evs, out) ->
          let out' =
            match out with
            | Done v -> Done v
            | Next s' -> Next (map_events f s')
          in
          Move (List.concat_map f evs, out')
        | Blocked -> Blocked
        | Refuse msg -> Refuse msg);
  }

let pp_step_result fmt = function
  | Move (evs, out) ->
    Format.fprintf fmt "Move([%a], %s)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         Event.pp)
      evs
      (match out with Done v -> "Done " ^ Value.to_string v | Next _ -> "Next")
  | Blocked -> Format.pp_print_string fmt "Blocked"
  | Refuse msg -> Format.fprintf fmt "Refuse(%s)" msg
