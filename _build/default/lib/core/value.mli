(** First-order runtime values exchanged between client programs, layer
    primitives and events.

    The CCAL machines of the paper (Fig. 7) pass machine integers and
    locations between primitives; we additionally provide booleans, pairs
    and lists so that abstract states (e.g. the logical thread queues of
    Sec. 4.2) can be represented directly. *)

type t =
  | Vunit
  | Vint of int  (** machine integer / location / thread id *)
  | Vbool of bool
  | Vpair of t * t
  | Vlist of t list

val unit : t
val int : int -> t
val bool : bool -> t
val pair : t -> t -> t
val list : t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** [to_int v] projects an integer, raising [Type_error] otherwise. *)

val to_bool : t -> bool
val to_pair : t -> t * t
val to_list : t -> t list

exception Type_error of string
(** Raised by the projections when a primitive receives an argument of the
    wrong shape; in the paper's semantics this corresponds to the machine
    getting stuck. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
