(** Client programs and module implementations as interaction trees.

    A program over a layer interface is a tree of primitive calls: it either
    returns a value or calls a primitive of the layer and continues with the
    returned value.  This free-monad representation is the executable
    counterpart of the paper's "client program [P] built on top of [L]"
    (Sec. 2): the behaviour of the program is determined solely by the
    interface, independent of the layer implementation.

    A module implementation [M] maps the names of overlay primitives to
    bodies written as programs over the underlay; linking [P ⊕ M]
    substitutes bodies for calls. *)

type t =
  | Ret of Value.t  (** finished, with a result *)
  | Call of call  (** call a layer primitive and continue *)

and call = {
  prim : string;  (** primitive name in the current layer interface *)
  args : Value.t list;
  k : Value.t -> t;  (** continuation receiving the return value *)
}

val ret : Value.t -> t
val ret_unit : t
val ret_int : int -> t

val call : string -> Value.t list -> t
(** [call p args] calls [p] and returns its result. *)

val bind : t -> (Value.t -> t) -> t
(** Monadic sequencing: run the first program, feed its result on. *)

val ( let* ) : t -> (Value.t -> t) -> t
val seq : t -> t -> t
(** [seq a b] runs [a], discards its result, then runs [b]. *)

val seq_all : t list -> t
(** Run programs in order, returning the last result ([ret_unit] if empty). *)

(** {1 Modules and linking} *)

module Module : sig
  (** A program module [M]: implementations of overlay primitives as
      programs over the underlay interface. *)

  type prog := t

  type t

  val empty : t
  (** The paper's [∅]. *)

  val of_bodies : (string * (Value.t list -> prog)) list -> t

  val names : t -> string list
  val find : string -> t -> (Value.t list -> prog) option

  val union : t -> t -> t
  (** The paper's [M ⊕ N]; raises [Invalid_argument] if a primitive name is
      implemented by both (the union of modules must be disjoint). *)

  val stack : lower:t -> upper:t -> t
  (** Vertical linking: the upper module's bodies are written over the
      interface the lower module implements, so stacking resolves the
      upper bodies' calls through the lower module and unions the result —
      this is the [M ⊕ N] of the [Vcomp] rule, where [N may depend on M]
      (Sec. 3.3). *)

  val link : t -> prog -> prog
  (** [link m p] is [p ⊕ M]: each call in [p] to a primitive implemented by
      [m] is replaced by the corresponding body.  Bodies are programs over
      the {e underlay}, so their own calls are left untouched — layers are
      stratified, and stacking is expressed by nesting [link] (vertical
      composition, Sec. 3.3). *)
end

val steps_bound_exceeded : string
(** Reason string used by interpreters when fuel runs out. *)
