lib/core/machine.ml: Abs Env_context Event Layer List Log Prog Rely_guarantee Strategy Value
