lib/core/refinement.ml: Calculus Event Format Game List Log Machine Printf Prog Sched Sim_rel String Value
