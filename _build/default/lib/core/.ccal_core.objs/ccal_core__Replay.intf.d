lib/core/replay.mli: Event Log
