lib/core/value.ml: Format List Stdlib
