lib/core/log.ml: Event Format List
