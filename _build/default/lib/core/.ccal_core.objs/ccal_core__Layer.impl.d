lib/core/layer.ml: Abs Event Hashtbl List Log Rely_guarantee Value
