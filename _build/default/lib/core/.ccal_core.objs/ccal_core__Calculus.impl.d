lib/core/calculus.ml: Env_context Event Format Layer List Printf Prog Rely_guarantee Sim_rel Simulation Stdlib String Value
