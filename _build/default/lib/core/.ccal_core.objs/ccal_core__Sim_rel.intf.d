lib/core/sim_rel.mli: Event Log
