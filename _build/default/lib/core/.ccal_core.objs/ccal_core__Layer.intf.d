lib/core/layer.mli: Abs Event Log Rely_guarantee Value
