lib/core/abs.mli: Format Value
