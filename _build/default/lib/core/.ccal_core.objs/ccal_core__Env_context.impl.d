lib/core/env_context.ml: Event List Log Printf Rely_guarantee Strategy
