lib/core/prog.ml: List Map String Value
