lib/core/rely_guarantee.ml: Event List Log Printf String
