lib/core/env_context.mli: Event Log Rely_guarantee Strategy
