lib/core/sched.ml: Event List Log Printf Stdlib
