lib/core/event.mli: Format Value
