lib/core/sched.mli: Event Log
