lib/core/abs.ml: Format List Map String Value
