lib/core/refinement.mli: Calculus Event Format Layer Log Prog Sched Sim_rel Value
