lib/core/simulation.mli: Env_context Event Format Layer Log Prog Sim_rel Strategy Value
