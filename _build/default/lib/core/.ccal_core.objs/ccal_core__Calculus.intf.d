lib/core/calculus.mli: Env_context Event Format Layer Log Prog Sim_rel Simulation Value
