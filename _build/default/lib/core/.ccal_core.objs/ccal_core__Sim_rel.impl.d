lib/core/sim_rel.ml: Event List Log
