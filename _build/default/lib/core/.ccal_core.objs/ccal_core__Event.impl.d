lib/core/event.ml: Format List Stdlib String Value
