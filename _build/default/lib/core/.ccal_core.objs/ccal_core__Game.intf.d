lib/core/game.mli: Event Format Layer Log Prog Sched Value
