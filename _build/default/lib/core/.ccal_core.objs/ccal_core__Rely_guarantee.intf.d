lib/core/rely_guarantee.mli: Event Log
