lib/core/strategy.ml: Event Format List Log Value
