lib/core/machine.mli: Abs Env_context Event Layer Log Prog Strategy Value
