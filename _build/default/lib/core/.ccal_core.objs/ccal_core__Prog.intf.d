lib/core/prog.mli: Value
