lib/core/strategy.mli: Event Format Log Value
