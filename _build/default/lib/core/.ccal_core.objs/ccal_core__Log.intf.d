lib/core/log.mli: Event Format
