lib/core/simulation.ml: Env_context Event Format List Log Machine Printf Prog Sim_rel Strategy String Value
