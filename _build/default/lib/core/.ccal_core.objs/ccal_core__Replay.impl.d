lib/core/replay.ml: Log Result
