lib/core/game.ml: Event Format Layer List Log Machine Prog Rely_guarantee Sched Value
