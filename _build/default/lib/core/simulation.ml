type failure = {
  env_name : string;
  reason : string;
  impl_log : Log.t;
  spec_log : Log.t;
}

type report = {
  envs_checked : int;
  impl_moves : int;
}

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v 2>simulation failure under %s: %s@ impl log: %a@ spec log: %a@]"
    f.env_name f.reason Log.pp f.impl_log Log.pp f.spec_log

type driven = {
  log : Log.t;
  ret : Value.t option;
  moves : int;
  blocked : bool;
  refused : string option;
}

let drive ?(max_moves = 10_000) ?(block_retries = 64) tid strat ~env ~init_log =
  let rec loop strat log moves retries =
    if moves > max_moves then
      { log; ret = None; moves; blocked = false; refused = Some Prog.steps_bound_exceeded }
    else
      let log = Log.append_all (env.Env_context.query ~focus:[ tid ] log) log in
      match strat.Strategy.step log with
      | Strategy.Move (evs, out) -> (
        let log = Log.append_all evs log in
        match out with
        | Strategy.Done v -> { log; ret = Some v; moves = moves + 1; blocked = false; refused = None }
        | Strategy.Next strat' -> loop strat' log (moves + 1) 0)
      | Strategy.Blocked ->
        if retries >= block_retries then
          { log; ret = None; moves; blocked = true; refused = None }
        else loop strat log moves (retries + 1)
      | Strategy.Refuse msg ->
        { log; ret = None; moves; blocked = false; refused = Some msg }
  in
  loop strat init_log 0 0

let replay_against tid spec ~init_log translated =
  let events = Log.chronological translated in
  (* Drive the spec so that its own events match the focused events of
     [translated] in order, treating foreign events as environment moves. *)
  let fuel_empty_moves = 1_000 in
  let rec finish spec log fuel =
    if fuel <= 0 then Error ("spec makes no progress at end of log", log)
    else
      match spec.Strategy.step log with
      | Strategy.Move ([], Strategy.Done v) -> Ok (Some v)
      | Strategy.Move ([], Strategy.Next s') -> finish s' log (fuel - 1)
      | Strategy.Move (evs, _) ->
        Error
          ( Printf.sprintf "spec emits extra events at end of log: %s"
              (String.concat ", " (List.map Event.to_string evs)),
            log )
      | Strategy.Blocked -> Error ("spec blocked at end of log", log)
      | Strategy.Refuse msg -> Error ("spec stuck at end of log: " ^ msg, log)
  in
  let rec go spec log pending events fuel =
    match pending, events with
    | [], [] -> finish spec log fuel_empty_moves
    | _ :: _, [] ->
      Error ("spec emitted events beyond the end of the translated log", log)
    | [], e :: rest when (e : Event.t).src <> tid ->
      go spec (Log.append e log) [] rest fuel_empty_moves
    | [], (_ :: _ as events) ->
      if fuel <= 0 then Error ("spec makes no progress", log)
      else (
        match spec.Strategy.step log with
        | Strategy.Move ([], Strategy.Next s') -> go s' log [] events (fuel - 1)
        | Strategy.Move ([], Strategy.Done _) ->
          Error ("spec finished before producing all required events", log)
        | Strategy.Move (evs, out) ->
          let next =
            match out with
            | Strategy.Done v -> `Done v
            | Strategy.Next s' -> `Spec s'
          in
          consume next log evs events
        | Strategy.Blocked -> Error ("spec blocked where it must move", log)
        | Strategy.Refuse msg -> Error ("spec stuck: " ^ msg, log))
    | p :: prest, e :: erest ->
      if e.src <> tid then
        Error ("environment event interleaves one spec move: " ^ Event.to_string e, log)
      else if Event.equal p e then go spec (Log.append e log) prest erest fuel_empty_moves
      else
        Error
          (Printf.sprintf "spec emitted %s but translated log has %s"
             (Event.to_string p) (Event.to_string e),
            log)
  and consume next log pending events =
    match next with
    | `Spec s -> go s log pending events fuel_empty_moves
    | `Done v -> (
      (* The spec terminated with this move: its pending events must close
         out the remaining focused events, and the rest must be foreign. *)
      let rec drain log pending events =
        match pending, events with
        | [], rest ->
          if List.for_all (fun (e : Event.t) -> e.src <> tid) rest then
            Ok (Some v)
          else Error ("spec finished before producing all required events", log)
        | p :: prest, e :: erest when (e : Event.t).src = tid && Event.equal p e ->
          drain (Log.append e log) prest erest
        | p :: _, e :: _ ->
          Error
            (Printf.sprintf "spec emitted %s but translated log has %s"
               (Event.to_string p) (Event.to_string e),
              log)
        | _ :: _, [] ->
          Error ("spec emitted events beyond the end of the translated log", log)
      in
      drain log pending events)
  in
  go spec init_log [] events fuel_empty_moves

let check_strategies ?max_moves ?(ret_rel = Value.equal) rel ~tid ~impl ~spec
    ~envs =
  let rec go envs_checked impl_moves = function
    | [] -> Ok { envs_checked; impl_moves }
    | env :: rest -> (
      let d = drive ?max_moves tid (impl ()) ~env ~init_log:Log.empty in
      match d.refused with
      | Some msg ->
        Error { env_name = env.Env_context.name; reason = "impl stuck: " ^ msg; impl_log = d.log; spec_log = Log.empty }
      | None ->
        if d.blocked then
          Error
            { env_name = env.Env_context.name; reason = "impl blocked with environment exhausted"; impl_log = d.log; spec_log = Log.empty }
        else
          let translated = Sim_rel.apply rel d.log in
          (match replay_against tid (spec ()) ~init_log:Log.empty translated with
          | Error (reason, spec_log) ->
            Error { env_name = env.Env_context.name; reason; impl_log = d.log; spec_log }
          | Ok spec_ret -> (
            match d.ret, spec_ret with
            | Some vi, Some vs when ret_rel vi vs ->
              go (envs_checked + 1) (impl_moves + d.moves) rest
            | Some vi, Some vs ->
              Error
                {
                  env_name = env.Env_context.name;
                  reason =
                    Printf.sprintf "return values unrelated: impl %s, spec %s"
                      (Value.to_string vi) (Value.to_string vs);
                  impl_log = d.log;
                  spec_log = translated;
                }
            | Some _, None | None, _ ->
              Error
                {
                  env_name = env.Env_context.name;
                  reason = "strategies did not both terminate";
                  impl_log = d.log;
                  spec_log = translated;
                })))
  in
  go 0 0 envs

let check_progs ?max_moves ?ret_rel rel ~tid ~impl_layer ~impl ~spec_layer ~spec
    ~envs =
  check_strategies ?max_moves ?ret_rel rel ~tid
    ~impl:(fun () -> Machine.strategy_of_prog impl_layer tid impl)
    ~spec:(fun () -> Machine.strategy_of_prog spec_layer tid spec)
    ~envs
